// End-to-end delivery-latency tracking through the publication stack:
// Publication::born stamping, the MessageSink round/delivery seam, and the
// Network's LatencyTracker.
#include <gtest/gtest.h>

#include "pubsub/pubsub_node.hpp"
#include "telemetry/latency.hpp"

namespace ssps::telemetry {
namespace {

TEST(LatencyTracking, EveryFirstReceiptIsRecordedOnce) {
  pubsub::PubSubSystem sys(
      core::SkipRingSystem::Options{.seed = 11, .fd_delay = 0});
  const auto ids = sys.add_pubsub_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  EXPECT_EQ(sys.net().latency().count(), 0u);  // no publications yet

  sys.pubsub(ids[0]).publish("hello");
  ASSERT_TRUE(
      sys.net().run_until([&] { return sys.publications_converged(); }, 500));

  const LatencyTracker& lat = sys.net().latency();
  // Exactly one sample per subscriber: the origin (latency 0 by
  // definition) plus each other node's first receipt. Re-deliveries of an
  // already-known publication never record.
  EXPECT_EQ(lat.count(), ids.size());
  EXPECT_EQ(lat.global().percentile_permille(1), 0u);  // the origin's sample
  EXPECT_GE(lat.global().max(), 1u);   // someone needed a real hop
  EXPECT_LT(lat.global().max(), 100u); // flooding is O(log n) rounds
  // Single-topic systems record under kNoTopic: no per-topic rows.
  EXPECT_TRUE(lat.by_topic().empty());

  // Further anti-entropy traffic must not add samples.
  const std::uint64_t settled = lat.count();
  sys.net().run_rounds(20);
  EXPECT_EQ(sys.net().latency().count(), settled);
}

TEST(LatencyTracking, BornStampsRideTheWireButNotIdentity) {
  pubsub::Publication a{sim::NodeId{3}, "payload", 7};
  pubsub::Publication b{sim::NodeId{3}, "payload", 900};
  EXPECT_EQ(a, b);  // telemetry metadata is not identity...
  EXPECT_EQ(pubsub::msg::publication_bytes(a),
            pubsub::msg::publication_bytes(b));  // ...and not wire data
}

}  // namespace
}  // namespace ssps::telemetry
