// Tests for the fixed-bucket latency histogram (src/telemetry/histogram.hpp).
#include "telemetry/histogram.hpp"

#include <gtest/gtest.h>

#include "telemetry/latency.hpp"

namespace ssps::telemetry {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile_permille(500), 0u);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(Histogram, PercentilesOnUniformRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 100u);
  // p50: rank ceil(100*500/1000) = 50 -> value 50.
  EXPECT_EQ(h.percentile_permille(500), 50u);
  EXPECT_EQ(h.percentile_permille(990), 99u);
  EXPECT_EQ(h.percentile_permille(999), 100u);
  EXPECT_EQ(h.percentile_permille(1000), 100u);
}

TEST(Histogram, SingleValueDominatesEveryPercentile) {
  Histogram h;
  for (int i = 0; i < 7; ++i) h.record(3);
  EXPECT_EQ(h.percentile_permille(1), 3u);
  EXPECT_EQ(h.percentile_permille(500), 3u);
  EXPECT_EQ(h.percentile_permille(999), 3u);
}

TEST(Histogram, OverflowBucketReportsExactMax) {
  Histogram h;
  h.record(1);
  h.record(Histogram::kExactBuckets + 100);  // overflow
  h.record(100000);                          // overflow, new max
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_EQ(h.percentile_permille(1), 1u);
  // Ranks landing in the overflow bucket collapse to the exact max.
  EXPECT_EQ(h.percentile_permille(990), 100000u);
}

TEST(Histogram, MergeIsElementwiseAndCommutative) {
  Histogram a, b;
  for (std::uint64_t v = 0; v < 50; ++v) a.record(v);
  for (std::uint64_t v = 50; v < 100; ++v) b.record(v);
  b.record(5000);  // overflow on one side only

  Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), 101u);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.max(), ba.max());
  for (std::uint32_t p : {1u, 250u, 500u, 900u, 990u, 999u, 1000u}) {
    EXPECT_EQ(ab.percentile_permille(p), ba.percentile_permille(p)) << p;
  }
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  h.record(7);
  h.record(9999);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile_permille(999), 0u);
}

TEST(LatencyTracker, RecordsGlobalAndPerTopic) {
  LatencyTracker t;
  t.record(LatencyTracker::kNoTopic, 2);
  t.record(1, 4);
  t.record(2, 6);
  t.record(1, 8);
  EXPECT_EQ(t.count(), 4u);
  EXPECT_EQ(t.global().max(), 8u);
  ASSERT_EQ(t.by_topic().size(), 2u);
  const auto it = t.by_topic().begin();
  EXPECT_EQ(it->first, 1u);
  EXPECT_EQ(it->second.count(), 2u);
  EXPECT_EQ((it + 1)->first, 2u);
  EXPECT_EQ((it + 1)->second.count(), 1u);
}

TEST(LatencyTracker, FoldPreservesDistributionsAcrossSharding) {
  // Record one stream serially, then the same stream split over three
  // shards folded in arbitrary order — every percentile must agree.
  LatencyTracker serial;
  LatencyTracker shard[3];
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::uint32_t topic = 1 + static_cast<std::uint32_t>(i % 3);
    const sim::Round latency = (i * 7) % 40;
    serial.record(topic, latency);
    shard[i % 3].record(topic, latency);
  }
  LatencyTracker folded;
  shard[2].fold_into(folded);
  shard[0].fold_into(folded);
  shard[1].fold_into(folded);
  EXPECT_EQ(folded.count(), serial.count());
  for (std::uint32_t p : {500u, 990u, 999u}) {
    EXPECT_EQ(folded.global().percentile_permille(p),
              serial.global().percentile_permille(p));
  }
  ASSERT_EQ(folded.by_topic().size(), serial.by_topic().size());
  auto f = folded.by_topic().begin();
  auto s = serial.by_topic().begin();
  for (; f != folded.by_topic().end(); ++f, ++s) {
    EXPECT_EQ(f->first, s->first);
    EXPECT_EQ(f->second.count(), s->second.count());
    EXPECT_EQ(f->second.percentile_permille(990),
              s->second.percentile_permille(990));
  }
}

TEST(LatencyTracker, EmptyShardFoldIsANoop) {
  LatencyTracker empty, dst;
  dst.record(1, 5);
  empty.fold_into(dst);
  EXPECT_EQ(dst.count(), 1u);
  ASSERT_EQ(dst.by_topic().size(), 1u);
}

}  // namespace
}  // namespace ssps::telemetry
