// Tests for the per-round sampling ring (src/telemetry/round_probe.hpp).
#include "telemetry/round_probe.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/network.hpp"

namespace ssps::telemetry {
namespace {

RoundSample sample_for(sim::Round r) {
  RoundSample s;
  s.round = r;
  s.delivered = r * 10;
  return s;
}

TEST(RoundProbe, KeepsEverythingUnderCapacity) {
  RoundProbe probe(8);
  for (sim::Round r = 1; r <= 5; ++r) probe.push(sample_for(r));
  EXPECT_EQ(probe.size(), 5u);
  EXPECT_EQ(probe.dropped(), 0u);
  EXPECT_EQ(probe.at(0).round, 1u);
  EXPECT_EQ(probe.at(4).round, 5u);
}

TEST(RoundProbe, RingEvictsOldestFirst) {
  RoundProbe probe(4);
  for (sim::Round r = 1; r <= 10; ++r) probe.push(sample_for(r));
  EXPECT_EQ(probe.size(), 4u);
  EXPECT_EQ(probe.dropped(), 6u);
  // The retained window is the last 4 rounds, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(probe.at(i).round, 7u + i);
    EXPECT_EQ(probe.at(i).delivered, (7u + i) * 10);
  }
}

TEST(RoundProbe, EnricherRunsBeforeStorage) {
  RoundProbe probe(4);
  probe.set_enricher([](RoundSample& s) { s.nonconforming = s.round + 100; });
  probe.push(sample_for(3));
  EXPECT_EQ(probe.at(0).nonconforming, 103u);
}

TEST(RoundProbe, ClearEmptiesTheRing) {
  RoundProbe probe(2);
  for (sim::Round r = 1; r <= 5; ++r) probe.push(sample_for(r));
  probe.clear();
  EXPECT_TRUE(probe.empty());
  EXPECT_EQ(probe.dropped(), 0u);
  probe.push(sample_for(9));
  EXPECT_EQ(probe.at(0).round, 9u);
}

TEST(RoundProbe, NetworkSamplesEveryRound) {
  core::SkipRingSystem sys(
      core::SkipRingSystem::Options{.seed = 5, .fd_delay = 0});
  sys.add_subscribers(6);
  RoundProbe probe(64);
  sys.net().attach_round_probe(&probe);
  sys.net().run_rounds(10);
  ASSERT_EQ(probe.size(), 10u);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(probe.at(i).round, i + 1);  // clock reads post-increment
    EXPECT_EQ(probe.at(i).alive, 7u);     // 6 subscribers + supervisor
  }
  // The overlay is still bootstrapping: traffic and timeouts are nonzero.
  EXPECT_GT(probe.at(2).delivered, 0u);
  EXPECT_GT(probe.at(2).timeouts, 0u);
  sys.net().attach_round_probe(nullptr);
  sys.net().run_rounds(1);
  EXPECT_EQ(probe.size(), 10u);  // detached: no further samples
}

}  // namespace
}  // namespace ssps::telemetry
