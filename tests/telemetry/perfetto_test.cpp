// Tests for the Chrome/Perfetto trace_event exporter
// (src/telemetry/perfetto.hpp).
#include "telemetry/perfetto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "core/system.hpp"
#include "sim/trace.hpp"

namespace ssps::telemetry {
namespace {

using sim::NodeId;
using sim::Trace;
using sim::TraceEventKind;

// Golden export of a hand-built trace: one correlated send/deliver pair in
// round 1 plus a note in round 2. Pins the whole grammar — metadata,
// round spans, staggered slices, flow arrows, terminators.
TEST(Perfetto, GoldenExport) {
  Trace t;
  t.record(1, NodeId{1}, NodeId{2}, "Publish", TraceEventKind::kSend, 1);
  t.record(1, NodeId::null(), NodeId{2}, "Publish", TraceEventKind::kDeliver, 1);
  t.record(2, NodeId{3}, NodeId{3}, "note");

  const char* expected =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"rounds\"}},\n"
      "    {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"nodes\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": 1000, \"dur\": 1000, "
      "\"name\": \"round 1\"},\n"
      "    {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": 2000, \"dur\": 1000, "
      "\"name\": \"round 2\"},\n"
      "    {\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": 1100, \"dur\": 50, "
      "\"name\": \"Publish\"},\n"
      "    {\"ph\": \"s\", \"cat\": \"msg\", \"id\": 1, \"pid\": 1, \"tid\": 1, "
      "\"ts\": 1100, \"name\": \"flow\"},\n"
      "    {\"ph\": \"X\", \"pid\": 1, \"tid\": 2, \"ts\": 1601, \"dur\": 50, "
      "\"name\": \"Publish\"},\n"
      "    {\"ph\": \"f\", \"bp\": \"e\", \"cat\": \"msg\", \"id\": 1, \"pid\": 1, "
      "\"tid\": 2, \"ts\": 1601, \"name\": \"flow\"},\n"
      "    {\"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 3, \"ts\": 2100, "
      "\"name\": \"note\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_perfetto_json(t), expected);
}

TEST(Perfetto, EmptyTraceIsStillWellFormed) {
  Trace t;
  const std::string doc = to_perfetto_json(t);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Only the two process_name metadata records.
  EXPECT_NE(doc.find("\"rounds\""), std::string::npos);
  EXPECT_NE(doc.find("\"nodes\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Perfetto, EscapesLabelText) {
  Trace t;
  t.record(1, NodeId{1}, NodeId{1}, "say \"hi\"\n");
  const std::string doc = to_perfetto_json(t);
  EXPECT_NE(doc.find("say \\\"hi\\\"\\n"), std::string::npos);
}

TEST(Perfetto, LiveSystemExportCarriesCorrelatedFlows) {
  // Drive a real bootstrap with an attached trace and check the export
  // holds matched flow start/finish arrows and round spans.
  core::SkipRingSystem sys(
      core::SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  Trace trace(1 << 16);
  sys.net().attach_trace(&trace);
  sys.add_subscribers(6);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());

  const std::string doc = to_perfetto_json(trace);
  EXPECT_NE(doc.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"round 1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"Check\""), std::string::npos);

  // Balanced structure: as many opening as closing braces.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  sys.net().attach_trace(nullptr);
}

TEST(Perfetto, WriteFileRoundTrips) {
  Trace t;
  t.record(1, NodeId{1}, NodeId{2}, "Publish", TraceEventKind::kSend, 1);
  const std::string path = ::testing::TempDir() + "ssps_perfetto_test.json";
  ASSERT_TRUE(write_perfetto_file(path, t));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, to_perfetto_json(t));
}

}  // namespace
}  // namespace ssps::telemetry
