// Chord baseline sanity: routing terminates, hops are logarithmic,
// degrees are logarithmic, uniform ids beat random ids on balance.
#include "baseline/chord.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ssps::baseline {
namespace {

TEST(Chord, RoutingReachesEveryTarget) {
  ChordRing ring(64, 1);
  for (std::size_t from = 0; from < 64; from += 7) {
    for (std::size_t to = 0; to < 64; to += 5) {
      if (from == to) continue;
      EXPECT_GE(ring.route(from, to, nullptr), 1);
    }
  }
}

TEST(Chord, HopsAreLogarithmic) {
  ssps::Rng rng(2);
  for (std::size_t n : {64, 256, 1024}) {
    ChordRing ring(n, n);
    const int max_hops = ring.sample_max_hops(300, rng);
    EXPECT_LE(max_hops, 2 * static_cast<int>(std::log2(n)) + 4) << "n=" << n;
  }
}

TEST(Chord, DegreesAreLogarithmic) {
  const std::size_t n = 512;
  ChordRing ring(n, 3);
  for (std::size_t i = 0; i < n; i += 17) {
    EXPECT_LE(ring.degree(i), 70u);
    EXPECT_GE(ring.degree(i), 1u);
  }
}

TEST(Chord, SelfRouteIsZeroHops) {
  ChordRing ring(16, 4);
  EXPECT_EQ(ring.route(3, 3, nullptr), 0);
}

TEST(Chord, SingleNodeRing) {
  ChordRing ring(1, 5);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.route(0, 0, nullptr), 0);
}

TEST(Chord, CongestionAccumulatesOnIntermediates) {
  ChordRing ring(128, 6);
  ssps::Rng rng(7);
  const auto load = ring.sample_congestion(2000, rng);
  std::uint64_t total = 0;
  for (std::uint64_t l : load) total += l;
  EXPECT_GT(total, 0u);
}

TEST(Chord, UniformIdsReduceWorstCaseLoad) {
  // The supervised skip ring's labels correspond to the uniform-id case;
  // this is the mechanism behind the §1.3 congestion claim.
  const std::size_t n = 512;
  const std::size_t samples = 8000;
  ssps::Rng rng1(8);
  ssps::Rng rng2(8);
  ChordRing random_ids(n, 9, /*uniform_ids=*/false);
  ChordRing uniform_ids(n, 9, /*uniform_ids=*/true);
  const auto load_r = random_ids.sample_congestion(samples, rng1);
  const auto load_u = uniform_ids.sample_congestion(samples, rng2);
  const std::uint64_t max_r = *std::max_element(load_r.begin(), load_r.end());
  const std::uint64_t max_u = *std::max_element(load_u.begin(), load_u.end());
  EXPECT_LT(max_u, max_r);
}

TEST(Chord, DeterministicForSeed) {
  ChordRing a(64, 11);
  ChordRing b(64, 11);
  for (std::size_t i = 0; i < 64; i += 5) EXPECT_EQ(a.degree(i), b.degree(i));
}

}  // namespace
}  // namespace ssps::baseline
