// Broker baseline: delivery correctness and the server-load scaling that
// motivates the supervised design (paper introduction).
#include "baseline/broker.hpp"

#include <gtest/gtest.h>

namespace ssps::baseline {
namespace {

TEST(Broker, DeliversToAllSubscribers) {
  sim::Network net(1);
  const auto broker = net.spawn<BrokerNode>();
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < 8; ++i) clients.push_back(net.spawn<BrokerClientNode>(broker));
  for (auto c : clients) net.node_as<BrokerClientNode>(c).subscribe();
  net.run_round();
  net.node_as<BrokerClientNode>(clients[0]).publish("hi");
  net.run_rounds(2);
  for (auto c : clients) {
    EXPECT_EQ(net.node_as<BrokerClientNode>(c).received(), 1u);
  }
}

TEST(Broker, UnsubscribedClientsStopReceiving) {
  sim::Network net(2);
  const auto broker = net.spawn<BrokerNode>();
  const auto a = net.spawn<BrokerClientNode>(broker);
  const auto b = net.spawn<BrokerClientNode>(broker);
  net.node_as<BrokerClientNode>(a).subscribe();
  net.node_as<BrokerClientNode>(b).subscribe();
  net.run_round();
  net.emit<msg::BrokerUnsubscribe>(broker, b);
  net.run_round();
  net.node_as<BrokerClientNode>(a).publish("solo");
  net.run_rounds(2);
  EXPECT_EQ(net.node_as<BrokerClientNode>(b).received(), 0u);
}

TEST(Broker, ServerLoadScalesWithPublishVolumeTimesSubscribers) {
  // The quantitative contrast to Theorem 7: P publications × S subscribers
  // deliveries at the single server.
  sim::Network net(3);
  const auto broker = net.spawn<BrokerNode>();
  std::vector<sim::NodeId> clients;
  const std::size_t s = 16;
  for (std::size_t i = 0; i < s; ++i) {
    clients.push_back(net.spawn<BrokerClientNode>(broker));
    net.node_as<BrokerClientNode>(clients.back()).subscribe();
  }
  net.run_round();
  const std::size_t p = 10;
  for (std::size_t i = 0; i < p; ++i) {
    net.node_as<BrokerClientNode>(clients[i % s]).publish("n" + std::to_string(i));
  }
  net.run_rounds(2);
  EXPECT_EQ(net.node_as<BrokerNode>(broker).deliveries(), p * (s - 1));
  EXPECT_EQ(net.metrics().received_by(broker, "BrokerPublish"), p);
}

TEST(Broker, PublisherKeepsALocalCopy) {
  sim::Network net(4);
  const auto broker = net.spawn<BrokerNode>();
  const auto a = net.spawn<BrokerClientNode>(broker);
  net.node_as<BrokerClientNode>(a).subscribe();
  net.run_round();
  net.node_as<BrokerClientNode>(a).publish("own");
  net.run_rounds(2);
  EXPECT_EQ(net.node_as<BrokerClientNode>(a).received(), 1u);  // not doubled
}

}  // namespace
}  // namespace ssps::baseline
