// Naive full-state anti-entropy: converges like the Patricia sync but
// keeps paying O(|P|) bytes per exchange forever.
#include "baseline/antientropy.hpp"

#include <gtest/gtest.h>

#include "pubsub/pubsub_node.hpp"

namespace ssps::baseline {
namespace {

class NaiveSystem : public core::SkipRingSystem {
 public:
  using core::SkipRingSystem::SkipRingSystem;

  sim::NodeId add_naive() { return net().spawn<NaiveSyncNode>(supervisor_id()); }

  NaiveSyncProtocol& sync(sim::NodeId id) {
    return net().node_as<NaiveSyncNode>(id).sync();
  }

  bool converged(std::size_t expected) {
    for (sim::NodeId id : subscriber_ids()) {
      if (sync(id).size() != expected) return false;
    }
    return true;
  }
};

TEST(NaiveAntiEntropy, ConvergesOnScatteredPublications) {
  NaiveSystem sys(core::SkipRingSystem::Options{.seed = 1, .fd_delay = 0});
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(sys.add_naive());
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (int i = 0; i < 20; ++i) {
    sys.sync(ids[static_cast<std::size_t>(i) % ids.size()])
        .add_local(pubsub::Publication{ids[0], "p" + std::to_string(i)});
  }
  const auto rounds =
      sys.net().run_until([&] { return sys.converged(20); }, 2000);
  ASSERT_TRUE(rounds.has_value());
}

TEST(NaiveAntiEntropy, DeduplicatesOnMerge) {
  NaiveSystem sys(core::SkipRingSystem::Options{.seed = 2, .fd_delay = 0});
  const auto a = sys.add_naive();
  const auto b = sys.add_naive();
  ASSERT_TRUE(sys.run_until_legit(400).has_value());
  const pubsub::Publication p{a, "shared"};
  sys.sync(a).add_local(p);
  sys.sync(b).add_local(p);
  sys.net().run_rounds(10);
  EXPECT_EQ(sys.sync(a).size(), 1u);
  EXPECT_EQ(sys.sync(b).size(), 1u);
}

TEST(NaiveAntiEntropy, SteadyStateBytesScaleWithCorpusUnlikePatricia) {
  // The headline contrast (experiment E6): after convergence, FullState
  // keeps shipping the whole corpus; CheckTrie ships one digest.
  const std::size_t n = 8;
  const std::size_t corpus = 50;

  NaiveSystem naive(core::SkipRingSystem::Options{.seed = 3, .fd_delay = 0});
  std::vector<sim::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(naive.add_naive());
  ASSERT_TRUE(naive.run_until_legit(600).has_value());
  for (std::size_t i = 0; i < corpus; ++i) {
    naive.sync(ids[0]).add_local(pubsub::Publication{ids[0], "x" + std::to_string(i)});
  }
  ASSERT_TRUE(naive.net().run_until([&] { return naive.converged(corpus); }, 2000));
  naive.net().metrics().reset();
  naive.net().run_rounds(20);
  const auto naive_bytes = naive.net().metrics().sent_bytes("FullState");

  pubsub::PubSubConfig cfg;
  cfg.flooding = false;
  pubsub::PubSubSystem smart(core::SkipRingSystem::Options{.seed = 3, .fd_delay = 0},
                             cfg);
  const auto sids = smart.add_pubsub_subscribers(n);
  ASSERT_TRUE(smart.run_until_legit(600).has_value());
  for (std::size_t i = 0; i < corpus; ++i) {
    smart.pubsub(sids[0]).add_local(pubsub::Publication{sids[0], "x" + std::to_string(i)});
  }
  ASSERT_TRUE(smart.net().run_until(
      [&] { return smart.publications_converged(); }, 2000));
  smart.net().metrics().reset();
  smart.net().run_rounds(20);
  const auto smart_bytes = smart.net().metrics().sent_bytes("CheckTrie") +
                           smart.net().metrics().sent_bytes("CheckAndPublish") +
                           smart.net().metrics().sent_bytes("Publish");

  EXPECT_GT(naive_bytes, 5 * smart_bytes);
}

}  // namespace
}  // namespace ssps::baseline
