// Skip-graph baseline sanity: list structure, logarithmic search, degree.
#include "baseline/skipgraph.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssps::baseline {
namespace {

TEST(SkipGraph, SearchReachesEveryTarget) {
  SkipGraph g(64, 1);
  for (std::size_t from = 0; from < 64; from += 7) {
    for (std::size_t to = 0; to < 64; to += 5) {
      if (from == to) continue;
      EXPECT_GE(g.route(from, to, nullptr), 1);
    }
  }
}

TEST(SkipGraph, SearchIsLogarithmic) {
  ssps::Rng rng(2);
  for (std::size_t n : {64, 256, 1024}) {
    SkipGraph g(n, n + 1);
    const int max_hops = g.sample_max_hops(300, rng);
    // Random membership vectors give O(log n) w.h.p. with a constant
    // larger than Chord's; allow 4·log2(n).
    EXPECT_LE(max_hops, 4 * static_cast<int>(std::log2(n)) + 6) << "n=" << n;
  }
}

TEST(SkipGraph, DegreesAreLogarithmic) {
  const std::size_t n = 512;
  SkipGraph g(n, 3);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = g.degree(i);
    EXPECT_LE(d, 2u * static_cast<std::size_t>(g.levels() + 1));
    total += d;
  }
  const double avg = static_cast<double>(total) / n;
  EXPECT_GT(avg, std::log2(n) * 0.8);
  EXPECT_LT(avg, std::log2(n) * 4.0);
}

TEST(SkipGraph, Level0IsTheFullSortedList) {
  SkipGraph g(32, 4);
  // Walk the level-0 list left to right via routing one step at a time:
  // neighbor search from i to i+1 must take exactly 1 hop.
  for (std::size_t i = 0; i + 1 < 32; ++i) {
    EXPECT_EQ(g.route(i, i + 1, nullptr), 1) << i;
  }
}

TEST(SkipGraph, SingleNode) {
  SkipGraph g(1, 5);
  EXPECT_EQ(g.route(0, 0, nullptr), 0);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(SkipGraph, DeterministicForSeed) {
  SkipGraph a(64, 6);
  SkipGraph b(64, 6);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(a.degree(i), b.degree(i));
}

TEST(SkipGraph, CongestionSamplesProduceLoad) {
  SkipGraph g(128, 7);
  ssps::Rng rng(8);
  const auto load = g.sample_congestion(2000, rng);
  std::uint64_t total = 0;
  for (std::uint64_t l : load) total += l;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace ssps::baseline
