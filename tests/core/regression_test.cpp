// Regression tests for protocol races discovered during the reproduction
// (DESIGN.md interpretations 7–9). Each of these was a permanent stuck
// state before its fix; the tests pin the message-level behavior.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/subscriber.hpp"
#include "core/supervisor.hpp"
#include "core/system.hpp"
#include "test_support.hpp"

namespace ssps::core {
namespace {

using testing::CapturingSink;

constexpr sim::NodeId kSelf{1};
constexpr sim::NodeId kSup{99};

// ---------------------------------------------------------------------------
// Race 1: a stale Subscribe (non-FIFO channels) processed after departure
// re-inserts a dead-to-the-protocol node into the database forever.
// Fix: departed nodes answer re-integration configs with Unsubscribe.
// ---------------------------------------------------------------------------

TEST(Regression, DepartedNodeRejectsReintegrationConfig) {
  CapturingSink sink;
  ssps::Rng rng(1);
  SubscriberProtocol sub(kSelf, kSup, sink, rng);
  sub.chaos_set_label(*Label::parse("01"));
  sub.request_unsubscribe();
  sub.handle(msg::SetData(std::nullopt, std::nullopt, std::nullopt));  // permission
  ASSERT_TRUE(sub.departed());
  sink.clear();
  // The supervisor — fooled by our stale Subscribe — sends a fresh config.
  sub.handle(msg::SetData(std::nullopt, *Label::parse("111"), std::nullopt));
  const auto unsubs = sink.of_type<msg::Unsubscribe>(kSup);
  ASSERT_EQ(unsubs.size(), 1u);
  EXPECT_EQ(unsubs[0]->who, kSelf);
  EXPECT_FALSE(sub.label().has_value());  // did not adopt the label
  EXPECT_TRUE(sub.departed());
}

TEST(Regression, StaleSubscribeAfterDepartureHealsEndToEnd) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  const auto ids = sys.add_subscribers(6);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  // Inject the race directly: the node leaves; AFTER its departure a stale
  // Subscribe of it reaches the supervisor.
  sys.request_unsubscribe(ids[2]);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  ASSERT_TRUE(sys.subscriber(ids[2]).departed());
  sys.net().inject(sys.supervisor_id(),
                   sys.net().pool().make<msg::Subscribe>(ids[2]));
  // The database transiently re-admits the departed node, then forgets it
  // again when the node answers with Unsubscribe.
  const auto rounds = sys.run_until_legit(2000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_FALSE(sys.supervisor().label_of(ids[2]).has_value());
  EXPECT_EQ(sys.supervisor().size(), 5u);
}

// ---------------------------------------------------------------------------
// Race 2: a crashed neighbor whose stale label out-competes every live
// proposal is kept forever (delegations to it vanish). Fix: the supervisor
// answers GetConfiguration about a suspected-dead subject by telling the
// requester to purge it (§3.3's failure detector stays supervisor-only).
// ---------------------------------------------------------------------------

TEST(Regression, SupervisorAnswersDeadSubjectQueriesWithPurge) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 9, .fd_delay = 0});
  const auto ids = sys.add_subscribers(4);
  ASSERT_TRUE(sys.run_until_legit(400).has_value());
  sys.crash(ids[0]);
  sys.net().run_rounds(1);  // let the detector see it
  // Another subscriber asks about the dead node on its own behalf.
  sys.net().metrics().reset();
  sys.net().inject(sys.supervisor_id(),
                   sys.net().pool().make<msg::GetConfiguration>(ids[0], ids[1]));
  sys.net().run_rounds(1);
  EXPECT_GE(sys.net().metrics().sent("RemoveConnections"), 1u);
}

TEST(Regression, DeadCloserNeighborIsEventuallyPurged) {
  // End-to-end: plant a crashed node as someone's "closer" neighbor under
  // a stale label and verify the system still converges.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 11, .fd_delay = 0});
  const auto ids = sys.add_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(600).has_value());
  sys.crash(ids[3]);
  // Hand a survivor a fabricated too-good-to-be-true edge to the corpse.
  sys.subscriber(ids[4]).chaos_set_left(
      LabeledRef{*Label::parse("010101010101"), ids[3]});
  const auto rounds = sys.run_until_legit(4000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  for (sim::NodeId id : sys.active_ids()) {
    std::vector<sim::NodeId> refs;
    sys.subscriber(id).collect_refs(refs);
    for (sim::NodeId r : refs) EXPECT_NE(r, ids[3]);
  }
}

// ---------------------------------------------------------------------------
// Race 3: self-references under corrupted labels are invisible to the
// protocol (nodes ignore introductions from themselves). Fix: sanitized
// in revalidate_sides().
// ---------------------------------------------------------------------------

TEST(Regression, SelfReferenceInNeighborSlotIsDropped) {
  CapturingSink sink;
  ssps::Rng rng(3);
  SubscriberProtocol sub(kSelf, kSup, sink, rng);
  sub.chaos_set_label(*Label::parse("01"));
  sub.chaos_set_right(LabeledRef{*Label::parse("0111"), kSelf});  // self!
  sub.chaos_set_left(LabeledRef{*Label::parse("001"), sim::NodeId{5}});
  sub.timeout();
  EXPECT_FALSE(sub.right().has_value());
  ASSERT_TRUE(sub.left().has_value());  // real neighbors untouched
}

TEST(Regression, SelfReferenceInShortcutSlotIsNulled) {
  CapturingSink sink;
  ssps::Rng rng(4);
  SubscriberProtocol sub(kSelf, kSup, sink, rng);
  sub.chaos_set_label(*Label::parse("01"));
  sub.chaos_set_left(LabeledRef{*Label::parse("0011"), sim::NodeId{5}});
  sub.chaos_set_right(LabeledRef{*Label::parse("0101"), sim::NodeId{6}});
  sub.chaos_put_shortcut(*Label::parse("001"), kSelf);  // expected label, self ref
  sub.timeout();
  ASSERT_TRUE(sub.shortcuts().contains(*Label::parse("001")));
  EXPECT_TRUE(sub.shortcuts().at(*Label::parse("001")).is_null());
}

TEST(Regression, SelfReferencedSystemConverges) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 13, .fd_delay = 0});
  const auto ids = sys.add_subscribers(10);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  // Give half the nodes self-edges under random labels.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    sys.subscriber(ids[i]).chaos_set_right(
        LabeledRef{Label(static_cast<std::uint64_t>(i) * 7 % 32, 5), ids[i]});
  }
  const auto rounds = sys.run_until_legit(2000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

}  // namespace
}  // namespace ssps::core
