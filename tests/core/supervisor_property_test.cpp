// Property sweep for the supervisor's database repair: arbitrary random
// combinations of the §3.1 corruption classes must repair to a consistent
// database that (a) keeps every originally recorded live node and (b)
// assigns exactly the labels l(0..n−1).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/supervisor.hpp"
#include "test_support.hpp"

namespace ssps::core {
namespace {

using testing::CapturingSink;

class SupervisorRepairProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupervisorRepairProperty, RandomCorruptionAlwaysRepairs) {
  ssps::Rng rng(GetParam());
  CapturingSink sink;
  SupervisorProtocol sup(sim::NodeId{1000}, sink);

  // A base population.
  const std::size_t n = rng.between(1, 24);
  std::set<std::uint64_t> population;
  for (std::size_t i = 0; i < n; ++i) {
    sup.handle(msg::Subscribe(sim::NodeId{i + 1}));
    population.insert(i + 1);
  }

  // Random corruption mix.
  const int ops = static_cast<int>(rng.between(1, 20));
  for (int op = 0; op < ops; ++op) {
    const Label junk(rng.below(1ULL << 6), 6);
    switch (rng.below(4)) {
      case 0:  // (i) null tuple
        sup.chaos_insert_null(junk);
        break;
      case 1:  // (ii) duplicate an existing node under another label
        sup.chaos_insert(junk, sim::NodeId{rng.between(1, n)});
        break;
      case 2:  // (iii) punch a hole
        if (sup.size() > 0) {
          sup.chaos_insert_null(Label::from_index(rng.below(sup.size())));
        }
        break;
      default:  // (iv) out-of-range label for a fresh node
        sup.chaos_insert(Label::from_index(n + rng.below(40)),
                         sim::NodeId{100 + rng.below(10)});
        break;
    }
  }

  // Repair: one Timeout runs CheckLabels; per-node duplicate sweeps happen
  // on contact — contact everyone once, then sweep again.
  sup.timeout();
  for (std::uint64_t id = 1; id <= n + 110; ++id) {
    if (sup.label_of(sim::NodeId{id})) {
      sup.handle(msg::GetConfiguration(sim::NodeId{id}));
    }
  }
  sup.timeout();

  EXPECT_TRUE(sup.database_consistent()) << "seed " << GetParam();
  // Hole-punching may have evicted nodes, but every surviving value must
  // be a real node id, each recorded once, labels exactly l(0..size−1).
  std::set<std::uint64_t> seen;
  std::size_t index = 0;
  for (const auto& [label, node] : sup.database()) {
    EXPECT_TRUE(node) << "null tuple survived";
    EXPECT_TRUE(seen.insert(node.value).second) << "duplicate node survived";
    EXPECT_TRUE(label.is_canonical());
    ++index;
  }
  for (std::uint64_t i = 0; i < sup.size(); ++i) {
    EXPECT_TRUE(sup.database().contains(Label::from_index(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupervisorRepairProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(SupervisorRepairProperty, RepairIsIdempotent) {
  CapturingSink sink;
  SupervisorProtocol sup(sim::NodeId{1000}, sink);
  for (std::uint64_t i = 1; i <= 8; ++i) sup.handle(msg::Subscribe(sim::NodeId{i}));
  sup.chaos_insert(Label::from_index(20), sim::NodeId{50});
  sup.timeout();
  const auto after_first = sup.database();
  sup.timeout();
  sup.timeout();
  EXPECT_EQ(sup.database(), after_first);
}

TEST(SupervisorRepairProperty, RepairGeneratesNoMessagesItself) {
  // §3.1: "all of these actions are performed locally by the supervisor,
  // i.e., they generate no messages" — apart from the one round-robin
  // configuration each Timeout always sends.
  CapturingSink sink;
  SupervisorProtocol sup(sim::NodeId{1000}, sink);
  for (std::uint64_t i = 1; i <= 6; ++i) sup.handle(msg::Subscribe(sim::NodeId{i}));
  sup.chaos_insert_null(*Label::parse("01010"));
  sup.chaos_insert(Label::from_index(30), sim::NodeId{40});
  sink.clear();
  sup.timeout();
  EXPECT_LE(sink.sent.size(), 1u);  // just the round-robin SetData
}

}  // namespace
}  // namespace ssps::core
