// Unit tests for the subscriber protocol (Algorithms 1, 2, 4): candidate
// linearization, label correction, ring-closure routing, configuration
// merging (action (iii)), shortcut table maintenance, and the departed
// behavior of Lemma 6.
#include "core/subscriber.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_support.hpp"

namespace ssps::core {
namespace {

using testing::CapturingSink;

constexpr sim::NodeId kSelf{1};
constexpr sim::NodeId kSup{99};

sim::NodeId node(std::uint64_t v) { return sim::NodeId{v}; }

LabeledRef ref(const char* label, std::uint64_t id) {
  return LabeledRef{*Label::parse(label), node(id)};
}

class SubscriberTest : public ::testing::Test {
 protected:
  CapturingSink sink;
  ssps::Rng rng{7};
  SubscriberProtocol sub{kSelf, kSup, sink, rng};

  void give_label(const char* l) { sub.chaos_set_label(*Label::parse(l)); }
};

// ---- Subscription / labels ------------------------------------------

TEST_F(SubscriberTest, TimeoutWithoutLabelSubscribes) {
  sub.timeout();  // action (i)
  const auto subs = sink.of_type<msg::Subscribe>(kSup);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->who, kSelf);
}

TEST_F(SubscriberTest, ConfigurationAssignsLabelAndNeighbors) {
  sub.handle(msg::SetData(ref("0", 2), *Label::parse("01"), ref("1", 3)));
  ASSERT_TRUE(sub.label().has_value());
  EXPECT_EQ(sub.label()->to_string(), "01");
  ASSERT_TRUE(sub.left().has_value());
  EXPECT_EQ(sub.left()->node, node(2));
  ASSERT_TRUE(sub.right().has_value());
  EXPECT_EQ(sub.right()->node, node(3));
  EXPECT_FALSE(sub.ring().has_value());
}

TEST_F(SubscriberTest, MinimumStoresPredecessorInRing) {
  // The minimum's pred is the maximum (r greater than ours): ring slot.
  sub.handle(msg::SetData(ref("11", 2), *Label::parse("0"), ref("01", 3)));
  EXPECT_FALSE(sub.left().has_value());
  EXPECT_EQ(sub.right()->node, node(3));
  ASSERT_TRUE(sub.ring().has_value());
  EXPECT_EQ(sub.ring()->node, node(2));
}

TEST_F(SubscriberTest, MaximumStoresSuccessorInRing) {
  sub.handle(msg::SetData(ref("01", 2), *Label::parse("11"), ref("0", 3)));
  EXPECT_EQ(sub.left()->node, node(2));
  EXPECT_FALSE(sub.right().has_value());
  ASSERT_TRUE(sub.ring().has_value());
  EXPECT_EQ(sub.ring()->node, node(3));
}

TEST_F(SubscriberTest, EvictionClearsEverything) {
  sub.handle(msg::SetData(ref("0", 2), *Label::parse("01"), ref("1", 3)));
  sub.handle(msg::SetData(std::nullopt, std::nullopt, std::nullopt));
  EXPECT_FALSE(sub.label().has_value());
  EXPECT_FALSE(sub.left().has_value());
  EXPECT_FALSE(sub.right().has_value());
  EXPECT_TRUE(sub.shortcuts().empty());
  EXPECT_EQ(sub.phase(), SubscriberPhase::kActive);  // not leaving: re-subscribes
}

// ---- Linearization (Algorithm 1 semantics) ----------------------------

TEST_F(SubscriberTest, AdoptsFirstNeighborPerSide) {
  give_label("011");  // r = 3/8
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));   // 1/4: left
  sub.handle(msg::Introduce(ref("1", 3), IntroFlag::kLinear));    // 1/2: right
  EXPECT_EQ(sub.left()->node, node(2));
  EXPECT_EQ(sub.right()->node, node(3));
  EXPECT_TRUE(sink.sent.empty());
}

TEST_F(SubscriberTest, CloserCandidateDisplacesAndDelegatesOld) {
  give_label("011");
  sub.handle(msg::Introduce(ref("001", 2), IntroFlag::kLinear));  // left = 1/8
  sub.handle(msg::Introduce(ref("01", 3), IntroFlag::kLinear));   // closer left 1/4
  EXPECT_EQ(sub.left()->node, node(3));
  // Old left was delegated to the new left (it lies between them and us).
  const auto fwd = sink.of_type<msg::Introduce>(node(3));
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0]->cand.node, node(2));
}

TEST_F(SubscriberTest, FartherCandidateIsDelegatedTowardsItsSide) {
  give_label("011");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));   // left 1/4
  sub.handle(msg::Introduce(ref("001", 3), IntroFlag::kLinear));  // farther 1/8
  EXPECT_EQ(sub.left()->node, node(2));  // unchanged
  const auto fwd = sink.of_type<msg::Introduce>(node(2));
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0]->cand.node, node(3));
}

TEST_F(SubscriberTest, SelfReferenceIsIgnored) {
  give_label("011");
  sub.handle(msg::Introduce(LabeledRef{*Label::parse("01"), kSelf}, IntroFlag::kLinear));
  EXPECT_FALSE(sub.left().has_value());
  EXPECT_TRUE(sink.sent.empty());
}

TEST_F(SubscriberTest, LabellessNodeAsksIntroducersToDropIt) {
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));
  const auto rm = sink.of_type<msg::RemoveConnections>(node(2));
  ASSERT_EQ(rm.size(), 1u);
  EXPECT_EQ(rm[0]->who, kSelf);
}

TEST_F(SubscriberTest, StaleNeighborLabelIsCorrectedInPlace) {
  give_label("011");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));
  // Node 2 reintroduces itself with an updated (still-left) label.
  sub.handle(msg::Introduce(ref("001", 2), IntroFlag::kLinear));
  EXPECT_EQ(sub.left()->node, node(2));
  EXPECT_EQ(sub.left()->label.to_string(), "001");
}

TEST_F(SubscriberTest, NeighborMovingToOtherSideIsRehomed) {
  give_label("011");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));  // left
  // Node 2's corrected label now places it right of us.
  sub.handle(msg::Introduce(ref("1", 2), IntroFlag::kLinear));
  EXPECT_FALSE(sub.left().has_value());
  ASSERT_TRUE(sub.right().has_value());
  EXPECT_EQ(sub.right()->node, node(2));
}

TEST_F(SubscriberTest, EqualPositionConflictAsksSupervisor) {
  give_label("011");
  sub.handle(msg::Introduce(ref("011", 2), IntroFlag::kLinear));
  const auto asks = sink.of_type<msg::GetConfiguration>(kSup);
  ASSERT_EQ(asks.size(), 2u);  // for the impostor and for ourselves
  EXPECT_EQ(asks[0]->subject, node(2));
  EXPECT_EQ(asks[1]->subject, kSelf);
}

// ---- Check / label correction (extended BuildRing, Lemma 4) -----------

TEST_F(SubscriberTest, CheckWithCorrectBelievedLabelIntegratesSender) {
  give_label("011");
  sub.handle(msg::Check(ref("01", 2), *Label::parse("011"), IntroFlag::kLinear));
  EXPECT_EQ(sub.left()->node, node(2));
  EXPECT_TRUE(sink.sent.empty());
}

TEST_F(SubscriberTest, CheckWithStaleBelievedLabelRepliesCorrection) {
  give_label("011");
  sub.handle(msg::Check(ref("01", 2), *Label::parse("111"), IntroFlag::kLinear));
  // We do not adopt the sender; we send our true label back.
  EXPECT_FALSE(sub.left().has_value());
  const auto reply = sink.of_type<msg::Introduce>(node(2));
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0]->cand.node, kSelf);
  EXPECT_EQ(reply[0]->cand.label.to_string(), "011");
}

// ---- Ring closure (Algorithm 2 semantics) ------------------------------

TEST_F(SubscriberTest, BelievedMinimumFloatsItsReferenceRight) {
  give_label("0");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));  // right
  sink.clear();
  sub.timeout();
  // No left, no ring: the believed minimum floats itself rightwards (CYC).
  const auto cycs = sink.of_type<msg::Introduce>(node(2));
  bool found = false;
  for (const auto* m : cycs) {
    if (m->flag == IntroFlag::kCyclic && m->cand.node == kSelf) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(SubscriberTest, InteriorRoutesCyclicCandidateTowardsMax) {
  give_label("01");
  sub.handle(msg::Introduce(ref("001", 2), IntroFlag::kLinear));  // left
  sub.handle(msg::Introduce(ref("011", 3), IntroFlag::kLinear));  // right
  sink.clear();
  sub.handle(msg::Introduce(ref("0", 4), IntroFlag::kCyclic));  // min candidate
  const auto fwd = sink.of_type<msg::Introduce>(node(3));
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0]->cand.node, node(4));
  EXPECT_EQ(fwd[0]->flag, IntroFlag::kCyclic);
}

TEST_F(SubscriberTest, BelievedMaxAdoptsMinCandidateAsRing) {
  give_label("11");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kLinear));  // left
  sub.handle(msg::Introduce(ref("0", 3), IntroFlag::kCyclic));   // min candidate
  ASSERT_TRUE(sub.ring().has_value());
  EXPECT_EQ(sub.ring()->node, node(3));
}

TEST_F(SubscriberTest, BetterMinCandidateReplacesRingAndRelinearizesLoser) {
  give_label("11");
  sub.handle(msg::Introduce(ref("01", 2), IntroFlag::kCyclic));  // provisional ring
  ASSERT_TRUE(sub.ring().has_value());
  sub.handle(msg::Introduce(ref("0", 3), IntroFlag::kCyclic));  // the true min
  EXPECT_EQ(sub.ring()->node, node(3));
  // The displaced candidate re-enters linear sorting as our left.
  ASSERT_TRUE(sub.left().has_value());
  EXPECT_EQ(sub.left()->node, node(2));
}

TEST_F(SubscriberTest, InteriorNodeShedsItsRingEdgeOnTimeout) {
  give_label("01");
  sub.handle(msg::Introduce(ref("001", 2), IntroFlag::kLinear));
  sub.handle(msg::Introduce(ref("011", 3), IntroFlag::kLinear));
  sub.chaos_set_ring(ref("1", 4));  // corrupted: interior with a ring edge
  sub.timeout();
  EXPECT_FALSE(sub.ring().has_value());
  // The stray reference was not dropped: it went back into linearization
  // (to the right neighbor, since 1/2 > 3/8 > us at 1/4... it became our
  // right's problem or our new right).
  const bool kept_locally = sub.right() && sub.right()->node == node(4);
  const bool delegated = !sink.of_type<msg::Introduce>(node(3)).empty();
  EXPECT_TRUE(kept_locally || delegated);
}

// ---- Configuration merge (action (iii)) --------------------------------

TEST_F(SubscriberTest, CloserStoredNeighborTriggersConfigRequest) {
  give_label("01");
  sub.chaos_set_left(ref("00101", 7));  // very close on the left (5/32)
  // Supervisor proposes a farther-left pred (1/8 = "001").
  sub.handle(msg::SetData(ref("001", 2), *Label::parse("01"), ref("1", 3)));
  // Action (iii): ask the supervisor to configure the unknown closer node.
  const auto asks = sink.of_type<msg::GetConfiguration>(kSup);
  ASSERT_GE(asks.size(), 1u);
  EXPECT_EQ(asks[0]->subject, node(7));
  // The closer neighbor is kept; the proposal is delegated, not adopted.
  EXPECT_EQ(sub.left()->node, node(7));
}

TEST_F(SubscriberTest, MatchingProposalCausesNoRequests) {
  give_label("01");
  sub.chaos_set_left(ref("001", 2));
  sub.chaos_set_right(ref("1", 3));
  sub.handle(msg::SetData(ref("001", 2), *Label::parse("01"), ref("1", 3)));
  EXPECT_TRUE(sink.sent.empty());  // closure: nothing to fix, nothing sent
}

TEST_F(SubscriberTest, TrustedProposalDisplacesEqualLabelIncumbent) {
  // §3.3: a crashed node can hold our neighbor label forever; the
  // supervisor's configuration must win.
  give_label("01");
  sub.chaos_set_right(ref("1", 66));  // dead impostor
  sub.handle(msg::SetData(ref("001", 2), *Label::parse("01"), ref("1", 3)));
  EXPECT_EQ(sub.right()->node, node(3));
  // The incumbent is reported to the supervisor rather than dropped
  // silently.
  const auto asks = sink.of_type<msg::GetConfiguration>(kSup);
  bool asked_for_incumbent = false;
  for (const auto* a : asks) asked_for_incumbent |= (a->subject == node(66));
  EXPECT_TRUE(asked_for_incumbent);
}

// ---- Shortcut maintenance (§3.2.2) -------------------------------------

TEST_F(SubscriberTest, ShortcutTableTracksExpectedLabels) {
  // SR(16) geometry: v = "01" with ring neighbors 3/16 and 5/16 expects
  // shortcut labels {0, 001, 011, 1}.
  give_label("01");
  sub.chaos_set_left(ref("0011", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.timeout();
  std::vector<std::string> labels;
  for (const auto& [l, n] : sub.shortcuts()) labels.push_back(l.to_string());
  EXPECT_EQ(labels, (std::vector<std::string>{"0", "001", "011", "1"}));
}

TEST_F(SubscriberTest, UnexpectedShortcutEntriesAreRelinearizedNotDropped) {
  give_label("01");
  sub.chaos_set_left(ref("0011", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.chaos_put_shortcut(*Label::parse("0111"), node(9));  // junk entry
  sub.timeout();
  EXPECT_FALSE(sub.shortcuts().contains(*Label::parse("0111")));
  // 7/16 lies right of 1/4: the evicted reference went towards the right.
  const auto fwd = sink.of_type<msg::Introduce>(node(3));
  bool delegated = false;
  for (const auto* m : fwd) delegated |= (m->cand.node == node(9));
  EXPECT_TRUE(delegated);
}

TEST_F(SubscriberTest, IntroduceShortcutFillsExpectedSlot) {
  give_label("01");
  sub.chaos_set_left(ref("0011", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.timeout();
  sub.handle(msg::IntroduceShortcut(ref("001", 5)));
  EXPECT_EQ(sub.shortcuts().at(*Label::parse("001")), node(5));
}

TEST_F(SubscriberTest, IntroduceShortcutReplacesAndRelinearizesOldRef) {
  give_label("01");
  sub.chaos_set_left(ref("0011", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.timeout();
  sub.handle(msg::IntroduceShortcut(ref("001", 5)));
  sink.clear();
  sub.handle(msg::IntroduceShortcut(ref("001", 6)));
  EXPECT_EQ(sub.shortcuts().at(*Label::parse("001")), node(6));
  // Node 5 re-entered the ring: delegated leftwards (1/8 < 1/4).
  const auto fwd = sink.of_type<msg::Introduce>(node(2));
  bool delegated = false;
  for (const auto* m : fwd) delegated |= (m->cand.node == node(5));
  EXPECT_TRUE(delegated);
}

TEST_F(SubscriberTest, LevelPartnersAreIntroducedToEachOther) {
  // v = "01" (k = 2): level-2 partners are "0" (left chain end) and "1"
  // (right chain end). Once both refs are known, each Timeout introduces
  // them to each other.
  give_label("01");
  sub.chaos_set_left(ref("0011", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.timeout();
  sub.handle(msg::IntroduceShortcut(ref("0", 10)));
  sub.handle(msg::IntroduceShortcut(ref("1", 11)));
  sink.clear();
  sub.timeout();
  const auto to_zero = sink.of_type<msg::IntroduceShortcut>(node(10));
  const auto to_one = sink.of_type<msg::IntroduceShortcut>(node(11));
  ASSERT_EQ(to_zero.size(), 1u);
  ASSERT_EQ(to_one.size(), 1u);
  EXPECT_EQ(to_zero[0]->cand.node, node(11));
  EXPECT_EQ(to_one[0]->cand.node, node(10));
}

// ---- Unsubscribe / departed (Lemma 6) ----------------------------------

TEST_F(SubscriberTest, RequestUnsubscribeSendsAndRetries) {
  give_label("01");
  sub.request_unsubscribe();
  EXPECT_EQ(sub.phase(), SubscriberPhase::kLeaving);
  EXPECT_EQ(sink.of_type<msg::Unsubscribe>(kSup).size(), 1u);
  sub.timeout();  // retry until granted
  EXPECT_EQ(sink.of_type<msg::Unsubscribe>(kSup).size(), 2u);
}

TEST_F(SubscriberTest, PermissionCompletesDeparture) {
  give_label("01");
  sub.request_unsubscribe();
  sub.handle(msg::SetData(std::nullopt, std::nullopt, std::nullopt));
  EXPECT_TRUE(sub.departed());
  EXPECT_FALSE(sub.label().has_value());
}

TEST_F(SubscriberTest, DepartedAnswersIntroductionsWithRemoveConnections) {
  give_label("01");
  sub.request_unsubscribe();
  sub.handle(msg::SetData(std::nullopt, std::nullopt, std::nullopt));
  sink.clear();
  sub.handle(msg::Check(ref("001", 2), *Label::parse("01"), IntroFlag::kLinear));
  const auto rm = sink.of_type<msg::RemoveConnections>(node(2));
  ASSERT_EQ(rm.size(), 1u);
  EXPECT_EQ(rm[0]->who, kSelf);
}

TEST_F(SubscriberTest, DepartedTimeoutIsSilent) {
  give_label("01");
  sub.request_unsubscribe();
  sub.handle(msg::SetData(std::nullopt, std::nullopt, std::nullopt));
  sink.clear();
  sub.timeout();
  EXPECT_TRUE(sink.sent.empty());
}

TEST_F(SubscriberTest, RemoveConnectionsPurgesAllSlots) {
  give_label("01");
  sub.chaos_set_left(ref("001", 2));
  sub.chaos_set_right(ref("0101", 2));
  sub.chaos_put_shortcut(*Label::parse("1"), node(2));
  sub.handle(msg::RemoveConnections(node(2)));
  EXPECT_FALSE(sub.left().has_value());
  EXPECT_FALSE(sub.right().has_value());
  EXPECT_TRUE(sub.shortcuts().at(*Label::parse("1")).is_null());
}

// ---- Introspection ------------------------------------------------------

TEST_F(SubscriberTest, NeighborSetsAreDistinctAndNonNull) {
  give_label("01");
  sub.chaos_set_left(ref("001", 2));
  sub.chaos_set_right(ref("0101", 3));
  sub.chaos_put_shortcut(*Label::parse("1"), node(3));       // duplicate of right
  sub.chaos_put_shortcut(*Label::parse("0"), sim::NodeId{});  // unknown slot
  EXPECT_EQ(sub.ring_neighbors().size(), 2u);
  EXPECT_EQ(sub.overlay_neighbors().size(), 2u);  // dedup + null skipped
}

}  // namespace
}  // namespace ssps::core
