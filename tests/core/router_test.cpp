// Greedy routing over SR(n) (SkipRingSpec::route): termination, hop
// bounds, load accounting — the machinery behind experiment E9.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/skip_ring_spec.hpp"

namespace ssps::core {
namespace {

TEST(Router, SelfRouteIsZero) {
  const SkipRingSpec spec(16);
  const Label a = *Label::parse("01");
  EXPECT_EQ(spec.route(a, a, nullptr), 0);
}

TEST(Router, NeighborRouteIsOne) {
  const SkipRingSpec spec(16);
  EXPECT_EQ(spec.route(*Label::parse("0"), *Label::parse("0001"), nullptr), 1);
  EXPECT_EQ(spec.route(*Label::parse("0"), *Label::parse("1"), nullptr), 1);
}

class RouterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RouterSweep, AllSampledRoutesTerminateWithinDiameterBound) {
  const std::size_t n = GetParam();
  const SkipRingSpec spec(n);
  const auto& order = spec.ring_order();
  ssps::Rng rng(n);
  // Greedy can exceed the BFS diameter but must stay logarithmic-ish.
  const int bound = 4 * static_cast<int>(std::log2(static_cast<double>(n))) + 4;
  for (int trial = 0; trial < 300; ++trial) {
    const Label& a = order[rng.pick_index(order)];
    const Label& b = order[rng.pick_index(order)];
    const int hops = spec.route(a, b, nullptr);
    EXPECT_LE(hops, bound) << "n=" << n << " " << a.to_string() << "->" << b.to_string();
    if (!(a == b)) EXPECT_GE(hops, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RouterSweep,
                         ::testing::Values(2, 3, 8, 16, 31, 64, 129, 256, 1024));

TEST(Router, LoadCountsIntermediatesOnly) {
  const SkipRingSpec spec(64);
  const auto& order = spec.ring_order();
  std::vector<std::uint64_t> load(64, 0);
  const int hops = spec.route(order[3], order[35], &load);
  std::uint64_t total = 0;
  for (std::uint64_t l : load) total += l;
  // Intermediates = hops − 1 (the final hop lands on the target, which is
  // not a relay), and neither endpoint is counted.
  EXPECT_EQ(total, static_cast<std::uint64_t>(hops - 1));
  EXPECT_EQ(load[3], 0u);
  EXPECT_EQ(load[35], 0u);
}

TEST(Router, RouteBetweenOppositeSemicirclesUsesHubs) {
  // Long routes cross the semicircle boundary through short-label nodes —
  // the structural fact behind the E9c trade-off.
  const SkipRingSpec spec(256);
  const auto& order = spec.ring_order();
  std::vector<std::uint64_t> load(256, 0);
  ssps::Rng rng(9);
  for (int t = 0; t < 2000; ++t) {
    const std::size_t a = static_cast<std::size_t>(rng.below(128));         // left half
    const std::size_t b = 128 + static_cast<std::size_t>(rng.below(128));  // right half
    spec.route(order[a], order[b], &load);
  }
  // The two level-1 nodes ("0" at position 0, "1" at position 128) carry
  // far more than the median node.
  std::vector<std::uint64_t> sorted = load;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t median = sorted[sorted.size() / 2];
  EXPECT_GT(load[spec.position(*Label::parse("0"))] + load[spec.position(*Label::parse("1"))],
            4 * median);
}

TEST(Router, HopsMatchBfsDistanceForSmallRings) {
  // Greedy is not always shortest-path, but on SR(n) with full shortcut
  // tables it should stay within a small factor of BFS.
  for (std::size_t n : {8u, 16u, 32u}) {
    const SkipRingSpec spec(n);
    const auto& order = spec.ring_order();
    for (const Label& a : order) {
      const auto dist = spec.hops_from(a);
      for (const Label& b : order) {
        const int greedy = spec.route(a, b, nullptr);
        const int bfs = dist.at(b.r_key());
        EXPECT_LE(greedy, 2 * bfs + 1)
            << "n=" << n << " " << a.to_string() << "->" << b.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace ssps::core
