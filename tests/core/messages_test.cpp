// Wire-format coverage for every protocol message: collect_refs must
// surface exactly the carried node references (the model's implicit
// edges), and wire_size must scale with the payload (the E6 byte
// accounting depends on it).
#include "core/messages.hpp"

#include <gtest/gtest.h>

#include "pubsub/pubsub_node.hpp"
#include "pubsub/topics.hpp"

namespace ssps::core {
namespace {

std::vector<sim::NodeId> refs_of(const sim::Message& m) {
  std::vector<sim::NodeId> out;
  m.collect_refs(out);
  return out;
}

TEST(Messages, SubscribeCarriesTheJoiner) {
  const msg::Subscribe m(sim::NodeId{5});
  EXPECT_EQ(refs_of(m), std::vector<sim::NodeId>{sim::NodeId{5}});
  EXPECT_EQ(m.name(), "Subscribe");
  EXPECT_GT(m.wire_size(), 8u);
}

TEST(Messages, GetConfigurationCarriesSubjectAndRequester) {
  const msg::GetConfiguration m(sim::NodeId{5}, sim::NodeId{6});
  EXPECT_EQ(refs_of(m), (std::vector<sim::NodeId>{sim::NodeId{5}, sim::NodeId{6}}));
  const msg::GetConfiguration self_only(sim::NodeId{5});
  EXPECT_EQ(refs_of(self_only), std::vector<sim::NodeId>{sim::NodeId{5}});
}

TEST(Messages, SetDataCarriesBothProposals) {
  const LabeledRef pred{*Label::parse("0"), sim::NodeId{2}};
  const LabeledRef succ{*Label::parse("1"), sim::NodeId{3}};
  const msg::SetData full(pred, *Label::parse("01"), succ);
  EXPECT_EQ(refs_of(full), (std::vector<sim::NodeId>{sim::NodeId{2}, sim::NodeId{3}}));
  const msg::SetData empty(std::nullopt, std::nullopt, std::nullopt);
  EXPECT_TRUE(refs_of(empty).empty());
}

TEST(Messages, CheckCarriesSenderOnly) {
  const msg::Check m(LabeledRef{*Label::parse("01"), sim::NodeId{4}},
                     *Label::parse("011"), IntroFlag::kLinear);
  EXPECT_EQ(refs_of(m), std::vector<sim::NodeId>{sim::NodeId{4}});
}

TEST(Messages, IntroduceAndShortcutCarryTheCandidate) {
  const LabeledRef cand{*Label::parse("101"), sim::NodeId{9}};
  EXPECT_EQ(refs_of(msg::Introduce(cand, IntroFlag::kCyclic)),
            std::vector<sim::NodeId>{sim::NodeId{9}});
  EXPECT_EQ(refs_of(msg::IntroduceShortcut(cand)),
            std::vector<sim::NodeId>{sim::NodeId{9}});
}

TEST(Messages, PublishWireSizeScalesWithPayload) {
  using pubsub::Publication;
  std::vector<Publication> small{{sim::NodeId{1}, "x"}};
  std::vector<Publication> big{{sim::NodeId{1}, std::string(1000, 'y')}};
  const pubsub::msg::Publish a(small);
  const pubsub::msg::Publish b(big);
  EXPECT_GT(b.wire_size(), a.wire_size() + 900);
}

TEST(Messages, CheckTrieWireSizeScalesWithTuples) {
  using pubsub::NodeSummary;
  std::vector<NodeSummary> one{
      NodeSummary{pubsub::BitString::from_string("0101"), pubsub::Digest{}}};
  std::vector<NodeSummary> three(3, one[0]);
  const pubsub::msg::CheckTrie a(sim::NodeId{1}, one);
  const pubsub::msg::CheckTrie b(sim::NodeId{1}, three);
  EXPECT_GT(b.wire_size(), a.wire_size());
  EXPECT_EQ(refs_of(a), std::vector<sim::NodeId>{sim::NodeId{1}});
}

TEST(Messages, CheckAndPublishCarriesSenderAndSizes) {
  const pubsub::msg::CheckAndPublish m(sim::NodeId{7}, {},
                                       pubsub::BitString::from_string("101"));
  EXPECT_EQ(refs_of(m), std::vector<sim::NodeId>{sim::NodeId{7}});
  EXPECT_EQ(m.name(), "CheckAndPublish");
}

TEST(Messages, PublishNewCarriesOriginRef) {
  const pubsub::msg::PublishNew m(pubsub::Publication{sim::NodeId{3}, "p"});
  EXPECT_EQ(refs_of(m), std::vector<sim::NodeId>{sim::NodeId{3}});
}

TEST(Messages, TopicEnvelopeForwardsEverything) {
  sim::MessagePool pool;
  auto inner = pool.make<msg::Check>(LabeledRef{*Label::parse("01"), sim::NodeId{4}},
                                     *Label::parse("011"), IntroFlag::kLinear);
  const std::size_t inner_size = inner->wire_size();
  const pubsub::TopicEnvelope env(9, std::move(inner));
  EXPECT_EQ(env.name(), "Check");
  EXPECT_EQ(env.wire_size(), inner_size + sizeof(pubsub::TopicId));
  EXPECT_EQ(refs_of(env), std::vector<sim::NodeId>{sim::NodeId{4}});
}

TEST(Messages, AllCoreNamesAreDistinct) {
  std::set<std::string_view> names;
  names.insert(msg::Subscribe(sim::NodeId{1}).name());
  names.insert(msg::Unsubscribe(sim::NodeId{1}).name());
  names.insert(msg::GetConfiguration(sim::NodeId{1}).name());
  names.insert(msg::SetData(std::nullopt, std::nullopt, std::nullopt).name());
  names.insert(msg::Check(LabeledRef{*Label::parse("0"), sim::NodeId{1}},
                          *Label::parse("0"), IntroFlag::kLinear)
                   .name());
  names.insert(
      msg::Introduce(LabeledRef{*Label::parse("0"), sim::NodeId{1}}, IntroFlag::kLinear)
          .name());
  names.insert(msg::RemoveConnections(sim::NodeId{1}).name());
  names.insert(
      msg::IntroduceShortcut(LabeledRef{*Label::parse("0"), sim::NodeId{1}}).name());
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace ssps::core
