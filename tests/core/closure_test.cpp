// Theorem 13 (Network Closure): once the explicit edges form SR(n), they
// are preserved — and the steady-state maintenance traffic is bounded.
#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hpp"

namespace ssps::core {
namespace {

/// Snapshot of every subscriber's explicit protocol state.
std::string state_fingerprint(const SkipRingSystem& sys) {
  std::ostringstream out;
  for (sim::NodeId id : sys.subscriber_ids()) {
    const SubscriberProtocol& sub = sys.subscriber(id);
    out << id.value << ":";
    out << (sub.label() ? sub.label()->to_string() : "_") << ";";
    auto slot = [&](const std::optional<LabeledRef>& s) {
      if (s) {
        out << s->label.to_string() << "@" << s->node.value;
      } else {
        out << "_";
      }
      out << ";";
    };
    slot(sub.left());
    slot(sub.right());
    slot(sub.ring());
    for (const auto& [l, n] : sub.shortcuts()) {
      out << l.to_string() << "@" << n.value << ",";
    }
    out << "|";
  }
  return out.str();
}

class Closure : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Closure, StateIsFrozenAfterLegitimacy) {
  const std::size_t n = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 11 + n, .fd_delay = 0});
  sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value()) << sys.legitimacy_violation();
  const std::string before = state_fingerprint(sys);
  for (int round = 0; round < 50; ++round) {
    sys.net().run_round();
    ASSERT_TRUE(sys.topology_legit())
        << "round " << round << ": " << sys.legitimacy_violation();
    ASSERT_EQ(state_fingerprint(sys), before) << "round " << round;
  }
}

TEST_P(Closure, SteadyStateTrafficIsConstantPerNode) {
  const std::size_t n = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 3 + n, .fd_delay = 0});
  sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());
  sys.net().run_rounds(5);  // drain transients
  sys.net().metrics().reset();
  const std::size_t window = 40;
  sys.net().run_rounds(window);
  const double per_node_round =
      static_cast<double>(sys.net().metrics().total_sent()) /
      static_cast<double>(window) / static_cast<double>(n + 1);
  // Each node sends a handful of maintenance messages per round
  // (2 Checks, ≤2 shortcut introductions, the supervisor 1 config, plus
  // the rare probabilistic GetConfiguration): comfortably below 8.
  EXPECT_LT(per_node_round, 8.0) << "n=" << n;
  EXPECT_GT(per_node_round, 0.5) << "n=" << n;  // it is not silent either
}

TEST_P(Closure, NoRemoveConnectionsOrSubscribesInSteadyState) {
  const std::size_t n = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 17 + n, .fd_delay = 0});
  sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());
  sys.net().run_rounds(5);
  sys.net().metrics().reset();
  sys.net().run_rounds(30);
  EXPECT_EQ(sys.net().metrics().sent("Subscribe"), 0u);
  EXPECT_EQ(sys.net().metrics().sent("Unsubscribe"), 0u);
  EXPECT_EQ(sys.net().metrics().sent("RemoveConnections"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Closure, ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(Closure, DatabaseNeverChangesWithoutChurn) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 4, .fd_delay = 0});
  sys.add_subscribers(12);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  const auto before = sys.supervisor().database();
  sys.net().run_rounds(60);
  EXPECT_EQ(sys.supervisor().database(), before);
}

TEST(Closure, AsyncSchedulerPreservesLegitimacyToo) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 9, .fd_delay = 0});
  sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  const std::string before = state_fingerprint(sys);
  sys.net().run_steps(50000);
  // Drain whatever is in flight, then compare.
  sys.net().run_rounds(3);
  EXPECT_EQ(state_fingerprint(sys), before);
  EXPECT_TRUE(sys.topology_legit()) << sys.legitimacy_violation();
}

}  // namespace
}  // namespace ssps::core
