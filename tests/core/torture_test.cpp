// Torture: everything at once. Churn + crashes + state corruption +
// publication traffic on one long-running system, interleaved with both
// schedulers — if any interaction between the mechanisms is broken, this
// is where it surfaces.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/chaos.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::core {
namespace {

class Torture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Torture, EverythingAtOnceEventuallyStabilizes) {
  const std::uint64_t seed = GetParam();
  pubsub::PubSubConfig cfg;
  cfg.flooding = true;
  pubsub::PubSubSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 4}, cfg);
  std::vector<sim::NodeId> ids = sys.add_pubsub_subscribers(20);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());

  ssps::Rng rng(seed * 7 + 3);
  std::size_t published = 0;
  std::size_t alive_subscribers = ids.size();

  // 12 waves of mixed trouble.
  for (int wave = 0; wave < 12; ++wave) {
    switch (rng.below(5)) {
      case 0: {  // churn in
        for (int i = 0; i < 2; ++i) {
          ids.push_back(sys.add_pubsub_subscriber());
          ++alive_subscribers;
        }
        break;
      }
      case 1: {  // churn out (keep a core population)
        if (alive_subscribers > 8) {
          for (sim::NodeId id : ids) {
            if (sys.net().alive(id) &&
                sys.subscriber(id).phase() == SubscriberPhase::kActive) {
              sys.request_unsubscribe(id);
              --alive_subscribers;
              break;
            }
          }
        }
        break;
      }
      case 2: {  // crash
        if (alive_subscribers > 8) {
          for (sim::NodeId id : ids) {
            if (sys.net().alive(id) &&
                sys.subscriber(id).phase() == SubscriberPhase::kActive) {
              sys.crash(id);
              --alive_subscribers;
              break;
            }
          }
        }
        break;
      }
      case 3: {  // corrupt state
        ChaosOptions chaos;
        chaos.seed = rng.next();
        chaos.junk_messages = 16;
        corrupt_system(sys, chaos);
        break;
      }
      default: {  // publish into the turbulence
        for (sim::NodeId id : ids) {
          if (sys.net().alive(id) && !sys.subscriber(id).departed()) {
            sys.pubsub(id).publish("wave-" + std::to_string(wave));
            ++published;
            break;
          }
        }
        break;
      }
    }
    // A burst of progress under either scheduler.
    if (rng.chance(1, 2)) {
      sys.net().run_rounds(rng.between(2, 8));
    } else {
      sys.net().run_steps(rng.between(500, 3000));
    }
  }

  // Quiescence: the system must fully stabilize...
  const auto rounds = sys.run_until_legit(30000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  // ... and all surviving active subscribers agree on the history. Only
  // publications whose every holder crashed may be missing; publications
  // are never partially delivered.
  const auto pubs_ok =
      sys.net().run_until([&] { return sys.publications_converged(); }, 5000);
  ASSERT_TRUE(pubs_ok.has_value());
  EXPECT_LE(sys.distinct_publications(), published);

  // Closure — with a caveat: the paper's "legitimate state" includes the
  // channels, and chaos-era messages may still be in flight when the
  // explicit edges first look correct; such a message may perturb the
  // topology once more. Require that the system reaches a state that
  // stays legitimate for 10 consecutive rounds.
  bool ten_clean_rounds = false;
  for (int attempt = 0; attempt < 50 && !ten_clean_rounds; ++attempt) {
    ten_clean_rounds = true;
    for (int i = 0; i < 10; ++i) {
      sys.net().run_round();
      if (!sys.topology_legit()) {
        ten_clean_rounds = false;
        ASSERT_TRUE(sys.run_until_legit(30000).has_value())
            << sys.legitimacy_violation();
        break;
      }
    }
  }
  EXPECT_TRUE(ten_clean_rounds) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ssps::core
