// Theorem 5: in a legitimate state, the expected number of configuration
// requests arriving at the supervisor per timeout interval is O(1),
// independent of n.
//
// Note on the constant: the theorem's proof sums Σ_k 2^{k−1}/(2^k k²) < 1
// using f(k) = 2^{k−1} for all k, but the label function produces TWO
// labels of length 1 ("0" and "1", f(1) = 2 — the paper's own Lemma 3
// says so), and the believed-minimum node fires action (iv) at the same
// 1/2 rate. The exact steady-state expectation is therefore
//   Σ_k f(k)/(2^k k²) = 2·(1/2) + Σ_{k≥2} 1/(2k²) ≈ 1.32,
// still a constant independent of n — the substance of the theorem — but
// above the stated bound of 1. EXPERIMENTS.md discusses the discrepancy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/system.hpp"

namespace ssps::core {
namespace {

double measured_requests_per_round(std::size_t n, std::uint64_t seed,
                                   std::size_t rounds) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(n);
  EXPECT_TRUE(sys.run_until_legit(4000).has_value());
  sys.net().run_rounds(5);
  sys.net().metrics().reset();
  sys.net().run_rounds(rounds);
  const auto requests =
      sys.net().metrics().sent("GetConfiguration") + sys.net().metrics().sent("Subscribe");
  return static_cast<double>(requests) / static_cast<double>(rounds);
}

double predicted_requests(std::size_t n) {
  // Σ over the real label population: f(1) = 2, f(k) = 2^{k−1} for k ≥ 2,
  // truncated at the population actually present.
  double expected = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    const int k = Label::from_index(x).length();
    expected += 1.0 / (std::pow(2.0, k) * k * k);
  }
  return expected;
}

class Theorem5 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem5, SteadyStateRequestRateMatchesPrediction) {
  const std::size_t n = GetParam();
  const double measured = measured_requests_per_round(n, 1000 + n, 600);
  const double predicted = predicted_requests(n);
  // Generous statistical tolerance: 600 rounds of Bernoulli sums.
  EXPECT_NEAR(measured, predicted, 0.35) << "n=" << n;
  // The substance of Theorem 5: a constant, independent of n.
  EXPECT_LT(measured, 2.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem5, ::testing::Values(4, 16, 64, 256));

TEST(Theorem5, RateDoesNotGrowWithN) {
  const double small = measured_requests_per_round(8, 77, 400);
  const double large = measured_requests_per_round(256, 78, 400);
  EXPECT_LT(large, small + 0.8);
}

TEST(Theorem5, PredictionConvergesBelowOnePointFive) {
  // The corrected series: 1 + Σ_{k≥2} 1/(2k²) = 1 + (π²/12 − 1/2) ≈ 1.32.
  // n = 2^20 truncates at k = 21, leaving a tail of Σ_{k>21} 1/(2k²) ≈ 0.024.
  const double limit = 1.0 + (M_PI * M_PI / 12.0 - 0.5);
  EXPECT_NEAR(predicted_requests(1 << 20), limit, 0.05);
  EXPECT_LT(predicted_requests(1 << 20), 1.5);
}

TEST(Theorem5, SupervisorSendsExactlyOneConfigPerRoundSteadyState) {
  // The supervisor's own maintenance: one round-robin SetData per Timeout
  // plus one reply per incoming request — nothing else.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 5, .fd_delay = 0});
  sys.add_subscribers(32);
  ASSERT_TRUE(sys.run_until_legit(1500).has_value());
  sys.net().run_rounds(5);
  sys.net().metrics().reset();
  const std::size_t rounds = 200;
  sys.net().run_rounds(rounds);
  const auto requests = sys.net().metrics().sent("GetConfiguration");
  const auto configs = sys.net().metrics().sent("SetData");
  EXPECT_LE(configs, rounds + requests + 2);
  EXPECT_GE(configs, rounds - 2);
}

}  // namespace
}  // namespace ssps::core
