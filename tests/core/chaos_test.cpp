// Tests for the adversarial-state generators themselves: the corruption
// classes they claim to produce must actually be present, they must be
// deterministic per seed, and they must respect the model's constraint
// that references denote existing nodes (§1.1: no corrupted IDs).
#include "core/chaos.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

namespace ssps::core {
namespace {

std::unique_ptr<SkipRingSystem> converged(std::size_t n, std::uint64_t seed) {
  auto sys = std::make_unique<SkipRingSystem>(
      SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys->add_subscribers(n);
  EXPECT_TRUE(sys->run_until_legit(2000).has_value());
  return sys;
}

TEST(Chaos, ActuallyBreaksLegitimacy) {
  auto sys_ptr = converged(16, 1);
  SkipRingSystem& sys = *sys_ptr;
  ChaosOptions chaos;
  chaos.seed = 2;
  corrupt_system(sys, chaos);
  EXPECT_FALSE(sys.topology_legit());
}

TEST(Chaos, AllInjectedReferencesDenoteExistingNodes) {
  auto sys_ptr = converged(20, 3);
  SkipRingSystem& sys = *sys_ptr;
  ChaosOptions chaos;
  chaos.seed = 4;
  chaos.junk_messages = 100;
  corrupt_system(sys, chaos);
  const std::set<std::uint64_t> alive = [&] {
    std::set<std::uint64_t> out;
    for (sim::NodeId id : sys.net().alive_ids()) out.insert(id.value);
    return out;
  }();
  for (sim::NodeId id : sys.subscriber_ids()) {
    std::vector<sim::NodeId> refs;
    sys.subscriber(id).collect_refs(refs);
    for (sim::NodeId r : refs) {
      EXPECT_TRUE(alive.contains(r.value)) << "dangling reference " << r.value;
    }
  }
}

TEST(Chaos, DatabaseCorruptionClassesArePresent) {
  auto sys_ptr = converged(12, 5);
  SkipRingSystem& sys = *sys_ptr;
  ChaosOptions chaos;
  chaos.seed = 6;
  chaos.null_tuples = 3;
  chaos.duplicate_nodes = 2;
  chaos.missing_labels = 2;
  chaos.out_of_range_labels = 2;
  chaos.junk_messages = 0;
  chaos.clear_label_pct = 0;
  chaos.random_label_pct = 0;
  chaos.scramble_edges_pct = 0;
  chaos.bogus_shortcut_pct = 0;
  corrupt_system(sys, chaos);
  EXPECT_FALSE(sys.supervisor().database_consistent());
  // Null tuples present (case (i)).
  bool has_null = false;
  for (const auto& [label, node] : sys.supervisor().database()) {
    if (!node) has_null = true;
  }
  EXPECT_TRUE(has_null);
}

TEST(Chaos, WipeEmptiesDatabase) {
  auto sys_ptr = converged(10, 7);
  SkipRingSystem& sys = *sys_ptr;
  ChaosOptions chaos;
  chaos.seed = 8;
  chaos.wipe_database = true;
  corrupt_system(sys, chaos);
  EXPECT_EQ(sys.supervisor().size(), 0u);
}

TEST(Chaos, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto sys_ptr = converged(16, 9);
    SkipRingSystem& sys = *sys_ptr;
    ChaosOptions chaos;
    chaos.seed = seed;
    corrupt_system(sys, chaos);
    // Fingerprint the corrupted subscriber state.
    std::string fp;
    for (sim::NodeId id : sys.subscriber_ids()) {
      const auto& sub = sys.subscriber(id);
      fp += sub.label() ? sub.label()->to_string() : "_";
      fp += sub.left() ? std::to_string(sub.left()->node.value) : "x";
      fp += sub.right() ? std::to_string(sub.right()->node.value) : "x";
      fp += ";";
    }
    return fp;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Chaos, ZeroedOptionsLeaveSystemLegitimate) {
  auto sys_ptr = converged(12, 11);
  SkipRingSystem& sys = *sys_ptr;
  ChaosOptions chaos;
  chaos.seed = 12;
  chaos.clear_label_pct = 0;
  chaos.random_label_pct = 0;
  chaos.scramble_edges_pct = 0;
  chaos.bogus_shortcut_pct = 0;
  chaos.corrupt_database = false;
  chaos.junk_messages = 0;
  corrupt_system(sys, chaos);
  EXPECT_TRUE(sys.topology_legit()) << sys.legitimacy_violation();
}

TEST(SplitBrain, BothHalvesAreInternallyConsistentRings) {
  auto sys_ptr = converged(16, 13);
  SkipRingSystem& sys = *sys_ptr;
  split_brain(sys, 14);
  // The database knows exactly half.
  EXPECT_EQ(sys.supervisor().size(), 8u);
  // Every subscriber has a label, and labels within the database half are
  // exactly l(0..7).
  std::size_t labeled = 0;
  for (sim::NodeId id : sys.subscriber_ids()) {
    if (sys.subscriber(id).label()) ++labeled;
  }
  EXPECT_EQ(labeled, 16u);
  EXPECT_FALSE(sys.topology_legit());
}

TEST(SplitBrain, LabelsCollideAcrossHalves) {
  // The interesting difficulty: both halves use labels l(0..m−1), so the
  // merge must resolve label conflicts through the supervisor.
  auto sys_ptr = converged(12, 15);
  SkipRingSystem& sys = *sys_ptr;
  split_brain(sys, 16);
  std::map<std::string, int> count;
  for (sim::NodeId id : sys.subscriber_ids()) {
    const auto& l = sys.subscriber(id).label();
    if (l) count[l->to_string()] += 1;
  }
  int collisions = 0;
  for (const auto& [label, c] : count) {
    if (c > 1) ++collisions;
  }
  EXPECT_GT(collisions, 0);
}

}  // namespace
}  // namespace ssps::core
