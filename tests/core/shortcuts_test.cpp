// Property tests for the local shortcut derivation (§3.2.2): the mirror
// chains must coincide with Definition 2's K_i-ring adjacency.
#include "core/shortcuts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace ssps::core {
namespace {

/// Definition 2, computed directly: for each i, sort K_i = {w : |l_w| <= i}
/// by r and link consecutive nodes (cyclically). Returns, for every label,
/// the set of neighbors over all levels i = 1 … top−1 (the E_S edges) plus
/// the level-top ring neighbors (E_R).
struct GroundTruth {
  std::map<std::string, std::set<std::string>> shortcut_neighbors;  // E_S
  std::map<std::string, std::set<std::string>> ring_neighbors;      // E_R
};

GroundTruth definition2(std::size_t n) {
  GroundTruth gt;
  std::vector<Label> all;
  for (std::uint64_t i = 0; i < n; ++i) all.push_back(Label::from_index(i));
  int top = 0;
  while ((1ULL << top) < n) ++top;

  auto link_ring = [&](const std::vector<Label>& members,
                       std::map<std::string, std::set<std::string>>& out) {
    if (members.size() < 2) return;
    for (std::size_t j = 0; j < members.size(); ++j) {
      const Label& a = members[j];
      const Label& b = members[(j + 1) % members.size()];
      if (a == b) continue;
      out[a.to_string()].insert(b.to_string());
      out[b.to_string()].insert(a.to_string());
    }
  };

  for (int i = 1; i <= top; ++i) {
    std::vector<Label> ki;
    for (const Label& l : all) {
      if (l.length() <= i) ki.push_back(l);
    }
    std::sort(ki.begin(), ki.end());
    link_ring(ki, i == top ? gt.ring_neighbors : gt.shortcut_neighbors);
  }
  return gt;
}

/// The subscriber-side derivation for one node, given the true ring.
std::set<std::string> derived_shortcuts(const Label& me, std::size_t n) {
  std::vector<Label> all;
  for (std::uint64_t i = 0; i < n; ++i) all.push_back(Label::from_index(i));
  std::sort(all.begin(), all.end());
  const auto it = std::find(all.begin(), all.end(), me);
  const std::size_t idx = static_cast<std::size_t>(it - all.begin());
  std::optional<Label> left;
  std::optional<Label> right;
  if (n >= 2) {
    left = all[(idx + n - 1) % n];
    right = all[(idx + 1) % n];
  }
  std::set<std::string> out;
  for (const Label& l : expected_shortcut_labels(me, left, right)) {
    out.insert(l.to_string());
  }
  return out;
}

TEST(MirrorChain, PaperWorkedExample) {
  // v = 1/4 ("01"), left ring neighbor 3/16 ("0011") in SR(16):
  // chain = 1/8 ("001"), 0 ("0").
  const auto chain = mirror_chain(*Label::parse("01"), *Label::parse("0011"));
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].to_string(), "001");
  EXPECT_EQ(chain[1].to_string(), "0");
}

TEST(MirrorChain, RightSideOfWorkedExample) {
  // v = 1/4, right ring neighbor 5/16 ("0101"): chain = 3/8 ("011"),
  // 1/2 ("1").
  const auto chain = mirror_chain(*Label::parse("01"), *Label::parse("0101"));
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].to_string(), "011");
  EXPECT_EQ(chain[1].to_string(), "1");
}

TEST(MirrorChain, EmptyWhenNeighborNotLonger) {
  EXPECT_TRUE(mirror_chain(*Label::parse("01"), *Label::parse("1")).empty());
  EXPECT_TRUE(mirror_chain(*Label::parse("01"), *Label::parse("11")).empty());
}

TEST(MirrorChain, StopsOnCorruptedEqualPosition) {
  // Neighbor at our own position: nothing derivable, no infinite loop.
  EXPECT_TRUE(mirror_chain(*Label::parse("01"), *Label::parse("01")).empty());
  EXPECT_TRUE(mirror_chain(*Label::parse("1"), *Label::parse("10")).empty());
}

TEST(MirrorChain, TerminatesOnArbitraryLabels) {
  // Corrupted geometry must never loop (guard in the implementation).
  for (std::uint64_t b = 0; b < 64; ++b) {
    for (int len = 1; len <= 6; ++len) {
      if (b >= (1ULL << len)) continue;
      const Label nbr(b, len);
      const auto chain = mirror_chain(*Label::parse("011"), nbr);
      EXPECT_LE(chain.size(), static_cast<std::size_t>(Label::kMaxLen + 2));
    }
  }
}

TEST(LevelKPartner, RingNeighborWhenChainEmpty) {
  EXPECT_EQ(level_k_partner(*Label::parse("01"), *Label::parse("1")).to_string(), "1");
}

TEST(LevelKPartner, ChainEndOtherwise) {
  EXPECT_EQ(level_k_partner(*Label::parse("01"), *Label::parse("0011")).to_string(),
            "0");
}

class ShortcutDerivationMatchesDefinition2 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShortcutDerivationMatchesDefinition2, AllNodes) {
  // Soundness: every chain-derived shortcut label is a genuine E_S
  // neighbor per Definition 2. Completeness: the derived shortcuts
  // together with the direct ring neighbors cover ALL Definition-2 edges.
  // (The two sets overlap where E_R and E_S share an edge — e.g. n = 3,
  // where (0, 1/2) is both the wrap edge and the K_1 edge.)
  const std::size_t n = GetParam();
  const GroundTruth gt = definition2(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    const Label me = Label::from_index(x);
    const std::set<std::string> derived = derived_shortcuts(me, n);
    std::set<std::string> es;
    if (auto it = gt.shortcut_neighbors.find(me.to_string());
        it != gt.shortcut_neighbors.end()) {
      es = it->second;
    }
    std::set<std::string> ring;
    if (auto it = gt.ring_neighbors.find(me.to_string());
        it != gt.ring_neighbors.end()) {
      ring = it->second;
    }
    // Soundness.
    for (const std::string& d : derived) {
      EXPECT_TRUE(es.contains(d))
          << "n=" << n << " label=" << me.to_string() << " derived non-edge " << d;
    }
    // Completeness: E_S ⊆ derived ∪ E_R.
    for (const std::string& e : es) {
      EXPECT_TRUE(derived.contains(e) || ring.contains(e))
          << "n=" << n << " label=" << me.to_string() << " missing shortcut " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShortcutDerivationMatchesDefinition2,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 24,
                                           31, 32, 33, 48, 64, 65, 100, 128, 200, 256,
                                           333, 512));

TEST(ShortcutDerivation, SymmetricAcrossAllNodes) {
  // If a derives b as a shortcut, then b derives a (or holds it as a ring
  // neighbor) — otherwise the level-k introductions could not fill both
  // tables.
  for (std::size_t n : {5, 16, 37, 64}) {
    const GroundTruth gt = definition2(n);
    for (std::uint64_t x = 0; x < n; ++x) {
      const Label a = Label::from_index(x);
      for (const std::string& b : derived_shortcuts(a, n)) {
        const Label lb = *Label::parse(b);
        const auto back = derived_shortcuts(lb, n);
        const auto rn = gt.ring_neighbors.find(b);
        const bool is_ring_nbr =
            rn != gt.ring_neighbors.end() && rn->second.contains(a.to_string());
        EXPECT_TRUE(back.contains(a.to_string()) || is_ring_nbr)
            << "n=" << n << " a=" << a.to_string() << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace ssps::core
