// Unit + property tests for the label mapping l(x) of §2.1.
#include "core/label.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ssps::core {
namespace {

TEST(Label, GenerationOrderMatchesPaper) {
  // §2.1: "Labels are generated in the order: 0, 1, 01, 11, 001, 011,
  // 101, 111, 0001 …".
  const char* expected[] = {"0", "1", "01", "11", "001", "011", "101", "111", "0001"};
  for (std::uint64_t x = 0; x < 9; ++x) {
    EXPECT_EQ(Label::from_index(x).to_string(), expected[x]) << "x=" << x;
  }
}

TEST(Label, LeadingBitRotation) {
  // l(x) for x = (x_d … x_0)_2 is (x_{d−1} … x_0 x_d).
  EXPECT_EQ(Label::from_index(0b110).to_string(), "101");
  EXPECT_EQ(Label::from_index(0b100).to_string(), "001");
  EXPECT_EQ(Label::from_index(0b1011).to_string(), "0111");
}

TEST(Label, RoundTripIndex) {
  for (std::uint64_t x = 0; x < 4096; ++x) {
    const Label l = Label::from_index(x);
    EXPECT_TRUE(l.is_canonical());
    EXPECT_EQ(l.to_index(), x);
  }
}

TEST(Label, CanonicalIffEndsInOneOrLengthOne) {
  EXPECT_TRUE(Label::parse("0")->is_canonical());
  EXPECT_TRUE(Label::parse("1")->is_canonical());
  EXPECT_TRUE(Label::parse("01")->is_canonical());
  EXPECT_FALSE(Label::parse("10")->is_canonical());
  EXPECT_FALSE(Label::parse("010")->is_canonical());
  EXPECT_TRUE(Label::parse("0101")->is_canonical());
}

TEST(Label, LabelsAreUnique) {
  std::set<std::string> seen;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    EXPECT_TRUE(seen.insert(Label::from_index(x).to_string()).second);
  }
}

TEST(Label, RValuesAreUniqueAmongCanonicalLabels) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    EXPECT_TRUE(keys.insert(Label::from_index(x).r_key()).second);
  }
}

TEST(Label, LengthIsFloorLog2PlusOne) {
  EXPECT_EQ(Label::from_index(0).length(), 1);
  EXPECT_EQ(Label::from_index(1).length(), 1);
  EXPECT_EQ(Label::from_index(2).length(), 2);
  EXPECT_EQ(Label::from_index(3).length(), 2);
  EXPECT_EQ(Label::from_index(4).length(), 3);
  EXPECT_EQ(Label::from_index(7).length(), 3);
  EXPECT_EQ(Label::from_index(8).length(), 4);
  EXPECT_EQ(Label::from_index(1024).length(), 11);
}

TEST(Label, CountPerLengthMatchesLemma3) {
  // f(1) = 2 and f(k) = 2^{k−1} for k > 1 (Lemma 3's proof).
  std::map<int, int> count;
  for (std::uint64_t x = 0; x < 1024; ++x) count[Label::from_index(x).length()]++;
  EXPECT_EQ(count[1], 2);
  for (int k = 2; k <= 10; ++k) EXPECT_EQ(count[k], 1 << (k - 1)) << "k=" << k;
}

TEST(Label, NewGenerationInterleavesUniformly) {
  // §2.1: for x ∈ {2^d, …, 2^{d+1}−1} the values r(l(x)) spread uniformly
  // between older values: the new labels are exactly the odd multiples of
  // 1/2^{d+1}.
  for (int d = 1; d <= 8; ++d) {
    std::set<Dyadic> fresh;
    for (std::uint64_t x = 1ULL << d; x < (2ULL << d); ++x) {
      fresh.insert(Label::from_index(x).r());
    }
    std::set<Dyadic> expected;
    for (std::uint64_t odd = 1; odd < (2ULL << d); odd += 2) {
      expected.insert(Dyadic::make(odd, d + 1));
    }
    EXPECT_EQ(fresh, expected) << "d=" << d;
  }
}

TEST(Label, FigureOneTriples) {
  // Figure 1 lists (x, l(x), r(l(x))) for x = 0..15; spot-check the ones
  // annotated in the figure.
  struct Row {
    std::uint64_t x;
    const char* label;
    double r;
  };
  const Row rows[] = {
      {0, "0", 0.0},          {1, "1", 0.5},         {2, "01", 0.25},
      {3, "11", 0.75},        {4, "001", 0.125},     {5, "011", 0.375},
      {6, "101", 0.625},      {7, "111", 0.875},     {8, "0001", 1.0 / 16},
      {9, "0011", 3.0 / 16},  {10, "0101", 5.0 / 16}, {11, "0111", 7.0 / 16},
      {12, "1001", 9.0 / 16}, {13, "1011", 11.0 / 16}, {14, "1101", 13.0 / 16},
      {15, "1111", 15.0 / 16},
  };
  for (const Row& row : rows) {
    const Label l = Label::from_index(row.x);
    EXPECT_EQ(l.to_string(), row.label) << "x=" << row.x;
    EXPECT_DOUBLE_EQ(l.r().to_double(), row.r) << "x=" << row.x;
  }
}

TEST(Label, ParseRejectsGarbage) {
  EXPECT_FALSE(Label::parse("").has_value());
  EXPECT_FALSE(Label::parse("012").has_value());
  EXPECT_FALSE(Label::parse("abc").has_value());
  EXPECT_FALSE(Label::parse(std::string(100, '0')).has_value());
  EXPECT_TRUE(Label::parse("010101").has_value());
}

TEST(Label, StructuralOrderSortsByRThenLength) {
  const Label a = *Label::parse("1");    // r = 1/2
  const Label b = *Label::parse("10");   // r = 1/2 (non-canonical), longer
  const Label c = *Label::parse("01");   // r = 1/4
  EXPECT_LT(c, a);
  EXPECT_LT(a, b);
  EXPECT_FALSE(a == b);
}

TEST(Label, OrderingByRKeyMatchesDyadicOrder) {
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      const Label a = Label::from_index(x);
      const Label b = Label::from_index(y);
      EXPECT_EQ(a.r_key() < b.r_key(), a.r() < b.r());
    }
  }
}

TEST(LabeledRef, EqualityComparesLabelAndNode) {
  const LabeledRef a{Label::from_index(3), sim::NodeId{7}};
  const LabeledRef b{Label::from_index(3), sim::NodeId{7}};
  const LabeledRef c{Label::from_index(3), sim::NodeId{8}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ssps::core
