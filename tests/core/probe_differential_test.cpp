// Differential equivalence of the incremental legitimacy probe.
//
// SkipRingSystem::topology_legit() answers from a persistent conformance
// cache (subscriber state versions + database/topology epochs); the
// exhaustive legitimacy_violation_full() recomputes everything from
// scratch. This suite pins their agreement on EVERY round of executions
// that start from every adversarial state class we can produce — the
// core/chaos generators, split brain, the oracle's arbitrary-state
// injector, every individual chaos hook, plus live churn with a delayed
// failure detector. Any missed version bump or stale epoch shows up as a
// disagreement here (and this suite runs under the ASan job like the rest
// of CTest).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/chaos.hpp"
#include "core/system.hpp"
#include "oracle/scramble.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::core {
namespace {

constexpr std::uint64_t kSeeds = 8;  // scrambled seeds per state class
constexpr std::size_t kNodes = 20;
constexpr std::size_t kMaxRounds = 600;

/// One probe/full comparison; the assertion message names the phase.
void expect_agreement(const SkipRingSystem& sys, const char* where,
                      std::size_t round) {
  const bool probe = sys.topology_legit();
  const std::string full = sys.legitimacy_violation_full();
  ASSERT_EQ(probe, full.empty())
      << where << " round " << round << ": incremental probe says "
      << (probe ? "legit" : "illegitimate") << ", reference says "
      << (full.empty() ? "legit" : full);
}

/// Runs until the probe reports legitimacy (plus a short closure window),
/// comparing probe and reference before every round.
void run_checked(SkipRingSystem& sys, const char* where) {
  std::size_t closure = 0;
  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    expect_agreement(sys, where, round);
    if (sys.topology_legit() && ++closure >= 5) return;
    sys.net().run_round();
  }
  FAIL() << where << ": did not reach legitimacy within " << kMaxRounds
         << " rounds";
}

TEST(ProbeDifferential, ColdStartAndChaosClasses) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    pubsub::PubSubSystem sys(
        SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
    sys.add_pubsub_subscribers(kNodes);
    run_checked(sys, "cold start");

    ChaosOptions chaos;
    chaos.seed = seed * 3 + 1;
    corrupt_system(sys, chaos);
    run_checked(sys, "chaos");

    ChaosOptions wipe;
    wipe.seed = seed * 5 + 2;
    wipe.wipe_database = true;
    corrupt_system(sys, wipe);
    run_checked(sys, "database wipe");

    split_brain(sys, seed * 7 + 3);
    run_checked(sys, "split brain");
  }
}

TEST(ProbeDifferential, ArbitraryStateInjection) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    pubsub::PubSubSystem sys(
        SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
    sys.add_pubsub_subscribers(kNodes);
    run_checked(sys, "pre-scramble bootstrap");

    oracle::ScrambleOptions options;
    options.seed = seed * 11 + 5;
    oracle::ArbitraryStateInjector injector(options);
    injector.scramble(sys);
    run_checked(sys, "scrambled start");
  }
}

TEST(ProbeDifferential, AgreesUnderTheParallelScheduler) {
  // Same drill as the cold-start/chaos classes, but with rounds executed
  // by the ParallelScheduler: worker-side protocol writes (and the plain
  // version counters the probe keys on) must be fully published at the
  // round barrier where the probe runs.
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    pubsub::PubSubSystem sys(
        SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
    sys.net().set_threads(seed % 2 == 0 ? 2 : 4);
    sys.add_pubsub_subscribers(kNodes);
    run_checked(sys, "parallel cold start");

    ChaosOptions chaos;
    chaos.seed = seed * 13 + 7;
    corrupt_system(sys, chaos);
    run_checked(sys, "parallel chaos");

    oracle::ScrambleOptions options;
    options.seed = seed * 17 + 3;
    oracle::ArbitraryStateInjector injector(options);
    injector.scramble(sys);
    run_checked(sys, "parallel scrambled start");
  }
}

TEST(ProbeDifferential, ChurnWithDelayedFailureDetector) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    pubsub::PubSubSystem sys(
        SkipRingSystem::Options{.seed = seed, .fd_delay = 3});
    sys.add_pubsub_subscribers(kNodes);
    run_checked(sys, "bootstrap under delayed fd");

    // Crash, graceful leave, joins — the probe must track the epoch moves
    // (spawn/crash) and the departure phases, including the window where
    // the database still references the crashed node.
    const auto active = sys.active_ids();
    sys.crash(active[seed % active.size()]);
    sys.request_unsubscribe(active[(seed + 2) % active.size()]);
    sys.add_pubsub_subscribers(2);
    run_checked(sys, "churn recovery");
  }
}

TEST(ProbeDifferential, EveryChaosHookInvalidatesTheProbe) {
  // Each hook mutates one protocol variable on a converged system; the
  // probe must agree with the reference immediately afterwards (this is
  // the direct pin on "every mutation path bumps a version").
  using Hook = void (*)(SkipRingSystem&);
  struct Case {
    const char* name;
    Hook apply;
  };
  const Case cases[] = {
      {"chaos_set_label", [](SkipRingSystem& s) {
         s.subscriber(s.active_ids().front()).chaos_set_label(std::nullopt);
       }},
      {"chaos_set_left", [](SkipRingSystem& s) {
         const auto ids = s.active_ids();
         s.subscriber(ids[0]).chaos_set_left(
             LabeledRef{Label::from_index(7), ids[1]});
       }},
      {"chaos_set_right", [](SkipRingSystem& s) {
         const auto ids = s.active_ids();
         s.subscriber(ids[1]).chaos_set_right(
             LabeledRef{Label::from_index(0), ids[0]});
       }},
      {"chaos_set_ring", [](SkipRingSystem& s) {
         const auto ids = s.active_ids();
         s.subscriber(ids[2]).chaos_set_ring(
             LabeledRef{Label::from_index(3), ids[3]});
       }},
      {"chaos_put_shortcut", [](SkipRingSystem& s) {
         const auto ids = s.active_ids();
         s.subscriber(ids[0]).chaos_put_shortcut(Label(0b101, 3), ids[2]);
       }},
      {"chaos_clear_shortcuts", [](SkipRingSystem& s) {
         s.subscriber(s.active_ids().back()).chaos_clear_shortcuts();
       }},
      {"chaos_set_phase", [](SkipRingSystem& s) {
         s.subscriber(s.active_ids().front())
             .chaos_set_phase(SubscriberPhase::kLeaving);
       }},
      {"supervisor chaos_insert", [](SkipRingSystem& s) {
         s.supervisor().chaos_insert(Label::from_index(99),
                                     s.active_ids().front());
       }},
      {"supervisor chaos_insert_null", [](SkipRingSystem& s) {
         s.supervisor().chaos_insert_null(Label::from_index(50));
       }},
      {"supervisor chaos_clear", [](SkipRingSystem& s) {
         s.supervisor().chaos_clear();
       }},
  };
  for (const Case& c : cases) {
    SkipRingSystem sys(SkipRingSystem::Options{.seed = 77, .fd_delay = 0});
    sys.add_subscribers(8);
    ASSERT_TRUE(sys.run_until_legit(500).has_value()) << c.name;
    expect_agreement(sys, c.name, 0);
    ASSERT_TRUE(sys.topology_legit()) << c.name;
    c.apply(sys);
    expect_agreement(sys, c.name, 1);
    EXPECT_FALSE(sys.topology_legit())
        << c.name << ": hook did not perturb the legal state";
    run_checked(sys, c.name);
  }
}

}  // namespace
}  // namespace ssps::core
