// §3.3: unannounced fail-stop crashes. The supervisor's (eventually
// correct) failure detector evicts crashed subscribers; the database
// repair relabels; the survivors re-stabilize to SR(n − f).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "test_support.hpp"

namespace ssps::core {
namespace {

struct CrashCase {
  std::size_t n;
  std::size_t crashes;
  sim::Round fd_delay;
  std::uint64_t seed;
};

std::string crash_name(const ::testing::TestParamInfo<CrashCase>& info) {
  return "n" + std::to_string(info.param.n) + "_f" + std::to_string(info.param.crashes) +
         "_d" + std::to_string(info.param.fd_delay) + "_s" +
         std::to_string(info.param.seed);
}

class CrashRecovery : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRecovery, SurvivorsRestabilize) {
  const auto [n, crashes, fd_delay, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = fd_delay});
  const auto ids = sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(3000).has_value());
  for (std::size_t i = 0; i < crashes; ++i) {
    sys.crash(ids[i * (n / crashes)]);
  }
  const auto rounds = sys.run_until_legit(3000 + 100 * n);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), n - crashes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashRecovery,
    ::testing::Values(CrashCase{8, 1, 0, 1}, CrashCase{8, 1, 10, 2},
                      CrashCase{16, 4, 0, 3}, CrashCase{16, 4, 5, 4},
                      CrashCase{24, 8, 3, 5}, CrashCase{32, 16, 0, 6},
                      CrashCase{32, 1, 20, 7}),
    crash_name);

TEST(CrashRecovery, CrashDuringStabilizationStillConverges) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 9, .fd_delay = 5});
  const auto ids = sys.add_subscribers(20);
  sys.net().run_rounds(3);  // not yet converged
  sys.crash(ids[2]);
  sys.crash(ids[7]);
  sys.crash(ids[13]);
  const auto rounds = sys.run_until_legit(4000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 17u);
}

TEST(CrashRecovery, CrashOfMinimumNode) {
  // The minimum holds the ring-closure edge and the most shortcuts; its
  // crash exercises the full relabel path (the top-label node takes "0").
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 10, .fd_delay = 2});
  const auto ids = sys.add_subscribers(12);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (sim::NodeId id : ids) {
    if (sys.subscriber(id).label() == Label::from_index(0)) {
      sys.crash(id);
      break;
    }
  }
  const auto rounds = sys.run_until_legit(4000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 11u);
}

TEST(CrashRecovery, SequentialCrashesWhileHealing) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 11, .fd_delay = 4});
  auto ids = sys.add_subscribers(24);
  ASSERT_TRUE(sys.run_until_legit(1500).has_value());
  for (int wave = 0; wave < 4; ++wave) {
    sys.crash(ids[static_cast<std::size_t>(wave) * 5]);
    sys.net().run_rounds(6);  // heal a little, crash again
  }
  const auto rounds = sys.run_until_legit(5000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 20u);
}

TEST(CrashRecovery, CrashAndChurnTogether) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 12, .fd_delay = 3});
  auto ids = sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  sys.crash(ids[0]);
  sys.request_unsubscribe(ids[1]);
  sys.add_subscribers(3);
  const auto rounds = sys.run_until_legit(5000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 16u - 2u + 3u);
}

TEST(CrashRecovery, QueuedUnsubscribeFromCrashedNodeIsHarmless) {
  // Regression: an Unsubscribe sitting in the supervisor's channel while
  // its sender crashes. With a perfect detector, check_labels() evicts the
  // sender during the unsubscribe itself — the lookup must observe the
  // eviction and fall back to the idempotent permission reply rather than
  // dereferencing a stale index entry.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 5, .fd_delay = 0});
  const auto ids = sys.add_subscribers(6);
  ASSERT_TRUE(sys.run_until_legit(3000).has_value());
  const sim::NodeId victim = ids[2];
  sys.net().inject(sys.supervisor_id(),
                   sys.net().pool().make<msg::Unsubscribe>(victim));
  sys.crash(victim);
  const auto rounds = sys.run_until_legit(3000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 5u);
}

TEST(CrashRecovery, AliveCountExcludesTombstones) {
  // Regression guard for the dense node table: crashed nodes leave
  // tombstone slots behind, and alive_count()/alive_ids() must count only
  // live nodes — the async convergence waits size their step chunks by
  // alive_count(), and the oracle sizes SR(n) by the live population.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 21, .fd_delay = 0});
  const auto ids = sys.add_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(1500).has_value());
  EXPECT_EQ(sys.net().alive_count(), 9u);  // 8 subscribers + supervisor
  EXPECT_EQ(sys.net().alive_ids().size(), 9u);

  sys.crash(ids[1]);
  sys.crash(ids[4]);
  EXPECT_EQ(sys.net().alive_count(), 7u);
  const auto alive = sys.net().alive_ids();
  EXPECT_EQ(alive.size(), 7u);
  for (sim::NodeId id : alive) {
    EXPECT_TRUE(sys.net().alive(id));
    EXPECT_NE(id, ids[1]);
    EXPECT_NE(id, ids[4]);
  }
  // Tombstones stay dead; fresh spawns append new ids and are counted.
  const sim::NodeId fresh = sys.add_subscriber();
  EXPECT_EQ(sys.net().alive_count(), 8u);
  EXPECT_TRUE(sys.net().alive(fresh));
  EXPECT_FALSE(sys.net().alive(ids[1]));
  ASSERT_TRUE(sys.run_until_legit(3000).has_value());
  EXPECT_EQ(sys.net().alive_count(), 8u);
}

TEST(FailureDetector, NeverSuspectsAliveNodes) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 13, .fd_delay = 0});
  const auto ids = sys.add_subscribers(6);
  sim::FailureDetector fd(sys.net(), 5);
  for (sim::NodeId id : ids) EXPECT_FALSE(fd.suspects(id));
}

TEST(FailureDetector, ReportsAfterConfiguredDelay) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 14, .fd_delay = 0});
  const auto ids = sys.add_subscribers(4);
  sim::FailureDetector fd(sys.net(), 5);
  sys.crash(ids[0]);
  EXPECT_FALSE(fd.suspects(ids[0]));  // within the blind window
  sys.net().run_rounds(5);
  EXPECT_TRUE(fd.suspects(ids[0]));
}

TEST(FailureDetector, UnknownNodesAreSuspect) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 15, .fd_delay = 0});
  sim::FailureDetector fd(sys.net(), 5);
  EXPECT_TRUE(fd.suspects(sim::NodeId{424242}));
}

TEST(FailureDetector, RaisedDelayStillEvictsReadmittedDeadNode) {
  // Regression: the §3.3 crash-log cursor consumes each crash once. If
  // the detector's delay is RAISED after a crash was consumed, the node
  // is temporarily unsuspected again — and a stale Subscribe arriving in
  // that window re-admits it without marking the labels dirty, so the
  // cursor alone would never evict it once suspicion returns (at system
  // level only the slower GetConfiguration purge path would catch it,
  // and only once some live node queries about the ghost). check_labels
  // now rewinds the cursor when the visible prefix shrinks; this drives
  // a detached SupervisorProtocol directly — no ring traffic, so no
  // purge backstop can mask a broken cursor.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 16, .fd_delay = 0});
  const auto ids = sys.add_subscribers(4);
  sim::FailureDetector fd(sys.net(), 0);
  testing::CapturingSink sink;
  SupervisorProtocol sup{sim::NodeId{9999}, sink};
  sup.set_failure_detector(&fd);
  for (sim::NodeId id : ids) sup.handle(msg::Subscribe(id));

  const sim::NodeId victim = ids[1];
  sys.crash(victim);
  sys.net().run_round();  // crash becomes visible at delay 0
  sup.timeout();          // cursor consumes it
  EXPECT_FALSE(sup.label_of(victim).has_value());

  // Raise the delay: the consumed crash drops back out of the visible
  // prefix, so the victim is unsuspected again...
  fd.set_delay(sys.net().round() + 20);
  EXPECT_FALSE(fd.suspects(victim));
  // ...and a stale Subscribe re-admits it without dirtying the labels.
  sup.handle(msg::Subscribe(victim));
  ASSERT_TRUE(sup.label_of(victim).has_value());

  // Once the crash is visible again, the rewound cursor re-consumes it.
  while (!fd.suspects(victim)) sys.net().run_round();
  sup.timeout();
  EXPECT_FALSE(sup.label_of(victim).has_value());
}

}  // namespace
}  // namespace ssps::core
