// Tests for the SR(n) topology spec: Definition 2, Lemma 3 (degree and
// edge count), Figure 1, and the logarithmic-diameter claim (§1.2, §4.3).
#include "core/skip_ring_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssps::core {
namespace {

TEST(SkipRingSpec, SingleNodeHasNoEdges) {
  const SkipRingSpec spec(1);
  const NodeSpec& s = spec.expected(Label::from_index(0));
  EXPECT_FALSE(s.left.has_value());
  EXPECT_FALSE(s.right.has_value());
  EXPECT_FALSE(s.ring.has_value());
  EXPECT_TRUE(s.shortcuts.empty());
  EXPECT_EQ(spec.edge_count(), 0u);
}

TEST(SkipRingSpec, TwoNodesFormOneRingPair) {
  const SkipRingSpec spec(2);
  const NodeSpec& zero = spec.expected(*Label::parse("0"));
  const NodeSpec& one = spec.expected(*Label::parse("1"));
  // Min keeps pred (= max) in ring; max keeps succ (= min) in ring.
  EXPECT_FALSE(zero.left.has_value());
  EXPECT_EQ(zero.right->to_string(), "1");
  EXPECT_EQ(zero.ring->to_string(), "1");
  EXPECT_EQ(one.left->to_string(), "0");
  EXPECT_FALSE(one.right.has_value());
  EXPECT_EQ(one.ring->to_string(), "0");
}

TEST(SkipRingSpec, RingOrderIsSortedByR) {
  const SkipRingSpec spec(16);
  const auto& order = spec.ring_order();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_EQ(order.front().to_string(), "0");
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1].r(), order[i].r());
  }
}

TEST(SkipRingSpec, FigureOneEdges) {
  // Figure 1: SR(16). Check the annotated structure for node 1/4 ("01"):
  // ring edges to 3/16 and 5/16, green (level-3) shortcuts to 1/8 and 3/8,
  // red (level-2) shortcuts to 0 and 1/2.
  const SkipRingSpec spec(16);
  const NodeSpec& s = spec.expected(*Label::parse("01"));
  EXPECT_EQ(s.left->to_string(), "0011");   // 3/16
  EXPECT_EQ(s.right->to_string(), "0101");  // 5/16
  EXPECT_FALSE(s.ring.has_value());
  std::vector<std::string> sc;
  for (const Label& l : s.shortcuts) sc.push_back(l.to_string());
  EXPECT_EQ(sc, (std::vector<std::string>{"0", "001", "011", "1"}));
}

TEST(SkipRingSpec, FigureOneBlueEdgeIsLevelOne) {
  // The single blue edge of Figure 1 connects 0 and 1/2 at level 1.
  const SkipRingSpec spec(16);
  const NodeSpec& zero = spec.expected(*Label::parse("0"));
  bool has_level1 = false;
  for (const Label& l : zero.shortcuts) {
    if (SkipRingSpec::edge_level(*Label::parse("0"), l) == 1) {
      has_level1 = true;
      EXPECT_EQ(l.to_string(), "1");
    }
  }
  EXPECT_TRUE(has_level1);
}

TEST(SkipRingSpec, EdgeLevelIsMaxLabelLength) {
  EXPECT_EQ(SkipRingSpec::edge_level(*Label::parse("0"), *Label::parse("1")), 1);
  EXPECT_EQ(SkipRingSpec::edge_level(*Label::parse("01"), *Label::parse("1")), 2);
  EXPECT_EQ(SkipRingSpec::edge_level(*Label::parse("0011"), *Label::parse("01")), 4);
}

class SpecSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpecSweep, DegreeBoundLemma3) {
  // Worst case: a node with label length k has at most 2(top − k + 1)
  // distinct neighbors.
  const std::size_t n = GetParam();
  const SkipRingSpec spec(n);
  const int top = spec.top_level();
  for (const Label& l : spec.ring_order()) {
    const std::size_t deg = spec.degree(l);
    EXPECT_LE(deg, 2u * static_cast<std::size_t>(top - l.length() + 1))
        << "n=" << n << " label=" << l.to_string();
  }
}

TEST_P(SpecSweep, AverageDegreeBelowFourLemma3) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const SkipRingSpec spec(n);
  std::size_t total = 0;
  for (const Label& l : spec.ring_order()) total += spec.degree(l);
  const double average = static_cast<double>(total) / static_cast<double>(n);
  EXPECT_LE(average, 4.0) << "n=" << n;
}

TEST_P(SpecSweep, EdgeCountFormulaForPowersOfTwo) {
  // Lemma 3 computes Σ_v deg(v) = 4n − 4 neighbor slots for n a power of
  // two. In distinct-neighbor terms that is (4n − 4 − 2)/2 = 2n − 3
  // undirected edges: the two K_1 slots per endpoint of the (0, 1/2) edge
  // collapse into one edge.
  const std::size_t n = GetParam();
  if (n < 4 || (n & (n - 1)) != 0) return;
  const SkipRingSpec spec(n);
  EXPECT_EQ(spec.edge_count(), 2 * n - 3) << "n=" << n;
}

TEST_P(SpecSweep, DegreeSlotSumFormulaLemma3) {
  // The raw Lemma 3 slot count: Σ_k f(k)·2(top − k + 1) = 4n − 4 for n a
  // power of two (f(1) = 2, f(k) = 2^{k−1}).
  const std::size_t n = GetParam();
  if (n < 4 || (n & (n - 1)) != 0) return;
  const SkipRingSpec spec(n);
  std::size_t slots = 0;
  for (const Label& l : spec.ring_order()) {
    slots += 2u * static_cast<std::size_t>(spec.top_level() - l.length() + 1);
  }
  EXPECT_EQ(slots, 4 * n - 4) << "n=" << n;
}

TEST_P(SpecSweep, DiameterIsLogarithmic) {
  const std::size_t n = GetParam();
  if (n < 2 || n > 2048) return;
  const SkipRingSpec spec(n);
  const int d = spec.diameter();
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(d, static_cast<int>(2.0 * log2n) + 2) << "n=" << n;
  EXPECT_GE(d, static_cast<int>(log2n) / 2) << "n=" << n;
}

TEST_P(SpecSweep, GraphIsConnected) {
  const std::size_t n = GetParam();
  const SkipRingSpec spec(n);
  const auto dist = spec.hops_from(Label::from_index(0));
  EXPECT_EQ(dist.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpecSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32,
                                           64, 100, 128, 256, 511, 512, 1000, 1024,
                                           2048, 4096));

TEST(SkipRingSpec, ShortcutSetsAreMutuallyConsistentWithRingEdges) {
  // Every shortcut edge (a, b) appears on both endpoints, counting direct
  // ring adjacency as presence.
  for (std::size_t n : {8, 16, 48, 128}) {
    const SkipRingSpec spec(n);
    for (const Label& a : spec.ring_order()) {
      const NodeSpec& sa = spec.expected(a);
      for (const Label& b : sa.shortcuts) {
        const NodeSpec& sb = spec.expected(b);
        const bool in_shortcuts =
            std::find(sb.shortcuts.begin(), sb.shortcuts.end(), a) != sb.shortcuts.end();
        const bool as_ring = (sb.left && *sb.left == a) || (sb.right && *sb.right == a) ||
                             (sb.ring && *sb.ring == a);
        EXPECT_TRUE(in_shortcuts || as_ring)
            << "n=" << n << " a=" << a.to_string() << " b=" << b.to_string();
      }
    }
  }
}

TEST(SkipRingSpec, HopsFromMinCoverLevels) {
  // From label "0" every node is reachable within top+1 hops in a complete
  // ring (descend one level per hop).
  const SkipRingSpec spec(1024);
  const auto dist = spec.hops_from(*Label::parse("0"));
  for (const auto& [key, d] : dist) {
    EXPECT_LE(d, spec.top_level() + 1);
  }
}

}  // namespace
}  // namespace ssps::core
