// Churn: subscribe/unsubscribe dynamics (§4.1) — correctness (Lemma 6),
// message cost (Theorem 7), and the insertion-spreading property ("a
// pre-existing subscriber is involved only for two consecutive subscribe
// operations … until the number of subscribers has doubled").
#include <gtest/gtest.h>

#include <map>

#include "core/system.hpp"

namespace ssps::core {
namespace {

TEST(Churn, JoinAfterConvergenceIntegratesNewNode) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 1, .fd_delay = 0});
  sys.add_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  const sim::NodeId fresh = sys.add_subscriber();
  ASSERT_TRUE(sys.run_until_legit(500).has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.subscriber(fresh).label(), Label::from_index(8));
}

TEST(Churn, UnsubscribeDisconnectsTheLeaverLemma6) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 2, .fd_delay = 0});
  const auto ids = sys.add_subscribers(10);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  const sim::NodeId leaver = ids[3];
  sys.request_unsubscribe(leaver);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value()) << sys.legitimacy_violation();
  EXPECT_TRUE(sys.subscriber(leaver).departed());
  // Lemma 6: no subscriber still references the leaver.
  for (sim::NodeId id : sys.active_ids()) {
    std::vector<sim::NodeId> refs;
    sys.subscriber(id).collect_refs(refs);
    for (sim::NodeId r : refs) EXPECT_NE(r, leaver);
  }
  // And the leaver dropped all its own connections.
  std::vector<sim::NodeId> refs;
  sys.subscriber(leaver).collect_refs(refs);
  EXPECT_TRUE(refs.empty());
}

TEST(Churn, MassUnsubscribeConverges) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 3, .fd_delay = 0});
  const auto ids = sys.add_subscribers(20);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (std::size_t i = 0; i < ids.size(); i += 2) sys.request_unsubscribe(ids[i]);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 10u);
}

TEST(Churn, EveryoneLeaves) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 4, .fd_delay = 0});
  const auto ids = sys.add_subscribers(6);
  ASSERT_TRUE(sys.run_until_legit(400).has_value());
  for (sim::NodeId id : ids) sys.request_unsubscribe(id);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  EXPECT_EQ(sys.supervisor().size(), 0u);
  // The permission messages may still be in flight when the (empty)
  // database first looks legitimate; drain them.
  sys.net().run_rounds(5);
  for (sim::NodeId id : ids) EXPECT_TRUE(sys.subscriber(id).departed());
}

TEST(Churn, InterleavedJoinLeave) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 5, .fd_delay = 0});
  auto ids = sys.add_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  for (int wave = 0; wave < 3; ++wave) {
    sys.request_unsubscribe(ids[static_cast<std::size_t>(wave)]);
    ids.push_back(sys.add_subscriber());
    ids.push_back(sys.add_subscriber());
    sys.net().run_rounds(3);  // deliberately do not wait for quiescence
  }
  ASSERT_TRUE(sys.run_until_legit(2000).has_value()) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 8u - 3u + 6u);
}

TEST(Churn, SupervisorMessagesPerSubscribeIsConstant) {
  // Theorem 7, measured: the configuration traffic a join triggers at the
  // supervisor is a constant — independent of n. (The absolute number is
  // a small handful: the joiner's configuration, the round-robin SetData
  // of each observed round, and the joiner's believed-minimum
  // GetConfiguration probes until its first configuration lands.)
  for (std::size_t n : {8, 32, 128}) {
    SkipRingSystem sys(SkipRingSystem::Options{.seed = 6 + n, .fd_delay = 0});
    sys.add_subscribers(n);
    ASSERT_TRUE(sys.run_until_legit(3000).has_value());
    // Baseline: steady-state SetData volume over the observation window
    // (round-robin + Theorem-5 request replies).
    const std::size_t window = 4;
    sys.net().metrics().reset();
    sys.net().run_rounds(window);
    const auto baseline = sys.net().metrics().sent("SetData");
    // Join and measure the same window again.
    sys.net().metrics().reset();
    sys.add_subscriber();
    sys.net().run_rounds(window);
    const auto with_join = sys.net().metrics().sent("SetData");
    const auto marginal = with_join > baseline ? with_join - baseline : 0;
    // The join itself costs one configuration; the joiner's
    // believed-minimum probes add at most a few more. Crucially the bound
    // does not grow with n.
    EXPECT_LE(marginal, 8u) << "n=" << n;
  }
}

TEST(Churn, DoublingInvolvesEachOldSubscriberAtMostTwice) {
  // §4.1: when n subscribers join a converged SR(n), each pre-existing
  // subscriber changes its ring neighborhood for at most two of those
  // insertions (the new labels bisect every gap exactly once on each
  // side).
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  const auto old_ids = sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());

  // Record each old subscriber's ring neighbors.
  std::map<std::uint64_t, std::pair<std::string, std::string>> before;
  auto sides = [&](sim::NodeId id) {
    const SubscriberProtocol& s = sys.subscriber(id);
    auto left = s.left() ? s.left()->label.to_string()
                         : (s.ring() ? s.ring()->label.to_string() : "_");
    auto right = s.right() ? s.right()->label.to_string()
                           : (s.ring() ? s.ring()->label.to_string() : "_");
    return std::make_pair(left, right);
  };
  for (sim::NodeId id : old_ids) before[id.value] = sides(id);

  sys.add_subscribers(16);  // double the system
  ASSERT_TRUE(sys.run_until_legit(1500).has_value()) << sys.legitimacy_violation();

  for (sim::NodeId id : old_ids) {
    const auto [l_before, r_before] = before[id.value];
    const auto [l_after, r_after] = sides(id);
    // Both sides changed at most once each: with 16 insertions into 16
    // gaps, each old node sees exactly one new left and one new right
    // neighbor — and no old neighbor is farther than one bisection away.
    EXPECT_NE(l_after, "_");
    EXPECT_NE(r_after, "_");
    EXPECT_NE(l_after, l_before);  // exactly bisected on the left
    EXPECT_NE(r_after, r_before);  // and on the right
  }
}

TEST(Churn, RejoinAfterDepartureGetsFreshLabel) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 8, .fd_delay = 0});
  const auto ids = sys.add_subscribers(4);
  ASSERT_TRUE(sys.run_until_legit(400).has_value());
  sys.request_unsubscribe(ids[1]);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  // A departed node cannot rejoin (its protocol instance is closed); a
  // *new* node joins instead and receives l(3) — the freed top label.
  const sim::NodeId fresh = sys.add_subscriber();
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  EXPECT_EQ(sys.subscriber(fresh).label(), Label::from_index(3));
}

}  // namespace
}  // namespace ssps::core
