// Unit tests for exact dyadic-rational arithmetic (src/core/dyadic.hpp).
#include "core/dyadic.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ssps::core {
namespace {

TEST(Dyadic, ZeroIsNormalized) {
  const Dyadic z = Dyadic::zero();
  EXPECT_EQ(z.num, 0u);
  EXPECT_EQ(z.exp, 0);
  EXPECT_TRUE(z.is_zero());
}

TEST(Dyadic, MakeNormalizesTrailingZeroBits) {
  // 4/16 = 1/4.
  const Dyadic d = Dyadic::make(4, 4);
  EXPECT_EQ(d.num, 1u);
  EXPECT_EQ(d.exp, 2);
}

TEST(Dyadic, MakeKeepsOddNumerators) {
  const Dyadic d = Dyadic::make(5, 4);
  EXPECT_EQ(d.num, 5u);
  EXPECT_EQ(d.exp, 4);
}

TEST(Dyadic, EqualityIsStructuralAfterNormalization) {
  EXPECT_EQ(Dyadic::make(2, 3), Dyadic::make(1, 2));
  EXPECT_EQ(Dyadic::make(8, 4), Dyadic::make(1, 1));
  EXPECT_NE(Dyadic::make(1, 2), Dyadic::make(1, 3));
}

TEST(Dyadic, OrderingMatchesRealValues) {
  EXPECT_LT(Dyadic::make(1, 2), Dyadic::make(1, 1));   // 1/4 < 1/2
  EXPECT_LT(Dyadic::make(3, 3), Dyadic::make(1, 1));   // 3/8 < 1/2
  EXPECT_GT(Dyadic::make(5, 3), Dyadic::make(9, 4));   // 5/8 > 9/16
  EXPECT_LT(Dyadic::zero(), Dyadic::make(1, 6));
}

TEST(Dyadic, OrderingAgreesWithDoubleOnRandomPairs) {
  ssps::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const int ea = static_cast<int>(rng.between(1, 40));
    const int eb = static_cast<int>(rng.between(1, 40));
    const Dyadic a = Dyadic::make(rng.below(1ULL << ea), ea);
    const Dyadic b = Dyadic::make(rng.below(1ULL << eb), eb);
    const double da = a.to_double();
    const double db = b.to_double();
    // exp <= 40 keeps doubles exact, so the comparison oracle is exact.
    EXPECT_EQ(a < b, da < db);
    EXPECT_EQ(a == b, da == db);
  }
}

TEST(Dyadic, MirrorBasicExamplesFromPaper) {
  // §3.2.2 worked example: v = 1/4, left neighbor 3/16.
  const Dyadic v = Dyadic::make(1, 2);
  const Dyadic s1 = mirror_mod1(Dyadic::make(3, 4), v);
  EXPECT_EQ(s1, Dyadic::make(1, 3));  // 1/8
  const Dyadic s2 = mirror_mod1(s1, v);
  EXPECT_EQ(s2, Dyadic::zero());  // 0
}

TEST(Dyadic, MirrorWrapsAroundOne) {
  // v = 0, neighbor 15/16: 2·15/16 − 0 = 15/8 ≡ 7/8 (mod 1).
  const Dyadic m = mirror_mod1(Dyadic::make(15, 4), Dyadic::zero());
  EXPECT_EQ(m, Dyadic::make(7, 3));
}

TEST(Dyadic, MirrorWrapsBelowZero) {
  // v = 3/4, w = 1/4 (left, across 1/2): 2·1/4 − 3/4 = −1/4 ≡ 3/4... that
  // lands on v itself; use w = 5/8: 2·5/8 − 3/4 = 1/2.
  EXPECT_EQ(mirror_mod1(Dyadic::make(5, 3), Dyadic::make(3, 2)), Dyadic::make(1, 1));
  // v = 1/8, w = 1/16 gives 2/16 − 1/8 = 0.
  EXPECT_EQ(mirror_mod1(Dyadic::make(1, 4), Dyadic::make(1, 3)), Dyadic::zero());
}

TEST(Dyadic, MirrorIsAnInvolutionThroughTheMidpoint) {
  // mirror(mirror(w, v), v) applied twice re-mirrors; going back through
  // the same midpoint returns the start: mirror(s, v) with s = 2w − v, then
  // the point with midpoint w between them... directly: (v + s)/2 = w.
  ssps::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const int e = static_cast<int>(rng.between(2, 30));
    const Dyadic v = Dyadic::make(rng.below(1ULL << e), e);
    const Dyadic w = Dyadic::make(rng.below(1ULL << e), e);
    const Dyadic s = mirror_mod1(w, v);
    // 2w − v = s  ⇒  2w = v + s (mod 1) ⇒ mirror(w, s) = (2w − s) = v.
    EXPECT_EQ(mirror_mod1(w, s), v);
  }
}

TEST(Dyadic, LinearDistance) {
  EXPECT_EQ(linear_distance(Dyadic::make(1, 2), Dyadic::make(3, 2)), Dyadic::make(1, 1));
  EXPECT_EQ(linear_distance(Dyadic::make(3, 2), Dyadic::make(1, 2)), Dyadic::make(1, 1));
  EXPECT_EQ(linear_distance(Dyadic::zero(), Dyadic::make(15, 4)), Dyadic::make(15, 4));
  EXPECT_TRUE(linear_distance(Dyadic::make(5, 3), Dyadic::make(5, 3)).is_zero());
}

TEST(Dyadic, RingDistanceTakesTheShorterArc) {
  // |0 − 15/16| linearly is 15/16, around the ring it is 1/16.
  EXPECT_EQ(ring_distance(Dyadic::zero(), Dyadic::make(15, 4)), Dyadic::make(1, 4));
  EXPECT_EQ(ring_distance(Dyadic::make(1, 2), Dyadic::make(1, 2)), Dyadic::zero());
  // Exactly opposite points: both arcs are 1/2.
  EXPECT_EQ(ring_distance(Dyadic::zero(), Dyadic::make(1, 1)), Dyadic::make(1, 1));
}

TEST(Dyadic, ToDoubleMatchesFraction) {
  EXPECT_DOUBLE_EQ(Dyadic::make(3, 4).to_double(), 3.0 / 16.0);
  EXPECT_DOUBLE_EQ(Dyadic::zero().to_double(), 0.0);
}

}  // namespace
}  // namespace ssps::core
