// Shared helpers for protocol unit tests: a capturing MessageSink so that
// SupervisorProtocol/SubscriberProtocol can be driven without a network.
#pragma once

#include <vector>

#include "core/messages.hpp"

namespace ssps::core::testing {

/// Records every send; tests inspect and/or replay the captured traffic.
/// Owns a standalone MessagePool (no network required).
class CapturingSink final : public MessageSink {
  // Declared first so captured PooledMsgs (below) die before their pool.
  sim::MessagePool pool_;

 public:
  struct Sent {
    sim::NodeId to;
    sim::PooledMsg msg;
  };

  void send(sim::NodeId to, sim::PooledMsg msg) override {
    sent.push_back(Sent{to, std::move(msg)});
  }

  sim::MessagePool& pool() override { return pool_; }

  void clear() { sent.clear(); }

  /// Messages of a concrete type addressed to `to` (or to anyone if null).
  template <typename T>
  std::vector<const T*> of_type(sim::NodeId to = sim::NodeId::null()) const {
    std::vector<const T*> out;
    for (const Sent& s : sent) {
      if (to && s.to != to) continue;
      if (const auto* typed = sim::msg_cast<T>(*s.msg)) out.push_back(typed);
    }
    return out;
  }

  std::size_t count_to(sim::NodeId to) const {
    std::size_t c = 0;
    for (const Sent& s : sent) {
      if (s.to == to) ++c;
    }
    return c;
  }

  std::vector<Sent> sent;
};

}  // namespace ssps::core::testing
