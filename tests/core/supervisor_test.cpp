// Unit tests for the supervisor protocol (Algorithm 3, §3.1, §4.1):
// database corruption repair cases (i)–(iv), round-robin dissemination,
// subscribe/unsubscribe semantics and their O(1) message cost (Theorem 7).
#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ssps::core {
namespace {

using testing::CapturingSink;

constexpr sim::NodeId kSup{100};

sim::NodeId node(std::uint64_t v) { return sim::NodeId{v}; }

class SupervisorTest : public ::testing::Test {
 protected:
  CapturingSink sink;
  SupervisorProtocol sup{kSup, sink};

  void subscribe_n(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      sup.handle(msg::Subscribe(node(i + 1)));
    }
    sink.clear();
  }
};

TEST_F(SupervisorTest, SubscribeAssignsLabelsInGenerationOrder) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    sup.handle(msg::Subscribe(node(i + 1)));
    EXPECT_EQ(sup.label_of(node(i + 1)), Label::from_index(i));
  }
  EXPECT_TRUE(sup.database_consistent());
}

TEST_F(SupervisorTest, SubscribeSendsExactlyOneMessage) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    sink.clear();
    sup.handle(msg::Subscribe(node(i + 1)));
    EXPECT_EQ(sink.sent.size(), 1u) << "join #" << i;  // Theorem 7
    EXPECT_EQ(sink.sent[0].to, node(i + 1));
  }
}

TEST_F(SupervisorTest, SubscribeConfigurationContainsCorrectNeighbors) {
  subscribe_n(4);  // labels: 0, 1, 01, 11 at r = 0, 1/2, 1/4, 3/4
  sink.clear();
  sup.handle(msg::Subscribe(node(5)));  // gets l(4) = "001", r = 1/8
  const auto cfgs = sink.of_type<msg::SetData>(node(5));
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_EQ(cfgs[0]->label->to_string(), "001");
  // Ring neighbors of 1/8 among {0, 1/4, 1/2, 3/4, 1/8}: pred 0, succ 1/4.
  EXPECT_EQ(cfgs[0]->pred->label.to_string(), "0");
  EXPECT_EQ(cfgs[0]->pred->node, node(1));
  EXPECT_EQ(cfgs[0]->succ->label.to_string(), "01");
  EXPECT_EQ(cfgs[0]->succ->node, node(3));
}

TEST_F(SupervisorTest, DuplicateSubscribeIsIdempotent) {
  subscribe_n(4);
  sup.handle(msg::Subscribe(node(2)));
  EXPECT_EQ(sup.size(), 4u);
  EXPECT_EQ(sup.label_of(node(2)), Label::from_index(1));
  // It still answers with the existing configuration (one message).
  EXPECT_EQ(sink.sent.size(), 1u);
}

TEST_F(SupervisorTest, FirstSubscriberGetsNoNeighbors) {
  sup.handle(msg::Subscribe(node(1)));
  const auto cfgs = sink.of_type<msg::SetData>(node(1));
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_FALSE(cfgs[0]->pred.has_value());
  EXPECT_FALSE(cfgs[0]->succ.has_value());
  EXPECT_EQ(cfgs[0]->label->to_string(), "0");
}

TEST_F(SupervisorTest, UnsubscribeLastLabeledJustRemoves) {
  subscribe_n(4);
  sup.handle(msg::Unsubscribe(node(4)));  // node 4 holds l(3), the max index
  EXPECT_EQ(sup.size(), 3u);
  EXPECT_TRUE(sup.database_consistent());
  // Only the permission message (Theorem 7).
  EXPECT_EQ(sink.sent.size(), 1u);
  const auto perm = sink.of_type<msg::SetData>(node(4));
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_FALSE(perm[0]->label.has_value());
}

TEST_F(SupervisorTest, UnsubscribeInteriorMovesLastLabelIntoHole) {
  subscribe_n(5);
  // node 2 holds l(1) = "1". The last label l(4) = "001" (node 5) must
  // move into the hole.
  sup.handle(msg::Unsubscribe(node(2)));
  EXPECT_EQ(sup.size(), 4u);
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.label_of(node(5)), Label::from_index(1));
  // Two messages: the relabel config for node 5 + the permission (Thm 7).
  EXPECT_EQ(sink.sent.size(), 2u);
  const auto relabel = sink.of_type<msg::SetData>(node(5));
  ASSERT_EQ(relabel.size(), 1u);
  EXPECT_EQ(relabel[0]->label->to_string(), "1");
}

TEST_F(SupervisorTest, UnsubscribeUnknownStillGrantsPermission) {
  subscribe_n(3);
  sup.handle(msg::Unsubscribe(node(9)));
  ASSERT_EQ(sink.sent.size(), 1u);
  const auto perm = sink.of_type<msg::SetData>(node(9));
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_FALSE(perm[0]->label.has_value());
  EXPECT_EQ(sup.size(), 3u);
}

TEST_F(SupervisorTest, GetConfigurationForUnknownEvicts) {
  subscribe_n(2);
  sup.handle(msg::GetConfiguration(node(7)));
  const auto replies = sink.of_type<msg::SetData>(node(7));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0]->label.has_value());
}

TEST_F(SupervisorTest, TimeoutSendsOneRoundRobinConfiguration) {
  subscribe_n(4);
  for (int round = 0; round < 8; ++round) {
    sink.clear();
    sup.timeout();
    EXPECT_EQ(sink.sent.size(), 1u) << "round " << round;
    EXPECT_EQ(sink.of_type<msg::SetData>().size(), 1u);
  }
}

TEST_F(SupervisorTest, TimeoutCyclesThroughAllSubscribers) {
  subscribe_n(5);
  std::set<std::uint64_t> recipients;
  for (int round = 0; round < 5; ++round) {
    sink.clear();
    sup.timeout();
    ASSERT_EQ(sink.sent.size(), 1u);
    recipients.insert(sink.sent[0].to.value);
  }
  EXPECT_EQ(recipients.size(), 5u);
}

TEST_F(SupervisorTest, EmptyDatabaseTimeoutIsSilent) {
  sup.timeout();
  EXPECT_TRUE(sink.sent.empty());
}

// ---- §3.1 corruption cases -------------------------------------------

TEST_F(SupervisorTest, RepairsNullTuples) {  // case (i)
  subscribe_n(4);
  sup.chaos_insert_null(*Label::parse("0101"));
  sup.chaos_insert_null(*Label::parse("00011"));
  EXPECT_FALSE(sup.database_consistent());
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.size(), 4u);
}

TEST_F(SupervisorTest, RepairsDuplicateNodesKeepingLowestLabel) {  // case (ii)
  subscribe_n(4);
  // node 3 already holds l(2) = "01" (r = 1/4); duplicate it at "11".
  sup.chaos_insert(*Label::parse("11"), node(3));
  EXPECT_FALSE(sup.database_consistent());
  // The sweep alone does not fix duplicates; contact with the node does
  // (Algorithm 3 routes GetConfiguration through CheckMultipleCopies).
  sup.handle(msg::GetConfiguration(node(3)));
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.label_of(node(3)), *Label::parse("01"));
}

TEST_F(SupervisorTest, RepairsMissingLabels) {  // case (iii)
  subscribe_n(5);
  // Erase l(1) by nulling it; repair must pull the max label l(4) down.
  sup.chaos_insert_null(Label::from_index(1));
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.size(), 4u);
  EXPECT_EQ(sup.label_of(node(5)), Label::from_index(1));
}

TEST_F(SupervisorTest, RepairsOutOfRangeLabels) {  // case (iv)
  subscribe_n(3);
  sup.chaos_insert(Label::from_index(17), node(4));
  EXPECT_FALSE(sup.database_consistent());
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.size(), 4u);
  // The wrongly-labeled node filled the first missing index, l(3).
  EXPECT_EQ(sup.label_of(node(4)), Label::from_index(3));
}

TEST_F(SupervisorTest, RepairsNonCanonicalLabels) {
  subscribe_n(3);
  sup.chaos_insert(*Label::parse("010"), node(4));  // non-canonical junk
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.label_of(node(4)), Label::from_index(3));
}

TEST_F(SupervisorTest, RepairsCombinedCorruption) {
  subscribe_n(6);
  sup.chaos_insert_null(Label::from_index(2));
  sup.chaos_insert(Label::from_index(40), node(9));
  sup.chaos_insert(*Label::parse("1110"), node(10));
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  // 6 originals − 1 nulled + 2 new = 7.
  EXPECT_EQ(sup.size(), 7u);
}

TEST_F(SupervisorTest, RepairAssignsLargestIndexToSmallestHole) {
  // Algorithm 3 CheckLabels: the tuple with maximum j > i fills hole i.
  subscribe_n(6);
  sup.chaos_insert_null(Label::from_index(0));
  sup.chaos_insert_null(Label::from_index(2));
  sup.timeout();
  EXPECT_TRUE(sup.database_consistent());
  EXPECT_EQ(sup.size(), 4u);
  // Holes {0, 2} and movable labels {l(5) (node 6), l(4) (node 5)}:
  // max index l(5) -> hole 0, next l(4) -> hole 2.
  EXPECT_EQ(sup.label_of(node(6)), Label::from_index(0));
  EXPECT_EQ(sup.label_of(node(5)), Label::from_index(2));
}

TEST_F(SupervisorTest, WipedDatabaseStaysEmptyUntilSubscribes) {
  subscribe_n(4);
  sup.chaos_clear();
  sup.timeout();
  EXPECT_EQ(sup.size(), 0u);
  sup.handle(msg::Subscribe(node(1)));
  EXPECT_EQ(sup.size(), 1u);
  EXPECT_TRUE(sup.database_consistent());
}

TEST_F(SupervisorTest, CollectRefsListsAllRecordedNodes) {
  subscribe_n(3);
  std::vector<sim::NodeId> refs;
  sup.collect_refs(refs);
  EXPECT_EQ(refs.size(), 3u);
}

}  // namespace
}  // namespace ssps::core
