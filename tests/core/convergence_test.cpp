// Theorem 8 (Network Convergence): BuildSR reaches a legitimate skip ring
// from arbitrary initial states. Parameterized sweeps over system size,
// seeds and corruption classes, plus asynchronous-scheduler stress.
#include <gtest/gtest.h>

#include <cmath>

#include "core/chaos.hpp"
#include "core/system.hpp"

namespace ssps::core {
namespace {

struct Case {
  std::size_t n;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return "n" + std::to_string(info.param.n) + "_s" + std::to_string(info.param.seed);
}

class ColdStart : public ::testing::TestWithParam<Case> {};

TEST_P(ColdStart, ConvergesAndIsLegit) {
  const auto [n, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(n);
  const auto rounds = sys.run_until_legit(200 + 30 * n);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
  // Cold-start convergence is fast: roughly logarithmic in n (the
  // supervisor integrates everyone in O(1) and the ring wires itself).
  EXPECT_LE(*rounds, 30 + 4 * static_cast<std::size_t>(std::log2(n + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColdStart,
    ::testing::Values(Case{1, 1}, Case{2, 2}, Case{3, 3}, Case{4, 4}, Case{5, 5},
                      Case{8, 1}, Case{13, 2}, Case{16, 3}, Case{16, 77}, Case{27, 4},
                      Case{32, 5}, Case{50, 6}, Case{64, 7}, Case{64, 1234},
                      Case{100, 8}),
    case_name);

class CorruptedStart : public ::testing::TestWithParam<Case> {};

TEST_P(CorruptedStart, ConvergesFromFullChaos) {
  const auto [n, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  ChaosOptions chaos;
  chaos.seed = seed * 31 + 7;
  corrupt_system(sys, chaos);
  const auto rounds = sys.run_until_legit(500 + 50 * n);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorruptedStart,
    ::testing::Values(Case{2, 1}, Case{3, 9}, Case{4, 2}, Case{8, 3}, Case{8, 17},
                      Case{16, 4}, Case{16, 42}, Case{24, 5}, Case{32, 6},
                      Case{48, 7}, Case{64, 8}),
    case_name);

class DatabaseWipe : public ::testing::TestWithParam<Case> {};

TEST_P(DatabaseWipe, RecoversFromEmptyDatabase) {
  // The hardest database corruption: the supervisor forgets everyone while
  // subscribers keep stale labels and edges. Actions (i), (ii) and (iv)
  // must re-register the whole population.
  const auto [n, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  ChaosOptions chaos;
  chaos.seed = seed;
  chaos.wipe_database = true;
  chaos.clear_label_pct = 0;  // everyone keeps a (now unrecorded) label
  chaos.random_label_pct = 0;
  chaos.scramble_edges_pct = 0;
  chaos.junk_messages = 0;
  corrupt_system(sys, chaos);
  const auto rounds = sys.run_until_legit(800 + 80 * n);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DatabaseWipe,
                         ::testing::Values(Case{2, 11}, Case{5, 12}, Case{9, 13},
                                           Case{16, 14}, Case{32, 15}),
                         case_name);

class SplitBrain : public ::testing::TestWithParam<Case> {};

TEST_P(SplitBrain, MergesTwoIndependentRings) {
  const auto [n, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(n);
  split_brain(sys, seed * 13 + 1);
  const auto rounds = sys.run_until_legit(800 + 80 * n);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitBrain,
                         ::testing::Values(Case{4, 1}, Case{8, 2}, Case{16, 3},
                                           Case{25, 4}, Case{32, 5}, Case{64, 6}),
                         case_name);

TEST(Convergence, AsyncSchedulerReachesLegitimacyToo) {
  // Self-stabilization must not depend on round synchrony: run the
  // randomized asynchronous scheduler (with its fairness bounds only)
  // until quiescence, then verify legitimacy directly.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
    sys.add_subscribers(24);
    ChaosOptions chaos;
    chaos.seed = seed + 100;
    corrupt_system(sys, chaos);
    bool legit = false;
    for (int block = 0; block < 200 && !legit; ++block) {
      sys.net().run_steps(5000);
      legit = sys.topology_legit();
    }
    EXPECT_TRUE(legit) << "seed=" << seed << ": " << sys.legitimacy_violation();
  }
}

TEST(Convergence, JunkMessagesAloneCannotBreakALegitimateSystem) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 5, .fd_delay = 0});
  sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  ChaosOptions chaos;
  chaos.seed = 6;
  chaos.clear_label_pct = 0;
  chaos.random_label_pct = 0;
  chaos.scramble_edges_pct = 0;
  chaos.bogus_shortcut_pct = 0;
  chaos.corrupt_database = false;
  chaos.junk_messages = 200;
  corrupt_system(sys, chaos);
  const auto rounds = sys.run_until_legit(2000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

TEST(Convergence, SupervisorStarMakesInitialConnectivityUnnecessary) {
  // Every node knows the supervisor read-only (§1.1), so even a state
  // where no subscriber knows any peer converges.
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 8, .fd_delay = 0});
  const auto ids = sys.add_subscribers(20);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  for (sim::NodeId id : ids) {
    auto& sub = sys.subscriber(id);
    sub.chaos_set_left(std::nullopt);
    sub.chaos_set_right(std::nullopt);
    sub.chaos_set_ring(std::nullopt);
    sub.chaos_clear_shortcuts();
  }
  const auto rounds = sys.run_until_legit(2000);
  ASSERT_TRUE(rounds.has_value()) << sys.legitimacy_violation();
}

TEST(Convergence, WeaklyConnectedHoldsThroughoutStabilization) {
  // The union of explicit and implicit edges plus the supervisor star
  // must stay weakly connected while stabilizing (references are delegated,
  // never dropped).
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 21, .fd_delay = 0});
  sys.add_subscribers(16);
  ChaosOptions chaos;
  chaos.seed = 3;
  corrupt_system(sys, chaos);
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(sys.net().weakly_connected(sys.supervisor_id())) << "round " << round;
    if (sys.topology_legit()) break;
    sys.net().run_round();
  }
}

}  // namespace
}  // namespace ssps::core
