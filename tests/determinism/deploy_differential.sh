#!/usr/bin/env bash
# Live-vs-sim differential oracle: a real multi-process deployment (one
# ssps_deploy coordinator + ssps_noded daemons over localhost TCP) must
# produce a JSON report byte-identical to the in-process simulator's for
# the same (scenario, seed, nodes) — after stripping the deploy_* header
# keys only the live run carries. Covered shapes: n = 64 steady across 4
# processes, and the scrambled churn-wave variant (multi-topic +
# stabilization-from-arbitrary-state) across 3.
#
#   usage: deploy_differential.sh <ssps_deploy> <ssps_noded> <ssps_run>
set -u

deploy=${1:?usage: deploy_differential.sh <ssps_deploy> <ssps_noded> <ssps_run>}
noded=${2:?usage: deploy_differential.sh <ssps_deploy> <ssps_noded> <ssps_run>}
run=${3:?usage: deploy_differential.sh <ssps_deploy> <ssps_noded> <ssps_run>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
status=0

check() {
  local name=$1 scenario=$2 seed=$3 nodes=$4 procs=$5 extra=$6
  local live="$workdir/$name-live.json" sim="$workdir/$name-sim.json"
  if ! "$deploy" --noded "$noded" --scenario "$scenario" --seed "$seed" \
      --nodes "$nodes" --procs "$procs" $extra --quiet --out "$live"; then
    echo "FAILED DEPLOY: $name"
    status=1
    return
  fi
  if ! "$run" --scenario "$scenario" --seed "$seed" --nodes "$nodes" \
      $extra --quiet --out "$sim"; then
    echo "FAILED SIM: $name"
    status=1
    return
  fi
  # Guard against a vacuous pass: the live report must actually carry the
  # deployment header (i.e. really came from the multi-process path).
  if ! grep -q '"deploy_procs"' "$live"; then
    echo "MISSING DEPLOY HEADER: $name"
    status=1
    return
  fi
  if ! diff <(grep -v '"deploy_' "$live") "$sim" >/dev/null; then
    echo "DIFFERENTIAL MISMATCH: $name (live vs sim)"
    diff <(grep -v '"deploy_' "$live") "$sim" | head -20
    status=1
    return
  fi
  echo "ok: $name"
}

check steady-64 steady 7 64 4 ""
check churn-wave-scrambled-64 churn-wave 5 64 3 "--scramble"

exit $status
