#!/usr/bin/env bash
# Twin-run determinism across worker counts: for every builtin scenario,
# plain and scrambled-start, the 2- and 4-thread JSON reports must be
# byte-identical to the 1-thread report. The only field allowed to differ
# is the "threads" header line (it records the worker count by design),
# which is stripped before comparing. Registered with CTest; also the
# shape CI runs on pull requests.
#
#   usage: thread_determinism.sh <path-to-ssps_run>
set -u

run=${1:?usage: thread_determinism.sh <path-to-ssps_run>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
status=0

# Guard against a vacuous pass: if --list fails or prints nothing, the
# loop below would compare zero scenarios and exit green.
scenarios=$("$run" --list) || {
  echo "FAILED: $run --list exited nonzero"
  exit 1
}
if [ -z "$scenarios" ]; then
  echo "FAILED: $run --list printed no scenarios"
  exit 1
fi

for scenario in $scenarios; do
  for variant in plain scrambled; do
    flags=""
    seed=7
    if [ "$variant" = scrambled ]; then
      flags="--scramble"
      seed=5
    fi
    ref="$workdir/$scenario-$variant-1.json"
    if ! "$run" --scenario "$scenario" --seed "$seed" --nodes 12 --threads 1 \
        $flags --quiet --out "$ref"; then
      echo "FAILED RUN: $scenario ($variant) 1 worker"
      status=1
      continue
    fi
    # The byte comparison below is only meaningful if the telemetry
    # sections are actually in the reports being compared.
    for section in '"latency"' '"timeseries"'; do
      if ! grep -q "$section" "$ref"; then
        echo "MISSING SECTION: $scenario ($variant) report lacks $section"
        status=1
      fi
    done
    for threads in 2 4; do
      out="$workdir/$scenario-$variant-$threads.json"
      if ! "$run" --scenario "$scenario" --seed "$seed" --nodes 12 \
          --threads "$threads" $flags --quiet --out "$out"; then
        echo "FAILED RUN: $scenario ($variant) $threads workers"
        status=1
        continue
      fi
      if ! diff <(grep -v '"threads"' "$ref") <(grep -v '"threads"' "$out") \
          >/dev/null; then
        echo "TRACE MISMATCH: $scenario ($variant) $threads workers vs serial"
        status=1
      fi
    done
  done
done

if [ "$status" = 0 ]; then
  echo "all builtin scenarios byte-identical across 1/2/4 workers"
fi
exit $status
