#!/usr/bin/env bash
# Round-equivalence of the timed scheduler: for every round-scheduler
# builtin, plain and scrambled-start, the report produced under
# `--timed --latency-profile default` (event-driven virtual clock, constant
# one-second latency, zero faults) must be byte-identical to the round
# scheduler's report. The only lines allowed to differ are the "clock"
# header and the per-section "unit" labels, which name the schedulers'
# clocks by design and are stripped before comparing. Registered with
# CTest; also the shape CI runs on pull requests.
#
#   usage: timed_equivalence.sh <path-to-ssps_run>
set -u

run=${1:?usage: timed_equivalence.sh <path-to-ssps_run>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
status=0

scenarios=$("$run" --list) || {
  echo "FAILED: $run --list exited nonzero"
  exit 1
}
if [ -z "$scenarios" ]; then
  echo "FAILED: $run --list printed no scenarios"
  exit 1
fi

compared=0
for scenario in $scenarios; do
  # The natively timed builtins have no round-scheduler twin: their specs
  # carry non-default link profiles, fault probabilities and partition
  # schedules.
  case "$scenario" in
    geo-*|lossy-*|chaos-*) continue ;;
  esac
  for variant in plain scrambled; do
    flags=""
    seed=7
    if [ "$variant" = scrambled ]; then
      flags="--scramble"
      seed=5
    fi
    ref="$workdir/$scenario-$variant-rounds.json"
    if ! "$run" --scenario "$scenario" --seed "$seed" --nodes 12 \
        $flags --quiet --out "$ref"; then
      echo "FAILED RUN: $scenario ($variant) round scheduler"
      status=1
      continue
    fi
    out="$workdir/$scenario-$variant-timed.json"
    if ! "$run" --scenario "$scenario" --seed "$seed" --nodes 12 \
        --timed --latency-profile default $flags --quiet --out "$out"; then
      echo "FAILED RUN: $scenario ($variant) timed scheduler"
      status=1
      continue
    fi
    if ! grep -q '"clock": "virtual-seconds"' "$out"; then
      echo "MISSING CLOCK: $scenario ($variant) timed report lacks the label"
      status=1
    fi
    if ! diff <(grep -vE '"(clock|unit)":' "$ref") \
        <(grep -vE '"(clock|unit)":' "$out") >/dev/null; then
      echo "TRACE MISMATCH: $scenario ($variant) timed vs rounds"
      status=1
    fi
    compared=$((compared + 1))
  done
done

if [ "$compared" = 0 ]; then
  echo "FAILED: no scenario was compared (vacuous pass)"
  exit 1
fi
if [ "$status" = 0 ]; then
  echo "$compared timed runs byte-identical to their round-scheduler twins"
fi
exit $status
