#!/usr/bin/env bash
# Kill-recovery: SIGKILL one ssps_noded mid-scenario and let the
# coordinator respawn it. The respawned process replays the prefix
# locally, audits its on-disk snapshots against the replayed state, then
# rejoins the barrier; every replica applies the same lockstep
# crash+recover (stale-snapshot path) for the killed shard's nodes. The
# run must finish with ok = true and oracle_ok = true (exit 0) — the
# deployment stays oracle-green through a real process death, though the
# report legitimately differs from an undisturbed run's.
#
#   usage: deploy_kill_restart.sh <ssps_deploy> <ssps_noded>
set -u

deploy=${1:?usage: deploy_kill_restart.sh <ssps_deploy> <ssps_noded>}
noded=${2:?usage: deploy_kill_restart.sh <ssps_deploy> <ssps_noded>}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

out="$workdir/kill-live.json"
if ! "$deploy" --noded "$noded" --scenario steady --seed 11 --nodes 48 \
    --procs 3 --oracle --snapshot-every 2 --snapshot-dir "$workdir/snaps" \
    --kill-shard 1 --kill-round 6 --quiet --out "$out"; then
  echo "FAILED: kill-restart deployment exited nonzero"
  exit 1
fi
# Guard against vacuous passes: the respawn must actually have happened,
# and the killed shard must have left snapshot files behind.
if ! grep -q '"deploy_respawns": 1' "$out"; then
  echo "FAILED: no respawn recorded in the report"
  exit 1
fi
if ! ls "$workdir/snaps"/node-*.snap >/dev/null 2>&1; then
  echo "FAILED: no snapshot files were persisted"
  exit 1
fi
echo "ok: killed+respawned daemon converged oracle-green"
