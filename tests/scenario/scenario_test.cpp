// Scenario engine: deterministic replay, built-in scenario health, and
// supervisor-group arc rebalancing under churn.
#include <gtest/gtest.h>

#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"

namespace ssps::scenario {
namespace {

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(Json, ObjectKeysAreSorted) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(0), R"({"alpha":2,"mid":3,"zeta":1})");
}

TEST(Json, EscapesStringsAndFormatsNumbers) {
  Json j = Json::object();
  j["s"] = "a\"b\\c\nd";
  j["neg"] = std::int64_t{-5};
  j["big"] = std::uint64_t{18446744073709551615ULL};
  j["f"] = 0.25;
  EXPECT_EQ(j.dump(0),
            "{\"big\":18446744073709551615,\"f\":0.250000,"
            "\"neg\":-5,\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, ArraysAndNesting) {
  Json j = Json::array();
  j.push_back(1);
  Json inner = Json::object();
  inner["k"] = true;
  j.push_back(inner);
  j.push_back(Json());
  EXPECT_EQ(j.dump(0), R"([1,{"k":true},null])");
  EXPECT_EQ(j.size(), 3u);
}

// ---------------------------------------------------------------------------
// Deterministic replay: same spec + seed => identical metrics JSON
// ---------------------------------------------------------------------------

std::string run_builtin(const std::string& name, std::uint64_t seed,
                        std::size_t nodes, bool* ok = nullptr) {
  ScenarioRunner runner(builtin_scenario(name, seed, nodes));
  const ScenarioReport& report = runner.run();
  if (ok != nullptr) *ok = report.ok;
  return report.to_json().dump(2);
}

TEST(ScenarioReplay, EveryBuiltinIsBitDeterministic) {
  for (const std::string& name : builtin_names()) {
    bool ok_first = false;
    const std::string first = run_builtin(name, 11, 12, &ok_first);
    const std::string second = run_builtin(name, 11, 12);
    EXPECT_EQ(first, second) << "scenario " << name << " not deterministic";
    EXPECT_TRUE(ok_first) << "scenario " << name << " did not converge";
  }
}

TEST(ScenarioReplay, DifferentSeedsProduceDifferentTraffic) {
  const std::string a = run_builtin("steady", 1, 16);
  const std::string b = run_builtin("steady", 2, 16);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Built-in scenario health
// ---------------------------------------------------------------------------

TEST(Builtins, NamesRoundTrip) {
  EXPECT_EQ(builtin_names().size(), 11u);  // 5 classic + 3 timed + 3 scale-*
  for (const std::string& name : builtin_names()) {
    EXPECT_TRUE(is_builtin(name));
    const ScenarioSpec spec = builtin_scenario(name, 3, 10);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.phases.empty());
  }
  EXPECT_FALSE(is_builtin("no-such-scenario"));
}

TEST(Builtins, SteadyReportCoversTheContract) {
  ScenarioRunner runner(builtin_scenario("steady", 5, 12));
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok);
  ASSERT_EQ(report.phases.size(), 3u);
  const PhaseReport& bootstrap = report.phases[0];
  EXPECT_TRUE(bootstrap.converged);
  ASSERT_TRUE(bootstrap.convergence_rounds.has_value());
  EXPECT_GT(*bootstrap.convergence_rounds, 0u);
  EXPECT_GT(bootstrap.messages, 0u);
  EXPECT_GT(bootstrap.bytes, 0u);
  ASSERT_EQ(bootstrap.supervisor_load.size(), 1u);
  EXPECT_GT(bootstrap.supervisor_load[0].received, 0u);
  EXPECT_EQ(bootstrap.supervisor_load[0].database, 12u);
  // The publish burst delivered everything everywhere.
  const PhaseReport& burst = report.phases[2];
  EXPECT_TRUE(burst.converged);
  EXPECT_GT(burst.publications, 0u);
  EXPECT_EQ(runner.single().distinct_publications(), burst.publications);
  EXPECT_TRUE(runner.single().topology_legit());
}

TEST(Builtins, ZipfWorkloadSkewsTowardHotTopics) {
  ScenarioRunner runner(builtin_scenario("zipf-topics", 9, 16));
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok);
  // Publication mass concentrates: with s = 1.2 the hottest topic must
  // clearly beat the per-topic average.
  std::size_t hottest = 0;
  std::size_t total = 0;
  std::size_t populated = 0;
  for (TopicId t = 1; t <= static_cast<TopicId>(runner.spec().topics); ++t) {
    std::size_t count = 0;
    for (sim::NodeId m : runner.topic_members(t)) {
      auto& node = runner.net().node_as<pubsub::MultiTopicNode>(m);
      count = std::max<std::size_t>(count, node.pubsub(t).trie().size());
    }
    hottest = std::max(hottest, count);
    total += count;
    populated += runner.topic_members(t).empty() ? 0 : 1;
  }
  ASSERT_GT(populated, 0u);
  EXPECT_GE(hottest * populated, 2 * total) << "no Zipf skew visible";
}

// ---------------------------------------------------------------------------
// SupervisorGroup arc rebalancing under churn-wave
// ---------------------------------------------------------------------------

TEST(ChurnWave, SupervisorArcsRebalanceAndSystemRecovers) {
  ScenarioRunner runner(builtin_scenario("churn-wave", 21, 16));
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok) << report.to_json().dump(2);
  ASSERT_EQ(report.phases.size(), 6u);

  const PhaseReport& bootstrap = report.phases[0];
  const PhaseReport& sup_crash = report.phases[3];
  const PhaseReport& sup_join = report.phases[4];

  // Group size: 3 supervisors -> 2 after the crash -> 3 after the join.
  EXPECT_EQ(bootstrap.supervisor_load.size(), 3u);
  EXPECT_EQ(sup_crash.supervisor_load.size(), 2u);
  EXPECT_EQ(sup_join.supervisor_load.size(), 3u);

  // Arc shares always cover the full hash ring, so losing a member grows
  // the survivors' arcs (consistent-hashing rebalancing).
  auto share_sum = [](const PhaseReport& p) {
    double sum = 0.0;
    for (const SupervisorLoad& s : p.supervisor_load) sum += s.arc_share;
    return sum;
  };
  EXPECT_NEAR(share_sum(bootstrap), 1.0, 1e-9);
  EXPECT_NEAR(share_sum(sup_crash), 1.0, 1e-9);
  EXPECT_NEAR(share_sum(sup_join), 1.0, 1e-9);
  for (const SupervisorLoad& survivor : sup_crash.supervisor_load) {
    for (const SupervisorLoad& before : bootstrap.supervisor_load) {
      if (before.node == survivor.node) {
        EXPECT_GT(survivor.arc_share, before.arc_share - 1e-9);
      }
    }
  }

  // The crashed supervisor's topics were rehomed; the joining supervisor
  // stole arcs back.
  EXPECT_GT(sup_crash.moved_topics, 0u);
  EXPECT_GT(sup_join.moved_topics, 0u);

  // Every phase converged: databases complete and consistent, labels
  // agreed, publications intact after every wave.
  for (const PhaseReport& p : report.phases) {
    EXPECT_TRUE(p.converged) << "phase " << p.name;
  }
  // Rehomed topics kept their publication history (clients re-add their
  // local stores at the new owner).
  EXPECT_GE(report.phases.back().publications, report.phases[1].publications);
}

TEST(ChaosChurn, FaultCountersAndRecoveriesSurfaceInTheReport) {
  ScenarioRunner runner(builtin_scenario("chaos-churn", 7, 16));
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok) << report.to_json().dump(2);
  ASSERT_TRUE(report.oracle_ok) << report.to_json().dump(2);
  ASSERT_EQ(report.phases.size(), 5u);

  // The corrupting links damaged frames, and the codec rejected the bulk
  // of them; both counters flow into the report.
  std::uint64_t corrupted = 0;
  std::uint64_t rejected = 0;
  for (const PhaseReport& p : report.phases) {
    corrupted += p.corrupted;
    rejected += p.rejected;
  }
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(rejected, 0u);

  // The recover phase restarted the crash wave's victims from snapshots.
  const PhaseReport& recover = report.phases[3];
  EXPECT_EQ(recover.name, "recover");
  EXPECT_GT(recover.recovered, 0u);
  EXPECT_LE(recover.recovered_clean, recover.recovered);

  // The counters reach the JSON artifact (the chaos campaign's contract).
  const std::string json = report.to_json().dump(0);
  EXPECT_NE(json.find("\"corrupted\""), std::string::npos);
  EXPECT_NE(json.find("\"rejected\""), std::string::npos);
  EXPECT_NE(json.find("\"recovered\""), std::string::npos);
}

TEST(ChaosChurn, ReportsWithoutFaultsOmitTheFaultFields) {
  // Pre-existing scenarios must stay byte-identical: the new report
  // fields only appear when their counters are nonzero.
  ScenarioRunner runner(builtin_scenario("steady", 5, 10));
  const std::string json = runner.run().to_json().dump(0);
  EXPECT_EQ(json.find("\"corrupted\""), std::string::npos);
  EXPECT_EQ(json.find("\"rejected\""), std::string::npos);
  EXPECT_EQ(json.find("\"recovered\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Oracle integration: summaries in the report, scrambled-start variants
// ---------------------------------------------------------------------------

TEST(OracleIntegration, SummariesAppearInTheJsonReport) {
  ScenarioSpec spec = builtin_scenario("steady", 3, 10);
  spec.oracle = true;
  ScenarioRunner runner(std::move(spec));
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok);
  EXPECT_TRUE(report.oracle_ok);
  for (const PhaseReport& p : report.phases) {
    ASSERT_TRUE(p.oracle.has_value()) << p.name;
    EXPECT_EQ(p.oracle->violations, 0u) << p.name;
    EXPECT_GT(p.oracle->checked_nodes, 0u) << p.name;
  }
  const std::string json = report.to_json().dump(0);
  EXPECT_NE(json.find("\"oracle\""), std::string::npos);
  EXPECT_NE(json.find("\"oracle_ok\":true"), std::string::npos);
}

TEST(OracleIntegration, ScrambledVariantIsBitDeterministic) {
  auto run_once = [] {
    ScenarioRunner runner(scrambled_variant(builtin_scenario("partition-drill", 11, 10)));
    return runner.run().to_json().dump(2);
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("\"name\": \"scramble\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Custom specs: the engine is not limited to the builtins
// ---------------------------------------------------------------------------

TEST(CustomSpec, SingleTopicChurnConverges) {
  ScenarioSpec spec;
  spec.name = "custom-churn";
  spec.seed = 3;
  spec.nodes = 10;
  spec.mode = Mode::kSingleTopic;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = 10;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase wave;
  wave.name = "wave";
  wave.churn.joins = 3;
  wave.churn.leaves = 2;
  wave.churn.crashes = 2;
  wave.converge = true;
  spec.phases.push_back(wave);

  ScenarioRunner runner(spec);
  const ScenarioReport& report = runner.run();
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(runner.single().active_ids().size(), 9u);  // 10 + 3 - 2 - 2
  EXPECT_TRUE(runner.single().topology_legit());
}

TEST(CustomSpec, AsyncTimeseriesAndLatencyUseTheStepClock) {
  // Regression: async runs used to emit an always-empty timeseries ring
  // and latency figures stamped with the (never-advancing) round counter.
  // They now sample every AsyncConfig::probe_stride steps and measure on
  // the step clock, and the report says so.
  ScenarioSpec spec;
  spec.name = "custom-async-probe";
  spec.seed = 17;
  spec.nodes = 8;
  spec.mode = Mode::kSingleTopic;
  spec.exec.scheduler = Scheduler::kAsync;
  spec.timeseries_capacity = 64;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = 8;
  bootstrap.converge = true;
  bootstrap.max_rounds = 5000;
  spec.phases.push_back(bootstrap);

  Phase pubs;
  pubs.name = "publish";
  pubs.publish.count = 4;
  pubs.converge = true;
  pubs.max_rounds = 5000;
  spec.phases.push_back(pubs);

  ScenarioRunner runner(spec);
  const ScenarioReport& report = runner.run();
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.clock, "steps");
  EXPECT_EQ(report.latency.unit, "steps");
  ASSERT_TRUE(report.timeseries.has_value());
  EXPECT_EQ(report.timeseries->unit, "steps");
  ASSERT_FALSE(report.timeseries->samples.empty());
  // Samples tick on the step clock: strictly increasing multiples of the
  // probe stride (the round counter would sit at a handful of rounds).
  const auto& samples = report.timeseries->samples;
  const sim::Step stride = runner.net().async_config().probe_stride;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(samples[i - 1].round, samples[i].round);
    }
    EXPECT_EQ(samples[i].round % stride, 0u);
  }
  EXPECT_GE(samples.back().round, 2 * stride);
  // Latency percentiles are step-denominated: a publish needs many steps
  // to reach every subscriber.
  EXPECT_GT(report.latency.global.count, 0u);
  EXPECT_GT(report.latency.global.p50, 0u);
}

TEST(TimedScheduler, DefaultProfileMatchesRoundReports) {
  // The in-process face of tests/determinism/timed_equivalence.sh: with
  // the default link profile the timed engine's report is byte-identical
  // to the round scheduler's minus the clock/unit labels.
  auto strip_clock_lines = [](const std::string& text) {
    std::string out;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(start, end - start);
      if (line.find("\"clock\":") == std::string::npos &&
          line.find("\"unit\":") == std::string::npos) {
        out += line;
        out += '\n';
      }
      start = end + 1;
    }
    return out;
  };
  for (const char* name : {"steady", "churn-wave"}) {
    ScenarioSpec spec = builtin_scenario(name, 11, 12);
    ScenarioRunner rounds(spec);
    spec.exec.scheduler = Scheduler::kTimed;
    ScenarioRunner timed(spec);
    const std::string a = rounds.run().to_json().dump(2);
    const std::string b = timed.run().to_json().dump(2);
    EXPECT_NE(a, b) << name << ": clock labels should differ";
    EXPECT_EQ(strip_clock_lines(a), strip_clock_lines(b)) << name;
  }
}

TEST(TimedScheduler, LossyScrambledRecoveryAt64Nodes) {
  // The acceptance drill: a 64-node deployment started from an arbitrary
  // scrambled state recovers to an oracle-certified legal state while
  // every link drops 5% of traffic, and the report's latency percentiles
  // read in virtual seconds.
  ScenarioSpec spec = scrambled_variant(builtin_scenario("lossy-churn", 23, 64));
  ScenarioRunner runner(std::move(spec));
  const ScenarioReport& report = runner.run();
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.oracle_ok);
  EXPECT_EQ(report.clock, "virtual-seconds");
  EXPECT_EQ(report.latency.unit, "virtual-seconds");
  EXPECT_GT(report.latency.global.count, 0u);
  // The link layer really dropped traffic on the way.
  EXPECT_GT(runner.net().timed_dropped(), 0u);
}

TEST(CustomSpec, AsyncSchedulerPhasesAreDeterministic) {
  ScenarioSpec spec;
  spec.name = "custom-async";
  spec.seed = 13;
  spec.nodes = 6;
  spec.mode = Mode::kSingleTopic;
  spec.exec.scheduler = Scheduler::kAsync;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = 6;
  bootstrap.converge = true;
  bootstrap.max_rounds = 5000;
  spec.phases.push_back(bootstrap);

  auto run_once = [&] {
    ScenarioRunner runner(spec);
    return runner.run().to_json().dump(0);
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  ScenarioRunner runner(spec);
  EXPECT_TRUE(runner.run().ok);
}

}  // namespace
}  // namespace ssps::scenario
