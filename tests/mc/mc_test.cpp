// Model-checker tests: replay determinism, the exhaustive-vs-sampled
// differential, and the seeded-mutation counterexample pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mc/counterexample.hpp"
#include "mc/explorer.hpp"
#include "scenario/mc_certify.hpp"

namespace {

using ssps::mc::Certificate;
using ssps::mc::Counterexample;
using ssps::mc::CounterexampleFile;
using ssps::mc::Enabled;
using ssps::mc::Executor;
using ssps::mc::Explorer;
using ssps::mc::kAdvance;
using ssps::mc::StateHash;
using ssps::mc::Trace;

/// The canonical tractable root for exhaustive tests: n = 2 keeps every
/// probed seed's interleaving tree within milliseconds even before the
/// round memo kicks in. Serial-walk tests (one schedule, no tree) use
/// n = 3 directly for a richer state.
Executor::Options small_options(std::uint64_t seed) {
  return ssps::scenario::mc_certify_options(seed, 2);
}

/// Walks `exec` along the serial schedule (always the first enabled slot)
/// for `rounds` full rounds, recording the choice trace. Ends at a round
/// boundary with the final barrier NOT in the trace (the caller closes
/// it), so the trace replays to a drained primed round.
Trace serial_walk(Executor& exec, std::size_t rounds) {
  Trace trace;
  exec.prime();
  for (std::size_t r = 0; r < rounds; ++r) {
    if (r > 0) {
      exec.advance();
      trace.push_back(kAdvance);
    }
    for (;;) {
      const Enabled en = exec.enabled();
      if (en.slots.empty()) break;
      exec.fire(en.slots.front());
      trace.push_back(en.slots.front());
    }
  }
  return trace;
}

TEST(McExecutor, ReplayReestablishesTheExactState) {
  const Executor::Options options = ssps::scenario::mc_certify_options(7, 3);

  Executor a(options);
  const Trace trace = serial_walk(a, 4);
  a.barrier();
  const StateHash reference = a.state_hash();

  // A fresh executor replaying the recorded trace lands on the same
  // canonical state.
  Executor b(options);
  b.replay(trace);
  EXPECT_TRUE(b.drained());
  b.barrier();
  EXPECT_EQ(b.state_hash(), reference);

  // And replay is idempotent on the same executor (reset really rebuilds
  // the root bit-for-bit).
  b.replay(trace);
  b.barrier();
  EXPECT_EQ(b.state_hash(), reference);
}

TEST(McExecutor, EnabledPrunesDuplicateMessagesOnly) {
  Executor exec(ssps::scenario::mc_certify_options(3, 3));
  exec.prime();
  std::size_t fired = 0;
  // Fire one full round through the branch point: every offered slot is
  // distinct (by construction of enabled()), and the drained round closes
  // cleanly.
  for (;;) {
    const Enabled en = exec.enabled();
    if (en.slots.empty()) break;
    // Offered slots are unique indices in ascending order.
    for (std::size_t i = 1; i < en.slots.size(); ++i) {
      EXPECT_LT(en.slots[i - 1], en.slots[i]);
    }
    exec.fire(en.slots.front());
    ++fired;
  }
  EXPECT_TRUE(exec.drained());
  EXPECT_GT(fired, 0u);
}

TEST(McExplorer, CertifiesAScrambledSmallRootExhaustively) {
  const Certificate cert = ssps::scenario::mc_certify(1, 2);
  EXPECT_TRUE(cert.certified);
  EXPECT_FALSE(cert.counterexample.has_value());
  // The search really explored a tree: multiple schedules reached
  // legality, at least some boundary states were expanded, and the round
  // memo collapsed commuting permutations.
  EXPECT_GT(cert.stats.goal_states, 0u);
  EXPECT_GT(cert.stats.visited, 0u);
  EXPECT_GT(cert.stats.memo_hits, 0u);

  // Determinism: the same options reproduce the same statistics.
  const Certificate again = ssps::scenario::mc_certify(1, 2);
  EXPECT_EQ(again.stats.visited, cert.stats.visited);
  EXPECT_EQ(again.stats.deduped, cert.stats.deduped);
  EXPECT_EQ(again.stats.por_pruned, cert.stats.por_pruned);
  EXPECT_EQ(again.stats.memo_hits, cert.stats.memo_hits);
  EXPECT_EQ(again.stats.goal_states, cert.stats.goal_states);
  EXPECT_EQ(again.stats.max_depth, cert.stats.max_depth);
}

TEST(McExplorer, ExhaustiveAgreesWithRandomScheduleSampling) {
  // Differential pin: the exhaustive pass certified every schedule from
  // this root, so 32 independently sampled random schedules must all
  // reach a legal state within the same bound. (The converse direction —
  // sampling happy, exhaustive finds a bug — is exactly the gap the
  // checker exists to close; see the mutation test.)
  const Executor::Options options = small_options(1);
  ASSERT_TRUE(Explorer(options).run().certified);
  for (std::uint64_t walk = 0; walk < 32; ++walk) {
    const auto rounds = Explorer::random_walk(options, 0x517eed + walk);
    ASSERT_TRUE(rounds.has_value()) << "random walk " << walk
                                    << " did not converge in bound";
    EXPECT_LE(*rounds, options.max_rounds);
  }
}

TEST(McExplorer, SeededMutationYieldsAReplayableCounterexample) {
  // Break the transport: SetData (the supervisor's configuration
  // assignment) is silently dropped. A scrambled system can then never
  // repair its labels, so every schedule must run into the depth bound.
  Executor::Options options = small_options(1);
  options.drop_message_name = "SetData";
  options.max_rounds = 12;  // no need to chase 24 rounds to prove it

  const Certificate cert = Explorer(options).run();
  ASSERT_FALSE(cert.certified);
  ASSERT_TRUE(cert.counterexample.has_value());
  const Counterexample& ce = *cert.counterexample;
  EXPECT_FALSE(ce.violation.empty());
  EXPECT_FALSE(ce.trace.empty());

  // Round-trip through the JSON counterexample file.
  const std::string path = testing::TempDir() + "/ssps_mc_ce.json";
  CounterexampleFile file;
  file.options = options;
  file.kind = "depth-bound";
  file.violation = ce.violation;
  file.trace = ce.trace;
  ASSERT_TRUE(ssps::mc::write_counterexample(path, file));
  const auto readback = ssps::mc::read_counterexample(path);
  ASSERT_TRUE(readback.has_value());
  EXPECT_EQ(readback->kind, "depth-bound");
  EXPECT_EQ(readback->trace, ce.trace);
  EXPECT_EQ(readback->options.seed, options.seed);
  EXPECT_EQ(readback->options.nodes, options.nodes);
  EXPECT_EQ(readback->options.max_rounds, options.max_rounds);
  EXPECT_EQ(readback->options.drop_message_name, "SetData");
  EXPECT_EQ(readback->options.scramble.seed, options.scramble.seed);
  EXPECT_EQ(readback->options.scramble.junk_messages,
            options.scramble.junk_messages);

  // Replaying the parsed file deterministically reproduces the recorded
  // violation: the end state fails the oracle with the same summary.
  Executor exec(readback->options);
  exec.replay(readback->trace);
  const auto report = exec.check();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.summary(), ce.violation);
  std::remove(path.c_str());
}

TEST(McCounterexample, ReaderRejectsGarbage) {
  const std::string path = testing::TempDir() + "/ssps_mc_garbage.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"kind\": \"depth-bound\", \"trace\": [1, oops]}", f);
  std::fclose(f);
  EXPECT_FALSE(ssps::mc::read_counterexample(path).has_value());
  EXPECT_FALSE(ssps::mc::read_counterexample(path + ".missing").has_value());
  std::remove(path.c_str());
}

}  // namespace
