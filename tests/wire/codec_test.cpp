// Wire codec: frame round-trips, totality over damaged inputs, clone
// fidelity, and the corrupting-link damage model.
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/topics.hpp"
#include "sim/message_pool.hpp"
#include "wire/codec.hpp"
#include "wire/corrupt.hpp"

namespace ssps::wire {
namespace {

namespace cmsg = ssps::core::msg;
namespace pmsg = ssps::pubsub::msg;
using ssps::core::IntroFlag;
using ssps::core::Label;
using ssps::core::LabeledRef;
using ssps::pubsub::BitString;
using ssps::pubsub::Digest;
using ssps::pubsub::NodeSummary;
using ssps::pubsub::Publication;
using ssps::pubsub::TopicEnvelope;
using ssps::sim::MessagePool;
using ssps::sim::NodeId;
using ssps::sim::PooledMsg;

Digest fill_digest(std::uint8_t seed) {
  Digest d;
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = static_cast<std::uint8_t>(seed + i);
  }
  return d;
}

/// One instance of every concrete protocol message class, including the
/// optional-field corner cases (SetData with and without fields) and a
/// nested envelope. Every wire/clone test iterates this set so a new
/// message class that misses coverage fails the count check below.
std::vector<std::pair<std::string, PooledMsg>> all_samples(MessagePool& pool) {
  const Label label0 = Label::from_index(0);
  const Label label3 = Label::from_index(3);
  const LabeledRef ref{label3, NodeId{7}};

  std::vector<NodeSummary> tuples;
  tuples.push_back(NodeSummary{BitString::from_uint(0b101, 3), fill_digest(1)});
  tuples.push_back(NodeSummary{BitString::from_uint(0b1100, 4), fill_digest(9)});
  std::vector<Publication> pubs;
  pubs.push_back(Publication{NodeId{11}, "breaking news", 0});
  pubs.push_back(Publication{NodeId{12}, "", 0});

  std::vector<std::pair<std::string, PooledMsg>> out;
  out.emplace_back("Subscribe", pool.make<cmsg::Subscribe>(NodeId{2}));
  out.emplace_back("Unsubscribe", pool.make<cmsg::Unsubscribe>(NodeId{3}));
  out.emplace_back("GetConfiguration",
                   pool.make<cmsg::GetConfiguration>(NodeId{4}, NodeId{5}));
  out.emplace_back("SetData", pool.make<cmsg::SetData>(
                                  ref, label0, LabeledRef{label0, NodeId{9}}));
  out.emplace_back("SetData-evict",
                   pool.make<cmsg::SetData>(std::nullopt, std::nullopt, std::nullopt));
  out.emplace_back("Check", pool.make<cmsg::Check>(ref, label0, IntroFlag::kCyclic));
  out.emplace_back("Introduce", pool.make<cmsg::Introduce>(ref, IntroFlag::kLinear));
  out.emplace_back("RemoveConnections", pool.make<cmsg::RemoveConnections>(NodeId{6}));
  out.emplace_back("IntroduceShortcut", pool.make<cmsg::IntroduceShortcut>(ref));
  out.emplace_back("CheckTrie", pool.make<pmsg::CheckTrie>(NodeId{8}, tuples));
  out.emplace_back("CheckAndPublish",
                   pool.make<pmsg::CheckAndPublish>(NodeId{8}, tuples,
                                                    BitString::from_uint(0b10, 2)));
  out.emplace_back("Publish", pool.make<pmsg::Publish>(pubs));
  out.emplace_back("PublishNew",
                   pool.make<pmsg::PublishNew>(Publication{NodeId{13}, "x", 0}));
  out.emplace_back("TopicEnvelope",
                   pool.make<TopicEnvelope>(42, pool.make<cmsg::Subscribe>(NodeId{2})));
  out.emplace_back(
      "TopicEnvelope-nested",
      pool.make<TopicEnvelope>(
          1, pool.make<TopicEnvelope>(2, pool.make<cmsg::RemoveConnections>(NodeId{3}))));
  out.emplace_back("Hello", pool.make<ssps::wire::Hello>(
                                ssps::wire::kProtocolVersion, NodeId{21}));
  return out;
}

std::vector<std::uint8_t> encode_or_die(const sim::Message& m) {
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(encode_message(m, bytes));
  return bytes;
}

TEST(WireCodec, EveryMessageRoundTripsBitExactly) {
  MessagePool pool;
  auto samples = all_samples(pool);
  // 14 wire types + the two extra field-shape variants.
  EXPECT_EQ(samples.size(), 16u);
  for (const auto& [name, msg] : samples) {
    SCOPED_TRACE(name);
    const std::vector<std::uint8_t> bytes = encode_or_die(*msg);
    ASSERT_GE(bytes.size(), 13u);  // frame header is 13 bytes
    MessagePool decode_pool;
    DecodeResult result = decode_message(bytes, decode_pool);
    ASSERT_TRUE(result.ok()) << decode_status_name(result.error.status);
    EXPECT_EQ(encode_or_die(*result.msg), bytes);
  }
}

TEST(WireCodec, TruncationAtEveryPrefixIsRejectedCleanly) {
  MessagePool pool;
  for (const auto& [name, msg] : all_samples(pool)) {
    SCOPED_TRACE(name);
    const std::vector<std::uint8_t> bytes = encode_or_die(*msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      MessagePool decode_pool;
      DecodeResult result =
          decode_message({bytes.data(), cut}, decode_pool);
      EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes decoded";
      EXPECT_NE(result.error.status, DecodeStatus::kOk);
    }
  }
}

TEST(WireCodec, EverySingleBitFlipIsRejectedOrRoundTrips) {
  MessagePool pool;
  for (const auto& [name, msg] : all_samples(pool)) {
    SCOPED_TRACE(name);
    const std::vector<std::uint8_t> bytes = encode_or_die(*msg);
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      MessagePool decode_pool;
      DecodeResult result = decode_message(flipped, decode_pool);
      if (result.ok()) {
        // A flip in the ignored stream residue can survive; the decoded
        // frame must still re-encode to the bytes it consumed.
        std::vector<std::uint8_t> reencoded = encode_or_die(*result.msg);
        ASSERT_LE(reencoded.size(), flipped.size());
        EXPECT_EQ(0, std::memcmp(reencoded.data(), flipped.data(), reencoded.size()));
      }
    }
  }
}

TEST(WireCodec, ChecksumCoversTypeByte) {
  MessagePool pool;
  std::vector<std::uint8_t> bytes =
      encode_or_die(*pool.make<cmsg::Subscribe>(NodeId{2}));
  // Subscribe and Unsubscribe share a payload shape; without the type
  // byte under the CRC this swap would decode as a clean Unsubscribe.
  bytes[0] = static_cast<std::uint8_t>(WireType::kUnsubscribe);
  MessagePool decode_pool;
  DecodeResult result = decode_message(bytes, decode_pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, DecodeStatus::kBadChecksum);
}

TEST(WireCodec, UnknownTypeByteIsRejected) {
  MessagePool pool;
  std::vector<std::uint8_t> bytes =
      encode_or_die(*pool.make<cmsg::Subscribe>(NodeId{2}));
  bytes[0] = 200;
  // Re-seal the CRC so the failure is attributed to the type, not the sum.
  std::uint32_t crc = crc32({bytes.data(), 1});
  crc = crc32({bytes.data() + 13, bytes.size() - 13}, crc);
  for (int i = 0; i < 4; ++i) {
    bytes[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  MessagePool decode_pool;
  DecodeResult result = decode_message(bytes, decode_pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, DecodeStatus::kUnknownType);
}

TEST(WireCodec, GarbageBytesNeverDecode) {
  ssps::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    MessagePool pool;
    DecodeResult result = decode_message(junk, pool);
    // Random junk essentially never carries a valid CRC; decode must
    // reject it with a structured status either way.
    if (!result.ok()) {
      EXPECT_NE(result.error.status, DecodeStatus::kOk);
    }
  }
}

TEST(WireCodec, EnvelopeNestingBeyondDepthLimitIsRejected) {
  MessagePool pool;
  PooledMsg msg = pool.make<cmsg::Subscribe>(NodeId{2});
  for (int depth = 0; depth <= kMaxEnvelopeDepth; ++depth) {
    msg = pool.make<TopicEnvelope>(static_cast<std::uint32_t>(depth + 1),
                                   std::move(msg));
  }
  const std::vector<std::uint8_t> bytes = encode_or_die(*msg);
  MessagePool decode_pool;
  DecodeResult result = decode_message(bytes, decode_pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, DecodeStatus::kDepthExceeded);
}

// Regression: a BitString whose packed padding bits (past the declared
// bit length) are nonzero is a second encoding of the same value; the
// decoder must insist on the canonical all-zero padding. Found by
// fuzz/decode_fuzz.cpp.
TEST(WireCodec, NonCanonicalBitStringPaddingIsRejected) {
  MessagePool pool;
  std::vector<NodeSummary> tuples;
  tuples.push_back(NodeSummary{BitString::from_uint(0b101, 3), fill_digest(1)});
  std::vector<std::uint8_t> bytes =
      encode_or_die(*pool.make<pmsg::CheckTrie>(NodeId{8}, tuples));
  // Payload layout: sender u64, count u64, label bit-length u64, packed
  // bits byte. Set a padding bit (bit 3 of a 3-bit string) and re-seal.
  const std::size_t packed_at = 13 + 8 + 8 + 8;
  ASSERT_EQ(bytes[packed_at], 0b10100000);
  bytes[packed_at] = 0b10100100;
  std::uint32_t crc = crc32({bytes.data(), 1});
  crc = crc32({bytes.data() + 13, bytes.size() - 13}, crc);
  for (int i = 0; i < 4; ++i) {
    bytes[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  MessagePool decode_pool;
  DecodeResult result = decode_message(bytes, decode_pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, DecodeStatus::kBadPayload);
}

TEST(WireCodec, ElementCountBombIsRejectedWithoutAllocating) {
  MessagePool pool;
  // A CheckTrie frame claiming 2^61 tuples in a 16-byte payload: the
  // decoder must bound the count by the remaining bytes, not reserve.
  std::vector<std::uint8_t> payload(16, 0);
  payload[0] = 8;                      // sender = 8
  payload[8 + 7] = 0x20;               // count = 2^61 (little-endian)
  std::vector<std::uint8_t> bytes;
  bytes.push_back(static_cast<std::uint8_t>(WireType::kCheckTrie));
  const std::uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  std::uint32_t crc = crc32({bytes.data(), 1});
  crc = crc32(payload, crc);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  MessagePool decode_pool;
  DecodeResult result = decode_message(bytes, decode_pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, DecodeStatus::kBadPayload);
}

TEST(WireClone, EveryMessageClonesIntoAForeignPoolBitExactly) {
  MessagePool pool;
  auto samples = all_samples(pool);
  EXPECT_EQ(samples.size(), 16u);
  for (const auto& [name, msg] : samples) {
    SCOPED_TRACE(name);
    const std::vector<std::uint8_t> original = encode_or_die(*msg);
    MessagePool other;
    PooledMsg clone = msg->clone_into(other);
    ASSERT_TRUE(clone);
    EXPECT_EQ(encode_or_die(*clone), original);
    EXPECT_EQ(clone->name(), msg->name());
    EXPECT_EQ(clone->wire_size(), msg->wire_size());
    // The clone is independent: both copies outlive the comparison and
    // re-encode identically again (no shared buffers were moved out).
    EXPECT_EQ(encode_or_die(*msg), original);
    EXPECT_EQ(encode_or_die(*clone), original);
  }
}

TEST(WireCorrupter, ManglingIsTotalAndCounted) {
  MessagePool pool;
  CodecCorrupter corrupter;
  ssps::Rng rng(11);
  std::uint64_t delivered = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    auto samples = all_samples(pool);
    const auto& [name, msg] = samples[rng.below(samples.size())];
    PooledMsg out = corrupter.corrupt(*msg, pool, rng);
    if (out) {
      delivered += 1;
      // Whatever survived the mangling is a real protocol message that
      // round-trips through the codec like any other.
      const std::vector<std::uint8_t> bytes = encode_or_die(*out);
      MessagePool decode_pool;
      EXPECT_TRUE(decode_message(bytes, decode_pool).ok());
    }
  }
  std::uint64_t rejected = 0;
  for (std::uint64_t n : corrupter.rejected_by_status()) rejected += n;
  EXPECT_EQ(delivered, corrupter.survived());
  EXPECT_EQ(delivered + rejected, 5000u);
  // The mangle mix is tuned so both outcomes occur: most manglings die at
  // the checksum, the scramble-past-checksum mode survives decode.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(rejected, delivered);
}

TEST(WireCorrupter, SameRngStateProducesSameDamage) {
  MessagePool pool;
  PooledMsg msg = pool.make<cmsg::Check>(
      LabeledRef{Label::from_index(3), NodeId{7}}, Label::from_index(0),
      IntroFlag::kLinear);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    CodecCorrupter a;
    CodecCorrupter b;
    ssps::Rng rng_a(seed);
    ssps::Rng rng_b(seed);
    PooledMsg out_a = a.corrupt(*msg, pool, rng_a);
    PooledMsg out_b = b.corrupt(*msg, pool, rng_b);
    ASSERT_EQ(static_cast<bool>(out_a), static_cast<bool>(out_b));
    if (out_a) {
      EXPECT_EQ(encode_or_die(*out_a), encode_or_die(*out_b));
    }
  }
}

}  // namespace
}  // namespace ssps::wire
