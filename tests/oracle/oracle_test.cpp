// Invariant oracle: a converged system reports zero violations, and every
// class of known-illegal state fires the invariant named for it.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/chaos.hpp"
#include "oracle/invariants.hpp"
#include "pubsub/pubsub_node.hpp"
#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"

namespace ssps::oracle {
namespace {

using core::Label;
using core::LabeledRef;

/// Bootstraps `n` pub-sub subscribers, publishes a few entries and runs
/// until both the topology and the publication layer are converged.
void converge(pubsub::PubSubSystem& system, std::size_t n) {
  system.add_pubsub_subscribers(n);
  ASSERT_TRUE(system.run_until_legit(4000).has_value())
      << system.legitimacy_violation();
  const auto ids = system.active_ids();
  system.pubsub(ids[0]).publish("alpha");
  system.pubsub(ids[ids.size() / 2]).publish("beta");
  ASSERT_TRUE(system.net()
                  .run_until([&] { return system.publications_converged(); }, 2000)
                  .has_value());
}

bool fires(const OracleReport& report, Invariant inv) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == inv; });
}

TEST(Oracle, ConvergedSystemReportsZeroViolations) {
  pubsub::PubSubSystem system({.seed = 11});
  converge(system, 12);
  const OracleReport report = check_system(system);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.checked_nodes, 12u);
  EXPECT_TRUE(report.count_by_invariant().empty());
}

TEST(Oracle, BrokenRingOrderFires) {
  pubsub::PubSubSystem system({.seed = 12});
  converge(system, 8);
  // Point one node's left edge at itself under a bogus label: the sorted
  // ring is broken at exactly that slot.
  const sim::NodeId victim = system.active_ids()[3];
  system.subscriber(victim).chaos_set_left(LabeledRef{Label(0b101, 3), victim});
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kRingOrder)) << report.summary();
  EXPECT_FALSE(fires(report, Invariant::kSupervisorView));
  EXPECT_FALSE(fires(report, Invariant::kShortcutClosure));
}

TEST(Oracle, UnlabeledMemberFires) {
  pubsub::PubSubSystem system({.seed = 13});
  converge(system, 8);
  const sim::NodeId victim = system.active_ids()[0];
  system.subscriber(victim).chaos_set_label(std::nullopt);
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kRingOrder)) << report.summary();
  // The database still records the old label: the views disagree.
  EXPECT_TRUE(fires(report, Invariant::kSupervisorView));
}

TEST(Oracle, MissingDyadicShortcutFires) {
  pubsub::PubSubSystem system({.seed = 14});
  converge(system, 16);
  // Find a member that must hold shortcuts and wipe its table.
  bool wiped = false;
  for (sim::NodeId id : system.active_ids()) {
    if (!system.subscriber(id).shortcuts().empty()) {
      system.subscriber(id).chaos_clear_shortcuts();
      wiped = true;
      break;
    }
  }
  ASSERT_TRUE(wiped) << "no member held any shortcut at n=16";
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kShortcutClosure)) << report.summary();
  EXPECT_FALSE(fires(report, Invariant::kRingOrder));
}

TEST(Oracle, SpuriousShortcutFires) {
  pubsub::PubSubSystem system({.seed = 15});
  converge(system, 8);
  const auto ids = system.active_ids();
  system.subscriber(ids[1]).chaos_put_shortcut(Label(0b0110101, 7), ids[5]);
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kShortcutClosure)) << report.summary();
}

TEST(Oracle, StaleSupervisorEntryFires) {
  pubsub::PubSubSystem system({.seed = 16});
  converge(system, 8);
  // Case (i): a (label, ⊥) tuple. Also punches a hole in {l(0)…l(n−1)}.
  system.supervisor().chaos_insert_null(Label::from_index(3));
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kSupervisorView)) << report.summary();
}

TEST(Oracle, DuplicateDatabaseNodeFires) {
  pubsub::PubSubSystem system({.seed = 17});
  converge(system, 8);
  // Case (ii): one subscriber recorded under a second label.
  const sim::NodeId dup = system.active_ids()[2];
  system.supervisor().chaos_insert(Label::from_index(9), dup);
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kSupervisorView)) << report.summary();
}

TEST(Oracle, SplitBrainBreaksConnectivity) {
  pubsub::PubSubSystem system({.seed = 18});
  converge(system, 12);
  core::split_brain(system, 99);
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kRingConnectivity)) << report.summary();
}

TEST(Oracle, CorruptTrieEdgeFires) {
  pubsub::PubSubSystem system({.seed = 19});
  converge(system, 8);
  const sim::NodeId victim = system.active_ids()[4];
  ASSERT_TRUE(system.pubsub(victim).chaos_trie().chaos_corrupt_digest(7));
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kTrieShape)) << report.summary();
}

TEST(Oracle, TrieDivergenceFires) {
  pubsub::PubSubSystem system({.seed = 20});
  converge(system, 8);
  const sim::NodeId victim = system.active_ids()[1];
  system.pubsub(victim).add_local(pubsub::Publication{victim, "private-extra"});
  const OracleReport report = check_system(system);
  EXPECT_TRUE(fires(report, Invariant::kTrieAgreement)) << report.summary();
  EXPECT_FALSE(fires(report, Invariant::kTrieShape));
}

TEST(Oracle, ViolationRenderingIsInformative) {
  pubsub::PubSubSystem system({.seed = 21});
  converge(system, 8);
  system.supervisor().chaos_insert_null(Label::from_index(2));
  const OracleReport report = check_system(system);
  ASSERT_FALSE(report.ok());
  const std::string text = report.violations.front().to_string();
  EXPECT_NE(text.find("supervisor-view"), std::string::npos) << text;
  EXPECT_FALSE(report.summary().empty());
  for (Invariant inv :
       {Invariant::kRingOrder, Invariant::kRingConnectivity,
        Invariant::kShortcutClosure, Invariant::kSupervisorView,
        Invariant::kTrieShape, Invariant::kTrieAgreement,
        Invariant::kTopicPlacement}) {
    EXPECT_GT(std::string(invariant_name(inv)).size(), 0u);
    EXPECT_GT(std::string(invariant_reference(inv)).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Multi-topic deployment
// ---------------------------------------------------------------------------

/// A small converged multi-topic deployment driven through the runner.
scenario::ScenarioSpec small_multi(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "oracle-multi";
  spec.seed = seed;
  spec.nodes = 10;
  spec.mode = scenario::Mode::kMultiTopic;
  spec.supervisors = 2;
  spec.topics = 4;
  spec.topics_per_client = 2;
  scenario::Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = 10;
  bootstrap.converge = true;
  // The engine's convergence probe is weaker than the full legal-state
  // predicate (it never inspects shortcut tables); folding the oracle into
  // the wait is what makes "converged" mean "legal".
  bootstrap.check_invariants = true;
  spec.phases.push_back(bootstrap);
  return spec;
}

/// First topic with at least one member (the oracle skips empty topics).
pubsub::TopicId populated_topic(const scenario::ScenarioRunner& runner) {
  for (pubsub::TopicId t = 1; t <= 4; ++t) {
    if (!runner.topic_members(t).empty()) return t;
  }
  ADD_FAILURE() << "no topic has any member";
  return 1;
}

TEST(OracleMulti, ConvergedDeploymentReportsZeroViolations) {
  scenario::ScenarioRunner runner(small_multi(31));
  ASSERT_TRUE(runner.run().ok);
  const OracleReport report = runner.check_oracle();
  EXPECT_TRUE(report.ok()) << report.summary();
  std::size_t want_topics = 0;
  std::size_t want_nodes = 0;
  for (pubsub::TopicId t = 1; t <= 4; ++t) {
    const auto members = runner.topic_members(t);
    want_topics += members.empty() ? 0 : 1;
    want_nodes += members.size();
  }
  EXPECT_EQ(report.checked_topics, want_topics);
  EXPECT_EQ(report.checked_nodes, want_nodes);  // one state per (client, topic)
}

TEST(OracleMulti, CorruptPerTopicDatabaseFires) {
  scenario::ScenarioRunner runner(small_multi(32));
  ASSERT_TRUE(runner.run().ok);
  const pubsub::TopicId topic = populated_topic(runner);
  const sim::NodeId owner = runner.group().supervisor_for(topic);
  auto& sup = runner.net().node_as<pubsub::MultiTopicSupervisorNode>(owner);
  sup.topic_supervisor(topic).chaos_insert_null(Label::from_index(0));
  const OracleReport report = runner.check_oracle();
  EXPECT_TRUE(fires(report, Invariant::kSupervisorView)) << report.summary();
  // The violation is attributed to the right topic.
  bool attributed = false;
  for (const Violation& v : report.violations) {
    if (v.invariant == Invariant::kSupervisorView && v.topic == topic) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(OracleMulti, StaleInstanceAtNonOwnerFires) {
  scenario::ScenarioRunner runner(small_multi(33));
  ASSERT_TRUE(runner.run().ok);
  const pubsub::TopicId topic = populated_topic(runner);
  const sim::NodeId owner = runner.group().supervisor_for(topic);
  sim::NodeId other;
  for (sim::NodeId id : runner.supervisor_ids()) {
    if (id != owner) other = id;
  }
  ASSERT_TRUE(other);
  const std::vector<sim::NodeId> members = runner.topic_members(topic);
  ASSERT_FALSE(members.empty());
  auto& sup = runner.net().node_as<pubsub::MultiTopicSupervisorNode>(other);
  sup.topic_supervisor(topic).chaos_insert(Label::from_index(0), members.front());
  const OracleReport report = runner.check_oracle();
  EXPECT_TRUE(fires(report, Invariant::kTopicPlacement)) << report.summary();
}

TEST(OracleMulti, DroppedMemberInstanceFires) {
  scenario::ScenarioRunner runner(small_multi(34));
  ASSERT_TRUE(runner.run().ok);
  const pubsub::TopicId topic = populated_topic(runner);
  const std::vector<sim::NodeId> members = runner.topic_members(topic);
  ASSERT_FALSE(members.empty());
  runner.net().node_as<pubsub::MultiTopicNode>(members.front()).drop_topic(topic);
  const OracleReport report = runner.check_oracle();
  EXPECT_TRUE(fires(report, Invariant::kTopicPlacement)) << report.summary();
}

}  // namespace
}  // namespace ssps::oracle
