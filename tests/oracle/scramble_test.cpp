// Arbitrary-state stabilization: the paper's convergence theorems as
// property tests. For random seeds, ArbitraryStateInjector scrambles a
// live deployment into an arbitrary-but-type-correct state; the protocols
// must reach zero oracle violations within a bounded round count — on the
// single supervised ring and on the sharded multi-topic deployment.
#include <gtest/gtest.h>

#include "oracle/invariants.hpp"
#include "oracle/scramble.hpp"
#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"

namespace ssps::oracle {
namespace {

/// Stabilization bound for the small systems below (rounds). Generous: a
/// clean 12-node bootstrap converges in < 20; diagnosing a divergence
/// matters more than a tight constant.
constexpr std::size_t kMaxRounds = 4000;

TEST(Scramble, SingleRingStabilizesFromArbitraryStates) {
  std::size_t scrambles_with_violations = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    pubsub::PubSubSystem system({.seed = seed});
    system.add_pubsub_subscribers(12);
    ASSERT_TRUE(system.run_until_legit(4000).has_value()) << "seed " << seed;
    system.pubsub(system.active_ids()[0]).publish("payload");
    ASSERT_TRUE(
        system.net()
            .run_until([&] { return system.publications_converged(); }, 2000)
            .has_value());

    ScrambleOptions options;
    options.seed = seed * 1000 + 7;
    ArbitraryStateInjector injector(options);
    injector.scramble(system);
    if (!check_system(system).ok()) scrambles_with_violations += 1;

    const auto rounds = system.net().run_until(
        [&] { return check_system(system).ok(); }, kMaxRounds);
    ASSERT_TRUE(rounds.has_value())
        << "seed " << seed << " did not stabilize; oracle says:\n"
        << check_system(system).summary();
  }
  // Sanity: the injector is not a no-op — most scrambles must actually
  // break the legal state.
  EXPECT_GE(scrambles_with_violations, 6u);
}

TEST(Scramble, OverlayOnlySystemStabilizes) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    core::SkipRingSystem system({.seed = seed});
    system.add_subscribers(10);
    ASSERT_TRUE(system.run_until_legit(4000).has_value()) << "seed " << seed;

    ScrambleOptions options;
    options.seed = seed * 31 + 5;
    ArbitraryStateInjector injector(options);
    injector.scramble(system);

    const auto rounds = system.net().run_until(
        [&] { return check_system(system).ok(); }, kMaxRounds);
    ASSERT_TRUE(rounds.has_value())
        << "seed " << seed << " did not stabilize; oracle says:\n"
        << check_system(system).summary();
  }
}

TEST(Scramble, MultiTopicDeploymentStabilizes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    scenario::ScenarioSpec spec;
    spec.name = "scramble-multi";
    spec.seed = seed;
    spec.nodes = 10;
    spec.mode = scenario::Mode::kMultiTopic;
    spec.supervisors = 2;
    spec.topics = 4;
    spec.topics_per_client = 2;

    scenario::Phase bootstrap;
    bootstrap.name = "bootstrap";
    bootstrap.churn.joins = 10;
    bootstrap.converge = true;
    spec.phases.push_back(bootstrap);

    scenario::Phase pubs;
    pubs.name = "publications";
    pubs.publish.count = 6;
    pubs.converge = true;
    spec.phases.push_back(pubs);

    scenario::Phase scramble;
    scramble.name = "scramble";
    ScrambleOptions options;
    options.seed = seed * 77 + 3;
    scramble.scramble = options;
    scramble.check_invariants = true;
    scramble.converge = true;
    scramble.max_rounds = kMaxRounds;
    spec.phases.push_back(scramble);

    scenario::ScenarioRunner runner(std::move(spec));
    const scenario::ScenarioReport& report = runner.run();
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << report.to_json().dump(2);
    EXPECT_TRUE(report.oracle_ok) << "seed " << seed;
    const auto& oracle = report.phases.back().oracle;
    ASSERT_TRUE(oracle.has_value());
    EXPECT_EQ(oracle->violations, 0u) << "seed " << seed;
  }
}

TEST(Scramble, InjectionIsDeterministic) {
  auto run_once = [] {
    scenario::ScenarioSpec spec =
        scenario::scrambled_variant(scenario::builtin_scenario("steady", 23, 10));
    scenario::ScenarioRunner runner(std::move(spec));
    return runner.run().to_json().dump(0);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scramble, ScrambledVariantsOfAllBuiltinsConverge) {
  for (const std::string& name : scenario::builtin_names()) {
    scenario::ScenarioSpec spec =
        scenario::scrambled_variant(scenario::builtin_scenario(name, 5, 10));
    EXPECT_TRUE(spec.oracle);
    ASSERT_GE(spec.phases.size(), 2u);
    EXPECT_EQ(spec.phases[1].name, "scramble");
    scenario::ScenarioRunner runner(std::move(spec));
    const scenario::ScenarioReport& report = runner.run();
    EXPECT_TRUE(report.ok) << "scenario " << name;
    EXPECT_TRUE(report.oracle_ok) << "scenario " << name;
    for (const scenario::PhaseReport& p : report.phases) {
      ASSERT_TRUE(p.oracle.has_value()) << name << "/" << p.name;
    }
  }
}

}  // namespace
}  // namespace ssps::oracle
