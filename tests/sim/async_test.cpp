// Asynchronous-scheduler stress: self-stabilization must hold under the
// §1.1 model's full asynchrony, for a range of fairness parameters and
// interleaving biases — not just under synchronous rounds.
#include <gtest/gtest.h>

#include <vector>

#include "core/chaos.hpp"
#include "core/system.hpp"
#include "pubsub/pubsub_node.hpp"
#include "sim/network.hpp"

namespace ssps::sim {
namespace {

using core::ChaosOptions;
using core::SkipRingSystem;

struct AsyncCase {
  Step max_age;
  Step max_gap;
  std::uint32_t bias;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<AsyncCase>& info) {
  return "age" + std::to_string(info.param.max_age) + "_gap" +
         std::to_string(info.param.max_gap) + "_bias" + std::to_string(info.param.bias) +
         "_s" + std::to_string(info.param.seed);
}

class AsyncSweep : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncSweep, CorruptedSystemStabilizesUnderAsynchrony) {
  const auto [age, gap, bias, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  ChaosOptions chaos;
  chaos.seed = seed + 1;
  corrupt_system(sys, chaos);

  sys.net().async_config().max_message_age = age;
  sys.net().async_config().max_timeout_gap = gap;
  sys.net().async_config().timeout_bias = bias;

  bool legit = false;
  for (int block = 0; block < 400 && !legit; ++block) {
    sys.net().run_steps(4000);
    legit = sys.topology_legit();
  }
  EXPECT_TRUE(legit) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncSweep,
    ::testing::Values(AsyncCase{16, 16, 64, 1},    // tight fairness
                      AsyncCase{256, 256, 64, 2},  // sloppy fairness
                      AsyncCase{64, 64, 8, 3},     // delivery-heavy
                      AsyncCase{64, 64, 240, 4},   // timeout-heavy
                      AsyncCase{512, 32, 64, 5},   // stale messages
                      AsyncCase{32, 512, 64, 6}),  // starved timeouts
    case_name);

struct StepPing final : MsgBase<StepPing> {
  int payload = 0;
  explicit StepPing(int p) : payload(p) {}
  std::string_view name() const override { return "StepPing"; }
};

class StepProbe final : public Node {
 public:
  void handle(PooledMsg msg) override {
    auto* ping = msg_cast<StepPing>(*msg);
    ASSERT_NE(ping, nullptr);
    received.push_back(ping->payload);
    if (echo_to && ping->payload < 3000) {
      net().emit<StepPing>(echo_to, ping->payload + 1000);
    }
  }
  void timeout() override { ++timeouts; }
  std::vector<int> received;
  int timeouts = 0;
  NodeId echo_to = NodeId::null();
};

TEST(AsyncScheduler, FixedSeedPickSequenceIsPinned) {
  // The canonical step()-picking trace for seed 2024: delivery order and
  // per-node timeout counts over 120 steps. Pins the scheduler's fairness
  // decisions — the oldest-message / stalest-timeout indexes and the
  // (sent_at, seq) / (last_timeout, slot) tie-breaks — so a refactor of
  // the O(log n) heap bookkeeping cannot silently change interleavings.
  Network net(2024);
  const NodeId a = net.spawn<StepProbe>();
  const NodeId b = net.spawn<StepProbe>();
  const NodeId c = net.spawn<StepProbe>();
  net.node_as<StepProbe>(a).echo_to = b;
  net.node_as<StepProbe>(b).echo_to = c;
  for (int i = 0; i < 6; ++i) net.emit<StepPing>(a, i);
  net.run_steps(120);
  EXPECT_EQ(net.node_as<StepProbe>(a).received, (std::vector<int>{3, 4, 5, 0, 2, 1}));
  EXPECT_EQ(net.node_as<StepProbe>(b).received,
            (std::vector<int>{1003, 1002, 1005, 1000, 1004, 1001}));
  EXPECT_EQ(net.node_as<StepProbe>(c).received,
            (std::vector<int>{2003, 2002, 2005, 2000, 2004, 2001}));
  EXPECT_EQ(net.node_as<StepProbe>(a).timeouts, 36);
  EXPECT_EQ(net.node_as<StepProbe>(b).timeouts, 37);
  EXPECT_EQ(net.node_as<StepProbe>(c).timeouts, 29);
}

TEST(AsyncScheduler, StepClockModeStampsSinkRounds) {
  // ClockMode::kSteps redirects clock_now() (and with it latency/telemetry
  // stamps) from the round counter to the step counter.
  Network net(3);
  net.spawn<StepProbe>();
  EXPECT_EQ(net.clock_mode(), Network::ClockMode::kRounds);
  net.set_clock_mode(Network::ClockMode::kSteps);
  EXPECT_EQ(net.clock_now(), 0u);
  net.run_steps(37);
  EXPECT_EQ(net.clock_now(), 37u);
}

TEST(AsyncScheduler, PublicationsConvergeUnderAsynchronyToo) {
  pubsub::PubSubConfig cfg;
  cfg.flooding = false;
  pubsub::PubSubSystem sys(SkipRingSystem::Options{.seed = 31, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(10);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (int i = 0; i < 10; ++i) {
    sys.pubsub(ids[static_cast<std::size_t>(i) % ids.size()])
        .add_local(pubsub::Publication{ids[0], "a" + std::to_string(i)});
  }
  bool done = false;
  for (int block = 0; block < 400 && !done; ++block) {
    sys.net().run_steps(4000);
    done = sys.publications_converged();
  }
  EXPECT_TRUE(done);
}

TEST(AsyncScheduler, MixedSchedulersInterleave) {
  // Alternating round-based and step-based execution must not confuse the
  // protocol (rounds and steps share the same network state).
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 33, .fd_delay = 0});
  sys.add_subscribers(12);
  ChaosOptions chaos;
  chaos.seed = 34;
  corrupt_system(sys, chaos);
  for (int i = 0; i < 100 && !sys.topology_legit(); ++i) {
    sys.net().run_steps(500);
    sys.net().run_round();
  }
  EXPECT_TRUE(sys.topology_legit()) << sys.legitimacy_violation();
}

TEST(AsyncScheduler, CrashRecoveryUnderAsynchrony) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 35, .fd_delay = 2});
  const auto ids = sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  sys.crash(ids[1]);
  sys.crash(ids[7]);
  // The failure detector is round-based; advance rounds sparsely while the
  // async scheduler does the bulk of the work.
  bool legit = false;
  for (int block = 0; block < 400 && !legit; ++block) {
    sys.net().run_steps(2000);
    sys.net().run_round();
    legit = sys.topology_legit();
  }
  EXPECT_TRUE(legit) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 14u);
}

}  // namespace
}  // namespace ssps::sim
