// Asynchronous-scheduler stress: self-stabilization must hold under the
// §1.1 model's full asynchrony, for a range of fairness parameters and
// interleaving biases — not just under synchronous rounds.
#include <gtest/gtest.h>

#include "core/chaos.hpp"
#include "core/system.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::sim {
namespace {

using core::ChaosOptions;
using core::SkipRingSystem;

struct AsyncCase {
  Step max_age;
  Step max_gap;
  std::uint32_t bias;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<AsyncCase>& info) {
  return "age" + std::to_string(info.param.max_age) + "_gap" +
         std::to_string(info.param.max_gap) + "_bias" + std::to_string(info.param.bias) +
         "_s" + std::to_string(info.param.seed);
}

class AsyncSweep : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncSweep, CorruptedSystemStabilizesUnderAsynchrony) {
  const auto [age, gap, bias, seed] = GetParam();
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  ChaosOptions chaos;
  chaos.seed = seed + 1;
  corrupt_system(sys, chaos);

  sys.net().async_config().max_message_age = age;
  sys.net().async_config().max_timeout_gap = gap;
  sys.net().async_config().timeout_bias = bias;

  bool legit = false;
  for (int block = 0; block < 400 && !legit; ++block) {
    sys.net().run_steps(4000);
    legit = sys.topology_legit();
  }
  EXPECT_TRUE(legit) << sys.legitimacy_violation();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncSweep,
    ::testing::Values(AsyncCase{16, 16, 64, 1},    // tight fairness
                      AsyncCase{256, 256, 64, 2},  // sloppy fairness
                      AsyncCase{64, 64, 8, 3},     // delivery-heavy
                      AsyncCase{64, 64, 240, 4},   // timeout-heavy
                      AsyncCase{512, 32, 64, 5},   // stale messages
                      AsyncCase{32, 512, 64, 6}),  // starved timeouts
    case_name);

TEST(AsyncScheduler, PublicationsConvergeUnderAsynchronyToo) {
  pubsub::PubSubConfig cfg;
  cfg.flooding = false;
  pubsub::PubSubSystem sys(SkipRingSystem::Options{.seed = 31, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(10);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (int i = 0; i < 10; ++i) {
    sys.pubsub(ids[static_cast<std::size_t>(i) % ids.size()])
        .add_local(pubsub::Publication{ids[0], "a" + std::to_string(i)});
  }
  bool done = false;
  for (int block = 0; block < 400 && !done; ++block) {
    sys.net().run_steps(4000);
    done = sys.publications_converged();
  }
  EXPECT_TRUE(done);
}

TEST(AsyncScheduler, MixedSchedulersInterleave) {
  // Alternating round-based and step-based execution must not confuse the
  // protocol (rounds and steps share the same network state).
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 33, .fd_delay = 0});
  sys.add_subscribers(12);
  ChaosOptions chaos;
  chaos.seed = 34;
  corrupt_system(sys, chaos);
  for (int i = 0; i < 100 && !sys.topology_legit(); ++i) {
    sys.net().run_steps(500);
    sys.net().run_round();
  }
  EXPECT_TRUE(sys.topology_legit()) << sys.legitimacy_violation();
}

TEST(AsyncScheduler, CrashRecoveryUnderAsynchrony) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 35, .fd_delay = 2});
  const auto ids = sys.add_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  sys.crash(ids[1]);
  sys.crash(ids[7]);
  // The failure detector is round-based; advance rounds sparsely while the
  // async scheduler does the bulk of the work.
  bool legit = false;
  for (int block = 0; block < 400 && !legit; ++block) {
    sys.net().run_steps(2000);
    sys.net().run_round();
    legit = sys.topology_legit();
  }
  EXPECT_TRUE(legit) << sys.legitimacy_violation();
  EXPECT_EQ(sys.supervisor().size(), 14u);
}

}  // namespace
}  // namespace ssps::sim
