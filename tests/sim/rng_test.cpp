// Tests for the deterministic RNG (src/common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ssps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, ChanceZeroAndCertain) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 5));
    EXPECT_TRUE(rng.chance(5, 5));
    EXPECT_TRUE(rng.chance(9, 5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(1, 4)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, Uniform01Range) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(14);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(15);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(15);
  b.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsDeterministically) {
  Rng a(16);
  const auto x1 = a.next();
  a.reseed(16);
  EXPECT_EQ(a.next(), x1);
}

}  // namespace
}  // namespace ssps
