// Trace/DOT tooling tests.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ssps::sim {
namespace {

TEST(Trace, RecordsAndFormats) {
  Trace t;
  t.record(1, NodeId{2}, NodeId{3}, "Check");
  t.record(2, NodeId{3}, NodeId{2}, "Introduce");
  ASSERT_EQ(t.events().size(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("[r1] 2 -> 3 : Check"), std::string::npos);
  EXPECT_NE(text.find("[r2] 3 -> 2 : Introduce"), std::string::npos);
}

TEST(Trace, BoundedCapacityDropsOldest) {
  Trace t(3);
  for (int i = 0; i < 10; ++i) {
    t.record(static_cast<Round>(i), NodeId{1}, NodeId{2}, "e" + std::to_string(i));
  }
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped(), 7u);
  EXPECT_EQ(t.label_name(t.events().front().label), "e7");
  EXPECT_NE(t.to_text().find("7 earlier events dropped"), std::string::npos);
}

TEST(Trace, InternsLabelsToStableDenseIds) {
  Trace t;
  const std::uint32_t a = t.intern("A");
  const std::uint32_t b = t.intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("A"), a);  // idempotent
  EXPECT_EQ(t.label_name(a), "A");
  t.record(1, NodeId{1}, NodeId{2}, "A");
  EXPECT_EQ(t.events().back().label, a);
  // Interning survives clear(): ids recorded before and after agree.
  t.clear();
  t.record(2, NodeId{1}, NodeId{2}, "A");
  EXPECT_EQ(t.events().back().label, a);
}

TEST(Trace, RecordsKindAndFlowCorrelation) {
  Trace t;
  t.record(1, NodeId{1}, NodeId{2}, "Publish", TraceEventKind::kSend, 42);
  t.record(2, NodeId::null(), NodeId{2}, "Publish", TraceEventKind::kDeliver, 42);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events().front().kind, TraceEventKind::kSend);
  EXPECT_EQ(t.events().back().kind, TraceEventKind::kDeliver);
  EXPECT_EQ(t.events().front().flow, t.events().back().flow);
}

TEST(Trace, FilterByLabel) {
  Trace t;
  t.record(1, NodeId{1}, NodeId{2}, "A");
  t.record(2, NodeId{1}, NodeId{2}, "B");
  t.record(3, NodeId{1}, NodeId{2}, "A");
  EXPECT_EQ(t.filter("A").size(), 2u);
  EXPECT_EQ(t.filter("C").size(), 0u);
}

TEST(Trace, ClearResets) {
  Trace t(2);
  t.record(1, NodeId{1}, NodeId{2}, "x");
  t.record(2, NodeId{1}, NodeId{2}, "y");
  t.record(3, NodeId{1}, NodeId{2}, "z");
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(ToDot, RendersNodesAndColoredEdges) {
  const std::vector<NodeId> nodes{NodeId{1}, NodeId{2}};
  const std::vector<DotEdge> edges{{NodeId{1}, NodeId{2}, "ring"},
                                   {NodeId{2}, NodeId{1}, "shortcut"},
                                   {NodeId{1}, NodeId{2}, "unknown-kind"}};
  const std::string dot =
      to_dot(nodes, edges, [](NodeId n) { return "N" + std::to_string(n.value); });
  EXPECT_NE(dot.find("digraph overlay"), std::string::npos);
  EXPECT_NE(dot.find("n1 [label=\"N1\"]"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2 [color=black]"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n1 [color=forestgreen]"), std::string::npos);
  EXPECT_NE(dot.find("[color=gray]"), std::string::npos);
}

TEST(ToDot, EscapesQuotesInLabels) {
  const std::vector<NodeId> nodes{NodeId{1}};
  const std::string dot =
      to_dot(nodes, {}, [](NodeId) { return std::string("say \"hi\""); });
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(ToDot, LiveSystemExportContainsEveryRingEdge) {
  core::SkipRingSystem sys(core::SkipRingSystem::Options{.seed = 3, .fd_delay = 0});
  sys.add_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  const std::string dot = sys.to_dot();
  // Every subscriber appears with its label.
  for (sim::NodeId id : sys.subscriber_ids()) {
    EXPECT_NE(dot.find("n" + std::to_string(id.value) + " [label=\""),
              std::string::npos);
  }
  // There are ring (black) and shortcut (green) edges.
  EXPECT_NE(dot.find("[color=black]"), std::string::npos);
  EXPECT_NE(dot.find("[color=forestgreen]"), std::string::npos);
}

}  // namespace
}  // namespace ssps::sim
