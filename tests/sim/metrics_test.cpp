// Tests for message accounting (src/sim/metrics.hpp).
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace ssps::sim {
namespace {

TEST(Metrics, CountsSendsPerLabel) {
  Metrics m;
  m.on_send("A", 10, NodeId{1});
  m.on_send("A", 20, NodeId{2});
  m.on_send("B", 5, NodeId{1});
  EXPECT_EQ(m.total_sent(), 3u);
  EXPECT_EQ(m.total_bytes(), 35u);
  EXPECT_EQ(m.sent("A"), 2u);
  EXPECT_EQ(m.sent_bytes("A"), 30u);
  EXPECT_EQ(m.sent("B"), 1u);
  EXPECT_EQ(m.sent("C"), 0u);
}

TEST(Metrics, CountsDeliveriesPerNode) {
  Metrics m;
  m.on_deliver("A", NodeId{1});
  m.on_deliver("A", NodeId{1});
  m.on_deliver("B", NodeId{1});
  m.on_deliver("A", NodeId{2});
  EXPECT_EQ(m.received_by(NodeId{1}), 3u);
  EXPECT_EQ(m.received_by(NodeId{1}, "A"), 2u);
  EXPECT_EQ(m.received_by(NodeId{1}, "B"), 1u);
  EXPECT_EQ(m.received_by(NodeId{2}), 1u);
  EXPECT_EQ(m.received_by(NodeId{3}), 0u);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.on_send("A", 10, NodeId{1});
  m.on_deliver("A", NodeId{1});
  m.reset();
  EXPECT_EQ(m.total_sent(), 0u);
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_EQ(m.sent("A"), 0u);
  EXPECT_EQ(m.received_by(NodeId{1}), 0u);
  EXPECT_TRUE(m.by_label().empty());
}

TEST(Metrics, ByLabelIsSortedForStableOutput) {
  Metrics m;
  m.on_send("Zeta", 1, NodeId{1});
  m.on_send("Alpha", 1, NodeId{1});
  m.on_send("Mid", 1, NodeId{1});
  std::vector<std::string> names;
  for (const auto& [name, counter] : m.by_label()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"Alpha", "Mid", "Zeta"}));
}

TEST(Metrics, ByLabelViewRevalidatesAcrossSendsAndResets) {
  Metrics m;
  m.on_send("A", 10, NodeId{1});
  const auto& first = m.by_label();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].second.count, 1u);

  // New traffic must show up on the next call.
  m.on_send("A", 10, NodeId{1});
  m.on_send("B", 5, NodeId{2});
  const auto& second = m.by_label();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].first, "A");
  EXPECT_EQ(second[0].second.count, 2u);
  EXPECT_EQ(second[1].first, "B");

  // reset() invalidates even though the running totals start over (the
  // fresh window must never alias a cached view from an old one).
  m.reset();
  EXPECT_TRUE(m.by_label().empty());
  m.on_send("C", 1, NodeId{1});
  ASSERT_EQ(m.by_label().size(), 1u);
  EXPECT_EQ(m.by_label()[0].first, "C");
}

TEST(Metrics, SentByCountsPerTargetOfferedLoad) {
  Metrics m;
  m.on_send("A", 10, NodeId{1});
  m.on_send("A", 10, NodeId{1});
  m.on_send("B", 5, NodeId{7});
  EXPECT_EQ(m.sent_by(NodeId{1}), 2u);
  EXPECT_EQ(m.sent_by(NodeId{7}), 1u);
  EXPECT_EQ(m.sent_by(NodeId{2}), 0u);
  EXPECT_EQ(m.sent_by(NodeId::null()), 0u);
  m.reset();
  EXPECT_EQ(m.sent_by(NodeId{1}), 0u);
}

TEST(Metrics, SentByFoldsAcrossShards) {
  Metrics a, b;
  a.on_send("A", 1, NodeId{3});
  b.on_send("A", 1, NodeId{3});
  b.on_send("B", 1, NodeId{9});  // forces the destination table to grow
  b.fold_into(a);
  EXPECT_EQ(a.sent_by(NodeId{3}), 2u);
  EXPECT_EQ(a.sent_by(NodeId{9}), 1u);
}

TEST(Metrics, NetworkIntegrationTracksWireSizes) {
  struct Sized final : MsgBase<Sized> {
    std::string_view name() const override { return "Sized"; }
    std::size_t wire_size() const override { return 123; }
  };
  struct Sink final : Node {
    void handle(PooledMsg) override {}
    void timeout() override {}
  };
  Network net(1);
  const NodeId a = net.spawn<Sink>();
  net.emit<Sized>(a);
  EXPECT_EQ(net.metrics().sent("Sized"), 1u);
  EXPECT_EQ(net.metrics().sent_bytes("Sized"), 123u);
  net.run_round();
  EXPECT_EQ(net.metrics().received_by(a, "Sized"), 1u);
}

TEST(Metrics, SendsToDeadNodesAreStillCounted) {
  // The sender pays for the message whether or not the target lives — the
  // supervisor-overhead experiments rely on sender-side counting.
  struct Sink final : Node {
    void handle(PooledMsg) override {}
    void timeout() override {}
  };
  struct Sized final : MsgBase<Sized> {
    std::string_view name() const override { return "Sized"; }
  };
  Network net(2);
  const NodeId a = net.spawn<Sink>();
  net.crash(a);
  net.emit<Sized>(a);
  EXPECT_EQ(net.metrics().sent("Sized"), 1u);
  // ...and the per-target table attributes it: the gap between sent_by
  // and received_by is exactly the swallowed-to-dead traffic.
  EXPECT_EQ(net.metrics().sent_by(a), 1u);
  EXPECT_EQ(net.metrics().received_by(a), 0u);
}

}  // namespace
}  // namespace ssps::sim
