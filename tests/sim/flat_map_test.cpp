// Tests for the sorted flat-vector map (src/common/flat_map.hpp) backing
// the multi-topic tables.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ssps {
namespace {

TEST(FlatMap, InsertFindEraseKeepSortedOrder) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.emplace(3, "c").second);
  EXPECT_TRUE(m.emplace(1, "a").second);
  EXPECT_TRUE(m.emplace(2, "b").second);
  EXPECT_FALSE(m.emplace(2, "x").second);  // no overwrite
  ASSERT_EQ(m.size(), 3u);

  std::string keys;
  for (const auto& [k, v] : m) keys += v;
  EXPECT_EQ(keys, "abc");  // iteration in key order, like std::map

  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.find(2)->second, "b");
  EXPECT_EQ(m.find(9), m.end());
  EXPECT_EQ(m.at(3), "c");

  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int, std::size_t> m;
  m[7] += 2;
  m[5] += 1;
  m[7] += 3;
  EXPECT_EQ(m.at(7), 5u);
  EXPECT_EQ(m.at(5), 1u);
  EXPECT_EQ(m.front().first, 5);
  EXPECT_EQ(m.back().first, 7);
}

TEST(FlatMap, LowerBoundSupportsRingLookup) {
  // The consistent-hashing ring uses lower_bound with wraparound.
  FlatMap<std::uint64_t, int> ring;
  ring.emplace(10u, 1);
  ring.emplace(20u, 2);
  ring.emplace(30u, 3);
  EXPECT_EQ(ring.lower_bound(15)->second, 2);
  EXPECT_EQ(ring.lower_bound(20)->second, 2);
  EXPECT_EQ(ring.lower_bound(31), ring.end());  // caller wraps to begin()
}

TEST(FlatMap, EraseDuringIterationReturnsNextEntry) {
  // MultiTopicNode::timeout prunes departed instances mid-iteration.
  FlatMap<int, int> m;
  for (int k = 0; k < 6; ++k) m.emplace(k, k * k);
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.begin()->first, 1);
}

TEST(FlatMap, HoldsMoveOnlyValues) {
  // The per-topic instance tables store unique_ptr-laden structs; entry
  // moves on insert/erase must compile and preserve the pointees.
  FlatMap<int, std::unique_ptr<int>> m;
  m.emplace(2, std::make_unique<int>(22));
  m.emplace(1, std::make_unique<int>(11));
  int* stable = m.find(2)->second.get();
  m.emplace(0, std::make_unique<int>(0));  // shifts entries right
  EXPECT_EQ(m.find(2)->second.get(), stable);
  EXPECT_EQ(*m.at(1), 11);
  m.erase(1);
  EXPECT_EQ(*m.at(2), 22);
}

}  // namespace
}  // namespace ssps
