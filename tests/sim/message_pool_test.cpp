// Tests for the slab/arena MessagePool (src/sim/message_pool.hpp):
// recycling (including reclamation of messages queued to crashed nodes),
// deterministic handle order under replay, and a scrambled-start run at
// n = 256 that the CI sanitizer job executes under ASan/UBSan.
#include "sim/message_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "oracle/scramble.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/topics.hpp"
#include "sim/network.hpp"

namespace ssps::sim {
namespace {

struct Payload final : MsgBase<Payload> {
  std::string body;
  explicit Payload(std::string b) : body(std::move(b)) {}
  std::string_view name() const override { return "Payload"; }
  std::size_t wire_size() const override { return 8 + body.size(); }
};

struct Tiny final : MsgBase<Tiny> {
  int value = 0;
  explicit Tiny(int v) : value(v) {}
  std::string_view name() const override { return "Tiny"; }
};

struct Sink final : Node {
  void handle(PooledMsg) override {}
  void timeout() override {}
};

TEST(MessagePool, TypeIdsAreDistinctAndStamped) {
  MessagePool pool;
  auto a = pool.make<Payload>("x");
  auto b = pool.make<Tiny>(7);
  EXPECT_NE(a->type_id(), 0u);
  EXPECT_NE(b->type_id(), 0u);
  EXPECT_NE(a->type_id(), b->type_id());
  EXPECT_EQ(a->type_id(), msg_type_id<Payload>());
  // Stack-constructed messages carry the tag too.
  const Tiny on_stack(1);
  EXPECT_EQ(on_stack.type_id(), msg_type_id<Tiny>());
  EXPECT_EQ(msg_cast<Tiny>(*a.get()), nullptr);
  EXPECT_NE(msg_cast<Payload>(*a.get()), nullptr);
}

TEST(MessagePool, SlotsAreRecycledLifo) {
  MessagePool pool;
  MsgHandle first;
  {
    auto m = pool.make<Tiny>(1);
    first = m.handle();
  }  // destroyed -> slot back on the freelist
  EXPECT_EQ(pool.live(), 0u);
  auto m2 = pool.make<Tiny>(2);
  EXPECT_EQ(m2.handle(), first);  // LIFO reuse of the freed slot
  EXPECT_EQ(pool.total_allocated(), 2u);
  EXPECT_EQ(pool.slot_count(), 1u);  // one physical slot ever created
}

TEST(MessagePool, DestructorsRunOnRecycle) {
  // A Payload owns a heap string; destroying the handle must release it
  // (ASan would flag the leak in the sanitizer job otherwise).
  MessagePool pool;
  for (int i = 0; i < 100; ++i) {
    auto m = pool.make<Payload>(std::string(1000, 'x'));
    EXPECT_EQ(pool.live(), 1u);
  }
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_LE(pool.slot_count(), 1u);
}

TEST(MessagePool, CrashReclaimsQueuedMessages) {
  // Messages sitting in a crashed node's channel are recycled, not
  // leaked: the pool's live count drops back and the slots are reused by
  // later traffic without growing the arena.
  Network net(3);
  const NodeId a = net.spawn<Sink>();
  const NodeId b = net.spawn<Sink>();
  for (int i = 0; i < 50; ++i) net.emit<Payload>(a, "to-a-" + std::to_string(i));
  for (int i = 0; i < 5; ++i) net.emit<Tiny>(b, i);
  EXPECT_EQ(net.pool().live(), 55u);
  const std::uint64_t slots_before = net.pool().slot_count();
  net.crash(a);
  EXPECT_EQ(net.pool().live(), 5u);  // a's 50 pending messages reclaimed
  // Sends to the dead node are swallowed and recycled immediately.
  net.emit<Payload>(a, "late");
  EXPECT_EQ(net.pool().live(), 5u);
  // New traffic reuses the reclaimed slots: the arena does not grow.
  for (int i = 0; i < 50; ++i) net.emit<Payload>(b, "to-b-" + std::to_string(i));
  EXPECT_EQ(net.pool().slot_count(), slots_before);
  net.run_round();
  EXPECT_EQ(net.pool().live(), 0u);
}

TEST(MessagePool, OversizeMessagesPoolAndRecycle) {
  struct Huge final : MsgBase<Huge> {
    std::array<std::uint64_t, 200> blob{};  // > largest size class
    std::string_view name() const override { return "Huge"; }
  };
  MessagePool pool;
  MsgHandle h;
  {
    auto m = pool.make<Huge>();
    h = m.handle();
  }
  auto m2 = pool.make<Huge>();
  EXPECT_EQ(m2.handle(), h);  // oversize blocks are recycled too
}

struct HandleRecorder final : Node {
  std::vector<std::uint32_t>* out = nullptr;
  NodeId peer;
  void handle(PooledMsg m) override {
    out->push_back(m.handle().bits);  // the pooled address, as delivered
    if (const auto* t = msg_cast<Tiny>(*m)) {
      if (t->value > 0) net().emit<Tiny>(peer, t->value - 1);
      if (t->value % 3 == 0) net().emit<Payload>(peer, "p" + std::to_string(t->value));
    }
  }
  void timeout() override {}
};

TEST(MessagePool, TeardownReleasesNestedOwnershipOnce) {
  // A live TopicEnvelope owns its inner message via a PooledMsg; tearing
  // the pool down must release the inner exactly once (the envelope's
  // destructor does it), never via the raw slot sweep as well. The ASan
  // job turns a regression here into a hard double-free report.
  auto pool = std::make_unique<MessagePool>();
  {
    auto inner = pool->make<Payload>(std::string(64, 'n'));
    auto env = pool->make<pubsub::TopicEnvelope>(1, std::move(inner));
    EXPECT_EQ(pool->live(), 2u);
    env.release();  // still live inside the pool at teardown
  }
  pool.reset();
}

TEST(MessagePool, HandleOrderIsDeterministicUnderReplay) {
  // Two identical runs must observe bit-identical handle sequences at
  // delivery: the arena hands out fresh slots sequentially and reuses
  // freed slots LIFO, so every pooled address is a pure function of the
  // (seed, call sequence) — the replay property the scenario engine's
  // bit-identical reports rest on.
  auto run = [](std::uint64_t seed) {
    std::vector<std::uint32_t> handles;
    Network net(seed);
    const NodeId a = net.spawn<HandleRecorder>();
    const NodeId b = net.spawn<HandleRecorder>();
    net.node_as<HandleRecorder>(a).out = &handles;
    net.node_as<HandleRecorder>(a).peer = b;
    net.node_as<HandleRecorder>(b).out = &handles;
    net.node_as<HandleRecorder>(b).peer = a;
    for (int i = 0; i < 8; ++i) net.emit<Tiny>(i % 2 == 0 ? a : b, 20 + i);
    net.run_rounds(30);
    return handles;
  };
  const auto first = run(11);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(11));
}

TEST(MessagePool, ScrambledStartAtN256IsCleanAndConverges) {
  // The arbitrary-state injector exercises every message type, enveloped
  // junk, chaos databases and channel garbage. Run it at n = 256 and
  // re-converge; the CI sanitizer job runs this under ASan/UBSan, which
  // certifies that pooled slot recycling never leaks or double-frees.
  pubsub::PubSubSystem sys(core::SkipRingSystem::Options{.seed = 99});
  sys.add_pubsub_subscribers(256);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());

  oracle::ScrambleOptions options;
  options.seed = 1234;
  options.junk_messages = 512;
  oracle::ArbitraryStateInjector injector(options);
  injector.scramble(sys);

  // Probe sparsely: the full legitimacy check is O(n log n), so checking
  // every round would dominate this test's runtime at n = 256.
  bool recovered = false;
  for (int budget = 0; budget < 6000 && !recovered; budget += 16) {
    sys.net().run_rounds(16);
    recovered = sys.topology_legit() && sys.publications_converged();
  }
  ASSERT_TRUE(recovered) << sys.legitimacy_violation();
  // Quiescence: every pooled message still alive is accounted for in
  // channels (no lost handles).
  EXPECT_EQ(sys.net().pool().live(), sys.net().pending_messages());
}

}  // namespace
}  // namespace ssps::sim
