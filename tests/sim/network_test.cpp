// Tests for the simulation substrate: channels, schedulers, fairness,
// crash semantics, determinism, connectivity analysis (§1.1 model).
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ssps::sim {
namespace {

struct Ping final : MsgBase<Ping> {
  int payload = 0;
  NodeId ref = NodeId::null();
  explicit Ping(int p, NodeId r = NodeId::null()) : payload(p), ref(r) {}
  std::string_view name() const override { return "Ping"; }
  void collect_refs(std::vector<NodeId>& out) const override {
    if (ref) out.push_back(ref);
  }
};

/// Records deliveries and timeouts; optionally echoes to a peer.
class Probe final : public Node {
 public:
  void handle(PooledMsg msg) override {
    auto* ping = msg_cast<Ping>(*msg);
    ASSERT_NE(ping, nullptr);
    received.push_back(ping->payload);
    if (echo_to) net().emit<Ping>(echo_to, ping->payload + 1000);
  }
  void timeout() override { ++timeouts; }
  void collect_refs(std::vector<NodeId>& out) const override {
    if (neighbor) out.push_back(neighbor);
  }

  std::vector<int> received;
  int timeouts = 0;
  NodeId echo_to = NodeId::null();
  NodeId neighbor = NodeId::null();
};

TEST(Network, SpawnAssignsDistinctIds) {
  Network net(1);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  EXPECT_NE(a, b);
  EXPECT_TRUE(net.alive(a));
  EXPECT_TRUE(net.alive(b));
  EXPECT_EQ(net.alive_count(), 2u);
}

TEST(Network, RoundDeliversAllPendingMessages) {
  Network net(2);
  const NodeId a = net.spawn<Probe>();
  for (int i = 0; i < 5; ++i) net.emit<Ping>(a, i);
  EXPECT_EQ(net.pending_for(a), 5u);
  net.run_round();
  EXPECT_EQ(net.pending_for(a), 0u);
  EXPECT_EQ(net.node_as<Probe>(a).received.size(), 5u);
}

TEST(Network, MessagesSentDuringARoundArriveNextRound) {
  Network net(3);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  net.node_as<Probe>(a).echo_to = b;
  net.emit<Ping>(a, 1);
  net.run_round();
  EXPECT_TRUE(net.node_as<Probe>(b).received.empty());  // echo still queued
  net.run_round();
  ASSERT_EQ(net.node_as<Probe>(b).received.size(), 1u);
  EXPECT_EQ(net.node_as<Probe>(b).received[0], 1001);
}

TEST(Network, EveryNodeTimesOutOncePerRound) {
  Network net(4);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 7; ++i) nodes.push_back(net.spawn<Probe>());
  net.run_rounds(3);
  for (NodeId id : nodes) EXPECT_EQ(net.node_as<Probe>(id).timeouts, 3);
}

TEST(Network, DeliveryOrderIsNotFifo) {
  // Non-FIFO channels: across many seeds, a 10-message batch must arrive
  // in a non-monotone order at least once (probability of failure
  // ~ (1/10!)^10 ≈ 0).
  bool reordered = false;
  for (std::uint64_t seed = 0; seed < 10 && !reordered; ++seed) {
    Network net(seed);
    const NodeId a = net.spawn<Probe>();
    for (int i = 0; i < 10; ++i) net.emit<Ping>(a, i);
    net.run_round();
    const auto& got = net.node_as<Probe>(a).received;
    reordered = !std::is_sorted(got.begin(), got.end());
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Network net(seed);
    const NodeId a = net.spawn<Probe>();
    const NodeId b = net.spawn<Probe>();
    net.node_as<Probe>(a).echo_to = b;
    for (int i = 0; i < 20; ++i) net.emit<Ping>(a, i);
    net.run_rounds(3);
    return net.node_as<Probe>(b).received;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Network, CrashSwallowsPendingAndFutureMessages) {
  Network net(5);
  const NodeId a = net.spawn<Probe>();
  net.emit<Ping>(a, 1);
  net.crash(a);
  EXPECT_FALSE(net.alive(a));
  EXPECT_EQ(net.pending_messages(), 0u);
  net.emit<Ping>(a, 2);  // must not throw, must vanish
  EXPECT_EQ(net.pending_messages(), 0u);
  net.run_round();  // and rounds still work
}

TEST(Network, CrashRoundIsRecorded) {
  Network net(6);
  const NodeId a = net.spawn<Probe>();
  net.run_rounds(4);
  net.crash(a);
  ASSERT_TRUE(net.crash_round(a).has_value());
  EXPECT_EQ(*net.crash_round(a), 4u);
  EXPECT_FALSE(net.crash_round(NodeId{999}).has_value());
}

TEST(Network, AsyncStepsDeliverEverythingEventually) {
  Network net(7);
  const NodeId a = net.spawn<Probe>();
  for (int i = 0; i < 50; ++i) net.emit<Ping>(a, i);
  net.run_steps(5000);
  EXPECT_EQ(net.node_as<Probe>(a).received.size(), 50u);
}

TEST(Network, AsyncFairnessBoundsMessageAge) {
  Network net(8);
  net.async_config().max_message_age = 16;
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  (void)b;
  net.emit<Ping>(a, 1);
  // Within max_message_age + a few steps the message must arrive, no
  // matter how the scheduler dices.
  net.run_steps(20);
  EXPECT_EQ(net.node_as<Probe>(a).received.size(), 1u);
}

TEST(Network, AsyncFairnessBoundsTimeoutGap) {
  Network net(9);
  net.async_config().max_timeout_gap = 8;
  const NodeId a = net.spawn<Probe>();
  // Keep the scheduler busy with messages to tempt it away from timeouts.
  const NodeId sinkhole = net.spawn<Probe>();
  for (int i = 0; i < 100; ++i) net.emit<Ping>(sinkhole, i);
  net.run_steps(100);
  EXPECT_GE(net.node_as<Probe>(a).timeouts, 5);
}

TEST(Network, RunUntilStopsEarly) {
  Network net(10);
  const NodeId a = net.spawn<Probe>();
  const auto rounds =
      net.run_until([&] { return net.node_as<Probe>(a).timeouts >= 3; }, 100);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(*rounds, 3u);
}

TEST(Network, RunUntilReportsFailure) {
  Network net(11);
  net.spawn<Probe>();
  EXPECT_FALSE(net.run_until([] { return false; }, 5).has_value());
}

TEST(Network, RunUntilSkipsPredicateOnQuiescentRounds) {
  // A fully crashed population executes no action, so state cannot change:
  // the wait must evaluate the predicate once, not once per round.
  Network net(19);
  const NodeId a = net.spawn<Probe>();
  net.crash(a);
  int evaluations = 0;
  EXPECT_FALSE(net.run_until(
                      [&] {
                        ++evaluations;
                        return false;
                      },
                      50)
                   .has_value());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(net.round(), Round{50});  // the rounds themselves still ran
}

TEST(Network, RunUntilReevaluatesWhileAnyActionRuns) {
  // Any alive node fires a Timeout each round, so nothing is skipped.
  Network net(20);
  net.spawn<Probe>();
  int evaluations = 0;
  EXPECT_FALSE(net.run_until(
                      [&] {
                        ++evaluations;
                        return false;
                      },
                      5)
                   .has_value());
  EXPECT_EQ(evaluations, 6);  // before each of 5 rounds + the final check
}

TEST(Network, WeaklyConnectedViaExplicitEdges) {
  Network net(12);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  EXPECT_FALSE(net.weakly_connected());
  net.node_as<Probe>(a).neighbor = b;  // a -> b suffices for weak connectivity
  EXPECT_TRUE(net.weakly_connected());
}

TEST(Network, WeaklyConnectedViaImplicitEdges) {
  Network net(13);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  net.inject(a, net.pool().make<Ping>(0, b));  // reference in channel
  EXPECT_TRUE(net.weakly_connected());
}

TEST(Network, WeaklyConnectedViaAnchor) {
  Network net(14);
  net.spawn<Probe>();
  net.spawn<Probe>();
  const NodeId sup = net.spawn<Probe>();
  // The supervisor star (read-only knowledge) connects everything.
  EXPECT_TRUE(net.weakly_connected(sup));
}

TEST(Network, InjectBypassesMetrics) {
  Network net(15);
  const NodeId a = net.spawn<Probe>();
  net.inject(a, net.pool().make<Ping>(1));
  EXPECT_EQ(net.metrics().total_sent(), 0u);
  EXPECT_EQ(net.pending_for(a), 1u);
}

}  // namespace
}  // namespace ssps::sim
