// Event-driven timed network: link model, per-message latency, seeded
// loss/duplication/reordering, partitions, and the round-equivalence of
// the default profile (sim/link.hpp, Network::timed_interval).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/link.hpp"
#include "sim/network.hpp"

namespace ssps::sim {
namespace {

struct Ping final : MsgBase<Ping> {
  int payload = 0;
  explicit Ping(int p) : payload(p) {}
  std::string_view name() const override { return "Ping"; }
};

/// Records deliveries; optionally echoes to a peer (+1000 per hop).
class Probe final : public Node {
 public:
  void handle(PooledMsg msg) override {
    auto* ping = msg_cast<Ping>(*msg);
    ASSERT_NE(ping, nullptr);
    received.push_back(ping->payload);
    if (echo_to) net().emit<Ping>(echo_to, ping->payload + 1000);
  }
  void timeout() override { ++timeouts; }

  std::vector<int> received;
  int timeouts = 0;
  NodeId echo_to = NodeId::null();
};

// ---------------------------------------------------------------------------
// Link model
// ---------------------------------------------------------------------------

TEST(LatencySpec, ConstantDrawsNothingFromTheRng) {
  // The round-equivalence argument needs the default profile's link stream
  // to stay untouched: a constant latency must not consume a draw.
  Rng used(7);
  Rng untouched(7);
  LatencySpec constant;  // 1.0 s
  EXPECT_EQ(constant.sample_ticks(used), kTicksPerInterval);
  EXPECT_EQ(used.next(), untouched.next());
}

TEST(LatencySpec, SamplesRespectTheCausalityFloorAndCeiling) {
  Rng rng(11);
  LatencySpec zero{LatencySpec::Dist::kConstant, 0.0, 0.0};
  EXPECT_EQ(zero.sample_ticks(rng), 1u);  // never same-instant delivery
  LatencySpec negative{LatencySpec::Dist::kConstant, -3.0, 0.0};
  EXPECT_EQ(negative.sample_ticks(rng), 1u);
  LatencySpec huge{LatencySpec::Dist::kConstant, 1e9, 0.0};
  EXPECT_EQ(huge.sample_ticks(rng), 60u * kTicksPerInterval);
  LatencySpec uniform{LatencySpec::Dist::kUniform, 0.1, 0.5};
  LatencySpec lognormal{LatencySpec::Dist::kLognormal, -2.5, 0.5};
  for (int i = 0; i < 1000; ++i) {
    const Step u = uniform.sample_ticks(rng);
    EXPECT_GE(u, 100u);
    EXPECT_LE(u, 500u);
    const Step l = lognormal.sample_ticks(rng);
    EXPECT_GE(l, 1u);
    EXPECT_LE(l, 60u * kTicksPerInterval);
  }
}

TEST(TimedConfig, ZonesPartitionWindowsAndDirections) {
  TimedConfig cfg;
  cfg.zones = 3;
  // Node ids map round-robin: 1 -> zone 0, 2 -> zone 1, 3 -> zone 2, ...
  EXPECT_EQ(cfg.zone_of(NodeId{1}), 0u);
  EXPECT_EQ(cfg.zone_of(NodeId{2}), 1u);
  EXPECT_EQ(cfg.zone_of(NodeId{4}), 0u);

  PartitionWindow w;
  w.from_s = 2;
  w.to_s = 5;
  w.zone_a = 0;
  w.zone_b = 1;
  w.bidirectional = false;
  cfg.partitions.push_back(w);

  const NodeId a{1};  // zone 0
  const NodeId b{2};  // zone 1
  const NodeId c{3};  // zone 2
  // Window boundaries: [2 s, 5 s) on the send tick.
  EXPECT_FALSE(cfg.partitioned(a, b, 2 * kTicksPerInterval - 1));
  EXPECT_TRUE(cfg.partitioned(a, b, 2 * kTicksPerInterval));
  EXPECT_TRUE(cfg.partitioned(a, b, 5 * kTicksPerInterval - 1));
  EXPECT_FALSE(cfg.partitioned(a, b, 5 * kTicksPerInterval));
  // Directional cut: b -> a still flows; unrelated zones untouched.
  EXPECT_FALSE(cfg.partitioned(b, a, 3 * kTicksPerInterval));
  EXPECT_FALSE(cfg.partitioned(a, c, 3 * kTicksPerInterval));
  cfg.partitions[0].bidirectional = true;
  EXPECT_TRUE(cfg.partitioned(b, a, 3 * kTicksPerInterval));
}

// ---------------------------------------------------------------------------
// Timed engine
// ---------------------------------------------------------------------------

TEST(TimedNetwork, DefaultProfileMatchesRoundDeliveries) {
  // Same seed, same sends: the timed engine under the default profile must
  // reproduce the round scheduler's delivery sequence exactly.
  auto run = [](bool timed) {
    Network net(91);
    const NodeId a = net.spawn<Probe>();
    const NodeId b = net.spawn<Probe>();
    net.node_as<Probe>(a).echo_to = b;
    net.node_as<Probe>(b).echo_to = a;
    if (timed) net.enable_timed(TimedConfig{});
    for (int i = 0; i < 8; ++i) net.emit<Ping>(a, i);
    net.run_rounds(6);
    return std::pair{net.node_as<Probe>(a).received, net.node_as<Probe>(b).received};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TimedNetwork, VirtualClockTicksOneSecondPerInterval) {
  Network net(5);
  net.spawn<Probe>();
  net.enable_timed(TimedConfig{});
  EXPECT_EQ(net.virtual_now_ticks(), 0u);
  net.run_rounds(3);
  EXPECT_EQ(net.virtual_now_ticks(), 3 * kTicksPerInterval);
  EXPECT_EQ(net.round(), 3u);
}

TEST(TimedNetwork, LossDropsNodeTrafficButSparesHarnessSends) {
  TimedConfig cfg;
  cfg.local.loss = 1.0;
  Network net(6);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  net.node_as<Probe>(a).echo_to = b;
  net.enable_timed(cfg);
  // Harness sends are fault-exempt (the experiment's control plane), so
  // the ping reaches a; a's echo is node traffic and is eaten.
  net.emit<Ping>(a, 1);
  net.run_rounds(3);
  ASSERT_EQ(net.node_as<Probe>(a).received.size(), 1u);
  EXPECT_TRUE(net.node_as<Probe>(b).received.empty());
  EXPECT_EQ(net.timed_dropped(), 1u);
}

TEST(TimedNetwork, DuplicationDeliversACloneOnce) {
  TimedConfig cfg;
  cfg.local.duplicate = 1.0;
  Network net(7);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  net.node_as<Probe>(a).echo_to = b;
  net.enable_timed(cfg);
  net.emit<Ping>(a, 1);
  net.run_rounds(3);
  // Original + exactly one clone (clones are not themselves re-duplicated).
  EXPECT_EQ(net.node_as<Probe>(b).received, (std::vector<int>{1001, 1001}));
  EXPECT_EQ(net.timed_duplicated(), 1u);
}

TEST(TimedNetwork, PartitionCutsCrossZoneTrafficUntilHealed) {
  TimedConfig cfg;
  cfg.zones = 2;
  PartitionWindow w;
  w.from_s = 0;
  w.to_s = 3;
  w.zone_a = 0;
  w.zone_b = 1;
  cfg.partitions.push_back(w);
  Network net(8);
  const NodeId a = net.spawn<Probe>();  // id 1 -> zone 0
  const NodeId b = net.spawn<Probe>();  // id 2 -> zone 1
  net.node_as<Probe>(a).echo_to = b;
  net.enable_timed(cfg);

  net.emit<Ping>(a, 1);  // harness sends are partition-exempt too
  net.run_rounds(3);     // a's echo at tick 1000 falls inside the cut
  EXPECT_TRUE(net.node_as<Probe>(b).received.empty());
  EXPECT_EQ(net.timed_dropped(), 1u);

  net.emit<Ping>(a, 2);  // echo now sent at tick >= 3000: healed
  net.run_rounds(3);
  EXPECT_EQ(net.node_as<Probe>(b).received, (std::vector<int>{1002}));
  EXPECT_EQ(net.timed_dropped(), 1u);
}

TEST(TimedNetwork, FaultyLinksReplayBitIdentically) {
  // Fixed seed + loss + duplication + reordering + jittery latency =>
  // identical delivery traces and identical fault counters.
  auto run = [] {
    TimedConfig cfg;
    cfg.zones = 2;
    cfg.local.latency = {LatencySpec::Dist::kUniform, 0.01, 0.4};
    cfg.remote.latency = {LatencySpec::Dist::kLognormal, -2.0, 0.8};
    for (LinkProfile* p : {&cfg.local, &cfg.remote}) {
      p->loss = 0.2;
      p->duplicate = 0.15;
      p->reorder = 0.25;
    }
    Network net(123);
    std::vector<NodeId> ids;
    for (int i = 0; i < 4; ++i) ids.push_back(net.spawn<Probe>());
    for (int i = 0; i < 4; ++i) {
      net.node_as<Probe>(ids[static_cast<std::size_t>(i)]).echo_to =
          ids[static_cast<std::size_t>((i + 1) % 4)];
    }
    net.enable_timed(cfg);
    for (int i = 0; i < 16; ++i) {
      net.emit<Ping>(ids[static_cast<std::size_t>(i % 4)], i);
    }
    net.run_rounds(12);
    std::vector<std::vector<int>> got;
    for (NodeId id : ids) got.push_back(net.node_as<Probe>(id).received);
    return std::tuple{got, net.timed_dropped(), net.timed_duplicated()};
  };
  const auto a = run();
  EXPECT_EQ(a, run());
  // The fault machinery actually engaged.
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_GT(std::get<2>(a), 0u);
}

TEST(TimedNetwork, CrashDropsQueuedTimedEvents) {
  TimedConfig cfg;
  cfg.local.latency = {LatencySpec::Dist::kConstant, 5.0, 0.0};
  Network net(9);
  const NodeId a = net.spawn<Probe>();
  const NodeId b = net.spawn<Probe>();
  net.node_as<Probe>(a).echo_to = b;
  net.enable_timed(cfg);
  net.emit<Ping>(a, 1);
  net.run_rounds(2);  // a's echo is in flight, due ~5 s out
  EXPECT_GT(net.pending_messages(), 0u);
  net.crash(b);
  EXPECT_EQ(net.pending_messages(), 0u);
  net.run_rounds(6);  // the dead letter must not resurface
  EXPECT_FALSE(net.alive(b));
}

}  // namespace
}  // namespace ssps::sim
