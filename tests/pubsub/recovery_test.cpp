// Crash-recovery from periodic snapshots (sim::Network::recover): a
// restarted subscriber restores its possibly-stale snapshot, re-enters
// the ring, and the system re-stabilizes — including when the snapshot
// is corrupted or missing entirely.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::pubsub {
namespace {

using sim::NodeId;

PubSubConfig config() {
  PubSubConfig cfg;
  cfg.flooding = false;
  return cfg;
}

/// Converged n-subscriber system with `pubs` publications and periodic
/// snapshots every 5 rounds.
struct Fixture {
  PubSubSystem sys;
  std::vector<NodeId> ids;

  explicit Fixture(std::size_t n, std::size_t pubs, std::uint64_t seed)
      : sys(core::SkipRingSystem::Options{.seed = seed, .fd_delay = 0}, config()) {
    sys.net().enable_snapshots(5);
    ids = sys.add_pubsub_subscribers(n);
    EXPECT_TRUE(sys.run_until_legit(2000).has_value());
    for (std::size_t i = 0; i < pubs; ++i) {
      sys.pubsub(ids[i % ids.size()]).add_local(
          Publication{ids[i % ids.size()], "pub" + std::to_string(i)});
    }
    EXPECT_TRUE(sys.net()
                    .run_until([&] { return sys.publications_converged(); }, 2000)
                    .has_value());
  }

  bool restabilized() {
    return sys.net()
        .run_until(
            [&] { return sys.topology_legit() && sys.publications_converged(); },
            4000)
        .has_value();
  }
};

TEST(Recovery, CrashedSubscriberRecoversFromSnapshotAndRestabilizes) {
  Fixture f(8, 6, 3);
  const NodeId victim = f.ids[2];
  f.sys.crash(victim);
  // Let the failure detector notice and the ring close over the hole —
  // the snapshot the victim will restore is now stale by construction.
  ASSERT_TRUE(f.restabilized());

  ASSERT_TRUE(f.sys.recover_pubsub_subscriber(victim));
  EXPECT_TRUE(f.sys.net().alive(victim));
  ASSERT_TRUE(f.restabilized());
  // The recovered node is a full member again: its trie re-merged to the
  // union, so distinct publications are intact everywhere.
  EXPECT_EQ(f.sys.distinct_publications(), 6u);
}

TEST(Recovery, CorruptedSnapshotFallsBackToFreshStart) {
  Fixture f(8, 6, 5);
  const NodeId victim = f.ids[4];
  f.sys.crash(victim);
  ASSERT_TRUE(f.restabilized());

  // Damage every byte of the stored snapshot. restore_state must reject
  // it (wire-grade total decoding) and report the dirty restart.
  std::vector<std::uint8_t>& snapshot = f.sys.net().mutable_snapshot(victim);
  ASSERT_FALSE(snapshot.empty());
  for (std::uint8_t& b : snapshot) b ^= 0xA5;
  EXPECT_FALSE(f.sys.recover_pubsub_subscriber(victim));

  // A dirty restart is still a restart: the node re-subscribes from
  // scratch and the system converges with it as a member.
  EXPECT_TRUE(f.sys.net().alive(victim));
  ASSERT_TRUE(f.restabilized());
  EXPECT_EQ(f.sys.distinct_publications(), 6u);
}

TEST(Recovery, MissingSnapshotStillRestarts) {
  // Crash before the first snapshot cadence tick: nothing was stored.
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 9, .fd_delay = 0}, config());
  const auto ids = sys.add_pubsub_subscribers(6);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());
  // Snapshots enabled only now: no node ever serialized state.
  sys.net().enable_snapshots(1000000);
  const NodeId victim = ids[1];
  sys.crash(victim);
  ASSERT_TRUE(sys.run_until_legit(4000).has_value());

  EXPECT_FALSE(sys.recover_pubsub_subscriber(victim));
  EXPECT_TRUE(sys.net().alive(victim));
  ASSERT_TRUE(sys.run_until_legit(4000).has_value());
}

TEST(Recovery, RecoveredNodeKeepsSnapshottedPublications) {
  Fixture f(6, 4, 11);
  const NodeId victim = f.ids[0];
  // Publications the victim held at snapshot time survive the crash
  // locally (no need to re-fetch): publish, let a snapshot happen, crash.
  f.sys.pubsub(victim).add_local(Publication{victim, "survivor"});
  ASSERT_TRUE(f.sys.net()
                  .run_until([&] { return f.sys.publications_converged(); }, 2000)
                  .has_value());
  f.sys.net().run_rounds(5);  // guarantee a snapshot after convergence
  f.sys.crash(victim);
  ASSERT_TRUE(f.restabilized());

  ASSERT_TRUE(f.sys.recover_pubsub_subscriber(victim));
  // Immediately after restore — before any sync round — the restored trie
  // already holds the snapshotted publication.
  bool found = false;
  for (const Publication& p : f.sys.pubsub(victim).trie().all()) {
    found = found || (p.origin == victim && p.payload == "survivor");
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(f.restabilized());
  EXPECT_EQ(f.sys.distinct_publications(), 5u);
}

TEST(Recovery, RepeatedCrashRecoverCyclesStayStable) {
  Fixture f(8, 5, 13);
  ssps::Rng rng(99);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const NodeId victim = f.ids[rng.pick_index(f.ids)];
    f.sys.crash(victim);
    ASSERT_TRUE(f.restabilized());
    f.sys.recover_pubsub_subscriber(victim);  // clean or dirty both fine
    ASSERT_TRUE(f.restabilized()) << "cycle " << cycle;
  }
  EXPECT_EQ(f.sys.distinct_publications(), 5u);
}

}  // namespace
}  // namespace ssps::pubsub
