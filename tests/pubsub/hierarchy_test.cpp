// Hierarchical topics (§1.3 extension): registry semantics and end-to-end
// subtree subscription over the multi-topic stack.
#include "pubsub/hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pubsub/topics.hpp"

namespace ssps::pubsub {
namespace {

TEST(TopicHierarchy, AddRegistersAncestors) {
  TopicHierarchy h;
  h.add("sports/football/cup");
  EXPECT_TRUE(h.id_of("sports").has_value());
  EXPECT_TRUE(h.id_of("sports/football").has_value());
  EXPECT_TRUE(h.id_of("sports/football/cup").has_value());
  EXPECT_EQ(h.size(), 3u);
}

TEST(TopicHierarchy, IdsAreStableAndDistinct) {
  TopicHierarchy a;
  TopicHierarchy b;
  const TopicId x = a.add("news/tech");
  const TopicId y = b.add("news/tech");
  EXPECT_EQ(x, y);  // derived from the path hash: no coordination needed
  EXPECT_NE(a.add("news"), x);
}

TEST(TopicHierarchy, PathOfInvertsIdOf) {
  TopicHierarchy h;
  const TopicId id = h.add("a/b/c");
  EXPECT_EQ(h.path_of(id), "a/b/c");
  EXPECT_FALSE(h.path_of(424242).has_value());
}

TEST(TopicHierarchy, SubtreeReturnsSelfAndDescendants) {
  TopicHierarchy h;
  h.add("sports/football/cup");
  h.add("sports/football/league");
  h.add("sports/tennis");
  h.add("sportsmanship");  // similar prefix, different topic!
  h.add("news");

  const auto ids = h.subtree("sports/football");
  EXPECT_EQ(ids.size(), 3u);  // itself + cup + league
  const auto all_sports = h.subtree("sports");
  EXPECT_EQ(all_sports.size(), 5u);  // sports, football, cup, league, tennis
  // "sportsmanship" must NOT appear under "sports".
  for (TopicId id : all_sports) {
    EXPECT_NE(h.path_of(id), "sportsmanship");
  }
}

TEST(TopicHierarchy, SubtreeOfLeafIsItself) {
  TopicHierarchy h;
  h.add("a/b");
  const auto ids = h.subtree("a/b");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(h.path_of(ids[0]), "a/b");
}

TEST(TopicHierarchy, AncestorsWalkToRoot) {
  TopicHierarchy h;
  h.add("x/y/z");
  const auto ids = h.ancestors("x/y/z");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(h.path_of(ids[0]), "x/y/z");
  EXPECT_EQ(h.path_of(ids[1]), "x/y");
  EXPECT_EQ(h.path_of(ids[2]), "x");
}

TEST(TopicHierarchy, PathsSorted) {
  TopicHierarchy h;
  h.add("b");
  h.add("a/z");
  h.add("a");
  const auto paths = h.paths();
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
  EXPECT_EQ(paths.size(), 3u);
}

TEST(TopicHierarchyEndToEnd, SubtreeSubscriptionReceivesDescendantTraffic) {
  // A reader subscribing to "sports" (the whole subtree) receives
  // publications made into "sports/football", while a "news" reader does
  // not.
  sim::Network net(5);
  const auto sup = net.spawn<MultiTopicSupervisorNode>();
  TopicHierarchy h;
  h.add("sports/football");
  h.add("news");

  const auto fan = net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup));
  const auto journalist = net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup));
  const auto reader = net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup));

  // fan subscribes to the whole sports subtree.
  for (TopicId t : h.subtree("sports")) net.node_as<MultiTopicNode>(fan).subscribe(t);
  // journalist participates in football and news.
  net.node_as<MultiTopicNode>(journalist).subscribe(*h.id_of("sports/football"));
  net.node_as<MultiTopicNode>(journalist).subscribe(*h.id_of("news"));
  // reader follows news only.
  net.node_as<MultiTopicNode>(reader).subscribe(*h.id_of("news"));

  net.run_rounds(60);
  net.node_as<MultiTopicNode>(journalist)
      .publish(*h.id_of("sports/football"), "matchday!");
  net.run_rounds(40);

  EXPECT_EQ(net.node_as<MultiTopicNode>(fan)
                .pubsub(*h.id_of("sports/football"))
                .trie()
                .size(),
            1u);
  EXPECT_FALSE(net.node_as<MultiTopicNode>(reader).subscribed(
      *h.id_of("sports/football")));
  EXPECT_EQ(net.node_as<MultiTopicNode>(reader).pubsub(*h.id_of("news")).trie().size(),
            0u);
}

TEST(TopicHierarchyEndToEnd, HierarchyComposesWithSupervisorGroup) {
  // Subtree rings can live on different supervisors; the client-side
  // resolution layer doesn't care.
  sim::Network net(8);
  const auto s1 = net.spawn<MultiTopicSupervisorNode>();
  const auto s2 = net.spawn<MultiTopicSupervisorNode>();
  SupervisorGroup group({s1, s2});
  auto resolver = [&group](TopicId t) { return group.supervisor_for(t); };
  TopicHierarchy h;
  h.add("root/a");
  h.add("root/b");
  const auto client = net.spawn<MultiTopicNode>(resolver);
  for (TopicId t : h.subtree("root")) net.node_as<MultiTopicNode>(client).subscribe(t);
  net.run_rounds(50);
  for (TopicId t : h.subtree("root")) {
    const auto* sup_node =
        &net.node_as<MultiTopicSupervisorNode>(group.supervisor_for(t));
    ASSERT_NE(sup_node->find_topic(t), nullptr);
    EXPECT_EQ(sup_node->find_topic(t)->size(), 1u);
  }
}

}  // namespace
}  // namespace ssps::pubsub
