// Algorithm 5 anti-entropy between two subscribers, driven directly
// (no network): message-level walkthrough of the Figure 2 example and the
// three CheckTrie cases, plus Theorem 23's silence property.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::pubsub {
namespace {

/// Two PubSubProtocol instances with loopback queues.
class Pair {
 public:
  Pair() {
    // Minimal overlay: u and v are mutual ring neighbors.
    u_over_.chaos_set_label(*core::Label::parse("0"));
    v_over_.chaos_set_label(*core::Label::parse("1"));
    u_over_.chaos_set_right(core::LabeledRef{*core::Label::parse("1"), kV});
    u_over_.chaos_set_ring(core::LabeledRef{*core::Label::parse("1"), kV});
    v_over_.chaos_set_left(core::LabeledRef{*core::Label::parse("0"), kU});
    v_over_.chaos_set_ring(core::LabeledRef{*core::Label::parse("0"), kU});
  }

  /// Delivers every queued pub-sub message until quiescence; returns the
  /// number of messages exchanged (overlay messages are dropped).
  std::size_t pump(std::size_t limit = 10000) {
    std::size_t delivered = 0;
    while (!queue_.empty()) {
      auto [to, msg] = std::move(queue_.front());
      queue_.pop_front();
      PubSubProtocol& target = (to == kU) ? *u_ : *v_;
      if (target.handle(*msg)) ++delivered;
      if (--limit == 0) ADD_FAILURE() << "sync did not quiesce";
    }
    return delivered;
  }

  /// Counts queued messages by action label.
  std::size_t queued(std::string_view name) const {
    std::size_t c = 0;
    for (const auto& [to, msg] : queue_) {
      if (msg->name() == name) ++c;
    }
    return c;
  }

  static constexpr sim::NodeId kU{1};
  static constexpr sim::NodeId kV{2};

  struct QueueSink final : core::MessageSink {
    explicit QueueSink(std::deque<std::pair<sim::NodeId, sim::PooledMsg>>& q)
        : q_(&q) {}
    void send(sim::NodeId to, sim::PooledMsg msg) override {
      q_->emplace_back(to, std::move(msg));
    }
    sim::MessagePool& pool() override { return pool_; }
    sim::MessagePool pool_;
    std::deque<std::pair<sim::NodeId, sim::PooledMsg>>* q_;
  };

  // Declaration order matters: queue_ holds messages living in
  // sink_.pool_, and members destruct in reverse order, so the queue
  // (declared after the sink) drains before the pool dies. The sink only
  // stores the queue's address at construction, never dereferences it.
  QueueSink sink_{queue_};
  std::deque<std::pair<sim::NodeId, sim::PooledMsg>> queue_;
  ssps::Rng rng_u_{1};
  ssps::Rng rng_v_{2};
  core::SubscriberProtocol u_over_{kU, sim::NodeId{99}, sink_, rng_u_};
  core::SubscriberProtocol v_over_{kV, sim::NodeId{99}, sink_, rng_v_};
  PubSubConfig cfg_{.key_bits = 64, .flooding = false, .anti_entropy = true};
  std::unique_ptr<PubSubProtocol> u_ =
      std::make_unique<PubSubProtocol>(u_over_, sink_, rng_u_, cfg_);
  std::unique_ptr<PubSubProtocol> v_ =
      std::make_unique<PubSubProtocol>(v_over_, sink_, rng_v_, cfg_);
};

TEST(Sync, IdenticalTriesStaySilent) {
  // Theorem 23 at message level: equal root hashes produce no response.
  Pair p;
  const Publication a{sim::NodeId{5}, "same"};
  p.u_->add_local(a);
  p.v_->add_local(a);
  p.u_->timeout();  // sends CheckTrie(u, root) to v
  EXPECT_EQ(p.queued("CheckTrie"), 1u);
  p.pump();
  EXPECT_TRUE(p.queue_.empty());  // v answered with silence
}

TEST(Sync, EmptySenderStaysQuiet) {
  Pair p;
  p.u_->timeout();
  EXPECT_TRUE(p.queue_.empty());  // nothing to offer, no message at all
}

TEST(Sync, OneMissingPublicationFlowsAcross) {
  Pair p;
  const Publication a{sim::NodeId{5}, "common-1"};
  const Publication b{sim::NodeId{6}, "common-2"};
  const Publication extra{sim::NodeId{7}, "only-at-u"};
  for (const auto& pub : {a, b}) {
    p.u_->add_local(pub);
    p.v_->add_local(pub);
  }
  p.u_->add_local(extra);
  p.u_->timeout();
  p.pump();
  EXPECT_TRUE(p.u_->trie().equal_contents(p.v_->trie()));
  EXPECT_EQ(p.v_->trie().size(), 3u);
}

TEST(Sync, ConvergesInBothDirectionsSimultaneously) {
  Pair p;
  for (int i = 0; i < 12; ++i) {
    p.u_->add_local(Publication{sim::NodeId{1}, "u" + std::to_string(i)});
    p.v_->add_local(Publication{sim::NodeId{2}, "v" + std::to_string(i)});
  }
  // A few timeout exchanges merge both sides completely.
  for (int round = 0; round < 40 && !p.u_->trie().equal_contents(p.v_->trie());
       ++round) {
    p.u_->timeout();
    p.v_->timeout();
    p.pump();
  }
  EXPECT_TRUE(p.u_->trie().equal_contents(p.v_->trie()));
  EXPECT_EQ(p.u_->trie().size(), 24u);
}

TEST(Sync, FigureTwoScenarioDeliversP4) {
  // The paper's worked example: u has P1..P4, v has P1..P3. When v starts
  // the exchange, u spots the divergence and v ends up requesting exactly
  // the publications prefixed 101 (= P4).
  Pair p;
  // Model the figure's 3-bit keyspace inside the 64-bit one by brute-force
  // finding payloads whose keys start with the wanted 3 bits.
  auto with_prefix = [&](const std::string& bits) {
    for (std::uint64_t salt = 0;; ++salt) {
      Publication cand{sim::NodeId{3}, "fig" + std::to_string(salt)};
      if (p.u_->trie().key_of(cand).prefix(3).to_string() == bits) return cand;
    }
  };
  const Publication p1 = with_prefix("000");
  const Publication p2 = with_prefix("010");
  const Publication p3 = with_prefix("100");
  const Publication p4 = with_prefix("101");
  for (const auto& pub : {p1, p2, p3, p4}) p.u_->add_local(pub);
  for (const auto& pub : {p1, p2, p3}) p.v_->add_local(pub);

  // v initiates (the paper: "it is important at which subscriber the
  // initial CheckTrie request is started" — v-initiated finds P4).
  p.v_->timeout();
  p.pump();
  EXPECT_TRUE(p.u_->trie().equal_contents(p.v_->trie()));
  EXPECT_TRUE(p.v_->trie().contains(p4));
}

TEST(Sync, InitiationDirectionMattersAsThePaperNotes) {
  // §4.2: "the example shows that it is important at which subscriber the
  // initial CheckTrie request is started." When u holds a superset whose
  // extra key hides behind an inner splice, a u-initiated exchange can end
  // in silence (every subtrie v probes has an identical counterpart in u);
  // the v-initiated exchange finds the splice and transfers the key. The
  // protocol converges because both sides keep initiating (PublishTimeout).
  Pair p;
  for (int i = 0; i < 8; ++i) {
    const Publication common{sim::NodeId{1}, "c" + std::to_string(i)};
    p.u_->add_local(common);
    p.v_->add_local(common);
  }
  p.u_->add_local(Publication{sim::NodeId{9}, "novel"});
  p.u_->timeout();
  p.pump();
  // u-initiated alone may or may not discover the difference...
  p.v_->timeout();
  p.pump();
  // ...but after the reverse exchange the tries must agree (Claim 21).
  EXPECT_TRUE(p.u_->trie().equal_contents(p.v_->trie()));
  EXPECT_EQ(p.v_->trie().size(), 9u);
}

TEST(Sync, EmptyReceiverRequestsEverything) {
  Pair p;
  for (int i = 0; i < 5; ++i) p.u_->add_local(Publication{sim::NodeId{1}, std::to_string(i)});
  p.u_->timeout();
  p.pump();
  EXPECT_EQ(p.v_->trie().size(), 5u);
}

TEST(Sync, CorruptedCheckTrieTuplesCannotPoison) {
  // Garbage tuples (random labels/hashes) must at worst trigger harmless
  // requests — never corrupt tries or crash.
  Pair p;
  p.u_->add_local(Publication{sim::NodeId{1}, "real"});
  std::vector<NodeSummary> junk;
  junk.push_back(NodeSummary{BitString::from_string("10101"), Digest{}});
  junk.push_back(NodeSummary{BitString{}, Digest{{1, 2, 3}}});
  p.u_->handle(msg::CheckTrie(Pair::kV, junk));
  p.pump();
  EXPECT_EQ(p.u_->trie().size(), 1u);
  EXPECT_EQ(p.u_->trie().check_invariants(), "");
}

TEST(Sync, PublishNewInsertsWithoutForwardingWhenKnown) {
  Pair p;
  const Publication a{sim::NodeId{5}, "flooded"};
  p.u_->add_local(a);
  p.u_->handle(msg::PublishNew(a));  // duplicate: dropped silently
  EXPECT_TRUE(p.queue_.empty());
  EXPECT_EQ(p.u_->trie().size(), 1u);
}

TEST(Sync, MessageCostScalesWithDivergenceNotTrieSize) {
  // With 200 shared publications and 1 difference, the exchange costs a
  // handful of messages — not O(|P|).
  Pair p;
  for (int i = 0; i < 200; ++i) {
    const Publication common{sim::NodeId{1}, "bulk" + std::to_string(i)};
    p.u_->add_local(common);
    p.v_->add_local(common);
  }
  p.u_->add_local(Publication{sim::NodeId{2}, "the-diff"});
  std::size_t exchanged = 0;
  for (int round = 0; round < 10 && !p.u_->trie().equal_contents(p.v_->trie());
       ++round) {
    p.u_->timeout();
    p.v_->timeout();
    exchanged += p.pump();
  }
  EXPECT_TRUE(p.u_->trie().equal_contents(p.v_->trie()));
  // Depth of a 200-key random trie is ~log2(200) + a few; every level
  // costs at most 2 messages each way, per initiation direction.
  EXPECT_LE(exchanged, 80u);
}

}  // namespace
}  // namespace ssps::pubsub
