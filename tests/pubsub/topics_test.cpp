// Multi-topic layer (§4): per-topic protocol instances, isolation between
// topics, unsubscribe lifecycle, and multi-supervisor deployments.
#include <gtest/gtest.h>

#include "pubsub/topics.hpp"

namespace ssps::pubsub {
namespace {

class TopicsTest : public ::testing::Test {
 protected:
  sim::Network net{42};
  sim::NodeId sup = net.spawn<MultiTopicSupervisorNode>();
  std::vector<sim::NodeId> clients;

  MultiTopicNode& client(std::size_t i) {
    return net.node_as<MultiTopicNode>(clients[i]);
  }

  void spawn_clients(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      clients.push_back(net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup)));
    }
  }

  bool topic_converged(TopicId topic, std::size_t expected_pubs) {
    for (sim::NodeId id : clients) {
      auto& c = net.node_as<MultiTopicNode>(id);
      if (!c.subscribed(topic)) continue;
      if (c.pubsub(topic).trie().size() != expected_pubs) return false;
    }
    return true;
  }
};

TEST_F(TopicsTest, SubscribersJoinPerTopic) {
  spawn_clients(6);
  for (std::size_t i = 0; i < 6; ++i) client(i).subscribe(1);
  net.run_rounds(40);
  auto* sup_node = &net.node_as<MultiTopicSupervisorNode>(sup);
  ASSERT_NE(sup_node->find_topic(1), nullptr);
  EXPECT_EQ(sup_node->find_topic(1)->size(), 6u);
  EXPECT_TRUE(sup_node->find_topic(1)->database_consistent());
}

TEST_F(TopicsTest, TopicsAreIsolated) {
  spawn_clients(8);
  for (std::size_t i = 0; i < 8; ++i) client(i).subscribe(1);
  for (std::size_t i = 0; i < 4; ++i) client(i).subscribe(2);
  net.run_rounds(60);
  client(0).publish(2, "only-for-topic-2");
  net.run_rounds(40);
  EXPECT_TRUE(topic_converged(2, 1));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(client(i).pubsub(1).trie().size(), 0u) << "leak into topic 1";
  }
}

TEST_F(TopicsTest, PublishReachesAllTopicSubscribers) {
  spawn_clients(10);
  for (std::size_t i = 0; i < 10; ++i) client(i).subscribe(7);
  net.run_rounds(60);
  client(3).publish(7, "hello");
  client(5).publish(7, "world");
  net.run_rounds(60);
  EXPECT_TRUE(topic_converged(7, 2));
}

TEST_F(TopicsTest, UnsubscribeRemovesInstanceAndLabels) {
  spawn_clients(5);
  for (std::size_t i = 0; i < 5; ++i) client(i).subscribe(3);
  net.run_rounds(50);
  client(2).unsubscribe(3);
  net.run_rounds(60);
  EXPECT_FALSE(client(2).subscribed(3));
  auto* topic = net.node_as<MultiTopicSupervisorNode>(sup).find_topic(3);
  ASSERT_NE(topic, nullptr);
  EXPECT_EQ(topic->size(), 4u);
  EXPECT_TRUE(topic->database_consistent());
}

TEST_F(TopicsTest, StaleTrafficAfterUnsubscribeIsAnswredWithRemoval) {
  spawn_clients(4);
  for (std::size_t i = 0; i < 4; ++i) client(i).subscribe(1);
  net.run_rounds(50);
  client(0).unsubscribe(1);
  net.run_rounds(80);
  // Nobody references the departed client in topic 1 anymore.
  for (std::size_t i = 1; i < 4; ++i) {
    std::vector<sim::NodeId> refs;
    client(i).overlay(1).collect_refs(refs);
    for (sim::NodeId r : refs) EXPECT_NE(r, clients[0]);
  }
}

TEST_F(TopicsTest, NodeCanRejoinATopicAfterLeaving) {
  spawn_clients(4);
  for (std::size_t i = 0; i < 4; ++i) client(i).subscribe(1);
  net.run_rounds(50);
  client(1).publish(1, "before-leave");
  net.run_rounds(30);
  client(0).unsubscribe(1);
  net.run_rounds(60);
  ASSERT_FALSE(client(0).subscribed(1));
  client(0).subscribe(1);  // fresh instance, new label, history re-synced
  net.run_rounds(80);
  ASSERT_TRUE(client(0).subscribed(1));
  EXPECT_EQ(client(0).pubsub(1).trie().size(), 1u);
}

TEST_F(TopicsTest, ManyTopicsOnOneSupervisorProcess) {
  spawn_clients(6);
  for (TopicId t = 1; t <= 10; ++t) {
    for (std::size_t i = 0; i < 6; ++i) client(i).subscribe(t);
  }
  net.run_rounds(80);
  auto& s = net.node_as<MultiTopicSupervisorNode>(sup);
  EXPECT_EQ(s.topic_count(), 10u);
  for (TopicId t = 1; t <= 10; ++t) {
    ASSERT_NE(s.find_topic(t), nullptr);
    EXPECT_EQ(s.find_topic(t)->size(), 6u) << "topic " << t;
  }
}

TEST(TopicsMultiSupervisor, TopicsShardAcrossSupervisors) {
  sim::Network net(7);
  const auto s1 = net.spawn<MultiTopicSupervisorNode>();
  const auto s2 = net.spawn<MultiTopicSupervisorNode>();
  const auto s3 = net.spawn<MultiTopicSupervisorNode>();
  SupervisorGroup group({s1, s2, s3});
  auto resolver = [&group](TopicId t) { return group.supervisor_for(t); };
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < 6; ++i) clients.push_back(net.spawn<MultiTopicNode>(resolver));
  for (TopicId t = 1; t <= 30; ++t) {
    for (sim::NodeId c : clients) net.node_as<MultiTopicNode>(c).subscribe(t);
  }
  net.run_rounds(100);
  std::size_t total = 0;
  std::size_t nonempty_supervisors = 0;
  for (sim::NodeId s : {s1, s2, s3}) {
    const std::size_t count = net.node_as<MultiTopicSupervisorNode>(s).topic_count();
    total += count;
    if (count > 0) ++nonempty_supervisors;
  }
  EXPECT_EQ(total, 30u);
  EXPECT_GE(nonempty_supervisors, 2u);  // the hash spreads topics around
  // Each topic's ring actually converged at its own supervisor.
  for (TopicId t = 1; t <= 30; ++t) {
    const auto* topic =
        net.node_as<MultiTopicSupervisorNode>(group.supervisor_for(t)).find_topic(t);
    ASSERT_NE(topic, nullptr) << "topic " << t;
    EXPECT_EQ(topic->size(), clients.size()) << "topic " << t;
  }
}

TEST(TopicEnvelope, KeepsInnerNameAndRefs) {
  sim::MessagePool pool;
  auto inner = pool.make<core::msg::Subscribe>(sim::NodeId{5});
  const TopicEnvelope env(3, std::move(inner));
  EXPECT_EQ(env.name(), "Subscribe");
  std::vector<sim::NodeId> refs;
  env.collect_refs(refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], sim::NodeId{5});
  EXPECT_GT(env.wire_size(), core::msg::Subscribe(sim::NodeId{5}).wire_size());
}

}  // namespace
}  // namespace ssps::pubsub
