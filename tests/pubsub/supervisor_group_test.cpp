// Consistent-hashing supervisor group (§1.3): determinism, balance, and
// the bounded-reassignment locality property.
#include <gtest/gtest.h>

#include <map>

#include "pubsub/supervisor_group.hpp"

namespace ssps::pubsub {
namespace {

std::vector<sim::NodeId> supervisors(std::size_t count) {
  std::vector<sim::NodeId> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(sim::NodeId{100 + i});
  return out;
}

TEST(SupervisorGroup, DeterministicAssignment) {
  SupervisorGroup a(supervisors(4));
  SupervisorGroup b(supervisors(4));
  for (TopicId t = 0; t < 200; ++t) {
    EXPECT_EQ(a.supervisor_for(t), b.supervisor_for(t));
  }
}

TEST(SupervisorGroup, SingleSupervisorOwnsEverything) {
  SupervisorGroup g({sim::NodeId{1}});
  for (TopicId t = 0; t < 50; ++t) EXPECT_EQ(g.supervisor_for(t), sim::NodeId{1});
  EXPECT_DOUBLE_EQ(g.arc_share(sim::NodeId{1}), 1.0);
}

TEST(SupervisorGroup, LoadIsRoughlyBalanced) {
  const auto sups = supervisors(8);
  SupervisorGroup g(sups, /*virtual_nodes=*/64);
  std::map<std::uint64_t, int> counts;
  const int topics = 8000;
  for (TopicId t = 0; t < topics; ++t) counts[g.supervisor_for(t).value] += 1;
  for (sim::NodeId s : sups) {
    const double share = static_cast<double>(counts[s.value]) / topics;
    EXPECT_GT(share, 0.04) << "supervisor " << s.value;  // ideal 0.125
    EXPECT_LT(share, 0.30) << "supervisor " << s.value;
  }
}

TEST(SupervisorGroup, ArcSharesSumToOne) {
  const auto sups = supervisors(5);
  SupervisorGroup g(sups);
  double total = 0;
  for (sim::NodeId s : sups) total += g.arc_share(s);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SupervisorGroup, AddingASupervisorMovesOnlyItsShare) {
  // Consistent-hashing locality: topics not claimed by the newcomer keep
  // their old owner.
  const auto sups = supervisors(6);
  SupervisorGroup before(sups);
  std::map<TopicId, sim::NodeId> old_owner;
  const int topics = 3000;
  for (TopicId t = 0; t < topics; ++t) old_owner[t] = before.supervisor_for(t);

  SupervisorGroup after(sups);
  const sim::NodeId fresh{999};
  after.add_supervisor(fresh);
  int moved = 0;
  for (TopicId t = 0; t < topics; ++t) {
    const sim::NodeId now = after.supervisor_for(t);
    if (now != old_owner[t]) {
      EXPECT_EQ(now, fresh) << "topic " << t << " moved between old supervisors";
      ++moved;
    }
  }
  // The newcomer takes about 1/7 of the topics, nothing else moves.
  EXPECT_GT(moved, topics / 20);
  EXPECT_LT(moved, topics / 3);
}

TEST(SupervisorGroup, RemovingASupervisorRedistributesOnlyItsTopics) {
  const auto sups = supervisors(6);
  SupervisorGroup g(sups);
  std::map<TopicId, sim::NodeId> old_owner;
  const int topics = 3000;
  for (TopicId t = 0; t < topics; ++t) old_owner[t] = g.supervisor_for(t);
  const sim::NodeId victim = sups[2];
  g.remove_supervisor(victim);
  EXPECT_EQ(g.size(), 5u);
  for (TopicId t = 0; t < topics; ++t) {
    if (old_owner[t] == victim) {
      EXPECT_NE(g.supervisor_for(t), victim);
    } else {
      EXPECT_EQ(g.supervisor_for(t), old_owner[t]) << "topic " << t;
    }
  }
}

TEST(SupervisorGroup, MoreVirtualNodesSmoothTheBalance) {
  const auto sups = supervisors(4);
  auto spread = [&](int vnodes) {
    SupervisorGroup g(sups, vnodes);
    double worst = 0;
    for (sim::NodeId s : sups) {
      worst = std::max(worst, std::abs(g.arc_share(s) - 0.25));
    }
    return worst;
  };
  EXPECT_LT(spread(256), spread(1));
}

}  // namespace
}  // namespace ssps::pubsub
