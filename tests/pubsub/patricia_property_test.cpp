// Property tests over random publication sets: insertion-order
// independence, root-digest equivalence, prefix-harvest correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "pubsub/patricia.hpp"

namespace ssps::pubsub {
namespace {

std::vector<Publication> random_pubs(ssps::Rng& rng, std::size_t count) {
  std::vector<Publication> out;
  std::set<std::string> used;
  while (out.size() < count) {
    std::string payload = "m" + std::to_string(rng.below(1000000));
    if (!used.insert(payload).second) continue;
    out.push_back(Publication{sim::NodeId{rng.between(1, 50)}, std::move(payload)});
  }
  return out;
}

class PatriciaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatriciaProperty, InsertionOrderDoesNotMatter) {
  ssps::Rng rng(GetParam());
  auto pubs = random_pubs(rng, 64);
  PatriciaTrie a(64);
  for (const auto& p : pubs) a.insert(p);
  rng.shuffle(pubs);
  PatriciaTrie b(64);
  for (const auto& p : pubs) b.insert(p);
  EXPECT_TRUE(a.equal_contents(b));
  EXPECT_EQ(a.root()->hash, b.root()->hash);
  EXPECT_EQ(a.check_invariants(), "");
  EXPECT_EQ(b.check_invariants(), "");
}

TEST_P(PatriciaProperty, RootDigestEqualIffSameSet) {
  ssps::Rng rng(GetParam() + 1000);
  const auto pubs = random_pubs(rng, 40);
  PatriciaTrie a(64);
  PatriciaTrie b(64);
  for (const auto& p : pubs) {
    a.insert(p);
    b.insert(p);
  }
  EXPECT_TRUE(a.equal_contents(b));
  // Differ by exactly one element: digests must differ.
  b.insert(Publication{sim::NodeId{999}, "the-odd-one"});
  EXPECT_FALSE(a.equal_contents(b));
}

TEST_P(PatriciaProperty, AllReturnsEveryInsertedPublicationInKeyOrder) {
  ssps::Rng rng(GetParam() + 2000);
  const auto pubs = random_pubs(rng, 50);
  PatriciaTrie t(64);
  for (const auto& p : pubs) t.insert(p);
  const auto got = t.all();
  ASSERT_EQ(got.size(), pubs.size());
  // Key-sorted.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(t.key_of(got[i - 1]), t.key_of(got[i]));
  }
  // Same multiset.
  std::set<std::string> want;
  std::set<std::string> have;
  for (const auto& p : pubs) want.insert(p.payload);
  for (const auto& p : got) have.insert(p.payload);
  EXPECT_EQ(want, have);
}

TEST_P(PatriciaProperty, CollectPrefixMatchesLinearScan) {
  ssps::Rng rng(GetParam() + 3000);
  const auto pubs = random_pubs(rng, 48);
  PatriciaTrie t(64);
  for (const auto& p : pubs) t.insert(p);
  for (std::size_t plen : {0u, 1u, 2u, 3u, 5u, 8u}) {
    const BitString probe =
        plen == 0 ? BitString{}
                  : BitString::from_uint(rng.below(1ULL << plen), plen);
    const auto got = t.collect_prefix(probe);
    std::size_t expected = 0;
    for (const auto& p : pubs) {
      if (probe.is_prefix_of(t.key_of(p))) ++expected;
    }
    EXPECT_EQ(got.size(), expected) << "prefix=" << probe.to_string();
    for (const auto& p : got) EXPECT_TRUE(probe.is_prefix_of(t.key_of(p)));
  }
}

TEST_P(PatriciaProperty, LocateAgreesWithGroundTruth) {
  ssps::Rng rng(GetParam() + 4000);
  const auto pubs = random_pubs(rng, 32);
  PatriciaTrie t(64);
  std::vector<BitString> keys;
  for (const auto& p : pubs) {
    t.insert(p);
    keys.push_back(t.key_of(p));
  }
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t plen = rng.between(1, 12);
    const BitString probe = BitString::from_uint(rng.below(1ULL << plen), plen);
    const Locate loc = t.locate(probe);
    const std::size_t matching =
        static_cast<std::size_t>(std::count_if(keys.begin(), keys.end(), [&](const BitString& k) {
          return probe.is_prefix_of(k);
        }));
    if (matching == 0) {
      EXPECT_EQ(loc.kind, Locate::Kind::kMiss) << probe.to_string();
    } else {
      EXPECT_NE(loc.kind, Locate::Kind::kMiss) << probe.to_string();
      if (loc.kind == Locate::Kind::kExtension) {
        EXPECT_TRUE(probe.is_prefix_of(loc.node.label));
        EXPECT_GT(loc.node.label.size(), probe.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatriciaProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PatriciaProperty, LargeTrieStaysConsistent) {
  PatriciaTrie t(128);
  ssps::Rng rng(999);
  for (int i = 0; i < 2000; ++i) {
    t.insert(Publication{sim::NodeId{rng.between(1, 10)}, "k" + std::to_string(i)});
  }
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_EQ(t.check_invariants(), "");
}

}  // namespace
}  // namespace ssps::pubsub
