// Tests for the bit-string library (src/pubsub/bitstring.hpp).
#include "pubsub/bitstring.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ssps::pubsub {
namespace {

TEST(BitString, EmptyByDefault) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.to_string(), "");
}

TEST(BitString, FromStringRoundTrip) {
  for (const char* s : {"0", "1", "01", "10", "0110", "111000111",
                        "010101010101010101010101010101010101010101"}) {
    EXPECT_EQ(BitString::from_string(s).to_string(), s);
  }
}

TEST(BitString, PushBackBuildsMsbFirst) {
  BitString b;
  b.push_back(true);
  b.push_back(false);
  b.push_back(true);
  EXPECT_EQ(b.to_string(), "101");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitString, CrossesWordBoundaries) {
  BitString b;
  std::string expect;
  ssps::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const bool bit = rng.chance(1, 2);
    b.push_back(bit);
    expect.push_back(bit ? '1' : '0');
  }
  EXPECT_EQ(b.to_string(), expect);
  EXPECT_EQ(b.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(b.bit(i), expect[i] == '1');
  }
}

TEST(BitString, FromUint) {
  EXPECT_EQ(BitString::from_uint(0b1011, 4).to_string(), "1011");
  EXPECT_EQ(BitString::from_uint(1, 8).to_string(), "00000001");
  EXPECT_EQ(BitString::from_uint(0, 3).to_string(), "000");
}

TEST(BitString, FromBytesTakesMsbFirst) {
  const std::uint8_t data[] = {0xA5, 0x0F};  // 10100101 00001111
  EXPECT_EQ(BitString::from_bytes(data, 12).to_string(), "101001010000");
}

TEST(BitString, ToBytesPadsWithZeros) {
  const BitString b = BitString::from_string("10100101" "0000");
  const auto bytes = b.to_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xA5);
  EXPECT_EQ(bytes[1], 0x00);
}

TEST(BitString, PrefixAndWithBit) {
  const BitString b = BitString::from_string("110101");
  EXPECT_EQ(b.prefix(0).to_string(), "");
  EXPECT_EQ(b.prefix(3).to_string(), "110");
  EXPECT_EQ(b.prefix(6).to_string(), "110101");
  EXPECT_EQ(b.prefix(3).with_bit(true).to_string(), "1101");
  EXPECT_EQ(b.prefix(3).with_bit(false).to_string(), "1100");
}

TEST(BitString, PrefixClearsTrailingBitsForEquality) {
  // prefix() must zero the dead bits so == (word compare) works.
  const BitString a = BitString::from_string("1111").prefix(2);
  const BitString b = BitString::from_string("1100").prefix(2);
  EXPECT_EQ(a, b);
}

TEST(BitString, CommonPrefixLen) {
  const BitString a = BitString::from_string("110101");
  EXPECT_EQ(a.common_prefix_len(BitString::from_string("110110")), 4u);
  EXPECT_EQ(a.common_prefix_len(BitString::from_string("0")), 0u);
  EXPECT_EQ(a.common_prefix_len(a), 6u);
  EXPECT_EQ(a.common_prefix_len(BitString::from_string("1101")), 4u);
  EXPECT_EQ(a.common_prefix_len(BitString{}), 0u);
}

TEST(BitString, CommonPrefixLenAcrossWords) {
  std::string s(150, '1');
  const BitString a = BitString::from_string(s);
  std::string t = s;
  t[97] = '0';
  EXPECT_EQ(a.common_prefix_len(BitString::from_string(t)), 97u);
}

TEST(BitString, IsPrefixOf) {
  const BitString a = BitString::from_string("1101");
  EXPECT_TRUE(BitString{}.is_prefix_of(a));
  EXPECT_TRUE(BitString::from_string("11").is_prefix_of(a));
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_FALSE(BitString::from_string("10").is_prefix_of(a));
  EXPECT_FALSE(BitString::from_string("11011").is_prefix_of(a));
}

TEST(BitString, LexicographicOrdering) {
  EXPECT_LT(BitString::from_string("0"), BitString::from_string("1"));
  EXPECT_LT(BitString::from_string("01"), BitString::from_string("1"));
  EXPECT_LT(BitString::from_string("1"), BitString::from_string("11"));  // prefix first
  EXPECT_LT(BitString::from_string("011"), BitString::from_string("10"));
  EXPECT_EQ(BitString::from_string("0101") <=> BitString::from_string("0101"),
            std::strong_ordering::equal);
}

TEST(BitString, EqualityDistinguishesLength) {
  EXPECT_NE(BitString::from_string("0"), BitString::from_string("00"));
  EXPECT_NE(BitString::from_string("1"), BitString::from_string("10"));
}

TEST(BitString, HashDistinguishesLengthAndContent) {
  EXPECT_NE(BitString::from_string("0").hash_value(),
            BitString::from_string("00").hash_value());
  EXPECT_NE(BitString::from_string("01").hash_value(),
            BitString::from_string("10").hash_value());
  EXPECT_EQ(BitString::from_string("0110").hash_value(),
            BitString::from_string("0110").hash_value());
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::from_string("110");
  a.append(BitString::from_string("011"));
  EXPECT_EQ(a.to_string(), "110011");
}

}  // namespace
}  // namespace ssps::pubsub
