// Adversarial and randomized property tests for the Algorithm 5 sync:
// random divergence patterns between many nodes, hostile message tuples,
// and invariant preservation under every input.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::pubsub {
namespace {

/// A fully-connected clique of k PubSubProtocols with loopback queues —
/// isolates Algorithm 5 from overlay dynamics so the property under test
/// is purely the trie synchronization.
class Clique {
 public:
  explicit Clique(std::size_t k, std::uint64_t seed) : rng_(seed) {
    for (std::size_t i = 0; i < k; ++i) {
      ids_.push_back(sim::NodeId{i + 1});
    }
    for (std::size_t i = 0; i < k; ++i) {
      auto rng = std::make_unique<ssps::Rng>(seed + i + 1);
      auto overlay = std::make_unique<core::SubscriberProtocol>(
          ids_[i], sim::NodeId{999}, sink_, *rng);
      overlay->chaos_set_label(core::Label::from_index(i));
      // Ring: predecessor and successor in index order (enough for the
      // random-neighbor choice; correctness never depends on which).
      const std::size_t prev = (i + k - 1) % k;
      const std::size_t next = (i + 1) % k;
      if (k > 1) {
        overlay->chaos_set_left(
            core::LabeledRef{core::Label::from_index(prev), ids_[prev]});
        overlay->chaos_set_right(
            core::LabeledRef{core::Label::from_index(next), ids_[next]});
      }
      auto ps = std::make_unique<PubSubProtocol>(
          *overlay, sink_, *rng, PubSubConfig{.key_bits = 64, .flooding = false,
                                              .anti_entropy = true});
      rngs_.push_back(std::move(rng));
      overlays_.push_back(std::move(overlay));
      nodes_.push_back(std::move(ps));
    }
  }

  PubSubProtocol& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }

  void pump(std::size_t limit = 100000) {
    while (!sink_.queue.empty() && limit-- > 0) {
      auto [to, msg] = std::move(sink_.queue.front());
      sink_.queue.pop_front();
      for (std::size_t i = 0; i < ids_.size(); ++i) {
        if (ids_[i] == to) {
          nodes_[i]->handle(*msg);
          break;
        }
      }
    }
    EXPECT_GT(limit, 0u) << "sync did not quiesce";
  }

  bool converged() {
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (!nodes_[0]->trie().equal_contents(nodes_[i]->trie())) return false;
    }
    return true;
  }

  /// One "round": every node initiates anti-entropy once, then drain.
  void round() {
    for (auto& n : nodes_) n->timeout();
    pump();
  }

  ssps::Rng rng_;

 private:
  struct QueueSink final : core::MessageSink {
    // Pool first: queued PooledMsgs must die before it.
    sim::MessagePool pool_;
    void send(sim::NodeId to, sim::PooledMsg msg) override {
      queue.emplace_back(to, std::move(msg));
    }
    sim::MessagePool& pool() override { return pool_; }
    std::deque<std::pair<sim::NodeId, sim::PooledMsg>> queue;
  };

  QueueSink sink_;
  std::vector<sim::NodeId> ids_;
  std::vector<std::unique_ptr<ssps::Rng>> rngs_;
  std::vector<std::unique_ptr<core::SubscriberProtocol>> overlays_;
  std::vector<std::unique_ptr<PubSubProtocol>> nodes_;
};

class RandomDivergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDivergence, AnyScatterPatternConverges) {
  Clique clique(6, GetParam());
  ssps::Rng& rng = clique.rng_;
  // 50 publications, each placed at a random nonempty subset of nodes.
  for (int p = 0; p < 50; ++p) {
    const Publication pub{sim::NodeId{rng.between(1, 6)}, "p" + std::to_string(p)};
    bool placed = false;
    for (std::size_t i = 0; i < clique.size(); ++i) {
      if (rng.chance(1, 3)) {
        clique.node(i).add_local(pub);
        placed = true;
      }
    }
    if (!placed) clique.node(rng.below(clique.size())).add_local(pub);
  }
  int rounds = 0;
  while (!clique.converged() && rounds < 200) {
    clique.round();
    ++rounds;
  }
  EXPECT_TRUE(clique.converged()) << "after " << rounds << " rounds";
  for (std::size_t i = 0; i < clique.size(); ++i) {
    EXPECT_EQ(clique.node(i).trie().check_invariants(), "");
    EXPECT_EQ(clique.node(i).trie().size(), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDivergence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SyncAdversarial, HostileTuplesNeverCorruptTries) {
  Clique clique(2, 77);
  for (int i = 0; i < 10; ++i) {
    clique.node(0).add_local(Publication{sim::NodeId{1}, "x" + std::to_string(i)});
  }
  ssps::Rng rng(5);
  // Throw 200 random CheckTrie/CheckAndPublish messages with random labels
  // and hashes at node 0.
  for (int i = 0; i < 200; ++i) {
    std::vector<NodeSummary> tuples;
    const int count = static_cast<int>(rng.between(0, 3));
    for (int t = 0; t < count; ++t) {
      const std::size_t len = rng.between(0, 70);
      BitString label;
      for (std::size_t b = 0; b < len; ++b) label.push_back(rng.chance(1, 2));
      Digest h{};
      for (auto& byte : h) byte = static_cast<std::uint8_t>(rng.below(256));
      tuples.push_back(NodeSummary{label, h});
    }
    if (rng.chance(1, 2)) {
      clique.node(0).handle(msg::CheckTrie(sim::NodeId{2}, tuples));
    } else {
      BitString prefix;
      const std::size_t plen = rng.between(0, 65);
      for (std::size_t b = 0; b < plen; ++b) prefix.push_back(rng.chance(1, 2));
      clique.node(0).handle(msg::CheckAndPublish(sim::NodeId{2}, tuples, prefix));
    }
    clique.pump();
  }
  EXPECT_EQ(clique.node(0).trie().size(), 10u);
  EXPECT_EQ(clique.node(0).trie().check_invariants(), "");
}

TEST(SyncAdversarial, HostilePublishMessagesOnlyAddValidPublications) {
  Clique clique(2, 88);
  std::vector<Publication> pubs;
  for (int i = 0; i < 5; ++i) pubs.push_back(Publication{sim::NodeId{3}, std::to_string(i)});
  clique.node(0).handle(msg::Publish(pubs));
  clique.node(0).handle(msg::Publish(pubs));  // duplicates ignored
  EXPECT_EQ(clique.node(0).trie().size(), 5u);
  EXPECT_EQ(clique.node(0).trie().check_invariants(), "");
}

TEST(SyncAdversarial, LargeCorpusPairwiseSyncStaysSubLinear) {
  // With 1000 shared keys and 5 missing ones, the number of exchanged
  // sync messages must track the divergence (·trie depth), not the corpus.
  Clique clique(2, 99);
  for (int i = 0; i < 1000; ++i) {
    const Publication p{sim::NodeId{1}, "bulk" + std::to_string(i)};
    clique.node(0).add_local(p);
    clique.node(1).add_local(p);
  }
  for (int i = 0; i < 5; ++i) {
    clique.node(0).add_local(Publication{sim::NodeId{2}, "miss" + std::to_string(i)});
  }
  int rounds = 0;
  while (!clique.converged() && rounds < 50) {
    clique.round();
    ++rounds;
  }
  EXPECT_TRUE(clique.converged());
  EXPECT_LE(rounds, 20);
}

TEST(SyncAdversarial, TwoNodeCliqueWithEmptyAndFullTrie) {
  Clique clique(2, 111);
  for (int i = 0; i < 64; ++i) {
    clique.node(0).add_local(Publication{sim::NodeId{1}, std::to_string(i)});
  }
  int rounds = 0;
  while (!clique.converged() && rounds < 50) {
    clique.round();
    ++rounds;
  }
  EXPECT_TRUE(clique.converged());
  EXPECT_EQ(clique.node(1).trie().size(), 64u);
}

}  // namespace
}  // namespace ssps::pubsub
