// Patricia trie structure tests, including the exact Figure 2 layout.
#include "pubsub/patricia.hpp"

#include <gtest/gtest.h>

namespace ssps::pubsub {
namespace {

/// A trie over tiny 3-bit keys where we control keys directly: Figure 2
/// uses keys 000, 010, 100, 101. We reproduce those keys by probing
/// payloads until h̄_3 hits the wanted key (tests only).
class FigureTwoTrie {
 public:
  FigureTwoTrie() : trie_(3) {}

  Publication pub_with_key(const std::string& key) {
    for (std::uint64_t salt = 0;; ++salt) {
      Publication p{sim::NodeId{1}, "p" + std::to_string(salt)};
      if (trie_.key_of(p).to_string() == key) return p;
    }
  }

  PatriciaTrie trie_;
};

TEST(Patricia, EmptyTrie) {
  PatriciaTrie t(8);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.root().has_value());
  EXPECT_EQ(t.locate(BitString::from_string("0")).kind, Locate::Kind::kMiss);
  EXPECT_TRUE(t.all().empty());
  EXPECT_EQ(t.check_invariants(), "");
}

TEST(Patricia, SingleLeafIsRoot) {
  PatriciaTrie t(64);
  const Publication p{sim::NodeId{1}, "only"};
  EXPECT_TRUE(t.insert(p));
  EXPECT_EQ(t.size(), 1u);
  ASSERT_TRUE(t.root().has_value());
  EXPECT_EQ(t.root()->label, t.key_of(p));
  EXPECT_EQ(t.root()->hash, hash_label(t.key_of(p)));
  EXPECT_EQ(t.check_invariants(), "");
}

TEST(Patricia, DuplicateInsertReturnsFalse) {
  PatriciaTrie t(64);
  const Publication p{sim::NodeId{1}, "dup"};
  EXPECT_TRUE(t.insert(p));
  EXPECT_FALSE(t.insert(p));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Patricia, InsertMaintainsInvariantsIncrementally) {
  PatriciaTrie t(64);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(t.insert(Publication{sim::NodeId{3}, "pub" + std::to_string(i)}));
    ASSERT_EQ(t.check_invariants(), "") << "after insert " << i;
  }
  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(t.all().size(), 64u);
}

TEST(Patricia, ContainsAfterInsert) {
  PatriciaTrie t(64);
  std::vector<Publication> pubs;
  for (int i = 0; i < 20; ++i) {
    pubs.push_back(Publication{sim::NodeId{static_cast<std::uint64_t>(i + 1)},
                               "payload" + std::to_string(i)});
    t.insert(pubs.back());
  }
  for (const auto& p : pubs) EXPECT_TRUE(t.contains(p));
  EXPECT_FALSE(t.contains(Publication{sim::NodeId{99}, "absent"}));
}

TEST(Patricia, FigureTwoStructure) {
  // Subscriber u of Figure 2 holds P1 = 000, P2 = 010, P3 = 100, P4 = 101.
  FigureTwoTrie fx;
  const Publication p1 = fx.pub_with_key("000");
  const Publication p2 = fx.pub_with_key("010");
  const Publication p3 = fx.pub_with_key("100");
  const Publication p4 = fx.pub_with_key("101");
  PatriciaTrie& u = fx.trie_;
  ASSERT_TRUE(u.insert(p1));
  ASSERT_TRUE(u.insert(p2));
  ASSERT_TRUE(u.insert(p3));
  ASSERT_TRUE(u.insert(p4));
  ASSERT_EQ(u.check_invariants(), "");

  // Root: label ⊥ (empty), hash h(h(h(P1)∘h(P2)) ∘ h(h(P3)∘h(P4))).
  ASSERT_TRUE(u.root().has_value());
  EXPECT_EQ(u.root()->label.size(), 0u);
  const Digest h_p1 = hash_label(BitString::from_string("000"));
  const Digest h_p2 = hash_label(BitString::from_string("010"));
  const Digest h_p3 = hash_label(BitString::from_string("100"));
  const Digest h_p4 = hash_label(BitString::from_string("101"));
  const Digest left = hash_children(h_p1, h_p2);
  const Digest right = hash_children(h_p3, h_p4);
  EXPECT_EQ(u.root()->hash, hash_children(left, right));

  // Inner node "0" with children the P1/P2 leaves.
  const Locate zero = u.locate(BitString::from_string("0"));
  ASSERT_EQ(zero.kind, Locate::Kind::kExact);
  EXPECT_FALSE(zero.is_leaf);
  EXPECT_EQ(zero.node.hash, left);
  ASSERT_EQ(zero.children.size(), 2u);
  EXPECT_EQ(zero.children[0].label.to_string(), "000");
  EXPECT_EQ(zero.children[1].label.to_string(), "010");

  // Inner node "10" with children P3/P4.
  const Locate ten = u.locate(BitString::from_string("10"));
  ASSERT_EQ(ten.kind, Locate::Kind::kExact);
  EXPECT_EQ(ten.node.hash, right);
}

TEST(Patricia, FigureTwoSubscriberVHasCompressedEdge) {
  // Subscriber v holds only P1, P2, P3: the right subtrie is the single
  // leaf "100" (path compression), so locate("10") is an extension case.
  FigureTwoTrie fx;
  PatriciaTrie& v = fx.trie_;
  v.insert(fx.pub_with_key("000"));
  v.insert(fx.pub_with_key("010"));
  v.insert(fx.pub_with_key("100"));
  const Locate ten = v.locate(BitString::from_string("10"));
  ASSERT_EQ(ten.kind, Locate::Kind::kExtension);
  EXPECT_EQ(ten.node.label.to_string(), "100");
  EXPECT_TRUE(ten.is_leaf);
}

TEST(Patricia, LocateThreeCases) {
  FigureTwoTrie fx;
  PatriciaTrie& t = fx.trie_;
  t.insert(fx.pub_with_key("000"));
  t.insert(fx.pub_with_key("010"));
  // Exact inner.
  EXPECT_EQ(t.locate(BitString::from_string("0")).kind, Locate::Kind::kExact);
  // Exact leaf.
  const Locate leaf = t.locate(BitString::from_string("000"));
  EXPECT_EQ(leaf.kind, Locate::Kind::kExact);
  EXPECT_TRUE(leaf.is_leaf);
  // Extension: the empty probe extends to the root node "0".
  const Locate ext = t.locate(BitString{});
  EXPECT_EQ(ext.kind, Locate::Kind::kExtension);
  EXPECT_EQ(ext.node.label.to_string(), "0");
  // Miss: nothing under "1".
  EXPECT_EQ(t.locate(BitString::from_string("1")).kind, Locate::Kind::kMiss);
  // Miss: divergence inside a compressed edge ("001" vs leaf "000").
  EXPECT_EQ(t.locate(BitString::from_string("001")).kind, Locate::Kind::kMiss);
}

TEST(Patricia, CollectPrefix) {
  FigureTwoTrie fx;
  PatriciaTrie& t = fx.trie_;
  const Publication p1 = fx.pub_with_key("000");
  const Publication p2 = fx.pub_with_key("010");
  const Publication p3 = fx.pub_with_key("100");
  t.insert(p1);
  t.insert(p2);
  t.insert(p3);
  EXPECT_EQ(t.collect_prefix(BitString::from_string("0")).size(), 2u);
  EXPECT_EQ(t.collect_prefix(BitString::from_string("1")).size(), 1u);
  EXPECT_EQ(t.collect_prefix(BitString{}).size(), 3u);
  EXPECT_EQ(t.collect_prefix(BitString::from_string("11")).size(), 0u);
  const auto zero_zero = t.collect_prefix(BitString::from_string("00"));
  ASSERT_EQ(zero_zero.size(), 1u);
  EXPECT_EQ(zero_zero[0], p1);
}

TEST(Patricia, CopyIsDeepAndEqual) {
  PatriciaTrie a(64);
  for (int i = 0; i < 10; ++i) a.insert(Publication{sim::NodeId{1}, std::to_string(i)});
  PatriciaTrie b = a;
  EXPECT_TRUE(a.equal_contents(b));
  b.insert(Publication{sim::NodeId{1}, "extra"});
  EXPECT_FALSE(a.equal_contents(b));
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b.check_invariants(), "");
}

TEST(Patricia, RootHashChangesWithEveryInsert) {
  PatriciaTrie t(64);
  t.insert(Publication{sim::NodeId{1}, "first"});
  Digest prev = t.root()->hash;
  for (int i = 0; i < 20; ++i) {
    t.insert(Publication{sim::NodeId{1}, "n" + std::to_string(i)});
    ASSERT_NE(t.root()->hash, prev);
    prev = t.root()->hash;
  }
}

}  // namespace
}  // namespace ssps::pubsub
