// System-level publication tests: Theorem 17 (publication convergence),
// Theorem 23 (publication closure), flooding delivery (§4.3), and history
// transfer to late joiners.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/chaos.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::pubsub {
namespace {

struct Case {
  std::size_t n;
  std::size_t pubs;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return "n" + std::to_string(info.param.n) + "_p" + std::to_string(info.param.pubs) +
         "_s" + std::to_string(info.param.seed);
}

class PublicationConvergence : public ::testing::TestWithParam<Case> {};

TEST_P(PublicationConvergence, ScatteredPublicationsMergeWithoutFlooding) {
  // Theorem 17 with the pure anti-entropy path (flooding off): arbitrary
  // initial publication placement merges into the union everywhere.
  const auto [n, pubs, seed] = GetParam();
  PubSubConfig cfg;
  cfg.flooding = false;
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = seed, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(n);
  ASSERT_TRUE(sys.run_until_legit(2000).has_value());
  ssps::Rng rng(seed * 7 + 1);
  for (std::size_t i = 0; i < pubs; ++i) {
    const sim::NodeId at = ids[rng.pick_index(ids)];
    sys.pubsub(at).add_local(Publication{at, "pub" + std::to_string(i)});
  }
  const auto rounds =
      sys.net().run_until([&] { return sys.publications_converged(); },
                          400 + 60 * n);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(sys.distinct_publications(), pubs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PublicationConvergence,
                         ::testing::Values(Case{2, 6, 1}, Case{4, 10, 2},
                                           Case{8, 20, 3}, Case{16, 30, 4},
                                           Case{16, 1, 5}, Case{24, 40, 6}),
                         case_name);

TEST(PublicationClosure, NoSyncTrafficOnceConverged) {
  // Theorem 23: once all tries agree, CheckTrie elicits no responses.
  PubSubConfig cfg;
  cfg.flooding = false;
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 7, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(12);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  for (int i = 0; i < 10; ++i) {
    sys.pubsub(ids[0]).add_local(Publication{ids[0], "p" + std::to_string(i)});
  }
  ASSERT_TRUE(
      sys.net().run_until([&] { return sys.publications_converged(); }, 2000));
  sys.net().run_rounds(3);
  sys.net().metrics().reset();
  const std::size_t window = 30;
  sys.net().run_rounds(window);
  // Exactly one CheckTrie per node per round, and nothing downstream.
  EXPECT_EQ(sys.net().metrics().sent("CheckTrie"), window * ids.size());
  EXPECT_EQ(sys.net().metrics().sent("CheckAndPublish"), 0u);
  EXPECT_EQ(sys.net().metrics().sent("Publish"), 0u);
  EXPECT_EQ(sys.net().metrics().sent("PublishNew"), 0u);
}

TEST(PublicationConvergence, TriesNeverShrink) {
  // §4.2: publications are never removed. Sample sizes along the run.
  PubSubConfig cfg;
  cfg.flooding = false;
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 9, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(600).has_value());
  ssps::Rng rng(4);
  for (int i = 0; i < 15; ++i) {
    sys.pubsub(ids[rng.pick_index(ids)]).add_local(Publication{ids[0], std::to_string(i)});
  }
  std::vector<std::size_t> last(ids.size(), 0);
  for (int round = 0; round < 150; ++round) {
    sys.net().run_round();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::size_t now = sys.pubsub(ids[i]).trie().size();
      ASSERT_GE(now, last[i]);
      last[i] = now;
    }
  }
}

TEST(Flooding, DeliversInLogarithmicRounds) {
  for (std::size_t n : {16, 64, 128}) {
    PubSubSystem sys(core::SkipRingSystem::Options{.seed = 11 + n, .fd_delay = 0},
                     PubSubConfig{});
    const auto ids = sys.add_pubsub_subscribers(n);
    ASSERT_TRUE(sys.run_until_legit(4000).has_value());
    sys.pubsub(ids[0]).publish("breaking news");
    const auto rounds =
        sys.net().run_until([&] { return sys.publications_converged(); }, 50);
    ASSERT_TRUE(rounds.has_value()) << "n=" << n;
    // Diameter is <= 2·log2(n); flooding needs about one round per hop.
    EXPECT_LE(*rounds, 2 * static_cast<std::size_t>(std::log2(n)) + 3) << "n=" << n;
  }
}

TEST(Flooding, DuplicatesAreDropped) {
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 13, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(16);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  sys.net().metrics().reset();
  sys.pubsub(ids[3]).publish("once");
  sys.net().run_rounds(20);
  // Every node forwards the publication to its neighbors exactly once:
  // the flood volume is bounded by the number of directed overlay edges
  // (≈ 2 · 2n edges) — not by n², which repeated re-forwarding would give.
  EXPECT_LE(sys.net().metrics().sent("PublishNew"), 6 * 16u);
  EXPECT_TRUE(sys.publications_converged());
}

TEST(Flooding, AntiEntropyRepairsWhatFloodingMissed) {
  // Inject a publication while the overlay is broken (flooding reaches
  // only a fragment), then let the trie sync finish the job — the §4.2
  // "self-stabilizing protocol corrects eventual mistakes of flooding".
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 15, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(12);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  // Break most overlay edges, publish into the wreckage.
  core::ChaosOptions chaos;
  chaos.seed = 5;
  chaos.clear_label_pct = 0;
  chaos.random_label_pct = 0;
  chaos.scramble_edges_pct = 90;
  chaos.corrupt_database = false;
  chaos.junk_messages = 0;
  corrupt_system(sys, chaos);
  sys.pubsub(ids[0]).publish("through the storm");
  const auto rounds = sys.net().run_until(
      [&] { return sys.topology_legit() && sys.publications_converged(); }, 4000);
  ASSERT_TRUE(rounds.has_value());
}

TEST(LateJoiner, ReceivesFullHistory) {
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 17, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  for (int i = 0; i < 7; ++i) sys.pubsub(ids[0]).publish("old-" + std::to_string(i));
  sys.net().run_rounds(15);
  const sim::NodeId late = sys.add_pubsub_subscriber();
  const auto rounds = sys.net().run_until(
      [&] { return sys.pubsub(late).trie().size() == 7; }, 1000);
  ASSERT_TRUE(rounds.has_value());
}

TEST(LateJoiner, HistorySurvivesPublisherDeparture) {
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 19, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(500).has_value());
  sys.pubsub(ids[2]).publish("legacy");
  sys.net().run_rounds(15);
  sys.request_unsubscribe(ids[2]);
  ASSERT_TRUE(sys.run_until_legit(1000).has_value());
  const sim::NodeId late = sys.add_pubsub_subscriber();
  const auto rounds =
      sys.net().run_until([&] { return sys.pubsub(late).trie().size() == 1; }, 1000);
  ASSERT_TRUE(rounds.has_value());
}

TEST(Publications, ConvergenceSurvivesCrashes) {
  PubSubConfig cfg;
  cfg.flooding = false;
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 21, .fd_delay = 3}, cfg);
  const auto ids = sys.add_pubsub_subscribers(12);
  ASSERT_TRUE(sys.run_until_legit(800).has_value());
  // Scatter pubs, then crash two holders before sync completes. Crucially
  // every publication also lives somewhere else.
  for (int i = 0; i < 6; ++i) {
    sys.pubsub(ids[0]).add_local(Publication{ids[0], "k" + std::to_string(i)});
    sys.pubsub(ids[5]).add_local(Publication{ids[0], "k" + std::to_string(i)});
  }
  sys.net().run_rounds(2);
  sys.crash(ids[5]);
  const auto rounds = sys.net().run_until(
      [&] { return sys.topology_legit() && sys.publications_converged(); }, 4000);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(sys.distinct_publications(), 6u);
}

TEST(Publications, AblationFloodingAloneIsNotSelfStabilizing) {
  // §4.3: "we do not rely on flooding to show convergence of
  // publications" — because flooding alone cannot be: a publication that
  // already exists only on some nodes is never re-flooded, so scattered
  // state stays scattered forever without the trie anti-entropy.
  PubSubConfig cfg;
  cfg.flooding = true;
  cfg.anti_entropy = false;  // the ablation
  PubSubSystem sys(core::SkipRingSystem::Options{.seed = 25, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(8);
  ASSERT_TRUE(sys.run_until_legit(600).has_value());
  // Scattered pre-existing state (e.g. what a partition left behind).
  sys.pubsub(ids[0]).add_local(Publication{ids[0], "stranded"});
  const auto rounds =
      sys.net().run_until([&] { return sys.publications_converged(); }, 300);
  EXPECT_FALSE(rounds.has_value());  // provably stuck without CheckTrie
  // Turning the same scenario over to the full protocol converges
  // (covered by the PublicationConvergence sweep above).
}

TEST(Publications, AblationFloodingOffStillConvergesFloodingOnFaster) {
  auto run = [](bool flooding) {
    PubSubConfig cfg;
    cfg.flooding = flooding;
    PubSubSystem sys(core::SkipRingSystem::Options{.seed = 23, .fd_delay = 0}, cfg);
    const auto ids = sys.add_pubsub_subscribers(24);
    EXPECT_TRUE(sys.run_until_legit(1500).has_value());
    sys.pubsub(ids[0]).publish("probe");
    const auto rounds =
        sys.net().run_until([&] { return sys.publications_converged(); }, 3000);
    EXPECT_TRUE(rounds.has_value());
    return *rounds;
  };
  const auto with_flooding = run(true);
  const auto without = run(false);
  EXPECT_LT(with_flooding, without);
}

}  // namespace
}  // namespace ssps::pubsub
