// SHA-256 against FIPS 180-4 / RFC test vectors, plus the publication
// keying and Merkle combination helpers.
#include "pubsub/hash.hpp"

#include <gtest/gtest.h>

namespace ssps::pubsub {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 56 bytes forces the length into a second padding block.
  const std::string s(56, 'x');
  const Digest a = Sha256::digest(s);
  // Incremental in odd chunks must agree.
  Sha256 h;
  h.update(s.substr(0, 13));
  h.update(s.substr(13, 29));
  h.update(s.substr(42));
  EXPECT_EQ(to_hex(h.finish()), to_hex(a));
}

TEST(Sha256, SixtyFourByteMessage) {
  const std::string s(64, 'y');
  const Digest once = Sha256::digest(s);
  Sha256 h;
  for (char c : s) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), once);
}

TEST(Fnv1a64, KnownValues) {
  // FNV-1a reference: fnv1a64("") = offset basis.
  EXPECT_EQ(fnv1a64(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashLabel, DistinguishesPaddingEquivalentLabels) {
  // "0" and "00" pack to the same byte; the length prefix must split them.
  EXPECT_NE(hash_label(BitString::from_string("0")),
            hash_label(BitString::from_string("00")));
  EXPECT_NE(hash_label(BitString::from_string("1")),
            hash_label(BitString::from_string("10")));
  EXPECT_EQ(hash_label(BitString::from_string("0110")),
            hash_label(BitString::from_string("0110")));
}

TEST(HashChildren, OrderMatters) {
  const Digest a = Sha256::digest("left");
  const Digest b = Sha256::digest("right");
  EXPECT_NE(hash_children(a, b), hash_children(b, a));
}

TEST(PublicationKey, FixedLength) {
  for (std::size_t m : {1u, 8u, 64u, 130u, 256u}) {
    EXPECT_EQ(publication_key(sim::NodeId{7}, "hello", m).size(), m);
  }
}

TEST(PublicationKey, DependsOnOriginAndPayload) {
  const auto k1 = publication_key(sim::NodeId{1}, "x", 64);
  const auto k2 = publication_key(sim::NodeId{2}, "x", 64);
  const auto k3 = publication_key(sim::NodeId{1}, "y", 64);
  EXPECT_NE(k1, k2);  // same payload, different publisher (§4.2: pairs)
  EXPECT_NE(k1, k3);
}

TEST(PublicationKey, PrefixConsistentAcrossLengths) {
  const auto k64 = publication_key(sim::NodeId{5}, "stable", 64);
  const auto k32 = publication_key(sim::NodeId{5}, "stable", 32);
  EXPECT_TRUE(k32.is_prefix_of(k64));
}

TEST(PublicationKey, Deterministic) {
  EXPECT_EQ(publication_key(sim::NodeId{9}, "abc", 64),
            publication_key(sim::NodeId{9}, "abc", 64));
}

TEST(ToHex, FormatsAllBytes) {
  Digest d{};
  d[0] = 0xAB;
  d[31] = 0x01;
  const std::string hex = to_hex(d);
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(0, 2), "ab");
  EXPECT_EQ(hex.substr(62, 2), "01");
}

}  // namespace
}  // namespace ssps::pubsub
