// Determinism contract of the parallel round scheduler (src/sched):
// for any worker count, the delivery trace — per-node receipt sequences,
// every metrics counter, the JSON report — is bit-identical to the
// single-threaded run. These suites pin that equality at the raw sim
// level (recording nodes, echo traffic, churn between rounds), at the
// scenario level (full builtin reports across thread counts), across
// mid-run scheduler switches (retired schedulers keep their worker pools
// alive under in-flight envelopes), and for the engine's versioned
// multi-topic convergence probe against its exhaustive reference.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"
#include "sim/network.hpp"

namespace ssps::sim {
namespace {

struct Ping final : MsgBase<Ping> {
  int payload = 0;
  explicit Ping(int p) : payload(p) {}
  std::string_view name() const override { return "Ping"; }
};

/// Records receipts; forwards each ping (decremented) to a ring neighbor
/// while positive, so traffic cascades across shard boundaries for many
/// rounds. Timeouts emit too, exercising the sequential phase-C lane.
class Relay final : public Node {
 public:
  void handle(PooledMsg msg) override {
    auto* ping = msg_cast<Ping>(*msg);
    ASSERT_NE(ping, nullptr);
    received.push_back(ping->payload);
    if (ping->payload > 0) net().emit<Ping>(next, ping->payload - 1);
  }
  void timeout() override {
    ++timeouts;
    if (chatty && timeouts % 3 == 0) net().emit<Ping>(next, 2);
  }

  std::vector<int> received;
  int timeouts = 0;
  NodeId next = NodeId::null();
  bool chatty = false;
};

struct SimTrace {
  std::vector<std::vector<int>> received;  // per surviving node
  std::vector<int> timeouts;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  std::size_t pending = 0;
  std::vector<std::pair<std::string, std::uint64_t>> by_label;

  bool operator==(const SimTrace&) const = default;
};

/// One deterministic workload: a relay ring with cascading pings, crashes
/// and a spawn between rounds (the only place the parallel scheduler
/// allows them), and sends to dead nodes (the swallow path runs on
/// workers).
SimTrace run_sim(unsigned threads) {
  constexpr int kNodes = 23;  // not a multiple of any worker count
  Network net(99);
  net.set_threads(threads);
  std::vector<NodeId> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(net.spawn<Relay>());
  for (int i = 0; i < kNodes; ++i) {
    auto& relay = net.node_as<Relay>(ids[i]);
    relay.next = ids[(i + 1) % kNodes];
    relay.chatty = i % 4 == 0;
  }
  for (int i = 0; i < kNodes; ++i) net.emit<Ping>(ids[i], 5 + i % 7);
  net.run_rounds(6);
  net.crash(ids[3]);
  net.crash(ids[17]);  // its pending messages drop; senders keep sending
  net.run_rounds(6);
  const NodeId late = net.spawn<Relay>();
  net.node_as<Relay>(late).next = ids[0];
  net.emit<Ping>(late, 9);
  net.run_rounds(8);

  SimTrace trace;
  for (NodeId id : net.alive_ids()) {
    auto& relay = net.node_as<Relay>(id);
    trace.received.push_back(relay.received);
    trace.timeouts.push_back(relay.timeouts);
  }
  Metrics& metrics = net.metrics();
  trace.sent = metrics.total_sent();
  trace.delivered = metrics.total_delivered();
  trace.bytes = metrics.total_bytes();
  trace.pending = net.pending_messages();
  for (const auto& [label, counter] : metrics.by_label()) {
    trace.by_label.emplace_back(label, counter.count);
  }
  return trace;
}

TEST(ParallelScheduler, SimTraceBitIdenticalAcrossWorkerCounts) {
  const SimTrace serial = run_sim(1);
  EXPECT_GT(serial.delivered, 0u);
  for (unsigned threads : {2u, 3u, 4u, 7u}) {
    EXPECT_EQ(serial, run_sim(threads)) << threads << " workers";
  }
}

TEST(ParallelScheduler, MidRunSwitchesPreserveTheTrace) {
  // serial -> 3 workers -> serial, switched with messages in flight: the
  // retired schedulers' worker pools stay alive under their envelopes,
  // and the trace never forks from the all-serial twin.
  auto run_switching = [](bool switching) {
    Network net(7);
    std::vector<NodeId> ids;
    for (int i = 0; i < 11; ++i) ids.push_back(net.spawn<Relay>());
    for (int i = 0; i < 11; ++i) {
      net.node_as<Relay>(ids[i]).next = ids[(i + 1) % 11];
    }
    for (int i = 0; i < 11; ++i) net.emit<Ping>(ids[i], 20);
    net.run_rounds(5);
    if (switching) net.set_threads(3);
    net.run_rounds(5);
    if (switching) net.set_threads(1);
    net.run_rounds(5);
    std::vector<std::vector<int>> received;
    for (NodeId id : net.alive_ids()) {
      received.push_back(net.node_as<Relay>(id).received);
    }
    return std::make_pair(received, net.metrics().total_delivered());
  };
  EXPECT_EQ(run_switching(false), run_switching(true));
}

TEST(ParallelScheduler, WorkerPoolsDrainAndRecycle) {
  Network net(5);
  net.set_threads(4);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(net.spawn<Relay>());
  for (int i = 0; i < 8; ++i) net.node_as<Relay>(ids[i]).next = ids[(i + 1) % 8];
  for (int round = 0; round < 30; ++round) {
    for (NodeId id : ids) net.emit<Ping>(id, 1);
    net.run_round();
  }
  // Everything sent was delivered or is still pending; drain fully.
  while (net.pending_messages() > 0) net.run_round();
  Metrics& metrics = net.metrics();
  EXPECT_EQ(metrics.total_sent(), metrics.total_delivered());
  // The main pool holds no live messages once channels are empty (worker
  // pools likewise — the Network destructor's leak sweep, which runs
  // under the ASan CI job, would flag any slot this misses).
  EXPECT_EQ(net.pool().live(), 0u);
}

}  // namespace
}  // namespace ssps::sim

namespace ssps::scenario {
namespace {

/// Removes the "threads" header line — the one field that legitimately
/// differs — so reports from different worker counts can be compared
/// byte-for-byte (the CTest twin-run script does the same with grep -v).
std::string strip_threads_line(const std::string& json) {
  const std::size_t at = json.find("\"threads\":");
  if (at == std::string::npos) return json;
  const std::size_t begin = json.rfind('\n', at);
  const std::size_t end = json.find('\n', at);
  std::string out = json;
  out.erase(begin, end - begin);
  return out;
}

std::string report_json(const std::string& builtin, unsigned threads,
                        bool scrambled) {
  ScenarioSpec spec = builtin_scenario(builtin, /*seed=*/11, /*nodes=*/16);
  if (scrambled) spec = scrambled_variant(std::move(spec));
  spec.exec.threads = threads;
  ScenarioRunner runner(std::move(spec));
  return runner.run().to_json().dump(2);
}

TEST(ParallelScheduler, BuiltinReportsBitIdenticalAcrossWorkerCounts) {
  // One single-topic and one multi-topic builtin, plain and scrambled;
  // the shell harness (tests/determinism/thread_determinism.sh) covers
  // the full builtin matrix.
  for (const char* builtin : {"churn-wave", "zipf-topics"}) {
    for (bool scrambled : {false, true}) {
      const std::string serial =
          strip_threads_line(report_json(builtin, 1, scrambled));
      for (unsigned threads : {2u, 4u}) {
        EXPECT_EQ(serial, strip_threads_line(report_json(builtin, threads, scrambled)))
            << builtin << (scrambled ? " scrambled " : " ") << threads
            << " workers";
      }
    }
  }
}

TEST(ParallelScheduler, TelemetrySectionsPopulatedAndThreadInvariant) {
  // The byte-equality tests above would pass vacuously if the telemetry
  // sections were silently empty; pin that they carry real data and that
  // every serialized field matches across worker counts.
  auto run = [](const char* builtin, unsigned threads) {
    ScenarioSpec spec = builtin_scenario(builtin, /*seed=*/11, /*nodes=*/16);
    spec.exec.threads = threads;
    ScenarioRunner runner(std::move(spec));
    return runner.run();  // copies the report out of the dying runner
  };

  const ScenarioReport serial = run("churn-wave", 1);
  EXPECT_GT(serial.latency.global.count, 0u);
  EXPECT_GE(serial.latency.global.p999, serial.latency.global.p50);
  EXPECT_GE(serial.latency.global.max, serial.latency.global.p999);
  ASSERT_TRUE(serial.timeseries.has_value());
  ASSERT_FALSE(serial.timeseries->samples.empty());
  EXPECT_GT(serial.timeseries->samples.front().alive, 0u);

  const ScenarioReport parallel = run("churn-wave", 4);
  EXPECT_EQ(serial.latency.global.count, parallel.latency.global.count);
  EXPECT_EQ(serial.latency.global.p50, parallel.latency.global.p50);
  EXPECT_EQ(serial.latency.global.p99, parallel.latency.global.p99);
  EXPECT_EQ(serial.latency.global.p999, parallel.latency.global.p999);
  EXPECT_EQ(serial.latency.global.max, parallel.latency.global.max);
  ASSERT_TRUE(parallel.timeseries.has_value());
  ASSERT_EQ(serial.timeseries->samples.size(), parallel.timeseries->samples.size());
  EXPECT_EQ(serial.timeseries->dropped, parallel.timeseries->dropped);
  for (std::size_t i = 0; i < serial.timeseries->samples.size(); ++i) {
    const auto& a = serial.timeseries->samples[i];
    const auto& b = parallel.timeseries->samples[i];
    // Every serialized field; pool_reserved_bytes is thread-variant by
    // design and deliberately excluded.
    EXPECT_EQ(a.round, b.round) << i;
    EXPECT_EQ(a.delivered, b.delivered) << i;
    EXPECT_EQ(a.timeouts, b.timeouts) << i;
    EXPECT_EQ(a.in_flight, b.in_flight) << i;
    EXPECT_EQ(a.alive, b.alive) << i;
    EXPECT_EQ(a.nonconforming, b.nonconforming) << i;
  }

  // Multi-topic runs additionally carry per-topic latency rows.
  const ScenarioReport multi = run("zipf-topics", 2);
  EXPECT_GT(multi.latency.global.count, 0u);
  EXPECT_FALSE(multi.latency.per_topic.empty());
}

TEST(ParallelScheduler, ThreadsRecordedInReportHeader) {
  ScenarioSpec spec = builtin_scenario("steady", 3, 12);
  spec.exec.threads = 2;
  ScenarioRunner runner(std::move(spec));
  const std::string json = runner.run().to_json().dump(2);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
}

TEST(ConvergedProbe, AgreesWithReferenceAlongTrajectories) {
  // Drive a multi-topic deployment through joins, churn, supervisor
  // changes and publishing, comparing the versioned per-topic probe with
  // the exhaustive reference on every round of every convergence wait.
  ScenarioSpec spec;
  spec.name = "probe-differential";
  spec.seed = 13;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 2;
  spec.topics = 6;
  spec.topics_per_client = 2;
  spec.nodes = 14;
  Phase join;
  join.name = "join";
  join.churn.joins = 14;
  spec.phases.push_back(join);
  Phase churn;
  churn.name = "churn";
  churn.churn.crashes = 2;
  churn.churn.leaves = 2;
  churn.churn.joins = 3;
  churn.add_supervisors = 1;
  churn.publish.count = 6;
  spec.phases.push_back(churn);
  Phase flash;
  flash.name = "flash";
  flash.flash_crowd_topic = TopicId{2};
  flash.publish.count = 4;
  spec.phases.push_back(flash);

  ScenarioRunner runner(std::move(spec));
  std::size_t evaluations = 0;
  for (std::size_t i = 0; i < runner.spec().phases.size(); ++i) {
    runner.run_phase(i);
    const auto settled = runner.net().run_until(
        [&] {
          ++evaluations;
          const bool probe = runner.converged();
          EXPECT_EQ(probe, runner.converged_reference());
          return probe;
        },
        4000);
    EXPECT_TRUE(settled.has_value()) << "phase " << i << " did not converge";
  }
  // The wait above re-evaluates the probe every active round; make sure
  // the differential actually exercised a trajectory, not one call.
  EXPECT_GT(evaluations, 10u);
}

TEST(ConvergedProbe, CacheSurvivesTopicRehomingUnderParallelRounds) {
  // Supervisor crash forces topic rehoming; run it all under the
  // parallel scheduler and keep the probe honest against the reference.
  ScenarioSpec spec;
  spec.name = "probe-rehome";
  spec.seed = 21;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 3;
  spec.topics = 5;
  spec.topics_per_client = 2;
  spec.nodes = 10;
  spec.exec.threads = 3;
  Phase join;
  join.name = "join";
  join.churn.joins = 10;
  join.publish.count = 5;
  spec.phases.push_back(join);
  Phase crash;
  crash.name = "crash-supervisor";
  crash.crash_supervisors = 1;
  spec.phases.push_back(crash);

  ScenarioRunner runner(std::move(spec));
  for (std::size_t i = 0; i < runner.spec().phases.size(); ++i) {
    runner.run_phase(i);
    const auto settled = runner.net().run_until(
        [&] {
          const bool probe = runner.converged();
          EXPECT_EQ(probe, runner.converged_reference());
          return probe;
        },
        4000);
    EXPECT_TRUE(settled.has_value()) << "phase " << i << " did not converge";
  }
}

}  // namespace
}  // namespace ssps::scenario
