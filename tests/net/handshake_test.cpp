// Versioned Hello handshake: roundtrip over a real socket pair, structured
// rejection of version-mismatched and non-Hello openings, loopback
// listener/connect plumbing (ephemeral port discovery included).
#include <sys/socket.h>

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/encode.hpp"
#include "net/frame.hpp"
#include "net/handshake.hpp"
#include "net/socket.hpp"
#include "proc/ctrl.hpp"
#include "wire/codec.hpp"

namespace ssps::net {
namespace {

using ssps::sim::NodeId;

constexpr int kTimeoutMs = 5000;

struct SocketPair {
  Socket a;
  Socket b;
};

SocketPair make_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

/// A Hello frame claiming protocol version `version` — built by hand so
/// the test can speak a version the codec itself refuses to emit.
std::vector<std::uint8_t> hello_frame(std::uint32_t version, std::uint64_t node) {
  ssps::common::Encoder payload;
  payload.u32(version);
  payload.u64(node);
  std::vector<std::uint8_t> out;
  const std::uint8_t type_byte =
      static_cast<std::uint8_t>(wire::WireType::kHello);
  out.push_back(type_byte);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(payload.size() >> (8 * i)));
  }
  std::uint32_t crc = wire::crc32({&type_byte, 1});
  crc = wire::crc32(payload.buffer(), crc);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.insert(out.end(), payload.buffer().begin(), payload.buffer().end());
  return out;
}

TEST(Handshake, RoundtripOverSocketPair) {
  SocketPair pair = make_pair();
  ASSERT_TRUE(send_hello(pair.a, NodeId{7}));
  FrameAssembler stream;
  const HelloResult got = expect_hello(pair.b, stream, kTimeoutMs);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(got.node.value, 7u);
}

TEST(Handshake, VersionMismatchIsStructuredRejection) {
  SocketPair pair = make_pair();
  const std::vector<std::uint8_t> frame =
      hello_frame(wire::kProtocolVersion + 1, 7);
  ASSERT_TRUE(pair.a.send_all(frame));
  FrameAssembler stream;
  const HelloResult got = expect_hello(pair.b, stream, kTimeoutMs);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.status, wire::DecodeStatus::kVersionMismatch);
}

TEST(Handshake, NonHelloOpeningFrameIsRejected) {
  // A control frame's type byte (0x40+) is outside the WireType enum, so
  // a peer that skips the handshake is rejected with kUnknownType.
  SocketPair pair = make_pair();
  std::vector<std::uint8_t> frame;
  proc::encode_ctrl(proc::RoundGo{1}, frame);
  ASSERT_TRUE(pair.a.send_all(frame));
  FrameAssembler stream;
  const HelloResult got = expect_hello(pair.b, stream, kTimeoutMs);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.status, wire::DecodeStatus::kUnknownType);
}

TEST(Handshake, PeerHangupReportsTruncation) {
  SocketPair pair = make_pair();
  pair.a.close();
  FrameAssembler stream;
  const HelloResult got = expect_hello(pair.b, stream, kTimeoutMs);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.status, wire::DecodeStatus::kTruncated);
}

TEST(Handshake, HelloSplitAcrossWritesStillLands) {
  SocketPair pair = make_pair();
  const std::vector<std::uint8_t> frame = hello_frame(wire::kProtocolVersion, 21);
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(pair.a.send_all({&byte, 1}));
  }
  FrameAssembler stream;
  const HelloResult got = expect_hello(pair.b, stream, kTimeoutMs);
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.node.value, 21u);
}

TEST(Handshake, LoopbackListenerEphemeralPortRoundtrip) {
  std::optional<Listener> listener = Listener::bind_local(0);
  ASSERT_TRUE(listener.has_value());
  ASSERT_GT(listener->port(), 0);

  std::optional<Socket> client =
      Socket::connect_local(listener->port(), kTimeoutMs);
  ASSERT_TRUE(client.has_value());
  std::optional<Socket> server = listener->accept_one(kTimeoutMs);
  ASSERT_TRUE(server.has_value());

  // Both directions handshake, daemon-style (client first).
  ASSERT_TRUE(send_hello(*client, NodeId{3}));
  FrameAssembler server_stream;
  const HelloResult at_server = expect_hello(*server, server_stream, kTimeoutMs);
  ASSERT_TRUE(at_server.ok);
  EXPECT_EQ(at_server.node.value, 3u);

  ASSERT_TRUE(send_hello(*server, NodeId{0}));
  FrameAssembler client_stream;
  const HelloResult at_client = expect_hello(*client, client_stream, kTimeoutMs);
  ASSERT_TRUE(at_client.ok);
  EXPECT_TRUE(at_client.node.is_null());
}

}  // namespace
}  // namespace ssps::net
