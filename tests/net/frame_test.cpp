// FrameAssembler: every frame of a mixed protocol/control corpus must
// survive being split at every byte boundary, arriving byte-by-byte, or
// arriving many-per-read; oversized length claims must fail closed with a
// structured error.
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "proc/ctrl.hpp"
#include "sim/message_pool.hpp"
#include "wire/codec.hpp"

namespace ssps::net {
namespace {

using ssps::sim::MessagePool;
using ssps::sim::NodeId;

/// A corpus spanning both frame producers that share the outer shape:
/// wire-codec protocol messages (via encode_message) and deployment
/// control frames (via encode_ctrl), including an empty payload
/// (Shutdown) and a nested frame-in-frame (Relay).
std::vector<std::pair<std::string, std::vector<std::uint8_t>>> corpus(
    MessagePool& pool) {
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;

  std::vector<std::uint8_t> hello;
  EXPECT_TRUE(wire::encode_message(
      *pool.make<wire::Hello>(wire::kProtocolVersion, NodeId{3}), hello));
  out.emplace_back("hello", std::move(hello));

  const auto ctrl = [&](const char* name, proc::CtrlMsg msg) {
    std::vector<std::uint8_t> frame;
    proc::encode_ctrl(msg, frame);
    out.emplace_back(name, std::move(frame));
  };
  ctrl("round-go", proc::RoundGo{42});
  ctrl("round-done", proc::RoundDone{42, 17, 0xdeadbeefu, 3});
  proc::Relay relay;
  relay.from = 5;
  relay.to = 9;
  relay.seq = 1234;
  EXPECT_TRUE(wire::encode_message(
      *pool.make<wire::Hello>(wire::kProtocolVersion, NodeId{5}), relay.frame));
  ctrl("relay", std::move(relay));
  ctrl("restore", proc::Restore{6, 1});
  ctrl("report", proc::Report{"{\n  \"ok\": true\n}"});
  ctrl("shutdown", proc::Shutdown{});
  return out;
}

TEST(FrameAssembler, EverySplitPointOfEveryCorpusMessage) {
  MessagePool pool;
  for (const auto& [name, frame] : corpus(pool)) {
    for (std::size_t split = 0; split <= frame.size(); ++split) {
      FrameAssembler assembler;
      assembler.feed(std::span(frame.data(), split));
      if (split < frame.size()) {
        EXPECT_FALSE(assembler.next().has_value())
            << name << " split " << split << ": partial frame yielded early";
      }
      assembler.feed(std::span(frame.data() + split, frame.size() - split));
      const std::optional<std::vector<std::uint8_t>> got = assembler.next();
      ASSERT_TRUE(got.has_value()) << name << " split " << split;
      EXPECT_EQ(*got, frame) << name << " split " << split;
      EXPECT_FALSE(assembler.next().has_value());
      EXPECT_EQ(assembler.buffered(), 0u);
      EXPECT_FALSE(assembler.failed());
    }
  }
}

TEST(FrameAssembler, ByteByByteStreamOfWholeCorpus) {
  MessagePool pool;
  const auto frames = corpus(pool);
  std::vector<std::uint8_t> stream;
  for (const auto& [name, frame] : frames) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t byte : stream) {
    assembler.feed(std::span(&byte, 1));
    while (auto frame = assembler.next()) got.push_back(std::move(*frame));
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], frames[i].second) << frames[i].first;
  }
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssembler, ManyFramesInOneFeed) {
  MessagePool pool;
  const auto frames = corpus(pool);
  std::vector<std::uint8_t> stream;
  for (const auto& [name, frame] : frames) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameAssembler assembler;
  assembler.feed(stream);
  for (const auto& [name, frame] : frames) {
    const auto got = assembler.next();
    ASSERT_TRUE(got.has_value()) << name;
    EXPECT_EQ(*got, frame) << name;
  }
  EXPECT_FALSE(assembler.next().has_value());
}

TEST(FrameAssembler, FramesDecodeAfterReassembly) {
  // The contract is "next() hands decode-ready frames": run the corpus
  // back through the matching parser after a pathological 1-byte feed.
  MessagePool pool;
  for (const auto& [name, frame] : corpus(pool)) {
    FrameAssembler assembler;
    for (const std::uint8_t byte : frame) assembler.feed(std::span(&byte, 1));
    const auto got = assembler.next();
    ASSERT_TRUE(got.has_value()) << name;
    if (name == "hello") {
      MessagePool scratch;
      EXPECT_TRUE(wire::decode_message(*got, scratch).ok()) << name;
    } else {
      EXPECT_TRUE(proc::parse_ctrl(*got).ok()) << name;
    }
  }
}

TEST(FrameAssembler, OversizedLengthClaimFailsClosed) {
  // Type byte + u64 length far beyond the cap + CRC bytes: the assembler
  // must refuse to size a buffer from the claim.
  FrameAssembler assembler(1 << 10);
  std::vector<std::uint8_t> header(FrameAssembler::kHeaderBytes, 0);
  header[0] = 0x42;
  const std::uint64_t huge = 1u << 20;
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  assembler.feed(header);
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.failed());
  EXPECT_EQ(assembler.error().status, wire::DecodeStatus::kFrameTooLarge);
  EXPECT_EQ(assembler.error().offset, 0u);

  // Failure is sticky: even a well-formed follow-up frame stays unread (a
  // stream that lied about a length has no trustworthy resync point).
  std::vector<std::uint8_t> good;
  proc::encode_ctrl(proc::Shutdown{}, good);
  assembler.feed(good);
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.failed());
}

TEST(FrameAssembler, OversizeOffsetCountsConsumedFrames) {
  FrameAssembler assembler(1 << 10);
  std::vector<std::uint8_t> good;
  proc::encode_ctrl(proc::RoundGo{7}, good);
  assembler.feed(good);
  ASSERT_TRUE(assembler.next().has_value());

  std::vector<std::uint8_t> bad(FrameAssembler::kHeaderBytes, 0xff);
  bad[0] = 0x41;
  assembler.feed(bad);
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.failed());
  // The error names the bad frame's position in the whole stream, not in
  // the current buffer.
  EXPECT_EQ(assembler.error().offset, good.size());
}

TEST(FrameAssembler, BufferedTracksPartialFrame) {
  MessagePool pool;
  std::vector<std::uint8_t> frame;
  proc::encode_ctrl(proc::RoundDone{1, 2, 3, 4}, frame);
  FrameAssembler assembler;
  assembler.feed(std::span(frame.data(), 5));
  EXPECT_EQ(assembler.buffered(), 5u);
  EXPECT_FALSE(assembler.next().has_value());
  assembler.feed(std::span(frame.data() + 5, frame.size() - 5));
  EXPECT_TRUE(assembler.next().has_value());
  EXPECT_EQ(assembler.buffered(), 0u);
}

}  // namespace
}  // namespace ssps::net
