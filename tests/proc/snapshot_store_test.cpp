// SnapshotStore: per-node checkpoint files — roundtrip, overwrite,
// torn/corrupt-file rejection, directory enumeration.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proc/snapshot_store.hpp"

namespace ssps::proc {
namespace {

using ssps::sim::NodeId;

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ssps-snap-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::string(s).size()};
}

TEST_F(SnapshotStoreTest, RoundtripAndOverwrite) {
  SnapshotStore store(dir_);
  const auto first = bytes_of("subscriber state v1");
  ASSERT_TRUE(store.save(NodeId{7}, first));
  EXPECT_EQ(store.load(NodeId{7}), first);

  const auto second = bytes_of("subscriber state v2, longer than before");
  ASSERT_TRUE(store.save(NodeId{7}, second));
  EXPECT_EQ(store.load(NodeId{7}), second);
}

TEST_F(SnapshotStoreTest, EmptyPayloadRoundtrips) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.save(NodeId{3}, std::vector<std::uint8_t>{}));
  const auto got = store.load(NodeId{3});
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_F(SnapshotStoreTest, MissingFileIsNullopt) {
  SnapshotStore store(dir_);
  EXPECT_FALSE(store.load(NodeId{99}).has_value());
}

TEST_F(SnapshotStoreTest, TruncatedFileIsNullopt) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.save(NodeId{5}, bytes_of("some state bytes")));
  const std::filesystem::path path = dir_ / "node-5.snap";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);
  EXPECT_FALSE(store.load(NodeId{5}).has_value());
}

TEST_F(SnapshotStoreTest, FlippedPayloadByteFailsChecksum) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.save(NodeId{5}, bytes_of("some state bytes")));
  const std::filesystem::path path = dir_ / "node-5.snap";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(17);  // past magic+crc+len, inside the payload
  f.put(static_cast<char>(0xff));
  f.close();
  EXPECT_FALSE(store.load(NodeId{5}).has_value());
}

TEST_F(SnapshotStoreTest, BadMagicIsNullopt) {
  SnapshotStore store(dir_);
  std::ofstream f(dir_ / "node-2.snap", std::ios::binary);
  f << "JUNKJUNKJUNKJUNKJUNK";
  f.close();
  EXPECT_FALSE(store.load(NodeId{2}).has_value());
}

TEST_F(SnapshotStoreTest, SaveLeavesNoTmpFileBehind) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.save(NodeId{4}, bytes_of("state")));
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".snap") << entry.path();
  }
}

TEST_F(SnapshotStoreTest, StoredEnumeratesInIdOrder) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.save(NodeId{30}, bytes_of("c")));
  ASSERT_TRUE(store.save(NodeId{2}, bytes_of("a")));
  ASSERT_TRUE(store.save(NodeId{11}, bytes_of("b")));
  // Unrelated files are skipped.
  std::ofstream(dir_ / "notes.txt") << "not a snapshot";
  std::ofstream(dir_ / "node-x.snap") << "bad id";
  const std::vector<NodeId> got = store.stored();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].value, 2u);
  EXPECT_EQ(got[1].value, 11u);
  EXPECT_EQ(got[2].value, 30u);
}

}  // namespace
}  // namespace ssps::proc
