// Control-protocol codec: roundtrip of every frame type, totality over
// damaged frames (checksum, truncation, trailing bytes, unknown type).
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "proc/ctrl.hpp"

namespace ssps::proc {
namespace {

std::vector<std::uint8_t> encoded(const CtrlMsg& msg) {
  std::vector<std::uint8_t> out;
  encode_ctrl(msg, out);
  return out;
}

TEST(CtrlCodec, RoundtripsEveryType) {
  Relay relay;
  relay.from = 3;
  relay.to = 8;
  relay.seq = 777;
  relay.frame = {0x01, 0x02, 0x03, 0x04};
  const std::vector<CtrlMsg> samples = {
      RoundGo{12},
      RoundDone{12, 34, 0xabcdef0123456789ull, 5},
      relay,
      Restore{6, 2},
      Report{"{\"ok\": true}"},
      Shutdown{},
  };
  for (const CtrlMsg& msg : samples) {
    const CtrlParse parsed = parse_ctrl(encoded(msg));
    ASSERT_TRUE(parsed.ok()) << "variant index " << msg.index();
    EXPECT_EQ(parsed.msg->index(), msg.index());
  }
}

TEST(CtrlCodec, FieldFidelity) {
  const CtrlParse done = parse_ctrl(encoded(RoundDone{9, 17, 42, 3}));
  ASSERT_TRUE(done.ok());
  const auto& d = std::get<RoundDone>(*done.msg);
  EXPECT_EQ(d.round, 9u);
  EXPECT_EQ(d.delivered, 17u);
  EXPECT_EQ(d.digest, 42u);
  EXPECT_EQ(d.relays, 3u);

  Relay relay;
  relay.from = 3;
  relay.to = 8;
  relay.seq = 777;
  relay.frame = {0xde, 0xad, 0xbe, 0xef};
  const CtrlParse parsed = parse_ctrl(encoded(relay));
  ASSERT_TRUE(parsed.ok());
  const auto& r = std::get<Relay>(*parsed.msg);
  EXPECT_EQ(r.from, 3u);
  EXPECT_EQ(r.to, 8u);
  EXPECT_EQ(r.seq, 777u);
  EXPECT_EQ(r.frame, relay.frame);
}

TEST(CtrlCodec, FlippedByteFailsChecksum) {
  std::vector<std::uint8_t> frame = encoded(RoundGo{12});
  frame.back() ^= 0x10;
  const CtrlParse parsed = parse_ctrl(frame);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.status, wire::DecodeStatus::kBadChecksum);
}

TEST(CtrlCodec, TruncationIsStructured) {
  const std::vector<std::uint8_t> frame = encoded(RoundDone{1, 2, 3, 4});
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const CtrlParse parsed =
        parse_ctrl(std::span(frame.data(), cut));
    EXPECT_FALSE(parsed.ok()) << "cut " << cut;
    EXPECT_EQ(parsed.error.status, wire::DecodeStatus::kTruncated) << cut;
  }
}

TEST(CtrlCodec, UnknownTypeIsStructured) {
  std::vector<std::uint8_t> frame = encoded(Shutdown{});
  frame[0] = 0x7f;  // not a CtrlType; re-seal the checksum over it
  const std::uint8_t type_byte = frame[0];
  std::uint32_t crc = wire::crc32({&type_byte, 1});
  for (int i = 0; i < 4; ++i) {
    frame[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  const CtrlParse parsed = parse_ctrl(frame);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.status, wire::DecodeStatus::kUnknownType);
}

TEST(CtrlCodec, TrailingPayloadBytesAreRejected) {
  // A RoundGo payload with an extra byte: CRC is sealed over it, so only
  // the per-type done() check can catch it.
  std::vector<std::uint8_t> frame = encoded(RoundGo{12});
  frame.push_back(0x00);
  const std::uint64_t len = 9;
  for (int i = 0; i < 8; ++i) {
    frame[1 + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  const std::uint8_t type_byte = frame[0];
  std::uint32_t crc = wire::crc32({&type_byte, 1});
  crc = wire::crc32(std::span(frame.data() + 13, 9), crc);
  for (int i = 0; i < 4; ++i) {
    frame[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  const CtrlParse parsed = parse_ctrl(frame);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.status, wire::DecodeStatus::kBadPayload);
}

}  // namespace
}  // namespace ssps::proc
