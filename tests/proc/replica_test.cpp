// Replica: the lockstep core's determinism properties, exercised
// in-process (no sockets) — hook transparency, digest agreement across
// replicas, relay byte-verification and swap neutrality, lockstep restore
// events.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proc/replica.hpp"
#include "scenario/runner.hpp"

namespace ssps::proc {
namespace {

ScenarioChoice steady_choice() {
  ScenarioChoice choice;
  choice.name = "steady";
  choice.seed = 3;
  choice.nodes = 12;
  choice.oracle = true;
  return choice;
}

scenario::ScenarioSpec spec_of(const ScenarioChoice& choice) {
  scenario::ScenarioSpec spec;
  EXPECT_TRUE(build_scenario(choice, spec));
  return spec;
}

TEST(ShardOf, RoundRobinsDenseIds) {
  // Ids are dense from 1 (the supervisor), so 1..procs lands one node on
  // each shard before wrapping.
  EXPECT_EQ(shard_of(sim::NodeId{1}, 3), 0u);
  EXPECT_EQ(shard_of(sim::NodeId{2}, 3), 1u);
  EXPECT_EQ(shard_of(sim::NodeId{3}, 3), 2u);
  EXPECT_EQ(shard_of(sim::NodeId{4}, 3), 0u);
  EXPECT_EQ(shard_of(sim::NodeId{7}, 2), 0u);
}

TEST(BuildScenario, RejectsUnknownNames) {
  scenario::ScenarioSpec spec;
  ScenarioChoice choice;
  choice.name = "no-such-scenario";
  EXPECT_FALSE(build_scenario(choice, spec));
}

TEST(Replica, HookIsReportNeutral) {
  // Wrapping the scheduler in a HookScheduler and turning on sender
  // attribution must not change a single report byte — that neutrality is
  // what lets a live deployment byte-match plain ssps_run.
  scenario::ScenarioRunner plain(spec_of(steady_choice()));
  const std::string want = plain.run().to_json().dump(2);

  Replica replica(spec_of(steady_choice()), 3);
  std::size_t units = 0;
  replica.install_hook(
      [&](sim::Network&, std::size_t, std::size_t) { ++units; });
  const std::string got = replica.run().to_json().dump(2);
  EXPECT_GT(units, 0u);
  EXPECT_EQ(got, want);
}

TEST(Replica, DigestSequencesAgreeAcrossReplicas) {
  std::vector<std::uint64_t> digests_a;
  std::vector<std::uint64_t> digests_b;
  for (auto* digests : {&digests_a, &digests_b}) {
    Replica replica(spec_of(steady_choice()), 2);
    replica.install_hook([&, digests](sim::Network&, std::size_t, std::size_t) {
      digests->push_back(replica.digest());
    });
    replica.run();
  }
  ASSERT_GT(digests_a.size(), 1u);
  EXPECT_EQ(digests_a, digests_b);
}

TEST(Replica, RelaySwapIsReportNeutral) {
  // Route every cross-shard message through the wire codec and swap the
  // decoded copy back in (exactly what a daemon does with relayed bytes):
  // the report must still byte-match the untouched run.
  scenario::ScenarioRunner plain(spec_of(steady_choice()));
  const std::string want = plain.run().to_json().dump(2);

  Replica replica(spec_of(steady_choice()), 3);
  std::size_t swapped = 0;
  replica.install_hook([&](sim::Network&, std::size_t, std::size_t) {
    for (std::size_t shard = 0; shard < 3; ++shard) {
      for (const Relay& relay : replica.collect_outbox(shard)) {
        ASSERT_EQ(replica.verify_relay(relay), Replica::RelayCheck::kOk);
        ASSERT_EQ(replica.apply_relay(relay), Replica::RelayCheck::kOk);
        ++swapped;
      }
    }
  });
  const std::string got = replica.run().to_json().dump(2);
  EXPECT_GT(swapped, 0u);
  EXPECT_EQ(got, want);
}

TEST(Replica, VerifyRelayRejectsForeignAndDamagedFrames) {
  Replica replica(spec_of(steady_choice()), 2);
  bool checked = false;
  replica.install_hook([&](sim::Network&, std::size_t, std::size_t) {
    if (checked) return;
    std::vector<Relay> outbox = replica.collect_outbox(0);
    if (outbox.empty()) outbox = replica.collect_outbox(1);
    if (outbox.empty()) return;
    checked = true;
    Relay unknown = outbox[0];
    unknown.seq += 100000;  // no such envelope in flight
    EXPECT_EQ(replica.verify_relay(unknown), Replica::RelayCheck::kUnknown);
    Relay damaged = outbox[0];
    damaged.frame.back() ^= 0x01;  // bytes disagree with the local envelope
    EXPECT_EQ(replica.verify_relay(damaged), Replica::RelayCheck::kMismatch);
  });
  replica.run();
  EXPECT_TRUE(checked);
}

TEST(Replica, LockstepRestoreKeepsReplicasIdentical) {
  // Two replicas applying the same restore event at the same unit must
  // stay byte-identical through the end of the run (the kill-recovery
  // path's determinism argument), and the oracle must stay green.
  const auto run_with_restore = [](std::string& out_json) {
    Replica replica(spec_of(steady_choice()), 2);
    replica.install_hook([&](sim::Network&, std::size_t unit, std::size_t) {
      if (unit == 5) replica.apply_restore(1);
    });
    const scenario::ScenarioReport& report = replica.run();
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.oracle_ok);
    out_json = report.to_json().dump(2);
  };
  std::string a;
  std::string b;
  run_with_restore(a);
  run_with_restore(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ssps::proc
