// BarrierTracker: the coordinator's round-barrier bookkeeping under the
// awkward schedules — a process dying mid-round, a slow joiner acking
// last, duplicate acks, digest divergence, relay-count audits.
#include <cstdint>

#include <gtest/gtest.h>

#include "proc/barrier.hpp"

namespace ssps::proc {
namespace {

constexpr std::uint64_t kDigest = 0xfeedfacecafef00dull;

TEST(BarrierTracker, CompletesWhenEveryShardAcks) {
  BarrierTracker tracker(3);
  tracker.begin_round(1, kDigest);
  EXPECT_FALSE(tracker.complete());
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_EQ(tracker.round_done(1, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_FALSE(tracker.complete());
  EXPECT_EQ(tracker.missing(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(tracker.round_done(2, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.complete());
  EXPECT_TRUE(tracker.verify_relay_counts());
  EXPECT_FALSE(tracker.diverged());
}

TEST(BarrierTracker, SlowJoinerOrderDoesNotMatter) {
  // The same acks in every arrival order complete the same barrier.
  const std::size_t orders[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}};
  for (const auto& order : orders) {
    BarrierTracker tracker(3);
    tracker.begin_round(4, kDigest);
    for (const std::size_t shard : order) {
      EXPECT_FALSE(tracker.complete());
      EXPECT_EQ(tracker.round_done(shard, 4, kDigest),
                BarrierTracker::Ack::kAccepted);
    }
    EXPECT_TRUE(tracker.complete());
    EXPECT_FALSE(tracker.diverged());
  }
}

TEST(BarrierTracker, DuplicateAcksCountOnce) {
  BarrierTracker tracker(2);
  tracker.begin_round(1, kDigest);
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kDuplicate);
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kDuplicate);
  EXPECT_FALSE(tracker.complete());  // shard 1 still owes its ack
  EXPECT_EQ(tracker.round_done(1, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.complete());
  EXPECT_FALSE(tracker.diverged());
}

TEST(BarrierTracker, CrashMidRoundCompletesViaDead) {
  BarrierTracker tracker(3);
  tracker.begin_round(7, kDigest);
  EXPECT_EQ(tracker.round_done(0, 7, kDigest), BarrierTracker::Ack::kAccepted);
  // Shard 1's relays arrived but its ack never will: the process died.
  tracker.count_relay(1);
  tracker.count_relay(1);
  tracker.mark_dead(1);
  EXPECT_FALSE(tracker.complete());
  EXPECT_EQ(tracker.round_done(2, 7, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.complete());
  // A dead shard's truncated relay stream is not a divergence.
  EXPECT_TRUE(tracker.verify_relay_counts());
  EXPECT_FALSE(tracker.diverged());
}

TEST(BarrierTracker, RespawnedShardReacksCurrentRound) {
  BarrierTracker tracker(2);
  tracker.begin_round(9, kDigest);
  EXPECT_EQ(tracker.round_done(0, 9, kDigest), BarrierTracker::Ack::kAccepted);
  tracker.mark_dead(1);
  EXPECT_TRUE(tracker.complete());
  tracker.mark_alive(1);
  EXPECT_FALSE(tracker.complete());  // back to owing an ack
  EXPECT_EQ(tracker.round_done(1, 9, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.complete());
  EXPECT_FALSE(tracker.diverged());
}

TEST(BarrierTracker, DigestMismatchIsStickyDivergence) {
  BarrierTracker tracker(2);
  tracker.begin_round(3, kDigest);
  EXPECT_EQ(tracker.round_done(0, 3, kDigest + 1),
            BarrierTracker::Ack::kDigestMismatch);
  EXPECT_TRUE(tracker.diverged());
  tracker.begin_round(4, kDigest);  // divergence survives re-arming
  EXPECT_TRUE(tracker.diverged());
}

TEST(BarrierTracker, FutureRoundAckIsDivergence) {
  BarrierTracker tracker(2);
  tracker.begin_round(3, kDigest);
  EXPECT_EQ(tracker.round_done(0, 5, kDigest), BarrierTracker::Ack::kWrongRound);
  EXPECT_TRUE(tracker.diverged());
}

TEST(BarrierTracker, StaleAckIsIgnored) {
  BarrierTracker tracker(2);
  tracker.begin_round(3, kDigest);
  EXPECT_EQ(tracker.round_done(0, 2, kDigest), BarrierTracker::Ack::kStale);
  EXPECT_FALSE(tracker.complete());
  EXPECT_FALSE(tracker.diverged());
}

TEST(BarrierTracker, RelayCountMismatchDiverges) {
  BarrierTracker tracker(2);
  tracker.begin_round(1, kDigest);
  tracker.count_relay(0);
  tracker.claim_relays(0, 2);  // ack claims 2, only 1 arrived
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_EQ(tracker.round_done(1, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.complete());
  EXPECT_FALSE(tracker.verify_relay_counts());
  EXPECT_TRUE(tracker.diverged());
}

TEST(BarrierTracker, RelayBookkeepingResetsEachRound) {
  BarrierTracker tracker(1);
  tracker.begin_round(1, kDigest);
  tracker.count_relay(0);
  tracker.claim_relays(0, 1);
  EXPECT_EQ(tracker.round_done(0, 1, kDigest), BarrierTracker::Ack::kAccepted);
  EXPECT_TRUE(tracker.verify_relay_counts());
  tracker.begin_round(2, kDigest);
  EXPECT_EQ(tracker.round_done(0, 2, kDigest), BarrierTracker::Ack::kAccepted);
  // No relays this round, no stale counts from round 1.
  EXPECT_TRUE(tracker.verify_relay_counts());
  EXPECT_FALSE(tracker.diverged());
}

}  // namespace
}  // namespace ssps::proc
