#!/usr/bin/env python3
"""CI perf-regression gate: compare BENCH_*.json against committed baselines.

Usage:
    bench_compare.py --baseline-dir bench/baselines --result-dir build \
        [--tolerance 0.15] [--throughput-tolerance 0.15]

For every BENCH_<name>.json present in the baseline directory, the matching
result file must exist and every gated metric must not REGRESS by more than
the tolerance (improvements never fail the gate). Metrics are matched per
series row by their identifying keys (n, class, scheduler, ...); rows
without a "scheduler" key are round-scheduler rows.

Gated metrics:
  deterministic (exact replay per seed; --tolerance, default 15%):
      lower is better:  bootstrap_rounds, rounds
      drift check:      msgs_per_round (both directions: the steady-state
                        maintenance traffic is a protocol property)
      drift check:      latency_p50/p99/p999/max (both directions: delivery
                        latency in rounds is bit-deterministic per seed, so
                        any drift is a protocol change to acknowledge)
      drift check:      recovery_seconds (both directions: virtual seconds
                        for crash-recovered nodes to re-stabilize under the
                        chaos-churn fault mix — deterministic per seed)
  throughput (wall-clock; --throughput-tolerance, default 15%):
      higher is better: rounds_per_sec, msgs_per_sec

Silent-drop guard: a numeric metric — or a whole series row — the current
run emits but the baseline lacks fails the gate. Without it, refreshing
baselines from a filtered or truncated run (or growing a bench without
refreshing) would silently stop gating that metric or row forever.

Refreshing baselines after an intended change:
    cd build && ./bench_simcore --benchmark_filter=NONE \
             && ./bench_convergence --benchmark_filter=NONE
    cp build/BENCH_simcore.json build/BENCH_convergence.json bench/baselines/
"""

import argparse
import json
import pathlib
import sys

LOWER_IS_BETTER = {"bootstrap_rounds", "rounds"}
HIGHER_IS_BETTER = {"rounds_per_sec", "msgs_per_sec"}
BOTH_DIRECTIONS = {"msgs_per_round", "latency_p50", "latency_p99",
                   "latency_p999", "latency_max", "recovery_seconds"}
IDENTIFYING_KEYS = ("n", "threads", "class", "name", "scheduler")


def row_key(row):
    """Identity of one series row. Rows written before the timed scheduler
    existed carry no "scheduler" key; they are round-scheduler rows, so the
    key normalizes the absence to "rounds" — old baselines keep matching
    new results without a refresh."""
    key = [(k, row[k]) for k in IDENTIFYING_KEYS if k in row]
    if "scheduler" not in row:
        key.append(("scheduler", "rounds"))
    return tuple(key)


def iter_series(doc):
    """Yields (series_name, row_dict) for every list-of-objects entry."""
    for key, value in doc.items():
        if isinstance(value, list):
            for row in value:
                if isinstance(row, dict):
                    yield key, row


def is_numeric_metric(name, value):
    if name in IDENTIFYING_KEYS or name == "ok":
        return False
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_rows(where, base, got, tol, thr_tol, failures):
    # Silent-drop guard: every numeric metric the run emits must exist in
    # the baseline row, or the baseline can no longer vouch for it.
    for metric, value in got.items():
        if is_numeric_metric(metric, value) and metric not in base:
            failures.append(
                f"{where}: baseline lacks metric '{metric}' that the current "
                f"run emits (refresh bench/baselines/ from a full run)")
    for metric, base_value in base.items():
        if not is_numeric_metric(metric, base_value):
            continue
        if metric not in LOWER_IS_BETTER | HIGHER_IS_BETTER | BOTH_DIRECTIONS:
            continue
        if metric not in got:
            failures.append(f"{where}: metric '{metric}' missing from results")
            continue
        value = got[metric]
        if base_value == 0:
            continue
        ratio = value / base_value
        tolerance = thr_tol if metric in HIGHER_IS_BETTER else tol
        if metric in LOWER_IS_BETTER and ratio > 1 + tolerance:
            failures.append(
                f"{where}: {metric} regressed {base_value} -> {value} "
                f"(+{(ratio - 1) * 100:.1f}% > {tolerance * 100:.0f}%)")
        elif metric in HIGHER_IS_BETTER and ratio < 1 - tolerance:
            failures.append(
                f"{where}: {metric} regressed {base_value:.0f} -> {value:.0f} "
                f"(-{(1 - ratio) * 100:.1f}% > {tolerance * 100:.0f}%)")
        elif metric in BOTH_DIRECTIONS and abs(ratio - 1) > tolerance:
            failures.append(
                f"{where}: {metric} drifted {base_value} -> {value} "
                f"(>{tolerance * 100:.0f}%; deterministic per seed — an intended "
                f"protocol change must refresh bench/baselines/)")


def compare_file(baseline_path, result_path, tol, thr_tol, failures):
    with open(baseline_path) as f:
        base_doc = json.load(f)
    with open(result_path) as f:
        got_doc = json.load(f)
    got_index = {}
    for series, row in iter_series(got_doc):
        got_index[(series, row_key(row))] = row
    base_keys = set()
    compared = 0
    for series, row in iter_series(base_doc):
        base_keys.add((series, row_key(row)))
        where = f"{baseline_path.name}:{series}{list(row_key(row))}"
        got = got_index.get((series, row_key(row)))
        if got is None:
            failures.append(f"{where}: row missing from results")
            continue
        compare_rows(where, row, got, tol, thr_tol, failures)
        compared += 1
    # Row-level silent-drop guard: a row the run emits that the baseline
    # never gates (e.g. a bench extended to a new n without a refresh).
    for (series, key) in got_index:
        if (series, key) not in base_keys:
            failures.append(
                f"{baseline_path.name}:{series}{list(key)}: row missing from "
                f"baseline (refresh bench/baselines/ to gate it)")
    return compared


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True, type=pathlib.Path)
    parser.add_argument("--result-dir", required=True, type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fraction for deterministic metrics")
    parser.add_argument("--throughput-tolerance", type=float, default=0.15,
                        help="allowed regression fraction for wall-clock metrics")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_compare: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    total = 0
    for baseline in baselines:
        result = args.result_dir / baseline.name
        if not result.exists():
            failures.append(f"{baseline.name}: result file missing in {args.result_dir}")
            continue
        total += compare_file(baseline, result, args.tolerance,
                              args.throughput_tolerance, failures)

    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    print(f"bench_compare: {total} rows compared across {len(baselines)} files, "
          f"{len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
