// ssps_sweep — multi-seed stabilization sweep.
//
// Runs the oracle-checked builtin scenarios (scrambled-start variants by
// default) across many seeds and reports every seed whose run fails to
// converge or leaves post-convergence oracle violations. Flaky
// stabilization bugs show up as a deterministic (scenario, seed) pair to
// replay under ssps_run.
//
//   $ ssps_sweep                                   # all builtins x 32 seeds
//   $ ssps_sweep --seeds 8 --nodes 16              # CI smoke shape
//   $ ssps_sweep --scenarios steady,churn-wave --no-scramble
//   $ ssps_sweep --out sweep.json
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "cli_util.hpp"
#include "scenario/builtin.hpp"
#include "scenario/execution.hpp"
#include "scenario/runner.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_sweep [--scenarios <a,b,...>] [--seeds <n>]\n"
               "                  [--base-seed <u64>] [--nodes <n>] [--threads <n>]\n"
               "                  [--timed] [--loss <p>] [--latency-profile <name>]\n"
               "                  [--no-scramble] [--no-oracle] [--out <file>]\n"
               "                  [--verbose]\n"
               "\n"
               "Runs every selected scenario across `seeds` consecutive seeds and\n"
               "fails (exit 1) if any run does not converge or reports oracle\n"
               "violations after convergence.\n"
               "\n"
               "options:\n"
               "  --scenarios <csv>  comma-separated builtin names (default: all)\n"
               "  --seeds <n>        seeds per scenario (default 32)\n"
               "  --base-seed <u64>  first seed (default 1)\n"
               "  --nodes <n>        client population size (default 12)\n"
               "  --threads <n>      round-scheduler workers per run (default 1;\n"
               "                     results are identical for any value)\n"
               "  --timed            run every selected scenario under the\n"
               "                     event-driven timed scheduler (virtual clock,\n"
               "                     per-link latency). Requires --threads 1\n"
               "  --loss <p>         drop each message with probability p in [0,1)\n"
               "                     on every link (implies --timed)\n"
               "  --latency-profile <name>\n"
               "                     per-link latency model (implies --timed):\n"
               "                     default, lan, wan, geo — same profiles as\n"
               "                     ssps_run\n"
               "  --no-scramble      run the plain variants (default: scrambled)\n"
               "  --no-oracle        skip the invariant oracle (convergence only)\n"
               "  --out <file>       write the sweep matrix as JSON to <file>\n"
               "  --verbose          one line per run instead of per scenario\n");
}

using ssps::cli::parse_u64;
using ssps::cli::split_csv;

struct RunResult {
  std::uint64_t seed = 0;
  /// Every convergence wait succeeded, oracle-certified when enabled.
  bool converged = true;
  /// Violations observed by any oracle sweep (diagnostic: names the
  /// invariant a diverged run was stuck on).
  std::size_t oracle_violations = 0;
  std::size_t rounds = 0;
  std::string first_detail;

  bool failed() const { return !converged; }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenarios = ssps::scenario::builtin_names();
  std::uint64_t seeds = 32;
  std::uint64_t base_seed = 1;
  std::uint64_t nodes = 12;
  std::uint64_t threads = 1;
  bool scramble = true;
  bool oracle = true;
  bool verbose = false;
  bool timed = false;
  double loss = -1.0;  // < 0 = unset
  std::string latency_profile;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--scenarios") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      scenarios = split_csv(v);
      for (const std::string& name : scenarios) {
        if (!ssps::scenario::is_builtin(name)) {
          std::fprintf(stderr, "ssps_sweep: unknown scenario '%s'\n", name.c_str());
          return 2;
        }
      }
    } else if (arg == "--seeds") {
      if (!parse_u64(value(), seeds) || seeds == 0) {
        std::fprintf(stderr, "ssps_sweep: --seeds expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--base-seed") {
      if (!parse_u64(value(), base_seed)) {
        std::fprintf(stderr, "ssps_sweep: --base-seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), nodes) || nodes == 0) {
        std::fprintf(stderr, "ssps_sweep: --nodes expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_u64(value(), threads) || threads == 0 || threads > 256) {
        std::fprintf(stderr, "ssps_sweep: --threads expects 1..256\n");
        return 2;
      }
    } else if (arg == "--timed") {
      timed = true;
    } else if (arg == "--loss") {
      if (!ssps::cli::parse_double(value(), loss) || loss < 0.0 || loss >= 1.0) {
        std::fprintf(stderr, "ssps_sweep: --loss expects a probability in [0,1)\n");
        return 2;
      }
      timed = true;
    } else if (arg == "--latency-profile") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      latency_profile = v;
      timed = true;
    } else if (arg == "--no-scramble") {
      scramble = false;
    } else if (arg == "--no-oracle") {
      oracle = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      out_path = v;
    } else {
      std::fprintf(stderr, "ssps_sweep: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (scenarios.empty()) {
    std::fprintf(stderr, "ssps_sweep: no scenarios selected\n");
    return 2;
  }

  // The requested execution shape, validated once through the library's
  // flag-combination rules (scenario/execution.hpp) before any run.
  ssps::scenario::ExecutionSpec exec;
  exec.threads = static_cast<unsigned>(threads);
  if (timed) exec.scheduler = ssps::scenario::Scheduler::kTimed;
  if (!latency_profile.empty() &&
      !ssps::scenario::apply_latency_profile(exec, latency_profile)) {
    std::fprintf(stderr,
                 "ssps_sweep: unknown latency profile '%s' "
                 "(default, lan, wan, geo)\n",
                 latency_profile.c_str());
    return 2;
  }
  if (const auto problem = exec.validate()) {
    std::fprintf(stderr, "ssps_sweep: %s\n", problem->c_str());
    return 2;
  }
  if (loss >= 0.0) {
    exec.timed.local.loss = loss;
    exec.timed.remote.loss = loss;
  }

  ssps::scenario::Json matrix = ssps::scenario::Json::object();
  std::size_t failures = 0;

  for (const std::string& name : scenarios) {
    std::vector<RunResult> results;
    std::size_t worst_rounds = 0;
    std::uint64_t worst_seed = base_seed;

    for (std::uint64_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = base_seed + s;
      ssps::scenario::ScenarioSpec spec = ssps::scenario::builtin_scenario(
          name, seed, static_cast<std::size_t>(nodes));
      if (scramble) spec = ssps::scenario::scrambled_variant(std::move(spec));
      // Override the variant's default: --no-oracle means convergence only,
      // even for scrambled runs.
      spec.oracle = oracle;
      spec.exec.threads = exec.threads;
      if (timed) {
        spec.exec.scheduler = ssps::scenario::Scheduler::kTimed;
        // A named profile replaces the builtin's link model; a bare
        // --timed keeps whatever the builtin configured.
        if (!latency_profile.empty()) spec.exec.timed = exec.timed;
        if (loss >= 0.0) {
          spec.exec.timed.local.loss = loss;
          spec.exec.timed.remote.loss = loss;
        }
      }

      ssps::scenario::ScenarioRunner runner(std::move(spec));
      const ssps::scenario::ScenarioReport& report = runner.run();

      RunResult result;
      result.seed = seed;
      result.converged = report.ok && report.oracle_ok;
      result.rounds = report.total_rounds;
      // Harvest which invariants were still violated, from every oracle
      // sweep — on a diverged run the end-of-phase summary is exactly the
      // diagnostic naming the failing invariant.
      for (const ssps::scenario::PhaseReport& p : report.phases) {
        if (p.oracle && p.oracle->violations > 0) {
          result.oracle_violations += p.oracle->violations;
          if (result.first_detail.empty() && !p.oracle->details.empty()) {
            result.first_detail = p.oracle->details.front();
          }
        }
      }
      if (result.rounds >= worst_rounds) {
        worst_rounds = result.rounds;
        worst_seed = seed;
      }
      if (result.failed()) failures += 1;
      if (verbose || result.failed()) {
        std::printf("%-18s seed %-5llu %s rounds %-6zu oracle violations %zu%s%s\n",
                    name.c_str(), static_cast<unsigned long long>(result.seed),
                    result.converged ? "converged " : "DIVERGED  ", result.rounds,
                    result.oracle_violations,
                    result.first_detail.empty() ? "" : "  first: ",
                    result.first_detail.c_str());
      }
      results.push_back(std::move(result));
    }

    std::size_t ok_count = 0;
    for (const RunResult& r : results) ok_count += r.failed() ? 0 : 1;
    std::printf("%-18s %zu/%zu seeds clean, worst total rounds %zu (seed %llu)\n",
                name.c_str(), ok_count, results.size(), worst_rounds,
                static_cast<unsigned long long>(worst_seed));

    ssps::scenario::Json runs = ssps::scenario::Json::array();
    for (const RunResult& r : results) {
      ssps::scenario::Json entry = ssps::scenario::Json::object();
      entry["seed"] = r.seed;
      entry["converged"] = r.converged;
      entry["oracle_violations"] = static_cast<std::uint64_t>(r.oracle_violations);
      entry["rounds"] = static_cast<std::uint64_t>(r.rounds);
      if (!r.first_detail.empty()) entry["first_detail"] = r.first_detail;
      runs.push_back(std::move(entry));
    }
    matrix[name] = std::move(runs);
  }

  if (!out_path.empty()) {
    ssps::scenario::Json doc = ssps::scenario::Json::object();
    doc["nodes"] = nodes;
    doc["seeds"] = seeds;
    doc["base_seed"] = base_seed;
    doc["threads"] = threads;
    doc["scramble"] = scramble;
    doc["oracle"] = oracle;
    doc["failures"] = static_cast<std::uint64_t>(failures);
    doc["scenarios"] = std::move(matrix);
    if (!ssps::scenario::write_json_file(out_path, doc)) {
      std::fprintf(stderr, "ssps_sweep: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "ssps_sweep: %zu run(s) failed\n", failures);
    return 1;
  }
  return 0;
}
