// ssps_chaos — fault-schedule campaign over the corrupting, lossy,
// crash-recovering timed network.
//
// Sweeps a grid of loss probability x corruption probability x named
// fault schedule x seed, running the chaos-churn scenario (crash waves,
// snapshot-based recoveries, corrupted bursts) under each cell and
// asserting every run ends oracle-green within a virtual-time budget.
// Every failing cell prints (and records in the JSON report) the exact
// ssps_chaos invocation that replays just that run — the campaign is
// deterministic, so the replay reproduces the failure bit-for-bit.
//
//   $ ssps_chaos                                    # default grid
//   $ ssps_chaos --seeds 3 --nodes 16               # CI nightly shape
//   $ ssps_chaos --schedules split --loss 0.1 --corrupt 0.05
//   $ ssps_chaos --out chaos.json
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "cli_util.hpp"
#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_chaos [--schedules <a,b,...>] [--loss <csv>]\n"
               "                  [--corrupt <csv>] [--seeds <n>]\n"
               "                  [--base-seed <u64>] [--nodes <n>]\n"
               "                  [--budget <virtual-seconds>] [--no-scramble]\n"
               "                  [--out <file>] [--verbose]\n"
               "\n"
               "Runs the chaos-churn scenario across a fault grid and fails\n"
               "(exit 1) if any run diverges, reports oracle violations, or\n"
               "overruns the virtual-time budget.\n"
               "\n"
               "schedules:\n"
               "  churn       crash wave + snapshot recoveries (the builtin)\n"
               "  no-recover  crashed subscribers stay dead; the ring must\n"
               "              close over the holes without them\n"
               "  split       two zones; the crash wave runs under a 10\n"
               "              virtual-second inter-zone partition\n"
               "\n"
               "options:\n"
               "  --schedules <csv>  schedules to run (default: all three)\n"
               "  --loss <csv>       loss probabilities (default 0,0.05)\n"
               "  --corrupt <csv>    corruption probabilities (default 0,0.02)\n"
               "  --seeds <n>        seeds per cell (default 5)\n"
               "  --base-seed <u64>  first seed (default 1)\n"
               "  --nodes <n>        subscriber population (default 16)\n"
               "  --budget <n>       virtual-second ceiling per run (default 600)\n"
               "  --no-scramble      start converged instead of from arbitrary\n"
               "                     scrambled state\n"
               "  --out <file>       write the campaign matrix as JSON to <file>\n"
               "  --verbose          one line per run instead of per cell\n");
}

using ssps::cli::parse_double;
using ssps::cli::parse_u64;
using ssps::cli::split_csv;

const char* const kAllSchedules[] = {"churn", "no-recover", "split"};

bool is_schedule(const std::string& name) {
  for (const char* s : kAllSchedules) {
    if (name == s) return true;
  }
  return false;
}

/// Applies one named fault schedule to a chaos-churn spec.
void apply_schedule(ssps::scenario::ScenarioSpec& spec, const std::string& name) {
  if (name == "no-recover") {
    for (ssps::scenario::Phase& phase : spec.phases) phase.churn.recoveries = 0;
    return;
  }
  if (name == "split") {
    // Two zones with identical link behavior, cut from each other for the
    // first 10 virtual seconds of the crash wave: crashes, the failure
    // detector's reaction and the repair traffic all happen while half the
    // ring is unreachable, and stabilization must complete after the heal.
    spec.exec.timed.zones = 2;
    spec.exec.timed.remote = spec.exec.timed.local;
    for (ssps::scenario::Phase& phase : spec.phases) {
      if (phase.name != "crash-wave") continue;
      ssps::sim::PartitionWindow cut;
      cut.from_s = 0;
      cut.to_s = 10;
      cut.zone_a = 0;
      cut.zone_b = 1;
      phase.partitions.push_back(cut);
    }
    return;
  }
  // "churn": the builtin as constructed.
}

struct RunResult {
  std::uint64_t seed = 0;
  bool converged = true;
  bool within_budget = true;
  std::size_t virtual_s = 0;  ///< total virtual seconds (timed intervals)
  std::size_t oracle_violations = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t rejected = 0;
  std::size_t recovered = 0;
  std::size_t recovered_clean = 0;
  std::string first_detail;

  bool failed() const { return !converged || !within_budget; }
};

std::string replay_command(const std::string& schedule, double loss, double corrupt,
                           std::uint64_t seed, std::uint64_t nodes, bool scramble) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ssps_chaos --schedules %s --loss %g --corrupt %g "
                "--seeds 1 --base-seed %llu --nodes %llu%s",
                schedule.c_str(), loss, corrupt,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(nodes),
                scramble ? "" : " --no-scramble");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> schedules(kAllSchedules,
                                     kAllSchedules + std::size(kAllSchedules));
  std::vector<double> losses = {0.0, 0.05};
  std::vector<double> corrupts = {0.0, 0.02};
  std::uint64_t seeds = 5;
  std::uint64_t base_seed = 1;
  std::uint64_t nodes = 16;
  std::uint64_t budget_s = 600;
  bool scramble = true;
  bool verbose = false;
  std::string out_path;

  auto parse_prob_list = [](const char* v, std::vector<double>& out) {
    if (v == nullptr) return false;
    out.clear();
    for (const std::string& item : split_csv(v)) {
      double p = 0.0;
      if (!parse_double(item.c_str(), p) || p < 0.0 || p >= 1.0) return false;
      out.push_back(p);
    }
    return !out.empty();
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--schedules") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      schedules = split_csv(v);
      for (const std::string& name : schedules) {
        if (!is_schedule(name)) {
          std::fprintf(stderr, "ssps_chaos: unknown schedule '%s'\n", name.c_str());
          return 2;
        }
      }
    } else if (arg == "--loss") {
      if (!parse_prob_list(value(), losses)) {
        std::fprintf(stderr, "ssps_chaos: --loss expects probabilities in [0,1)\n");
        return 2;
      }
    } else if (arg == "--corrupt") {
      if (!parse_prob_list(value(), corrupts)) {
        std::fprintf(stderr, "ssps_chaos: --corrupt expects probabilities in [0,1)\n");
        return 2;
      }
    } else if (arg == "--seeds") {
      if (!parse_u64(value(), seeds) || seeds == 0) {
        std::fprintf(stderr, "ssps_chaos: --seeds expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--base-seed") {
      if (!parse_u64(value(), base_seed)) {
        std::fprintf(stderr, "ssps_chaos: --base-seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), nodes) || nodes == 0) {
        std::fprintf(stderr, "ssps_chaos: --nodes expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--budget") {
      if (!parse_u64(value(), budget_s) || budget_s == 0) {
        std::fprintf(stderr, "ssps_chaos: --budget expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--no-scramble") {
      scramble = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      out_path = v;
    } else {
      std::fprintf(stderr, "ssps_chaos: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (schedules.empty()) {
    std::fprintf(stderr, "ssps_chaos: no schedules selected\n");
    return 2;
  }

  ssps::scenario::Json cells = ssps::scenario::Json::array();
  std::size_t failures = 0;
  std::vector<std::string> replays;

  for (const std::string& schedule : schedules) {
    for (const double loss : losses) {
      for (const double corrupt : corrupts) {
        std::vector<RunResult> results;
        std::size_t worst_s = 0;

        for (std::uint64_t s = 0; s < seeds; ++s) {
          const std::uint64_t seed = base_seed + s;
          ssps::scenario::ScenarioSpec spec = ssps::scenario::builtin_scenario(
              "chaos-churn", seed, static_cast<std::size_t>(nodes));
          if (scramble) spec = ssps::scenario::scrambled_variant(std::move(spec));
          spec.exec.timed.local.loss = loss;
          spec.exec.timed.remote.loss = loss;
          spec.exec.timed.local.corrupt = corrupt;
          spec.exec.timed.remote.corrupt = corrupt;
          apply_schedule(spec, schedule);

          ssps::scenario::ScenarioRunner runner(std::move(spec));
          const ssps::scenario::ScenarioReport& report = runner.run();

          RunResult result;
          result.seed = seed;
          result.converged = report.ok && report.oracle_ok;
          result.virtual_s = report.total_rounds;
          result.within_budget = result.virtual_s <= budget_s;
          for (const ssps::scenario::PhaseReport& p : report.phases) {
            result.corrupted += p.corrupted;
            result.rejected += p.rejected;
            result.recovered += p.recovered;
            result.recovered_clean += p.recovered_clean;
            if (p.oracle && p.oracle->violations > 0) {
              result.oracle_violations += p.oracle->violations;
              if (result.first_detail.empty() && !p.oracle->details.empty()) {
                result.first_detail = p.oracle->details.front();
              }
            }
          }
          worst_s = std::max(worst_s, result.virtual_s);

          if (result.failed()) {
            failures += 1;
            replays.push_back(
                replay_command(schedule, loss, corrupt, seed, nodes, scramble));
          }
          if (verbose || result.failed()) {
            std::printf(
                "%-10s loss %-5g corrupt %-5g seed %-5llu %s %4zus  "
                "corrupted %llu rejected %llu recovered %zu/%zu%s%s\n",
                schedule.c_str(), loss, corrupt,
                static_cast<unsigned long long>(seed),
                result.failed() ? "FAILED   " : "converged", result.virtual_s,
                static_cast<unsigned long long>(result.corrupted),
                static_cast<unsigned long long>(result.rejected),
                result.recovered_clean, result.recovered,
                result.first_detail.empty() ? "" : "  first: ",
                result.first_detail.c_str());
          }
          results.push_back(std::move(result));
        }

        std::size_t ok_count = 0;
        for (const RunResult& r : results) ok_count += r.failed() ? 0 : 1;
        std::printf(
            "%-10s loss %-5g corrupt %-5g  %zu/%zu seeds clean, "
            "worst %zu virtual seconds\n",
            schedule.c_str(), loss, corrupt, ok_count, results.size(), worst_s);

        ssps::scenario::Json runs = ssps::scenario::Json::array();
        for (const RunResult& r : results) {
          ssps::scenario::Json entry = ssps::scenario::Json::object();
          entry["seed"] = r.seed;
          entry["converged"] = r.converged;
          entry["within_budget"] = r.within_budget;
          entry["virtual_seconds"] = static_cast<std::uint64_t>(r.virtual_s);
          entry["oracle_violations"] = static_cast<std::uint64_t>(r.oracle_violations);
          entry["corrupted"] = r.corrupted;
          entry["rejected"] = r.rejected;
          entry["recovered"] = static_cast<std::uint64_t>(r.recovered);
          entry["recovered_clean"] = static_cast<std::uint64_t>(r.recovered_clean);
          if (!r.first_detail.empty()) entry["first_detail"] = r.first_detail;
          if (r.failed()) {
            entry["replay"] = replay_command(schedule, loss, corrupt, r.seed, nodes,
                                             scramble);
          }
          runs.push_back(std::move(entry));
        }
        ssps::scenario::Json cell = ssps::scenario::Json::object();
        cell["schedule"] = schedule;
        cell["loss"] = loss;
        cell["corrupt"] = corrupt;
        cell["runs"] = std::move(runs);
        cells.push_back(std::move(cell));
      }
    }
  }

  if (!out_path.empty()) {
    ssps::scenario::Json doc = ssps::scenario::Json::object();
    doc["tool"] = std::string("ssps_chaos");
    doc["nodes"] = nodes;
    doc["seeds"] = seeds;
    doc["base_seed"] = base_seed;
    doc["budget_seconds"] = budget_s;
    doc["scramble"] = scramble;
    doc["failures"] = static_cast<std::uint64_t>(failures);
    doc["cells"] = std::move(cells);
    if (!ssps::scenario::write_json_file(out_path, doc)) {
      std::fprintf(stderr, "ssps_chaos: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "ssps_chaos: %zu run(s) failed; replay with:\n", failures);
    for (const std::string& replay : replays) {
      std::fprintf(stderr, "  %s\n", replay.c_str());
    }
    return 1;
  }
  return 0;
}
