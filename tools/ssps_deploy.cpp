// ssps_deploy — multi-process deployment orchestrator.
//
// Spawns a fleet of ssps_noded processes on localhost TCP, runs the named
// scenario in barrier lockstep across them, and prints the same JSON
// report ssps_run would — byte-identical for the same (scenario, seed,
// nodes, flags) — plus flat "deploy_*" keys (process count, wall clock,
// relay traffic) that `grep -v '\"deploy_'` strips for differential
// comparison:
//
//   $ ssps_deploy --noded ./ssps_noded --scenario steady --nodes 64
//                 --procs 4 --out live.json
//   $ ssps_run --scenario steady --nodes 64 --out sim.json
//   $ diff <(grep -v '"deploy_' live.json) sim.json
//
// --diff-sim runs that comparison in-process; --kill-shard/--kill-round
// SIGKILLs one daemon mid-run and respawns it through replay plus the
// disk-snapshot recovery path.
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "proc/coordinator.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_deploy --noded <path> --scenario <name> [--seed <u64>]\n"
               "                   [--nodes <n>] [--procs <n>] [--scramble]\n"
               "                   [--oracle] [--snapshot-every <r>]\n"
               "                   [--snapshot-dir <dir>] [--kill-shard <i>]\n"
               "                   [--kill-round <u>] [--round-timeout <ms>]\n"
               "                   [--dup-acks] [--diff-sim] [--out <file>]\n"
               "                   [--quiet]\n"
               "\n"
               "Runs a built-in scenario as real processes: one coordinator (this\n"
               "tool) plus --procs ssps_noded daemons over localhost TCP, in\n"
               "deterministic lockstep with byte-verified cross-shard relays.\n"
               "The report matches ssps_run's byte-for-byte apart from the added\n"
               "deploy_* keys.\n"
               "\n"
               "options:\n"
               "  --noded <path>         ssps_noded binary to spawn\n"
               "  --scenario <name>      built-in scenario (round-scheduled only)\n"
               "  --seed <u64>           simulation seed (default 1)\n"
               "  --nodes <n>            client population (default: per scenario)\n"
               "  --procs <n>            daemon count (default 2)\n"
               "  --scramble             scrambled-start variant (implies oracle)\n"
               "  --oracle               run the invariant oracle at phase ends\n"
               "  --snapshot-every <r>   checkpoint cadence override (needed for\n"
               "                         kill recovery; report-neutral)\n"
               "  --snapshot-dir <dir>   daemon checkpoint directory (required\n"
               "                         with --kill-shard)\n"
               "  --kill-shard <i>       SIGKILL shard <i>'s daemon mid-run...\n"
               "  --kill-round <u>       ...at the barrier for unit <u>, then\n"
               "                         respawn it through replay + disk-\n"
               "                         snapshot recovery (single-topic only)\n"
               "  --round-timeout <ms>   barrier deadline (default 120000)\n"
               "  --dup-acks             daemons ack every barrier twice (test)\n"
               "  --diff-sim             also run the in-process simulator and\n"
               "                         byte-compare the reports\n"
               "  --out <file>           additionally write the report to <file>\n"
               "  --quiet                suppress stdout report (use with --out)\n");
}

using ssps::cli::parse_u64;

}  // namespace

int main(int argc, char** argv) {
  ssps::proc::DeployOptions opts;
  std::uint64_t procs = 2;
  std::uint64_t timeout_ms = 120000;
  std::uint64_t kill_shard = 0;
  bool have_kill_shard = false;
  bool have_scenario = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--noded") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.noded_path = v;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.choice.name = v;
      have_scenario = true;
    } else if (arg == "--seed") {
      if (!parse_u64(value(), opts.choice.seed)) {
        std::fprintf(stderr, "ssps_deploy: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), opts.choice.nodes) || opts.choice.nodes == 0) {
        std::fprintf(stderr, "ssps_deploy: --nodes expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--procs") {
      if (!parse_u64(value(), procs) || procs == 0) {
        std::fprintf(stderr, "ssps_deploy: --procs expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--scramble") {
      opts.choice.scramble = true;
    } else if (arg == "--oracle") {
      opts.choice.oracle = true;
    } else if (arg == "--snapshot-every") {
      if (!parse_u64(value(), opts.choice.snapshot_every)) {
        std::fprintf(stderr,
                     "ssps_deploy: --snapshot-every expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--snapshot-dir") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.snapshot_dir = v;
    } else if (arg == "--kill-shard") {
      if (!parse_u64(value(), kill_shard)) {
        std::fprintf(stderr, "ssps_deploy: --kill-shard expects a shard index\n");
        return 2;
      }
      have_kill_shard = true;
    } else if (arg == "--kill-round") {
      if (!parse_u64(value(), opts.kill_round) || opts.kill_round == 0) {
        std::fprintf(stderr, "ssps_deploy: --kill-round expects a positive unit\n");
        return 2;
      }
    } else if (arg == "--round-timeout") {
      if (!parse_u64(value(), timeout_ms) || timeout_ms == 0) {
        std::fprintf(stderr, "ssps_deploy: --round-timeout expects milliseconds\n");
        return 2;
      }
    } else if (arg == "--dup-acks") {
      opts.dup_acks = true;
    } else if (arg == "--diff-sim") {
      opts.diff_sim = true;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.out_path = v;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else {
      std::fprintf(stderr, "ssps_deploy: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!have_scenario || opts.noded_path.empty()) {
    usage(stderr);
    return 2;
  }
  opts.procs = static_cast<std::size_t>(procs);
  opts.round_timeout_ms = static_cast<int>(timeout_ms);
  if (have_kill_shard) {
    opts.kill_shard = static_cast<int>(kill_shard);
    if (opts.kill_round == 0) {
      std::fprintf(stderr, "ssps_deploy: --kill-shard needs --kill-round\n");
      return 2;
    }
    if (opts.snapshot_dir.empty()) {
      std::fprintf(stderr, "ssps_deploy: --kill-shard needs --snapshot-dir\n");
      return 2;
    }
  }
  return ssps::proc::run_deploy(opts);
}
