// ssps_run — scenario engine CLI.
//
// Runs one named scenario against the simulator and emits the JSON metrics
// report (convergence rounds, message/byte counts, per-supervisor load,
// per-topic fan-out) on stdout. Reports are bit-deterministic per
// (scenario, seed, nodes).
//
//   $ ssps_run --scenario churn-wave --seed 7 --nodes 64
//   $ ssps_run --scenario zipf-topics --nodes 128 --out report.json
//   $ ssps_run --scenario steady --scramble --oracle   # stabilization drill
//   $ ssps_run --list
#include <cstdio>
#include <string>
#include <utility>

#include "cli_util.hpp"
#include "scenario/builtin.hpp"
#include "scenario/execution.hpp"
#include "scenario/runner.hpp"
#include "sim/trace.hpp"
#include "telemetry/perfetto.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_run --scenario <name> [--seed <u64>] [--nodes <n>]\n"
               "                [--threads <n>] [--scramble] [--oracle]\n"
               "                [--timed] [--loss <p>] [--latency-profile <name>]\n"
               "                [--out <file>] [--trace <file>] [--quiet]\n"
               "       ssps_run --list\n"
               "\n"
               "Runs a built-in scenario and prints its JSON metrics report.\n"
               "Reports are bit-deterministic per (scenario, seed, nodes, flags).\n"
               "\n"
               "options:\n"
               "  --scenario <name>  scenario to run (see --list)\n"
               "  --seed <u64>       simulation seed (default 1)\n"
               "  --nodes <n>        client population size (default: per scenario;\n"
               "                     32 for classic builtins, 1024 for scale-*)\n"
               "  --threads <n>      round-scheduler workers (default 1). Any value\n"
               "                     yields the same report apart from the recorded\n"
               "                     \"threads\" field; only wall-clock changes\n"
               "  --scramble         scrambled-start variant: inject an arbitrary\n"
               "                     state after bootstrap and re-converge\n"
               "                     (implies --oracle)\n"
               "  --oracle           run the legal-state invariant oracle at every\n"
               "                     phase end; exit 1 on post-convergence\n"
               "                     violations\n"
               "  --timed            run under the event-driven timed scheduler\n"
               "                     (virtual clock, per-link latency; see\n"
               "                     --latency-profile). With the default profile\n"
               "                     the report matches the round scheduler's\n"
               "                     byte-for-byte minus the clock/unit labels.\n"
               "                     Requires --threads 1\n"
               "  --loss <p>         drop each message with probability p in [0,1)\n"
               "                     on every link (implies --timed)\n"
               "  --latency-profile <name>\n"
               "                     per-link latency model (implies --timed):\n"
               "                       default  constant 1 s (round-equivalent)\n"
               "                       lan      uniform 1-5 ms, one zone\n"
               "                       wan      lognormal ~80 ms median, one zone\n"
               "                       geo      3 zones: 50 ms local, 0.1-0.8 s\n"
               "                                cross-zone\n"
               "  --out <file>       additionally write the report to <file>\n"
               "  --trace <file>     record every send/deliver and export a\n"
               "                     Chrome/Perfetto trace_event JSON to <file>\n"
               "                     (open in ui.perfetto.dev; requires\n"
               "                     --threads 1)\n"
               "  --quiet            suppress stdout report (use with --out)\n"
               "  --list             list built-in scenarios and exit\n");
}

using ssps::cli::parse_u64;

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::uint64_t seed = 1;
  std::uint64_t nodes = 0;  // 0 = scenario default
  std::uint64_t threads = 1;
  std::string out_path;
  std::string trace_path;
  bool quiet = false;
  bool scramble = false;
  bool oracle = false;
  bool timed = false;
  double loss = -1.0;  // < 0 = unset
  std::string latency_profile;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list") {
      for (const std::string& name : ssps::scenario::builtin_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      scenario = v;
    } else if (arg == "--seed") {
      if (!parse_u64(value(), seed)) {
        std::fprintf(stderr, "ssps_run: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), nodes) || nodes == 0) {
        std::fprintf(stderr, "ssps_run: --nodes expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_u64(value(), threads) || threads == 0 || threads > 256) {
        std::fprintf(stderr, "ssps_run: --threads expects 1..256\n");
        return 2;
      }
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      out_path = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      trace_path = v;
    } else if (arg == "--timed") {
      timed = true;
    } else if (arg == "--loss") {
      if (!ssps::cli::parse_double(value(), loss) || loss < 0.0 || loss >= 1.0) {
        std::fprintf(stderr, "ssps_run: --loss expects a probability in [0,1)\n");
        return 2;
      }
      timed = true;
    } else if (arg == "--latency-profile") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      latency_profile = v;
      timed = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--scramble") {
      scramble = true;
      oracle = true;
    } else if (arg == "--oracle") {
      oracle = true;
    } else {
      std::fprintf(stderr, "ssps_run: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (scenario.empty()) {
    usage(stderr);
    return 2;
  }
  if (!ssps::scenario::is_builtin(scenario)) {
    std::fprintf(stderr, "ssps_run: unknown scenario '%s'; try --list\n",
                 scenario.c_str());
    return 2;
  }

  // Flag-combination validation happens before any work: the requested
  // execution shape is built first, and a contradictory combination (the
  // library-level rules in scenario/execution.hpp) exits 2 without running
  // a single round.
  ssps::scenario::ExecutionSpec exec;
  exec.threads = static_cast<unsigned>(threads);
  exec.trace = !trace_path.empty();
  if (timed) exec.scheduler = ssps::scenario::Scheduler::kTimed;
  if (!latency_profile.empty() &&
      !ssps::scenario::apply_latency_profile(exec, latency_profile)) {
    std::fprintf(stderr,
                 "ssps_run: unknown latency profile '%s' "
                 "(default, lan, wan, geo)\n",
                 latency_profile.c_str());
    return 2;
  }
  if (const auto problem = exec.validate()) {
    std::fprintf(stderr, "ssps_run: %s\n", problem->c_str());
    return 2;
  }

  ssps::scenario::ScenarioSpec spec = ssps::scenario::builtin_scenario(
      scenario, seed, static_cast<std::size_t>(nodes));
  if (scramble) spec = ssps::scenario::scrambled_variant(std::move(spec));
  if (oracle) spec.oracle = true;
  spec.exec.threads = exec.threads;

  if (timed) {
    spec.exec.scheduler = ssps::scenario::Scheduler::kTimed;
    // A named profile replaces the builtin's link model; a bare --timed
    // keeps whatever the builtin configured (default TimedConfig for
    // round builtins forced timed by --timed).
    if (!latency_profile.empty()) spec.exec.timed = exec.timed;
    if (loss >= 0.0) {
      spec.exec.timed.local.loss = loss;
      spec.exec.timed.remote.loss = loss;
    }
  }

  ssps::scenario::ScenarioRunner runner(std::move(spec));
  // Unbounded in practice: big enough that no builtin run evicts events.
  ssps::sim::Trace trace(1u << 22);
  if (!trace_path.empty()) runner.net().attach_trace(&trace);
  const ssps::scenario::ScenarioReport& report = runner.run();
  if (!trace_path.empty() &&
      !ssps::telemetry::write_perfetto_file(trace_path, trace)) {
    std::fprintf(stderr, "ssps_run: cannot write '%s'\n", trace_path.c_str());
    return 1;
  }
  const ssps::scenario::Json doc = report.to_json();

  if (!quiet) std::fputs(doc.dump(2).c_str(), stdout);
  if (!out_path.empty() && !ssps::scenario::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "ssps_run: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  return report.ok && report.oracle_ok ? 0 : 1;
}
