// ssps_run — scenario engine CLI.
//
// Runs one named scenario against the simulator and emits the JSON metrics
// report (convergence rounds, message/byte counts, per-supervisor load,
// per-topic fan-out) on stdout. Reports are bit-deterministic per
// (scenario, seed, nodes).
//
//   $ ssps_run --scenario churn-wave --seed 7 --nodes 64
//   $ ssps_run --scenario zipf-topics --nodes 128 --out report.json
//   $ ssps_run --scenario steady --scramble --oracle   # stabilization drill
//   $ ssps_run --list
#include <cstdio>
#include <string>
#include <utility>

#include "cli_util.hpp"
#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"
#include "sim/trace.hpp"
#include "telemetry/perfetto.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_run --scenario <name> [--seed <u64>] [--nodes <n>]\n"
               "                [--threads <n>] [--scramble] [--oracle]\n"
               "                [--out <file>] [--trace <file>] [--quiet]\n"
               "       ssps_run --list\n"
               "\n"
               "Runs a built-in scenario and prints its JSON metrics report.\n"
               "Reports are bit-deterministic per (scenario, seed, nodes, flags).\n"
               "\n"
               "options:\n"
               "  --scenario <name>  scenario to run (see --list)\n"
               "  --seed <u64>       simulation seed (default 1)\n"
               "  --nodes <n>        client population size (default: per scenario;\n"
               "                     32 for classic builtins, 1024 for scale-*)\n"
               "  --threads <n>      round-scheduler workers (default 1). Any value\n"
               "                     yields the same report apart from the recorded\n"
               "                     \"threads\" field; only wall-clock changes\n"
               "  --scramble         scrambled-start variant: inject an arbitrary\n"
               "                     state after bootstrap and re-converge\n"
               "                     (implies --oracle)\n"
               "  --oracle           run the legal-state invariant oracle at every\n"
               "                     phase end; exit 1 on post-convergence\n"
               "                     violations\n"
               "  --out <file>       additionally write the report to <file>\n"
               "  --trace <file>     record every send/deliver and export a\n"
               "                     Chrome/Perfetto trace_event JSON to <file>\n"
               "                     (open in ui.perfetto.dev; requires\n"
               "                     --threads 1)\n"
               "  --quiet            suppress stdout report (use with --out)\n"
               "  --list             list built-in scenarios and exit\n");
}

using ssps::cli::parse_u64;

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::uint64_t seed = 1;
  std::uint64_t nodes = 0;  // 0 = scenario default
  std::uint64_t threads = 1;
  std::string out_path;
  std::string trace_path;
  bool quiet = false;
  bool scramble = false;
  bool oracle = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list") {
      for (const std::string& name : ssps::scenario::builtin_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      scenario = v;
    } else if (arg == "--seed") {
      if (!parse_u64(value(), seed)) {
        std::fprintf(stderr, "ssps_run: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), nodes) || nodes == 0) {
        std::fprintf(stderr, "ssps_run: --nodes expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_u64(value(), threads) || threads == 0 || threads > 256) {
        std::fprintf(stderr, "ssps_run: --threads expects 1..256\n");
        return 2;
      }
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      out_path = v;
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      trace_path = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--scramble") {
      scramble = true;
      oracle = true;
    } else if (arg == "--oracle") {
      oracle = true;
    } else {
      std::fprintf(stderr, "ssps_run: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (scenario.empty()) {
    usage(stderr);
    return 2;
  }
  if (!ssps::scenario::is_builtin(scenario)) {
    std::fprintf(stderr, "ssps_run: unknown scenario '%s'; try --list\n",
                 scenario.c_str());
    return 2;
  }

  if (!trace_path.empty() && threads != 1) {
    std::fprintf(stderr, "ssps_run: --trace requires --threads 1\n");
    return 2;
  }

  ssps::scenario::ScenarioSpec spec = ssps::scenario::builtin_scenario(
      scenario, seed, static_cast<std::size_t>(nodes));
  if (scramble) spec = ssps::scenario::scrambled_variant(std::move(spec));
  if (oracle) spec.oracle = true;
  spec.threads = static_cast<unsigned>(threads);

  ssps::scenario::ScenarioRunner runner(std::move(spec));
  // Unbounded in practice: big enough that no builtin run evicts events.
  ssps::sim::Trace trace(1u << 22);
  if (!trace_path.empty()) runner.net().attach_trace(&trace);
  const ssps::scenario::ScenarioReport& report = runner.run();
  if (!trace_path.empty() &&
      !ssps::telemetry::write_perfetto_file(trace_path, trace)) {
    std::fprintf(stderr, "ssps_run: cannot write '%s'\n", trace_path.c_str());
    return 1;
  }
  const ssps::scenario::Json doc = report.to_json();

  if (!quiet) std::fputs(doc.dump(2).c_str(), stdout);
  if (!out_path.empty() && !ssps::scenario::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "ssps_run: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  return report.ok && report.oracle_ok ? 0 : 1;
}
