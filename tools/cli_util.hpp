// Shared argument-parsing helpers for the ssps_* command-line tools.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace ssps::cli {

/// Parses a decimal unsigned integer. strtoull silently wraps negative
/// input ("-1" -> 2^64-1) and clamps overflow to ULLONG_MAX, so insist on
/// digits and check ERANGE.
inline bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text < '0' || *text > '9') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// Parses a decimal floating-point number (probabilities, seconds).
inline bool parse_double(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(text, &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// Splits "a,b,c" into {"a","b","c"}, dropping empty segments.
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace ssps::cli
