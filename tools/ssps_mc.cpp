// ssps_mc — exhaustive small-n interleaving model checker.
//
// From one scrambled small-n deployment, enumerates every delivery
// interleaving the round model admits (with sound partial-order
// reduction) and certifies that every schedule reaches a legal state
// within the round bound — or emits a replayable counterexample.
//
//   $ ssps_mc --nodes 3 --seed 7                      # certify one root
//   $ ssps_mc --nodes 4 --drop SetRight --out ce.json # seeded bug hunt
//   $ ssps_mc --replay ce.json                        # reproduce it
//
// Exit status: 0 = certified (or replay reproduced the violation),
// 1 = counterexample found (or replay failed to reproduce), 2 = usage.
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "mc/counterexample.hpp"
#include "mc/explorer.hpp"
#include "scenario/mc_certify.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: ssps_mc [--nodes <n>] [--seed <u64>] [--scramble-seed <u64>]\n"
      "               [--junk <n>] [--max-rounds <n>] [--drop <message>]\n"
      "               [--out <file>]\n"
      "       ssps_mc --replay <file>\n"
      "\n"
      "Exhaustively explores every delivery interleaving of a scrambled\n"
      "small-n deployment and certifies that each schedule reaches a legal\n"
      "state within the round bound. Exit 0 = certified, 1 =\n"
      "counterexample (written to --out when given), 2 = usage.\n"
      "\n"
      "options:\n"
      "  --nodes <n>          subscribers under the supervisor (default 3;\n"
      "                       n <= 6 stays exhaustively explorable)\n"
      "  --seed <u64>         construction seed (default 1)\n"
      "  --scramble-seed <u64>\n"
      "                       injector seed (default: derived from --seed\n"
      "                       like the sweep family's scrambled variants)\n"
      "  --junk <n>           junk messages injected into channels\n"
      "                       (default 2; each one multiplies the\n"
      "                       interleaving space)\n"
      "  --max-rounds <n>     depth bound in rounds (default 24)\n"
      "  --drop <message>     seeded mutation: silently drop deliveries of\n"
      "                       this message class (e.g. SetRight) — the\n"
      "                       checker should find a counterexample\n"
      "  --out <file>         write a found counterexample as replayable\n"
      "                       JSON\n"
      "  --replay <file>      replay a counterexample file; exit 0 when\n"
      "                       the recorded violation reproduces\n");
}

using ssps::cli::parse_u64;

int replay_file(const std::string& path) {
  const auto ce = ssps::mc::read_counterexample(path);
  if (!ce) {
    std::fprintf(stderr, "ssps_mc: cannot read counterexample '%s'\n",
                 path.c_str());
    return 2;
  }
  ssps::mc::Executor exec(ce->options);
  exec.replay(ce->trace);
  const auto report = exec.check();
  std::printf("replayed %zu choices (%s): %zu violation(s)\n",
              ce->trace.size(), ce->kind.c_str(), report.violations.size());
  if (report.ok()) {
    std::fprintf(stderr,
                 "ssps_mc: replay reached a LEGAL state — the recorded "
                 "schedule does not reproduce\n");
    return 1;
  }
  std::printf("%s\n", report.summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t nodes = 3;
  std::uint64_t seed = 1;
  std::uint64_t scramble_seed = 0;
  bool scramble_seed_set = false;
  std::uint64_t junk = 2;
  std::uint64_t max_rounds = 24;
  std::string drop;
  std::string out_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--nodes") {
      if (!parse_u64(value(), nodes) || nodes == 0 || nodes > 16) {
        std::fprintf(stderr, "ssps_mc: --nodes expects 1..16\n");
        return 2;
      }
    } else if (arg == "--seed") {
      if (!parse_u64(value(), seed)) {
        std::fprintf(stderr, "ssps_mc: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--scramble-seed") {
      if (!parse_u64(value(), scramble_seed)) {
        std::fprintf(stderr,
                     "ssps_mc: --scramble-seed expects an unsigned integer\n");
        return 2;
      }
      scramble_seed_set = true;
    } else if (arg == "--junk") {
      if (!parse_u64(value(), junk) || junk > 64) {
        std::fprintf(stderr, "ssps_mc: --junk expects 0..64\n");
        return 2;
      }
    } else if (arg == "--max-rounds") {
      if (!parse_u64(value(), max_rounds) || max_rounds == 0) {
        std::fprintf(stderr, "ssps_mc: --max-rounds expects a positive "
                             "integer\n");
        return 2;
      }
    } else if (arg == "--drop") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      drop = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      out_path = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      replay_path = v;
    } else {
      std::fprintf(stderr, "ssps_mc: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!replay_path.empty()) return replay_file(replay_path);

  ssps::mc::Executor::Options options = ssps::scenario::mc_certify_options(
      seed, static_cast<std::size_t>(nodes));
  if (scramble_seed_set) options.scramble.seed = scramble_seed;
  options.scramble.junk_messages = static_cast<std::size_t>(junk);
  options.max_rounds = static_cast<std::size_t>(max_rounds);
  options.drop_message_name = drop;

  ssps::mc::Explorer explorer(options);
  const ssps::mc::Certificate cert = explorer.run();
  std::printf(
      "nodes %llu seed %llu scramble-seed %llu junk %llu max-rounds %llu%s%s\n",
      static_cast<unsigned long long>(nodes),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(options.scramble.seed),
      static_cast<unsigned long long>(junk),
      static_cast<unsigned long long>(max_rounds), drop.empty() ? "" : " drop ",
      drop.c_str());
  std::printf(
      "visited %zu deduped %zu por-pruned %zu memo-hits %zu goal-states %zu "
      "max-depth %zu\n",
      cert.stats.visited, cert.stats.deduped, cert.stats.por_pruned,
      cert.stats.memo_hits, cert.stats.goal_states, cert.stats.max_depth);
  if (cert.certified) {
    std::printf("CERTIFIED: every schedule reaches a legal state within "
                "%llu rounds\n",
                static_cast<unsigned long long>(max_rounds));
    return 0;
  }

  const ssps::mc::Counterexample& ce = *cert.counterexample;
  const char* kind =
      ce.kind == ssps::mc::Counterexample::Kind::kLivelock ? "livelock"
                                                           : "depth-bound";
  std::printf("COUNTEREXAMPLE (%s) after %zu rounds, %zu choices\n", kind,
              ce.rounds, ce.trace.size());
  std::printf("%s\n", ce.violation.c_str());
  if (!out_path.empty()) {
    ssps::mc::CounterexampleFile file;
    file.options = options;
    file.kind = kind;
    file.violation = ce.violation;
    file.trace = ce.trace;
    if (!ssps::mc::write_counterexample(out_path, file)) {
      std::fprintf(stderr, "ssps_mc: cannot write '%s'\n", out_path.c_str());
    } else {
      std::printf("replay with: ssps_mc --replay %s\n", out_path.c_str());
    }
  }
  return 1;
}
