// ssps_noded — node-shard daemon of the multi-process deployment.
//
// Spawned by ssps_deploy, one process per shard: connects back to the
// coordinator's loopback port, handshakes with a versioned Hello, runs a
// full deterministic scenario replica in barrier lockstep with the fleet,
// relays its shard's cross-shard sends as wire-codec frames, and
// byte-verifies every frame relayed to it. Not intended to be run by
// hand, but its flags are plain enough to:
//
//   $ ssps_noded --scenario steady --seed 7 --procs 4 --shard 2 --port 40123
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "proc/noded.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ssps_noded --scenario <name> --procs <n> --shard <i>\n"
               "                  --port <p> [--seed <u64>] [--nodes <n>]\n"
               "                  [--scramble] [--oracle] [--snapshot-every <r>]\n"
               "                  [--snapshot-dir <dir>] [--round-timeout <ms>]\n"
               "                  [--replay-upto <u>] [--restore-event <r>:<s>]...\n"
               "                  [--dup-acks]\n"
               "\n"
               "Hosts one node shard of a multi-process deployment (spawned by\n"
               "ssps_deploy; see that tool for the user-facing entry point).\n"
               "\n"
               "options:\n"
               "  --scenario <name>      built-in scenario (must match the fleet)\n"
               "  --seed <u64>           simulation seed (default 1)\n"
               "  --nodes <n>            client population (0 = scenario default)\n"
               "  --scramble             scrambled-start variant (implies oracle)\n"
               "  --oracle               run the invariant oracle at phase ends\n"
               "  --snapshot-every <r>   override the spec's snapshot cadence\n"
               "  --procs <n>            fleet size (daemon count)\n"
               "  --shard <i>            this daemon's shard index in [0, procs)\n"
               "  --port <p>             coordinator's loopback port\n"
               "  --snapshot-dir <dir>   persist owned-node checkpoints here\n"
               "  --round-timeout <ms>   barrier wait deadline (default 120000)\n"
               "  --replay-upto <u>      crash recovery: replay units 1..u\n"
               "                         locally, audit disk snapshots, rejoin\n"
               "  --restore-event <r>:<s>\n"
               "                         recorded lockstep restore of shard <s>\n"
               "                         after unit <r> (repeatable; applied\n"
               "                         during replay)\n"
               "  --dup-acks             send every barrier ack twice (test hook)\n"
               "\n"
               "exit codes: 0 ok, 2 bad invocation, 3 divergence, 4 handshake\n"
               "rejected, 5 coordinator gone, 6 barrier timeout\n");
}

using ssps::cli::parse_u64;

bool parse_restore_event(const char* text, ssps::proc::Restore& out) {
  if (text == nullptr) return false;
  const std::string s = text;
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) return false;
  return parse_u64(s.substr(0, colon).c_str(), out.round) &&
         parse_u64(s.substr(colon + 1).c_str(), out.shard);
}

}  // namespace

int main(int argc, char** argv) {
  ssps::proc::NodedOptions opts;
  std::uint64_t procs = 0;
  std::uint64_t shard = 0;
  std::uint64_t port = 0;
  std::uint64_t timeout_ms = 120000;
  bool have_scenario = false;
  bool have_procs = false;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.choice.name = v;
      have_scenario = true;
    } else if (arg == "--seed") {
      if (!parse_u64(value(), opts.choice.seed)) {
        std::fprintf(stderr, "ssps_noded: --seed expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      if (!parse_u64(value(), opts.choice.nodes)) {
        std::fprintf(stderr, "ssps_noded: --nodes expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--scramble") {
      opts.choice.scramble = true;
    } else if (arg == "--oracle") {
      opts.choice.oracle = true;
    } else if (arg == "--snapshot-every") {
      if (!parse_u64(value(), opts.choice.snapshot_every)) {
        std::fprintf(stderr,
                     "ssps_noded: --snapshot-every expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--procs") {
      if (!parse_u64(value(), procs) || procs == 0) {
        std::fprintf(stderr, "ssps_noded: --procs expects a positive integer\n");
        return 2;
      }
      have_procs = true;
    } else if (arg == "--shard") {
      if (!parse_u64(value(), shard)) {
        std::fprintf(stderr, "ssps_noded: --shard expects an unsigned integer\n");
        return 2;
      }
    } else if (arg == "--port") {
      if (!parse_u64(value(), port) || port == 0 || port > 65535) {
        std::fprintf(stderr, "ssps_noded: --port expects a TCP port\n");
        return 2;
      }
      have_port = true;
    } else if (arg == "--snapshot-dir") {
      const char* v = value();
      if (v == nullptr) {
        usage(stderr);
        return 2;
      }
      opts.snapshot_dir = v;
    } else if (arg == "--round-timeout") {
      if (!parse_u64(value(), timeout_ms) || timeout_ms == 0) {
        std::fprintf(stderr,
                     "ssps_noded: --round-timeout expects milliseconds\n");
        return 2;
      }
    } else if (arg == "--replay-upto") {
      if (!parse_u64(value(), opts.replay_upto) || opts.replay_upto == 0) {
        std::fprintf(stderr,
                     "ssps_noded: --replay-upto expects a positive unit\n");
        return 2;
      }
    } else if (arg == "--restore-event") {
      ssps::proc::Restore ev;
      if (!parse_restore_event(value(), ev)) {
        std::fprintf(stderr, "ssps_noded: --restore-event expects <round>:<shard>\n");
        return 2;
      }
      opts.replay_restores.push_back(ev);
    } else if (arg == "--dup-acks") {
      opts.dup_acks = true;
    } else {
      std::fprintf(stderr, "ssps_noded: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!have_scenario || !have_procs || !have_port) {
    usage(stderr);
    return 2;
  }
  opts.procs = static_cast<std::size_t>(procs);
  opts.shard = static_cast<std::size_t>(shard);
  opts.port = static_cast<std::uint16_t>(port);
  opts.round_timeout_ms = static_cast<int>(timeout_ms);
  return ssps::proc::run_noded(opts);
}
