// Quickstart: build one supervised skip ring, publish, watch everyone
// receive — the 60-second tour of the library.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "pubsub/pubsub_node.hpp"

using namespace ssps;

int main() {
  std::printf("== Self-stabilizing supervised publish-subscribe: quickstart ==\n\n");

  // A system = one supervisor process + any number of subscribers,
  // connected by an asynchronous message-passing network (the paper's
  // model, simulated deterministically from a seed).
  pubsub::PubSubSystem system(core::SkipRingSystem::Options{.seed = 2026, .fd_delay = 0},
                              pubsub::PubSubConfig{});

  // Eight peers subscribe. Nobody knows anybody — each only knows the
  // supervisor (the commonly known gateway of §1).
  const auto peers = system.add_pubsub_subscribers(8);
  std::printf("subscribed %zu peers; stabilizing the skip ring ...\n", peers.size());

  const auto rounds = system.run_until_legit(1000);
  std::printf("topology legitimate after %zu rounds.\n\n", *rounds);

  // Show the converged ring: every subscriber got a label from the
  // supervisor; ring edges + shortcuts follow Definition 2.
  for (sim::NodeId id : peers) {
    const auto& sub = system.subscriber(id);
    std::printf("  peer %llu: label %-4s  r=%-6.4f  degree=%zu\n",
                static_cast<unsigned long long>(id.value),
                sub.label()->to_string().c_str(), sub.label()->r().to_double(),
                sub.overlay_neighbors().size());
  }

  // Publish: flooding spreads it in O(log n) rounds; the Patricia-trie
  // anti-entropy would deliver it even if flooding failed.
  std::printf("\npeer %llu publishes \"hello, overlay!\" ...\n",
              static_cast<unsigned long long>(peers[0].value));
  system.pubsub(peers[0]).publish("hello, overlay!");
  const auto spread =
      system.net().run_until([&] { return system.publications_converged(); }, 100);
  std::printf("all %zu subscribers hold the publication after %zu rounds.\n",
              peers.size(), *spread);

  // A latecomer subscribes and receives the full history automatically.
  const sim::NodeId late = system.add_pubsub_subscriber();
  system.net().run_until(
      [&] { return system.topology_legit() && system.pubsub(late).trie().size() == 1; },
      1000);
  std::printf("late joiner %llu caught up on history (%zu publication).\n",
              static_cast<unsigned long long>(late.value),
              system.pubsub(late).trie().size());

  std::printf("\nDone. See examples/news_service.cpp and examples/chat_groups.cpp\n"
              "for multi-topic and fault-recovery scenarios.\n");
  return 0;
}
