// Quickstart: build one supervised skip ring, publish, watch everyone
// receive — the 60-second tour of the library, driven by the scenario
// engine (src/scenario): the whole run is one declarative ScenarioSpec
// executed phase by phase through a ScenarioRunner, and every number
// printed below comes off its JSON-serializable phase reports.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "scenario/runner.hpp"

using namespace ssps;

int main() {
  std::printf("== Self-stabilizing supervised publish-subscribe: quickstart ==\n\n");

  // A system = one supervisor process + any number of subscribers,
  // connected by an asynchronous message-passing network (the paper's
  // model, simulated deterministically from a seed). The scenario spec
  // says WHAT happens; the runner drives the simulation and samples
  // metrics around each phase.
  scenario::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.seed = 2026;
  spec.nodes = 8;
  spec.mode = scenario::Mode::kSingleTopic;

  scenario::Phase subscribe;
  subscribe.name = "subscribe";
  subscribe.churn.joins = 8;
  subscribe.converge = true;
  spec.phases.push_back(subscribe);

  scenario::Phase publish;
  publish.name = "publish";
  publish.publish.count = 1;
  publish.publish.payload_bytes = 15;  // "hello, overlay!"
  publish.converge = true;
  spec.phases.push_back(publish);

  scenario::Phase late;
  late.name = "late-joiner";
  late.churn.joins = 1;
  late.converge = true;
  spec.phases.push_back(late);

  scenario::ScenarioRunner runner(spec);

  // Eight peers subscribe. Nobody knows anybody — each only knows the
  // supervisor (the commonly known gateway of §1).
  const auto& boot = runner.run_phase(0);
  std::printf("subscribed %zu peers; topology legitimate after %zu rounds\n"
              "(%llu messages, %llu wire bytes).\n\n",
              boot.alive_nodes, *boot.convergence_rounds,
              static_cast<unsigned long long>(boot.messages),
              static_cast<unsigned long long>(boot.bytes));

  // Show the converged ring: every subscriber got a label from the
  // supervisor; ring edges + shortcuts follow Definition 2.
  for (sim::NodeId id : runner.single().subscriber_ids()) {
    const auto& sub = runner.single().subscriber(id);
    std::printf("  peer %llu: label %-4s  r=%-6.4f  degree=%zu\n",
                static_cast<unsigned long long>(id.value),
                sub.label()->to_string().c_str(), sub.label()->r().to_double(),
                sub.overlay_neighbors().size());
  }

  // Publish: flooding spreads it in O(log n) rounds; the Patricia-trie
  // anti-entropy would deliver it even if flooding failed.
  std::printf("\na random peer publishes ...\n");
  const auto& spread = runner.run_phase(1);
  std::printf("all %zu subscribers hold the publication after %zu rounds.\n",
              spread.alive_nodes, *spread.convergence_rounds);

  // A latecomer subscribes and receives the full history automatically.
  const auto& caught_up = runner.run_phase(2);
  std::printf("late joiner caught up on history (%zu publication) after %zu rounds.\n",
              caught_up.publications, *caught_up.convergence_rounds);

  std::printf("\nDone. The same engine powers ./ssps_run --scenario steady|churn-wave|...\n"
              "for JSON metrics reports; see examples/failure_drill.cpp for crashes.\n");
  return 0;
}
