// Chat groups: group communication (the paper's §1 application) with a
// deliberately induced split-brain. Two halves of a chat room end up as
// two independent rings with conflicting labels; self-stabilization merges
// them back and the message history converges everywhere.
//
//   $ ./examples/chat_groups
#include <cstdio>

#include "core/chaos.hpp"
#include "pubsub/pubsub_node.hpp"

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

int main() {
  std::printf("== Chat group with split-brain recovery ==\n\n");

  PubSubConfig cfg;
  cfg.flooding = true;
  PubSubSystem room(SkipRingSystem::Options{.seed = 99, .fd_delay = 0}, cfg);
  const auto members = room.add_pubsub_subscribers(10);
  room.run_until_legit(1000);
  std::printf("chat room of %zu members converged.\n", members.size());

  room.pubsub(members[0]).publish("alice: hi everyone");
  room.pubsub(members[3]).publish("dave: hey alice");
  room.net().run_until([&] { return room.publications_converged(); }, 200);
  std::printf("2 messages delivered to all members.\n\n");

  // Catastrophe: the room splits into two independent overlays with
  // conflicting labels (e.g. after a long partition healed), and only one
  // half is still recorded at the supervisor.
  std::printf("splitting the room into two independent rings ...\n");
  split_brain(room, 4242);
  std::printf("topology legitimate now? %s\n",
              room.topology_legit() ? "yes?!" : "no (as expected)");

  // People keep chatting into their half of the partition.
  room.pubsub(members[1]).publish("bob: anyone there?");
  room.pubsub(members[8]).publish("heidi: weird, the room looks empty");

  const auto heal = room.net().run_until(
      [&] { return room.topology_legit() && room.publications_converged(); }, 5000);
  std::printf("self-stabilized after %zu rounds: one ring, one history.\n\n", *heal);

  std::printf("every member now holds all %zu messages:\n",
              room.distinct_publications());
  const auto& trie = room.pubsub(members[0]).trie();
  for (const Publication& p : trie.all()) {
    std::printf("  [%s] %s\n", trie.key_of(p).prefix(8).to_string().c_str(),
                p.payload.c_str());
  }
  std::printf("\n(Message order is by publication key — the store is a set, as in\n"
              "the paper; ordering/threading would be an application concern.)\n");
  return room.topology_legit() ? 0 : 1;
}
