// Failure drill (§3.3): crash a third of the subscribers without warning,
// including the minimum-label node, and watch the supervisor's failure
// detector + database repair shrink the ring to SR(n − f) while the
// publication history survives on the living.
//
//   $ ./examples/failure_drill
#include <cstdio>

#include "pubsub/pubsub_node.hpp"

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

int main() {
  std::printf("== Failure drill: unannounced crashes ==\n\n");

  PubSubSystem sys(SkipRingSystem::Options{.seed = 31, .fd_delay = 6}, PubSubConfig{});
  const auto peers = sys.add_pubsub_subscribers(18);
  sys.run_until_legit(1500);
  std::printf("18 subscribers converged (failure detector delay: 6 rounds).\n");

  for (int i = 0; i < 9; ++i) {
    sys.pubsub(peers[static_cast<std::size_t>(i)]).publish("entry #" + std::to_string(i));
  }
  sys.net().run_until([&] { return sys.publications_converged(); }, 300);
  std::printf("9 publications replicated to every subscriber.\n\n");

  // Crash six nodes, deliberately including the label-"0" holder (the
  // most connected node) and a publisher.
  std::size_t crashed = 0;
  for (sim::NodeId id : peers) {
    const auto& label = sys.subscriber(id).label();
    if (label && (label->to_string() == "0" || crashed < 5)) {
      std::printf("crashing subscriber %llu (label %s)\n",
                  static_cast<unsigned long long>(id.value),
                  label->to_string().c_str());
      sys.crash(id);
      ++crashed;
      if (crashed == 6) break;
    }
  }

  const auto heal = sys.run_until_legit(5000);
  std::printf("\nre-stabilized to SR(%zu) after %zu rounds.\n",
              sys.supervisor().size(), *heal);

  const auto pubs_ok =
      sys.net().run_until([&] { return sys.publications_converged(); }, 500);
  std::printf("publication history intact on all survivors after %zu more rounds "
              "(%zu entries).\n",
              *pubs_ok, sys.distinct_publications());

  std::printf("\nsupervisor database consistent: %s; survivors: %zu; every edge\n"
              "matches SR(n−f): %s\n",
              sys.supervisor().database_consistent() ? "yes" : "no",
              sys.supervisor().size(), sys.topology_legit() ? "yes" : "no");
  return sys.topology_legit() ? 0 : 1;
}
