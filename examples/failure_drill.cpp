// Failure drill (§3.3): crash a third of the subscribers without warning,
// including the minimum-label node, and watch the supervisor's failure
// detector + database repair shrink the ring to SR(n − f) while the
// publication history survives on the living.
//
// The drill is a three-phase ScenarioSpec executed through the scenario
// engine (src/scenario) — the same spec shape `ssps_run` exercises — with
// the narration reading its per-phase metric reports.
//
//   $ ./examples/failure_drill
#include <cstdio>

#include "scenario/runner.hpp"

using namespace ssps;

int main() {
  std::printf("== Failure drill: unannounced crashes ==\n\n");

  scenario::ScenarioSpec spec;
  spec.name = "failure-drill";
  spec.seed = 31;
  spec.nodes = 18;
  spec.mode = scenario::Mode::kSingleTopic;
  spec.fd_delay = 6;

  scenario::Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = 18;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  scenario::Phase publish;
  publish.name = "publish";
  publish.publish.count = 9;
  publish.publish.gap = 1;
  publish.converge = true;
  spec.phases.push_back(publish);

  // Crash six nodes, deliberately including the label-"0" holder (the
  // most connected node).
  scenario::Phase crash;
  crash.name = "crash-wave";
  crash.churn.crashes = 6;
  crash.churn.crash_min_label = true;
  crash.converge = true;
  crash.max_rounds = 5000;
  spec.phases.push_back(crash);

  scenario::ScenarioRunner runner(spec);

  const auto& boot = runner.run_phase(0);
  std::printf("18 subscribers converged after %zu rounds "
              "(failure detector delay: 6 rounds).\n",
              *boot.convergence_rounds);

  const auto& pubs = runner.run_phase(1);
  std::printf("%zu publications replicated to every subscriber "
              "(%llu messages).\n\n",
              pubs.publications, static_cast<unsigned long long>(pubs.messages));

  const auto& heal = runner.run_phase(2);
  std::printf("crashed 6 subscribers (label \"0\" holder included).\n");
  if (heal.converged) {
    std::printf("re-stabilized to SR(%zu) after %zu rounds.\n",
                runner.single().supervisor().size(), *heal.convergence_rounds);
    std::printf("publication history intact on all survivors (%zu entries).\n",
                heal.publications);
  } else {
    std::printf("did NOT re-stabilize within the budget! (%zu publications seen)\n",
                heal.publications);
  }

  const bool legit = runner.single().topology_legit();
  std::printf("\nsupervisor database consistent: %s; survivors: %zu; every edge\n"
              "matches SR(n−f): %s\n",
              runner.single().supervisor().database_consistent() ? "yes" : "no",
              runner.single().supervisor().size(), legit ? "yes" : "no");
  return legit && heal.converged ? 0 : 1;
}
