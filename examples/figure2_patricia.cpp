// Reproduces Figure 2 and the §4.2 worked example: two subscribers u and v
// with Patricia tries over publications P1..P4 (keys 000, 010, 100, 101),
// v missing P4. Walks through both exchange directions message by message
// and shows how v obtains P4 via CheckAndPublish.
//
//   $ ./examples/figure2_patricia
#include <cstdio>
#include <deque>

#include "common/rng.hpp"
#include "pubsub/pubsub_node.hpp"

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

namespace {

constexpr sim::NodeId kU{1};
constexpr sim::NodeId kV{2};

struct LoggingSink final : MessageSink {
  sim::MessagePool msg_pool;  // declared before the queue that drains into it
  std::deque<std::pair<sim::NodeId, sim::PooledMsg>> queue;
  void send(sim::NodeId to, sim::PooledMsg msg) override {
    std::printf("    %s -> subscriber %s\n", std::string(msg->name()).c_str(),
                to == kU ? "u" : "v");
    queue.emplace_back(to, std::move(msg));
  }
  sim::MessagePool& pool() override { return msg_pool; }
};

void print_trie(const char* who, const PatriciaTrie& t) {
  std::printf("  %s.T: %zu publications, root hash %.16s...\n", who, t.size(),
              t.root() ? to_hex(t.root()->hash).c_str() : "(empty)");
  for (const Publication& p : t.all()) {
    std::printf("    key %s  payload \"%s\"\n", t.key_of(p).to_string().c_str(),
                p.payload.c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Figure 2: Patricia-trie anti-entropy ==\n\n");

  LoggingSink sink;
  Rng rng_u(1);
  Rng rng_v(2);
  SubscriberProtocol u_over(kU, sim::NodeId{9}, sink, rng_u);
  SubscriberProtocol v_over(kV, sim::NodeId{9}, sink, rng_v);
  u_over.chaos_set_label(*Label::parse("0"));
  v_over.chaos_set_label(*Label::parse("1"));
  u_over.chaos_set_right(LabeledRef{*Label::parse("1"), kV});
  v_over.chaos_set_left(LabeledRef{*Label::parse("0"), kU});

  const PubSubConfig cfg{.key_bits = 3, .flooding = false, .anti_entropy = true};
  PubSubProtocol u(u_over, sink, rng_u, cfg);
  PubSubProtocol v(v_over, sink, rng_v, cfg);

  // Find payloads whose 3-bit keys are exactly the figure's 000/010/100/101.
  auto with_key = [&](const char* key) {
    for (std::uint64_t salt = 0;; ++salt) {
      Publication p{sim::NodeId{7}, "P" + std::to_string(salt)};
      if (u.trie().key_of(p).to_string() == key) return p;
    }
  };
  const Publication p1 = with_key("000");
  const Publication p2 = with_key("010");
  const Publication p3 = with_key("100");
  const Publication p4 = with_key("101");

  for (const auto& p : {p1, p2, p3, p4}) u.add_local(p);
  for (const auto& p : {p1, p2, p3}) v.add_local(p);

  std::printf("Initial state (v misses P4):\n");
  print_trie("u", u.trie());
  print_trie("v", v.trie());

  auto pump = [&] {
    while (!sink.queue.empty()) {
      auto [to, msg] = std::move(sink.queue.front());
      sink.queue.pop_front();
      ((to == kU) ? u : v).handle(*msg);
    }
  };

  std::printf("\n-- Direction 1: u sends CheckTrie(u, root) to v --\n");
  std::printf("  (the paper: this direction ends at u with equal hashes)\n");
  u.timeout();
  pump();
  std::printf("  result: v still has %zu publications (difference not found)\n",
              v.trie().size());

  std::printf("\n-- Direction 2: v sends CheckTrie(v, root) to u --\n");
  std::printf("  (u spots the missing node '10' and v requests prefix 101)\n");
  v.timeout();
  pump();
  std::printf("  result: v now has %zu publications\n", v.trie().size());

  std::printf("\nFinal state:\n");
  print_trie("u", u.trie());
  print_trie("v", v.trie());
  std::printf("\ntries equal: %s — \"it is important at which subscriber the\n"
              "initial CheckTrie request is started\" (§4.2), which is why the\n"
              "protocol alternates initiators every Timeout.\n",
              u.trie().equal_contents(v.trie()) ? "yes" : "NO");
  return u.trie().equal_contents(v.trie()) ? 0 : 1;
}
