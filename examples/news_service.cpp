// News service: the paper's motivating application (§1) — a topic-based
// news feed with multiple topics sharded over two supervisors by
// consistent hashing, reader churn, and late subscribers catching up on
// archived stories.
//
//   $ ./examples/news_service
#include <cstdio>
#include <string>
#include <vector>

#include "pubsub/topics.hpp"

using namespace ssps;
using namespace ssps::pubsub;

namespace {

constexpr TopicId kPolitics = 1;
constexpr TopicId kSports = 2;
constexpr TopicId kTech = 3;

const char* topic_name(TopicId t) {
  switch (t) {
    case kPolitics:
      return "politics";
    case kSports:
      return "sports";
    default:
      return "tech";
  }
}

}  // namespace

int main() {
  std::printf("== News service over supervised skip rings ==\n\n");
  sim::Network net(7);

  // Two supervisor processes share the topics via consistent hashing
  // (the §1.3 scalability strategy).
  const auto sup_a = net.spawn<MultiTopicSupervisorNode>();
  const auto sup_b = net.spawn<MultiTopicSupervisorNode>();
  SupervisorGroup group({sup_a, sup_b});
  auto resolver = [&group](TopicId t) { return group.supervisor_for(t); };
  for (TopicId t : {kPolitics, kSports, kTech}) {
    std::printf("topic %-8s -> supervisor %llu\n", topic_name(t),
                static_cast<unsigned long long>(group.supervisor_for(t).value));
  }

  // Twelve readers with mixed interests.
  std::vector<sim::NodeId> readers;
  for (int i = 0; i < 12; ++i) readers.push_back(net.spawn<MultiTopicNode>(resolver));
  auto reader = [&](std::size_t i) -> MultiTopicNode& {
    return net.node_as<MultiTopicNode>(readers[i]);
  };
  for (std::size_t i = 0; i < readers.size(); ++i) {
    reader(i).subscribe(kPolitics);
    if (i % 2 == 0) reader(i).subscribe(kSports);
    if (i % 3 == 0) reader(i).subscribe(kTech);
  }
  net.run_rounds(60);
  std::printf("\n12 readers subscribed (politics: 12, sports: 6, tech: 4).\n");

  // Publishers break stories.
  reader(0).publish(kPolitics, "election results are in");
  reader(2).publish(kSports, "cup final goes to penalties");
  reader(3).publish(kTech, "new skip-ring release ships");
  reader(0).publish(kPolitics, "coalition talks begin");
  net.run_rounds(50);

  auto coverage = [&](TopicId t) {
    std::size_t subscribed = 0;
    std::size_t complete = 0;
    std::size_t stories = 0;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (!reader(i).subscribed(t)) continue;
      ++subscribed;
      stories = std::max(stories, reader(i).pubsub(t).trie().size());
    }
    for (std::size_t i = 0; i < readers.size(); ++i) {
      if (reader(i).subscribed(t) && reader(i).pubsub(t).trie().size() == stories) {
        ++complete;
      }
    }
    std::printf("  %-8s: %zu/%zu readers hold all %zu stories\n", topic_name(t),
                complete, subscribed, stories);
  };
  std::printf("\nCoverage after dissemination:\n");
  for (TopicId t : {kPolitics, kSports, kTech}) coverage(t);

  // Churn: two readers drop sports, one new reader arrives late and still
  // receives the archived sports story through trie anti-entropy.
  std::printf("\nChurn: readers 0 and 4 leave sports; a latecomer joins.\n");
  reader(0).unsubscribe(kSports);
  reader(4).unsubscribe(kSports);
  const auto late = net.spawn<MultiTopicNode>(resolver);
  net.node_as<MultiTopicNode>(late).subscribe(kSports);
  net.run_rounds(80);

  auto& latecomer = net.node_as<MultiTopicNode>(late);
  std::printf("latecomer holds %zu archived sports stor%s; reader 0 subscribed to "
              "sports: %s\n",
              latecomer.pubsub(kSports).trie().size(),
              latecomer.pubsub(kSports).trie().size() == 1 ? "y" : "ies",
              reader(0).subscribed(kSports) ? "still?!" : "no");

  std::printf("\nSupervisor message load stayed flat: supervisors received %llu + %llu\n"
              "messages total while %llu publications were disseminated peer-to-peer.\n",
              static_cast<unsigned long long>(net.metrics().received_by(sup_a)),
              static_cast<unsigned long long>(net.metrics().received_by(sup_b)),
              static_cast<unsigned long long>(net.metrics().sent("PublishNew")));
  return 0;
}
