// Reproduces Figure 1 of the paper: the skip ring SR(16) with its
// (x, l(x), r(l(x))) triples and the edge sets E_R/E_S colored by level —
// first from the combinatorial spec, then re-derived from a live,
// converged system to show both agree.
//
//   $ ./examples/figure1_topology
#include <cstdio>
#include <map>
#include <set>

#include "core/skip_ring_spec.hpp"
#include "core/system.hpp"

using namespace ssps;
using namespace ssps::core;

namespace {

const char* level_name(int level, int top) {
  if (level == top) return "ring (black)";
  switch (top - level) {
    case 1:
      return "level-3 shortcut (green)";
    case 2:
      return "level-2 shortcut (red)";
    default:
      return "level-1 shortcut (blue)";
  }
}

}  // namespace

int main() {
  constexpr std::size_t kN = 16;
  const SkipRingSpec spec(kN);

  std::printf("== Figure 1: SR(16) ==\n\n");
  std::printf("Triples (x, l(x), r(l(x))) in ring order:\n");
  for (const Label& l : spec.ring_order()) {
    std::printf("  x=%2llu  l(x)=%-4s  r=%2llu/16\n",
                static_cast<unsigned long long>(l.to_index()), l.to_string().c_str(),
                static_cast<unsigned long long>(l.r().num) *
                    (16u >> static_cast<unsigned>(l.r().exp)));
  }

  // Collect undirected edges with their Definition-2 level.
  std::map<int, std::set<std::pair<std::string, std::string>>> edges_by_level;
  auto add_edge = [&](const Label& a, const Label& b) {
    auto key = a.to_string() < b.to_string()
                   ? std::make_pair(a.to_string(), b.to_string())
                   : std::make_pair(b.to_string(), a.to_string());
    edges_by_level[SkipRingSpec::edge_level(a, b)].insert(key);
  };
  for (const Label& l : spec.ring_order()) {
    const NodeSpec& s = spec.expected(l);
    if (s.left) add_edge(l, *s.left);
    if (s.right) add_edge(l, *s.right);
    if (s.ring) add_edge(l, *s.ring);
    for (const Label& sc : s.shortcuts) add_edge(l, sc);
  }

  std::printf("\nEdges by level (cf. the figure's colors):\n");
  std::size_t total = 0;
  for (const auto& [level, edges] : edges_by_level) {
    std::printf("  level %d — %-24s %2zu edges: ", level,
                level_name(level, spec.top_level()), edges.size());
    for (const auto& [a, b] : edges) std::printf("(%s,%s) ", a.c_str(), b.c_str());
    std::printf("\n");
    total += edges.size();
  }
  std::printf("  total distinct edges: %zu (degree-slot sum 4n−4 = %zu)\n", total,
              4 * kN - 4);
  std::printf("  diameter: %d (= log2 n = %d)\n", spec.diameter(), spec.top_level());

  // Now build the same ring as a *live system* and verify it matches.
  std::printf("\nConverging a live 16-subscriber system ...\n");
  SkipRingSystem live(SkipRingSystem::Options{.seed = 16, .fd_delay = 0});
  live.add_subscribers(kN);
  const auto rounds = live.run_until_legit(2000);
  std::printf("legitimate after %zu rounds; every edge matches the spec: %s\n",
              *rounds, live.topology_legit() ? "yes" : "NO");
  return live.topology_legit() ? 0 : 1;
}
