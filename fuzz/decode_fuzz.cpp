// Fuzz target for the wire codec's totality guarantee (wire/codec.hpp):
// decode_message must map ANY byte string to either a message that
// re-encodes byte-identically or a structured DecodeError — never UB,
// never an assert, never an unbounded allocation.
//
// Two build modes share one `one_input` body:
//
//  - With -DSSPS_FUZZER and -fsanitize=fuzzer this is a libFuzzer target
//    (LLVMFuzzerTestOneInput).
//  - Without it, the file builds as the `ssps_decode_fuzz` binary: it
//    replays a committed corpus directory and then runs a deterministic
//    seeded mutation loop over it — the sanitizer-CI smoke shape, which
//    needs no fuzzer runtime.
//
//      $ ssps_decode_fuzz fuzz/corpus                      # replay only
//      $ ssps_decode_fuzz fuzz/corpus --iters 200000       # replay + mutate
//      $ ssps_decode_fuzz --write-corpus fuzz/corpus       # regenerate seeds
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/encode.hpp"
#include "sim/message_pool.hpp"
#include "wire/codec.hpp"

namespace {

/// One fuzz iteration: decode must be total, and a successful decode must
/// re-encode to exactly the consumed frame (trailing bytes past the
/// declared payload are stream residue, not frame content).
void one_input(const std::uint8_t* data, std::size_t size) {
  ssps::sim::MessagePool pool;
  const std::span<const std::uint8_t> bytes(data, size);
  ssps::wire::DecodeResult result = ssps::wire::decode_message(bytes, pool);
  if (!result.ok()) return;

  std::vector<std::uint8_t> reencoded;
  if (!ssps::wire::encode_message(*result.msg, reencoded)) __builtin_trap();
  if (reencoded.size() > size) __builtin_trap();
  if (std::memcmp(reencoded.data(), data, reencoded.size()) != 0) __builtin_trap();

  // Decoded messages are cloned across pools by the simulator (parallel
  // workers, snapshots); the clone must preserve the wire image.
  ssps::sim::MessagePool other;
  ssps::sim::PooledMsg clone = result.msg->clone_into(other);
  if (!clone) __builtin_trap();
  std::vector<std::uint8_t> cloned;
  if (!ssps::wire::encode_message(*clone, cloned)) __builtin_trap();
  if (cloned != reencoded) __builtin_trap();
}

}  // namespace

#ifdef SSPS_FUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  one_input(data, size);
  return 0;
}

#else  // standalone replay + deterministic mutation binary

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/topics.hpp"

namespace {

namespace fs = std::filesystem;
using ssps::core::IntroFlag;
using ssps::core::Label;
using ssps::core::LabeledRef;
using ssps::pubsub::BitString;
using ssps::pubsub::Digest;
using ssps::pubsub::NodeSummary;
using ssps::pubsub::Publication;
using ssps::sim::NodeId;

Digest fill_digest(std::uint8_t seed) {
  Digest d;
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = static_cast<std::uint8_t>(seed + i);
  }
  return d;
}

/// One canonical instance of every WireType, encoded. The corpus seeds
/// must cover every decode_payload branch so mutations start inside each
/// message's structure instead of having to discover the type bytes.
std::vector<std::pair<std::string, std::vector<std::uint8_t>>> seed_corpus() {
  namespace msg = ssps::core::msg;
  namespace pmsg = ssps::pubsub::msg;
  ssps::sim::MessagePool pool;
  const Label label0 = Label::from_index(0);
  const Label label3 = Label::from_index(3);
  const LabeledRef ref{label3, NodeId{7}};

  std::vector<std::pair<std::string, ssps::sim::PooledMsg>> samples;
  samples.emplace_back("subscribe", pool.make<msg::Subscribe>(NodeId{2}));
  samples.emplace_back("unsubscribe", pool.make<msg::Unsubscribe>(NodeId{3}));
  samples.emplace_back("get-configuration",
                       pool.make<msg::GetConfiguration>(NodeId{4}, NodeId{5}));
  samples.emplace_back(
      "set-data", pool.make<msg::SetData>(ref, label0, LabeledRef{label0, NodeId{9}}));
  samples.emplace_back("set-data-evict",
                       pool.make<msg::SetData>(std::nullopt, std::nullopt, std::nullopt));
  samples.emplace_back("check",
                       pool.make<msg::Check>(ref, label0, IntroFlag::kCyclic));
  samples.emplace_back("introduce",
                       pool.make<msg::Introduce>(ref, IntroFlag::kLinear));
  samples.emplace_back("remove-connections",
                       pool.make<msg::RemoveConnections>(NodeId{6}));
  samples.emplace_back("introduce-shortcut", pool.make<msg::IntroduceShortcut>(ref));

  std::vector<NodeSummary> tuples;
  tuples.push_back(NodeSummary{BitString::from_uint(0b101, 3), fill_digest(1)});
  tuples.push_back(NodeSummary{BitString::from_uint(0b1100, 4), fill_digest(9)});
  samples.emplace_back("check-trie", pool.make<pmsg::CheckTrie>(NodeId{8}, tuples));
  samples.emplace_back("check-and-publish",
                       pool.make<pmsg::CheckAndPublish>(NodeId{8}, tuples,
                                                        BitString::from_uint(0b10, 2)));
  std::vector<Publication> pubs;
  pubs.push_back(Publication{NodeId{11}, "breaking news", 0});
  pubs.push_back(Publication{NodeId{12}, "", 0});
  samples.emplace_back("publish", pool.make<pmsg::Publish>(pubs));
  samples.emplace_back("publish-new",
                       pool.make<pmsg::PublishNew>(Publication{NodeId{13}, "x", 0}));
  samples.emplace_back(
      "topic-envelope",
      pool.make<ssps::pubsub::TopicEnvelope>(
          42, pool.make<msg::Subscribe>(NodeId{2})));
  samples.emplace_back(
      "topic-envelope-nested",
      pool.make<ssps::pubsub::TopicEnvelope>(
          1, pool.make<ssps::pubsub::TopicEnvelope>(
                 2, pool.make<msg::RemoveConnections>(NodeId{3}))));
  samples.emplace_back("hello", pool.make<ssps::wire::Hello>(
                                    ssps::wire::kProtocolVersion, NodeId{5}));

  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;
  for (const auto& [name, sample] : samples) {
    std::vector<std::uint8_t> bytes;
    if (!ssps::wire::encode_message(*sample, bytes)) __builtin_trap();
    out.emplace_back(name, std::move(bytes));
  }
  // Structurally broken seeds: each exercises one DecodeStatus branch.
  out.emplace_back("broken-empty", std::vector<std::uint8_t>{});
  out.emplace_back("broken-truncated-header", std::vector<std::uint8_t>{1, 2, 3});
  {
    std::vector<std::uint8_t> bad = out[0].second;  // subscribe frame
    bad.back() ^= 0xFF;                             // payload damage -> bad CRC
    out.emplace_back("broken-checksum", std::move(bad));
  }
  {
    std::vector<std::uint8_t> unknown = out[0].second;
    unknown[0] = 200;  // type byte outside the enum
    out.emplace_back("broken-unknown-type", std::move(unknown));
  }
  {
    // A future-version Hello with a correct checksum: the handshake
    // rejection path (kVersionMismatch) the deployment transport takes
    // when two builds meet.
    std::vector<std::uint8_t> bytes;
    ssps::common::Encoder payload;
    payload.u32(ssps::wire::kProtocolVersion + 1);
    payload.u64(5);
    bytes.push_back(static_cast<std::uint8_t>(ssps::wire::WireType::kHello));
    const std::uint64_t len = payload.buffer().size();
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    std::uint32_t crc = ssps::wire::crc32({bytes.data(), 1});
    crc = ssps::wire::crc32(payload.buffer(), crc);
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    bytes.insert(bytes.end(), payload.buffer().begin(), payload.buffer().end());
    out.emplace_back("hello-version-mismatch", std::move(bytes));
  }
  return out;
}

/// Mutates `bytes` in place: byte flips, truncation, extension, splicing.
/// Half the time the frame CRC is recomputed afterwards so the mutation
/// reaches the payload decoders instead of dying at the checksum.
void mutate(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  const std::uint64_t flavor = rng.below(10);
  if (flavor < 5 || bytes.size() < 14) {
    const std::uint64_t flips = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1U << rng.below(8));
    }
  } else if (flavor < 7) {
    bytes.resize(rng.below(bytes.size()));  // truncate
  } else if (flavor < 9) {
    const std::uint64_t extra = 1 + rng.below(32);
    for (std::uint64_t i = 0; i < extra; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.next()));
    }
  } else {
    const std::uint64_t at = rng.below(bytes.size());
    bytes[at] = static_cast<std::uint8_t>(rng.next());
  }
  if (bytes.size() >= 13 && rng.below(2) == 0) {
    // Re-seal the frame: valid header + CRC over the mutated payload.
    std::uint64_t payload_len = 0;
    for (int i = 0; i < 8; ++i) {
      payload_len |= static_cast<std::uint64_t>(bytes[1 + i]) << (8 * i);
    }
    if (payload_len <= bytes.size() - 13) {
      std::uint32_t crc = ssps::wire::crc32({&bytes[0], 1});
      crc = ssps::wire::crc32({bytes.data() + 13, payload_len}, crc);
      for (int i = 0; i < 4; ++i) {
        bytes[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
      }
    }
  }
}

int write_corpus(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  for (const auto& [name, bytes] : seed_corpus()) {
    std::ofstream out(dir / (name + ".bin"), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "ssps_decode_fuzz: cannot write %s\n",
                   (dir / (name + ".bin")).c_str());
      return 1;
    }
  }
  std::printf("wrote %zu corpus seeds to %s\n", seed_corpus().size(),
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  std::uint64_t iters = 0;
  std::uint64_t seed = 1;
  std::uint64_t dump_at = 0;
  bool write = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write-corpus") {
      write = true;
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dump-at" && i + 1 < argc) {
      dump_at = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ssps_decode_fuzz [--write-corpus] <corpus-dir>\n"
          "                        [--iters <n>] [--seed <u64>] [--dump-at <n>]\n");
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      corpus_dir = arg;
    } else {
      std::fprintf(stderr, "ssps_decode_fuzz: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (corpus_dir.empty()) {
    std::fprintf(stderr, "ssps_decode_fuzz: corpus directory required\n");
    return 2;
  }
  if (write) return write_corpus(corpus_dir);

  // Replay: every committed corpus entry, in sorted order (determinism).
  std::vector<std::vector<std::uint8_t>> corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus_dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    one_input(bytes.data(), bytes.size());
    corpus.push_back(std::move(bytes));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "ssps_decode_fuzz: no corpus files in %s\n",
                 corpus_dir.c_str());
    return 2;
  }
  std::printf("replayed %zu corpus entries\n", corpus.size());

  // Deterministic mutation loop seeded from the corpus. A trap at
  // iteration N reproduces with --dump-at N, which prints the offending
  // input as hex before running it.
  ssps::Rng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> bytes = corpus[rng.below(corpus.size())];
    mutate(bytes, rng);
    if (i + 1 == dump_at) {
      std::printf("iteration %llu input (%zu bytes):",
                  static_cast<unsigned long long>(i + 1), bytes.size());
      for (std::uint8_t b : bytes) std::printf(" %02x", b);
      std::printf("\n");
      std::fflush(stdout);
    }
    one_input(bytes.data(), bytes.size());
  }
  if (iters > 0) {
    std::printf("ran %llu mutated inputs (seed %llu)\n",
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}

#endif  // SSPS_FUZZER
