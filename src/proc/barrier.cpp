#include "proc/barrier.hpp"

#include <algorithm>

namespace ssps::proc {

BarrierTracker::BarrierTracker(std::size_t shards)
    : acked_(shards, 0),
      dead_(shards, 0),
      relays_seen_(shards, 0),
      relays_claimed_(shards, 0) {}

void BarrierTracker::begin_round(std::uint64_t round,
                                 std::uint64_t expected_digest) {
  round_ = round;
  expected_digest_ = expected_digest;
  std::fill(acked_.begin(), acked_.end(), 0);
  std::fill(relays_seen_.begin(), relays_seen_.end(), 0);
  std::fill(relays_claimed_.begin(), relays_claimed_.end(), 0);
}

BarrierTracker::Ack BarrierTracker::round_done(std::size_t shard,
                                               std::uint64_t round,
                                               std::uint64_t digest) {
  if (round < round_) return Ack::kStale;
  if (round > round_) {
    diverged_ = true;
    return Ack::kWrongRound;
  }
  if (digest != expected_digest_) {
    diverged_ = true;
    return Ack::kDigestMismatch;
  }
  if (acked_[shard] != 0) return Ack::kDuplicate;
  acked_[shard] = 1;
  return Ack::kAccepted;
}

void BarrierTracker::mark_dead(std::size_t shard) { dead_[shard] = 1; }

void BarrierTracker::mark_alive(std::size_t shard) { dead_[shard] = 0; }

bool BarrierTracker::complete() const {
  for (std::size_t s = 0; s < acked_.size(); ++s) {
    if (dead_[s] != 0) continue;
    if (acked_[s] == 0) return false;
  }
  return true;
}

bool BarrierTracker::verify_relay_counts() {
  for (std::size_t s = 0; s < acked_.size(); ++s) {
    if (dead_[s] != 0 || acked_[s] == 0) continue;
    if (relays_seen_[s] != relays_claimed_[s]) {
      diverged_ = true;
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> BarrierTracker::missing() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < acked_.size(); ++s) {
    if (dead_[s] == 0 && acked_[s] == 0) out.push_back(s);
  }
  return out;
}

}  // namespace ssps::proc
