// The ssps_noded daemon body: one process hosting one node shard of a
// multi-process deployment (see replica.hpp for the lockstep-replica
// design and ctrl.hpp for the barrier protocol it speaks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proc/ctrl.hpp"
#include "proc/replica.hpp"

namespace ssps::proc {

struct NodedOptions {
  ScenarioChoice choice;
  std::size_t procs = 2;
  std::size_t shard = 0;
  std::uint16_t port = 0;
  /// Crash recovery: silently replay units 1..replay_upto locally (no
  /// barrier traffic), then verify the disk snapshots against the
  /// replayed state, adopt them, and rejoin the barrier at replay_upto.
  std::uint64_t replay_upto = 0;
  /// Lockstep restore events recorded before this (re)spawn, applied at
  /// their rounds during replay. All rounds must be < replay_upto.
  std::vector<Restore> replay_restores;
  /// Directory for per-node snapshot files ("" = no persistence).
  std::string snapshot_dir;
  int round_timeout_ms = 120000;
  /// Test hook (barrier robustness): send every RoundDone twice.
  bool dup_acks = false;
};

/// Runs the daemon to completion. Exit codes: 0 success, 2 bad spec,
/// 3 divergence (relay bytes, digest, or snapshot mismatch), 4 handshake
/// failure, 5 coordinator vanished/aborted, 6 barrier timeout. Divergence
/// and protocol failures exit from inside the barrier hook.
int run_noded(const NodedOptions& opts);

}  // namespace ssps::proc
