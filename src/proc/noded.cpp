#include "proc/noded.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/handshake.hpp"
#include "net/socket.hpp"
#include "proc/snapshot_store.hpp"
#include "wire/codec.hpp"

namespace ssps::proc {
namespace {

constexpr int kExitBadSpec = 2;
constexpr int kExitDivergence = 3;
constexpr int kExitHandshake = 4;
constexpr int kExitCoordinatorGone = 5;
constexpr int kExitTimeout = 6;

class Daemon {
 public:
  Daemon(const NodedOptions& opts, scenario::ScenarioSpec spec)
      : opts_(opts), replica_(std::move(spec), opts.procs) {
    if (!opts_.snapshot_dir.empty()) store_.emplace(opts_.snapshot_dir);
    replay_events_ = opts_.replay_restores;
    std::sort(replay_events_.begin(), replay_events_.end(),
              [](const Restore& a, const Restore& b) { return a.round < b.round; });
  }

  int run() {
    std::optional<net::Socket> sock =
        net::Socket::connect_local(opts_.port, opts_.round_timeout_ms);
    if (!sock) {
      std::fprintf(stderr, "ssps_noded[%zu]: cannot reach coordinator on port %u\n",
                   opts_.shard, static_cast<unsigned>(opts_.port));
      return kExitCoordinatorGone;
    }
    sock_ = std::move(*sock);
    // Daemons identify as shard+1 so shard 0 stays distinct from the null id.
    if (!net::send_hello(sock_, sim::NodeId{opts_.shard + 1})) {
      return fail(kExitHandshake, "hello send failed");
    }
    const net::HelloResult hello =
        net::expect_hello(sock_, stream_, opts_.round_timeout_ms);
    if (!hello.ok) {
      std::fprintf(stderr, "ssps_noded[%zu]: handshake rejected: %s\n", opts_.shard,
                   wire::decode_status_name(hello.status));
      return kExitHandshake;
    }
    replica_.install_hook([this](sim::Network& net, std::size_t unit,
                                 std::size_t delivered) {
      post_unit(net, unit, delivered);
    });
    const scenario::ScenarioReport& report = replica_.run();
    send_ctrl(Report{report.to_json().dump(2)});
    // Hold the state until the coordinator has byte-compared every report.
    const std::optional<CtrlMsg> last = read_ctrl(opts_.round_timeout_ms);
    if (!last || !std::holds_alternative<Shutdown>(*last)) {
      return fail(kExitCoordinatorGone, "no shutdown after report");
    }
    return 0;
  }

 private:
  // The barrier hook. Divergence and protocol failures are fatal to the
  // whole deployment, so the daemon reports and exits right here rather
  // than unwinding through the scheduler.
  void post_unit(sim::Network& net, std::size_t unit, std::size_t delivered) {
    if (unit < opts_.replay_upto) {
      // Silent local replay, no barrier traffic — but mirror the previous
      // incarnation's persist decisions (track_persist) so the disk audit
      // at rejoin knows which checkpoint values were ever written.
      track_persist(net);
      apply_replay_events(unit);
      return;
    }
    const bool rejoining = opts_.replay_upto > 0 && unit == opts_.replay_upto;
    if (rejoining) {
      track_persist(net);  // the persist the old incarnation may have died in
      adopt_disk_snapshots(net);
      // The fleet already exchanged this round's relays before we died;
      // the coordinator regenerates our outbox from its own replica.
      send_done(unit, 0, 0);
    } else {
      persist_snapshots(net);
      const std::vector<Relay> outbox = replica_.collect_outbox(opts_.shard);
      for (const Relay& relay : outbox) send_ctrl(relay);
      send_done(unit, delivered, outbox.size());
    }
    barrier_wait(unit);
  }

  void send_done(std::size_t unit, std::size_t delivered, std::size_t relays) {
    RoundDone done;
    done.round = unit;
    done.delivered = delivered;
    done.digest = replica_.digest();
    done.relays = relays;
    send_ctrl(done);
    if (opts_.dup_acks) send_ctrl(done);  // barrier must dedupe
  }

  /// Blocks until the coordinator releases round `unit`, applying the
  /// relays and lockstep restore events that arrive first (per-connection
  /// TCP ordering: relays, then restores, then the release).
  void barrier_wait(std::size_t unit) {
    for (;;) {
      const std::optional<CtrlMsg> msg = read_ctrl(opts_.round_timeout_ms);
      if (!msg) die(stream_.failed() ? kExitCoordinatorGone : kExitTimeout,
                    "barrier wait failed");
      if (const auto* relay = std::get_if<Relay>(&*msg)) {
        const Replica::RelayCheck check = replica_.apply_relay(*relay);
        if (check != Replica::RelayCheck::kOk) {
          std::fprintf(stderr,
                       "ssps_noded[%zu]: divergence at round %zu: relay "
                       "(from=%llu seq=%llu): %s\n",
                       opts_.shard, unit,
                       static_cast<unsigned long long>(relay->from),
                       static_cast<unsigned long long>(relay->seq),
                       Replica::relay_check_name(check));
          std::exit(kExitDivergence);
        }
        continue;
      }
      if (const auto* restore = std::get_if<Restore>(&*msg)) {
        if (restore->round != unit) die(kExitDivergence, "restore round skew");
        replica_.apply_restore(static_cast<std::size_t>(restore->shard));
        continue;
      }
      if (const auto* go = std::get_if<RoundGo>(&*msg)) {
        if (go->round != unit + 1) die(kExitDivergence, "barrier release skew");
        return;
      }
      if (std::holds_alternative<Shutdown>(*msg)) {
        die(kExitCoordinatorGone, "coordinator aborted the deployment");
      }
      die(kExitDivergence, "unexpected control frame at barrier");
    }
  }

  void apply_replay_events(std::size_t unit) {
    while (next_replay_ < replay_events_.size() &&
           replay_events_[next_replay_].round == unit) {
      replica_.apply_restore(
          static_cast<std::size_t>(replay_events_[next_replay_].shard));
      ++next_replay_;
    }
  }

  /// Replay-time twin of persist_snapshots: applies the same
  /// changed-since-last-write test without touching disk, keeping the last
  /// and second-to-last values each node's file could legally hold (a kill
  /// can lose at most the final rename).
  void track_persist(sim::Network& net) {
    if (!store_) return;
    for (const sim::NodeId id : owned_ids()) {
      const std::vector<std::uint8_t>& snap = net.snapshot_of(id);
      if (snap.empty()) continue;
      auto it = persisted_.find(id);
      if (it != persisted_.end() && it->second == snap) continue;
      if (it != persisted_.end()) prev_persisted_[id] = it->second;
      persisted_[id] = snap;
    }
  }

  /// End-of-replay checkpoint audit. Each owned node's file must hold the
  /// last value the previous incarnation persisted — then the disk bytes
  /// are adopted as the authoritative snapshot — or the one before it
  /// (the kill landed ahead of the final persist; the replayed in-memory
  /// snapshot stays authoritative so every replica restores from the same
  /// bytes). Anything else is a torn or foreign checkpoint: divergence.
  void adopt_disk_snapshots(sim::Network& net) {
    if (!store_) return;
    for (const sim::NodeId id : owned_ids()) {
      std::optional<std::vector<std::uint8_t>> disk = store_->load(id);
      const auto last = persisted_.find(id);
      if (!disk) {
        if (last == persisted_.end()) continue;  // never captured → no file
        if (prev_persisted_.find(id) == prev_persisted_.end()) {
          continue;  // died before this node's only persist
        }
        die(kExitDivergence, "disk snapshot missing for a persisted node");
      }
      if (last != persisted_.end() && *disk == last->second) {
        net.mutable_snapshot(id) = std::move(*disk);
        continue;
      }
      const auto prev = prev_persisted_.find(id);
      if (prev != prev_persisted_.end() && *disk == prev->second) continue;
      die(kExitDivergence, "disk snapshot diverges from replay");
    }
  }

  /// Persists each owned node's checkpoint when it changed since the last
  /// write (snapshot capture itself runs on the simulator's cadence).
  void persist_snapshots(sim::Network& net) {
    if (!store_) return;
    for (const sim::NodeId id : owned_ids()) {
      const std::vector<std::uint8_t>& snap = net.snapshot_of(id);
      if (snap.empty()) continue;
      auto it = persisted_.find(id);
      if (it != persisted_.end() && it->second == snap) continue;
      if (!store_->save(id, snap)) {
        die(kExitBadSpec, "snapshot write failed");
      }
      persisted_[id] = snap;
    }
  }

  std::vector<sim::NodeId> owned_ids() {
    std::vector<sim::NodeId> ids;
    const auto add = [&](sim::NodeId id) {
      if (shard_of(id, replica_.procs()) == opts_.shard) ids.push_back(id);
    };
    if (replica_.runner().spec().mode == scenario::Mode::kSingleTopic) {
      add(replica_.runner().single().supervisor_id());
      for (const sim::NodeId id : replica_.runner().single().subscriber_ids()) {
        add(id);
      }
    } else {
      for (const sim::NodeId id : replica_.runner().supervisor_ids()) add(id);
      for (const sim::NodeId id : replica_.runner().client_ids()) add(id);
    }
    std::sort(ids.begin(), ids.end(),
              [](sim::NodeId a, sim::NodeId b) { return a.value < b.value; });
    return ids;
  }

  void send_ctrl(CtrlMsg msg) {
    std::vector<std::uint8_t> out;
    encode_ctrl(msg, out);
    if (!sock_.send_all(out)) die(kExitCoordinatorGone, "coordinator hung up");
  }

  std::optional<CtrlMsg> read_ctrl(int timeout_ms) {
    const std::optional<std::vector<std::uint8_t>> frame =
        sock_.read_frame(stream_, timeout_ms);
    if (!frame) return std::nullopt;
    CtrlParse parsed = parse_ctrl(*frame);
    if (!parsed.ok()) die(kExitDivergence, "undecodable control frame");
    return std::move(parsed.msg);
  }

  [[noreturn]] void die(int code, const char* what) {
    std::fprintf(stderr, "ssps_noded[%zu]: %s\n", opts_.shard, what);
    std::exit(code);
  }

  int fail(int code, const char* what) {
    std::fprintf(stderr, "ssps_noded[%zu]: %s\n", opts_.shard, what);
    return code;
  }

  NodedOptions opts_;
  Replica replica_;
  net::Socket sock_;
  net::FrameAssembler stream_;
  std::optional<SnapshotStore> store_;
  std::map<sim::NodeId, std::vector<std::uint8_t>> persisted_;
  std::map<sim::NodeId, std::vector<std::uint8_t>> prev_persisted_;
  std::vector<Restore> replay_events_;
  std::size_t next_replay_ = 0;
};

}  // namespace

int run_noded(const NodedOptions& opts) {
  scenario::ScenarioSpec spec;
  if (!build_scenario(opts.choice, spec)) {
    std::fprintf(stderr, "ssps_noded: unknown scenario '%s'\n",
                 opts.choice.name.c_str());
    return kExitBadSpec;
  }
  const std::string unsupported = deploy_unsupported(spec);
  if (!unsupported.empty()) {
    std::fprintf(stderr, "ssps_noded: %s\n", unsupported.c_str());
    return kExitBadSpec;
  }
  if (opts.procs == 0 || opts.shard >= opts.procs) {
    std::fprintf(stderr, "ssps_noded: shard %zu out of range for %zu procs\n",
                 opts.shard, opts.procs);
    return kExitBadSpec;
  }
  Daemon daemon(opts, std::move(spec));
  return daemon.run();
}

}  // namespace ssps::proc
