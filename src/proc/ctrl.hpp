// Round-coordinator control protocol for the multi-process deployment.
//
// Control frames share the wire codec's outer shape —
// [u8 type][u64 payload length][u32 CRC]— so one FrameAssembler serves a
// connection carrying both protocol messages and control traffic; the
// type bytes live at 0x40+, far from WireType's 1..14, so neither parser
// can mistake the other's frames.
//
// The per-unit barrier exchange (all within one TCP connection per
// daemon, so ordering is guaranteed):
//
//   daemon  -> coord : Relay*  (its shard's cross-shard sends, seq order)
//   daemon  -> coord : RoundDone{round, delivered, digest, relays}
//   coord   -> daemon: Relay*  (sends addressed to this daemon's shard)
//   coord   -> daemon: Restore{round, shard}*  (lockstep recovery events)
//   coord   -> daemon: RoundGo{round + 1}
//
// and at end of run:
//
//   daemon  -> coord : Report{json}
//   coord   -> daemon: Shutdown
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "wire/codec.hpp"

namespace ssps::proc {

enum class CtrlType : std::uint8_t {
  kRoundGo = 0x40,
  kRoundDone = 0x41,
  kRelay = 0x42,
  kRestore = 0x43,
  kReport = 0x44,
  kShutdown = 0x45,
};

/// Barrier release: the receiver may execute unit `round`.
struct RoundGo {
  std::uint64_t round = 0;
};

/// Barrier arrival: the sender finished unit `round` having delivered
/// `delivered` messages, its replica state digests to `digest`, and it
/// sent `relays` Relay frames ahead of this ack.
struct RoundDone {
  std::uint64_t round = 0;
  std::uint64_t delivered = 0;
  std::uint64_t digest = 0;
  std::uint64_t relays = 0;
};

/// One cross-shard message: the wire-codec frame of the envelope stamped
/// (from, seq) in the canonical send order, addressed to `to`.
struct Relay {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> frame;
};

/// Lockstep recovery event: after unit `round`, every replica crash+
/// recovers (through the stale-snapshot path) the alive subscribers owned
/// by `shard`.
struct Restore {
  std::uint64_t round = 0;
  std::uint64_t shard = 0;
};

/// A replica's final JSON report, byte-compared across the fleet.
struct Report {
  std::string json;
};

struct Shutdown {};

using CtrlMsg =
    std::variant<RoundGo, RoundDone, Relay, Restore, Report, Shutdown>;

/// Appends the full control frame for `msg` to `out`.
void encode_ctrl(const CtrlMsg& msg, std::vector<std::uint8_t>& out);

struct CtrlParse {
  std::optional<CtrlMsg> msg;
  wire::DecodeError error;  // set when !msg

  bool ok() const { return msg.has_value(); }
};

/// Total parse of one complete control frame (as handed out by
/// FrameAssembler): checksum, type and payload structure are all
/// verified; any damage returns a structured error.
CtrlParse parse_ctrl(std::span<const std::uint8_t> frame);

}  // namespace ssps::proc
