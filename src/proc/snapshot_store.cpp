#include "proc/snapshot_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "wire/codec.hpp"

namespace ssps::proc {
namespace {

constexpr char kMagic[4] = {'S', 'N', 'A', 'P'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

SnapshotStore::SnapshotStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::filesystem::path SnapshotStore::path_of(sim::NodeId id) const {
  return dir_ / ("node-" + std::to_string(id.value) + ".snap");
}

bool SnapshotStore::save(sim::NodeId id, std::span<const std::uint8_t> bytes) const {
  std::vector<std::uint8_t> blob;
  blob.reserve(16 + bytes.size());
  blob.insert(blob.end(), kMagic, kMagic + 4);
  put_u32(blob, wire::crc32(bytes));
  put_u64(blob, bytes.size());
  blob.insert(blob.end(), bytes.begin(), bytes.end());

  const std::filesystem::path final_path = path_of(id);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";  // same directory, so rename is atomic
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return std::rename(tmp_path.c_str(), final_path.c_str()) == 0;
}

std::optional<std::vector<std::uint8_t>> SnapshotStore::load(sim::NodeId id) const {
  std::FILE* f = std::fopen(path_of(id).c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> blob;
  std::uint8_t chunk[65536];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f);
    blob.insert(blob.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  std::fclose(f);
  if (blob.size() < 16 || std::memcmp(blob.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(blob[4 + i]) << (8 * i);
  }
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(blob[8 + i]) << (8 * i);
  }
  if (blob.size() - 16 != len) return std::nullopt;
  std::vector<std::uint8_t> payload(blob.begin() + 16, blob.end());
  if (wire::crc32(payload) != crc) return std::nullopt;
  return payload;
}

std::vector<sim::NodeId> SnapshotStore::stored() const {
  std::vector<sim::NodeId> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node-", 0) != 0) continue;
    const std::size_t dot = name.find(".snap");
    if (dot == std::string::npos) continue;
    const std::string digits = name.substr(5, dot - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(sim::NodeId{std::stoull(digits)});
  }
  std::sort(out.begin(), out.end(),
            [](sim::NodeId a, sim::NodeId b) { return a.value < b.value; });
  return out;
}

}  // namespace ssps::proc
