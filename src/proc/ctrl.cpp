#include "proc/ctrl.hpp"

#include "common/decode.hpp"
#include "common/encode.hpp"

namespace ssps::proc {
namespace {

/// Seals `payload` into a frame of `type`: same header shape and CRC
/// discipline as wire::encode_message (CRC over type byte then payload).
void seal(CtrlType type, const common::Encoder& payload,
          std::vector<std::uint8_t>& out) {
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  out.push_back(type_byte);
  const std::uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  std::uint32_t crc = wire::crc32({&type_byte, 1});
  crc = wire::crc32(payload.buffer(), crc);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.insert(out.end(), payload.buffer().begin(), payload.buffer().end());
}

}  // namespace

void encode_ctrl(const CtrlMsg& msg, std::vector<std::uint8_t>& out) {
  common::Encoder payload;
  CtrlType type = CtrlType::kShutdown;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RoundGo>) {
          type = CtrlType::kRoundGo;
          payload.u64(m.round);
        } else if constexpr (std::is_same_v<T, RoundDone>) {
          type = CtrlType::kRoundDone;
          payload.u64(m.round);
          payload.u64(m.delivered);
          payload.u64(m.digest);
          payload.u64(m.relays);
        } else if constexpr (std::is_same_v<T, Relay>) {
          type = CtrlType::kRelay;
          payload.u64(m.from);
          payload.u64(m.to);
          payload.u64(m.seq);
          payload.bytes(m.frame.data(), m.frame.size());
        } else if constexpr (std::is_same_v<T, Restore>) {
          type = CtrlType::kRestore;
          payload.u64(m.round);
          payload.u64(m.shard);
        } else if constexpr (std::is_same_v<T, Report>) {
          type = CtrlType::kReport;
          payload.string(m.json);
        } else {
          type = CtrlType::kShutdown;
        }
      },
      msg);
  seal(type, payload, out);
}

CtrlParse parse_ctrl(std::span<const std::uint8_t> frame) {
  CtrlParse out;
  auto fail = [&](wire::DecodeStatus status, std::size_t offset) {
    out.error = {status, offset};
    return out;
  };
  constexpr std::size_t kHeader = 13;
  if (frame.size() < kHeader) {
    return fail(wire::DecodeStatus::kTruncated, frame.size());
  }
  std::uint64_t payload_len = 0;
  for (int i = 0; i < 8; ++i) {
    payload_len |= static_cast<std::uint64_t>(frame[1 + i]) << (8 * i);
  }
  if (frame.size() - kHeader < payload_len) {
    return fail(wire::DecodeStatus::kTruncated, frame.size());
  }
  std::uint32_t claimed = 0;
  for (int i = 0; i < 4; ++i) {
    claimed |= static_cast<std::uint32_t>(frame[9 + i]) << (8 * i);
  }
  const std::span<const std::uint8_t> payload =
      frame.subspan(kHeader, static_cast<std::size_t>(payload_len));
  std::uint32_t actual = wire::crc32(frame.first(1));
  actual = wire::crc32(payload, actual);
  if (claimed != actual) return fail(wire::DecodeStatus::kBadChecksum, 9);

  common::Decoder d(payload);
  auto bad = [&] { return fail(wire::DecodeStatus::kBadPayload, d.offset()); };
  switch (static_cast<CtrlType>(frame[0])) {
    case CtrlType::kRoundGo: {
      RoundGo m;
      if (!d.u64(m.round) || !d.done()) return bad();
      out.msg = m;
      return out;
    }
    case CtrlType::kRoundDone: {
      RoundDone m;
      if (!d.u64(m.round) || !d.u64(m.delivered) || !d.u64(m.digest) ||
          !d.u64(m.relays) || !d.done()) {
        return bad();
      }
      out.msg = m;
      return out;
    }
    case CtrlType::kRelay: {
      Relay m;
      if (!d.u64(m.from) || !d.u64(m.to) || !d.u64(m.seq) ||
          !d.bytes(m.frame) || !d.done()) {
        return bad();
      }
      out.msg = std::move(m);
      return out;
    }
    case CtrlType::kRestore: {
      Restore m;
      if (!d.u64(m.round) || !d.u64(m.shard) || !d.done()) return bad();
      out.msg = m;
      return out;
    }
    case CtrlType::kReport: {
      Report m;
      if (!d.string(m.json) || !d.done()) return bad();
      out.msg = std::move(m);
      return out;
    }
    case CtrlType::kShutdown: {
      if (!d.done()) return bad();
      out.msg = Shutdown{};
      return out;
    }
  }
  return fail(wire::DecodeStatus::kUnknownType, 0);
}

}  // namespace ssps::proc
