#include "proc/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/handshake.hpp"
#include "net/socket.hpp"
#include "proc/barrier.hpp"
#include "scenario/json.hpp"
#include "scenario/report.hpp"

namespace ssps::proc {
namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

struct Conn {
  net::Socket sock;
  net::FrameAssembler stream;
  pid_t pid = -1;
  bool eof = false;
};

class Coordinator {
 public:
  Coordinator(const DeployOptions& opts, scenario::ScenarioSpec spec)
      : opts_(opts),
        replica_(std::move(spec), opts.procs),
        tracker_(opts.procs),
        conns_(opts.procs) {}

  int run() {
    std::optional<net::Listener> listener = net::Listener::bind_local(0);
    if (!listener) return fail("cannot bind a loopback listener");
    listener_ = std::move(*listener);
    for (std::size_t shard = 0; shard < opts_.procs; ++shard) {
      const pid_t pid = spawn_daemon(shard, 0);
      if (pid < 0) return fail("failed to spawn ssps_noded");
      conns_[shard].pid = pid;
    }
    // Daemons race to connect; each Hello names its shard (shard + 1, so
    // shard 0 is distinct from the null id), which maps the connection.
    for (std::size_t i = 0; i < opts_.procs; ++i) {
      if (!accept_daemon(kNoShard)) return 1;
    }

    const auto start = std::chrono::steady_clock::now();
    replica_.install_hook([this](sim::Network& net, std::size_t unit,
                                 std::size_t delivered) {
      post_unit(net, unit, delivered);
    });
    const scenario::ScenarioReport& report = replica_.run();
    wall_ms_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    const std::string own_json = report.to_json().dump(2);
    if (!compare_reports(own_json)) return 1;
    shutdown_fleet();
    if (!reap_fleet()) return 1;
    if (opts_.diff_sim && !diff_against_sim(own_json)) return 1;
    emit(report, own_json);
    return report.ok && report.oracle_ok ? 0 : 1;
  }

 private:
  // ---- fleet management -------------------------------------------------

  pid_t spawn_daemon(std::size_t shard, std::uint64_t replay_upto) {
    std::vector<std::string> args;
    args.push_back(opts_.noded_path);
    args.push_back("--scenario");
    args.push_back(opts_.choice.name);
    args.push_back("--seed");
    args.push_back(std::to_string(opts_.choice.seed));
    args.push_back("--nodes");
    args.push_back(std::to_string(opts_.choice.nodes));
    if (opts_.choice.scramble) args.push_back("--scramble");
    if (opts_.choice.oracle) args.push_back("--oracle");
    if (opts_.choice.snapshot_every > 0) {
      args.push_back("--snapshot-every");
      args.push_back(std::to_string(opts_.choice.snapshot_every));
    }
    args.push_back("--procs");
    args.push_back(std::to_string(opts_.procs));
    args.push_back("--shard");
    args.push_back(std::to_string(shard));
    args.push_back("--port");
    args.push_back(std::to_string(listener_.port()));
    args.push_back("--round-timeout");
    args.push_back(std::to_string(opts_.round_timeout_ms));
    if (!opts_.snapshot_dir.empty()) {
      args.push_back("--snapshot-dir");
      args.push_back(opts_.snapshot_dir);
    }
    if (opts_.dup_acks) args.push_back("--dup-acks");
    if (replay_upto > 0) {
      args.push_back("--replay-upto");
      args.push_back(std::to_string(replay_upto));
      for (const Restore& ev : restore_events_) {
        args.push_back("--restore-event");
        args.push_back(std::to_string(ev.round) + ":" + std::to_string(ev.shard));
      }
    }

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      std::fprintf(stderr, "ssps_deploy: execv(%s) failed\n", argv[0]);
      ::_exit(127);
    }
    return pid;
  }

  /// Accepts one daemon connection and maps it by the shard its Hello
  /// claims. `want` = kNoShard accepts any not-yet-connected shard
  /// (startup); otherwise the connection must be the respawned shard.
  bool accept_daemon(std::size_t want) {
    std::optional<net::Socket> sock =
        listener_.accept_one(opts_.round_timeout_ms);
    if (!sock) return fail("timed out waiting for a daemon to connect");
    net::FrameAssembler stream;
    const net::HelloResult hello =
        net::expect_hello(*sock, stream, opts_.round_timeout_ms);
    if (!hello.ok) {
      std::fprintf(stderr, "ssps_deploy: daemon handshake rejected: %s\n",
                   wire::decode_status_name(hello.status));
      return false;
    }
    if (hello.node.value < 1 || hello.node.value > opts_.procs) {
      return fail("daemon claimed an out-of-range shard");
    }
    const std::size_t shard = static_cast<std::size_t>(hello.node.value - 1);
    if (want != kNoShard && shard != want) {
      return fail("respawned daemon claimed the wrong shard");
    }
    if (want == kNoShard && conns_[shard].sock.valid()) {
      return fail("two daemons claimed the same shard");
    }
    if (!net::send_hello(*sock, sim::NodeId{0})) {
      return fail("hello reply failed");
    }
    conns_[shard].sock = std::move(*sock);
    conns_[shard].stream = std::move(stream);
    conns_[shard].eof = false;
    return true;
  }

  void shutdown_fleet() {
    std::vector<std::uint8_t> frame;
    encode_ctrl(Shutdown{}, frame);
    for (Conn& conn : conns_) {
      if (conn.sock.valid() && !conn.eof) conn.sock.send_all(frame);
    }
  }

  bool reap_fleet() {
    bool ok = true;
    for (std::size_t shard = 0; shard < conns_.size(); ++shard) {
      if (conns_[shard].pid < 0) continue;
      int status = 0;
      ::waitpid(conns_[shard].pid, &status, 0);
      conns_[shard].pid = -1;
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "ssps_deploy: shard %zu daemon exited abnormally\n",
                     shard);
        ok = false;
      }
    }
    return ok;
  }

  [[noreturn]] void abort_deployment(const std::string& what) {
    std::fprintf(stderr, "ssps_deploy: %s\n", what.c_str());
    for (Conn& conn : conns_) {
      if (conn.pid > 0) ::kill(conn.pid, SIGKILL);
    }
    for (Conn& conn : conns_) {
      if (conn.pid > 0) {
        int status = 0;
        ::waitpid(conn.pid, &status, 0);
        conn.pid = -1;
      }
    }
    std::exit(1);
  }

  // ---- the barrier hook -------------------------------------------------

  void post_unit(sim::Network& net, std::size_t unit, std::size_t delivered) {
    (void)net;
    (void)delivered;
    units_ = unit;
    // Every replica digests the same pre-restore state point: daemons in
    // RoundDone, the coordinator here.
    const std::uint64_t expect = replica_.digest();
    tracker_.begin_round(unit, expect);
    relay_queues_.assign(opts_.procs, {});

    std::size_t killed = kNoShard;
    if (opts_.kill_shard >= 0 && !kill_done_ &&
        unit == static_cast<std::size_t>(opts_.kill_round)) {
      killed = static_cast<std::size_t>(opts_.kill_shard);
      ::kill(conns_[killed].pid, SIGKILL);
      kill_done_ = true;
    }

    gather(unit, killed);
    if (!tracker_.verify_relay_counts()) {
      abort_deployment("relay count disagrees with a shard's ack");
    }

    if (killed != kNoShard) respawn(unit, killed);

    // Forward: relays first, then restore events, then the release — the
    // per-connection order every daemon's barrier_wait depends on.
    for (std::size_t target = 0; target < opts_.procs; ++target) {
      for (const Relay& relay : relay_queues_[target]) {
        relays_forwarded_ += 1;
        relay_bytes_ += relay.frame.size();
        send_to(target, relay);
      }
    }
    if (killed != kNoShard) {
      Restore ev;
      ev.round = unit;
      ev.shard = killed;
      restore_events_.push_back(ev);
      for (std::size_t shard = 0; shard < opts_.procs; ++shard) {
        send_to(shard, ev);
      }
      replica_.apply_restore(killed);
    }
    for (std::size_t shard = 0; shard < opts_.procs; ++shard) {
      send_to(shard, RoundGo{unit + 1});
    }
  }

  /// Drains daemon traffic until every shard has acked round `unit` or
  /// died. Only the scheduled kill may die; any other EOF aborts.
  void gather(std::size_t unit, std::size_t killed) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts_.round_timeout_ms);
    while (!tracker_.complete()) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> owner;
      for (std::size_t shard = 0; shard < opts_.procs; ++shard) {
        if (conns_[shard].eof || !conns_[shard].sock.valid()) continue;
        fds.push_back({conns_[shard].sock.fd(), POLLIN, 0});
        owner.push_back(shard);
      }
      if (fds.empty()) abort_deployment("barrier cannot complete: no peers left");
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        std::string who;
        for (const std::size_t shard : tracker_.missing()) {
          who += (who.empty() ? "" : ",") + std::to_string(shard);
        }
        abort_deployment("barrier timeout at round " + std::to_string(unit) +
                         ", missing shards: " + who);
      }
      const int ready =
          ::poll(fds.data(), fds.size(), static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        abort_deployment("poll failed");
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const std::size_t shard = owner[i];
        const int got = conns_[shard].sock.recv_into(conns_[shard].stream, 0);
        if (got == 0) {
          conns_[shard].eof = true;
          if (shard == killed) {
            tracker_.mark_dead(shard);
          } else {
            abort_deployment("shard " + std::to_string(shard) +
                             " daemon died unexpectedly");
          }
          continue;
        }
        if (got < 0) continue;  // spurious wakeup
        drain_frames(shard, unit);
      }
    }
  }

  void drain_frames(std::size_t shard, std::size_t unit) {
    Conn& conn = conns_[shard];
    while (std::optional<std::vector<std::uint8_t>> frame = conn.stream.next()) {
      CtrlParse parsed = parse_ctrl(*frame);
      if (!parsed.ok()) {
        abort_deployment("undecodable frame from shard " + std::to_string(shard));
      }
      handle_frame(shard, std::move(*parsed.msg), unit);
    }
    if (conn.stream.failed()) {
      abort_deployment("oversized frame from shard " + std::to_string(shard));
    }
  }

  void handle_frame(std::size_t shard, CtrlMsg msg, std::size_t unit) {
    if (auto* relay = std::get_if<Relay>(&msg)) {
      if (shard_of(sim::NodeId{relay->from}, opts_.procs) != shard) {
        abort_deployment("shard " + std::to_string(shard) +
                         " relayed another shard's send");
      }
      const Replica::RelayCheck check = replica_.verify_relay(*relay);
      if (check != Replica::RelayCheck::kOk) {
        abort_deployment("divergence at round " + std::to_string(unit) +
                         ": relay from shard " + std::to_string(shard) + ": " +
                         Replica::relay_check_name(check));
      }
      tracker_.count_relay(shard);
      const std::size_t target = shard_of(sim::NodeId{relay->to}, opts_.procs);
      relay_queues_[target].push_back(std::move(*relay));
      return;
    }
    if (const auto* done = std::get_if<RoundDone>(&msg)) {
      tracker_.claim_relays(shard, done->relays);
      const BarrierTracker::Ack ack =
          tracker_.round_done(shard, done->round, done->digest);
      switch (ack) {
        case BarrierTracker::Ack::kAccepted:
        case BarrierTracker::Ack::kDuplicate:
        case BarrierTracker::Ack::kStale:
          return;
        case BarrierTracker::Ack::kWrongRound:
          abort_deployment("shard " + std::to_string(shard) +
                           " acked a future round");
        case BarrierTracker::Ack::kDigestMismatch:
          abort_deployment("divergence at round " + std::to_string(unit) +
                           ": shard " + std::to_string(shard) +
                           " digest mismatch");
      }
      return;
    }
    abort_deployment("unexpected control frame from shard " +
                     std::to_string(shard));
  }

  /// Replaces the killed shard's process: replay-respawn, re-handshake,
  /// digest-check its rejoin ack, and rebuild its outbox from the
  /// coordinator's own (already verified) replica — whatever the dead
  /// process managed to send before the kill is discarded wholesale, so
  /// the fleet never consumes a half-delivered round.
  void respawn(std::size_t unit, std::size_t killed) {
    int status = 0;
    ::waitpid(conns_[killed].pid, &status, 0);
    conns_[killed].pid = -1;
    conns_[killed].sock.close();

    for (std::vector<Relay>& queue : relay_queues_) {
      std::erase_if(queue, [&](const Relay& relay) {
        return shard_of(sim::NodeId{relay.from}, opts_.procs) == killed;
      });
    }
    std::vector<Relay> outbox = replica_.collect_outbox(killed);
    for (Relay& relay : outbox) {
      const std::size_t target = shard_of(sim::NodeId{relay.to}, opts_.procs);
      relay_queues_[target].push_back(std::move(relay));
    }

    const pid_t pid = spawn_daemon(killed, unit);
    if (pid < 0) abort_deployment("failed to respawn ssps_noded");
    conns_[killed].pid = pid;
    if (!accept_daemon(killed)) abort_deployment("respawn handshake failed");
    respawns_ += 1;

    // The respawned replica replays units 1..unit locally, audits its disk
    // snapshots, then acks the current round (no relays — see outbox above).
    std::optional<std::vector<std::uint8_t>> frame =
        conns_[killed].sock.read_frame(conns_[killed].stream,
                                       opts_.round_timeout_ms);
    if (!frame) abort_deployment("respawned daemon sent no rejoin ack");
    CtrlParse parsed = parse_ctrl(*frame);
    const auto* done =
        parsed.ok() ? std::get_if<RoundDone>(&*parsed.msg) : nullptr;
    if (done == nullptr || done->round != unit) {
      abort_deployment("respawned daemon's rejoin ack is malformed");
    }
    tracker_.mark_alive(killed);
    tracker_.claim_relays(killed, done->relays);
    const BarrierTracker::Ack ack =
        tracker_.round_done(killed, done->round, done->digest);
    // kDuplicate is fine: the old process may have acked before the kill
    // landed (digest is checked before duplicate detection).
    if (ack != BarrierTracker::Ack::kAccepted &&
        ack != BarrierTracker::Ack::kDuplicate) {
      abort_deployment("divergence: respawned shard " + std::to_string(killed) +
                       " replayed to a different digest");
    }
  }

  template <typename Msg>
  void send_to(std::size_t shard, const Msg& msg) {
    std::vector<std::uint8_t> frame;
    encode_ctrl(CtrlMsg{msg}, frame);
    if (!conns_[shard].sock.send_all(frame)) {
      abort_deployment("lost shard " + std::to_string(shard) +
                       " while forwarding");
    }
  }

  // ---- finalization -----------------------------------------------------

  bool compare_reports(const std::string& own_json) {
    for (std::size_t shard = 0; shard < opts_.procs; ++shard) {
      std::optional<std::vector<std::uint8_t>> frame = conns_[shard].sock.read_frame(
          conns_[shard].stream, opts_.round_timeout_ms);
      if (!frame) {
        abort_deployment("shard " + std::to_string(shard) + " sent no report");
      }
      CtrlParse parsed = parse_ctrl(*frame);
      const auto* report =
          parsed.ok() ? std::get_if<Report>(&*parsed.msg) : nullptr;
      if (report == nullptr) {
        abort_deployment("shard " + std::to_string(shard) +
                         " sent a non-report frame at end of run");
      }
      if (report->json != own_json) {
        std::fprintf(stderr,
                     "ssps_deploy: divergence: shard %zu's final report is not "
                     "byte-identical to the coordinator's\n",
                     shard);
        shutdown_fleet();
        reap_fleet();
        return false;
      }
    }
    return true;
  }

  bool diff_against_sim(const std::string& own_json) {
    scenario::ScenarioSpec spec;
    if (!build_scenario(opts_.choice, spec)) return false;
    scenario::ScenarioRunner pure(std::move(spec));
    const std::string sim_json = pure.run().to_json().dump(2);
    if (sim_json != own_json) {
      std::fprintf(stderr,
                   "ssps_deploy: divergence: live report differs from the "
                   "in-process simulator's\n");
      return false;
    }
    if (!opts_.quiet) {
      std::fprintf(stderr, "ssps_deploy: live report byte-identical to sim\n");
    }
    return true;
  }

  /// The final report is the replica's own ssps_run-compatible document
  /// plus flat "deploy_*" scalars. Keys sort between "converged" and
  /// "threads" in the top-level object, so a differential harness strips
  /// them with a plain `grep -v '"deploy_'` without breaking JSON commas.
  void emit(const scenario::ScenarioReport& report, const std::string& own_json) {
    (void)own_json;
    scenario::Json doc = report.to_json();
    doc["deploy_procs"] = static_cast<std::uint64_t>(opts_.procs);
    doc["deploy_transport"] = "tcp-localhost";
    doc["deploy_rounds"] = static_cast<std::uint64_t>(units_);
    doc["deploy_wall_ms"] = wall_ms_;
    doc["deploy_rounds_per_sec"] =
        wall_ms_ > 0 ? static_cast<double>(units_) * 1000.0 /
                           static_cast<double>(wall_ms_)
                     : 0.0;
    doc["deploy_relays"] = relays_forwarded_;
    doc["deploy_relay_bytes"] = relay_bytes_;
    doc["deploy_respawns"] = respawns_;
    const std::string text = doc.dump(2);
    if (!opts_.out_path.empty()) {
      scenario::write_json_file(opts_.out_path, doc);
    }
    if (!opts_.quiet) std::printf("%s\n", text.c_str());
  }

  bool fail(const char* what) {
    std::fprintf(stderr, "ssps_deploy: %s\n", what);
    return false;
  }

  DeployOptions opts_;
  Replica replica_;
  BarrierTracker tracker_;
  net::Listener listener_;
  std::vector<Conn> conns_;
  std::vector<std::vector<Relay>> relay_queues_;
  std::vector<Restore> restore_events_;
  bool kill_done_ = false;
  std::size_t units_ = 0;
  std::uint64_t wall_ms_ = 0;
  std::uint64_t relays_forwarded_ = 0;
  std::uint64_t relay_bytes_ = 0;
  std::uint64_t respawns_ = 0;
};

}  // namespace

int run_deploy(const DeployOptions& opts) {
  scenario::ScenarioSpec spec;
  if (!build_scenario(opts.choice, spec)) {
    std::fprintf(stderr, "ssps_deploy: unknown scenario '%s'\n",
                 opts.choice.name.c_str());
    return 2;
  }
  const std::string unsupported = deploy_unsupported(spec);
  if (!unsupported.empty()) {
    std::fprintf(stderr, "ssps_deploy: %s\n", unsupported.c_str());
    return 2;
  }
  if (opts.procs < 1 || opts.noded_path.empty()) {
    std::fprintf(stderr, "ssps_deploy: need --procs >= 1 and --noded PATH\n");
    return 2;
  }
  if (opts.kill_shard >= 0) {
    if (static_cast<std::size_t>(opts.kill_shard) >= opts.procs ||
        opts.kill_round < 1) {
      std::fprintf(stderr, "ssps_deploy: kill shard/round out of range\n");
      return 2;
    }
    if (spec.mode != scenario::Mode::kSingleTopic) {
      std::fprintf(stderr,
                   "ssps_deploy: kill/respawn is gated to single-topic "
                   "scenarios (lockstep restore events)\n");
      return 2;
    }
  }
  Coordinator coordinator(opts, std::move(spec));
  return coordinator.run();
}

}  // namespace ssps::proc
