// Replica: the deterministic core every deployment process runs.
//
// The deployment's determinism argument (ISSUE 10): every process —
// the ssps_deploy coordinator and each ssps_noded daemon — runs a FULL
// deterministic replica of the scenario (same spec, same seed, serial
// round scheduler), gated into lockstep by a barrier hook at every
// schedule unit. A daemon "hosts" the shard of nodes whose ids map to it
// (shard_of); within a round, the messages those nodes sent to other
// shards are wire-encoded in the simulator's canonical send order —
// pending-lane order, i.e. ascending seq — and relayed through the
// coordinator to the target shard, which byte-compares each relay
// against the envelope its own replica generated (matched by the
// (sender, seq) stamp) and then swaps the wire-decoded message into the
// in-flight lane, so delivery consumes the bytes that actually crossed
// the socket. Any byte of disagreement is divergence and aborts the
// deployment; agreement means the live execution makes identical
// protocol decisions to the simulator, which is why a live report is
// byte-identical to ssps_run's for the same seed.
//
// Relay messages decode into a replica-owned scratch pool, not the
// simulator's arena: the report never serializes pool telemetry
// (pool_reserved_bytes is deliberately omitted), but keeping the arena
// untouched makes the no-perturbation argument structural rather than
// accounting-dependent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proc/ctrl.hpp"
#include "scenario/runner.hpp"
#include "sched/hook.hpp"
#include "sim/message_pool.hpp"

namespace ssps::proc {

/// Shard owning node `id` under `procs` daemons: ids are dense from 1, so
/// this round-robins nodes (supervisors included) across the fleet.
inline std::size_t shard_of(sim::NodeId id, std::size_t procs) {
  return static_cast<std::size_t>((id.value - 1) % procs);
}

/// The scenario selection both sides of a deployment build their replica
/// from. The coordinator passes exactly these fields to the daemons it
/// spawns; build_scenario must therefore be a pure function of them.
struct ScenarioChoice {
  std::string name = "steady";
  std::uint64_t seed = 1;
  std::uint64_t nodes = 0;  // 0 = scenario default
  bool scramble = false;
  bool oracle = false;
  std::uint64_t snapshot_every = 0;  // 0 = keep the builtin's cadence
};

/// Builds the ScenarioSpec for `choice` the way ssps_run does (builtin →
/// scrambled variant → oracle flag), plus the deploy-only snapshot-cadence
/// override. Returns false (leaving `out` untouched) for an unknown
/// scenario name.
bool build_scenario(const ScenarioChoice& choice, scenario::ScenarioSpec& out);

/// Rejects specs the deployment can't run in lockstep (timed/async
/// schedulers, multi-threaded rounds). Returns an error message or "".
std::string deploy_unsupported(const scenario::ScenarioSpec& spec);

class Replica {
 public:
  Replica(scenario::ScenarioSpec spec, std::size_t procs);

  /// Installs the barrier hook (serial scheduler wrapped in a
  /// HookScheduler) and turns on sender attribution. Must be called
  /// before run(), after which every schedule unit ends in `post_unit`.
  void install_hook(sched::HookScheduler::PostUnit post_unit);

  const scenario::ScenarioReport& run() { return runner_.run(); }

  scenario::ScenarioRunner& runner() { return runner_; }
  sim::Network& net() { return runner_.net(); }
  std::size_t procs() const { return procs_; }

  /// Order-sensitive state fingerprint for the barrier digest: round,
  /// traffic totals, in-flight count. Any cross-replica difference in
  /// protocol decisions moves one of these within a round or two.
  std::uint64_t digest();

  /// The cross-shard sends originated by `shard`'s nodes this round, in
  /// canonical (seq) order, wire-encoded. Envelopes without a wire
  /// encoding or without sender attribution (harness-originated traffic,
  /// which every replica generates locally) don't travel.
  std::vector<Relay> collect_outbox(std::size_t shard);

  enum class RelayCheck {
    kOk,           ///< matched the local envelope byte-for-byte
    kUnknown,      ///< no in-flight envelope stamped (from, seq)
    kMismatch,     ///< local envelope encodes to different bytes
    kUndecodable,  ///< relay bytes don't decode (damaged in flight)
  };
  static const char* relay_check_name(RelayCheck c);

  /// Byte-compares `relay` against the local replica's envelope.
  RelayCheck verify_relay(const Relay& relay);

  /// verify_relay + swaps the wire-decoded message into the in-flight
  /// lane, so delivery consumes the socket bytes.
  RelayCheck apply_relay(const Relay& relay);

  /// Lockstep recovery event: crash + recover (stale-snapshot path) every
  /// alive subscriber owned by `shard`, in id order. Single-topic only —
  /// deploy kills are gated to single-topic scenarios.
  void apply_restore(std::size_t shard);

 private:
  std::size_t procs_;
  /// Scratch arena for wire-decoded relay payloads (see file comment).
  /// Declared before the runner: the Network's destructor reclaims
  /// in-flight envelopes through their owning pool, and swapped relay
  /// messages live here, so this pool must outlive the runner.
  sim::MessagePool relay_pool_;
  scenario::ScenarioRunner runner_;
};

}  // namespace ssps::proc
