#include "proc/replica.hpp"

#include <memory>
#include <utility>

#include "common/encode.hpp"
#include "scenario/builtin.hpp"
#include "sched/serial.hpp"
#include "wire/codec.hpp"

namespace ssps::proc {

bool build_scenario(const ScenarioChoice& choice, scenario::ScenarioSpec& out) {
  if (!scenario::is_builtin(choice.name)) return false;
  scenario::ScenarioSpec spec = scenario::builtin_scenario(
      choice.name, choice.seed, static_cast<std::size_t>(choice.nodes));
  if (choice.scramble) spec = scenario::scrambled_variant(std::move(spec));
  if (choice.scramble || choice.oracle) spec.oracle = true;
  // Snapshot cadence is report-neutral (snapshot capture is a pure state
  // read), so a deploy-side override still byte-matches an ssps_run of
  // the unmodified builtin.
  if (choice.snapshot_every > 0) spec.snapshot_every = choice.snapshot_every;
  out = std::move(spec);
  return true;
}

std::string deploy_unsupported(const scenario::ScenarioSpec& spec) {
  if (spec.exec.scheduler != scenario::Scheduler::kRounds) {
    return "deployment runs round-scheduled scenarios only (timed/async "
           "schedulers have no per-round barrier point)";
  }
  if (spec.exec.threads > 1) {
    return "deployment replicas are serial (sender attribution is "
           "single-threaded)";
  }
  return "";
}

Replica::Replica(scenario::ScenarioSpec spec, std::size_t procs)
    : procs_(procs), runner_(std::move(spec)) {}

void Replica::install_hook(sched::HookScheduler::PostUnit post_unit) {
  net().set_attribute_sends(true);
  net().set_scheduler(std::make_unique<sched::HookScheduler>(
      std::make_unique<sched::SerialScheduler>(), std::move(post_unit)));
}

std::uint64_t Replica::digest() {
  common::Encoder enc;
  sim::Network& n = net();
  enc.u64(n.round());
  enc.u64(n.metrics().total_sent());
  enc.u64(n.metrics().total_delivered());
  enc.u64(n.metrics().total_bytes());
  enc.u64(n.pending_messages());
  return wire::crc32(enc.buffer());
}

std::vector<Relay> Replica::collect_outbox(std::size_t shard) {
  std::vector<Relay> out;
  net().for_each_pending([&](const sim::Envelope& env) {
    if (env.from.is_null()) return;
    if (shard_of(env.from, procs_) != shard) return;
    if (shard_of(env.to, procs_) == shard) return;  // process-local
    Relay relay;
    relay.from = env.from.value;
    relay.to = env.to.value;
    relay.seq = env.seq;
    if (!wire::encode_message(*env.msg, relay.frame)) return;
    out.push_back(std::move(relay));
  });
  return out;
}

const char* Replica::relay_check_name(RelayCheck c) {
  switch (c) {
    case RelayCheck::kOk: return "ok";
    case RelayCheck::kUnknown: return "unknown-envelope";
    case RelayCheck::kMismatch: return "byte-mismatch";
    case RelayCheck::kUndecodable: return "undecodable";
  }
  return "invalid";
}

Replica::RelayCheck Replica::verify_relay(const Relay& relay) {
  const sim::Envelope* env =
      net().find_pending(sim::NodeId{relay.from}, relay.seq);
  if (env == nullptr || env->to.value != relay.to) return RelayCheck::kUnknown;
  std::vector<std::uint8_t> local;
  if (!wire::encode_message(*env->msg, local)) return RelayCheck::kMismatch;
  if (local != relay.frame) return RelayCheck::kMismatch;
  return RelayCheck::kOk;
}

Replica::RelayCheck Replica::apply_relay(const Relay& relay) {
  const RelayCheck check = verify_relay(relay);
  if (check != RelayCheck::kOk) return check;
  wire::DecodeResult decoded = wire::decode_message(relay.frame, relay_pool_);
  if (!decoded.ok()) return RelayCheck::kUndecodable;
  // The wire deliberately omits telemetry stamps (Publication::born), so
  // the decoded copy adopts them from the verified-identical local
  // envelope — otherwise the swap would skew delivery-latency histograms.
  const sim::Envelope* env =
      net().find_pending(sim::NodeId{relay.from}, relay.seq);
  decoded.msg->adopt_offwire(*env->msg);
  net().replace_pending_message(sim::NodeId{relay.from}, relay.seq,
                                std::move(decoded.msg));
  return RelayCheck::kOk;
}

void Replica::apply_restore(std::size_t shard) {
  pubsub::PubSubSystem& sys = runner_.single();
  // subscriber_ids() is a fresh id-ordered vector of alive subscribers;
  // every replica computes the same list from the same state, so the
  // crash+recover sequence (and its rng draws) is lockstep by
  // construction.
  for (const sim::NodeId id : sys.subscriber_ids()) {
    if (shard_of(id, procs_) != shard) continue;
    sys.crash(id);
    sys.recover_pubsub_subscriber(id);
  }
}

}  // namespace ssps::proc
