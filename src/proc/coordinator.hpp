// The ssps_deploy orchestrator: spawns the ssps_noded fleet, runs its own
// lockstep replica as the round coordinator, verifies and routes every
// cross-shard relay, arbitrates the per-unit barrier (digest cross-check
// included), drives the scheduled kill/respawn fault, byte-compares every
// replica's final report, and emits the ssps_run-compatible JSON report
// (plus flat "deploy_*" keys a differential harness strips).
#pragma once

#include <cstdint>
#include <string>

#include "proc/replica.hpp"

namespace ssps::proc {

struct DeployOptions {
  ScenarioChoice choice;
  std::size_t procs = 2;
  /// Path to the ssps_noded binary to spawn.
  std::string noded_path;
  /// Directory for daemon snapshot files ("" = no persistence). Required
  /// when a kill is scheduled.
  std::string snapshot_dir;
  /// Scheduled fault: SIGKILL the daemon hosting `kill_shard` when the
  /// barrier for unit `kill_round` opens, then respawn it with a replay
  /// prefix. kill_shard < 0 disables.
  int kill_shard = -1;
  std::uint64_t kill_round = 0;
  int round_timeout_ms = 120000;
  /// Test hook: daemons send every RoundDone twice.
  bool dup_acks = false;
  /// Also run a pure in-process ScenarioRunner and byte-compare reports.
  bool diff_sim = false;
  /// Write the final JSON here too ("" = stdout only).
  std::string out_path;
  bool quiet = false;
};

/// Runs the deployment to completion. Returns 0 when the run, the oracle,
/// every cross-replica byte comparison and (if requested) the simulator
/// differential all pass.
int run_deploy(const DeployOptions& opts);

}  // namespace ssps::proc
