// Disk persistence for Network::enable_snapshots checkpoints: one file
// per node, written tmp-then-atomic-rename so a daemon killed mid-write
// never leaves a torn snapshot — the file either holds the previous
// checkpoint or the new one. A restarted ssps_noded loads these and feeds
// them through the simulator's stale-snapshot recovery path
// (Network::mutable_snapshot + recover), exactly the crash-recovery
// machinery the in-process chaos campaigns exercise.
//
// File format: "SNAP" magic, u32 CRC-32 over the payload, u64 payload
// length, payload (the node's encode_state bytes). load() verifies all
// three and returns nullopt for missing, torn or damaged files — recovery
// then falls back to a fresh-start node, which the protocol stabilizes
// from anyway.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace ssps::proc {

class SnapshotStore {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit SnapshotStore(std::filesystem::path dir);

  /// Atomically replaces node `id`'s snapshot file.
  bool save(sim::NodeId id, std::span<const std::uint8_t> bytes) const;

  /// The stored snapshot, or nullopt if missing/corrupt.
  std::optional<std::vector<std::uint8_t>> load(sim::NodeId id) const;

  /// Ids with a snapshot file present (any validity), in id order.
  std::vector<sim::NodeId> stored() const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path path_of(sim::NodeId id) const;

  std::filesystem::path dir_;
};

}  // namespace ssps::proc
