// BarrierTracker: the coordinator's per-round barrier bookkeeping as a
// pure, I/O-free state machine, so the awkward cases — a process crashing
// mid-round, a slow joiner acking last, duplicate acks from a retrying
// peer — are unit-testable without sockets or forked processes.
//
// One tracker survives the whole run; begin_round arms it for the next
// barrier. A round completes when every shard either acked the current
// round (with the expected digest) or has been marked dead; the caller
// then respawns dead shards before releasing the barrier. Divergence —
// a digest mismatch, an ack for a round the barrier isn't at, or a relay
// count disagreeing with the ack's claim — is sticky: a diverged fleet
// must abort, not limp on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssps::proc {

class BarrierTracker {
 public:
  explicit BarrierTracker(std::size_t shards);

  /// Arms the barrier for `round`; every live shard must ack with
  /// `expected_digest`.
  void begin_round(std::uint64_t round, std::uint64_t expected_digest);

  enum class Ack {
    kAccepted,        ///< first ack of this shard for the current round
    kDuplicate,       ///< already acked this round; counted once
    kStale,           ///< ack for an already-released round; ignored
    kWrongRound,      ///< ack from the future — protocol violation
    kDigestMismatch,  ///< replica state diverged
  };

  /// Processes one RoundDone{round, digest} from `shard`.
  Ack round_done(std::size_t shard, std::uint64_t round, std::uint64_t digest);

  /// Records `relays` relay frames received from `shard` this round;
  /// checked against the ack's claimed count in complete().
  void count_relay(std::size_t shard) { relays_seen_[shard] += 1; }

  /// The relay count `shard`'s ack claimed (valid once acked).
  void claim_relays(std::size_t shard, std::uint64_t count) {
    relays_claimed_[shard] = count;
  }

  /// Marks `shard` dead (EOF / kill observed). Its ack is no longer
  /// awaited and its received relays no longer checked (a process dying
  /// mid-send legitimately truncates its relay stream).
  void mark_dead(std::size_t shard);

  /// Back alive after a respawn (the respawned replica re-acks the
  /// current round before the barrier releases).
  void mark_alive(std::size_t shard);

  bool dead(std::size_t shard) const { return dead_[shard] != 0; }

  /// True when every shard is accounted for (acked or dead).
  bool complete() const;

  /// Called once the barrier completes: true when every acked shard's
  /// received relay count equals the count its ack claimed. A mismatch
  /// (a lost or injected relay frame) marks the fleet diverged.
  bool verify_relay_counts();

  /// Shards neither acked nor dead (the slow joiners still awaited).
  std::vector<std::size_t> missing() const;

  /// Sticky divergence flag (digest mismatch, future-round ack, or a
  /// relay count mismatch detected by complete()).
  bool diverged() const { return diverged_; }

  std::uint64_t round() const { return round_; }

 private:
  std::uint64_t round_ = 0;
  std::uint64_t expected_digest_ = 0;
  bool diverged_ = false;
  std::vector<std::uint8_t> acked_;
  std::vector<std::uint8_t> dead_;
  std::vector<std::uint64_t> relays_seen_;
  std::vector<std::uint64_t> relays_claimed_;
};

}  // namespace ssps::proc
