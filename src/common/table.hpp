// Minimal fixed-width table printer used by the bench harness to emit the
// paper-style result tables (one per experiment) on stdout.
#pragma once

#include <string>
#include <vector>

namespace ssps {

/// Accumulates rows of strings and prints them with aligned columns.
///
/// Used by every bench binary so that `bench_output.txt` contains readable
/// reproductions of the paper's per-claim series alongside the raw
/// google-benchmark timings.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the column count must match the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a title banner to stdout.
  void print(const std::string& title) const;

  /// Formats a double with the given precision (helper for row building).
  static std::string num(double v, int precision = 3);

  /// Formats an integer.
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssps
