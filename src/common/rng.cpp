#include "common/rng.hpp"

#include "common/assert.hpp"

namespace ssps {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  SSPS_ASSERT(lo <= hi);
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  SSPS_ASSERT(den > 0);
  if (num >= den) return true;
  return below(den) < num;
}

double Rng::uniform01() {
  // 53 random bits into the double mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next() ^ 0xd6e8feb86659fd93ULL); }

}  // namespace ssps
