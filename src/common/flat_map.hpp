// Sorted flat-vector map, the multi-topic sibling of core::ShortcutTable.
//
// The per-topic tables of the pub-sub layer (per-client protocol
// instances, per-supervisor topic databases, the consistent-hashing ring,
// the scenario engine's member/publication bookkeeping) were std::map
// nodes: one heap allocation per entry and a pointer chase per lookup, on
// paths that iterate every topic every round. At the thousand-topic
// target a sorted vector of pairs wins on every operation that matters —
// iteration is linear memory, lookup is a binary search over contiguous
// keys — while inserts stay rare (subscribe/join events). The interface
// mirrors the std::map subset the call sites use.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace ssps {

template <typename Key, typename T>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  const value_type& front() const { return entries_.front(); }
  const value_type& back() const { return entries_.back(); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  iterator find(const Key& key) {
    auto it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  bool contains(const Key& key) const { return find(key) != end(); }

  const T& at(const Key& key) const {
    auto it = find(key);
    SSPS_ASSERT_MSG(it != end(), "FlatMap::at: unknown key");
    return it->second;
  }

  /// Inserts (key, mapped) if absent; returns (iterator, inserted).
  template <typename M>
  std::pair<iterator, bool> emplace(const Key& key, M&& mapped) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    it = entries_.emplace(it, key, std::forward<M>(mapped));
    return {it, true};
  }

  template <typename M>
  std::pair<iterator, bool> insert_or_assign(const Key& key, M&& mapped) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::forward<M>(mapped);
      return {it, false};
    }
    it = entries_.emplace(it, key, std::forward<M>(mapped));
    return {it, true};
  }

  /// Default-constructs the mapped value on first access (std::map
  /// operator[] semantics).
  T& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || !(it->first == key)) {
      it = entries_.emplace(it, key, T{});
    }
    return it->second;
  }

  iterator erase(iterator it) { return entries_.erase(it); }
  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  bool operator==(const FlatMap&) const = default;

 private:
  std::vector<value_type> entries_;
};

}  // namespace ssps
