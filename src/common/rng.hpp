// Deterministic, seedable random number generation for simulations.
//
// Every stochastic decision in the simulator and in the protocols (the
// paper's probabilistic configuration requests, random neighbor choice for
// anti-entropy, scheduler interleavings) draws from an Rng owned by the
// simulation, so a (seed, parameters) pair reproduces a run bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace ssps {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Implemented locally (rather than std::mt19937_64) so that simulation
/// traces are stable across standard-library versions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value. Inline: the schedulers draw once or twice per
  /// delivered message.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0. Lemire's
  /// nearly-divisionless method: one 64x64->128 multiply in the common
  /// case, no modulo on the fast path.
  std::uint64_t below(std::uint64_t bound) {
    SSPS_ASSERT(bound > 0);
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial: true with probability num/den. Requires den > 0.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Derives an independent child generator (for per-node streams).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename T>
  std::size_t pick_index(const std::vector<T>& v) {
    return static_cast<std::size_t>(below(v.size()));
  }

  /// The raw 256-bit generator state. Part of the canonical protocol state
  /// the model checker hashes: two executions whose nodes hold identical
  /// protocol variables but different pending randomness are different
  /// states (their futures differ).
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace ssps
