// Deterministic, seedable random number generation for simulations.
//
// Every stochastic decision in the simulator and in the protocols (the
// paper's probabilistic configuration requests, random neighbor choice for
// anti-entropy, scheduler interleavings) draws from an Rng owned by the
// simulation, so a (seed, parameters) pair reproduces a run bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace ssps {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Implemented locally (rather than std::mt19937_64) so that simulation
/// traces are stable across standard-library versions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial: true with probability num/den. Requires den > 0.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Derives an independent child generator (for per-node streams).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename T>
  std::size_t pick_index(const std::vector<T>& v) {
    return static_cast<std::size_t>(below(v.size()));
  }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace ssps
