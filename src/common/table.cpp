#include "common/table.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace ssps {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  SSPS_ASSERT(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  std::size_t total = 1;
  for (std::size_t w : width) total += w + 3;

  std::printf("\n=== %s ===\n", title.c_str());
  auto print_sep = [&] {
    for (std::size_t i = 0; i < total; ++i) std::putchar('-');
    std::putchar('\n');
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::putchar('|');
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    }
    std::putchar('\n');
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace ssps
