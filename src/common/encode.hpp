// Canonical little-endian state encoding.
//
// The model checker (src/mc) hashes protocol states by serializing them
// into a byte string; two states collide iff their encodings are equal, so
// the encoding must be canonical: fixed field order, fixed-width integers,
// explicit length prefixes for variable-size data, no padding, no pointers.
// This is deliberately the shape of a wire format — the ROADMAP
// multi-process item needs exactly the same property (a byte string that
// two processes agree on), so these encodings double as its first draft.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

namespace ssps::common {

/// Append-only canonical byte sink. All integers are little-endian.
class Encoder {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Raw bytes, no length prefix (caller encodes the length separately
  /// when the size is not implied by context).
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  /// Length-prefixed byte string (u64 length + bytes).
  void bytes(const void* data, std::size_t n) {
    u64(n);
    raw(data, n);
  }

  void string(std::string_view s) { bytes(s.data(), s.size()); }

  /// Canonical optional: presence byte, then the payload via `fn(enc, v)`.
  template <typename T, typename Fn>
  void optional(const std::optional<T>& v, Fn&& fn) {
    u8(v.has_value() ? 1 : 0);
    if (v.has_value()) fn(*this, *v);
  }

  const std::vector<std::uint8_t>& buffer() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace ssps::common
