// Lightweight always-on assertion machinery for protocol invariants.
//
// Simulation code checks protocol invariants aggressively; a violated
// invariant is a bug in the reproduction, never a recoverable condition,
// so assertions stay enabled in all build types (unlike <cassert>).
#pragma once

#include <source_location>
#include <string_view>

namespace ssps {

/// Aborts with a diagnostic naming the failed condition and location.
[[noreturn]] void assert_fail(std::string_view condition, std::string_view message,
                              std::source_location loc = std::source_location::current());

namespace detail {
inline void check(bool ok, std::string_view condition, std::string_view message,
                  std::source_location loc) {
  if (!ok) assert_fail(condition, message, loc);
}
}  // namespace detail

}  // namespace ssps

/// SSPS_ASSERT(cond): hard invariant; aborts the process when violated.
#define SSPS_ASSERT(cond) \
  ::ssps::detail::check(static_cast<bool>(cond), #cond, {}, std::source_location::current())

/// SSPS_ASSERT_MSG(cond, msg): hard invariant with extra context.
#define SSPS_ASSERT_MSG(cond, msg) \
  ::ssps::detail::check(static_cast<bool>(cond), #cond, (msg), std::source_location::current())
