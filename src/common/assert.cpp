#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace ssps {

void assert_fail(std::string_view condition, std::string_view message,
                 std::source_location loc) {
  std::fprintf(stderr, "SSPS invariant violated: %.*s\n  at %s:%u (%s)\n",
               static_cast<int>(condition.size()), condition.data(), loc.file_name(),
               loc.line(), loc.function_name());
  if (!message.empty()) {
    std::fprintf(stderr, "  %.*s\n", static_cast<int>(message.size()), message.data());
  }
  std::abort();
}

}  // namespace ssps
