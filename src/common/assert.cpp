#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace ssps {

void assert_fail(std::string_view condition, std::string_view message,
                 std::source_location loc) {
  std::fprintf(stderr, "SSPS invariant violated: %.*s\n  at %s:%u (%s)\n",
               static_cast<int>(condition.size()), condition.data(), loc.file_name(),
               loc.line(), loc.function_name());
  if (!message.empty()) {
    std::fprintf(stderr, "  %.*s\n", static_cast<int>(message.size()), message.data());
  }
#if defined(__GLIBC__)
  // Raw return addresses (resolve with addr2line); a violated invariant is
  // a bug, so spend the effort to say where it was hit from.
  void* frames[32];
  const int depth = backtrace(frames, 32);
  backtrace_symbols_fd(frames, depth, 2);
#endif
  std::abort();
}

}  // namespace ssps
