// Bounds-checked decoding of the canonical little-endian encoding.
//
// The counterpart of encode.hpp: a cursor over an immutable byte span
// whose every read is range-checked. Decoders are *total* — any byte
// string either yields values or makes a read return false; no read ever
// asserts, throws, or touches memory outside the span. This is the
// property the wire codec (src/wire) and the crash-recovery snapshot
// restore build on: both consume bytes that may have been corrupted in
// flight or on disk.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ssps::common {

/// Forward-only cursor over a byte span. All integers are little-endian.
/// Failed reads leave the cursor where it was, so a caller can report the
/// exact offset that could not be satisfied.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data, size) {}

  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }

  /// Copies the next n bytes out (the fixed-size-field path, e.g. digests).
  bool raw(void* out, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// Borrows the next n bytes without copying; the view aliases the input
  /// span, so it is only valid while the underlying buffer lives.
  bool view(std::size_t n, std::span<const std::uint8_t>& out) {
    if (remaining() < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  /// Length-prefixed byte string (u64 length + bytes). The declared length
  /// is validated against the remaining input *before* any allocation, so
  /// a corrupted huge length cannot trigger an out-of-memory reserve.
  bool bytes(std::vector<std::uint8_t>& out) {
    std::uint64_t n = 0;
    const std::size_t mark = pos_;
    if (!u64(n) || n > remaining()) {
      pos_ = mark;
      return false;
    }
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  bool string(std::string& out) {
    std::uint64_t n = 0;
    const std::size_t mark = pos_;
    if (!u64(n) || n > remaining()) {
      pos_ = mark;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(data_.data()) + pos_,
               static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  /// Canonical optional: presence byte (strictly 0 or 1 — anything else is
  /// malformed, keeping decode∘encode the identity), then `fn(dec, value)`.
  template <typename T, typename Fn>
  bool optional(std::optional<T>& out, Fn&& fn) {
    std::uint8_t present = 0;
    if (!u8(present) || present > 1) return false;
    if (present == 0) {
      out.reset();
      return true;
    }
    T value{};
    if (!fn(*this, value)) return false;
    out = std::move(value);
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t offset() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ssps::common
