// Centralized broker baseline (the client-server architecture of the
// paper's introduction).
//
// The broker stores subscriptions and relays every publication to every
// subscriber, so its load scales with the publication volume times the
// subscriber count. Experiment E10 contrasts this with the supervised
// system, where the supervisor handles only membership (O(1) messages per
// subscribe/unsubscribe, ~1 maintenance message per round) and
// publications never touch it.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "sim/network.hpp"

namespace ssps::baseline {

namespace msg {

struct BrokerSubscribe final : sim::MsgBase<BrokerSubscribe> {
  sim::NodeId who;
  explicit BrokerSubscribe(sim::NodeId w) : who(w) {}
  std::string_view name() const override { return "BrokerSubscribe"; }
  std::size_t wire_size() const override { return 16; }
  void collect_refs(std::vector<sim::NodeId>& out) const override { out.push_back(who); }
};

struct BrokerUnsubscribe final : sim::MsgBase<BrokerUnsubscribe> {
  sim::NodeId who;
  explicit BrokerUnsubscribe(sim::NodeId w) : who(w) {}
  std::string_view name() const override { return "BrokerUnsubscribe"; }
  std::size_t wire_size() const override { return 16; }
  void collect_refs(std::vector<sim::NodeId>& out) const override { out.push_back(who); }
};

struct BrokerPublish final : sim::MsgBase<BrokerPublish> {
  sim::NodeId from;
  std::string payload;
  BrokerPublish(sim::NodeId f, std::string p) : from(f), payload(std::move(p)) {}
  std::string_view name() const override { return "BrokerPublish"; }
  std::size_t wire_size() const override { return 16 + payload.size(); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(from);
  }
};

struct BrokerDeliver final : sim::MsgBase<BrokerDeliver> {
  std::string payload;
  explicit BrokerDeliver(std::string p) : payload(std::move(p)) {}
  std::string_view name() const override { return "BrokerDeliver"; }
  std::size_t wire_size() const override { return 8 + payload.size(); }
};

}  // namespace msg

/// The broker server: fans every publication out to all subscribers.
class BrokerNode final : public sim::Node {
 public:
  BrokerNode() : sim::Node(sim::NodeKind::kBrokerHub) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kBrokerHub; }

  void handle(sim::PooledMsg m) override;
  void timeout() override {}

  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  std::unordered_set<sim::NodeId> subscribers_;
  std::uint64_t deliveries_ = 0;
};

/// A broker client: counts what it receives.
class BrokerClientNode final : public sim::Node {
 public:
  explicit BrokerClientNode(sim::NodeId broker)
      : sim::Node(sim::NodeKind::kBrokerClient), broker_(broker) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kBrokerClient; }

  void handle(sim::PooledMsg m) override;
  void timeout() override {}

  void subscribe();
  void publish(std::string payload);

  std::size_t received() const { return received_.size(); }
  const std::vector<std::string>& received_payloads() const { return received_; }

 private:
  sim::NodeId broker_;
  std::vector<std::string> received_;
};

}  // namespace ssps::baseline
