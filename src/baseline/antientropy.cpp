#include "baseline/antientropy.hpp"

namespace ssps::baseline {

void NaiveSyncProtocol::timeout() {
  if (order_.empty()) return;
  const auto neighbors = overlay_->ring_neighbors();
  if (neighbors.empty()) return;
  const sim::NodeId target = neighbors[rng_->pick_index(neighbors)];
  sink_->emit<msg::FullState>(target, order_);
}

bool NaiveSyncProtocol::handle(const sim::Message& m) {
  if (const auto* fs = sim::msg_cast<msg::FullState>(m)) {
    for (const auto& p : fs->pubs) add_local(p);
    return true;
  }
  return false;
}

void NaiveSyncProtocol::add_local(const pubsub::Publication& p) {
  const pubsub::BitString key = pubsub::publication_key(p.origin, p.payload, 64);
  auto [it, inserted] = pubs_.emplace(key, true);
  if (inserted) order_.push_back(p);
}

}  // namespace ssps::baseline
