// Skip-graph baseline [10 in the paper]: sorted lists at every level,
// membership decided by random membership vectors.
//
// Level 0 is the sorted list of all nodes by key; at level i, nodes sharing
// an i-bit membership-vector prefix form their own sorted list. Degrees are
// Θ(log n) w.h.p., but the *random* vectors make list sizes and search
// paths uneven — the contrast experiment E9 measures this against the skip
// ring's supervisor-balanced levels.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ssps::baseline {

/// A converged skip graph over n keys 0 … n−1.
class SkipGraph {
 public:
  SkipGraph(std::size_t n, std::uint64_t seed);

  std::size_t size() const { return n_; }

  /// Distinct neighbors across all levels.
  std::size_t degree(std::size_t i) const;

  int levels() const { return levels_; }

  /// Search from node `from` for key `to` (standard top-down skip-graph
  /// search along `from`'s lists). Counts hops; adds intermediate load.
  int route(std::size_t from, std::size_t to, std::vector<std::uint64_t>* load) const;

  std::vector<std::uint64_t> sample_congestion(std::size_t samples, ssps::Rng& rng) const;
  int sample_max_hops(std::size_t samples, ssps::Rng& rng) const;

 private:
  struct LevelLinks {
    std::ptrdiff_t left = -1;
    std::ptrdiff_t right = -1;
  };

  std::size_t n_;
  int levels_;
  /// links_[v][l]: neighbors of v in its level-l list (indices by key).
  std::vector<std::vector<LevelLinks>> links_;
};

}  // namespace ssps::baseline
