// Naive full-state anti-entropy baseline (E6 contrast for §4.2).
//
// Runs the very same BuildSR overlay, but synchronizes publications by
// pushing the complete publication set to one random ring neighbor per
// round, instead of walking Merkle-hashed Patricia tries. Converges too —
// at O(|P|) bytes per exchange forever, whereas CheckTrie costs O(1) per
// exchange once converged and O(missing · payload + depth · digest) while
// diverged. bench_pub_convergence quantifies the gap.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/system.hpp"
#include "pubsub/patricia.hpp"

namespace ssps::baseline {

namespace msg {

/// The whole publication set of the sender.
struct FullState final : sim::MsgBase<FullState> {
  std::vector<pubsub::Publication> pubs;

  explicit FullState(std::vector<pubsub::Publication> p) : pubs(std::move(p)) {}
  std::string_view name() const override { return "FullState"; }
  std::size_t wire_size() const override {
    std::size_t sz = 8;
    for (const auto& p : pubs) sz += 8 + p.payload.size();
    return sz;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    for (const auto& p : pubs) out.push_back(p.origin);
  }
  void adopt_offwire(const sim::Message& original) override {
    const auto* o = sim::msg_cast<FullState>(original);
    if (o == nullptr || o->pubs.size() != pubs.size()) return;
    for (std::size_t i = 0; i < pubs.size(); ++i) pubs[i].born = o->pubs[i].born;
  }
};

}  // namespace msg

/// Full-state push protocol (one instance per node).
class NaiveSyncProtocol {
 public:
  NaiveSyncProtocol(core::SubscriberProtocol& overlay, core::MessageSink& sink,
                    ssps::Rng& rng)
      : overlay_(&overlay), sink_(&sink), rng_(&rng) {}

  void timeout();
  bool handle(const sim::Message& m);

  void add_local(const pubsub::Publication& p);
  std::size_t size() const { return pubs_.size(); }
  const std::vector<pubsub::Publication>& all() const { return order_; }

 private:
  core::SubscriberProtocol* overlay_;
  core::MessageSink* sink_;
  ssps::Rng* rng_;
  /// Key -> present (key derived exactly like the Patricia layer's).
  std::unordered_map<pubsub::BitString, bool> pubs_;
  std::vector<pubsub::Publication> order_;
};

/// Overlay subscriber + naive sync, mirroring PubSubNode's shape.
class NaiveSyncNode final : public core::SubscriberNode {
 public:
  explicit NaiveSyncNode(sim::NodeId supervisor)
      : core::SubscriberNode(supervisor, sim::NodeKind::kGossipPeer) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kGossipPeer; }

  void on_register() override {
    core::SubscriberNode::on_register();
    sink_ = std::make_unique<core::DirectSink>(net());
    sync_ = std::make_unique<NaiveSyncProtocol>(protocol(), *sink_, rng());
  }
  void handle(sim::PooledMsg msg) override {
    if (sync_->handle(*msg)) return;
    core::SubscriberNode::handle(std::move(msg));
  }
  void timeout() override {
    core::SubscriberNode::timeout();
    if (!protocol().departed()) sync_->timeout();
  }

  NaiveSyncProtocol& sync() { return *sync_; }
  const NaiveSyncProtocol& sync() const { return *sync_; }

 private:
  std::unique_ptr<core::DirectSink> sink_;
  std::unique_ptr<NaiveSyncProtocol> sync_;
};

}  // namespace ssps::baseline
