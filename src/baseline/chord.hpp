// Chord baseline [13 in the paper]: ring + finger tables over hashed ids.
//
// Used by experiment E9 to check the paper's §1.3 claim that the
// supervised skip ring achieves better congestion than Chord because the
// supervisor hands out perfectly balanced labels, whereas Chord positions
// nodes at (pseudo-)random points of the identifier circle, creating
// uneven arcs and uneven routing load.
//
// This is a structural model (graph + greedy routing), not a live
// protocol: the experiments compare converged topologies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ssps::baseline {

/// A converged Chord ring of n nodes on the 2^64 identifier circle.
class ChordRing {
 public:
  /// `uniform_ids` places nodes evenly (an idealized Chord for ablation);
  /// the default draws random ids, as Chord does via hashing.
  ChordRing(std::size_t n, std::uint64_t seed, bool uniform_ids = false);

  std::size_t size() const { return ids_.size(); }

  /// Number of distinct outgoing neighbors of node `i` (successor +
  /// fingers, deduplicated).
  std::size_t degree(std::size_t i) const;

  /// The distinct outgoing neighbor indices of node `i`.
  const std::vector<std::size_t>& out_neighbors(std::size_t i) const {
    return finger_[i];
  }

  /// Greedy clockwise routing from node `from` to the node owning the
  /// target id of node `to`. Returns the hop count and, if `load` is
  /// non-null, increments load[v] for every intermediate node v visited.
  int route(std::size_t from, std::size_t to, std::vector<std::uint64_t>* load) const;

  /// Routes `samples` random (from, to) pairs; returns per-node load.
  std::vector<std::uint64_t> sample_congestion(std::size_t samples, ssps::Rng& rng) const;

  /// Max hop count over sampled pairs (diameter estimate).
  int sample_max_hops(std::size_t samples, ssps::Rng& rng) const;

 private:
  /// Index of the first node clockwise at or after `point`.
  std::size_t successor_index(std::uint64_t point) const;
  /// Clockwise distance a -> b on the circle.
  static std::uint64_t clockwise(std::uint64_t a, std::uint64_t b) { return b - a; }

  std::vector<std::uint64_t> ids_;              // sorted
  std::vector<std::vector<std::size_t>> finger_;  // per node: distinct targets
};

}  // namespace ssps::baseline
