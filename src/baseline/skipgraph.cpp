#include "baseline/skipgraph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ssps::baseline {

SkipGraph::SkipGraph(std::size_t n, std::uint64_t seed) : n_(n) {
  SSPS_ASSERT(n >= 1);
  ssps::Rng rng(seed);
  levels_ = 1;
  while ((1ULL << levels_) < n) ++levels_;
  levels_ += 1;  // a little headroom; empty top lists cost nothing

  // Random membership vector per node: level-l list of v = nodes whose
  // vector agrees with v's on the low l bits.
  std::vector<std::uint64_t> membership(n);
  for (auto& m : membership) m = rng.next();

  links_.assign(n, std::vector<LevelLinks>(static_cast<std::size_t>(levels_) + 1));
  // Level 0: everyone, sorted by key = index.
  std::vector<std::size_t> current(n);
  for (std::size_t i = 0; i < n; ++i) current[i] = i;

  for (int level = 0; level <= levels_; ++level) {
    // Wire the sorted list at this level.
    for (std::size_t j = 0; j < current.size(); ++j) {
      const std::size_t v = current[j];
      links_[v][static_cast<std::size_t>(level)].left =
          (j > 0) ? static_cast<std::ptrdiff_t>(current[j - 1]) : -1;
      links_[v][static_cast<std::size_t>(level)].right =
          (j + 1 < current.size()) ? static_cast<std::ptrdiff_t>(current[j + 1]) : -1;
    }
    if (current.size() <= 1) break;
    // Split by the next membership bit; keep only v's own list chain —
    // every node keeps the sub-list containing itself, so constructing
    // both halves and recursing over each reproduces all lists.
    std::vector<std::size_t> zeros;
    std::vector<std::size_t> ones;
    for (std::size_t v : current) {
      ((membership[v] >> level) & 1ULL ? ones : zeros).push_back(v);
    }
    // Recurse over both halves iteratively: handle `zeros` now, queue
    // `ones`. A simple explicit stack keeps the construction linear.
    if (!ones.empty() && !zeros.empty()) {
      // Process the two halves independently for the remaining levels.
      auto wire_rest = [&](std::vector<std::size_t> list, int from_level,
                           auto&& self) -> void {
        for (int l = from_level; l <= levels_; ++l) {
          for (std::size_t j = 0; j < list.size(); ++j) {
            const std::size_t v = list[j];
            links_[v][static_cast<std::size_t>(l)].left =
                (j > 0) ? static_cast<std::ptrdiff_t>(list[j - 1]) : -1;
            links_[v][static_cast<std::size_t>(l)].right =
                (j + 1 < list.size()) ? static_cast<std::ptrdiff_t>(list[j + 1]) : -1;
          }
          if (list.size() <= 1) return;
          std::vector<std::size_t> z;
          std::vector<std::size_t> o;
          for (std::size_t v : list) {
            ((membership[v] >> l) & 1ULL ? o : z).push_back(v);
          }
          if (z.empty() || o.empty()) continue;  // all in one half: same list
          self(std::move(o), l + 1, self);
          list = std::move(z);
        }
      };
      wire_rest(std::move(zeros), level + 1, wire_rest);
      wire_rest(std::move(ones), level + 1, wire_rest);
      return;  // fully wired by the recursion
    }
    // Degenerate split: everyone shares the bit; the next level has the
    // same list. Loop continues.
  }
}

std::size_t SkipGraph::degree(std::size_t i) const {
  std::vector<std::size_t> nbrs;
  for (const LevelLinks& l : links_[i]) {
    if (l.left >= 0) nbrs.push_back(static_cast<std::size_t>(l.left));
    if (l.right >= 0) nbrs.push_back(static_cast<std::size_t>(l.right));
  }
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs.size();
}

int SkipGraph::route(std::size_t from, std::size_t to,
                     std::vector<std::uint64_t>* load) const {
  std::size_t cur = from;
  int hops = 0;
  while (cur != to) {
    // Top-down: take the highest-level link that moves towards `to`
    // without overshooting.
    std::ptrdiff_t next = -1;
    for (int l = levels_; l >= 0 && next < 0; --l) {
      const LevelLinks& lk = links_[cur][static_cast<std::size_t>(l)];
      if (to > cur && lk.right >= 0 && static_cast<std::size_t>(lk.right) <= to) {
        next = lk.right;
      } else if (to < cur && lk.left >= 0 && static_cast<std::size_t>(lk.left) >= to) {
        next = lk.left;
      }
    }
    SSPS_ASSERT_MSG(next >= 0, "skip graph search stuck");
    cur = static_cast<std::size_t>(next);
    ++hops;
    if (load != nullptr && cur != to) (*load)[cur] += 1;
    SSPS_ASSERT(hops <= static_cast<int>(n_) + levels_);
  }
  return hops;
}

std::vector<std::uint64_t> SkipGraph::sample_congestion(std::size_t samples,
                                                        ssps::Rng& rng) const {
  std::vector<std::uint64_t> load(n_, 0);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t a = static_cast<std::size_t>(rng.below(n_));
    std::size_t b = static_cast<std::size_t>(rng.below(n_));
    if (a == b) b = (b + 1) % n_;
    route(a, b, &load);
  }
  return load;
}

int SkipGraph::sample_max_hops(std::size_t samples, ssps::Rng& rng) const {
  int best = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t a = static_cast<std::size_t>(rng.below(n_));
    std::size_t b = static_cast<std::size_t>(rng.below(n_));
    if (a == b) b = (b + 1) % n_;
    best = std::max(best, route(a, b, nullptr));
  }
  return best;
}

}  // namespace ssps::baseline
