#include "baseline/chord.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ssps::baseline {

ChordRing::ChordRing(std::size_t n, std::uint64_t seed, bool uniform_ids) {
  SSPS_ASSERT(n >= 1);
  ssps::Rng rng(seed);
  ids_.reserve(n);
  if (uniform_ids) {
    const std::uint64_t stride = ~0ULL / n;
    for (std::size_t i = 0; i < n; ++i) ids_.push_back(stride * i);
  } else {
    for (std::size_t i = 0; i < n; ++i) ids_.push_back(rng.next());
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    while (ids_.size() < n) {  // extremely unlikely 64-bit collisions
      ids_.push_back(rng.next());
      std::sort(ids_.begin(), ids_.end());
      ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    }
  }

  finger_.resize(ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    std::vector<std::size_t>& f = finger_[i];
    // Successor plus fingers at id + 2^j for all j.
    f.push_back((i + 1) % ids_.size());
    for (int j = 0; j < 64; ++j) {
      const std::uint64_t point = ids_[i] + (1ULL << j);
      const std::size_t t = successor_index(point);
      if (t != i) f.push_back(t);
    }
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
}

std::size_t ChordRing::successor_index(std::uint64_t point) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), point);
  if (it == ids_.end()) it = ids_.begin();
  return static_cast<std::size_t>(it - ids_.begin());
}

std::size_t ChordRing::degree(std::size_t i) const { return finger_[i].size(); }

int ChordRing::route(std::size_t from, std::size_t to,
                     std::vector<std::uint64_t>* load) const {
  const std::uint64_t target = ids_[to];
  std::size_t cur = from;
  int hops = 0;
  while (cur != to) {
    // Greedy: the finger that minimizes the remaining clockwise distance
    // without overshooting the target.
    std::size_t best = finger_[cur].front();  // successor always progresses
    std::uint64_t best_remaining = clockwise(ids_[best], target);
    const std::uint64_t remaining = clockwise(ids_[cur], target);
    for (std::size_t f : finger_[cur]) {
      const std::uint64_t advance = clockwise(ids_[cur], ids_[f]);
      if (advance == 0 || advance > remaining) continue;  // overshoot
      const std::uint64_t rem = clockwise(ids_[f], target);
      if (rem < best_remaining) {
        best_remaining = rem;
        best = f;
      }
    }
    cur = best;
    ++hops;
    if (load != nullptr && cur != to) (*load)[cur] += 1;
    SSPS_ASSERT_MSG(hops <= static_cast<int>(ids_.size()) + 64,
                    "chord routing failed to make progress");
  }
  return hops;
}

std::vector<std::uint64_t> ChordRing::sample_congestion(std::size_t samples,
                                                        ssps::Rng& rng) const {
  std::vector<std::uint64_t> load(ids_.size(), 0);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t a = static_cast<std::size_t>(rng.below(ids_.size()));
    std::size_t b = static_cast<std::size_t>(rng.below(ids_.size()));
    if (a == b) b = (b + 1) % ids_.size();
    route(a, b, &load);
  }
  return load;
}

int ChordRing::sample_max_hops(std::size_t samples, ssps::Rng& rng) const {
  int best = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t a = static_cast<std::size_t>(rng.below(ids_.size()));
    std::size_t b = static_cast<std::size_t>(rng.below(ids_.size()));
    if (a == b) b = (b + 1) % ids_.size();
    best = std::max(best, route(a, b, nullptr));
  }
  return best;
}

}  // namespace ssps::baseline
