#include "baseline/broker.hpp"

namespace ssps::baseline {

void BrokerNode::handle(sim::PooledMsg m) {
  if (const auto* s = sim::msg_cast<msg::BrokerSubscribe>(*m)) {
    subscribers_.insert(s->who);
    return;
  }
  if (const auto* u = sim::msg_cast<msg::BrokerUnsubscribe>(*m)) {
    subscribers_.erase(u->who);
    return;
  }
  if (const auto* p = sim::msg_cast<msg::BrokerPublish>(*m)) {
    for (sim::NodeId sub : subscribers_) {
      if (sub == p->from) continue;  // publishers already have their message
      net().emit<msg::BrokerDeliver>(sub, p->payload);
      ++deliveries_;
    }
    return;
  }
}

void BrokerClientNode::handle(sim::PooledMsg m) {
  if (const auto* d = sim::msg_cast<msg::BrokerDeliver>(*m)) {
    received_.push_back(d->payload);
  }
}

void BrokerClientNode::subscribe() {
  net().emit<msg::BrokerSubscribe>(broker_, id());
}

void BrokerClientNode::publish(std::string payload) {
  received_.push_back(payload);  // local copy, as in the supervised system
  net().emit<msg::BrokerPublish>(broker_, id(), std::move(payload));
}

}  // namespace ssps::baseline
