#include "baseline/broker.hpp"

namespace ssps::baseline {

void BrokerNode::handle(std::unique_ptr<sim::Message> m) {
  if (const auto* s = dynamic_cast<const msg::BrokerSubscribe*>(m.get())) {
    subscribers_.insert(s->who);
    return;
  }
  if (const auto* u = dynamic_cast<const msg::BrokerUnsubscribe*>(m.get())) {
    subscribers_.erase(u->who);
    return;
  }
  if (const auto* p = dynamic_cast<const msg::BrokerPublish*>(m.get())) {
    for (sim::NodeId sub : subscribers_) {
      if (sub == p->from) continue;  // publishers already have their message
      net().send(sub, std::make_unique<msg::BrokerDeliver>(p->payload));
      ++deliveries_;
    }
    return;
  }
}

void BrokerClientNode::handle(std::unique_ptr<sim::Message> m) {
  if (const auto* d = dynamic_cast<const msg::BrokerDeliver*>(m.get())) {
    received_.push_back(d->payload);
  }
}

void BrokerClientNode::subscribe() {
  net().send(broker_, std::make_unique<msg::BrokerSubscribe>(id()));
}

void BrokerClientNode::publish(std::string payload) {
  received_.push_back(payload);  // local copy, as in the supervised system
  net().send(broker_, std::make_unique<msg::BrokerPublish>(id(), std::move(payload)));
}

}  // namespace ssps::baseline
