// Per-round time-series sampling: a bounded ring of round snapshots.
//
// Attaching a RoundProbe to a Network (Network::attach_round_probe) makes
// every run_round() push one RoundSample after the round barrier, so
// convergence and recovery can be plotted round by round instead of being
// summarized by a single rounds-to-converge scalar. The ring keeps the
// last `capacity` rounds and counts what it evicted, which bounds memory
// for arbitrarily long runs.
//
// Determinism: every field the scenario report serializes (round,
// delivered, timeouts, in_flight, alive, nonconforming) is a function of
// the simulated state at the round barrier, so the emitted time series is
// bit-identical across worker counts. pool_reserved_bytes is the one
// thread-VARIANT field (worker pools grow with the worker count); it is
// kept for in-process diagnostics and never serialized.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "sim/types.hpp"

namespace ssps::telemetry {

/// One round's health snapshot, taken after the round barrier.
struct RoundSample {
  /// Value of the round clock after the round (1 = after the first round).
  sim::Round round = 0;
  /// Messages delivered during the round.
  std::uint64_t delivered = 0;
  /// Timeouts fired during the round.
  std::uint64_t timeouts = 0;
  /// Messages in flight at the round barrier (next round's batch).
  std::uint64_t in_flight = 0;
  /// Alive nodes at the round barrier.
  std::uint64_t alive = 0;
  /// Nodes (or topics, for multi-topic runs) not yet in a legit state;
  /// filled by the enricher when one is installed, 0 otherwise.
  std::uint64_t nonconforming = 0;
  /// Bytes reserved by every message arena (thread-variant; diagnostics
  /// only — never serialized into reports).
  std::uint64_t pool_reserved_bytes = 0;
};

/// Bounded ring buffer of RoundSamples.
class RoundProbe {
 public:
  explicit RoundProbe(std::size_t capacity = 512) : capacity_(capacity) {
    SSPS_ASSERT_MSG(capacity > 0, "RoundProbe: capacity must be positive");
    ring_.reserve(capacity);
  }

  /// Called by the Network after each round. Runs the enricher (if any)
  /// before storing, so expensive fields are only computed for samples
  /// that are actually kept — which is all of them, but the hook point
  /// keeps the Network free of scenario-layer knowledge.
  void push(RoundSample sample) {
    if (enricher_) enricher_(sample);
    if (ring_.size() < capacity_) {
      ring_.push_back(sample);
    } else {
      ring_[head_] = sample;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  /// Installs a callback that fills the fields the Network cannot compute
  /// itself (nonconforming counts live in the core/scenario layers).
  void set_enricher(std::function<void(RoundSample&)> fn) { enricher_ = std::move(fn); }

  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }

  /// Samples evicted because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// i-th retained sample, oldest first.
  const RoundSample& at(std::size_t i) const {
    SSPS_ASSERT(i < ring_.size());
    return ring_[(head_ + i) % ring_.size()];
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<RoundSample> ring_;
  std::size_t head_ = 0;  // oldest sample once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::function<void(RoundSample&)> enricher_;
};

}  // namespace ssps::telemetry
