#include "telemetry/perfetto.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "sim/trace.hpp"

namespace ssps::telemetry {

namespace {

// 1 simulated round = 1000 µs of trace time.
constexpr std::uint64_t kRoundMicros = 1000;
// Instant slices sit inside their round span: sends in the first half,
// deliveries in the second, staggered by arrival order so same-track
// events stay distinguishable.
constexpr std::uint64_t kSendBase = 100;
constexpr std::uint64_t kDeliverBase = 600;
constexpr std::uint64_t kMaxStagger = 299;
constexpr std::uint64_t kSliceMicros = 50;

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += "    {";
  out += body;
  out += "}";
}

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string to_perfetto_json(const sim::Trace& trace) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  append_event(out, first,
               "\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
               "\"args\": {\"name\": \"rounds\"}");
  append_event(out, first,
               "\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
               "\"args\": {\"name\": \"nodes\"}");

  // One "X" span per round covered by the recorded window.
  if (!trace.events().empty()) {
    sim::Round lo = trace.events().front().round;
    sim::Round hi = lo;
    for (const sim::TraceEvent& e : trace.events()) {
      lo = std::min(lo, e.round);
      hi = std::max(hi, e.round);
    }
    for (sim::Round r = lo; r <= hi; ++r) {
      append_event(out, first,
                   format("\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": %" PRIu64
                          ", \"dur\": %" PRIu64 ", \"name\": \"round %" PRIu64 "\"",
                          r * kRoundMicros, kRoundMicros, r));
    }
  }

  // Instant slices + flow arrows, staggered per round in recording order.
  sim::Round stagger_round = 0;
  std::uint64_t stagger = 0;
  for (const sim::TraceEvent& e : trace.events()) {
    if (e.round != stagger_round) {
      stagger_round = e.round;
      stagger = 0;
    }
    const std::uint64_t base =
        e.kind == sim::TraceEventKind::kDeliver ? kDeliverBase : kSendBase;
    const std::uint64_t ts =
        e.round * kRoundMicros + base + std::min(stagger++, kMaxStagger);
    std::string label;
    append_escaped(label, trace.label_name(e.label));
    const std::uint64_t tid =
        e.kind == sim::TraceEventKind::kDeliver ? e.to.value : e.from.value;
    if (e.kind == sim::TraceEventKind::kNote) {
      append_event(out, first,
                   format("\"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": %" PRIu64
                          ", \"ts\": %" PRIu64 ", \"name\": \"",
                          tid, ts) +
                       label + "\"");
      continue;
    }
    append_event(out, first,
                 format("\"ph\": \"X\", \"pid\": 1, \"tid\": %" PRIu64
                        ", \"ts\": %" PRIu64 ", \"dur\": %" PRIu64 ", \"name\": \"",
                        tid, ts, kSliceMicros) +
                     label + "\"");
    if (e.flow != 0) {
      const char* ph = e.kind == sim::TraceEventKind::kSend ? "s" : "f";
      const char* bind = e.kind == sim::TraceEventKind::kSend ? "" : ", \"bp\": \"e\"";
      append_event(out, first,
                   format("\"ph\": \"%s\"%s, \"cat\": \"msg\", \"id\": %" PRIu64
                          ", \"pid\": 1, \"tid\": %" PRIu64 ", \"ts\": %" PRIu64
                          ", \"name\": \"flow\"",
                          ph, bind, e.flow, tid, ts));
    }
  }

  out += "\n  ]\n}\n";
  return out;
}

bool write_perfetto_file(const std::string& path, const sim::Trace& trace) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = to_perfetto_json(trace);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ssps::telemetry
