// Delivery-latency accounting: rounds from publish to subscriber receipt.
//
// Every publication carries the round it was born in (see
// pubsub::Publication::born); the pub-sub layer reports
// `deliver_round - publish_round` here each time a publication first
// reaches a node. Latencies land in a global histogram plus one per
// topic, so reports can surface p50/p99/p999/max both overall and per
// topic.
//
// Sharding mirrors sim::Metrics: recording happens on worker threads
// during the parallel delivery phase, so each worker owns a private
// LatencyTracker and the scheduler folds the shards into the Network's
// main tracker at the round barrier. Histogram merges are element-wise
// integer sums, so the folded distribution is bit-identical to a serial
// run regardless of how deliveries were sharded — which is what makes
// the percentiles deterministic (cmp-exact) bench metrics.
#pragma once

#include <cstdint>

#include "common/flat_map.hpp"
#include "sim/types.hpp"
#include "telemetry/histogram.hpp"

namespace ssps::telemetry {

class LatencyTracker {
 public:
  /// Topic id used by single-topic systems (no per-topic row).
  static constexpr std::uint32_t kNoTopic = 0;

  /// Records one publication delivery that took `rounds` rounds end to
  /// end. `topic` == kNoTopic records into the global histogram only.
  void record(std::uint32_t topic, sim::Round rounds) {
    global_.record(rounds);
    if (topic != kNoTopic) by_topic_[topic].record(rounds);
  }

  /// Adds every histogram of this tracker into `dst` (the shard fold;
  /// see the class comment).
  void fold_into(LatencyTracker& dst) const;

  void reset();

  std::uint64_t count() const { return global_.count(); }
  const Histogram& global() const { return global_; }

  /// Per-topic histograms, sorted by topic id (deterministic iteration
  /// for report writers).
  const FlatMap<std::uint32_t, Histogram>& by_topic() const { return by_topic_; }

 private:
  Histogram global_;
  FlatMap<std::uint32_t, Histogram> by_topic_;
};

}  // namespace ssps::telemetry
