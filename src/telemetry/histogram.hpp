// Fixed-bucket latency histogram with deterministic percentiles.
//
// Delivery latency is measured in rounds, so the value domain is tiny:
// almost every observation lands in [0, 256). The histogram keeps one
// exact bucket per round up to that bound plus a single overflow bucket
// (count + exact max), which makes record() a branch and an increment,
// merge() an element-wise sum (commutative — per-worker shards fold to
// bit-identical totals in any order), and percentiles an integer bucket
// walk with no floating point anywhere.
#pragma once

#include <array>
#include <cstdint>

namespace ssps::telemetry {

class Histogram {
 public:
  /// Values in [0, kExactBuckets) are counted exactly; larger ones share
  /// the overflow bucket (their max is still exact).
  static constexpr std::uint64_t kExactBuckets = 256;

  void record(std::uint64_t value) {
    ++total_;
    if (value > max_) max_ = value;
    if (value < kExactBuckets) {
      ++buckets_[value];
    } else {
      ++overflow_;
    }
  }

  /// Adds every bucket of `other` into this histogram. Integer sums
  /// commute, so folding shards in any order yields identical totals.
  void merge(const Histogram& other);

  void reset();

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  /// Smallest value v such that at least ceil(total * permille / 1000)
  /// observations are <= v. Returns 0 on an empty histogram; a rank that
  /// falls into the overflow bucket reports the exact max.
  std::uint64_t percentile_permille(std::uint32_t permille) const;

  /// The percentile set every report row carries.
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;
  };
  Summary summary() const;

 private:
  std::array<std::uint64_t, kExactBuckets> buckets_{};
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ssps::telemetry
