#include "telemetry/latency.hpp"

namespace ssps::telemetry {

void LatencyTracker::fold_into(LatencyTracker& dst) const {
  if (global_.count() == 0) return;
  dst.global_.merge(global_);
  for (const auto& [topic, hist] : by_topic_) {
    dst.by_topic_[topic].merge(hist);
  }
}

void LatencyTracker::reset() {
  global_.reset();
  by_topic_.clear();
}

}  // namespace ssps::telemetry
