#include "telemetry/histogram.hpp"

namespace ssps::telemetry {

void Histogram::merge(const Histogram& other) {
  for (std::uint64_t i = 0; i < kExactBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  overflow_ += other.overflow_;
  total_ += other.total_;
  if (other.max_ > max_) max_ = other.max_;
}

void Histogram::reset() {
  buckets_.fill(0);
  overflow_ = 0;
  total_ = 0;
  max_ = 0;
}

std::uint64_t Histogram::percentile_permille(std::uint32_t permille) const {
  if (total_ == 0) return 0;
  // rank = ceil(total * permille / 1000), in pure integer arithmetic.
  std::uint64_t rank = (total_ * permille + 999) / 1000;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::uint64_t v = 0; v < kExactBuckets; ++v) {
    seen += buckets_[v];
    if (seen >= rank) return v;
  }
  return max_;  // rank falls into the overflow bucket
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  s.count = total_;
  s.p50 = percentile_permille(500);
  s.p99 = percentile_permille(990);
  s.p999 = percentile_permille(999);
  s.max = max_;
  return s;
}

}  // namespace ssps::telemetry
