// Chrome/Perfetto trace_event exporter for sim::Trace.
//
// Serializes a recorded trace as the JSON Trace Event Format that both
// chrome://tracing and https://ui.perfetto.dev load directly: one "X"
// span per simulated round on a dedicated track, one instant slice per
// send/deliver event on the acting node's track, and "s"/"f" flow pairs
// connecting each send to its delivery (the `flow` correlation id
// assigned by the Network's trace hooks). The simulated clock maps to
// trace time as 1 round = 1000 µs, so round boundaries are legible at
// the default zoom.
//
// The output is a pure function of the trace contents — byte-identical
// per (scenario, seed) — which is what makes the export golden-file
// testable.
#pragma once

#include <string>

namespace ssps::sim {
class Trace;
}

namespace ssps::telemetry {

/// Renders `trace` as a Trace Event Format JSON document.
std::string to_perfetto_json(const sim::Trace& trace);

/// Writes to_perfetto_json(trace) to `path`. Returns false on I/O error.
bool write_perfetto_file(const std::string& path, const sim::Trace& trace);

}  // namespace ssps::telemetry
