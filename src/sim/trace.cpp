#include "sim/trace.hpp"

#include <map>
#include <sstream>

namespace ssps::sim {

std::uint32_t Trace::intern(std::string_view label) {
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(label_names_.size());
  label_names_.emplace_back(label);
  label_ids_.emplace(label_names_.back(), id);
  return id;
}

void Trace::record_id(Round round, NodeId from, NodeId to, std::uint32_t label,
                      TraceEventKind kind, std::uint64_t flow) {
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{round, from, to, label, kind, flow});
}

void Trace::clear() {
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> Trace::filter(std::string_view label) const {
  std::vector<TraceEvent> out;
  auto it = label_ids_.find(label);
  if (it == label_ids_.end()) return out;  // never interned: no event has it
  for (const TraceEvent& e : events_) {
    if (e.label == it->second) out.push_back(e);
  }
  return out;
}

std::string Trace::to_text() const {
  std::ostringstream out;
  if (dropped_ > 0) out << "(… " << dropped_ << " earlier events dropped)\n";
  for (const TraceEvent& e : events_) {
    out << "[r" << e.round << "] " << e.from.value << " -> " << e.to.value << " : "
        << label_names_[e.label] << "\n";
  }
  return out.str();
}

std::string to_dot(const std::vector<NodeId>& nodes, const std::vector<DotEdge>& edges,
                   const std::function<std::string(NodeId)>& node_label) {
  static const std::map<std::string, std::string> kColors = {
      {"ring", "black"}, {"cyc", "black"}, {"shortcut", "forestgreen"},
      {"supervisor", "royalblue"}, {"stale", "red"}};
  std::ostringstream out;
  out << "digraph overlay {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=circle, fontsize=10];\n";
  for (NodeId n : nodes) {
    std::string label = node_label ? node_label(n) : std::to_string(n.value);
    // Escape double quotes for DOT.
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += '\\';
      escaped += c;
    }
    out << "  n" << n.value << " [label=\"" << escaped << "\"];\n";
  }
  for (const DotEdge& e : edges) {
    auto color = kColors.find(e.kind);
    out << "  n" << e.from.value << " -> n" << e.to.value << " [color="
        << (color == kColors.end() ? "gray" : color->second) << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ssps::sim
