// Fundamental identifier types of the simulation model (paper §1.1).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace ssps::sim {

/// Opaque node reference ("ID" in the paper).
///
/// The model requires compare-store-send usage only: protocols may compare
/// NodeIds, store them, and put them into messages, but never derive
/// information from them. Value 0 is reserved for "no node" (⊥).
struct NodeId {
  std::uint64_t value = 0;

  constexpr bool is_null() const { return value == 0; }
  constexpr explicit operator bool() const { return value != 0; }
  constexpr auto operator<=>(const NodeId&) const = default;

  /// The ⊥ reference.
  static constexpr NodeId null() { return NodeId{0}; }
};

/// Round index of the synchronous-round scheduler (one "timeout interval").
using Round = std::uint64_t;

/// Step index of the asynchronous scheduler (one action execution).
using Step = std::uint64_t;

}  // namespace ssps::sim

template <>
struct std::hash<ssps::sim::NodeId> {
  std::size_t operator()(const ssps::sim::NodeId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
