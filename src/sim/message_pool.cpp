#include "sim/message_pool.hpp"

#include "sim/message.hpp"

namespace ssps::sim {

namespace detail {

MsgTypeId allocate_msg_type_id() {
  static MsgTypeId next = 0;
  return ++next;  // 0 stays "untagged"
}

thread_local FreeLane* tls_free_lane = nullptr;

}  // namespace detail

void PooledMsg::reset() {
  // During pool teardown the sweep below destructs every live slot
  // itself; a nested owner's release must then be a no-op or the slot
  // would see its destructor twice.
  if (pool_ != nullptr && ptr_ != nullptr && !pool_->tearing_down()) {
    pool_->destroy(ptr_, handle_);
  }
  forget();
}

MessagePool::~MessagePool() {
  // Channels normally drain before the Network dies, but a mid-run
  // teardown (e.g. a test aborting a scenario) may leave live messages;
  // destroy them so their payloads (strings, vectors) are released.
  //
  // Live messages can OWN other pooled messages (TopicEnvelope holds its
  // inner as a PooledMsg), and owners release their inner's slot in their
  // destructor — which would collide with this sweep destructing the
  // inner's slot directly. The tearing_down_ flag turns those nested
  // releases into no-ops, so the sweep destructs every live slot exactly
  // once, in slot order.
  tearing_down_ = true;
  for (std::uint32_t cls = 0; cls < kNumClasses; ++cls) {
    SizeClass& sc = classes_[cls];
    std::vector<bool> free_slots(sc.created, false);
    for (std::uint32_t s : sc.free_list) free_slots[s] = true;
    for (std::uint32_t s = 0; s < sc.created; ++s) {
      if (!free_slots[s]) get(MsgHandle::make(cls, s))->~Message();
    }
  }
  std::vector<bool> free_slots(oversize_.size(), false);
  for (std::uint32_t s : oversize_free_) free_slots[s] = true;
  for (std::uint32_t s = 0; s < oversize_.size(); ++s) {
    // Address the block directly rather than through get(): the class is
    // statically the oversize one, and GCC's -Warray-bounds flags the
    // (dead) size-class branch inside address_of when it inlines here.
    if (!free_slots[s]) {
      std::launder(reinterpret_cast<Message*>(oversize_[s].block.get()))->~Message();
    }
  }
}

void MessagePool::destroy_msg(Message* msg) { msg->~Message(); }

std::uint32_t MessagePool::allocate_slot_slow(std::uint32_t cls, std::size_t bytes) {
  if (cls == kOversizeClass) {
    // LIFO scan for a recycled block big enough; deterministic.
    for (std::size_t i = oversize_free_.size(); i > 0; --i) {
      const std::uint32_t slot = oversize_free_[i - 1];
      if (oversize_[slot].capacity >= bytes) {
        oversize_free_.erase(oversize_free_.begin() +
                             static_cast<std::ptrdiff_t>(i - 1));
        return slot;
      }
    }
    OversizeSlot fresh;
    fresh.capacity = bytes;
    fresh.block = std::make_unique<std::byte[]>(bytes);
    oversize_.push_back(std::move(fresh));
    const auto slot = static_cast<std::uint32_t>(oversize_.size() - 1);
    SSPS_ASSERT_MSG(slot < (1u << 28), "MessagePool: oversize slot space exhausted");
    return slot;
  }
  SizeClass& sc = classes_[cls];
  if (sc.created % kSlabSlots == 0) {
    sc.slabs.push_back(std::make_unique<std::byte[]>(kClassBytes[cls] * kSlabSlots));
  }
  SSPS_ASSERT_MSG(sc.created < (1u << 28), "MessagePool: slot space exhausted");
  return sc.created++;
}

std::uint64_t MessagePool::slot_count() const {
  std::uint64_t total = oversize_.size();
  for (const SizeClass& sc : classes_) total += sc.created;
  return total;
}

std::size_t MessagePool::reserved_bytes() const {
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < kNumClasses; ++c) {
    total += classes_[c].slabs.size() * kClassBytes[c] * kSlabSlots;
  }
  for (const OversizeSlot& s : oversize_) total += s.capacity;
  return total;
}

}  // namespace ssps::sim
