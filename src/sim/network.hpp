// The simulated distributed system: node registry, channels, schedulers.
//
// Implements the model of paper §1.1:
//   - each node has a channel holding a finite multiset of messages;
//   - messages are never lost or duplicated while their target is alive;
//   - delivery is non-FIFO (the schedulers remove messages in randomized
//     order) and fully asynchronous;
//   - fair message receipt and weakly fair action execution are enforced
//     by both schedulers (see run_round / step);
//   - crashed nodes (§3.3) cease to exist: pending and future messages to
//     them invoke no action.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

/// Tuning knobs of the randomized asynchronous scheduler.
struct AsyncConfig {
  /// A message must be delivered at most this many steps after it was sent
  /// (fair message receipt).
  Step max_message_age = 64;
  /// Every alive node executes Timeout at least once per this many steps
  /// (weakly fair action execution).
  Step max_timeout_gap = 64;
  /// Probability (x / 256) that a step prefers a Timeout over a delivery
  /// when both are possible.
  std::uint32_t timeout_bias = 64;
};

/// The simulated network. Owns all nodes, channels, randomness and metrics.
class Network {
 public:
  explicit Network(std::uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  // ---- Topology management -------------------------------------------

  /// Constructs a node of type T (constructor receives the forwarded
  /// arguments), registers it, assigns a fresh NodeId and returns the id.
  template <typename T, typename... Args>
  NodeId spawn(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    return register_node(std::move(node));
  }

  /// Registers an externally constructed node.
  NodeId register_node(std::unique_ptr<Node> node);

  /// Fail-stop crash: the node ceases to exist. Its channel is dropped and
  /// all future messages to it are swallowed (they invoke no action).
  void crash(NodeId id);

  /// True if the node exists and has not crashed.
  bool alive(NodeId id) const;

  /// Round number at which `id` crashed (for the failure detector).
  std::optional<Round> crash_round(NodeId id) const;

  /// Typed access to a node. Aborts if the node is dead or of wrong type.
  template <typename T>
  T& node_as(NodeId id) {
    auto it = nodes_.find(id);
    SSPS_ASSERT_MSG(it != nodes_.end(), "node_as: unknown or crashed node");
    T* typed = dynamic_cast<T*>(it->second.node.get());
    SSPS_ASSERT_MSG(typed != nullptr, "node_as: node has unexpected type");
    return *typed;
  }

  /// Ids of all alive nodes, in id order (deterministic).
  std::vector<NodeId> alive_ids() const;

  /// Number of alive nodes.
  std::size_t alive_count() const { return nodes_.size(); }

  // ---- Communication --------------------------------------------------

  /// Sends `msg` to `to` by placing it into to's channel. A send to a
  /// crashed/unknown node is counted and swallowed (paper §3.3: the address
  /// ceased to exist).
  void send(NodeId to, std::unique_ptr<Message> msg);

  /// Injects a message into a channel without attributing it to a sender;
  /// used by adversarial initial-state generators (corrupted messages).
  void inject(NodeId to, std::unique_ptr<Message> msg);

  /// Total number of messages currently sitting in channels.
  std::size_t pending_messages() const { return pending_total_; }

  /// Number of messages pending for one node.
  std::size_t pending_for(NodeId id) const;

  // ---- Scheduling -----------------------------------------------------

  /// Synchronous-round scheduler: delivers every message that was pending
  /// at round start (randomized order), then fires every alive node's
  /// Timeout (randomized order). One round is the paper's "timeout
  /// interval". Returns the number of messages delivered.
  std::size_t run_round();

  /// Runs `k` rounds.
  void run_rounds(std::size_t k);

  /// Runs rounds until `pred()` holds (checked after each round) or
  /// `max_rounds` elapse. Returns the number of rounds executed, or
  /// nullopt if the predicate never held.
  std::optional<std::size_t> run_until(const std::function<bool()>& pred,
                                       std::size_t max_rounds);

  /// One step of the randomized asynchronous scheduler: executes exactly
  /// one enabled action (a delivery or a Timeout) subject to the fairness
  /// bounds in AsyncConfig.
  void step();

  /// Runs `k` async steps.
  void run_steps(std::size_t k);

  /// Current round (advanced by run_round only).
  Round round() const { return round_; }

  /// Current async step (advanced by step only).
  Step now() const { return step_; }

  AsyncConfig& async_config() { return async_cfg_; }

  // ---- Introspection ---------------------------------------------------

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  ssps::Rng& rng() { return rng_; }

  /// True if the union graph of explicit edges (node variables) and
  /// implicit edges (references inside channels) is weakly connected over
  /// the alive nodes, treating `anchor` (if provided) as an always-known
  /// reference (the paper's read-only supervisor star graph).
  bool weakly_connected(NodeId anchor = NodeId::null()) const;

 private:
  struct Envelope {
    std::unique_ptr<Message> msg;
    Step sent_at = 0;
  };
  struct Slot {
    std::unique_ptr<Node> node;
    std::vector<Envelope> channel;
    Step last_timeout = 0;
  };

  void deliver_one(Slot& slot, std::size_t index);
  void fire_timeout(Slot& slot);

  std::unordered_map<NodeId, Slot> nodes_;
  std::unordered_map<NodeId, Round> crashed_;
  std::uint64_t next_id_ = 1;
  std::size_t pending_total_ = 0;
  Round round_ = 0;
  Step step_ = 0;
  ssps::Rng rng_;
  Metrics metrics_;
  AsyncConfig async_cfg_;
  std::uint64_t swallowed_to_dead_ = 0;
};

}  // namespace ssps::sim
