// The simulated distributed system: node registry, channels, schedulers.
//
// Implements the model of paper §1.1:
//   - each node has a channel holding a finite multiset of messages;
//   - messages are never lost or duplicated while their target is alive;
//   - delivery is non-FIFO (the schedulers remove messages in randomized
//     order) and fully asynchronous;
//   - fair message receipt and weakly fair action execution are enforced
//     by both schedulers (see run_round / step);
//   - crashed nodes (§3.3) cease to exist: pending and future messages to
//     them invoke no action.
//
// Large-n layout: nodes live in one dense vector indexed by NodeId (a
// crashed node leaves a tombstone slot), and all channels share one
// append-only in-flight buffer of pooled message handles — a send is a
// sequential push, and the synchronous scheduler turns the whole buffer
// into the round's shuffled delivery batch with a single swap. Delivery
// order is a canonical function of (seed, call sequence) — independent of
// container internals, so runs replay bit-for-bit on any standard
// library.
//
// Synchronous rounds execute behind a Scheduler seam (src/sched): the
// default sched::SerialScheduler runs the round on the calling thread;
// sched::ParallelScheduler shards the delivery phase across a worker pool
// while reproducing the serial delivery trace bit-for-bit. All send-side
// effects (lane append, metrics, pool allocation) are routed through a
// SendContext so a worker's sends land in its private lane without any
// atomics on the hot path.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/link.hpp"
#include "sim/message_pool.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/types.hpp"
#include "telemetry/latency.hpp"

namespace ssps::sched {
class Scheduler;
class SerialScheduler;
class ParallelScheduler;
class TimedScheduler;
class AsyncScheduler;
class BranchScheduler;
}  // namespace ssps::sched

namespace ssps::telemetry {
class RoundProbe;
}  // namespace ssps::telemetry

namespace ssps::sim {

/// Tuning knobs of the randomized asynchronous scheduler.
struct AsyncConfig {
  /// A message must be delivered at most this many steps after it was sent
  /// (fair message receipt).
  Step max_message_age = 64;
  /// Every alive node executes Timeout at least once per this many steps
  /// (weakly fair action execution).
  Step max_timeout_gap = 64;
  /// Probability (x / 256) that a step prefers a Timeout over a delivery
  /// when both are possible.
  std::uint32_t timeout_bias = 64;
  /// run_steps samples an attached RoundProbe whenever the step clock is a
  /// multiple of this (window counters since the previous sample) — the
  /// async scheduler's analogue of the per-round sample. Chunk-invariant:
  /// the sample points depend only on the step count, never on how the
  /// steps were batched into run_steps calls.
  Step probe_stride = 64;
};

/// One in-flight message (internal to the sim/sched layer). All
/// undelivered messages live in flat vectors ("lanes"), not in per-node
/// queues: sends append sequentially (cache-friendly), and the round
/// scheduler turns the merged lanes into the next round's shuffled
/// delivery batch. `pool` is the arena the message was allocated from —
/// under the parallel scheduler each worker allocates from its own pool,
/// so the envelope must remember its origin to recycle the slot.
struct Envelope {
  NodeId to;
  /// Sender attribution: the node whose action executed the send, or null
  /// for harness-originated traffic (publishes, injections, control
  /// plane). The timed scheduler keys link selection and fault exemption
  /// on it; only maintained while a trace is attached or timed mode is on.
  NodeId from;
  Message* msg = nullptr;
  MessagePool* pool = nullptr;
  MsgHandle handle;
  Step sent_at = 0;
  /// Canonical send order, stamped on the main lane only (worker-lane
  /// envelopes get 0; the round-barrier merge order already reproduces
  /// send order for those). Monotone and never reused: the async
  /// scheduler's oldest-first index and the timed scheduler's
  /// equal-deadline tie-break both key on it.
  std::uint64_t seq = 0;
};

/// Where the current thread's sends go: the in-flight lane that receives
/// the envelope, the Metrics shard that accounts it, and the MessagePool
/// that allocates it. The Network's own context targets its members; a
/// ParallelScheduler worker's context targets that worker's private lane,
/// shard and pool, which is what makes the delivery phase run without
/// cross-thread writes.
struct SendContext {
  std::vector<Envelope>* lane = nullptr;
  Metrics* metrics = nullptr;
  MessagePool* pool = nullptr;
  /// Delivery-latency shard (same ownership discipline as `metrics`:
  /// the Network's own tracker, or a worker's private shard folded at
  /// the round barrier).
  telemetry::LatencyTracker* latency = nullptr;
  /// Sends swallowed because the target crashed (§3.3); folded into the
  /// Network's main context at the round barrier.
  std::uint64_t swallowed_to_dead = 0;
};

namespace detail {
/// Null outside parallel round phases; a ParallelScheduler worker points
/// this at its own context around its delivery slice.
extern thread_local SendContext* tls_send_ctx;
}  // namespace detail

class Trace;

/// Wire-level damage model for the timed scheduler's corrupting links
/// (LinkProfile::corrupt). The sim layer owns only the seam: an
/// implementation serializes the message, mangles the bytes and re-decodes
/// them, so a corrupted send exercises a real decode path. Returns the
/// message the receiver ends up decoding (usually different from the
/// original), or an empty handle when the damage is detected (checksum or
/// structure) and the bytes are rejected instead of delivered.
/// wire::CodecCorrupter (src/wire/corrupt.hpp) is the implementation.
class Corrupter {
 public:
  virtual ~Corrupter() = default;
  virtual PooledMsg corrupt(const Message& m, MessagePool& pool,
                            ssps::Rng& rng) = 0;
};

/// The simulated network. Owns all nodes, channels, randomness, the
/// message pool and the metrics.
class Network {
 public:
  explicit Network(std::uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  // ---- Topology management -------------------------------------------

  /// Constructs a node of type T (constructor receives the forwarded
  /// arguments), registers it, assigns a fresh NodeId and returns the id.
  template <typename T, typename... Args>
  NodeId spawn(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    return register_node(std::move(node));
  }

  /// Registers an externally constructed node.
  NodeId register_node(std::unique_ptr<Node> node);

  /// Fail-stop crash: the node ceases to exist. Its channel is dropped
  /// (pending pooled messages are reclaimed) and all future messages to it
  /// are swallowed (they invoke no action).
  void crash(NodeId id);

  /// True if the node exists and has not crashed.
  bool alive(NodeId id) const {
    const Slot* slot = find_slot(id);
    return slot != nullptr && slot->node != nullptr;
  }

  /// Round number at which `id` crashed (for the failure detector).
  std::optional<Round> crash_round(NodeId id) const;

  /// Typed access to a node. Aborts if the node is dead or of the wrong
  /// type. Types that define `static bool classof(NodeKind)` resolve with
  /// a one-byte tag check + static downcast; others (ad-hoc test nodes)
  /// fall back to dynamic_cast.
  template <typename T>
  T& node_as(NodeId id) {
    Slot* slot = find_slot(id);
    SSPS_ASSERT_MSG(slot != nullptr && slot->node != nullptr,
                    "node_as: unknown or crashed node");
    Node* node = slot->node.get();
    if constexpr (requires(NodeKind k) { { T::classof(k) } -> std::convertible_to<bool>; }) {
      SSPS_ASSERT_MSG(T::classof(node->kind()), "node_as: node has unexpected type");
      return *static_cast<T*>(node);
    } else {
      T* typed = dynamic_cast<T*>(node);
      SSPS_ASSERT_MSG(typed != nullptr, "node_as: node has unexpected type");
      return *typed;
    }
  }

  /// Ids of all alive nodes, in id order (deterministic).
  std::vector<NodeId> alive_ids() const;

  /// Number of alive nodes (crashed tombstones excluded).
  std::size_t alive_count() const { return alive_count_; }

  /// Total node slots ever created (alive + tombstones). Together with
  /// alive_count() this changes on every spawn or crash, which makes the
  /// pair a cheap topology epoch for incremental probes.
  std::size_t slot_count() const { return slots_.size(); }

  /// Every crash since construction, in crash order: (round, node). Rounds
  /// are non-decreasing, so "crashes visible under a detection delay" is a
  /// prefix of this log (see sim::FailureDetector::visible_crash_count).
  const std::vector<std::pair<Round, NodeId>>& crash_log() const {
    return crash_log_;
  }

  /// Calls fn(id, node) for every alive node in id order, without
  /// materializing an id vector (the per-round probe path).
  template <typename Fn>
  void for_each_alive(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].node != nullptr) fn(id_at(i), *slots_[i].node);
    }
  }

  // ---- Communication --------------------------------------------------

  /// Sends `msg` to `to` by placing it into to's channel. A send to a
  /// crashed/unknown node is counted and swallowed (paper §3.3: the
  /// address ceased to exist) and its pool slot is reclaimed immediately.
  /// Inline: this plus emit<T> is the complete per-message send path. All
  /// effects go through the calling thread's SendContext, so the same
  /// code serves the serial scheduler and every parallel worker.
  void send(NodeId to, PooledMsg msg) {
    SSPS_ASSERT(msg);
    SendContext& ctx = send_ctx();
    // Per-node offered-load cells exist only for addresses the slot table
    // has ever issued. Anything else — e.g. a garbage reference decoded
    // from a corrupted message, which can be any 64-bit value — still
    // counts in the totals but gets no cell: the per-node tables index by
    // id, and an attacker-chosen id must not size an allocation.
    const NodeId to_cell = to.value <= slots_.size() ? to : NodeId::null();
    ctx.metrics->on_send_id(ctx.metrics->label_id(*msg), msg->wire_size(), to_cell);
    const bool enqueued = alive(to);
    if (trace_ != nullptr) [[unlikely]] trace_send(to, *msg, enqueued);
    if (!enqueued) {
      // Target crashed or never existed: the message invokes no action
      // (its pool slot is recycled as `msg` goes out of scope).
      ++ctx.swallowed_to_dead;
      return;
    }
    enqueue(ctx, to, std::move(msg));
  }

  /// Allocates a T from the pool and sends it: the one-line send path for
  /// protocol code.
  template <typename T, typename... Args>
  void emit(NodeId to, Args&&... args) {
    send(to, send_ctx().pool->make<T>(std::forward<Args>(args)...));
  }

  /// Injects a message into a channel without attributing it to a sender;
  /// used by adversarial initial-state generators (corrupted messages).
  void inject(NodeId to, PooledMsg msg);

  /// The arena the calling thread allocates messages from: the Network's
  /// own pool, or the worker's private pool during a parallel round.
  MessagePool& pool() { return *send_ctx().pool; }
  const MessagePool& pool() const { return *const_cast<Network*>(this)->send_ctx().pool; }

  /// Bytes reserved by every message arena of this simulation (the main
  /// pool plus any scheduler-owned worker pools).
  std::size_t pool_reserved_bytes() const;

  /// Total number of messages currently sitting in channels (including,
  /// in timed mode, messages in flight on the virtual-clock event heap).
  std::size_t pending_messages() const {
    return pending_.size() + timed_events_.size();
  }

  /// Number of messages pending for one node.
  std::size_t pending_for(NodeId id) const;

  // ---- Scheduling -----------------------------------------------------

  /// Executes one schedule unit of the installed scheduler — a
  /// synchronous round, a timed interval, or a single asynchronous step
  /// (sched::Scheduler::Unit) — then lets the scheduler sample any
  /// attached probe. Returns the number of messages it delivered.
  std::size_t run_unit();

  /// Runs `k` schedule units.
  void run_units(std::size_t k);

  /// Synchronous-round alias of run_unit() (the historical name; every
  /// round-grained scheduler executes exactly one round per unit):
  /// delivers every message that was pending at round start (randomized
  /// order), then fires every alive node's Timeout. One round is the
  /// paper's "timeout interval".
  std::size_t run_round() { return run_unit(); }

  /// Runs `k` rounds (alias of run_units).
  void run_rounds(std::size_t k) { run_units(k); }

  /// Runs schedule units until `pred()` holds or `max_units` probe
  /// opportunities elapse. Returns the number of units executed, or
  /// nullopt if the predicate never held.
  ///
  /// `pred` must be a function of the simulated system state (every
  /// convergence probe is). Round-grained schedulers probe once per
  /// round, and rounds that executed no action at all are skipped without
  /// re-evaluating it (see the quiescence note in network.cpp).
  /// Step-grained schedulers batch settle_stride() units (~one action per
  /// alive node) between probes so the probe isn't priced per single
  /// delivery; the budget counts probes, keeping it comparable to a round
  /// budget.
  std::optional<std::size_t> run_until(const std::function<bool()>& pred,
                                       std::size_t max_units);

  /// One step of the randomized asynchronous scheduler: executes exactly
  /// one enabled action (a delivery or a Timeout) subject to the fairness
  /// bounds in AsyncConfig. Returns the number of messages delivered by
  /// the step (0 or 1).
  std::size_t step();

  /// Runs `k` async steps.
  void run_steps(std::size_t k);

  /// Installs the round scheduler: 1 = the serial scheduler (default),
  /// N > 1 = a ParallelScheduler with N workers. Any thread count yields
  /// bit-identical delivery traces and reports (see src/sched/parallel.hpp
  /// for the argument); only wall-clock changes. May be called mid-run at
  /// a round boundary: the previous scheduler is retired, not destroyed,
  /// because in-flight envelopes may live in its worker pools.
  void set_threads(unsigned threads);

  /// Installs a specific scheduler instance (set_threads is the normal
  /// entry point).
  void set_scheduler(std::unique_ptr<sched::Scheduler> scheduler);

  /// Worker count of the installed round scheduler.
  unsigned scheduler_threads() const;

  /// Current round (advanced by run_round only).
  Round round() const { return round_; }

  /// Current async step (advanced by step only).
  Step now() const { return step_; }

  /// The installed scheduler's unit clock: the step clock for a
  /// step-grained scheduler, the round clock otherwise — the clock every
  /// run_until budget and phase duration is denominated in.
  std::uint64_t unit_now() const;

  AsyncConfig& async_config() { return async_cfg_; }

  /// Which clock the telemetry layer keys on (delivery-latency `born`
  /// stamps, probe sample indices). The round schedulers count rounds
  /// (and the timed scheduler's virtual seconds coincide with its round
  /// count by construction); a harness that drives the network with
  /// step() installs kSteps so latency is denominated in steps instead of
  /// a clock that never advances.
  enum class ClockMode { kRounds, kSteps };
  void set_clock_mode(ClockMode mode) { clock_mode_ = mode; }
  ClockMode clock_mode() const { return clock_mode_; }

  /// The telemetry clock's current value (see ClockMode).
  std::uint64_t clock_now() const {
    return clock_mode_ == ClockMode::kSteps ? step_ : round_;
  }

  // ---- Timed mode (event-driven virtual clock; see sim/link.hpp) -------

  /// Switches the network to the event-driven timed model: sends are
  /// scheduled onto a virtual-clock event heap with per-link latency,
  /// loss, duplication and reordering per `cfg`, and run_round() (via the
  /// installed sched::TimedScheduler) advances the clock one interval
  /// (= 1 virtual second = one round) at a time. Call before the first
  /// round; the default TimedConfig reproduces the round scheduler's
  /// trace bit-for-bit.
  void enable_timed(const TimedConfig& cfg);

  bool timed() const { return timed_enabled_; }
  const TimedConfig& timed_config() const { return timed_cfg_; }

  /// Appends a partition window (virtual-second bounds are absolute, i.e.
  /// relative to the start of the run) to the live schedule.
  void add_partition(const PartitionWindow& window);

  /// Virtual clock in ticks (1000 per interval); 0 unless timed.
  Step virtual_now_ticks() const { return timed_now_; }

  /// Messages dropped by link loss or partitions so far (timed mode).
  std::uint64_t timed_dropped() const { return timed_dropped_; }
  /// Extra deliveries manufactured by link duplication (timed mode).
  std::uint64_t timed_duplicated() const { return timed_duplicated_; }
  /// Messages whose bytes were mangled in flight (timed mode; requires a
  /// Corrupter). Counts both outcomes: rejected and delivered-different.
  std::uint64_t timed_corrupted() const { return timed_corrupted_; }
  /// Corrupted messages whose damage was detected and rejected (subset of
  /// timed_corrupted; also counted in Metrics::total_rejected).
  std::uint64_t timed_rejected() const { return timed_rejected_; }

  /// Installs the wire-damage model corrupting links apply (nullptr
  /// detaches). Without one, LinkProfile::corrupt > 0 is inert. The
  /// corrupter must outlive the attachment.
  void set_corrupter(Corrupter* corrupter) { corrupter_ = corrupter; }
  Corrupter* corrupter() const { return corrupter_; }

  // ---- Crash recovery (periodic snapshots; see Node::snapshot_state) ---

  /// Turns on periodic snapshots: at the end of every round divisible by
  /// `every`, each alive node that implements snapshot_state has its
  /// encoded state captured (overwriting the previous capture). 0
  /// disables. Snapshots survive the node's crash — that is the point:
  /// recover() restores from the last capture, which may be arbitrarily
  /// stale by then.
  void enable_snapshots(Round every) { snapshot_every_ = every; }

  /// Captures snapshots of every alive node right now (also called
  /// automatically on the enable_snapshots cadence).
  void take_snapshots();

  /// The stored snapshot bytes for `id` (empty if none was ever taken).
  /// The mutable variant lets fault injection damage stored snapshots —
  /// recovery must then survive restore_state rejecting them.
  const std::vector<std::uint8_t>& snapshot_of(NodeId id) const;
  std::vector<std::uint8_t>& mutable_snapshot(NodeId id);

  /// Restarts a crashed node: re-occupies `id`'s tombstone slot with
  /// `node` (same NodeId — the paper's model has no address reuse issue
  /// because a recovered process IS the process, rebooted), then replays
  /// the stored snapshot through restore_state. Returns true if the
  /// snapshot restored cleanly; false when there was no snapshot or
  /// restore_state rejected it (the node then starts from its freshly
  /// constructed state and must re-stabilize from scratch). After
  /// recover, alive(id) is true and crash_round(id) is nullopt again.
  bool recover(NodeId id, std::unique_ptr<Node> node);

  // ---- Introspection ---------------------------------------------------

  /// The aggregated traffic counters. Under the parallel scheduler the
  /// per-worker shards are folded in (worker-id order) on access, so
  /// readers always observe totals bit-identical to a serial run.
  Metrics& metrics();
  const Metrics& metrics() const;

  /// The aggregated delivery-latency histograms (same fold-on-access
  /// discipline as metrics(): per-worker shards fold in first, so the
  /// distribution is bit-identical to a serial run).
  telemetry::LatencyTracker& latency();
  const telemetry::LatencyTracker& latency() const;

  /// Records one publication delivery that took `rounds` rounds end to
  /// end (called by the pub-sub layer through its MessageSink). Routed
  /// through the calling thread's SendContext, so a parallel worker
  /// records into its own shard without any atomics.
  void record_delivery_latency(std::uint32_t topic, Round rounds) {
    send_ctx().latency->record(topic, rounds);
  }

  /// Records a handler-level rejection: received contents that decoded
  /// into a well-formed message but that the handler refused as
  /// malformed or unservable (e.g. a non-Subscribe envelope for a topic
  /// the supervisor does not host). Routed through the calling thread's
  /// SendContext, so a parallel worker's rejections land in its own
  /// shard without atomics.
  void record_reject(std::size_t bytes) { send_ctx().metrics->on_reject(bytes); }

  /// Attaches a per-round time-series probe: every run_round() pushes one
  /// RoundSample after the round barrier. Pass nullptr to detach. The
  /// probe must outlive the attachment.
  void attach_round_probe(telemetry::RoundProbe* probe) { round_probe_ = probe; }

  /// Attaches a structured event trace recording every send and delivery
  /// with flow correlation (see src/telemetry/perfetto.hpp for the
  /// exporter). Serial-only: tracing attributes sends to the acting node
  /// via a single member, so the scheduler must stay single-threaded
  /// while a trace is attached. Pass nullptr to detach.
  void attach_trace(Trace* trace);

  /// Maintains sender attribution (Envelope::from) for round-mode sends
  /// even without a trace or timed mode: the multi-process deployment
  /// shards in-flight messages by sending node, so it needs `from` on
  /// every node-originated envelope. Round delivery never reads `from`
  /// (grouping, shuffling and crash drops all key on `to`), so flipping
  /// this changes no delivery decision and no report byte. Serial-only,
  /// like tracing: attribution goes through the single acting_node_
  /// member.
  void set_attribute_sends(bool on) {
    SSPS_ASSERT_MSG(!on || scheduler_threads() == 1,
                    "set_attribute_sends: attribution is serial-only");
    attribute_sends_ = on;
  }

  /// Visits every in-flight round-lane envelope in canonical send (seq)
  /// order — pending_ appends in send order and only the round barrier
  /// reorders, so iteration order IS the simulator's canonical order.
  /// Read-only: the deployment layer uses it to extract the envelopes its
  /// shard originated.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    for (const Envelope& env : pending_) fn(env);
  }

  /// The in-flight envelope stamped (from, seq), or nullptr. Seq values
  /// are unique (single monotone counter), so the pair over-identifies;
  /// `from` is kept in the key as a cross-process consistency check.
  const Envelope* find_pending(NodeId from, std::uint64_t seq) const;

  /// Swaps the payload of the in-flight envelope stamped (from, seq) for
  /// `msg`, keeping the envelope's routing fields (to, sent_at, seq).
  /// The deployment transport uses this to substitute the bytes that
  /// actually travelled the socket for the replica-generated message —
  /// delivery then consumes the wire-decoded object. Returns false if no
  /// such envelope is in flight.
  bool replace_pending_message(NodeId from, std::uint64_t seq, PooledMsg msg);

  ssps::Rng& rng() { return rng_; }

  /// True if the union graph of explicit edges (node variables) and
  /// implicit edges (references inside channels) is weakly connected over
  /// the alive nodes, treating `anchor` (if provided) as an always-known
  /// reference (the paper's read-only supervisor star graph).
  bool weakly_connected(NodeId anchor = NodeId::null()) const;

 private:
  friend class sched::Scheduler;
  friend class sched::SerialScheduler;
  friend class sched::ParallelScheduler;
  friend class sched::TimedScheduler;
  friend class sched::AsyncScheduler;
  friend class sched::BranchScheduler;

  struct Slot {
    std::unique_ptr<Node> node;  // null = tombstone (crashed)
    Step last_timeout = 0;
    Round crash_round = 0;
    /// Last periodic snapshot of the node's encoded state (empty = never
    /// captured). Deliberately kept across crash(): recover() restores
    /// from it.
    std::vector<std::uint8_t> snapshot;
  };

  /// One scheduled delivery on the timed event heap: the envelope plus
  /// its virtual delivery time. Equal-time events pop in send (`seq`)
  /// order — the deterministic tie-break that makes the constant-latency
  /// special case reproduce the round batch order exactly.
  struct TimedEvent {
    Step at = 0;
    std::uint64_t seq = 0;
    Envelope env;
  };
  /// Min-heap "later than" comparator for std::push_heap/pop_heap.
  static bool timed_event_later(const TimedEvent& a, const TimedEvent& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  /// Lazy oldest-first index entries of the async scheduler (see step()):
  /// validated against pending_ on pop, so swap-removes and round swaps
  /// never have to eagerly fix the heaps.
  struct MsgHeapEntry {
    Step sent_at = 0;
    std::uint64_t seq = 0;
    std::uint32_t index = 0;
  };
  static bool msg_entry_later(const MsgHeapEntry& a, const MsgHeapEntry& b) {
    return a.sent_at != b.sent_at ? a.sent_at > b.sent_at : a.seq > b.seq;
  }
  struct TimeoutHeapEntry {
    Step last_timeout = 0;
    std::uint32_t slot_index = 0;
  };
  static bool timeout_entry_later(const TimeoutHeapEntry& a,
                                  const TimeoutHeapEntry& b) {
    return a.last_timeout != b.last_timeout
               ? a.last_timeout > b.last_timeout
               : a.slot_index > b.slot_index;
  }

  Slot* find_slot(NodeId id) {
    const std::uint64_t index = id.value - 1;
    return id.value >= 1 && index < slots_.size() ? &slots_[index] : nullptr;
  }
  const Slot* find_slot(NodeId id) const {
    return const_cast<Network*>(this)->find_slot(id);
  }
  static NodeId id_at(std::size_t index) {
    return NodeId{static_cast<std::uint64_t>(index) + 1};
  }

  /// The calling thread's send context: a parallel worker's private
  /// context during its delivery slice, the Network's own otherwise.
  SendContext& send_ctx() {
    SendContext* tls = detail::tls_send_ctx;
    return tls != nullptr ? *tls : main_ctx_;
  }

  void enqueue(SendContext& ctx, NodeId to, PooledMsg&& msg) {
    Envelope env;
    env.to = to;
    env.from = acting_node_;
    env.msg = msg.get();
    env.pool = msg.pool();
    env.sent_at = step_;
    // The canonical send counter lives on the main lane; worker lanes are
    // merged in send-reproducing order anyway, and a shared counter would
    // be a cross-thread write on the parallel hot path.
    if (ctx.lane == &pending_) env.seq = next_send_seq_++;
    env.handle = msg.release();
    ctx.lane->push_back(env);
  }

  // ---- Round phases (called by the sched:: schedulers) -----------------

  /// Phase A (sequential): advances the step clock, swaps the merged
  /// in-flight buffer out as this round's batch, applies the seeded
  /// shuffle and the stable group-by-target counting sort. Returns the
  /// batch size; after it, scatter_offsets_[v] is the END offset of
  /// target id v's group in grouped_ (so shard slice boundaries are
  /// scatter_offsets_ lookups).
  std::size_t round_begin();

  /// Phase B: delivers grouped_[begin, end) — a contiguous run of target
  /// groups — accounting through `ctx`. Safe to run concurrently for
  /// disjoint target ranges: a handler touches only its own node's state
  /// and sends through `ctx` (see the shard argument in
  /// src/sched/parallel.hpp). Returns the number delivered.
  std::size_t deliver_grouped_range(std::size_t begin, std::size_t end,
                                    SendContext& ctx);

  /// Phase C (sequential): fires Timeouts in id order; sends append to
  /// the main in-flight buffer, after every merged delivery lane.
  void timeout_sweep();

  /// Finishes the round (advances the round clock).
  void round_end() { ++round_; }

  /// The shuffle + group-by-target counting sort applied to round_batch_
  /// (shared by round_begin and timed_interval; consumes round_batch_).
  /// Returns the batch size.
  std::size_t group_round_batch();

  // ---- Timed-mode engine (called by sched::TimedScheduler) -------------

  /// Advances the virtual clock one interval (= one round = 1 virtual
  /// second): schedules any harness sends, pops every event due by the
  /// interval deadline into the delivery batch (time order, send-order
  /// ties), delivers, schedules the resulting sends, fires the timeout
  /// sweep and schedules its sends. Returns the number delivered.
  std::size_t timed_interval();

  /// Drains pending_ onto the event heap, routing each envelope through
  /// its link (loss, partition, duplication, latency). `send_tick` is the
  /// virtual time the drained sends are deemed to have happened at.
  void schedule_sends(Step send_tick);
  void route_envelope(const Envelope& env, Step send_tick);
  void push_timed_event(Step at, const Envelope& env);
  /// Drops one envelope on the floor (loss/partition path).
  void drop_envelope(const Envelope& env);

  /// Delivers pending_[index] (swap-remove; non-FIFO channels). Async
  /// scheduler path.
  void deliver_at(std::size_t index);
  void deliver_envelope(const Envelope& env, Node& node);
  void fire_timeout(Slot& slot);

  // ---- Async oldest-first index (see step()) ---------------------------

  /// Appends heap entries for pending_ envelopes not yet indexed.
  void sync_msg_heap();
  /// Oldest pending message as (age, index), or age 0 when none pending.
  std::pair<Step, std::size_t> oldest_pending();
  /// Stalest alive Timeout as (idle, slot), or {0, nullptr} when none is
  /// overdue by at least one step.
  std::pair<Step, Slot*> stalest_timeout();
  void rebuild_timeout_heap();
  void sample_async_probe();

  // ---- Telemetry hooks (cold paths; only reached when attached) -------
  void trace_send(NodeId to, const Message& msg, bool enqueued);
  void trace_deliver(const Envelope& env);
  /// Forgets a message's flow id before its pool slot is recycled on a
  /// non-delivery path (crash drop, destructor drain) — a reused slot
  /// must never alias an old flow.
  void trace_forget(const Message* msg);
  void sample_round_probe(std::size_t delivered);
  /// Reclaims every pending message addressed to `to` (crash path).
  void drop_pending_for(NodeId to);
  void collect_alive(std::vector<NodeId>& out) const;

  std::vector<Slot> slots_;  // index = NodeId.value - 1
  std::size_t alive_count_ = 0;
  std::vector<Envelope> pending_;  // all in-flight messages, send order
  std::vector<std::pair<Round, NodeId>> crash_log_;  // crash order
  Round round_ = 0;
  Step step_ = 0;
  std::uint64_t seed_ = 0;  // construction seed (re-salts link_rng_)
  ssps::Rng rng_;
  MessagePool pool_;
  Metrics metrics_;
  telemetry::LatencyTracker latency_;
  AsyncConfig async_cfg_;
  ClockMode clock_mode_ = ClockMode::kRounds;
  /// Canonical send counter (Envelope::seq source); main lane only.
  std::uint64_t next_send_seq_ = 0;

  // ---- Timed-mode state ------------------------------------------------
  bool timed_enabled_ = false;
  TimedConfig timed_cfg_;
  /// Virtual clock in ticks; advances by kTicksPerInterval per interval.
  Step timed_now_ = 0;
  /// Event heap (timed_event_later order): all in-flight timed messages.
  std::vector<TimedEvent> timed_events_;
  /// Link-fault stream, decorrelated from rng_ (the scheduler stream must
  /// draw exactly the round scheduler's sequence for the equivalence
  /// argument; faults and latency sampling draw here instead).
  ssps::Rng link_rng_{0};
  std::uint64_t timed_dropped_ = 0;
  std::uint64_t timed_duplicated_ = 0;
  std::uint64_t timed_corrupted_ = 0;
  std::uint64_t timed_rejected_ = 0;
  /// Wire-damage model of corrupting links (null = corruption inert).
  Corrupter* corrupter_ = nullptr;

  // ---- Snapshot / recovery state ---------------------------------------
  /// Periodic snapshot cadence in rounds (0 = off).
  Round snapshot_every_ = 0;
  /// Last round at which the periodic capture ran (run_unit may be called
  /// by step-grained schedulers that never advance the round clock).
  Round last_snapshot_round_ = 0;

  // ---- Async oldest-first index state ----------------------------------
  /// Lazy min-heaps over (sent_at, seq) / (last_timeout, slot); entries
  /// are validated on pop (see step()), so structural churn just leaves
  /// stale entries behind instead of forcing eager rebuilds.
  std::vector<MsgHeapEntry> async_msg_heap_;
  /// pending_ entries [0, async_synced_) already have heap entries.
  std::size_t async_synced_ = 0;
  std::vector<TimeoutHeapEntry> async_timeout_heap_;
  /// False after bulk last_timeout churn (a round's timeout sweep) or a
  /// spawn; step() rebuilds the heap once on demand.
  bool async_timeout_heap_valid_ = false;
  /// Alive ids in id order, reused across steps (collect_alive was an
  /// O(slots) scan per step); invalidated by spawn/crash.
  std::vector<NodeId> alive_cache_;
  bool alive_cache_valid_ = false;
  /// Probe window counters since the last async sample (satellite of the
  /// empty-timeseries fix: run_steps samples these every probe_stride).
  std::size_t window_delivered_ = 0;
  std::size_t window_timeouts_ = 0;
  /// The Network's own send context (lane = pending_, shard = metrics_,
  /// arena = pool_); aggregates the workers' swallowed counters at fold.
  SendContext main_ctx_;
  /// Set by the ParallelScheduler around its concurrent delivery phase;
  /// structure mutations (spawn/crash/inject) assert against it.
  bool in_parallel_phase_ = false;
  /// Timeouts fired by the last run_round (for the quiescence check).
  std::size_t last_round_timeouts_ = 0;

  /// Optional per-round time-series sink (attach_round_probe).
  telemetry::RoundProbe* round_probe_ = nullptr;
  /// Optional structured event trace (attach_trace; forces serial).
  Trace* trace_ = nullptr;
  /// Node whose action is currently executing — the `from` attribution
  /// for traced and timed-mode sends. Only maintained while a trace is
  /// attached or timed mode is on (both force the serial scheduler, so
  /// the single member is race-free); null for sends from outside any
  /// round (harness injections, publishes).
  NodeId acting_node_;
  /// Keep acting_node_ maintained in plain round mode too
  /// (set_attribute_sends; serial-only like the trace/timed cases).
  bool attribute_sends_ = false;
  /// In-flight flow correlation: message -> flow id, assigned in send
  /// order. Only populated while a trace is attached.
  std::unordered_map<const Message*, std::uint64_t> flow_ids_;
  std::uint64_t next_flow_ = 0;

  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Schedulers replaced mid-run: their worker pools may still own
  /// in-flight envelopes, so they live until the Network dies.
  std::vector<std::unique_ptr<sched::Scheduler>> retired_schedulers_;

  // Scratch buffers reused across rounds (capacity persists). The grouped
  // scatter target is a raw array, not a vector: every cell in [0, batch)
  // is overwritten by the counting sort each round, so element lifetime
  // bookkeeping (and the re-zeroing a vector resize would do) is pure
  // overhead — and no pooled handle ever outlives the delivery loop here,
  // so the destructor has nothing to reclaim from it.
  std::vector<Envelope> round_batch_;
  std::unique_ptr<Envelope[]> grouped_;
  std::size_t grouped_cap_ = 0;
  std::vector<std::uint32_t> scatter_offsets_;
  std::vector<NodeId> order_scratch_;
};

}  // namespace ssps::sim
