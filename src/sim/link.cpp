#include "sim/link.hpp"

#include <cmath>
#include <numbers>

namespace ssps::sim {

Step LatencySpec::sample_ticks(Rng& rng) const {
  double seconds = a;
  switch (dist) {
    case Dist::kConstant:
      // No draw (see the header note: the default profile's link stream
      // must stay empty for the round-equivalence argument).
      break;
    case Dist::kUniform:
      seconds = a + (b - a) * rng.uniform01();
      break;
    case Dist::kLognormal: {
      // Box-Muller; clamp the first uniform away from 0 so log is finite.
      const double u1 = std::max(rng.uniform01(), 1e-12);
      const double u2 = rng.uniform01();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
      seconds = std::exp(a + b * z);
      break;
    }
  }
  // Integer ticks on [1 tick, 60 s]: the floor is the causality bound
  // (nothing arrives within its own send instant); the ceiling keeps a
  // heavy lognormal tail from parking messages beyond any convergence
  // horizon.
  const double ticks = seconds * static_cast<double>(kTicksPerInterval);
  constexpr Step kMaxTicks = 60 * kTicksPerInterval;
  if (!(ticks >= 1.0)) return 1;  // also catches NaN
  if (ticks >= static_cast<double>(kMaxTicks)) return kMaxTicks;
  return static_cast<Step>(std::llround(ticks));
}

bool TimedConfig::partitioned(NodeId from, NodeId to, Step sent_tick) const {
  if (partitions.empty()) return false;
  const std::uint32_t zf = zone_of(from);
  const std::uint32_t zt = zone_of(to);
  for (const PartitionWindow& w : partitions) {
    if (sent_tick < w.from_tick() || sent_tick >= w.to_tick()) continue;
    if ((zf == w.zone_a && zt == w.zone_b) ||
        (w.bidirectional && zf == w.zone_b && zt == w.zone_a)) {
      return true;
    }
  }
  return false;
}

}  // namespace ssps::sim
