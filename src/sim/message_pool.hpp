// Slab/arena allocation for protocol messages.
//
// The simulator used to heap-allocate every Message behind a
// std::unique_ptr; at n >= 1024 the malloc/free churn dominated the round
// loop. The MessagePool replaces it with size-classed slabs and LIFO
// freelists: a message lives in a pooled slot, is addressed by a 32-bit
// MsgHandle (size class in the top bits, slot index below), and its slot
// is recycled as soon as the message is delivered or its target crashes.
//
// Determinism: allocation order is a pure function of the make/destroy
// call sequence (fresh slots are handed out sequentially, freed slots are
// reused LIFO), so a replayed run sees bit-identical handle sequences —
// tests/sim/message_pool_test.cpp pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace ssps::sim {

class Message;
class MessagePool;

/// Runtime type tag of a concrete Message class. Assigned lazily, one per
/// instantiated type; valid ids are nonzero. Tags make message dispatch a
/// single integer compare (see msg_cast) instead of a dynamic_cast.
using MsgTypeId = std::uint32_t;

namespace detail {
MsgTypeId allocate_msg_type_id();

/// Namespace-scope inline variable (one per type, assigned before main):
/// reading it is a plain load, with none of the guard-check overhead a
/// function-local static would put into every msg_cast.
template <typename T>
inline const MsgTypeId msg_type_id_of = allocate_msg_type_id();
}  // namespace detail

/// The unique tag of message type T (exact type, not a base).
template <typename T>
MsgTypeId msg_type_id() {
  return detail::msg_type_id_of<T>;
}

/// Pooled address of a message: size class in the top 4 bits, slot index
/// in the remaining 28. Value semantics; kNull means "no message".
struct MsgHandle {
  static constexpr std::uint32_t kNull = 0xffffffffu;

  std::uint32_t bits = kNull;

  constexpr bool is_null() const { return bits == kNull; }
  constexpr explicit operator bool() const { return bits != kNull; }
  constexpr bool operator==(const MsgHandle&) const = default;

  constexpr std::uint32_t size_class() const { return bits >> 28; }
  constexpr std::uint32_t slot() const { return bits & 0x0fffffffu; }

  static constexpr MsgHandle make(std::uint32_t size_class, std::uint32_t slot) {
    return MsgHandle{(size_class << 28) | slot};
  }
};

/// One slot release that must wait for the next round barrier: the handle
/// plus the pool that owns it (parallel rounds run one pool per worker).
struct DeferredFree {
  MessagePool* pool = nullptr;
  MsgHandle handle;
};

/// Per-worker deferred-free list, active while a ParallelScheduler phase
/// runs on this thread. A worker delivering messages frees slots that
/// belong to *other* workers' pools (whoever sent the message last round
/// allocated it); pushing those frees here — and repatriating them on the
/// main thread at the round barrier — keeps every pool's freelist
/// single-threaded, so the hot allocation path needs no atomics. Frees
/// into the worker's own pool (`own`) recycle immediately.
struct FreeLane {
  MessagePool* own = nullptr;
  std::vector<DeferredFree> deferred;
};

namespace detail {
/// Null outside parallel round phases; set by the scheduler's workers
/// around their delivery slice. See FreeLane.
extern thread_local FreeLane* tls_free_lane;
}  // namespace detail

/// Owning smart handle for a pooled message: unique_ptr semantics (move
/// only, destroys the message and recycles its slot on scope exit), plus
/// access to the underlying MsgHandle for code that stores messages
/// compactly (the Network's channels).
class PooledMsg {
 public:
  PooledMsg() = default;
  PooledMsg(MessagePool* pool, Message* ptr, MsgHandle handle)
      : pool_(pool), ptr_(ptr), handle_(handle) {}

  PooledMsg(PooledMsg&& o) noexcept
      : pool_(o.pool_), ptr_(o.ptr_), handle_(o.handle_) {
    o.forget();
  }
  PooledMsg& operator=(PooledMsg&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      ptr_ = o.ptr_;
      handle_ = o.handle_;
      o.forget();
    }
    return *this;
  }
  PooledMsg(const PooledMsg&) = delete;
  PooledMsg& operator=(const PooledMsg&) = delete;
  ~PooledMsg() { reset(); }

  Message* get() const { return ptr_; }
  Message* operator->() const { return ptr_; }
  Message& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  MsgHandle handle() const { return handle_; }
  MessagePool* pool() const { return pool_; }

  /// Destroys the held message (if any) and recycles its slot.
  void reset();

  /// Releases ownership without destroying; returns the raw handle. The
  /// caller becomes responsible for MessagePool::destroy.
  MsgHandle release() {
    const MsgHandle h = handle_;
    forget();
    return h;
  }

 private:
  void forget() {
    pool_ = nullptr;
    ptr_ = nullptr;
    handle_ = MsgHandle{};
  }

  MessagePool* pool_ = nullptr;
  Message* ptr_ = nullptr;
  MsgHandle handle_ = MsgHandle{};
};

/// Size-classed slab allocator for messages. Owned by the Network; every
/// protocol message of a simulation lives here.
class MessagePool {
 public:
  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool();

  /// Constructs a T in a pooled slot and returns the owning handle.
  template <typename T, typename... Args>
  PooledMsg make(Args&&... args) {
    static_assert(std::is_base_of_v<Message, T>);
    const std::uint32_t cls = class_for(sizeof(T));
    const std::uint32_t slot = allocate_slot(cls, sizeof(T));
    T* msg = ::new (address_of(cls, slot)) T(std::forward<Args>(args)...);
    ++live_;
    ++total_allocated_;
    return PooledMsg(this, msg, MsgHandle::make(cls, slot));
  }

  /// The message stored at `h` (must be live).
  Message* get(MsgHandle h) {
    return std::launder(reinterpret_cast<Message*>(address_of(h.size_class(), h.slot())));
  }

  /// Runs the message's destructor and recycles the slot (LIFO). During a
  /// parallel round phase a free into a pool this thread does not own is
  /// deferred to the thread's FreeLane and repatriated at the round
  /// barrier (the slot's live accounting moves with it, in reclaim()).
  void destroy(MsgHandle h) { destroy(get(h), h); }

  /// destroy() for callers that already hold the message pointer (the
  /// Network's envelopes, PooledMsg). On a worker thread this avoids the
  /// slab-table lookup of get(), which may race the owning thread growing
  /// its own pool mid-phase; the destructor itself only touches the slot's
  /// memory, which is exclusively this message's until reclaim().
  void destroy(Message* msg, MsgHandle h) {
    SSPS_ASSERT(!h.is_null());
    destroy_msg(msg);
    FreeLane* lane = detail::tls_free_lane;
    if (lane != nullptr && lane->own != this) [[unlikely]] {
      lane->deferred.push_back(DeferredFree{this, h});
      return;
    }
    reclaim(h);
  }

  /// Recycles a slot whose destructor already ran (the repatriation half
  /// of a deferred destroy). Must run on the thread that owns this pool —
  /// in practice, the main thread at a round barrier.
  void reclaim(MsgHandle h) {
    if (h.size_class() == kOversizeClass) {
      oversize_free_.push_back(h.slot());
    } else {
      classes_[h.size_class()].free_list.push_back(h.slot());
    }
    --live_;
  }

  /// Messages currently alive in the pool.
  std::size_t live() const { return live_; }

  /// Messages ever constructed (monotone; for recycling tests/benches).
  std::uint64_t total_allocated() const { return total_allocated_; }

  /// Pooled slots ever carved out of slabs (monotone). total_allocated()
  /// growing while slot_count() stays flat is recycling at work.
  std::uint64_t slot_count() const;

  /// Bytes currently reserved by all slabs.
  std::size_t reserved_bytes() const;

  /// True while the destructor's slot sweep runs (see ~MessagePool).
  bool tearing_down() const { return tearing_down_; }

 private:
  // Fixed-size classes; messages larger than the last class get an
  // individually sized slot in the oversize class (index kNumClasses).
  static constexpr std::size_t kClassBytes[] = {64, 128, 256, 512};
  static constexpr std::uint32_t kNumClasses =
      static_cast<std::uint32_t>(std::size(kClassBytes));
  static constexpr std::uint32_t kOversizeClass = kNumClasses;
  static constexpr std::size_t kSlabSlots = 1024;

  struct SizeClass {
    std::vector<std::unique_ptr<std::byte[]>> slabs;
    std::vector<std::uint32_t> free_list;
    std::uint32_t created = 0;  // slots ever carved from slabs
  };
  struct OversizeSlot {
    std::unique_ptr<std::byte[]> block;
    std::size_t capacity = 0;
  };

  static std::uint32_t class_for(std::size_t bytes) {
    for (std::uint32_t c = 0; c < kNumClasses; ++c) {
      if (bytes <= kClassBytes[c]) return c;
    }
    return kOversizeClass;
  }

  static void destroy_msg(Message* msg);  // virtual dtor call (needs Message)

  std::uint32_t allocate_slot(std::uint32_t cls, std::size_t bytes) {
    if (cls != kOversizeClass) [[likely]] {
      SizeClass& sc = classes_[cls];
      if (!sc.free_list.empty()) [[likely]] {
        const std::uint32_t slot = sc.free_list.back();
        sc.free_list.pop_back();
        return slot;
      }
    }
    return allocate_slot_slow(cls, bytes);
  }
  std::uint32_t allocate_slot_slow(std::uint32_t cls, std::size_t bytes);

  std::byte* address_of(std::uint32_t cls, std::uint32_t slot) {
    if (cls != kOversizeClass) [[likely]] {
      return classes_[cls].slabs[slot / kSlabSlots].get() +
             kClassBytes[cls] * (slot % kSlabSlots);
    }
    return oversize_[slot].block.get();
  }

  SizeClass classes_[kNumClasses];
  std::vector<OversizeSlot> oversize_;
  std::vector<std::uint32_t> oversize_free_;
  std::size_t live_ = 0;
  std::uint64_t total_allocated_ = 0;
  bool tearing_down_ = false;
};

}  // namespace ssps::sim
