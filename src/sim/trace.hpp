// Observability tooling: structured event log + Graphviz topology export.
//
// The simulator and harnesses stay silent by default; attaching a Trace
// (Network::attach_trace) records message-level events with bounded
// memory, and `to_dot` renders any overlay adjacency for inspection
// (`dot -Tsvg overlay.dot`).
//
// TraceEvent is a POD: labels are interned to dense ids exactly like
// sim::Metrics interns action names, so recording an event is a ring
// store with no allocation — an attached trace no longer perturbs the
// hot path. Send/deliver pairs share a `flow` correlation id, which is
// what the Perfetto exporter (src/telemetry/perfetto.hpp) turns into
// message-flow arrows between round spans.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace ssps::sim {

/// What an event records.
enum class TraceEventKind : std::uint8_t {
  kNote = 0,     // free-form annotation (tests, harnesses)
  kSend = 1,     // message handed to the network
  kDeliver = 2,  // message receipt at its target
};

/// One recorded event (POD; `label` is an interned id — resolve it with
/// Trace::label_name).
struct TraceEvent {
  Round round = 0;
  NodeId from;
  NodeId to;
  std::uint32_t label = 0;
  TraceEventKind kind = TraceEventKind::kNote;
  /// Correlates a send with its delivery (0 = uncorrelated). Assigned in
  /// send order, so flow ids are deterministic per seed.
  std::uint64_t flow = 0;
};

/// Bounded in-memory event recorder.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Interns `label` and records the event, evicting the oldest when the
  /// ring is full.
  void record(Round round, NodeId from, NodeId to, std::string_view label,
              TraceEventKind kind = TraceEventKind::kNote, std::uint64_t flow = 0) {
    record_id(round, from, to, intern(label), kind, flow);
  }

  /// Hot-path variant on a pre-interned label id.
  void record_id(Round round, NodeId from, NodeId to, std::uint32_t label,
                 TraceEventKind kind = TraceEventKind::kNote, std::uint64_t flow = 0);

  /// Dense id for a label (stable for this Trace; interning survives
  /// clear()).
  std::uint32_t intern(std::string_view label);

  /// Name of an interned label id.
  const std::string& label_name(std::uint32_t id) const { return label_names_[id]; }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }

  /// Drops all recorded events (label interning survives; it is not
  /// observable through to_text/filter).
  void clear();

  /// Events matching a label, newest last.
  std::vector<TraceEvent> filter(std::string_view label) const;

  /// Renders the recorded events as a text timeline.
  std::string to_text() const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::deque<TraceEvent> events_;

  // Interning (not cleared by clear()).
  std::vector<std::string> label_names_;  // id -> name
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      label_ids_;  // name -> id
};

/// An overlay edge for rendering.
struct DotEdge {
  NodeId from;
  NodeId to;
  /// Rendering class; mapped to a color (e.g. "ring", "shortcut", "cyc").
  std::string kind;
};

/// Renders nodes + edges as a Graphviz digraph. `node_label` supplies the
/// display text per node (e.g. "id=5\nlabel=011").
std::string to_dot(const std::vector<NodeId>& nodes,
                   const std::vector<DotEdge>& edges,
                   const std::function<std::string(NodeId)>& node_label);

}  // namespace ssps::sim
