// Observability tooling: structured event log + Graphviz topology export.
//
// The simulator and harnesses stay silent by default; attaching a Trace
// records message-level events with bounded memory, and `to_dot` renders
// any overlay adjacency for inspection (`dot -Tsvg overlay.dot`).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ssps::sim {

/// One recorded event.
struct TraceEvent {
  Round round = 0;
  NodeId from;
  NodeId to;
  std::string label;  // action name or free-form note
};

/// Bounded in-memory event recorder.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(Round round, NodeId from, NodeId to, std::string label);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  /// Events matching a label, newest last.
  std::vector<TraceEvent> filter(const std::string& label) const;

  /// Renders the recorded events as a text timeline.
  std::string to_text() const;

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

/// An overlay edge for rendering.
struct DotEdge {
  NodeId from;
  NodeId to;
  /// Rendering class; mapped to a color (e.g. "ring", "shortcut", "cyc").
  std::string kind;
};

/// Renders nodes + edges as a Graphviz digraph. `node_label` supplies the
/// display text per node (e.g. "id=5\nlabel=011").
std::string to_dot(const std::vector<NodeId>& nodes,
                   const std::vector<DotEdge>& edges,
                   const std::function<std::string(NodeId)>& node_label);

}  // namespace ssps::sim
