#include "sim/metrics.hpp"

#include <algorithm>

namespace ssps::sim {

namespace {

std::size_t node_index(NodeId id) { return static_cast<std::size_t>(id.value - 1); }

}  // namespace

std::uint32_t Metrics::intern(std::string_view name) {
  auto it = label_ids_.find(name);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(label_names_.size());
  label_names_.emplace_back(name);
  label_ids_.emplace(label_names_.back(), id);
  return id;
}

std::uint32_t Metrics::label_of_slow(const Message& m, MsgTypeId type) {
  if (type != 0) {
    if (type >= label_of_type_.size()) label_of_type_.resize(type + 1, 0);
    std::uint32_t& cached = label_of_type_[type];
    if (cached == 0) cached = intern(m.name()) + 1;
    return cached - 1;
  }
  return intern(m.name());  // untagged (legacy/test) message
}

void Metrics::grow_deliver_table(std::size_t at_index, std::uint32_t label) {
  // Amortized growth in both dimensions; the flat table is rebuilt when
  // the label universe outgrows the stride (rare: labels are protocol
  // action names, all seen within the first rounds).
  const std::size_t rows =
      std::max({at_index + 1, received_.size() * 2, std::size_t{16}});
  std::uint32_t stride = labeled_stride_;
  if (label >= stride) {
    stride = std::max<std::uint32_t>({label + 1, stride * 2, 16});
  }
  std::vector<std::uint64_t> flat(rows * stride, 0);
  for (std::size_t row = 0; row < received_.size(); ++row) {
    for (std::uint32_t l = 0; l < labeled_stride_; ++l) {
      flat[row * stride + l] = received_labeled_[row * labeled_stride_ + l];
    }
  }
  received_labeled_ = std::move(flat);
  labeled_stride_ = stride;
  received_.resize(rows, 0);
}

void Metrics::on_send(std::string_view name, std::size_t bytes, NodeId to) {
  count_send(intern(name), bytes);
  count_sent_to(to);
}

void Metrics::on_deliver(std::string_view name, NodeId at) {
  count_deliver(intern(name), at);
}

void Metrics::on_inject(std::size_t bytes) {
  total_injected_ += 1;
  injected_bytes_ += bytes;
}

void Metrics::on_reject(std::size_t bytes) {
  total_rejected_ += 1;
  rejected_bytes_ += bytes;
}

void Metrics::fold_into(Metrics& dst) const {
  if (total_sent_ == 0 && total_delivered_ == 0 && total_injected_ == 0 &&
      total_rejected_ == 0) {
    return;
  }
  // Shard label id -> dst label id, resolved by name on first use.
  constexpr std::uint32_t kUnmapped = ~0u;
  std::vector<std::uint32_t> remap(label_names_.size(), kUnmapped);
  auto dst_label = [&](std::uint32_t l) {
    if (remap[l] == kUnmapped) remap[l] = dst.intern(label_names_[l]);
    return remap[l];
  };
  for (std::uint32_t l = 0; l < by_label_.size(); ++l) {
    const MessageCounter& c = by_label_[l];
    if (c.count == 0 && c.bytes == 0) continue;
    const std::uint32_t d = dst_label(l);
    if (d >= dst.by_label_.size()) dst.by_label_.resize(d + 1);
    dst.by_label_[d].count += c.count;
    dst.by_label_[d].bytes += c.bytes;
  }
  for (std::size_t row = 0; row < received_.size(); ++row) {
    if (received_[row] == 0) continue;  // untouched node: whole row is zero
    for (std::uint32_t l = 0; l < labeled_stride_; ++l) {
      const std::uint64_t v = received_labeled_[row * labeled_stride_ + l];
      if (v == 0) continue;
      const std::uint32_t d = dst_label(l);
      if (row >= dst.received_.size() || d >= dst.labeled_stride_) {
        dst.grow_deliver_table(row, d);
      }
      dst.received_labeled_[row * dst.labeled_stride_ + d] += v;
    }
    if (row >= dst.received_.size()) dst.grow_deliver_table(row, 0);
    dst.received_[row] += received_[row];
  }
  for (std::size_t row = 0; row < sent_to_.size(); ++row) {
    if (sent_to_[row] == 0) continue;
    if (row >= dst.sent_to_.size()) dst.sent_to_.resize(sent_to_.size(), 0);
    dst.sent_to_[row] += sent_to_[row];
  }
  dst.total_sent_ += total_sent_;
  dst.total_delivered_ += total_delivered_;
  dst.total_bytes_ += total_bytes_;
  dst.total_injected_ += total_injected_;
  dst.injected_bytes_ += injected_bytes_;
  dst.total_rejected_ += total_rejected_;
  dst.rejected_bytes_ += rejected_bytes_;
  dst.view_sent_ = kViewInvalid;  // by_label_ moved without a counted send
}

void Metrics::reset() {
  by_label_.clear();
  by_label_view_.clear();
  view_sent_ = kViewInvalid;
  received_.clear();
  sent_to_.clear();
  received_labeled_.clear();
  labeled_stride_ = 0;
  total_sent_ = 0;
  total_delivered_ = 0;
  total_bytes_ = 0;
  total_injected_ = 0;
  injected_bytes_ = 0;
  total_rejected_ = 0;
  rejected_bytes_ = 0;
}

std::uint64_t Metrics::sent(std::string_view name) const {
  auto it = label_ids_.find(name);
  if (it == label_ids_.end() || it->second >= by_label_.size()) return 0;
  return by_label_[it->second].count;
}

std::uint64_t Metrics::sent_bytes(std::string_view name) const {
  auto it = label_ids_.find(name);
  if (it == label_ids_.end() || it->second >= by_label_.size()) return 0;
  return by_label_[it->second].bytes;
}

std::uint64_t Metrics::received_by(NodeId id) const {
  const std::size_t index = node_index(id);
  return index < received_.size() ? received_[index] : 0;
}

std::uint64_t Metrics::sent_by(NodeId id) const {
  const std::size_t index = node_index(id);
  return index < sent_to_.size() ? sent_to_[index] : 0;
}

const std::uint64_t* Metrics::find_received_cell(NodeId id,
                                                 std::string_view name) const {
  const std::size_t index = node_index(id);
  if (index >= received_.size()) return nullptr;
  auto it = label_ids_.find(name);
  if (it == label_ids_.end() || it->second >= labeled_stride_) return nullptr;
  return &received_labeled_[index * labeled_stride_ + it->second];
}

std::uint64_t Metrics::received_by(NodeId id, std::string_view name) const {
  const std::uint64_t* cell = find_received_cell(id, name);
  return cell != nullptr ? *cell : 0;
}

const std::vector<std::pair<std::string, MessageCounter>>& Metrics::by_label()
    const {
  if (view_sent_ == total_sent_) return by_label_view_;
  by_label_view_.clear();
  by_label_view_.reserve(by_label_.size());
  for (std::uint32_t id = 0; id < by_label_.size(); ++id) {
    const MessageCounter& counter = by_label_[id];
    if (counter.count == 0 && counter.bytes == 0) continue;
    by_label_view_.emplace_back(label_names_[id], counter);
  }
  std::sort(by_label_view_.begin(), by_label_view_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  view_sent_ = total_sent_;
  return by_label_view_;
}

}  // namespace ssps::sim
