#include "sim/metrics.hpp"

namespace ssps::sim {

void Metrics::on_send(std::string_view name, std::size_t bytes, NodeId to) {
  (void)to;
  auto& counter = by_label_[std::string(name)];
  counter.count += 1;
  counter.bytes += bytes;
  total_sent_ += 1;
  total_bytes_ += bytes;
}

void Metrics::on_deliver(std::string_view name, NodeId at) {
  received_[at] += 1;
  received_labeled_[at][std::string(name)] += 1;
  total_delivered_ += 1;
}

void Metrics::on_inject(std::size_t bytes) {
  total_injected_ += 1;
  injected_bytes_ += bytes;
}

void Metrics::reset() {
  by_label_.clear();
  received_.clear();
  received_labeled_.clear();
  total_sent_ = 0;
  total_delivered_ = 0;
  total_bytes_ = 0;
  total_injected_ = 0;
  injected_bytes_ = 0;
}

std::uint64_t Metrics::sent(std::string_view name) const {
  auto it = by_label_.find(std::string(name));
  return it == by_label_.end() ? 0 : it->second.count;
}

std::uint64_t Metrics::sent_bytes(std::string_view name) const {
  auto it = by_label_.find(std::string(name));
  return it == by_label_.end() ? 0 : it->second.bytes;
}

std::uint64_t Metrics::received_by(NodeId id) const {
  auto it = received_.find(id);
  return it == received_.end() ? 0 : it->second;
}

std::uint64_t Metrics::received_by(NodeId id, std::string_view name) const {
  auto it = received_labeled_.find(id);
  if (it == received_labeled_.end()) return 0;
  auto jt = it->second.find(std::string(name));
  return jt == it->second.end() ? 0 : jt->second;
}

}  // namespace ssps::sim
