#include "sim/network.hpp"

#include <algorithm>
#include <deque>

namespace ssps::sim {

Network::Network(std::uint64_t seed) : rng_(seed) {}

Network::~Network() = default;

NodeId Network::register_node(std::unique_ptr<Node> node) {
  SSPS_ASSERT(node != nullptr);
  const NodeId id{next_id_++};
  node->id_ = id;
  node->net_ = this;
  node->rng_ = rng_.split();
  Slot slot;
  slot.node = std::move(node);
  slot.last_timeout = step_;
  auto [it, inserted] = nodes_.emplace(id, std::move(slot));
  SSPS_ASSERT(inserted);
  it->second.node->on_register();
  return id;
}

void Network::crash(NodeId id) {
  auto it = nodes_.find(id);
  SSPS_ASSERT_MSG(it != nodes_.end(), "crash: node unknown or already crashed");
  pending_total_ -= it->second.channel.size();
  nodes_.erase(it);
  crashed_.emplace(id, round_);
}

bool Network::alive(NodeId id) const { return nodes_.contains(id); }

std::optional<Round> Network::crash_round(NodeId id) const {
  auto it = crashed_.find(id);
  if (it == crashed_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Network::alive_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, slot] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Network::send(NodeId to, std::unique_ptr<Message> msg) {
  SSPS_ASSERT(msg != nullptr);
  metrics_.on_send(msg->name(), msg->wire_size(), to);
  auto it = nodes_.find(to);
  if (it == nodes_.end()) {
    // Target crashed or never existed: the message invokes no action.
    ++swallowed_to_dead_;
    return;
  }
  it->second.channel.push_back(Envelope{std::move(msg), step_});
  ++pending_total_;
}

void Network::inject(NodeId to, std::unique_ptr<Message> msg) {
  SSPS_ASSERT(msg != nullptr);
  auto it = nodes_.find(to);
  SSPS_ASSERT_MSG(it != nodes_.end(), "inject: unknown node");
  metrics_.on_inject(msg->wire_size());
  it->second.channel.push_back(Envelope{std::move(msg), step_});
  ++pending_total_;
}

std::size_t Network::pending_for(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.channel.size();
}

void Network::deliver_one(Slot& slot, std::size_t index) {
  SSPS_ASSERT(index < slot.channel.size());
  std::unique_ptr<Message> msg = std::move(slot.channel[index].msg);
  // Non-FIFO channel: order does not matter, so swap-remove.
  slot.channel[index] = std::move(slot.channel.back());
  slot.channel.pop_back();
  --pending_total_;
  metrics_.on_deliver(msg->name(), slot.node->id());
  slot.node->handle(std::move(msg));
}

void Network::fire_timeout(Slot& slot) {
  slot.last_timeout = step_;
  slot.node->timeout();
}

std::size_t Network::run_round() {
  ++step_;
  // Snapshot the messages present at round start; deliveries may enqueue
  // new messages, which belong to the next round.
  struct Pending {
    NodeId to;
    std::unique_ptr<Message> msg;
  };
  std::vector<Pending> batch;
  batch.reserve(pending_total_);
  for (auto& [id, slot] : nodes_) {
    for (auto& env : slot.channel) batch.push_back(Pending{id, std::move(env.msg)});
    pending_total_ -= slot.channel.size();
    slot.channel.clear();
  }
  rng_.shuffle(batch);
  std::size_t delivered = 0;
  for (auto& p : batch) {
    auto it = nodes_.find(p.to);
    if (it == nodes_.end()) continue;  // crashed mid-round
    metrics_.on_deliver(p.msg->name(), p.to);
    it->second.node->handle(std::move(p.msg));
    ++delivered;
  }

  std::vector<NodeId> order = alive_ids();
  rng_.shuffle(order);
  for (NodeId id : order) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    fire_timeout(it->second);
  }
  ++round_;
  return delivered;
}

void Network::run_rounds(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) run_round();
}

std::optional<std::size_t> Network::run_until(const std::function<bool()>& pred,
                                              std::size_t max_rounds) {
  for (std::size_t i = 0; i < max_rounds; ++i) {
    if (pred()) return i;
    run_round();
  }
  return pred() ? std::optional<std::size_t>(max_rounds) : std::nullopt;
}

void Network::step() {
  ++step_;

  // Fairness enforcement must serve by AGE, not by hash-map iteration
  // order: under overload (more overdue work than one action per step) a
  // first-found policy would starve whatever sorts last — violating the
  // model's fair receipt / weakly fair execution. Oldest-first guarantees
  // every message and every Timeout is served within a bounded lag.
  Slot* oldest_msg_slot = nullptr;
  std::size_t oldest_msg_index = 0;
  Step oldest_msg_age = 0;
  Slot* staleest_timeout_slot = nullptr;
  Step staleest_timeout_age = 0;
  for (auto& [id, slot] : nodes_) {
    for (std::size_t i = 0; i < slot.channel.size(); ++i) {
      const Step age = step_ - slot.channel[i].sent_at;
      if (age > oldest_msg_age) {
        oldest_msg_age = age;
        oldest_msg_slot = &slot;
        oldest_msg_index = i;
      }
    }
    const Step idle = step_ - slot.last_timeout;
    if (idle > staleest_timeout_age) {
      staleest_timeout_age = idle;
      staleest_timeout_slot = &slot;
    }
  }
  if (oldest_msg_slot != nullptr && oldest_msg_age > async_cfg_.max_message_age &&
      oldest_msg_age >= staleest_timeout_age) {
    deliver_one(*oldest_msg_slot, oldest_msg_index);
    return;
  }
  if (staleest_timeout_slot != nullptr &&
      staleest_timeout_age > async_cfg_.max_timeout_gap) {
    fire_timeout(*staleest_timeout_slot);
    return;
  }
  if (oldest_msg_slot != nullptr && oldest_msg_age > async_cfg_.max_message_age) {
    deliver_one(*oldest_msg_slot, oldest_msg_index);
    return;
  }

  const bool prefer_timeout =
      pending_total_ == 0 || rng_.below(256) < async_cfg_.timeout_bias;
  if (prefer_timeout && !nodes_.empty()) {
    std::vector<NodeId> ids = alive_ids();
    fire_timeout(nodes_.at(ids[rng_.pick_index(ids)]));
    return;
  }
  if (pending_total_ == 0) return;

  // Pick a uniformly random pending message across all channels.
  std::uint64_t target = rng_.below(pending_total_);
  for (auto& [id, slot] : nodes_) {
    if (target < slot.channel.size()) {
      deliver_one(slot, static_cast<std::size_t>(target));
      return;
    }
    target -= slot.channel.size();
  }
  SSPS_ASSERT_MSG(false, "pending_total_ out of sync with channels");
}

void Network::run_steps(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) step();
}

bool Network::weakly_connected(NodeId anchor) const {
  if (nodes_.empty()) return true;
  // Build the undirected adjacency implied by explicit + implicit edges.
  std::unordered_map<NodeId, std::vector<NodeId>> adj;
  std::vector<NodeId> refs;
  for (const auto& [id, slot] : nodes_) {
    refs.clear();
    slot.node->collect_refs(refs);
    for (const auto& env : slot.channel) env.msg->collect_refs(refs);
    if (anchor && id != anchor) refs.push_back(anchor);
    for (NodeId r : refs) {
      if (!r || r == id || !nodes_.contains(r)) continue;
      adj[id].push_back(r);
      adj[r].push_back(id);
    }
    adj.try_emplace(id);
  }
  // BFS from an arbitrary node.
  std::unordered_set<NodeId> seen;
  std::deque<NodeId> queue;
  queue.push_back(nodes_.begin()->first);
  seen.insert(queue.front());
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    auto it = adj.find(cur);
    if (it == adj.end()) continue;
    for (NodeId nxt : it->second) {
      if (seen.insert(nxt).second) queue.push_back(nxt);
    }
  }
  return seen.size() == nodes_.size();
}

}  // namespace ssps::sim
