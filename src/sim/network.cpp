#include "sim/network.hpp"

#include <algorithm>
#include <deque>

#include "common/decode.hpp"
#include "common/encode.hpp"
#include "sched/parallel.hpp"
#include "sched/serial.hpp"
#include "sched/timed.hpp"
#include "sim/trace.hpp"
#include "telemetry/round_probe.hpp"

namespace ssps::sim {

namespace detail {
thread_local SendContext* tls_send_ctx = nullptr;
}  // namespace detail

Network::Network(std::uint64_t seed) : seed_(seed), rng_(seed) {
  main_ctx_.lane = &pending_;
  main_ctx_.metrics = &metrics_;
  main_ctx_.pool = &pool_;
  main_ctx_.latency = &latency_;
  scheduler_ = std::make_unique<sched::SerialScheduler>();
}

Network::~Network() {
  // The in-flight buffers hold raw pool handles; reclaim them before the
  // pools die so their leak accounting stays exact. Envelopes may live in
  // scheduler-owned worker pools, so drain before the schedulers (and
  // with them their pools) are destroyed. (The grouped scatter array
  // never holds handles across run_round calls.)
  for (const Envelope& env : pending_) env.pool->destroy(env.msg, env.handle);
  for (const Envelope& env : round_batch_) env.pool->destroy(env.msg, env.handle);
  for (const TimedEvent& ev : timed_events_) {
    ev.env.pool->destroy(ev.env.msg, ev.env.handle);
  }
  pending_.clear();
  round_batch_.clear();
  timed_events_.clear();
  retired_schedulers_.clear();
  scheduler_.reset();
}

NodeId Network::register_node(std::unique_ptr<Node> node) {
  SSPS_ASSERT(node != nullptr);
  SSPS_ASSERT_MSG(!in_parallel_phase_,
                  "spawn during a parallel round is unsupported; mutate the "
                  "topology between rounds (or use the serial scheduler)");
  // Keep a stable pointer to the Node itself (heap-allocated) rather
  // than a Slot reference: on_register() may spawn further nodes, which
  // can reallocate the slot table.
  Node* raw = node.get();
  slots_.emplace_back();
  const NodeId id = id_at(slots_.size() - 1);
  raw->id_ = id;
  raw->net_ = this;
  raw->rng_ = rng_.split();
  Slot& slot = slots_.back();
  slot.node = std::move(node);
  slot.last_timeout = step_;
  ++alive_count_;
  alive_cache_valid_ = false;
  if (async_timeout_heap_valid_) {
    async_timeout_heap_.push_back(
        {step_, static_cast<std::uint32_t>(slots_.size() - 1)});
    std::push_heap(async_timeout_heap_.begin(), async_timeout_heap_.end(),
                   timeout_entry_later);
  }
  raw->on_register();
  return id;
}

void Network::drop_pending_for(NodeId to) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].to == to) {
      if (trace_ != nullptr) [[unlikely]] trace_forget(pending_[i].msg);
      pending_[i].pool->destroy(pending_[i].msg, pending_[i].handle);
    } else {
      pending_[kept++] = pending_[i];
    }
  }
  pending_.resize(kept);
  // The compaction moved surviving envelopes; the async oldest-first
  // index would resolve stale positions, so rebuild it lazily.
  async_msg_heap_.clear();
  async_synced_ = 0;
  if (!timed_events_.empty()) {
    std::size_t kept_ev = 0;
    for (std::size_t i = 0; i < timed_events_.size(); ++i) {
      const Envelope& env = timed_events_[i].env;
      if (env.to == to) {
        if (trace_ != nullptr) [[unlikely]] trace_forget(env.msg);
        env.pool->destroy(env.msg, env.handle);
      } else {
        timed_events_[kept_ev++] = timed_events_[i];
      }
    }
    timed_events_.resize(kept_ev);
    std::make_heap(timed_events_.begin(), timed_events_.end(),
                   timed_event_later);
  }
}

const Envelope* Network::find_pending(NodeId from, std::uint64_t seq) const {
  for (const Envelope& env : pending_) {
    if (env.seq == seq && env.from == from) return &env;
  }
  return nullptr;
}

bool Network::replace_pending_message(NodeId from, std::uint64_t seq,
                                      PooledMsg msg) {
  SSPS_ASSERT(msg);
  for (Envelope& env : pending_) {
    if (env.seq == seq && env.from == from) {
      if (trace_ != nullptr) [[unlikely]] trace_forget(env.msg);
      env.pool->destroy(env.msg, env.handle);
      env.msg = msg.get();
      env.pool = msg.pool();
      env.handle = msg.release();
      return true;
    }
  }
  return false;
}

void Network::crash(NodeId id) {
  Slot* slot = find_slot(id);
  SSPS_ASSERT_MSG(slot != nullptr && slot->node != nullptr,
                  "crash: node unknown or already crashed");
  SSPS_ASSERT_MSG(!in_parallel_phase_,
                  "crash during a parallel round is unsupported; crash "
                  "between rounds (or use the serial scheduler)");
  drop_pending_for(id);
  slot->node.reset();
  slot->crash_round = round_;
  crash_log_.emplace_back(round_, id);
  --alive_count_;
  alive_cache_valid_ = false;
}

std::optional<Round> Network::crash_round(NodeId id) const {
  const Slot* slot = find_slot(id);
  if (slot == nullptr || slot->node != nullptr) return std::nullopt;
  return slot->crash_round;
}

void Network::take_snapshots() {
  SSPS_ASSERT_MSG(!in_parallel_phase_, "take_snapshots: mid-round");
  last_snapshot_round_ = round_;
  common::Encoder enc;
  for (Slot& slot : slots_) {
    if (slot.node == nullptr) continue;
    enc.clear();
    if (slot.node->snapshot_state(enc)) slot.snapshot = enc.buffer();
  }
}

const std::vector<std::uint8_t>& Network::snapshot_of(NodeId id) const {
  const Slot* slot = find_slot(id);
  SSPS_ASSERT_MSG(slot != nullptr, "snapshot_of: unknown node");
  return slot->snapshot;
}

std::vector<std::uint8_t>& Network::mutable_snapshot(NodeId id) {
  Slot* slot = find_slot(id);
  SSPS_ASSERT_MSG(slot != nullptr, "mutable_snapshot: unknown node");
  return slot->snapshot;
}

bool Network::recover(NodeId id, std::unique_ptr<Node> node) {
  SSPS_ASSERT(node != nullptr);
  SSPS_ASSERT_MSG(!in_parallel_phase_,
                  "recover during a parallel round is unsupported");
  Slot* slot = find_slot(id);
  SSPS_ASSERT_MSG(slot != nullptr && slot->node == nullptr,
                  "recover: node unknown or still alive");
  // Mirror register_node's bookkeeping, but re-occupy the existing slot:
  // the recovered process keeps its NodeId, so every stale reference to
  // it in peers and in-flight messages points at the reborn node again.
  Node* raw = node.get();
  raw->id_ = id;
  raw->net_ = this;
  raw->rng_ = rng_.split();
  slot->node = std::move(node);
  slot->last_timeout = step_;
  ++alive_count_;
  alive_cache_valid_ = false;
  if (async_timeout_heap_valid_) {
    async_timeout_heap_.push_back(
        {step_, static_cast<std::uint32_t>(slot - slots_.data())});
    std::push_heap(async_timeout_heap_.begin(), async_timeout_heap_.end(),
                   timeout_entry_later);
  }
  raw->on_register();
  // Re-resolve: on_register may spawn, which can reallocate the slot table.
  slot = find_slot(id);
  if (slot->snapshot.empty()) return false;
  common::Decoder dec(slot->snapshot);
  return raw->restore_state(dec);
}

void Network::collect_alive(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].node != nullptr) out.push_back(id_at(i));
  }
}

std::vector<NodeId> Network::alive_ids() const {
  std::vector<NodeId> ids;
  collect_alive(ids);
  return ids;
}

void Network::inject(NodeId to, PooledMsg msg) {
  SSPS_ASSERT(msg);
  SSPS_ASSERT_MSG(alive(to), "inject: unknown node");
  SSPS_ASSERT_MSG(!in_parallel_phase_, "inject: forbidden during a parallel round");
  metrics_.on_inject(msg->wire_size());
  enqueue(main_ctx_, to, std::move(msg));
}

std::size_t Network::pending_for(NodeId id) const {
  std::size_t count = 0;
  for (const Envelope& env : pending_) {
    if (env.to == id) ++count;
  }
  for (const TimedEvent& ev : timed_events_) {
    if (ev.env.to == id) ++count;
  }
  return count;
}

void Network::deliver_envelope(const Envelope& env, Node& node) {
  metrics_.on_deliver(*env.msg, env.to);
  if (trace_ != nullptr) [[unlikely]] trace_deliver(env);
  node.handle(PooledMsg(env.pool, env.msg, env.handle));
}

void Network::deliver_at(std::size_t index) {
  SSPS_ASSERT(index < pending_.size());
  const Envelope env = pending_[index];
  // Non-FIFO channel: order does not matter, so swap-remove.
  pending_[index] = pending_.back();
  pending_.pop_back();
  if (index < pending_.size()) {
    // The back envelope moved into `index`; its old heap entry no longer
    // resolves, so index the new position afresh (the stale entry fails
    // validation and is discarded on pop).
    async_msg_heap_.push_back({pending_[index].sent_at, pending_[index].seq,
                               static_cast<std::uint32_t>(index)});
    std::push_heap(async_msg_heap_.begin(), async_msg_heap_.end(),
                   msg_entry_later);
  }
  if (async_synced_ > pending_.size()) async_synced_ = pending_.size();
  Slot* slot = find_slot(env.to);
  SSPS_ASSERT(slot != nullptr && slot->node != nullptr);
  deliver_envelope(env, *slot->node);
}

void Network::fire_timeout(Slot& slot) {
  slot.last_timeout = step_;
  if (async_timeout_heap_valid_) {
    async_timeout_heap_.push_back(
        {step_, static_cast<std::uint32_t>(&slot - slots_.data())});
    std::push_heap(async_timeout_heap_.begin(), async_timeout_heap_.end(),
                   timeout_entry_later);
  }
  slot.node->timeout();
}

std::size_t Network::round_begin() {
  ++step_;
  // The messages pending at round start become this round's batch;
  // deliveries enqueue new messages into the (now empty) in-flight
  // buffer, which belongs to the next round. Batch order is canonical
  // (send order — under the parallel scheduler, the round-barrier merge
  // reproduces it exactly), so the shuffled delivery order depends only
  // on the seed, never on the worker count.
  round_batch_.clear();
  std::swap(round_batch_, pending_);
  // The swap emptied pending_; any async oldest-first entries are stale.
  async_msg_heap_.clear();
  async_synced_ = 0;
  return group_round_batch();
}

std::size_t Network::group_round_batch() {
  rng_.shuffle(round_batch_);
  // Group the shuffled batch by target (stable counting sort), so each
  // node's state is pulled into cache once per round, not once per
  // message. Observably equivalent to delivering in fully shuffled
  // order: nodes interact only through messages that arrive next round,
  // so cross-node interleaving within a round cannot affect any node's
  // trajectory — while each channel still sees a uniformly random
  // permutation of its own messages (inherited from the shuffle). The
  // same argument is what lets the parallel scheduler deliver disjoint
  // target ranges concurrently (src/sched/parallel.hpp).
  const std::size_t batch = round_batch_.size();
  if (grouped_cap_ < batch) {
    grouped_cap_ = std::max(batch, grouped_cap_ * 2);
    grouped_ = std::make_unique<Envelope[]>(grouped_cap_);
  }
  scatter_offsets_.assign(slots_.size() + 1, 0);
  for (const Envelope& env : round_batch_) {
    ++scatter_offsets_[static_cast<std::size_t>(env.to.value)];
  }
  std::uint32_t running = 0;
  for (std::size_t i = 1; i < scatter_offsets_.size(); ++i) {
    const std::uint32_t count = scatter_offsets_[i];
    scatter_offsets_[i] = running;
    running += count;
  }
  for (const Envelope& env : round_batch_) {
    grouped_[scatter_offsets_[static_cast<std::size_t>(env.to.value)]++] = env;
  }
  // scatter_offsets_[v] is now the END of target id v's group (groups lie
  // in id order), which is exactly the shard-boundary table the parallel
  // scheduler slices grouped_ with.
  round_batch_.clear();
  return batch;
}

std::size_t Network::deliver_grouped_range(std::size_t begin, std::size_t end,
                                           SendContext& ctx) {
  std::size_t delivered = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Envelope& env = grouped_[i];
    // Re-resolve per message: a handler may crash its own node or spawn
    // (which can reallocate the slot table) at any point mid-round under
    // the serial scheduler. (The parallel scheduler forbids both, so its
    // workers only ever read the slot table.)
    Slot* slot = find_slot(env.to);
    if (slot->node == nullptr) {
      // Crashed mid-round: reclaim, invoke nothing.
      if (trace_ != nullptr) [[unlikely]] trace_forget(env.msg);
      env.pool->destroy(env.msg, env.handle);
      continue;
    }
    ctx.metrics->on_deliver(*env.msg, env.to);
    if (trace_ != nullptr) [[unlikely]] trace_deliver(env);
    else if (timed_enabled_ || attribute_sends_) acting_node_ = env.to;
    slot->node->handle(PooledMsg(env.pool, env.msg, env.handle));
    ++delivered;
  }
  // Timed mode attributes each handler's sends to the handling node
  // (trace_deliver does the same when tracing, set_attribute_sends asks
  // for the same in plain round mode); the guard keeps this a no-write
  // under the parallel scheduler, where all three are off.
  if (timed_enabled_ || attribute_sends_) acting_node_ = NodeId::null();
  return delivered;
}

void Network::timeout_sweep() {
  // Fire Timeouts in id order (a sequential sweep over the dense table).
  // Equivalent to a randomized order: a Timeout reads and writes only its
  // own node's state and draws from its own per-node stream, and
  // everything it sends is delivered next round, so cross-node firing
  // order within a round is unobservable. Index-based iteration over a
  // size snapshot: a timeout() may spawn (reallocating the table), and
  // nodes born mid-round first fire next round — as before.
  // A full sweep rewrites every alive last_timeout: cheaper to let the
  // async index rebuild once on the next step() than to push n updates.
  async_timeout_heap_valid_ = false;
  const bool attribute = trace_ != nullptr || timed_enabled_ || attribute_sends_;
  const std::size_t population = slots_.size();
  std::size_t timeouts = 0;
  for (std::size_t i = 0; i < population; ++i) {
    if (slots_[i].node != nullptr) {
      if (attribute) [[unlikely]] acting_node_ = id_at(i);
      fire_timeout(slots_[i]);
      ++timeouts;
    }
  }
  if (attribute) acting_node_ = NodeId::null();
  last_round_timeouts_ = timeouts;
}

std::size_t Network::run_unit() {
  const std::size_t delivered = scheduler_->advance(*this);
  // Periodic crash-recovery checkpoints: capture at round boundaries on
  // the configured cadence. Pure state reads (no rng draws), so enabling
  // snapshots never perturbs a run's delivery trace. The last-round guard
  // keeps step-grained schedulers (round clock frozen) from re-capturing
  // every unit.
  if (snapshot_every_ > 0 && round_ != last_snapshot_round_ &&
      round_ % snapshot_every_ == 0) {
    take_snapshots();
  }
  scheduler_->sample(*this, delivered);
  return delivered;
}

std::uint64_t Network::unit_now() const {
  return scheduler_->unit() == sched::Scheduler::Unit::kStep ? step_ : round_;
}

void Network::sample_round_probe(std::size_t delivered) {
  telemetry::RoundSample sample;
  sample.round = round_;
  sample.delivered = delivered;
  sample.timeouts = last_round_timeouts_;
  sample.in_flight = pending_messages();
  sample.alive = alive_count_;
  sample.pool_reserved_bytes = pool_reserved_bytes();
  round_probe_->push(sample);
}

void Network::run_units(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) run_unit();
}

std::optional<std::size_t> Network::run_until(const std::function<bool()>& pred,
                                              std::size_t max_units) {
  if (scheduler_->unit() == sched::Scheduler::Unit::kStep) {
    // Step-grained schedulers have no quiescent units to skip (a step is
    // one action, or nothing only when the whole system is empty), so the
    // loop simply batches settle_stride units between probes. The stride
    // is pinned before the first unit: probe points must not drift with
    // the alive count as nodes crash or spawn mid-wait.
    const Step start = step_;
    const std::size_t stride = scheduler_->settle_stride(*this);
    for (std::size_t i = 0; i < max_units; ++i) {
      if (pred()) return step_ - start;
      run_units(stride);
    }
    if (pred()) return step_ - start;
    return std::nullopt;
  }
  // Quiescence short-circuit: a round that delivered zero messages and
  // fired zero timeouts executed no action, so no node variable and no
  // channel changed — a predicate over the simulated state that was false
  // before such a round is still false after it (the same reasoning as the
  // delivery-grouping note in round_begin: state only moves when an action
  // runs). Skipping the re-evaluation is therefore observably equivalent;
  // it matters for waits over empty or fully-crashed populations, where
  // every round is quiescent and an O(n)-ish probe per round would be pure
  // overhead.
  bool known_false = false;
  for (std::size_t i = 0; i < max_units; ++i) {
    if (!known_false) {
      if (pred()) return i;
      known_false = true;
    }
    const std::size_t delivered = run_unit();
    if (delivered > 0 || last_round_timeouts_ > 0) known_false = false;
  }
  if (known_false) return std::nullopt;
  return pred() ? std::optional<std::size_t>(max_units) : std::nullopt;
}

void Network::set_scheduler(std::unique_ptr<sched::Scheduler> scheduler) {
  SSPS_ASSERT(scheduler != nullptr);
  SSPS_ASSERT_MSG(!in_parallel_phase_, "set_scheduler: mid-round");
  SSPS_ASSERT_MSG(trace_ == nullptr || scheduler->threads() == 1,
                  "set_scheduler: detach the trace before going parallel");
  SSPS_ASSERT_MSG(!timed_enabled_ || scheduler->threads() == 1,
                  "set_scheduler: timed mode is single-threaded");
  if (scheduler_ != nullptr) {
    // In-flight envelopes may have been allocated from the old
    // scheduler's worker pools; retire it (alive until the Network dies)
    // instead of destroying those slabs under the messages. It will
    // never run again: metrics shards fold in now, worker threads join.
    scheduler_->flush_metrics(*this);
    scheduler_->retire();
    retired_schedulers_.push_back(std::move(scheduler_));
  }
  scheduler_ = std::move(scheduler);
}

void Network::set_threads(unsigned threads) {
  SSPS_ASSERT_MSG(threads >= 1, "set_threads: need at least one worker");
  if (threads == scheduler_threads()) return;
  if (threads == 1) {
    set_scheduler(std::make_unique<sched::SerialScheduler>());
  } else {
    set_scheduler(std::make_unique<sched::ParallelScheduler>(threads));
  }
}

unsigned Network::scheduler_threads() const { return scheduler_->threads(); }

Metrics& Network::metrics() {
  // Fold any per-worker shards in before handing the counters out; the
  // hot send/deliver paths only ever touch their own shard, so every
  // external reader (and reset()) goes through here. Retired schedulers
  // flushed at retirement and never run again.
  SSPS_ASSERT_MSG(!in_parallel_phase_, "metrics: unavailable mid-phase");
  scheduler_->flush_metrics(*this);
  return metrics_;
}

const Metrics& Network::metrics() const {
  return const_cast<Network*>(this)->metrics();
}

telemetry::LatencyTracker& Network::latency() {
  // Same fold-on-access discipline as metrics(): flush_metrics folds the
  // per-worker latency shards alongside the metrics shards.
  SSPS_ASSERT_MSG(!in_parallel_phase_, "latency: unavailable mid-phase");
  scheduler_->flush_metrics(*this);
  return latency_;
}

const telemetry::LatencyTracker& Network::latency() const {
  return const_cast<Network*>(this)->latency();
}

void Network::attach_trace(Trace* trace) {
  SSPS_ASSERT_MSG(trace == nullptr || scheduler_threads() == 1,
                  "attach_trace: tracing requires the serial scheduler");
  trace_ = trace;
  if (trace == nullptr) {
    flow_ids_.clear();
    acting_node_ = NodeId::null();
  }
}

void Network::trace_send(NodeId to, const Message& msg, bool enqueued) {
  const std::uint64_t flow = ++next_flow_;
  // Swallowed sends get an event but no map entry: their pool slot is
  // recycled immediately, and a reused slot must not alias this flow.
  if (enqueued) flow_ids_[&msg] = flow;
  trace_->record(round_, acting_node_, to, msg.name(), TraceEventKind::kSend, flow);
}

void Network::trace_deliver(const Envelope& env) {
  acting_node_ = env.to;
  std::uint64_t flow = 0;
  auto it = flow_ids_.find(env.msg);
  if (it != flow_ids_.end()) {
    flow = it->second;
    flow_ids_.erase(it);
  }
  trace_->record(round_, NodeId::null(), env.to, env.msg->name(),
                 TraceEventKind::kDeliver, flow);
}

void Network::trace_forget(const Message* msg) { flow_ids_.erase(msg); }

std::size_t Network::pool_reserved_bytes() const {
  return pool_.reserved_bytes() + scheduler_->reserved_bytes();
}

// ---- Timed-mode engine --------------------------------------------------

void Network::enable_timed(const TimedConfig& cfg) {
  SSPS_ASSERT_MSG(!in_parallel_phase_, "enable_timed: mid-round");
  SSPS_ASSERT_MSG(pending_.empty() && timed_events_.empty(),
                  "enable_timed: switch modes before the first send");
  timed_cfg_ = cfg;
  timed_enabled_ = true;
  timed_now_ = round_ * kTicksPerInterval;
  // The scheduler stream (rng_) must keep drawing exactly the round
  // scheduler's sequence for the constant-latency equivalence proof, so
  // link faults and latency sampling draw from a decorrelated stream.
  link_rng_.reseed(seed_ * 0x9e3779b97f4a7c15ULL + 0x1d8e4e27c47d124fULL);
  set_scheduler(std::make_unique<sched::TimedScheduler>());
}

void Network::add_partition(const PartitionWindow& window) {
  SSPS_ASSERT_MSG(timed_enabled_, "add_partition: enable_timed first");
  timed_cfg_.partitions.push_back(window);
}

std::size_t Network::timed_interval() {
  SSPS_ASSERT(timed_enabled_);
  ++step_;
  // Harness sends since the last interval (publishes, injections) are
  // deemed sent at interval start: with the default constant one-interval
  // latency they land exactly at this interval's deadline — delivered
  // this round, as the round scheduler would.
  schedule_sends(timed_now_);
  const Step deadline = timed_now_ + kTicksPerInterval;
  // Pop everything due by the deadline, in (time, send-order) order; that
  // canonical sequence is the shuffle input, exactly where the round
  // scheduler feeds its send-ordered batch in.
  round_batch_.clear();
  while (!timed_events_.empty() && timed_events_.front().at <= deadline) {
    std::pop_heap(timed_events_.begin(), timed_events_.end(),
                  timed_event_later);
    round_batch_.push_back(timed_events_.back().env);
    timed_events_.pop_back();
  }
  const std::size_t batch = group_round_batch();
  const std::size_t delivered = deliver_grouped_range(0, batch, main_ctx_);
  timed_now_ = deadline;
  // Handler sends happened during this interval; stamp them at its end
  // (constant-1 latency then puts them at the next deadline in send
  // order — the next round's batch). Same for the timeout sweep's sends.
  schedule_sends(timed_now_);
  timeout_sweep();
  schedule_sends(timed_now_);
  round_end();
  return delivered;
}

void Network::schedule_sends(Step send_tick) {
  for (const Envelope& env : pending_) route_envelope(env, send_tick);
  pending_.clear();
  async_msg_heap_.clear();
  async_synced_ = 0;
}

void Network::route_envelope(const Envelope& env, Step send_tick) {
  if (!env.from) {
    // Harness-originated (publish/inject/control plane): models the
    // experiment driver, not a network link — rides the clock at the
    // constant one-interval arrival but is exempt from link faults, so a
    // workload can never be silently unsatisfiable.
    push_timed_event(send_tick + kTicksPerInterval, env);
    return;
  }
  const LinkProfile& profile = timed_cfg_.profile_between(env.from, env.to);
  if (timed_cfg_.partitioned(env.from, env.to, send_tick) ||
      (profile.loss > 0.0 && link_rng_.uniform01() < profile.loss)) {
    drop_envelope(env);
    return;
  }
  Envelope routed = env;
  if (corrupter_ != nullptr && profile.corrupt > 0.0 &&
      link_rng_.uniform01() < profile.corrupt) {
    // Wire damage: serialize, mangle, re-decode (wire::CodecCorrupter).
    // Detected damage rejects the bytes — counted, never delivered;
    // undetected damage yields a valid-but-different message that rides
    // the link from here exactly like the original would have.
    ++timed_corrupted_;
    PooledMsg replacement = corrupter_->corrupt(*routed.msg, pool_, link_rng_);
    const std::size_t bytes = routed.msg->wire_size();
    if (trace_ != nullptr) [[unlikely]] trace_forget(routed.msg);
    routed.pool->destroy(routed.msg, routed.handle);
    if (!replacement) {
      ++timed_rejected_;
      metrics_.on_reject(bytes);
      return;
    }
    routed.msg = replacement.get();
    routed.pool = replacement.pool();
    routed.handle = replacement.release();
  }
  Step delay = profile.latency.sample_ticks(link_rng_);
  if (profile.reorder > 0.0 && link_rng_.uniform01() < profile.reorder) {
    // Reordering = extra jitter that pushes this message behind sends
    // made up to a full interval later.
    delay += 1 + link_rng_.below(kTicksPerInterval);
  }
  if (profile.duplicate > 0.0 && link_rng_.uniform01() < profile.duplicate) {
    PooledMsg copy = routed.msg->clone_into(pool_);
    if (copy) {  // null = not clonable; skip the duplicate
      Envelope dup;
      dup.to = routed.to;
      dup.from = routed.from;
      dup.sent_at = routed.sent_at;
      dup.seq = next_send_seq_++;
      dup.msg = copy.get();
      dup.pool = copy.pool();
      const Step dup_delay = profile.latency.sample_ticks(link_rng_);
      dup.handle = copy.release();
      push_timed_event(send_tick + dup_delay, dup);
      ++timed_duplicated_;
    }
  }
  push_timed_event(send_tick + delay, routed);
}

void Network::push_timed_event(Step at, const Envelope& env) {
  timed_events_.push_back(TimedEvent{at, env.seq, env});
  std::push_heap(timed_events_.begin(), timed_events_.end(),
                 timed_event_later);
}

void Network::drop_envelope(const Envelope& env) {
  if (trace_ != nullptr) [[unlikely]] trace_forget(env.msg);
  env.pool->destroy(env.msg, env.handle);
  ++timed_dropped_;
}

void Network::sync_msg_heap() {
  for (std::size_t i = async_synced_; i < pending_.size(); ++i) {
    async_msg_heap_.push_back(
        {pending_[i].sent_at, pending_[i].seq, static_cast<std::uint32_t>(i)});
    std::push_heap(async_msg_heap_.begin(), async_msg_heap_.end(),
                   msg_entry_later);
  }
  async_synced_ = pending_.size();
}

std::pair<Step, std::size_t> Network::oldest_pending() {
  while (!async_msg_heap_.empty()) {
    const MsgHeapEntry& top = async_msg_heap_.front();
    if (top.index < pending_.size() && pending_[top.index].seq == top.seq &&
        pending_[top.index].sent_at == top.sent_at) {
      return {step_ - top.sent_at, top.index};
    }
    // Stale: the envelope was delivered, dropped or moved since this
    // entry was pushed (seq values are never reused, so a match is
    // conclusive). Discard and look deeper.
    std::pop_heap(async_msg_heap_.begin(), async_msg_heap_.end(),
                  msg_entry_later);
    async_msg_heap_.pop_back();
  }
  return {0, 0};
}

void Network::rebuild_timeout_heap() {
  async_timeout_heap_.clear();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].node != nullptr) {
      async_timeout_heap_.push_back(
          {slots_[i].last_timeout, static_cast<std::uint32_t>(i)});
    }
  }
  std::make_heap(async_timeout_heap_.begin(), async_timeout_heap_.end(),
                 timeout_entry_later);
  async_timeout_heap_valid_ = true;
}

std::pair<Step, Network::Slot*> Network::stalest_timeout() {
  if (!async_timeout_heap_valid_) rebuild_timeout_heap();
  while (!async_timeout_heap_.empty()) {
    const TimeoutHeapEntry& top = async_timeout_heap_.front();
    Slot& slot = slots_[top.slot_index];
    if (slot.node != nullptr && slot.last_timeout == top.last_timeout) {
      const Step idle = step_ - top.last_timeout;
      if (idle == 0) break;  // every alive node fired this very step
      return {idle, &slot};
    }
    // Crashed since, or re-fired (a fresher entry exists): discard.
    std::pop_heap(async_timeout_heap_.begin(), async_timeout_heap_.end(),
                  timeout_entry_later);
    async_timeout_heap_.pop_back();
  }
  return {0, nullptr};
}

std::size_t Network::step() {
  ++step_;

  // Fairness enforcement must serve by AGE, not by discovery order: under
  // overload (more overdue work than one action per step) a first-found
  // policy would starve whatever sorts last — violating the model's fair
  // receipt / weakly fair execution. Oldest-first guarantees every message
  // and every Timeout is served within a bounded lag. Ties break towards
  // the earliest send (lowest seq) / lowest slot index, which is
  // canonical. Both "oldest" queries are lazy min-heaps — O(log n)
  // amortized per step where the old full scans made k-step runs
  // quadratic.
  sync_msg_heap();
  const auto [oldest_msg_age, oldest_msg_index] = oldest_pending();
  const auto [stalest_timeout_age, stalest_timeout_slot] = stalest_timeout();
  if (oldest_msg_age > async_cfg_.max_message_age &&
      oldest_msg_age >= stalest_timeout_age) {
    deliver_at(oldest_msg_index);
    ++window_delivered_;
    return 1;
  }
  if (stalest_timeout_slot != nullptr &&
      stalest_timeout_age > async_cfg_.max_timeout_gap) {
    fire_timeout(*stalest_timeout_slot);
    ++window_timeouts_;
    return 0;
  }
  if (oldest_msg_age > async_cfg_.max_message_age) {
    deliver_at(oldest_msg_index);
    ++window_delivered_;
    return 1;
  }

  const bool prefer_timeout =
      pending_.empty() || rng_.below(256) < async_cfg_.timeout_bias;
  if (prefer_timeout && alive_count_ > 0) {
    if (!alive_cache_valid_) {
      collect_alive(alive_cache_);
      alive_cache_valid_ = true;
    }
    fire_timeout(*find_slot(alive_cache_[rng_.pick_index(alive_cache_)]));
    ++window_timeouts_;
    return 0;
  }
  if (pending_.empty()) return 0;

  // Pick a uniformly random pending message.
  deliver_at(static_cast<std::size_t>(rng_.below(pending_.size())));
  ++window_delivered_;
  return 1;
}

void Network::run_steps(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    step();
    // The async analogue of the per-round probe sample: window counters
    // on the step clock (fixes the always-empty timeseries of step-driven
    // runs, which only ever sampled at round barriers).
    if (round_probe_ != nullptr && async_cfg_.probe_stride > 0 &&
        step_ % async_cfg_.probe_stride == 0) {
      sample_async_probe();
    }
  }
}

void Network::sample_async_probe() {
  telemetry::RoundSample sample;
  sample.round = step_;  // the step clock (ClockMode::kSteps)
  sample.delivered = window_delivered_;
  sample.timeouts = window_timeouts_;
  sample.in_flight = pending_messages();
  sample.alive = alive_count_;
  sample.pool_reserved_bytes = pool_reserved_bytes();
  round_probe_->push(sample);
  window_delivered_ = 0;
  window_timeouts_ = 0;
}

bool Network::weakly_connected(NodeId anchor) const {
  if (alive_count_ == 0) return true;
  // Build the undirected adjacency implied by explicit + implicit edges,
  // indexed densely by slot.
  std::vector<std::vector<std::uint32_t>> adj(slots_.size());
  auto add_refs = [&](NodeId id, const std::vector<NodeId>& refs) {
    const auto index = static_cast<std::uint32_t>(id.value - 1);
    for (NodeId r : refs) {
      if (!r || r == id || !alive(r)) continue;
      const auto r_index = static_cast<std::uint32_t>(r.value - 1);
      adj[index].push_back(r_index);
      adj[r_index].push_back(index);
    }
  };
  std::vector<NodeId> refs;
  std::size_t first_alive = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.node == nullptr) continue;
    if (first_alive == slots_.size()) first_alive = i;
    const NodeId id = id_at(i);
    refs.clear();
    slot.node->collect_refs(refs);
    if (anchor && id != anchor) refs.push_back(anchor);
    add_refs(id, refs);
  }
  for (const Envelope& env : pending_) {
    if (!alive(env.to)) continue;
    refs.clear();
    env.msg->collect_refs(refs);
    add_refs(env.to, refs);
  }
  for (const TimedEvent& ev : timed_events_) {
    if (!alive(ev.env.to)) continue;
    refs.clear();
    ev.env.msg->collect_refs(refs);
    add_refs(ev.env.to, refs);
  }
  // BFS from the first alive node.
  std::vector<bool> seen(slots_.size(), false);
  std::deque<std::uint32_t> queue;
  queue.push_back(static_cast<std::uint32_t>(first_alive));
  seen[first_alive] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::uint32_t cur = queue.front();
    queue.pop_front();
    for (std::uint32_t nxt : adj[cur]) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        ++reached;
        queue.push_back(nxt);
      }
    }
  }
  return reached == alive_count_;
}

}  // namespace ssps::sim
