#include "sim/network.hpp"

#include <algorithm>
#include <deque>

#include "sched/parallel.hpp"
#include "sched/serial.hpp"
#include "sim/trace.hpp"
#include "telemetry/round_probe.hpp"

namespace ssps::sim {

namespace detail {
thread_local SendContext* tls_send_ctx = nullptr;
}  // namespace detail

Network::Network(std::uint64_t seed) : rng_(seed) {
  main_ctx_.lane = &pending_;
  main_ctx_.metrics = &metrics_;
  main_ctx_.pool = &pool_;
  main_ctx_.latency = &latency_;
  scheduler_ = std::make_unique<sched::SerialScheduler>();
}

Network::~Network() {
  // The in-flight buffers hold raw pool handles; reclaim them before the
  // pools die so their leak accounting stays exact. Envelopes may live in
  // scheduler-owned worker pools, so drain before the schedulers (and
  // with them their pools) are destroyed. (The grouped scatter array
  // never holds handles across run_round calls.)
  for (const Envelope& env : pending_) env.pool->destroy(env.msg, env.handle);
  for (const Envelope& env : round_batch_) env.pool->destroy(env.msg, env.handle);
  pending_.clear();
  round_batch_.clear();
  retired_schedulers_.clear();
  scheduler_.reset();
}

NodeId Network::register_node(std::unique_ptr<Node> node) {
  SSPS_ASSERT(node != nullptr);
  SSPS_ASSERT_MSG(!in_parallel_phase_,
                  "spawn during a parallel round is unsupported; mutate the "
                  "topology between rounds (or use the serial scheduler)");
  // Keep a stable pointer to the Node itself (heap-allocated) rather
  // than a Slot reference: on_register() may spawn further nodes, which
  // can reallocate the slot table.
  Node* raw = node.get();
  slots_.emplace_back();
  const NodeId id = id_at(slots_.size() - 1);
  raw->id_ = id;
  raw->net_ = this;
  raw->rng_ = rng_.split();
  Slot& slot = slots_.back();
  slot.node = std::move(node);
  slot.last_timeout = step_;
  ++alive_count_;
  raw->on_register();
  return id;
}

void Network::drop_pending_for(NodeId to) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].to == to) {
      if (trace_ != nullptr) [[unlikely]] trace_forget(pending_[i].msg);
      pending_[i].pool->destroy(pending_[i].msg, pending_[i].handle);
    } else {
      pending_[kept++] = pending_[i];
    }
  }
  pending_.resize(kept);
}

void Network::crash(NodeId id) {
  Slot* slot = find_slot(id);
  SSPS_ASSERT_MSG(slot != nullptr && slot->node != nullptr,
                  "crash: node unknown or already crashed");
  SSPS_ASSERT_MSG(!in_parallel_phase_,
                  "crash during a parallel round is unsupported; crash "
                  "between rounds (or use the serial scheduler)");
  drop_pending_for(id);
  slot->node.reset();
  slot->crash_round = round_;
  crash_log_.emplace_back(round_, id);
  --alive_count_;
}

std::optional<Round> Network::crash_round(NodeId id) const {
  const Slot* slot = find_slot(id);
  if (slot == nullptr || slot->node != nullptr) return std::nullopt;
  return slot->crash_round;
}

void Network::collect_alive(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].node != nullptr) out.push_back(id_at(i));
  }
}

std::vector<NodeId> Network::alive_ids() const {
  std::vector<NodeId> ids;
  collect_alive(ids);
  return ids;
}

void Network::inject(NodeId to, PooledMsg msg) {
  SSPS_ASSERT(msg);
  SSPS_ASSERT_MSG(alive(to), "inject: unknown node");
  SSPS_ASSERT_MSG(!in_parallel_phase_, "inject: forbidden during a parallel round");
  metrics_.on_inject(msg->wire_size());
  enqueue(main_ctx_, to, std::move(msg));
}

std::size_t Network::pending_for(NodeId id) const {
  std::size_t count = 0;
  for (const Envelope& env : pending_) {
    if (env.to == id) ++count;
  }
  return count;
}

void Network::deliver_envelope(const Envelope& env, Node& node) {
  metrics_.on_deliver(*env.msg, env.to);
  if (trace_ != nullptr) [[unlikely]] trace_deliver(env);
  node.handle(PooledMsg(env.pool, env.msg, env.handle));
}

void Network::deliver_at(std::size_t index) {
  SSPS_ASSERT(index < pending_.size());
  const Envelope env = pending_[index];
  // Non-FIFO channel: order does not matter, so swap-remove.
  pending_[index] = pending_.back();
  pending_.pop_back();
  Slot* slot = find_slot(env.to);
  SSPS_ASSERT(slot != nullptr && slot->node != nullptr);
  deliver_envelope(env, *slot->node);
}

void Network::fire_timeout(Slot& slot) {
  slot.last_timeout = step_;
  slot.node->timeout();
}

std::size_t Network::round_begin() {
  ++step_;
  // The messages pending at round start become this round's batch;
  // deliveries enqueue new messages into the (now empty) in-flight
  // buffer, which belongs to the next round. Batch order is canonical
  // (send order — under the parallel scheduler, the round-barrier merge
  // reproduces it exactly), so the shuffled delivery order depends only
  // on the seed, never on the worker count.
  round_batch_.clear();
  std::swap(round_batch_, pending_);
  rng_.shuffle(round_batch_);
  // Group the shuffled batch by target (stable counting sort), so each
  // node's state is pulled into cache once per round, not once per
  // message. Observably equivalent to delivering in fully shuffled
  // order: nodes interact only through messages that arrive next round,
  // so cross-node interleaving within a round cannot affect any node's
  // trajectory — while each channel still sees a uniformly random
  // permutation of its own messages (inherited from the shuffle). The
  // same argument is what lets the parallel scheduler deliver disjoint
  // target ranges concurrently (src/sched/parallel.hpp).
  const std::size_t batch = round_batch_.size();
  if (grouped_cap_ < batch) {
    grouped_cap_ = std::max(batch, grouped_cap_ * 2);
    grouped_ = std::make_unique<Envelope[]>(grouped_cap_);
  }
  scatter_offsets_.assign(slots_.size() + 1, 0);
  for (const Envelope& env : round_batch_) {
    ++scatter_offsets_[static_cast<std::size_t>(env.to.value)];
  }
  std::uint32_t running = 0;
  for (std::size_t i = 1; i < scatter_offsets_.size(); ++i) {
    const std::uint32_t count = scatter_offsets_[i];
    scatter_offsets_[i] = running;
    running += count;
  }
  for (const Envelope& env : round_batch_) {
    grouped_[scatter_offsets_[static_cast<std::size_t>(env.to.value)]++] = env;
  }
  // scatter_offsets_[v] is now the END of target id v's group (groups lie
  // in id order), which is exactly the shard-boundary table the parallel
  // scheduler slices grouped_ with.
  round_batch_.clear();
  return batch;
}

std::size_t Network::deliver_grouped_range(std::size_t begin, std::size_t end,
                                           SendContext& ctx) {
  std::size_t delivered = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Envelope& env = grouped_[i];
    // Re-resolve per message: a handler may crash its own node or spawn
    // (which can reallocate the slot table) at any point mid-round under
    // the serial scheduler. (The parallel scheduler forbids both, so its
    // workers only ever read the slot table.)
    Slot* slot = find_slot(env.to);
    if (slot->node == nullptr) {
      // Crashed mid-round: reclaim, invoke nothing.
      if (trace_ != nullptr) [[unlikely]] trace_forget(env.msg);
      env.pool->destroy(env.msg, env.handle);
      continue;
    }
    ctx.metrics->on_deliver(*env.msg, env.to);
    if (trace_ != nullptr) [[unlikely]] trace_deliver(env);
    slot->node->handle(PooledMsg(env.pool, env.msg, env.handle));
    ++delivered;
  }
  return delivered;
}

void Network::timeout_sweep() {
  // Fire Timeouts in id order (a sequential sweep over the dense table).
  // Equivalent to a randomized order: a Timeout reads and writes only its
  // own node's state and draws from its own per-node stream, and
  // everything it sends is delivered next round, so cross-node firing
  // order within a round is unobservable. Index-based iteration over a
  // size snapshot: a timeout() may spawn (reallocating the table), and
  // nodes born mid-round first fire next round — as before.
  const std::size_t population = slots_.size();
  std::size_t timeouts = 0;
  for (std::size_t i = 0; i < population; ++i) {
    if (slots_[i].node != nullptr) {
      if (trace_ != nullptr) [[unlikely]] acting_node_ = id_at(i);
      fire_timeout(slots_[i]);
      ++timeouts;
    }
  }
  if (trace_ != nullptr) acting_node_ = NodeId::null();
  last_round_timeouts_ = timeouts;
}

std::size_t Network::run_round() {
  const std::size_t delivered = scheduler_->run_round(*this);
  // Sample after the round barrier: the parallel phase is over, so
  // pending_ and the alive count are stable and every serialized field is
  // a pure function of the simulated state (worker-count-invariant).
  if (round_probe_ != nullptr) sample_round_probe(delivered);
  return delivered;
}

void Network::sample_round_probe(std::size_t delivered) {
  telemetry::RoundSample sample;
  sample.round = round_;
  sample.delivered = delivered;
  sample.timeouts = last_round_timeouts_;
  sample.in_flight = pending_.size();
  sample.alive = alive_count_;
  sample.pool_reserved_bytes = pool_reserved_bytes();
  round_probe_->push(sample);
}

void Network::run_rounds(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) run_round();
}

std::optional<std::size_t> Network::run_until(const std::function<bool()>& pred,
                                              std::size_t max_rounds) {
  // Quiescence short-circuit: a round that delivered zero messages and
  // fired zero timeouts executed no action, so no node variable and no
  // channel changed — a predicate over the simulated state that was false
  // before such a round is still false after it (the same reasoning as the
  // delivery-grouping note in round_begin: state only moves when an action
  // runs). Skipping the re-evaluation is therefore observably equivalent;
  // it matters for waits over empty or fully-crashed populations, where
  // every round is quiescent and an O(n)-ish probe per round would be pure
  // overhead.
  bool known_false = false;
  for (std::size_t i = 0; i < max_rounds; ++i) {
    if (!known_false) {
      if (pred()) return i;
      known_false = true;
    }
    const std::size_t delivered = run_round();
    if (delivered > 0 || last_round_timeouts_ > 0) known_false = false;
  }
  if (known_false) return std::nullopt;
  return pred() ? std::optional<std::size_t>(max_rounds) : std::nullopt;
}

void Network::set_scheduler(std::unique_ptr<sched::Scheduler> scheduler) {
  SSPS_ASSERT(scheduler != nullptr);
  SSPS_ASSERT_MSG(!in_parallel_phase_, "set_scheduler: mid-round");
  SSPS_ASSERT_MSG(trace_ == nullptr || scheduler->threads() == 1,
                  "set_scheduler: detach the trace before going parallel");
  if (scheduler_ != nullptr) {
    // In-flight envelopes may have been allocated from the old
    // scheduler's worker pools; retire it (alive until the Network dies)
    // instead of destroying those slabs under the messages. It will
    // never run again: metrics shards fold in now, worker threads join.
    scheduler_->flush_metrics(*this);
    scheduler_->retire();
    retired_schedulers_.push_back(std::move(scheduler_));
  }
  scheduler_ = std::move(scheduler);
}

void Network::set_threads(unsigned threads) {
  SSPS_ASSERT_MSG(threads >= 1, "set_threads: need at least one worker");
  if (threads == scheduler_threads()) return;
  if (threads == 1) {
    set_scheduler(std::make_unique<sched::SerialScheduler>());
  } else {
    set_scheduler(std::make_unique<sched::ParallelScheduler>(threads));
  }
}

unsigned Network::scheduler_threads() const { return scheduler_->threads(); }

Metrics& Network::metrics() {
  // Fold any per-worker shards in before handing the counters out; the
  // hot send/deliver paths only ever touch their own shard, so every
  // external reader (and reset()) goes through here. Retired schedulers
  // flushed at retirement and never run again.
  SSPS_ASSERT_MSG(!in_parallel_phase_, "metrics: unavailable mid-phase");
  scheduler_->flush_metrics(*this);
  return metrics_;
}

const Metrics& Network::metrics() const {
  return const_cast<Network*>(this)->metrics();
}

telemetry::LatencyTracker& Network::latency() {
  // Same fold-on-access discipline as metrics(): flush_metrics folds the
  // per-worker latency shards alongside the metrics shards.
  SSPS_ASSERT_MSG(!in_parallel_phase_, "latency: unavailable mid-phase");
  scheduler_->flush_metrics(*this);
  return latency_;
}

const telemetry::LatencyTracker& Network::latency() const {
  return const_cast<Network*>(this)->latency();
}

void Network::attach_trace(Trace* trace) {
  SSPS_ASSERT_MSG(trace == nullptr || scheduler_threads() == 1,
                  "attach_trace: tracing requires the serial scheduler");
  trace_ = trace;
  if (trace == nullptr) {
    flow_ids_.clear();
    acting_node_ = NodeId::null();
  }
}

void Network::trace_send(NodeId to, const Message& msg, bool enqueued) {
  const std::uint64_t flow = ++next_flow_;
  // Swallowed sends get an event but no map entry: their pool slot is
  // recycled immediately, and a reused slot must not alias this flow.
  if (enqueued) flow_ids_[&msg] = flow;
  trace_->record(round_, acting_node_, to, msg.name(), TraceEventKind::kSend, flow);
}

void Network::trace_deliver(const Envelope& env) {
  acting_node_ = env.to;
  std::uint64_t flow = 0;
  auto it = flow_ids_.find(env.msg);
  if (it != flow_ids_.end()) {
    flow = it->second;
    flow_ids_.erase(it);
  }
  trace_->record(round_, NodeId::null(), env.to, env.msg->name(),
                 TraceEventKind::kDeliver, flow);
}

void Network::trace_forget(const Message* msg) { flow_ids_.erase(msg); }

std::size_t Network::pool_reserved_bytes() const {
  return pool_.reserved_bytes() + scheduler_->reserved_bytes();
}

void Network::step() {
  ++step_;

  // Fairness enforcement must serve by AGE, not by discovery order: under
  // overload (more overdue work than one action per step) a first-found
  // policy would starve whatever sorts last — violating the model's fair
  // receipt / weakly fair execution. Oldest-first guarantees every message
  // and every Timeout is served within a bounded lag. Ties break towards
  // the earliest send / lowest NodeId (the scans are in buffer and id
  // order), which is canonical.
  std::size_t oldest_msg_index = 0;
  Step oldest_msg_age = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Step age = step_ - pending_[i].sent_at;
    if (age > oldest_msg_age) {
      oldest_msg_age = age;
      oldest_msg_index = i;
    }
  }
  Slot* stalest_timeout_slot = nullptr;
  Step stalest_timeout_age = 0;
  for (Slot& slot : slots_) {
    if (slot.node == nullptr) continue;
    const Step idle = step_ - slot.last_timeout;
    if (idle > stalest_timeout_age) {
      stalest_timeout_age = idle;
      stalest_timeout_slot = &slot;
    }
  }
  if (oldest_msg_age > async_cfg_.max_message_age &&
      oldest_msg_age >= stalest_timeout_age) {
    deliver_at(oldest_msg_index);
    return;
  }
  if (stalest_timeout_slot != nullptr &&
      stalest_timeout_age > async_cfg_.max_timeout_gap) {
    fire_timeout(*stalest_timeout_slot);
    return;
  }
  if (oldest_msg_age > async_cfg_.max_message_age) {
    deliver_at(oldest_msg_index);
    return;
  }

  const bool prefer_timeout =
      pending_.empty() || rng_.below(256) < async_cfg_.timeout_bias;
  if (prefer_timeout && alive_count_ > 0) {
    collect_alive(order_scratch_);
    fire_timeout(*find_slot(order_scratch_[rng_.pick_index(order_scratch_)]));
    return;
  }
  if (pending_.empty()) return;

  // Pick a uniformly random pending message.
  deliver_at(static_cast<std::size_t>(rng_.below(pending_.size())));
}

void Network::run_steps(std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) step();
}

bool Network::weakly_connected(NodeId anchor) const {
  if (alive_count_ == 0) return true;
  // Build the undirected adjacency implied by explicit + implicit edges,
  // indexed densely by slot.
  std::vector<std::vector<std::uint32_t>> adj(slots_.size());
  auto add_refs = [&](NodeId id, const std::vector<NodeId>& refs) {
    const auto index = static_cast<std::uint32_t>(id.value - 1);
    for (NodeId r : refs) {
      if (!r || r == id || !alive(r)) continue;
      const auto r_index = static_cast<std::uint32_t>(r.value - 1);
      adj[index].push_back(r_index);
      adj[r_index].push_back(index);
    }
  };
  std::vector<NodeId> refs;
  std::size_t first_alive = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.node == nullptr) continue;
    if (first_alive == slots_.size()) first_alive = i;
    const NodeId id = id_at(i);
    refs.clear();
    slot.node->collect_refs(refs);
    if (anchor && id != anchor) refs.push_back(anchor);
    add_refs(id, refs);
  }
  for (const Envelope& env : pending_) {
    if (!alive(env.to)) continue;
    refs.clear();
    env.msg->collect_refs(refs);
    add_refs(env.to, refs);
  }
  // BFS from the first alive node.
  std::vector<bool> seen(slots_.size(), false);
  std::deque<std::uint32_t> queue;
  queue.push_back(static_cast<std::uint32_t>(first_alive));
  seen[first_alive] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::uint32_t cur = queue.front();
    queue.pop_front();
    for (std::uint32_t nxt : adj[cur]) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        ++reached;
        queue.push_back(nxt);
      }
    }
  }
  return reached == alive_count_;
}

}  // namespace ssps::sim
