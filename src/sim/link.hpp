// Link model of the event-driven timed scheduler (Scheduler::kTimed).
//
// The round scheduler idealizes every channel: unit latency, no loss, no
// duplication. The timed scheduler replaces that with per-link behavior:
// each message samples a delivery latency from a configurable distribution
// and is subject to seeded loss / duplication / reordering probabilities
// plus a partition schedule (directional link cuts over virtual-time
// windows). Nodes are grouped into zones (round-robin by id), and a link
// is either intra-zone ("local": same rack) or inter-zone ("remote":
// cross-zone) — the two LinkProfiles compose the same-rack vs
// wide-area regimes the geo scenarios model.
//
// Time is an integer virtual clock in millisecond ticks; one scheduler
// interval (the paper's "timeout interval", one Network round) spans
// kTicksPerInterval ticks = 1 virtual second. With the default profile —
// constant latency of exactly one interval, zero loss — the timed engine
// reproduces the round scheduler's delivery trace bit-for-bit (see
// Network::timed_interval), which is both the backward-compatibility
// proof and the differential oracle for everything in this file.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

/// Virtual-clock ticks per scheduler interval: 1 tick = 1 ms, one interval
/// (= one Network round in timed mode) = 1 virtual second.
inline constexpr Step kTicksPerInterval = 1000;

/// Per-message delivery-latency distribution, parameterized in seconds.
struct LatencySpec {
  enum class Dist : std::uint8_t {
    kConstant,   ///< always `a` seconds
    kUniform,    ///< uniform in [a, b] seconds
    kLognormal,  ///< exp(Normal(a, b)) seconds (a = mu, b = sigma)
  };

  Dist dist = Dist::kConstant;
  double a = 1.0;
  double b = 0.0;

  /// Samples one latency in ticks (>= 1: a zero-latency draw still costs
  /// one tick, so a message can never be delivered in the interval that
  /// sent it — the causality floor the round model also has). A constant
  /// spec draws nothing from `rng`, which keeps the default profile's
  /// link stream empty and the round-equivalence proof float-free.
  Step sample_ticks(Rng& rng) const;
};

/// Behavior of one link class: latency distribution plus fault
/// probabilities, applied independently per message.
struct LinkProfile {
  LatencySpec latency;
  double loss = 0.0;       ///< P(message silently dropped)
  double duplicate = 0.0;  ///< P(a clone is delivered too, independently)
  double reorder = 0.0;    ///< P(extra jitter pushes it behind later sends)
  /// P(the encoded bytes are mangled in flight). Requires a Corrupter
  /// installed on the Network (sim/network.hpp): the message is serialized,
  /// damaged (bit-flips, truncation, garbage splice) and re-decoded, so a
  /// corrupted send exercises the real wire-decode path — most manglings
  /// fail the frame checksum and the message is rejected (counted, not
  /// delivered); the rest decode into a valid-but-different message the
  /// protocol must stabilize around.
  double corrupt = 0.0;
};

/// One directional (or symmetric) link cut between two zones over a
/// virtual-time window. A message is cut when its *send* tick falls in
/// [from_tick(), to_tick()) and its endpoints match the zone pair.
struct PartitionWindow {
  std::uint64_t from_s = 0;  ///< window start, virtual seconds (inclusive)
  std::uint64_t to_s = 0;    ///< window end, virtual seconds (exclusive)
  std::uint32_t zone_a = 0;
  std::uint32_t zone_b = 0;
  /// Symmetric cut (both directions); false cuts only zone_a -> zone_b.
  bool bidirectional = true;

  Step from_tick() const { return from_s * kTicksPerInterval; }
  Step to_tick() const { return to_s * kTicksPerInterval; }
};

/// Complete link-layer configuration of a timed run. The default is the
/// round scheduler's idealized channel (one zone, constant one-interval
/// latency, zero faults).
struct TimedConfig {
  /// Zone count; node ids map round-robin onto [0, zones). 1 = every link
  /// is local.
  std::uint32_t zones = 1;
  /// Intra-zone links (and every link when zones == 1).
  LinkProfile local;
  /// Inter-zone links.
  LinkProfile remote;
  /// Link cuts over virtual-time windows, checked per message.
  std::vector<PartitionWindow> partitions;

  std::uint32_t zone_of(NodeId id) const {
    return zones <= 1 ? 0
                      : static_cast<std::uint32_t>((id.value - 1) % zones);
  }
  const LinkProfile& profile_between(NodeId from, NodeId to) const {
    return zone_of(from) == zone_of(to) ? local : remote;
  }
  /// True if the from->to link is cut for a message sent at `sent_tick`.
  bool partitioned(NodeId from, NodeId to, Step sent_tick) const;
};

}  // namespace ssps::sim
