// Message accounting: per-action and per-node counters.
//
// The hot path (one on_send + one on_deliver per message) works entirely
// on small integers: action labels are interned once into dense ids
// (messages resolve their label id via the MsgTypeId they already carry),
// and per-node counters index a vector by NodeId. The string-keyed views
// used by reports and tests are materialized on demand.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

/// Count/byte pair for one message label.
struct MessageCounter {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated traffic statistics, maintained by the Network on every send
/// and delivery. Benches reset these around the measured window.
class Metrics {
 public:
  /// Records a send of `m` (wire_size() bytes under label name()),
  /// addressed to `to`.
  void on_send(const Message& m, NodeId to) {
    count_send(label_of(m), m.wire_size());
    count_sent_to(to);
  }

  /// Records a delivery (receipt) of `m` at node `at`.
  void on_deliver(const Message& m, NodeId at) { count_deliver(label_of(m), at); }

  /// Dense id of `m`'s action label (interned on first sight). The ids
  /// are local to this Metrics instance — under the parallel scheduler
  /// each worker shard interns independently and fold_into remaps by
  /// name — so they are only ever paired with on_send_id on the same
  /// instance; delivery accounting re-resolves via on_deliver(m, at).
  std::uint32_t label_id(const Message& m) { return label_of(m); }

  /// Fast-path send counter on a pre-resolved label id.
  void on_send_id(std::uint32_t label, std::size_t bytes, NodeId to) {
    count_send(label, bytes);
    count_sent_to(to);
  }

  /// String-keyed variants for callers without a Message instance
  /// (tests, ad-hoc accounting). Slower: one intern lookup per call.
  void on_send(std::string_view name, std::size_t bytes, NodeId to);
  void on_deliver(std::string_view name, NodeId at);

  /// Records an adversarially injected message (Network::inject). Kept
  /// separate from sends: injected garbage is initial-state content, not
  /// protocol traffic, but stabilization reports want its volume.
  void on_inject(std::size_t bytes);

  /// Records a message rejected instead of processed: wire bytes that
  /// failed to decode (corrupting links, stale snapshots) or received
  /// contents a handler refused as malformed. The robustness counterpart
  /// of a crash — rejections are expected under fault injection, and the
  /// reports surface their volume.
  void on_reject(std::size_t bytes);

  /// Clears all counters (label interning survives; it is not
  /// observable through any accessor).
  void reset();

  /// Adds every counter of this Metrics into `dst`, translating label ids
  /// by name (each instance interns its labels independently). The
  /// parallel scheduler accumulates per-worker shards and folds them into
  /// the Network's main Metrics in worker-id order when the counters are
  /// read; integer sums commute, so the folded totals are bit-identical
  /// to single-thread accounting regardless of how deliveries were
  /// sharded. Label id assignment in `dst` may differ from a serial run,
  /// which is unobservable: every accessor is keyed by name or node.
  void fold_into(Metrics& dst) const;

  /// Copy of the current counters. The scenario engine snapshots around
  /// each phase so a report can carry per-phase traffic without disturbing
  /// counters a caller may still be accumulating.
  Metrics snapshot() const { return *this; }

  /// Total messages sent since the last reset.
  std::uint64_t total_sent() const { return total_sent_; }

  /// Total messages delivered (received) since the last reset.
  std::uint64_t total_delivered() const { return total_delivered_; }

  /// Total bytes sent since the last reset.
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Messages injected adversarially since the last reset.
  std::uint64_t total_injected() const { return total_injected_; }

  /// Bytes injected adversarially since the last reset.
  std::uint64_t injected_bytes() const { return injected_bytes_; }

  /// Messages rejected as malformed since the last reset.
  std::uint64_t total_rejected() const { return total_rejected_; }

  /// Bytes rejected as malformed since the last reset.
  std::uint64_t rejected_bytes() const { return rejected_bytes_; }

  /// Messages sent under one action label.
  std::uint64_t sent(std::string_view name) const;

  /// Bytes sent under one action label.
  std::uint64_t sent_bytes(std::string_view name) const;

  /// Messages received by one node (its in-load; used for congestion and
  /// supervisor-overhead experiments).
  std::uint64_t received_by(NodeId id) const;

  /// Messages addressed to one node at send time — the offered load, the
  /// symmetric counterpart to received_by. Counts every send whether or
  /// not the target was alive (the sender pays; a send to a crashed node
  /// shows up here but never in received_by), so the gap between the two
  /// is exactly the traffic the crash model swallowed.
  std::uint64_t sent_by(NodeId id) const;

  /// Messages received by `id` under one action label.
  std::uint64_t received_by(NodeId id, std::string_view name) const;

  /// All per-label send counters with nonzero traffic, sorted by label for
  /// stable output. Returns a cached flat view: report writers call this
  /// once per phase (and per supervisor row), and rebuilding a node-based
  /// map from the interned counters each time was allocator churn. The
  /// cache revalidates against total_sent(), which moves on every counted
  /// send, so the hot send/deliver path pays nothing for it.
  const std::vector<std::pair<std::string, MessageCounter>>& by_label() const;

 private:
  /// Dense id of an action label (interned; stable for this Metrics).
  std::uint32_t intern(std::string_view name);
  const std::uint64_t* find_received_cell(NodeId id, std::string_view name) const;

  /// Label id for a message: resolved through its metrics_type() tag with
  /// a vector lookup; falls back to interning name() on first sight.
  std::uint32_t label_of(const Message& m) {
    const MsgTypeId type = m.metrics_type();
    if (type != 0 && type < label_of_type_.size()) {
      const std::uint32_t cached = label_of_type_[type];
      if (cached != 0) return cached - 1;
    }
    return label_of_slow(m, type);
  }
  std::uint32_t label_of_slow(const Message& m, MsgTypeId type);

  void count_send(std::uint32_t label, std::size_t bytes) {
    if (label >= by_label_.size()) [[unlikely]] by_label_.resize(label + 1);
    by_label_[label].count += 1;
    by_label_[label].bytes += bytes;
    total_sent_ += 1;
    total_bytes_ += bytes;
  }
  void count_deliver(std::uint32_t label, NodeId at) {
    total_delivered_ += 1;
    if (at.is_null()) return;  // no per-node cell for the ⊥ reference
    const auto at_index = static_cast<std::size_t>(at.value - 1);
    if (at_index >= received_.size() || label >= labeled_stride_) [[unlikely]] {
      grow_deliver_table(at_index, label);
    }
    received_[at_index] += 1;
    received_labeled_[at_index * labeled_stride_ + label] += 1;
  }
  void grow_deliver_table(std::size_t at_index, std::uint32_t label);

  void count_sent_to(NodeId to) {
    if (to.is_null()) return;  // no per-node cell for the ⊥ reference
    const auto index = static_cast<std::size_t>(to.value - 1);
    if (index >= sent_to_.size()) [[unlikely]] {
      sent_to_.resize(std::max({index + 1, sent_to_.size() * 2, std::size_t{16}}), 0);
    }
    sent_to_[index] += 1;
  }

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Interning (not cleared by reset()).
  std::vector<std::string> label_names_;  // id -> name
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      label_ids_;  // name -> id
  std::vector<std::uint32_t> label_of_type_;  // MsgTypeId -> label id + 1 (0 = unseen)

  // Counters (cleared by reset()).
  std::vector<MessageCounter> by_label_;  // [label id]
  std::vector<std::uint64_t> received_;   // [node index]
  std::vector<std::uint64_t> sent_to_;    // [node index] offered load
  /// Flat node-major [node][label] table (stride labeled_stride_): one
  /// strided increment per delivery instead of a per-node heap vector.
  std::vector<std::uint64_t> received_labeled_;
  std::uint32_t labeled_stride_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_injected_ = 0;
  std::uint64_t injected_bytes_ = 0;
  std::uint64_t total_rejected_ = 0;
  std::uint64_t rejected_bytes_ = 0;

  /// Cached by_label() view. Valid while view_sent_ == total_sent_, which
  /// only moves on counted sends (monotone between resets; reset() stamps
  /// the sentinel so a fresh window never aliases an old one).
  static constexpr std::uint64_t kViewInvalid = ~0ULL;
  mutable std::vector<std::pair<std::string, MessageCounter>> by_label_view_;
  mutable std::uint64_t view_sent_ = kViewInvalid;
};

}  // namespace ssps::sim
