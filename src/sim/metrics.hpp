// Message accounting: per-action and per-node counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/types.hpp"

namespace ssps::sim {

/// Count/byte pair for one message label.
struct MessageCounter {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated traffic statistics, maintained by the Network on every send
/// and delivery. Benches reset these around the measured window.
class Metrics {
 public:
  /// Records a send of `bytes` bytes under action label `name`, addressed
  /// to `to`.
  void on_send(std::string_view name, std::size_t bytes, NodeId to);

  /// Records a delivery (receipt) at node `at`.
  void on_deliver(std::string_view name, NodeId at);

  /// Records an adversarially injected message (Network::inject). Kept
  /// separate from sends: injected garbage is initial-state content, not
  /// protocol traffic, but stabilization reports want its volume.
  void on_inject(std::size_t bytes);

  /// Clears all counters.
  void reset();

  /// Copy of the current counters. The scenario engine snapshots around
  /// each phase so a report can carry per-phase traffic without disturbing
  /// counters a caller may still be accumulating.
  Metrics snapshot() const { return *this; }

  /// Total messages sent since the last reset.
  std::uint64_t total_sent() const { return total_sent_; }

  /// Total messages delivered (received) since the last reset.
  std::uint64_t total_delivered() const { return total_delivered_; }

  /// Total bytes sent since the last reset.
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Messages injected adversarially since the last reset.
  std::uint64_t total_injected() const { return total_injected_; }

  /// Bytes injected adversarially since the last reset.
  std::uint64_t injected_bytes() const { return injected_bytes_; }

  /// Messages sent under one action label.
  std::uint64_t sent(std::string_view name) const;

  /// Bytes sent under one action label.
  std::uint64_t sent_bytes(std::string_view name) const;

  /// Messages received by one node (its in-load; used for congestion and
  /// supervisor-overhead experiments).
  std::uint64_t received_by(NodeId id) const;

  /// Messages received by `id` under one action label.
  std::uint64_t received_by(NodeId id, std::string_view name) const;

  /// All per-label send counters (sorted by label for stable output).
  const std::map<std::string, MessageCounter>& by_label() const { return by_label_; }

 private:
  std::map<std::string, MessageCounter> by_label_;
  std::unordered_map<NodeId, std::uint64_t> received_;
  std::unordered_map<NodeId, std::map<std::string, std::uint64_t>> received_labeled_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_injected_ = 0;
  std::uint64_t injected_bytes_ = 0;
};

}  // namespace ssps::sim
