// Message base class: the ⟨label⟩(⟨parameters⟩) remote action calls of the
// paper's model (§1.1). Concrete protocols subclass Message per action.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace ssps::sim {

/// Base of all protocol messages.
///
/// A message models a remote action invocation. The simulator treats
/// messages as opaque apart from three introspection hooks used for
/// metrics (name, wire_size) and for graph analyses that must count
/// implicit edges, i.e. node references travelling inside channels
/// (collect_refs).
class Message {
 public:
  virtual ~Message() = default;

  /// Stable action label, used as the metrics key (e.g. "SetData").
  virtual std::string_view name() const = 0;

  /// Estimated serialized size in bytes; used for byte accounting in the
  /// anti-entropy cost experiments. The default approximates a header.
  virtual std::size_t wire_size() const { return 16; }

  /// Appends every node reference carried by this message to `out`.
  /// These are the paper's *implicit edges* and take part in connectivity
  /// checks (a reference inside a channel is an edge of G).
  virtual void collect_refs(std::vector<NodeId>& out) const { (void)out; }
};

}  // namespace ssps::sim
