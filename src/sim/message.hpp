// Message base class: the ⟨label⟩(⟨parameters⟩) remote action calls of the
// paper's model (§1.1). Concrete protocols subclass Message per action.
#pragma once

#include <cstddef>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/encode.hpp"
#include "sim/message_pool.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

/// Base of all protocol messages.
///
/// A message models a remote action invocation. The simulator treats
/// messages as opaque apart from the type tag (dispatch) and three
/// introspection hooks used for metrics (name, wire_size) and for graph
/// analyses that must count implicit edges, i.e. node references
/// travelling inside channels (collect_refs).
///
/// Concrete classes derive through MsgBase<Self> so every instance carries
/// its MsgTypeId; handlers then dispatch with msg_cast — one integer
/// compare plus a static downcast — instead of a dynamic_cast chain.
class Message {
 public:
  virtual ~Message() = default;

  /// Tag of the concrete class (see msg_type_id). 0 for legacy messages
  /// that bypass MsgBase; msg_cast never matches those.
  MsgTypeId type_id() const { return type_id_; }

  /// Type tag under which metrics account this message. Defaults to the
  /// message's own tag; envelope messages re-stamp it with their payload's
  /// tag (set_metrics_type) so per-action accounting stays meaningful
  /// across wrappers. A plain field, not a virtual: the send path resolves
  /// it once per message, and the indirect call showed up in round-loop
  /// profiles.
  MsgTypeId metrics_type() const { return metrics_type_; }

  /// Stable action label, used as the metrics key (e.g. "SetData").
  virtual std::string_view name() const = 0;

  /// Estimated serialized size in bytes; used for byte accounting in the
  /// anti-entropy cost experiments. The default approximates a header.
  virtual std::size_t wire_size() const { return 16; }

  /// Appends every node reference carried by this message to `out`.
  /// These are the paper's *implicit edges* and take part in connectivity
  /// checks (a reference inside a channel is an edge of G).
  virtual void collect_refs(std::vector<NodeId>& out) const { (void)out; }

  /// Allocates a copy of this message from `pool` (the timed scheduler's
  /// link-duplication fault). MsgBase provides this automatically for
  /// copy-constructible messages; move-only wrappers override it by hand.
  /// A null return means "not clonable" and the duplication is skipped.
  virtual PooledMsg clone_into(MessagePool& pool) const {
    (void)pool;
    return PooledMsg{};
  }

  /// Copies telemetry-only stamps — fields deliberately left off the wire,
  /// like pubsub::Publication::born — from `original`, which the caller
  /// must already have proven byte-identical to this message under
  /// encode(). The deployment layer calls this on a wire-decoded copy
  /// before swapping it into the in-flight lane, so delivery-latency
  /// histograms are unaffected by the swap. Default: no off-wire state.
  virtual void adopt_offwire(const Message& original) { (void)original; }

  /// Appends a canonical byte encoding of this message's payload to `enc`
  /// (common/encode.hpp). The model checker keys channel contents on
  /// name() + this encoding — NOT on type_id(), which is assigned in
  /// first-use order at runtime and is not stable across processes — so
  /// the encoding doubles as the wire-format draft for the messages that
  /// override it. Returns false when the type has no canonical encoding;
  /// the model checker refuses to explore states containing such messages.
  virtual bool encode(common::Encoder& enc) const {
    (void)enc;
    return false;
  }

 protected:
  template <typename Derived, typename Base>
  friend struct MsgBase;

  /// For envelope messages: account this instance under `type` (normally
  /// the wrapped payload's metrics_type()).
  void set_metrics_type(MsgTypeId type) { metrics_type_ = type; }

  MsgTypeId type_id_ = 0;
  MsgTypeId metrics_type_ = 0;
};

/// CRTP shim that stamps the concrete type's tag into every instance
/// (including stack-constructed ones in tests, not just pooled ones).
/// `Base` supports intermediate hierarchies: MsgBase<D, SomeMessageBase>.
template <typename Derived, typename Base = Message>
struct MsgBase : Base {
  template <typename... Args>
  explicit MsgBase(Args&&... args) : Base(std::forward<Args>(args)...) {
    Message::type_id_ = msg_type_id<Derived>();
    Message::metrics_type_ = Message::type_id_;
  }

  PooledMsg clone_into(MessagePool& pool) const override {
    if constexpr (std::is_copy_constructible_v<Derived>) {
      return pool.make<Derived>(static_cast<const Derived&>(*this));
    } else {
      return PooledMsg{};  // move-only payload: override by hand if needed
    }
  }
};

/// Checked downcast by exact type tag: returns nullptr unless `m`'s
/// dynamic type is exactly T. All protocol messages are final classes, so
/// exact matching is the dispatch semantics handlers want.
template <typename T>
const T* msg_cast(const Message& m) {
  return m.type_id() == msg_type_id<T>() ? static_cast<const T*>(&m) : nullptr;
}

template <typename T>
T* msg_cast(Message& m) {
  return m.type_id() == msg_type_id<T>() ? static_cast<T*>(&m) : nullptr;
}

}  // namespace ssps::sim
