// Node base class: a peer of the overlay running actions (paper §1.1).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"
#include "sim/types.hpp"

namespace ssps::common {
class Encoder;
class Decoder;
}  // namespace ssps::common

namespace ssps::sim {

class Network;

/// One tag per node kind, for checked static downcasts (Network::node_as).
/// The sim layer defines the universe of kinds so a single byte covers
/// every layer; kOther is for ad-hoc nodes (tests) which fall back to
/// dynamic_cast.
enum class NodeKind : std::uint8_t {
  kOther = 0,
  // core/
  kSubscriber,
  kSupervisor,
  // pubsub/
  kPubSub,  // SubscriberNode specialized with the Algorithm 5 layer
  kMultiTopicClient,
  kMultiTopicSupervisor,
  // baseline/
  kBrokerHub,
  kBrokerClient,
  kGossipPeer,
  kChordPeer,
  kSkipGraphPeer,
};

/// A protocol participant.
///
/// Concrete nodes implement the two action entry points of the model:
/// message-triggered actions (`handle`) and the periodically executed
/// `timeout` action. Nodes send messages exclusively through the Network
/// reference supplied at registration; they hold no pointers to peers,
/// only NodeId references (compare-store-send discipline).
///
/// Node classes meant for fast typed access pass their NodeKind up this
/// constructor and define `static bool classof(NodeKind)` accepting their
/// own kind plus every derived kind (the LLVM isa<> idiom); node_as then
/// resolves them with one byte compare instead of a dynamic_cast.
class Node {
 public:
  virtual ~Node() = default;

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }

  /// Processes one incoming message (removed from this node's channel).
  virtual void handle(PooledMsg msg) = 0;

  /// The periodic Timeout action (weakly fair execution is guaranteed by
  /// the schedulers).
  virtual void timeout() = 0;

  /// Appends all node references in this node's *local variables* to `out`
  /// (the paper's explicit edges). Used for connectivity/legitimacy checks.
  virtual void collect_refs(std::vector<NodeId>& out) const { (void)out; }

  /// Called once by the Network after id/net/rng are assigned; nodes that
  /// need their identity to finish construction hook in here.
  virtual void on_register() {}

  /// Serializes the node's recoverable protocol state into `enc`
  /// (canonical encoding, common/encode.hpp). Returns false when the node
  /// does not support snapshots (the default); the Network then keeps no
  /// snapshot for it. Used by the periodic snapshot engine
  /// (Network::enable_snapshots) to capture crash-recovery checkpoints.
  virtual bool snapshot_state(common::Encoder& enc) const {
    (void)enc;
    return false;
  }

  /// Restores state from a snapshot previously produced by
  /// snapshot_state — possibly STALE (taken rounds before the crash) and
  /// possibly CORRUPTED (fault injection mangles stored snapshots too).
  /// Must be total: on malformed input, return false leaving the node in
  /// a valid (if arbitrary) state; self-stabilization recovers from
  /// whatever was restored. Called by Network::recover after
  /// on_register.
  virtual bool restore_state(common::Decoder& dec) {
    (void)dec;
    return false;
  }

  /// Snapshot of this node's private randomness stream. The model
  /// checker's canonical state hash includes it: two states that agree on
  /// every protocol variable but differ in pending randomness can still
  /// diverge later, so they must not be deduplicated.
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }

 protected:
  explicit Node(NodeKind kind = NodeKind::kOther) : kind_(kind) {}

  Network& net() const { return *net_; }
  ssps::Rng& rng() { return rng_; }

 private:
  friend class Network;
  NodeId id_ = NodeId::null();
  Network* net_ = nullptr;
  NodeKind kind_;
  ssps::Rng rng_{0};
};

}  // namespace ssps::sim
