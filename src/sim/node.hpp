// Node base class: a peer of the overlay running actions (paper §1.1).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

class Network;

/// A protocol participant.
///
/// Concrete nodes implement the two action entry points of the model:
/// message-triggered actions (`handle`) and the periodically executed
/// `timeout` action. Nodes send messages exclusively through the Network
/// reference supplied at registration; they hold no pointers to peers,
/// only NodeId references (compare-store-send discipline).
class Node {
 public:
  virtual ~Node() = default;

  NodeId id() const { return id_; }

  /// Processes one incoming message (removed from this node's channel).
  virtual void handle(std::unique_ptr<Message> msg) = 0;

  /// The periodic Timeout action (weakly fair execution is guaranteed by
  /// the schedulers).
  virtual void timeout() = 0;

  /// Appends all node references in this node's *local variables* to `out`
  /// (the paper's explicit edges). Used for connectivity/legitimacy checks.
  virtual void collect_refs(std::vector<NodeId>& out) const { (void)out; }

  /// Called once by the Network after id/net/rng are assigned; nodes that
  /// need their identity to finish construction hook in here.
  virtual void on_register() {}

 protected:
  Network& net() const { return *net_; }
  ssps::Rng& rng() { return rng_; }

 private:
  friend class Network;
  NodeId id_ = NodeId::null();
  Network* net_ = nullptr;
  ssps::Rng rng_{0};
};

}  // namespace ssps::sim
