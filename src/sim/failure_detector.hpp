// Eventually-correct failure detector (paper §3.3).
//
// The paper equips only the supervisor with a failure detector and assumes
// it is eventually correct: after a node crashes, the detector reports the
// crash from some point in time on, and it never suspects alive nodes.
// We realize this as a simulator-backed oracle with a configurable
// detection delay measured in rounds — crashes become visible `delay`
// rounds after they occur, which exercises the window during which the
// supervisor's database still contains dead subscribers.
#pragma once

#include <algorithm>

#include "sim/network.hpp"
#include "sim/types.hpp"

namespace ssps::sim {

/// Supervisor-side failure detector.
class FailureDetector {
 public:
  /// `delay_rounds` = 0 gives a perfect detector.
  FailureDetector(const Network& net, Round delay_rounds)
      : net_(&net), delay_(delay_rounds) {}

  /// True once the crash of `id` is detectable. Never true for alive nodes
  /// (no false suspicions), so the supervisor may evict on first report.
  bool suspects(NodeId id) const {
    if (net_->alive(id)) return false;
    auto crashed = net_->crash_round(id);
    if (!crashed) return true;  // never existed: safe to treat as gone
    return net_->round() >= *crashed + delay_;
  }

  /// How many entries of the network's crash log are already detectable
  /// under the current delay. The log is in crash order with non-decreasing
  /// rounds, so the visible crashes are exactly its first
  /// visible_crash_count() entries — a consumer (the supervisor's eviction
  /// sweep) can process the log incrementally with a cursor instead of
  /// re-scanning its whole database per suspects() probe.
  std::size_t visible_crash_count() const {
    const auto& log = net_->crash_log();
    const Round now = net_->round();
    if (now < delay_) return 0;
    const Round horizon = now - delay_;  // visible iff crash_round <= horizon
    const auto it = std::upper_bound(
        log.begin(), log.end(), horizon,
        [](Round h, const std::pair<Round, NodeId>& e) { return h < e.first; });
    return static_cast<std::size_t>(it - log.begin());
  }

  /// The node of the i-th crash-log entry (i < visible_crash_count()).
  NodeId visible_crash(std::size_t i) const { return net_->crash_log()[i].second; }

  Round delay() const { return delay_; }
  void set_delay(Round delay_rounds) { delay_ = delay_rounds; }

 private:
  const Network* net_;
  Round delay_;
};

}  // namespace ssps::sim
