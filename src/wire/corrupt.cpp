#include "wire/corrupt.hpp"

#include <algorithm>

namespace ssps::wire {

namespace {

/// Frame header size: u8 type + u64 payload length + u32 CRC.
constexpr std::size_t kFrameHeader = 13;
/// Byte offset of the CRC field within a frame.
constexpr std::size_t kCrcOffset = 9;

void flip_bits(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  const std::uint64_t flips = 1 + rng.below(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t at = static_cast<std::size_t>(rng.below(bytes.size()));
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
  }
}

void truncate(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  bytes.resize(static_cast<std::size_t>(rng.below(bytes.size())));
}

void splice_garbage(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  const std::size_t at = static_cast<std::size_t>(rng.below(bytes.size()));
  const std::size_t max_run = std::min<std::size_t>(16, bytes.size() - at);
  const std::size_t run = 1 + static_cast<std::size_t>(rng.below(max_run));
  for (std::size_t i = 0; i < run; ++i) {
    bytes[at + i] = static_cast<std::uint8_t>(rng.below(256));
  }
}

/// Scrambles payload bytes, then recomputes the CRC so the frame still
/// passes the checksum — the mode that forces structural validation (and
/// occasionally a clean decode into a different message) instead of the
/// checksum shortcut.
void scramble_past_checksum(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  if (bytes.size() <= kFrameHeader) {
    flip_bits(bytes, rng);  // header-only frame: nothing past the CRC
    return;
  }
  const std::size_t payload = bytes.size() - kFrameHeader;
  const std::uint64_t hits = 1 + rng.below(std::min<std::size_t>(4, payload));
  for (std::uint64_t i = 0; i < hits; ++i) {
    const std::size_t at =
        kFrameHeader + static_cast<std::size_t>(rng.below(payload));
    bytes[at] = static_cast<std::uint8_t>(rng.below(256));
  }
  std::uint32_t crc = crc32({bytes.data(), 1});
  crc = crc32({bytes.data() + kFrameHeader, payload}, crc);
  for (int i = 0; i < 4; ++i) {
    bytes[kCrcOffset + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

}  // namespace

void mangle(std::vector<std::uint8_t>& bytes, ssps::Rng& rng) {
  if (bytes.empty()) return;
  switch (rng.below(4)) {
    case 0: flip_bits(bytes, rng); break;
    case 1: truncate(bytes, rng); break;
    case 2: splice_garbage(bytes, rng); break;
    default: scramble_past_checksum(bytes, rng); break;
  }
}

sim::PooledMsg CodecCorrupter::corrupt(const sim::Message& m,
                                       sim::MessagePool& pool,
                                       ssps::Rng& rng) {
  scratch_.clear();
  if (!encode_message(m, scratch_)) {
    // Outside the wire surface (ad-hoc test messages): nothing to mangle,
    // deliver untouched — clone because the caller reclaims the original.
    return m.clone_into(pool);
  }
  mangle(scratch_, rng);
  DecodeResult result = decode_message(scratch_, pool);
  if (result.ok()) {
    ++survived_;
    return std::move(result.msg);
  }
  const auto status = static_cast<std::size_t>(result.error.status);
  if (status < rejected_by_status_.size()) ++rejected_by_status_[status];
  return {};
}

}  // namespace ssps::wire
