#include "wire/codec.hpp"

#include <array>

#include "common/decode.hpp"
#include "common/encode.hpp"
#include "core/messages.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/topics.hpp"

namespace ssps::wire {

namespace {

using common::Decoder;
using common::Encoder;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table generated at
// compile time.
// ---------------------------------------------------------------------------

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// Appends the payload of `m` (no frame) to `e`; TopicEnvelope payloads
/// carry their inner message's wire type so the decoder can recurse.
bool encode_payload(const sim::Message& m, Encoder& e) {
  if (const auto* env = sim::msg_cast<pubsub::TopicEnvelope>(m)) {
    const auto inner_type = wire_type_of(*env->inner);
    if (!inner_type) return false;
    e.u32(env->topic);
    e.u8(static_cast<std::uint8_t>(*inner_type));
    return encode_payload(*env->inner, e);
  }
  return m.encode(e);
}

// ---------------------------------------------------------------------------
// Payload decoding. Every helper is total: it reads through the bounds-
// checked Decoder, validates every invariant the corresponding constructor
// asserts, and bounds every element count by the remaining input before
// reserving anything.
// ---------------------------------------------------------------------------

bool decode_node(Decoder& d, sim::NodeId& out) {
  std::uint64_t v = 0;
  if (!d.u64(v)) return false;
  out = sim::NodeId{v};
  return true;
}

bool decode_bits(Decoder& d, pubsub::BitString& out) {
  std::uint64_t nbits = 0;
  if (!d.u64(nbits)) return false;
  const std::uint64_t nbytes = nbits / 8 + (nbits % 8 != 0 ? 1 : 0);
  std::span<const std::uint8_t> packed;
  if (nbytes > d.remaining() || !d.view(static_cast<std::size_t>(nbytes), packed)) {
    return false;
  }
  // Canonical form: padding bits past `nbits` in the last byte are zero.
  // from_bytes would silently ignore them, so accepting set padding would
  // admit two encodings of one BitString — breaking the decode/re-encode
  // byte-identity the corpus-replay fuzzer pins.
  if (nbits % 8 != 0) {
    const std::uint8_t padding_mask =
        static_cast<std::uint8_t>(0xFF >> (nbits % 8));
    if ((packed.back() & padding_mask) != 0) return false;
  }
  out = pubsub::BitString::from_bytes(packed, static_cast<std::size_t>(nbits));
  return true;
}

bool decode_summary(Decoder& d, pubsub::NodeSummary& out) {
  if (!decode_bits(d, out.label)) return false;
  return d.raw(out.hash.data(), out.hash.size());
}

bool decode_publication(Decoder& d, pubsub::Publication& out) {
  // `born` is a telemetry stamp, not wire data (see encode_publication):
  // decoded publications are born at 0, and re-encoding skips the field,
  // so the byte round-trip is still exact.
  return decode_node(d, out.origin) && d.string(out.payload);
}

/// Smallest possible encoding of each repeated element — the divisor that
/// bounds a declared element count by the remaining input.
constexpr std::size_t kMinSummaryBytes = 8 + 32;  // empty label + digest
constexpr std::size_t kMinPublicationBytes = 8 + 8;  // origin + empty payload

template <typename T, typename Fn>
bool decode_vector(Decoder& d, std::size_t min_element_bytes, Fn&& fn,
                   std::vector<T>& out) {
  std::uint64_t count = 0;
  if (!d.u64(count)) return false;
  if (count > d.remaining() / min_element_bytes) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    T value{};
    if (!fn(d, value)) return false;
    out.push_back(std::move(value));
  }
  return true;
}

sim::PooledMsg decode_payload(WireType type, Decoder& d, sim::MessagePool& pool,
                              DecodeError& error, int depth);

sim::PooledMsg fail(DecodeError& error, DecodeStatus status, std::size_t offset) {
  error.status = status;
  error.offset = offset;
  return {};
}

sim::PooledMsg decode_envelope(Decoder& d, sim::MessagePool& pool,
                               DecodeError& error, int depth) {
  if (depth >= kMaxEnvelopeDepth) {
    return fail(error, DecodeStatus::kDepthExceeded, d.offset());
  }
  std::uint32_t topic = 0;
  std::uint8_t inner_type = 0;
  if (!d.u32(topic) || !d.u8(inner_type)) {
    return fail(error, DecodeStatus::kBadPayload, d.offset());
  }
  sim::PooledMsg inner = decode_payload(static_cast<WireType>(inner_type), d,
                                        pool, error, depth + 1);
  if (!inner) return {};  // error already set
  return pool.make<pubsub::TopicEnvelope>(topic, std::move(inner));
}

sim::PooledMsg decode_payload(WireType type, Decoder& d, sim::MessagePool& pool,
                              DecodeError& error, int depth) {
  namespace cm = core::msg;
  namespace pm = pubsub::msg;
  const std::size_t start = d.offset();
  auto bad = [&]() { return fail(error, DecodeStatus::kBadPayload, d.offset()); };

  switch (type) {
    case WireType::kSubscribe: {
      sim::NodeId who;
      if (!decode_node(d, who)) return bad();
      return pool.make<cm::Subscribe>(who);
    }
    case WireType::kUnsubscribe: {
      sim::NodeId who;
      if (!decode_node(d, who)) return bad();
      return pool.make<cm::Unsubscribe>(who);
    }
    case WireType::kGetConfiguration: {
      sim::NodeId subject, requester;
      if (!decode_node(d, subject) || !decode_node(d, requester)) return bad();
      return pool.make<cm::GetConfiguration>(subject, requester);
    }
    case WireType::kSetData: {
      std::optional<core::LabeledRef> pred, succ;
      std::optional<core::Label> label;
      if (!d.optional(pred, core::decode_ref) ||
          !d.optional(label, core::decode_label) ||
          !d.optional(succ, core::decode_ref)) {
        return bad();
      }
      return pool.make<cm::SetData>(std::move(pred), std::move(label),
                                    std::move(succ));
    }
    case WireType::kCheck: {
      core::LabeledRef sender;
      core::Label believed;
      std::uint8_t flag = 0;
      if (!core::decode_ref(d, sender) || !core::decode_label(d, believed) ||
          !d.u8(flag) || flag > 1) {
        return bad();
      }
      return pool.make<cm::Check>(sender, believed,
                                  static_cast<core::IntroFlag>(flag));
    }
    case WireType::kIntroduce: {
      core::LabeledRef cand;
      std::uint8_t flag = 0;
      if (!core::decode_ref(d, cand) || !d.u8(flag) || flag > 1) return bad();
      return pool.make<cm::Introduce>(cand, static_cast<core::IntroFlag>(flag));
    }
    case WireType::kRemoveConnections: {
      sim::NodeId who;
      if (!decode_node(d, who)) return bad();
      return pool.make<cm::RemoveConnections>(who);
    }
    case WireType::kIntroduceShortcut: {
      core::LabeledRef cand;
      if (!core::decode_ref(d, cand)) return bad();
      return pool.make<cm::IntroduceShortcut>(cand);
    }
    case WireType::kCheckTrie: {
      sim::NodeId sender;
      std::vector<pubsub::NodeSummary> tuples;
      if (!decode_node(d, sender) ||
          !decode_vector(d, kMinSummaryBytes, decode_summary, tuples)) {
        return bad();
      }
      return pool.make<pm::CheckTrie>(sender, std::move(tuples));
    }
    case WireType::kCheckAndPublish: {
      sim::NodeId sender;
      std::vector<pubsub::NodeSummary> tuples;
      pubsub::BitString prefix;
      if (!decode_node(d, sender) ||
          !decode_vector(d, kMinSummaryBytes, decode_summary, tuples) ||
          !decode_bits(d, prefix)) {
        return bad();
      }
      return pool.make<pm::CheckAndPublish>(sender, std::move(tuples),
                                            std::move(prefix));
    }
    case WireType::kPublish: {
      std::vector<pubsub::Publication> pubs;
      if (!decode_vector(d, kMinPublicationBytes, decode_publication, pubs)) {
        return bad();
      }
      return pool.make<pm::Publish>(std::move(pubs));
    }
    case WireType::kPublishNew: {
      pubsub::Publication pub;
      if (!decode_publication(d, pub)) return bad();
      return pool.make<pm::PublishNew>(std::move(pub));
    }
    case WireType::kTopicEnvelope:
      return decode_envelope(d, pool, error, depth);
    case WireType::kHello: {
      std::uint32_t version = 0;
      std::uint64_t node = 0;
      const std::size_t version_at = d.offset();
      if (!d.u32(version) || !d.u64(node)) return bad();
      if (version != kProtocolVersion) {
        return fail(error, DecodeStatus::kVersionMismatch, version_at);
      }
      return pool.make<Hello>(version, sim::NodeId{node});
    }
  }
  return fail(error, DecodeStatus::kUnknownType, start);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kUnknownType: return "unknown-type";
    case DecodeStatus::kBadPayload: return "bad-payload";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
    case DecodeStatus::kDepthExceeded: return "depth-exceeded";
    case DecodeStatus::kVersionMismatch: return "version-mismatch";
    case DecodeStatus::kFrameTooLarge: return "frame-too-large";
  }
  return "invalid-status";
}

std::optional<WireType> wire_type_of(const sim::Message& m) {
  namespace cm = core::msg;
  namespace pm = pubsub::msg;
  if (sim::msg_cast<cm::Subscribe>(m)) return WireType::kSubscribe;
  if (sim::msg_cast<cm::Unsubscribe>(m)) return WireType::kUnsubscribe;
  if (sim::msg_cast<cm::GetConfiguration>(m)) return WireType::kGetConfiguration;
  if (sim::msg_cast<cm::SetData>(m)) return WireType::kSetData;
  if (sim::msg_cast<cm::Check>(m)) return WireType::kCheck;
  if (sim::msg_cast<cm::Introduce>(m)) return WireType::kIntroduce;
  if (sim::msg_cast<cm::RemoveConnections>(m)) return WireType::kRemoveConnections;
  if (sim::msg_cast<cm::IntroduceShortcut>(m)) return WireType::kIntroduceShortcut;
  if (sim::msg_cast<pm::CheckTrie>(m)) return WireType::kCheckTrie;
  if (sim::msg_cast<pm::CheckAndPublish>(m)) return WireType::kCheckAndPublish;
  if (sim::msg_cast<pm::Publish>(m)) return WireType::kPublish;
  if (sim::msg_cast<pm::PublishNew>(m)) return WireType::kPublishNew;
  if (sim::msg_cast<pubsub::TopicEnvelope>(m)) return WireType::kTopicEnvelope;
  if (sim::msg_cast<Hello>(m)) return WireType::kHello;
  return std::nullopt;
}

bool encode_message(const sim::Message& m, std::vector<std::uint8_t>& out) {
  const auto type = wire_type_of(m);
  if (!type) return false;
  Encoder payload;
  if (!encode_payload(m, payload)) return false;
  const std::uint8_t type_byte = static_cast<std::uint8_t>(*type);
  std::uint32_t crc = crc32({&type_byte, 1});
  crc = crc32(payload.buffer(), crc);
  Encoder frame;
  frame.u8(type_byte);
  frame.u64(payload.size());
  frame.u32(crc);
  out.insert(out.end(), frame.buffer().begin(), frame.buffer().end());
  out.insert(out.end(), payload.buffer().begin(), payload.buffer().end());
  return true;
}

DecodeResult decode_message(std::span<const std::uint8_t> bytes,
                            sim::MessagePool& pool) {
  DecodeResult result;
  Decoder header(bytes);
  std::uint8_t type_byte = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t claimed_crc = 0;
  if (!header.u8(type_byte) || !header.u64(payload_len) ||
      !header.u32(claimed_crc)) {
    result.error = {DecodeStatus::kTruncated, header.offset()};
    return result;
  }
  if (payload_len > header.remaining()) {
    result.error = {DecodeStatus::kTruncated, header.offset()};
    return result;
  }
  std::span<const std::uint8_t> payload;
  header.view(static_cast<std::size_t>(payload_len), payload);
  std::uint32_t actual = crc32({&type_byte, 1});
  actual = crc32(payload, actual);
  if (actual != claimed_crc) {
    result.error = {DecodeStatus::kBadChecksum, 9};
    return result;
  }
  // Trailing bytes after the declared payload are tolerated (a frame
  // parser reading from a stream consumes exactly the frame), but the
  // payload itself must be consumed exactly.
  Decoder d(payload);
  const std::size_t frame_header = bytes.size() - payload.size() -
                                   header.remaining();
  DecodeError error;
  result.msg = decode_payload(static_cast<WireType>(type_byte), d, pool, error, 0);
  if (!result.msg) {
    result.error = {error.status, frame_header + error.offset};
    return result;
  }
  if (!d.done()) {
    result.msg.reset();
    result.error = {DecodeStatus::kTrailingBytes, frame_header + d.offset()};
    return result;
  }
  return result;
}

}  // namespace ssps::wire
