// Wire codec: framed, checksummed byte encoding of every protocol message.
//
// The canonical Message::encode payloads (the model checker's state
// fingerprint) become an actual wire format here: each message is framed
// as
//
//   [u8 wire type][u64 payload length][u32 CRC-32][payload bytes]
//
// where the CRC covers the type byte and the payload. Wire types are a
// fixed enum — NOT the runtime MsgTypeId, which is assigned in first-use
// order and differs between processes — so two processes (or a process
// and its own snapshot from a previous life) agree on every byte.
//
// decode_message is *total*: any byte string returns either a pool-
// allocated message that re-encodes to the same bytes, or a structured
// DecodeError — never UB, never an assert. That property is what the
// corrupting-link fault (src/wire/corrupt.hpp) and the decode fuzz target
// (fuzz/decode_fuzz.cpp) attack.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "sim/message_pool.hpp"

namespace ssps::wire {

/// Stable on-the-wire message type ids. Append-only: renumbering breaks
/// every stored snapshot and cross-version wire exchange.
enum class WireType : std::uint8_t {
  // core/ (BuildSR, Algorithms 1–4)
  kSubscribe = 1,
  kUnsubscribe = 2,
  kGetConfiguration = 3,
  kSetData = 4,
  kCheck = 5,
  kIntroduce = 6,
  kRemoveConnections = 7,
  kIntroduceShortcut = 8,
  // pubsub/ (Algorithm 5)
  kCheckTrie = 9,
  kCheckAndPublish = 10,
  kPublish = 11,
  kPublishNew = 12,
  // topic multiplexing (§4)
  kTopicEnvelope = 13,
  // net/ (deployment handshake)
  kHello = 14,
};

/// Version stamped into Hello frames. Bump on any incompatible change to
/// the frame layout or the control protocol; peers with a different
/// version are rejected at handshake time (DecodeStatus::kVersionMismatch)
/// instead of diverging mid-run.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Handshake greeting exchanged when a transport connection opens: the
/// speaker's protocol version plus the node (shard) id it claims to host.
/// A transport-level message — it never travels through the simulator —
/// but it shares the codec so the fuzzer and the total-decode guarantee
/// cover it like any protocol frame.
struct Hello final : sim::MsgBase<Hello> {
  std::uint32_t version = kProtocolVersion;
  sim::NodeId node;

  Hello(std::uint32_t v, sim::NodeId n) : version(v), node(n) {}
  std::string_view name() const override { return "Hello"; }
  std::size_t wire_size() const override { return 8 + 4 + 8; }
  bool encode(common::Encoder& e) const override {
    e.u32(version);
    e.u64(node.value);
    return true;
  }
};

/// Why a decode failed. kOk never appears in a DecodeError.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,      ///< input shorter than the frame header or payload claims
  kBadChecksum,    ///< CRC mismatch (bytes damaged in flight)
  kUnknownType,    ///< wire type byte outside the enum
  kBadPayload,     ///< payload structure invalid (bad label, length, flag…)
  kTrailingBytes,  ///< payload longer than the message's fields consume
  kDepthExceeded,  ///< TopicEnvelope nesting beyond kMaxEnvelopeDepth
  kVersionMismatch,  ///< Hello from a peer speaking another protocol version
  kFrameTooLarge,  ///< frame header claims a payload beyond the assembly cap
};

/// Stable kebab-case name (metrics labels, JSON reports, fuzz triage).
const char* decode_status_name(DecodeStatus s);

struct DecodeError {
  DecodeStatus status = DecodeStatus::kOk;
  /// Byte offset (into the decoded span) where the failure was detected.
  std::size_t offset = 0;
};

/// Result of decode_message: exactly one of `msg` (success) or `error`.
struct DecodeResult {
  sim::PooledMsg msg;
  DecodeError error;

  bool ok() const { return msg.get() != nullptr; }
};

/// TopicEnvelope frames nest their payload recursively; anything deeper
/// than this is rejected (the protocols never nest envelopes).
inline constexpr int kMaxEnvelopeDepth = 4;

/// CRC-32 (IEEE 802.3, reflected) over `data`, continuing from `seed`
/// (pass the previous call's return value to checksum in pieces).
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// The stable wire type of `m`, or nullopt for message classes outside
/// the protocol surface (test doubles, baseline-only messages).
std::optional<WireType> wire_type_of(const sim::Message& m);

/// Appends the full frame for `m` to `out`. Returns false (appending
/// nothing) when `m` has no wire type or no canonical encoding.
bool encode_message(const sim::Message& m, std::vector<std::uint8_t>& out);

/// Total decode of one frame. On success the message re-encodes to
/// byte-identical bytes; on failure `error` names the reason and offset.
DecodeResult decode_message(std::span<const std::uint8_t> bytes,
                            sim::MessagePool& pool);

}  // namespace ssps::wire
