// Wire-damage model for the timed network's corrupting links.
//
// CodecCorrupter implements sim::Corrupter through the real codec: the
// message is serialized with encode_message, the bytes are mangled, and
// the result goes through decode_message — so every corrupted send
// exercises the exact decode path a remote peer would run. Most manglings
// trip the frame checksum or a structural check and are rejected (the
// Network counts them under Metrics::total_rejected); one mode recomputes
// the CRC after scrambling the payload, so a fraction decodes into a
// valid-but-different message the protocol must stabilize around.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "wire/codec.hpp"

namespace ssps::wire {

/// Damages an encoded frame in place: bit flips, truncation, garbage
/// splice, or payload scramble with a recomputed (passing) checksum.
/// Every mode draws only from `rng`, so a fault schedule replays
/// deterministically. `bytes` may come back empty (full truncation).
void mangle(std::vector<std::uint8_t>& bytes, ssps::Rng& rng);

/// sim::Corrupter backed by the wire codec (see file comment).
class CodecCorrupter final : public sim::Corrupter {
 public:
  sim::PooledMsg corrupt(const sim::Message& m, sim::MessagePool& pool,
                         ssps::Rng& rng) override;

  /// Manglings that still decoded (delivered as a different message).
  std::uint64_t survived() const { return survived_; }
  /// Manglings the decoder caught, by DecodeStatus (dense index).
  const std::vector<std::uint64_t>& rejected_by_status() const {
    return rejected_by_status_;
  }

 private:
  std::uint64_t survived_ = 0;
  std::vector<std::uint64_t> rejected_by_status_ =
      std::vector<std::uint64_t>(8, 0);
  std::vector<std::uint8_t> scratch_;
};

}  // namespace ssps::wire
