#include "core/shortcuts.hpp"

#include <algorithm>

namespace ssps::core {

namespace {

/// Converts a mirror result back into a label. A zero value is the label
/// "0" (length 1); any other normalized dyadic num/2^e is the length-e
/// label with bits = num (odd num ⇒ the label ends in 1, i.e. canonical).
Label label_of_dyadic(const Dyadic& d) {
  if (d.is_zero()) return Label(0, 1);
  return Label(d.num, d.exp);
}

}  // namespace

std::vector<Label> mirror_chain(const Label& self, const Label& ring_neighbor) {
  std::vector<Label> chain;
  const Dyadic v = self.r();
  Dyadic w = ring_neighbor.r();
  if (w == v) return chain;  // corrupted duplicate position; nothing derivable
  int guard = Label::kMaxLen + 2;
  Label current = ring_neighbor;
  while (current.length() > self.length() && guard-- > 0) {
    const Dyadic s = mirror_mod1(w, v);
    if (s == v) break;  // mirrored onto ourselves: corrupted geometry
    current = label_of_dyadic(s);
    chain.push_back(current);
    w = s;
  }
  return chain;
}

std::vector<Label> expected_shortcut_labels(const Label& self,
                                            const std::optional<Label>& left_neighbor,
                                            const std::optional<Label>& right_neighbor) {
  std::vector<Label> out;
  if (left_neighbor) {
    auto chain = mirror_chain(self, *left_neighbor);
    out.insert(out.end(), chain.begin(), chain.end());
  }
  if (right_neighbor) {
    auto chain = mirror_chain(self, *right_neighbor);
    out.insert(out.end(), chain.begin(), chain.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Label level_k_partner(const Label& self, const Label& ring_neighbor) {
  const auto chain = mirror_chain(self, ring_neighbor);
  return chain.empty() ? ring_neighbor : chain.back();
}

}  // namespace ssps::core
