#include "core/subscriber.hpp"

#include <algorithm>

#include "core/shortcuts.hpp"

namespace ssps::core {

namespace {

/// Probability denominator of action (ii): request a configuration with
/// probability 1/(2^k · k²) where k = |label| (§3.2.1, Theorem 5).
/// Saturates for very long (necessarily corrupted) labels, for which the
/// probability is negligible anyway — those nodes are reached via actions
/// (iii)/(iv) instead, exactly the situation §3.2.1 discusses.
std::uint64_t action2_denominator(int k) {
  SSPS_ASSERT(k >= 1 && k <= Label::kMaxLen);
  if (k >= 50) return ~0ULL;
  const auto kk = static_cast<std::uint64_t>(k);
  return (1ULL << k) * kk * kk;
}

}  // namespace

SubscriberProtocol::SubscriberProtocol(sim::NodeId self, sim::NodeId supervisor,
                                       MessageSink& sink, ssps::Rng& rng)
    : self_(self), supervisor_(supervisor), sink_(&sink), rng_(&rng) {}

LabeledRef SubscriberProtocol::self_ref() const {
  SSPS_ASSERT(label_.has_value());
  return LabeledRef{*label_, self_};
}

// ---------------------------------------------------------------------------
// Timeout (Algorithm 4 + the Timeout parts of Algorithms 1–2)
// ---------------------------------------------------------------------------

void SubscriberProtocol::timeout() {
  if (phase_ == SubscriberPhase::kDeparted) return;

  // Supervisor contact (§3.2.1 / §4.1).
  if (phase_ == SubscriberPhase::kLeaving) {
    // Keep asking until the supervisor grants permission (SetData ⊥⊥⊥).
    sink_->emit<msg::Unsubscribe>(supervisor_, self_);
  } else if (!label_) {
    // Action (i): not yet labeled — subscribe.
    sink_->emit<msg::Subscribe>(supervisor_, self_);
  } else if (!left_) {
    // Action (iv): local information says our label may be minimal.
    if (rng_->chance(1, 2)) {
      sink_->emit<msg::GetConfiguration>(supervisor_, self_);
    }
  } else {
    // Action (ii): probabilistic refresh, rarer for longer labels.
    if (rng_->chance(1, action2_denominator(label_->length()))) {
      sink_->emit<msg::GetConfiguration>(supervisor_, self_);
    }
  }

  if (!label_) return;
  revalidate_sides();

  // BuildList self-introduction with label correction (Algorithm 1).
  const LabeledRef self = self_ref();
  if (left_) {
    sink_->emit<msg::Check>(left_->node, self, left_->label, IntroFlag::kLinear);
  }
  if (right_) {
    sink_->emit<msg::Check>(right_->node, self, right_->label, IntroFlag::kLinear);
  }

  // Ring-closure maintenance (Algorithm 2).
  if (left_ && right_ && ring_) {
    // An interior node must not hold a ring edge: re-linearize it.
    const LabeledRef stray = *ring_;
    ring_.reset();
    touch();
    consider_linear(stray);
  }
  if ((!left_ || !right_) && ring_) {
    send_check(*ring_, IntroFlag::kCyclic);
  }
  if (!left_ && !ring_ && right_) {
    // We believe we are the minimum but know no maximum: float our
    // reference towards the maximum along the right chain.
    sink_->emit<msg::Introduce>(right_->node, self_ref(), IntroFlag::kCyclic);
  }
  if (!right_ && !ring_ && left_) {
    sink_->emit<msg::Introduce>(left_->node, self_ref(), IntroFlag::kCyclic);
  }

  // Shortcut maintenance (§3.2.2).
  refresh_shortcuts();
  introduce_level_partners();
}

void SubscriberProtocol::send_check(const LabeledRef& to, IntroFlag flag) {
  sink_->emit<msg::Check>(to.node, self_ref(), to.label, flag);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

bool SubscriberProtocol::handle(const sim::Message& m) {
  // Ordered by steady-state traffic mix: the periodic maintenance load is
  // almost entirely Check + IntroduceShortcut pairs.
  if (const auto* c = sim::msg_cast<msg::Check>(m)) {
    on_check(*c);
    return true;
  }
  if (const auto* is = sim::msg_cast<msg::IntroduceShortcut>(m)) {
    on_introduce_shortcut(*is);
    return true;
  }
  if (const auto* i = sim::msg_cast<msg::Introduce>(m)) {
    on_introduce(*i);
    return true;
  }
  if (const auto* s = sim::msg_cast<msg::SetData>(m)) {
    on_set_data(*s);
    return true;
  }
  if (const auto* rc = sim::msg_cast<msg::RemoveConnections>(m)) {
    purge(rc->who);
    return true;
  }
  return false;
}

void SubscriberProtocol::request_unsubscribe() {
  if (phase_ != SubscriberPhase::kActive) return;
  phase_ = SubscriberPhase::kLeaving;
  touch();
  sink_->emit<msg::Unsubscribe>(supervisor_, self_);
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

void SubscriberProtocol::on_check(const msg::Check& m) {
  if (m.sender.node == self_) return;
  if (phase_ == SubscriberPhase::kDeparted || !label_) {
    // Lemma 6: a label-less node asks introducers to drop it.
    sink_->emit<msg::RemoveConnections>(m.sender.node, self_);
    return;
  }
  if (m.believed != *label_) {
    // Label correction (extended BuildRing, Lemma 4): tell the sender our
    // true label. The sender keeps its reference to us, so no edge is lost.
    sink_->emit<msg::Introduce>(m.sender.node, self_ref(), m.flag);
    return;
  }
  consider(m.sender, m.flag);
}

void SubscriberProtocol::on_introduce(const msg::Introduce& m) {
  consider(m.cand, m.flag);
}

void SubscriberProtocol::on_introduce_shortcut(const msg::IntroduceShortcut& m) {
  if (m.cand.node == self_) return;
  if (phase_ == SubscriberPhase::kDeparted || !label_) {
    sink_->emit<msg::RemoveConnections>(m.cand.node, self_);
    return;
  }
  if (sim::NodeId* slot = shortcuts_.slot(m.cand.label)) {
    // Expected label: adopt, re-linearizing any displaced reference
    // (Algorithm 4, IntroduceShortcut). The steady-state common case is a
    // re-introduction of the node already stored — no state change.
    const sim::NodeId old = *slot;
    if (old != m.cand.node) {
      *slot = m.cand.node;
      touch();
      if (old) consider_linear(LabeledRef{m.cand.label, old});
    }
    return;
  }
  // Unexpected label: the candidate still is a real node — linearize it.
  consider(m.cand, IntroFlag::kLinear);
}

void SubscriberProtocol::on_set_data(const msg::SetData& m) {
  if (!m.label) {
    // Eviction: unknown to the supervisor, or unsubscribe permission.
    if (phase_ == SubscriberPhase::kLeaving) phase_ = SubscriberPhase::kDeparted;
    label_.reset();
    left_.reset();
    right_.reset();
    ring_.reset();
    shortcuts_.clear();
    derived_.valid = false;
    touch();
    return;
  }
  if (phase_ == SubscriberPhase::kDeparted) {
    // A stale Subscribe of ours (channels are non-FIFO) may have been
    // processed after our departure, re-inserting us into the database.
    // Answer every re-integration attempt with a fresh Unsubscribe so the
    // supervisor forgets us again (the departed counterpart of Lemma 6).
    sink_->emit<msg::Unsubscribe>(supervisor_, self_);
    return;
  }

  // Action (iii) of §3.2.1: if a currently stored neighbor is at least as
  // close as the proposed one (and differs from it), it may be a node the
  // supervisor does not know yet — request its configuration.
  const Dyadic me = m.label->r();
  auto closer_unknown = [&](const std::optional<LabeledRef>& stored,
                            const std::optional<LabeledRef>& proposed) {
    if (!stored || stored->node == self_) return;
    if (proposed && proposed->node == stored->node) return;
    if (!proposed ||
        !(ring_distance(proposed->label.r(), me) < ring_distance(stored->label.r(), me))) {
      sink_->emit<msg::GetConfiguration>(supervisor_, stored->node, self_);
    }
  };
  // Match each local slot with the proposal on its side of the new label.
  // pred normally sits left of us; if it sits right, we are the minimum
  // and pred is the wraparound partner (the maximum) — symmetrically for
  // succ.
  const std::uint64_t me_key = m.label->r_key();
  std::optional<LabeledRef> prop_left;
  std::optional<LabeledRef> prop_right;
  std::optional<LabeledRef> prop_ring;
  if (m.pred && m.pred->label.r_key() != me_key) {
    (m.pred->label.r_key() < me_key ? prop_left : prop_ring) = m.pred;
  }
  if (m.succ && m.succ->label.r_key() != me_key) {
    (m.succ->label.r_key() > me_key ? prop_right : prop_ring) = m.succ;
  }
  closer_unknown(left_, prop_left);
  closer_unknown(right_, prop_right);
  closer_unknown(ring_, prop_ring);

  // Adopt the authoritative label, then merge the proposed neighbors
  // (trusted: a configuration comes from the supervisor's database).
  if (!label_ || !(*label_ == *m.label)) {
    label_ = *m.label;
    touch();
  }
  revalidate_sides();
  if (prop_left && prop_left->node != self_) consider_linear(*prop_left, /*trusted=*/true);
  if (prop_right && prop_right->node != self_) {
    consider_linear(*prop_right, /*trusted=*/true);
  }
  if (prop_ring && prop_ring->node != self_) consider_cyclic(*prop_ring, /*trusted=*/true);
}

// ---------------------------------------------------------------------------
// Linearization core
// ---------------------------------------------------------------------------

void SubscriberProtocol::consider(const LabeledRef& c, IntroFlag flag) {
  if (!c.node || c.node == self_) return;
  if (phase_ == SubscriberPhase::kDeparted || !label_) {
    sink_->emit<msg::RemoveConnections>(c.node, self_);
    return;
  }
  // Stale-label update for already-stored direct neighbors (Algorithm 1,
  // the labelv ≠ u.left case): correct the label, then re-home the entry.
  // The steady-state common case — candidate already stored under its
  // current label — changes nothing, so the side revalidation (a pure
  // recheck) only runs when a label was actually corrected.
  bool matched = false;
  bool corrected = false;
  for (auto* slot : {&left_, &right_, &ring_}) {
    if (*slot && (*slot)->node == c.node) {
      if ((*slot)->label != c.label) {
        (*slot)->label = c.label;
        touch();
        corrected = true;
      }
      matched = true;
    }
  }
  if (matched) {
    if (corrected) revalidate_sides();
    return;
  }
  if (c.label.r_key() == label_->r_key()) {
    conflict(c);
    return;
  }
  if (flag == IntroFlag::kCyclic) {
    consider_cyclic(c);
  } else {
    consider_linear(c);
  }
}

void SubscriberProtocol::conflict(const LabeledRef& c) {
  // Two distinct nodes claim the same position. The supervisor's database
  // is the authority (§3.1); ask it to straighten the other node out, and
  // to re-send our own configuration (whose merge resolves the conflict
  // on our side, trusted).
  sink_->emit<msg::GetConfiguration>(supervisor_, c.node, self_);
  sink_->emit<msg::GetConfiguration>(supervisor_, self_);
}

void SubscriberProtocol::consider_linear(const LabeledRef& c, bool trusted) {
  if (!c.node || c.node == self_ || !label_) return;
  // Positions compare via r_key(), the shift-only order-embedding of r().
  const std::uint64_t me = label_->r_key();
  const std::uint64_t pos = c.label.r_key();
  if (pos == me) {
    conflict(c);
    return;
  }
  auto place = [&](std::optional<LabeledRef>& slot, bool is_left) {
    if (!slot) {
      slot = c;
      touch();
      return;
    }
    if (slot->node == c.node) {
      if (slot->label != c.label) {
        slot->label = c.label;
        touch();
      }
      revalidate_sides();
      return;
    }
    const std::uint64_t cur = slot->label.r_key();
    if (pos == cur) {
      if (trusted) {
        // The supervisor vouches for c; the incumbent may be crashed and
        // silent. Adopt c and let the supervisor deal with the incumbent.
        const LabeledRef old = *slot;
        slot = c;
        touch();
        sink_->emit<msg::GetConfiguration>(supervisor_, old.node, self_);
      } else {
        conflict(c);
      }
      return;
    }
    const bool closer = is_left ? (pos > cur) : (pos < cur);
    if (closer) {
      // Adopt c; delegate the displaced (farther) neighbor to c, which
      // lies between it and us.
      const LabeledRef displaced = *slot;
      slot = c;
      touch();
      sink_->emit<msg::Introduce>(c.node, displaced, IntroFlag::kLinear);
    } else {
      // c is farther out: delegate it towards that side.
      sink_->emit<msg::Introduce>(slot->node, c, IntroFlag::kLinear);
    }
  };
  if (pos < me) {
    place(left_, /*is_left=*/true);
  } else {
    place(right_, /*is_left=*/false);
  }
}

void SubscriberProtocol::consider_cyclic(const LabeledRef& c, bool trusted) {
  if (!c.node || c.node == self_ || !label_) return;
  const std::uint64_t me = label_->r_key();
  const std::uint64_t pos = c.label.r_key();
  if (pos == me) {
    conflict(c);
    return;
  }
  const bool candidate_is_smaller = pos < me;
  // Extremum holders adopt the best partner; interior nodes route the
  // candidate onwards (Algorithm 2): smaller-labelled candidates travel
  // right (towards the maximum), larger ones left (towards the minimum).
  const bool i_am_max = !right_;
  const bool i_am_min = !left_;
  auto adopt_extreme = [&](bool keep_smaller) {
    if (!ring_) {
      ring_ = c;
      touch();
      return;
    }
    if (ring_->node == c.node) {
      if (ring_->label != c.label) {
        ring_->label = c.label;
        touch();
      }
      revalidate_sides();
      return;
    }
    if (pos == ring_->label.r_key()) {
      if (trusted) {
        const LabeledRef old = *ring_;
        ring_ = c;
        touch();
        sink_->emit<msg::GetConfiguration>(supervisor_, old.node, self_);
      } else {
        conflict(c);
      }
      return;
    }
    const bool better =
        keep_smaller ? (pos < ring_->label.r_key()) : (pos > ring_->label.r_key());
    if (better) {
      // Better extremum partner: keep it, re-linearize the loser.
      const LabeledRef loser = *ring_;
      ring_ = c;
      touch();
      consider_linear(loser);
    } else {
      consider_linear(c);
    }
  };
  if (candidate_is_smaller && i_am_max) {
    adopt_extreme(/*keep_smaller=*/true);
    return;
  }
  if (!candidate_is_smaller && i_am_min) {
    adopt_extreme(/*keep_smaller=*/false);
    return;
  }
  // Interior (w.r.t. this candidate's direction): route towards the
  // extremum the candidate is looking for.
  if (candidate_is_smaller && right_) {
    sink_->emit<msg::Introduce>(right_->node, c, IntroFlag::kCyclic);
    return;
  }
  if (!candidate_is_smaller && left_) {
    sink_->emit<msg::Introduce>(left_->node, c, IntroFlag::kCyclic);
    return;
  }
  // No suitable chain to route along: fall back to linearization so the
  // reference is never dropped.
  consider_linear(c);
}

void SubscriberProtocol::revalidate_sides() {
  if (!label_) return;
  bool changed = false;
  // Self-references are meaningless edges and — because a node ignores
  // introductions from itself — would never be corrected: drop them
  // outright (they only arise in corrupted initial states).
  for (auto* slot : {&left_, &right_, &ring_}) {
    if (*slot && (*slot)->node == self_) {
      slot->reset();
      changed = true;
    }
  }
  const std::uint64_t me = label_->r_key();
  // Pop any neighbor that sits on the wrong side of our (possibly new)
  // label and feed it back through placement. Each entry is re-homed at
  // most once per call, so this terminates.
  std::vector<LabeledRef> rehome;
  if (left_ && !(left_->label.r_key() < me)) {
    rehome.push_back(*left_);
    left_.reset();
    changed = true;
  }
  if (right_ && !(right_->label.r_key() > me)) {
    rehome.push_back(*right_);
    right_.reset();
    changed = true;
  }
  if (ring_) {
    const bool valid_for_min = !left_ && ring_->label.r_key() > me;
    const bool valid_for_max = !right_ && ring_->label.r_key() < me;
    if (!(valid_for_min || valid_for_max)) {
      rehome.push_back(*ring_);
      ring_.reset();
      changed = true;
    }
  }
  if (changed) touch();
  for (const LabeledRef& c : rehome) {
    if (c.label.r_key() == me) {
      conflict(c);
    } else {
      consider_linear(c);
    }
  }
}

void SubscriberProtocol::purge(sim::NodeId who) {
  bool changed = false;
  for (auto* slot : {&left_, &right_, &ring_}) {
    if (*slot && (*slot)->node == who) {
      slot->reset();
      changed = true;
    }
  }
  for (auto& [lab, node] : shortcuts_) {
    if (node == who) {
      node = sim::NodeId::null();
      changed = true;
    }
  }
  if (changed) touch();
}

// ---------------------------------------------------------------------------
// Shortcut maintenance (§3.2.2)
// ---------------------------------------------------------------------------

std::optional<LabeledRef> SubscriberProtocol::side_source_ref(bool left_side) const {
  if (!label_) return std::nullopt;
  const std::uint64_t me = label_->r_key();
  if (left_side) {
    if (left_) return left_;
    if (ring_ && ring_->label.r_key() > me) return ring_;  // min: predecessor = max
    return std::nullopt;
  }
  if (right_) return right_;
  if (ring_ && ring_->label.r_key() < me) return ring_;  // max: successor = min
  return std::nullopt;
}

std::optional<Label> SubscriberProtocol::side_source_label(bool left_side) const {
  // Mirrors side_source_ref without materializing the 40-byte LabeledRef
  // optional — this runs several times per Timeout.
  if (!label_) return std::nullopt;
  if (left_side) {
    if (left_) return left_->label;
    if (ring_ && ring_->label.r_key() > label_->r_key()) return ring_->label;
    return std::nullopt;
  }
  if (right_) return right_->label;
  if (ring_ && ring_->label.r_key() < label_->r_key()) return ring_->label;
  return std::nullopt;
}

bool SubscriberProtocol::ensure_derived_cache() const {
  SSPS_ASSERT(label_.has_value());
  const std::optional<Label> left_src = side_source_label(true);
  const std::optional<Label> right_src = side_source_label(false);
  if (derived_.valid && derived_.self == *label_ && derived_.left == left_src &&
      derived_.right == right_src) {
    return false;  // cache hit: the derived labels are unchanged
  }
  derived_.self = *label_;
  derived_.left = left_src;
  derived_.right = right_src;
  derived_.expected = expected_shortcut_labels(*label_, left_src, right_src);
  derived_.partner_left =
      left_src ? std::optional<Label>(level_k_partner(*label_, *left_src))
               : std::nullopt;
  derived_.partner_right =
      right_src ? std::optional<Label>(level_k_partner(*label_, *right_src))
                : std::nullopt;
  auto index_of = [&](const std::optional<Label>& partner) -> std::int32_t {
    if (!partner) return -1;
    const auto it = std::lower_bound(derived_.expected.begin(),
                                     derived_.expected.end(), *partner);
    if (it == derived_.expected.end() || !(*it == *partner)) return -1;
    return static_cast<std::int32_t>(it - derived_.expected.begin());
  };
  derived_.partner_index_left = index_of(derived_.partner_left);
  derived_.partner_index_right = index_of(derived_.partner_right);
  derived_.valid = true;
  derived_.table_synced = false;
  return true;
}

void SubscriberProtocol::refresh_shortcuts() {
  if (!label_) {
    if (!shortcuts_.empty()) {
      shortcuts_.clear();
      touch();
    }
    derived_.valid = false;
    return;
  }
  // In a converged system the label and both neighbor labels are stable,
  // so this is one cache-key compare per Timeout — no allocation, no
  // mirror arithmetic, no table rebuild.
  ensure_derived_cache();
  if (derived_.table_synced) return;

  // Expected labels changed (or chaos touched the table): rebuild the
  // table against the cached expectation, keeping known references.
  std::vector<ShortcutTable::value_type> next;
  next.reserve(derived_.expected.size());
  for (const Label& l : derived_.expected) {
    auto it = shortcuts_.find(l);
    const sim::NodeId kept =
        (it == shortcuts_.end() || it->second == self_) ? sim::NodeId::null()
                                                        : it->second;
    next.emplace_back(l, kept);
  }
  // Evicted references re-enter the sorted ring instead of being dropped.
  std::vector<LabeledRef> evicted;
  for (const auto& [lab, node] : shortcuts_) {
    if (node && !std::binary_search(derived_.expected.begin(),
                                    derived_.expected.end(), lab)) {
      evicted.push_back(LabeledRef{lab, node});
    }
  }
  shortcuts_.assign_sorted(std::move(next));
  derived_.table_synced = true;
  touch();
  // Re-linearize evictions last: they can touch left_/right_ and thereby
  // stale the cache again; the next Timeout's key compare catches that.
  for (const LabeledRef& c : evicted) consider(c, IntroFlag::kLinear);
}

std::optional<LabeledRef> SubscriberProtocol::partner_ref(bool left_side) const {
  const auto src = side_source_ref(left_side);
  if (!src || !label_) return std::nullopt;
  // Caller guarantees a fresh derived cache (see introduce_level_partners).
  const std::optional<Label>& partner =
      left_side ? derived_.partner_left : derived_.partner_right;
  if (!partner) return std::nullopt;
  if (*partner == src->label) return src;  // chain empty: partner is the neighbor
  const std::int32_t index =
      left_side ? derived_.partner_index_left : derived_.partner_index_right;
  sim::NodeId node;
  if (derived_.table_synced && index >= 0) {
    // Table keys match `expected`, so the cached sorted position resolves
    // the partner without a search.
    node = shortcuts_.entry(static_cast<std::size_t>(index)).second;
  } else {
    auto it = shortcuts_.find(*partner);
    if (it == shortcuts_.end()) return std::nullopt;
    node = it->second;
  }
  if (!node) return std::nullopt;
  return LabeledRef{*partner, node};
}

void SubscriberProtocol::introduce_level_partners() {
  if (!label_) return;
  // One cache refresh covers both sides; refresh_shortcuts usually just
  // validated it, but its eviction re-linearization may have moved a
  // side, so re-ensure before deriving the partner labels.
  ensure_derived_cache();
  const auto lp = partner_ref(true);
  const auto rp = partner_ref(false);
  if (!lp || !rp) return;
  if (lp->node == rp->node || lp->node == self_ || rp->node == self_) return;
  sink_->emit<msg::IntroduceShortcut>(lp->node, *rp);
  sink_->emit<msg::IntroduceShortcut>(rp->node, *lp);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<sim::NodeId> SubscriberProtocol::ring_neighbors() const {
  std::array<sim::NodeId, 3> buf;
  const std::size_t n = ring_neighbors_into(buf);
  return std::vector<sim::NodeId>(buf.begin(), buf.begin() + n);
}

std::size_t SubscriberProtocol::ring_neighbors_into(
    std::array<sim::NodeId, 3>& out) const {
  std::size_t n = 0;
  for (const auto* slot : {&left_, &right_, &ring_}) {
    if (*slot && (*slot)->node && (*slot)->node != self_) out[n++] = (*slot)->node;
  }
  std::sort(out.begin(), out.begin() + n);
  return static_cast<std::size_t>(std::unique(out.begin(), out.begin() + n) -
                                  out.begin());
}

std::vector<sim::NodeId> SubscriberProtocol::overlay_neighbors() const {
  std::vector<sim::NodeId> out = ring_neighbors();
  for (const auto& [lab, node] : shortcuts_) {
    if (node && node != self_) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SubscriberProtocol::collect_refs(std::vector<sim::NodeId>& out) const {
  for (const auto* slot : {&left_, &right_, &ring_}) {
    if (*slot && (*slot)->node) out.push_back((*slot)->node);
  }
  for (const auto& [lab, node] : shortcuts_) {
    if (node) out.push_back(node);
  }
}

void SubscriberProtocol::encode_state(common::Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(phase_));
  enc.optional(label_, encode_label);
  enc.optional(left_, encode_ref);
  enc.optional(right_, encode_ref);
  enc.optional(ring_, encode_ref);
  // The table is sorted by label, so pair order is already canonical.
  enc.u64(shortcuts_.size());
  for (const auto& [label, node] : shortcuts_) {
    encode_label(enc, label);
    enc.u64(node.value);
  }
}

bool SubscriberProtocol::decode_state(common::Decoder& dec) {
  std::uint8_t phase = 0;
  std::optional<Label> label;
  std::optional<LabeledRef> left, right, ring;
  if (!dec.u8(phase) || phase > 2) return false;
  if (!dec.optional(label, decode_label) || !dec.optional(left, decode_ref) ||
      !dec.optional(right, decode_ref) || !dec.optional(ring, decode_ref)) {
    return false;
  }
  std::uint64_t count = 0;
  if (!dec.u64(count)) return false;
  // Label (9 bytes) + node (8 bytes) per entry: bound the declared count
  // by the remaining input before reserving.
  if (count > dec.remaining() / 17) return false;
  std::vector<ShortcutTable::value_type> table;
  table.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Label key;
    std::uint64_t node = 0;
    if (!decode_label(dec, key) || !dec.u64(node)) return false;
    // Canonical form: strictly ascending keys (the table's sort order).
    if (!table.empty() && !(table.back().first < key)) return false;
    table.emplace_back(key, sim::NodeId{node});
  }
  phase_ = static_cast<SubscriberPhase>(phase);
  label_ = label;
  left_ = left;
  right_ = right;
  ring_ = ring;
  shortcuts_.assign_sorted(std::move(table));
  derived_.valid = false;
  touch();
  return true;
}

}  // namespace ssps::core
