#include "core/supervisor.hpp"

#include <algorithm>

namespace ssps::core {

SupervisorProtocol::SupervisorProtocol(sim::NodeId self, MessageSink& sink)
    : self_(self), sink_(&sink) {}

// ---------------------------------------------------------------------------
// Reverse index upkeep
// ---------------------------------------------------------------------------

void SupervisorProtocol::index_add(sim::NodeId node, const Label& label) {
  if (!node) return;
  index_[node].push_back(label);
}

void SupervisorProtocol::index_remove(sim::NodeId node, const Label& label) {
  if (!node) return;
  auto it = index_.find(node);
  if (it == index_.end()) return;
  auto& labels = it->second;
  labels.erase(std::remove(labels.begin(), labels.end(), label), labels.end());
  if (labels.empty()) index_.erase(it);
}

// ---------------------------------------------------------------------------
// Timeout (Algorithm 3)
// ---------------------------------------------------------------------------

void SupervisorProtocol::timeout() {
  check_labels();
  if (db_.empty()) return;
  next_ = (next_ + 1) % db_.size();
  // After check_labels the keys are exactly {l(0) … l(n−1)}.
  auto it = db_.find(Label::from_index(next_));
  if (it == db_.end()) return;  // only reachable mid-repair with chaos active
  // GetConfiguration path, including the duplicate sweep (Alg. 3 line 5).
  on_get_configuration(it->second);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

bool SupervisorProtocol::handle(const sim::Message& m) {
  if (const auto* s = sim::msg_cast<msg::Subscribe>(m)) {
    on_subscribe(s->who);
    return true;
  }
  if (const auto* u = sim::msg_cast<msg::Unsubscribe>(m)) {
    on_unsubscribe(u->who);
    return true;
  }
  if (const auto* g = sim::msg_cast<msg::GetConfiguration>(m)) {
    on_get_configuration(g->subject, g->requester);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Database repair (§3.1)
// ---------------------------------------------------------------------------

void SupervisorProtocol::check_labels() {
  // §3.3: evict subscribers the failure detector reports as crashed. The
  // eviction punches holes that the relabeling below repairs in the same
  // sweep. Crashes are consumed from the detector's log exactly once
  // (cursor): each newly-visible crash costs one O(1) index lookup, and a
  // call with no news costs a bounds check — the database itself is only
  // re-swept on the dirty path below, where a dead node may have re-entered
  // through a stale Subscribe or chaos injection.
  if (fd_ != nullptr) {
    const std::size_t visible = fd_->visible_crash_count();
    if (crash_cursor_ > visible) {
      // The detector's delay was raised: crashes the cursor already
      // consumed are temporarily invisible again, and a tuple for such a
      // node can re-enter while it is unsuspected (stale Subscribe,
      // chaos injection) without marking the labels dirty. Rewind so
      // each of those crashes is consumed again when it becomes visible
      // — restoring the pre-cursor full sweep's eventual-eviction
      // guarantee under detector retuning. Re-consuming a crash whose
      // tuples are already gone is a no-op (evict() is idempotent), so
      // runs that never re-admit a dead node keep their exact traces.
      crash_cursor_ = visible;
    }
    for (; crash_cursor_ < visible; ++crash_cursor_) {
      const sim::NodeId gone = fd_->visible_crash(crash_cursor_);
      // A crash-log entry is history, not a death sentence: the node may
      // have been recovered (Network::recover) by the time its entry
      // becomes visible. suspects() is the authority — never true for
      // alive nodes — so a recovered subscriber's tuple survives.
      if (fd_->suspects(gone)) evict(gone);
    }
  }
  if (labels_clean_) return;

  if (fd_ != nullptr) {
    // Dirty re-sweep: tuples inserted for already-dead nodes since the
    // cursor passed them (their insertion marked the labels dirty).
    for (auto it = db_.begin(); it != db_.end();) {
      if (it->second && fd_->suspects(it->second)) {
        index_remove(it->second, it->first);
        it = db_.erase(it);
        ++db_version_;
      } else {
        ++it;
      }
    }
  }

  // Case (i): drop tuples without a subscriber.
  for (auto it = db_.begin(); it != db_.end();) {
    if (!it->second) {
      it = db_.erase(it);
      ++db_version_;
    } else {
      ++it;
    }
  }

  // Cases (iii)/(iv): the n remaining tuples must carry exactly the labels
  // l(0) … l(n−1). Wrongly-labeled tuples (non-canonical, or index ≥ n)
  // fill the missing indices; per Algorithm 3 the tuple with the largest
  // index moves to the smallest missing one.
  const std::size_t n = db_.size();
  std::vector<std::uint64_t> missing;
  std::vector<std::pair<Label, sim::NodeId>> wrong;  // to be relabeled
  for (const auto& [label, node] : db_) {
    if (!label.is_canonical() || label.to_index() >= n) wrong.emplace_back(label, node);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!db_.contains(Label::from_index(i))) missing.push_back(i);
  }
  SSPS_ASSERT(missing.size() == wrong.size());
  // Largest owned index first. Canonical labels order by index along r?
  // They do not — so order explicitly by index, with non-canonical labels
  // ranked above all canonical ones (they are "i ≥ n" junk either way).
  std::sort(wrong.begin(), wrong.end(), [](const auto& a, const auto& b) {
    const bool ca = a.first.is_canonical();
    const bool cb = b.first.is_canonical();
    if (ca != cb) return !ca && cb;  // non-canonical first (treated as largest)
    if (!ca) return b.first < a.first;
    return a.first.to_index() > b.first.to_index();
  });
  for (std::size_t j = 0; j < wrong.size(); ++j) {
    const auto& [old_label, node] = wrong[j];
    db_.erase(old_label);
    index_remove(node, old_label);
    const Label fresh = Label::from_index(missing[j]);
    db_.emplace(fresh, node);
    index_add(node, fresh);
    ++db_version_;
  }
  labels_clean_ = true;
}

void SupervisorProtocol::evict(sim::NodeId dead) {
  auto it = index_.find(dead);
  if (it == index_.end()) return;
  // Copy: index_remove edits the vector we would be iterating.
  const std::vector<Label> labels = it->second;
  for (const Label& label : labels) {
    db_.erase(label);
    index_remove(dead, label);
    ++db_version_;
  }
  labels_clean_ = false;  // the eviction punched label holes
}

void SupervisorProtocol::check_multiple_copies(sim::NodeId who) {
  auto it = index_.find(who);
  if (it == index_.end() || it->second.size() <= 1) return;
  // Keep the lowest label (§3.1 case (ii)), drop the rest.
  std::vector<Label> labels = it->second;
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    db_.erase(labels[i]);
    index_remove(who, labels[i]);
    ++db_version_;
  }
  labels_clean_ = false;  // dropping tuples leaves label holes
  check_labels();
}

bool SupervisorProtocol::database_consistent() const {
  std::size_t i = 0;
  for (const auto& [label, node] : db_) {
    if (!node) return false;
    if (!label.is_canonical()) return false;
    auto it = index_.find(node);
    if (it == index_.end() || it->second.size() != 1) return false;
    ++i;
  }
  for (std::uint64_t j = 0; j < db_.size(); ++j) {
    if (!db_.contains(Label::from_index(j))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Configuration handling
// ---------------------------------------------------------------------------

std::optional<LabeledRef> SupervisorProtocol::pred_of(const Label& label) const {
  if (db_.size() < 2) return std::nullopt;
  auto it = db_.find(label);
  SSPS_ASSERT(it != db_.end());
  auto pit = (it == db_.begin()) ? std::prev(db_.end()) : std::prev(it);
  return LabeledRef{pit->first, pit->second};
}

std::optional<LabeledRef> SupervisorProtocol::succ_of(const Label& label) const {
  if (db_.size() < 2) return std::nullopt;
  auto it = db_.find(label);
  SSPS_ASSERT(it != db_.end());
  auto sit = std::next(it);
  if (sit == db_.end()) sit = db_.begin();
  return LabeledRef{sit->first, sit->second};
}

void SupervisorProtocol::send_configuration(
    std::map<Label, sim::NodeId>::const_iterator it) {
  sink_->emit<msg::SetData>(it->second, pred_of(it->first), it->first,
                            succ_of(it->first));
}

void SupervisorProtocol::on_get_configuration(sim::NodeId subject,
                                              sim::NodeId requester) {
  if (!subject) return;
  // §3.3: the supervisor holds the system's only failure detector. A
  // request about a crashed node is answered by telling the requester to
  // purge it — otherwise a dead neighbor with a plausible stale label
  // could be referenced forever (messages to it invoke no action).
  if (fd_ != nullptr && fd_->suspects(subject)) {
    if (auto idx = index_.find(subject); idx != index_.end()) {
      labels_clean_ = false;  // eviction handled by the next repair sweep
      check_labels();
    }
    if (requester && requester != subject) {
      sink_->emit<msg::RemoveConnections>(requester, subject);
    }
    return;
  }
  check_multiple_copies(subject);
  auto idx = index_.find(subject);
  if (idx == index_.end()) {
    // Unknown node (Alg. 3 line 30): evict it; it will re-subscribe.
    sink_->emit<msg::SetData>(subject, std::nullopt, std::nullopt, std::nullopt);
    return;
  }
  SSPS_ASSERT(idx->second.size() == 1);
  send_configuration(db_.find(idx->second.front()));
}

void SupervisorProtocol::on_subscribe(sim::NodeId who) {
  if (!who) return;
  if (index_.contains(who)) {
    // Already recorded: just resend its configuration (Alg. 3 line 12).
    on_get_configuration(who);
    return;
  }
  check_labels();  // l(n) must be free before appending
  const Label label = Label::from_index(db_.size());
  db_.emplace(label, who);
  index_add(who, label);
  ++db_version_;
  if (fd_ != nullptr && fd_->suspects(who)) {
    // A stale Subscribe from an already-dead node: the crash-log cursor has
    // passed it, so flag the labels dirty — the next check_labels re-sweep
    // evicts it (the same round the old full sweep would have).
    labels_clean_ = false;
  }
  send_configuration(db_.find(label));
}

void SupervisorProtocol::on_unsubscribe(sim::NodeId who) {
  if (!who) return;
  check_multiple_copies(who);
  if (!index_.contains(who)) {
    // Not recorded (repeat request after removal): grant permission anyway
    // so the subscriber can shut down (idempotence).
    sink_->emit<msg::SetData>(who, std::nullopt, std::nullopt, std::nullopt);
    return;
  }
  // check_labels() may relabel `who` while repairing a corrupted database,
  // rewriting its index entry — or evict it outright when the failure
  // detector already suspects it (a crashed node whose Unsubscribe was
  // still queued). Look the labels up only afterwards; an evicted node
  // gets the idempotent permission reply.
  check_labels();
  auto idx = index_.find(who);
  if (idx == index_.end()) {
    sink_->emit<msg::SetData>(who, std::nullopt, std::nullopt, std::nullopt);
    return;
  }
  const Label leaving_label = idx->second.front();
  const std::size_t n = db_.size();
  const Label last = Label::from_index(n - 1);
  db_.erase(leaving_label);
  index_remove(who, leaving_label);
  ++db_version_;
  if (n > 1 && leaving_label != last) {
    // Move the highest-labeled subscriber into the hole (§4.1) and tell it
    // — the only other message this operation costs (Theorem 7).
    auto lit = db_.find(last);
    SSPS_ASSERT(lit != db_.end());
    const sim::NodeId w = lit->second;
    db_.erase(lit);
    index_remove(w, last);
    db_.emplace(leaving_label, w);
    index_add(w, leaving_label);
    ++db_version_;
    send_configuration(db_.find(leaving_label));
  }
  // Permission to depart (Lemma 6).
  sink_->emit<msg::SetData>(who, std::nullopt, std::nullopt, std::nullopt);
}

// ---------------------------------------------------------------------------
// Introspection / chaos
// ---------------------------------------------------------------------------

std::optional<Label> SupervisorProtocol::label_of(sim::NodeId node) const {
  auto it = index_.find(node);
  if (it == index_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

void SupervisorProtocol::collect_refs(std::vector<sim::NodeId>& out) const {
  for (const auto& [label, node] : db_) {
    if (node) out.push_back(node);
  }
}

void SupervisorProtocol::chaos_insert(const Label& label, sim::NodeId node) {
  auto existing = db_.find(label);
  if (existing != db_.end()) index_remove(existing->second, label);
  db_.insert_or_assign(label, node);
  index_add(node, label);
  labels_clean_ = false;
  ++db_version_;
}

void SupervisorProtocol::chaos_insert_null(const Label& label) {
  auto existing = db_.find(label);
  if (existing != db_.end()) index_remove(existing->second, label);
  db_.insert_or_assign(label, sim::NodeId::null());
  labels_clean_ = false;
  ++db_version_;
}

void SupervisorProtocol::chaos_clear() {
  db_.clear();
  index_.clear();
  labels_clean_ = false;
  ++db_version_;
}

void SupervisorProtocol::encode_state(common::Encoder& enc) const {
  // std::map iterates in label order — already canonical. The reverse
  // index is pure memoization of db_ and is not encoded.
  enc.u64(db_.size());
  for (const auto& [label, node] : db_) {
    encode_label(enc, label);
    enc.u64(node.value);
  }
  enc.u64(next_);
  enc.u8(labels_clean_ ? 1 : 0);
  enc.u64(crash_cursor_);
}

bool SupervisorProtocol::decode_state(common::Decoder& dec) {
  std::uint64_t count = 0;
  if (!dec.u64(count)) return false;
  // Each tuple costs at least 17 bytes (label = u64 bits + u8 len, node =
  // u64): bound the declared count by the remaining input before building
  // anything, so a corrupted count cannot balloon memory.
  if (count > dec.remaining() / 17) return false;
  std::map<Label, sim::NodeId> db;
  for (std::uint64_t i = 0; i < count; ++i) {
    Label label;
    std::uint64_t node = 0;
    if (!decode_label(dec, label) || !dec.u64(node)) return false;
    // Canonical form is std::map iteration order: strictly ascending keys.
    if (!db.empty() && !(db.rbegin()->first < label)) return false;
    db.emplace_hint(db.end(), label, sim::NodeId{node});
  }
  std::uint64_t next = 0;
  std::uint8_t clean = 0;
  std::uint64_t cursor = 0;
  if (!dec.u64(next) || !dec.u8(clean) || clean > 1 || !dec.u64(cursor)) {
    return false;
  }
  db_ = std::move(db);
  index_.clear();
  for (const auto& [label, node] : db_) index_add(node, label);
  next_ = next;
  // Stale-snapshot safety: whatever cleanliness the snapshot claimed,
  // force the full dirty re-sweep — subscribers may have crashed while
  // this supervisor was down, with their crash-log entries already
  // consumed by the pre-crash cursor. (A corrupted-huge cursor is clamped
  // by check_labels' rewind.)
  labels_clean_ = false;
  crash_cursor_ = static_cast<std::size_t>(cursor);
  ++db_version_;
  return true;
}

}  // namespace ssps::core
