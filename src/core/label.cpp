#include "core/label.hpp"

#include <bit>

namespace ssps::core {

Label::Label(std::uint64_t bits, int len) : bits_(bits), len_(len) {
  SSPS_ASSERT(len >= 1 && len <= kMaxLen);
  SSPS_ASSERT_MSG(len == 64 || bits < (1ULL << len), "Label: bits wider than len");
}

Label Label::from_index(std::uint64_t x) {
  if (x == 0) return Label(0, 1);
  // d = index of the leading bit; binary rep is (x_d … x_0).
  const int d = 63 - std::countl_zero(x);
  SSPS_ASSERT(d + 1 <= kMaxLen);
  // Rotate leading bit to the units place: (x_{d−1} … x_0 x_d) = the low d
  // bits shifted up by one, with a 1 appended.
  const std::uint64_t low = x - (1ULL << d);
  return Label((low << 1) | 1ULL, d + 1);
}

std::optional<Label> Label::parse(const std::string& s) {
  if (s.empty() || s.size() > static_cast<std::size_t>(kMaxLen)) return std::nullopt;
  std::uint64_t bits = 0;
  for (char c : s) {
    if (c != '0' && c != '1') return std::nullopt;
    bits = (bits << 1) | static_cast<std::uint64_t>(c == '1');
  }
  return Label(bits, static_cast<int>(s.size()));
}

std::uint64_t Label::to_index() const {
  SSPS_ASSERT_MSG(is_canonical(), "to_index on non-canonical label");
  if (len_ == 1) return bits_;  // "0" -> 0, "1" -> 1
  // Invert the rotation: leading bit was 1 and sits in the units place.
  const int d = len_ - 1;
  return (1ULL << d) + (bits_ >> 1);
}

bool Label::is_canonical() const {
  if (len_ == 1) return true;
  return (bits_ & 1ULL) == 1ULL;
}

std::string Label::to_string() const {
  std::string s(static_cast<std::size_t>(len_), '0');
  for (int i = 0; i < len_; ++i) {
    if ((bits_ >> (len_ - 1 - i)) & 1ULL) s[static_cast<std::size_t>(i)] = '1';
  }
  return s;
}

}  // namespace ssps::core
