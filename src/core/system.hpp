// Single-topic system harness: wires one supervisor and its subscribers
// into a sim::Network and provides legitimacy checking against SR(n).
//
// This is the primary entry point for tests, benches and examples that
// exercise the overlay layer on its own (topic multiplexing lives in
// src/pubsub/topics.hpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/skip_ring_spec.hpp"
#include "core/subscriber.hpp"
#include "core/supervisor.hpp"
#include "sim/failure_detector.hpp"
#include "sim/network.hpp"

namespace ssps::core {

/// sim::Node adapter that forwards directly into a protocol object.
/// Messages are sent verbatim (no topic envelope).
class DirectSink final : public MessageSink {
 public:
  explicit DirectSink(sim::Network& net) : net_(&net) {}
  void send(sim::NodeId to, sim::PooledMsg msg) override {
    net_->send(to, std::move(msg));
  }
  sim::MessagePool& pool() override { return net_->pool(); }

 private:
  sim::Network* net_;
};

/// A network node running exactly one SubscriberProtocol instance.
class SubscriberNode : public sim::Node {
 public:
  explicit SubscriberNode(sim::NodeId supervisor)
      : SubscriberNode(supervisor, sim::NodeKind::kSubscriber) {}

  static bool classof(sim::NodeKind k) {
    // Every kind whose node IS-A SubscriberNode: the plain overlay node,
    // the pub-sub specialization, and baseline/antientropy's gossip node.
    return k == sim::NodeKind::kSubscriber || k == sim::NodeKind::kPubSub ||
           k == sim::NodeKind::kGossipPeer;
  }

  void handle(sim::PooledMsg msg) override { proto_->handle(*msg); }
  void timeout() override { proto_->timeout(); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    if (proto_) proto_->collect_refs(out);
  }
  void on_register() override {
    sink_.emplace(net());
    proto_.emplace(id(), supervisor_, *sink_, rng());
  }

  SubscriberProtocol& protocol() { return *proto_; }
  const SubscriberProtocol& protocol() const { return *proto_; }

 protected:
  SubscriberNode(sim::NodeId supervisor, sim::NodeKind kind)
      : sim::Node(kind), supervisor_(supervisor) {}

 private:
  sim::NodeId supervisor_;
  // Embedded by value (not unique_ptr): protocol state lives inside the
  // node object, one cache-local block per node.
  std::optional<DirectSink> sink_;
  std::optional<SubscriberProtocol> proto_;
};

/// A network node running exactly one SupervisorProtocol instance.
class SupervisorNode : public sim::Node {
 public:
  SupervisorNode() : sim::Node(sim::NodeKind::kSupervisor) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kSupervisor; }

  void handle(sim::PooledMsg msg) override { proto_->handle(*msg); }
  void timeout() override { proto_->timeout(); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    if (proto_) proto_->collect_refs(out);
  }
  void on_register() override {
    sink_.emplace(net());
    proto_.emplace(id(), *sink_);
  }

  SupervisorProtocol& protocol() { return *proto_; }
  const SupervisorProtocol& protocol() const { return *proto_; }

 private:
  std::optional<DirectSink> sink_;
  std::optional<SupervisorProtocol> proto_;
};

/// One supervised skip ring: supervisor + subscribers + failure detector.
class SkipRingSystem {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Failure-detector delay in rounds (0 = perfect detector).
    sim::Round fd_delay = 0;
  };

  SkipRingSystem() : SkipRingSystem(Options{}) {}
  explicit SkipRingSystem(const Options& options);

  sim::Network& net() { return net_; }
  const sim::Network& net() const { return net_; }

  sim::NodeId supervisor_id() const { return supervisor_id_; }
  SupervisorProtocol& supervisor();
  const SupervisorProtocol& supervisor() const;

  /// The supervisor's failure detector; scenarios retune its delay mid-run
  /// to model degrading/improving crash detection.
  sim::FailureDetector& failure_detector() { return *fd_; }
  const sim::FailureDetector& failure_detector() const { return *fd_; }

  /// Spawns a fresh subscriber node; it subscribes on its first Timeout.
  sim::NodeId add_subscriber();

  /// Spawns `count` subscribers; returns their ids.
  std::vector<sim::NodeId> add_subscribers(std::size_t count);

  SubscriberProtocol& subscriber(sim::NodeId id);
  const SubscriberProtocol& subscriber(sim::NodeId id) const;

  /// All alive subscriber ids (excluding the supervisor), in id order.
  std::vector<sim::NodeId> subscriber_ids() const;

  /// Alive subscribers that are active members (not leaving/departed) —
  /// the set the database must converge to.
  std::vector<sim::NodeId> active_ids() const;

  void request_unsubscribe(sim::NodeId id);
  void crash(sim::NodeId id);

  /// Full legitimacy check: database consistent and matching the active
  /// set, every subscriber holding its database label, and every explicit
  /// edge equal to the SR(n) spec.
  bool topology_legit() const;

  /// Human-readable first violation ("" when legitimate). For diagnostics
  /// in tests.
  std::string legitimacy_violation() const;

  /// Convenience: run rounds until topology_legit() or max_rounds; returns
  /// rounds used (nullopt = did not converge).
  std::optional<std::size_t> run_until_legit(std::size_t max_rounds);

  /// Graphviz rendering of the current overlay (ring edges black,
  /// shortcuts green); see src/sim/trace.hpp.
  std::string to_dot() const;

 private:
  sim::Network net_;
  sim::NodeId supervisor_id_;
  std::unique_ptr<sim::FailureDetector> fd_;
  /// SR(n) ground truth reused across legitimacy checks (convergence waits
  /// probe once per round; rebuilding the spec each time was O(n log n)).
  mutable std::unique_ptr<SkipRingSpec> spec_cache_;
};

}  // namespace ssps::core
