// Single-topic system harness: wires one supervisor and its subscribers
// into a sim::Network and provides legitimacy checking against SR(n).
//
// This is the primary entry point for tests, benches and examples that
// exercise the overlay layer on its own (topic multiplexing lives in
// src/pubsub/topics.hpp).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/skip_ring_spec.hpp"
#include "core/subscriber.hpp"
#include "core/supervisor.hpp"
#include "sim/failure_detector.hpp"
#include "sim/network.hpp"

namespace ssps::core {

/// sim::Node adapter that forwards directly into a protocol object.
/// Messages are sent verbatim (no topic envelope).
class DirectSink final : public MessageSink {
 public:
  explicit DirectSink(sim::Network& net) : net_(&net) {}
  void send(sim::NodeId to, sim::PooledMsg msg) override {
    net_->send(to, std::move(msg));
  }
  sim::MessagePool& pool() override { return net_->pool(); }
  sim::Round round() const override { return net_->clock_now(); }
  void publication_delivered(sim::Round latency) override {
    net_->record_delivery_latency(telemetry::LatencyTracker::kNoTopic, latency);
  }

 private:
  sim::Network* net_;
};

/// A network node running exactly one SubscriberProtocol instance.
class SubscriberNode : public sim::Node {
 public:
  explicit SubscriberNode(sim::NodeId supervisor)
      : SubscriberNode(supervisor, sim::NodeKind::kSubscriber) {}

  static bool classof(sim::NodeKind k) {
    // Every kind whose node IS-A SubscriberNode: the plain overlay node,
    // the pub-sub specialization, and baseline/antientropy's gossip node.
    return k == sim::NodeKind::kSubscriber || k == sim::NodeKind::kPubSub ||
           k == sim::NodeKind::kGossipPeer;
  }

  void handle(sim::PooledMsg msg) override { proto_->handle(*msg); }
  void timeout() override { proto_->timeout(); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    if (proto_) proto_->collect_refs(out);
  }
  void on_register() override {
    sink_.emplace(net());
    proto_.emplace(id(), supervisor_, *sink_, rng());
  }
  bool snapshot_state(common::Encoder& enc) const override {
    proto_->encode_state(enc);
    return true;
  }
  bool restore_state(common::Decoder& dec) override {
    return proto_->decode_state(dec) && dec.done();
  }

  SubscriberProtocol& protocol() { return *proto_; }
  const SubscriberProtocol& protocol() const { return *proto_; }

 protected:
  SubscriberNode(sim::NodeId supervisor, sim::NodeKind kind)
      : sim::Node(kind), supervisor_(supervisor) {}

 private:
  sim::NodeId supervisor_;
  // Embedded by value (not unique_ptr): protocol state lives inside the
  // node object, one cache-local block per node.
  std::optional<DirectSink> sink_;
  std::optional<SubscriberProtocol> proto_;
};

/// A network node running exactly one SupervisorProtocol instance.
class SupervisorNode : public sim::Node {
 public:
  SupervisorNode() : sim::Node(sim::NodeKind::kSupervisor) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kSupervisor; }

  void handle(sim::PooledMsg msg) override { proto_->handle(*msg); }
  void timeout() override { proto_->timeout(); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    if (proto_) proto_->collect_refs(out);
  }
  void on_register() override {
    sink_.emplace(net());
    proto_.emplace(id(), *sink_);
  }
  bool snapshot_state(common::Encoder& enc) const override {
    proto_->encode_state(enc);
    return true;
  }
  bool restore_state(common::Decoder& dec) override {
    return proto_->decode_state(dec) && dec.done();
  }

  SupervisorProtocol& protocol() { return *proto_; }
  const SupervisorProtocol& protocol() const { return *proto_; }

 private:
  std::optional<DirectSink> sink_;
  std::optional<SupervisorProtocol> proto_;
};

/// One supervised skip ring: supervisor + subscribers + failure detector.
class SkipRingSystem {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Failure-detector delay in rounds (0 = perfect detector).
    sim::Round fd_delay = 0;
  };

  SkipRingSystem() : SkipRingSystem(Options{}) {}
  explicit SkipRingSystem(const Options& options);

  sim::Network& net() { return net_; }
  const sim::Network& net() const { return net_; }

  sim::NodeId supervisor_id() const { return supervisor_id_; }
  SupervisorProtocol& supervisor();
  const SupervisorProtocol& supervisor() const;

  /// The supervisor's failure detector; scenarios retune its delay mid-run
  /// to model degrading/improving crash detection.
  sim::FailureDetector& failure_detector() { return *fd_; }
  const sim::FailureDetector& failure_detector() const { return *fd_; }

  /// Spawns a fresh subscriber node; it subscribes on its first Timeout.
  sim::NodeId add_subscriber();

  /// Spawns `count` subscribers; returns their ids.
  std::vector<sim::NodeId> add_subscribers(std::size_t count);

  SubscriberProtocol& subscriber(sim::NodeId id);
  const SubscriberProtocol& subscriber(sim::NodeId id) const;

  /// All alive subscriber ids (excluding the supervisor), in id order.
  std::vector<sim::NodeId> subscriber_ids() const;

  /// Alive subscribers that are active members (not leaving/departed) —
  /// the set the database must converge to.
  std::vector<sim::NodeId> active_ids() const;

  void request_unsubscribe(sim::NodeId id);
  void crash(sim::NodeId id);

  /// Restarts a crashed subscriber from its last periodic snapshot (see
  /// Network::recover — enable snapshots with net().enable_snapshots).
  /// The snapshot may be stale or corrupted; the recovered node then
  /// starts from whatever restored (or from scratch) and re-stabilizes.
  /// Returns true when the snapshot restored cleanly.
  bool recover_subscriber(sim::NodeId id);

  /// Full legitimacy check: database consistent and matching the active
  /// set, every subscriber holding its database label, and every explicit
  /// edge equal to the SR(n) spec.
  ///
  /// Incremental: the check runs on a persistent per-node conformance
  /// cache. A node is re-verified against the cached SkipRingSpec only
  /// when its SubscriberProtocol::state_version() moved since its last
  /// check; the database-level facts revalidate only when the supervisor's
  /// db_version() or the network topology epoch (spawns/crashes) moved;
  /// and a live nonconforming count answers the converged steady state
  /// without touching any node. Convergence waits that probe every round
  /// therefore pay O(changed nodes) amortized instead of O(n log n) per
  /// round. Equivalence with the exhaustive check is CI-enforced by
  /// tests/core/probe_differential_test.cpp.
  bool topology_legit() const;

  /// Number of alive subscribers currently failing their conformance
  /// check, per the incremental probe (refreshed on call) — the per-round
  /// "how far from legitimate" telemetry signal. When the database-level
  /// facts themselves fail, the probe cannot attribute blame to
  /// individual nodes, so every alive subscriber counts as
  /// nonconforming.
  std::size_t nonconforming_count() const;

  /// Human-readable first violation ("" when legitimate). For diagnostics
  /// in tests: legitimacy is decided by the incremental probe, the message
  /// is recovered by the reference checker.
  std::string legitimacy_violation() const;

  /// The exhaustive O(n log n) reference checker (the pre-incremental
  /// implementation, kept verbatim): recomputes everything from scratch.
  /// The differential test runs it against topology_legit() on every round
  /// of scrambled executions.
  std::string legitimacy_violation_full() const;

  /// Convenience: run rounds until topology_legit() or max_rounds; returns
  /// rounds used (nullopt = did not converge).
  std::optional<std::size_t> run_until_legit(std::size_t max_rounds);

  /// Graphviz rendering of the current overlay (ring edges black,
  /// shortcuts green); see src/sim/trace.hpp.
  std::string to_dot() const;

 private:
  /// Re-validates the database-level facts (consistency, values alive and
  /// non-supervisor) and rebuilds the flat label-index -> node assignment;
  /// returns whether the database passed. Runs only when the db/topology
  /// epoch moved.
  bool revalidate_database() const;
  /// Checks one subscriber against the cached spec and assignment; appends
  /// the reason to `why` when given (diagnostics path).
  bool node_conforms(sim::NodeId id, const SubscriberProtocol& sub,
                     std::ostream* why) const;
  /// The incremental probe behind topology_legit().
  bool probe_legit() const;

  sim::Network net_;
  sim::NodeId supervisor_id_;
  std::unique_ptr<sim::FailureDetector> fd_;
  /// SR(n) ground truth reused across legitimacy checks (convergence waits
  /// probe once per round; rebuilding the spec each time was O(n log n)).
  mutable std::unique_ptr<SkipRingSpec> spec_cache_;

  /// Persistent conformance cache of the incremental probe.
  struct ProbeState {
    /// Database-layer epoch key: supervisor db version + topology epoch
    /// (total slots, alive count) — the pair changes on every spawn or
    /// crash, covering "database references dead node" staleness.
    std::uint64_t db_version = 0;
    std::size_t slots_seen = 0;
    std::size_t alive_seen = 0;
    bool db_checked = false;
    bool db_ok = false;
    /// Canonical label index -> recorded node (valid while db_ok).
    std::vector<sim::NodeId> by_index;

    /// Per-node conformance entries, indexed by NodeId value - 1.
    struct Entry {
      std::uint64_t version = 0;  // state_version at last check (0 = never)
      bool active = false;
      bool conforms = false;
    };
    bool nodes_valid = false;
    std::vector<Entry> nodes;
    std::size_t active_count = 0;
    std::size_t nonconforming = 0;
  };
  mutable ProbeState probe_;
};

}  // namespace ssps::core
