// Local shortcut-label derivation (§3.2.2).
//
// A subscriber v computes all labels it must keep shortcuts to purely from
// its own label and the labels of its two direct ring neighbors: while the
// neighbor's label is longer than v's, reflecting it across v
// (s = 2·r(w) − r(v) mod 1) yields v's neighbor in the next-coarser ring
// K_i; iterating until the derived label is no longer than v's own yields
// v's neighbor in every K_i for i = |v.label| … ⌈log n⌉ − 1.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/label.hpp"

namespace ssps::core {

/// A subscriber's shortcut table: expected label -> node reference (null
/// until known). Backed by one sorted vector — the table holds O(log n)
/// entries and is scanned every Timeout, where a node-per-entry std::map
/// was pure allocator churn. The interface mirrors the std::map surface
/// the rest of the code (legitimacy checks, oracle, tests) consumes:
/// find/end/contains/size and sorted pair iteration.
class ShortcutTable {
 public:
  using value_type = std::pair<Label, sim::NodeId>;
  using const_iterator = std::vector<value_type>::const_iterator;
  using iterator = std::vector<value_type>::iterator;

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator find(const Label& label) const {
    auto it = lower_bound(label);
    return it != entries_.end() && it->first == label ? it : entries_.end();
  }
  bool contains(const Label& label) const { return find(label) != end(); }

  /// Entry by sorted position (bounds-checked by the vector).
  const value_type& entry(std::size_t index) const { return entries_[index]; }

  /// Value for `label`; the entry must exist.
  const sim::NodeId& at(const Label& label) const {
    auto it = find(label);
    SSPS_ASSERT_MSG(it != end(), "ShortcutTable::at: unknown label");
    return it->second;
  }

  /// Mutable value cell for `label`, or nullptr when absent.
  sim::NodeId* slot(const Label& label) {
    auto it = lower_bound(label);
    return it != entries_.end() && it->first == label ? &it->second : nullptr;
  }

  /// Inserts or overwrites one entry (chaos/test injection path).
  void put(const Label& label, sim::NodeId node) {
    auto it = lower_bound(label);
    if (it != entries_.end() && it->first == label) {
      it->second = node;
    } else {
      entries_.insert(it, value_type{label, node});
    }
  }

  void clear() { entries_.clear(); }

  /// Replaces the whole table; `entries` must be sorted by label.
  void assign_sorted(std::vector<value_type>&& entries) {
    entries_ = std::move(entries);
  }

 private:
  std::vector<value_type>::iterator lower_bound(const Label& label) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), label,
        [](const value_type& e, const Label& l) { return e.first < l; });
  }
  std::vector<value_type>::const_iterator lower_bound(const Label& label) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), label,
        [](const value_type& e, const Label& l) { return e.first < l; });
  }

  std::vector<value_type> entries_;
};

/// The mirror chain of v towards one side, starting from the direct ring
/// neighbor's label on that side. Returns the derived shortcut labels in
/// order of decreasing level (closest first); the ring neighbor itself is
/// not included. Empty when the neighbor's label is not longer than v's.
///
/// Robust against corrupted inputs: the chain stops when it would reach
/// v's own r-value or exceed a hard iteration cap, so arbitrary label
/// garbage cannot loop forever (needed for self-stabilization).
std::vector<Label> mirror_chain(const Label& self, const Label& ring_neighbor);

/// The union of both chains, deduplicated, sorted by r. This is exactly
/// the set of labels v.shortcuts must contain in a legitimate state.
std::vector<Label> expected_shortcut_labels(const Label& self,
                                            const std::optional<Label>& left_neighbor,
                                            const std::optional<Label>& right_neighbor);

/// The level-k partner on one side, k = |self|: the node v must introduce
/// to its other-side partner each Timeout (§3.2.2). It is the far end of
/// the mirror chain, or the ring neighbor itself when the chain is empty
/// (which also covers the paper's special case |v.label| = ⌈log n⌉).
Label level_k_partner(const Label& self, const Label& ring_neighbor);

}  // namespace ssps::core
