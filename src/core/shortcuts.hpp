// Local shortcut-label derivation (§3.2.2).
//
// A subscriber v computes all labels it must keep shortcuts to purely from
// its own label and the labels of its two direct ring neighbors: while the
// neighbor's label is longer than v's, reflecting it across v
// (s = 2·r(w) − r(v) mod 1) yields v's neighbor in the next-coarser ring
// K_i; iterating until the derived label is no longer than v's own yields
// v's neighbor in every K_i for i = |v.label| … ⌈log n⌉ − 1.
#pragma once

#include <optional>
#include <vector>

#include "core/label.hpp"

namespace ssps::core {

/// The mirror chain of v towards one side, starting from the direct ring
/// neighbor's label on that side. Returns the derived shortcut labels in
/// order of decreasing level (closest first); the ring neighbor itself is
/// not included. Empty when the neighbor's label is not longer than v's.
///
/// Robust against corrupted inputs: the chain stops when it would reach
/// v's own r-value or exceed a hard iteration cap, so arbitrary label
/// garbage cannot loop forever (needed for self-stabilization).
std::vector<Label> mirror_chain(const Label& self, const Label& ring_neighbor);

/// The union of both chains, deduplicated, sorted by r. This is exactly
/// the set of labels v.shortcuts must contain in a legitimate state.
std::vector<Label> expected_shortcut_labels(const Label& self,
                                            const std::optional<Label>& left_neighbor,
                                            const std::optional<Label>& right_neighbor);

/// The level-k partner on one side, k = |self|: the node v must introduce
/// to its other-side partner each Timeout (§3.2.2). It is the far end of
/// the mirror chain, or the ring neighbor itself when the chain is empty
/// (which also covers the paper's special case |v.label| = ⌈log n⌉).
Label level_k_partner(const Label& self, const Label& ring_neighbor);

}  // namespace ssps::core
