#include "core/skip_ring_spec.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"
#include "core/shortcuts.hpp"

namespace ssps::core {

namespace {

int ceil_log2(std::size_t n) {
  int k = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++k;
  }
  return k;
}

}  // namespace

SkipRingSpec::SkipRingSpec(std::size_t n) : n_(n), top_(ceil_log2(n)) {
  SSPS_ASSERT(n >= 1);
  order_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) order_.push_back(Label::from_index(i));
  std::sort(order_.begin(), order_.end());
  for (std::size_t i = 0; i < n; ++i) by_key_.emplace(order_[i].r_key(), i);

  spec_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec& s = spec_[i];
    const Label& me = order_[i];
    std::optional<Label> left_nbr;
    std::optional<Label> right_nbr;
    if (n == 1) {
      // A single node has no edges at all.
    } else {
      const Label& pred = order_[(i + n - 1) % n];
      const Label& succ = order_[(i + 1) % n];
      // The minimum keeps its predecessor (= the maximum) in `ring`, and
      // symmetrically for the maximum, closing the sorted list to a cycle.
      if (i == 0) {
        s.ring = pred;
        s.right = succ;
      } else if (i == n - 1) {
        s.ring = succ;
        s.left = pred;
      } else {
        s.left = pred;
        s.right = succ;
      }
      left_nbr = pred;
      right_nbr = succ;
    }
    s.shortcuts = expected_shortcut_labels(me, left_nbr, right_nbr);
  }
}

const NodeSpec& SkipRingSpec::expected(const Label& label) const {
  return spec_[index_of(label)];
}

std::size_t SkipRingSpec::index_of(const Label& label) const {
  auto it = by_key_.find(label.r_key());
  SSPS_ASSERT_MSG(it != by_key_.end(), "label not in SR(n)");
  return it->second;
}

std::size_t SkipRingSpec::degree(const Label& label) const {
  const NodeSpec& s = spec_[index_of(label)];
  // Count distinct neighbor labels across ring edges and shortcuts.
  std::vector<Label> nbrs = s.shortcuts;
  if (s.left) nbrs.push_back(*s.left);
  if (s.right) nbrs.push_back(*s.right);
  if (s.ring) nbrs.push_back(*s.ring);
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs.size();
}

std::size_t SkipRingSpec::edge_count() const {
  // Count undirected distinct-neighbor pairs: sum of degrees / 2.
  std::size_t total = 0;
  for (const Label& l : order_) total += degree(l);
  return total / 2;
}

std::unordered_map<std::uint64_t, int> SkipRingSpec::hops_from(const Label& from) const {
  std::unordered_map<std::uint64_t, int> dist;
  std::deque<std::size_t> queue;
  dist.emplace(from.r_key(), 0);
  queue.push_back(index_of(from));
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    const int d = dist.at(order_[cur].r_key());
    const NodeSpec& s = spec_[cur];
    auto visit = [&](const Label& nbr) {
      if (dist.emplace(nbr.r_key(), d + 1).second) queue.push_back(index_of(nbr));
    };
    if (s.left) visit(*s.left);
    if (s.right) visit(*s.right);
    if (s.ring) visit(*s.ring);
    for (const Label& l : s.shortcuts) visit(l);
  }
  return dist;
}

int SkipRingSpec::diameter() const {
  int best = 0;
  for (const Label& l : order_) {
    const auto dist = hops_from(l);
    SSPS_ASSERT_MSG(dist.size() == n_, "SR(n) must be connected");
    for (const auto& [key, d] : dist) best = std::max(best, d);
  }
  return best;
}

int SkipRingSpec::edge_level(const Label& a, const Label& b) {
  return std::max(a.length(), b.length());
}

int SkipRingSpec::route(const Label& from, const Label& to,
                        std::vector<std::uint64_t>* load) const {
  std::size_t cur = index_of(from);
  const std::size_t target = index_of(to);
  const Dyadic goal = to.r();
  int hops = 0;
  while (cur != target) {
    const NodeSpec& s = spec_[cur];
    std::size_t best = cur;
    Dyadic best_dist = ring_distance(order_[cur].r(), goal);
    auto try_neighbor = [&](const Label& nbr) {
      const Dyadic d = ring_distance(nbr.r(), goal);
      if (d < best_dist) {
        best_dist = d;
        best = index_of(nbr);
      }
    };
    if (s.left) try_neighbor(*s.left);
    if (s.right) try_neighbor(*s.right);
    if (s.ring) try_neighbor(*s.ring);
    for (const Label& l : s.shortcuts) try_neighbor(l);
    SSPS_ASSERT_MSG(best != cur, "greedy routing stuck");
    cur = best;
    ++hops;
    if (load != nullptr && cur != target) (*load)[cur] += 1;
    SSPS_ASSERT(hops <= static_cast<int>(n_) + 1);
  }
  return hops;
}

}  // namespace ssps::core
