#include "core/dyadic.hpp"

namespace ssps::core {

Dyadic mirror_mod1(const Dyadic& w, const Dyadic& v) {
  // Common exponent big enough for 2w and v.
  const int e = (w.exp > v.exp ? w.exp : v.exp) + 1;
  SSPS_ASSERT(e <= Dyadic::kMaxExp + 1);
  const __int128 two_w = static_cast<__int128>(w.num) << (e - w.exp + 1);
  const __int128 vv = static_cast<__int128>(v.num) << (e - v.exp);
  const __int128 mod = static_cast<__int128>(1) << e;
  __int128 m = (two_w - vv) % mod;
  if (m < 0) m += mod;
  return Dyadic::normalized(static_cast<std::uint64_t>(m), e);
}

Dyadic linear_distance(const Dyadic& a, const Dyadic& b) {
  const Dyadic& hi = (a < b) ? b : a;
  const Dyadic& lo = (a < b) ? a : b;
  const int e = (hi.exp > lo.exp ? hi.exp : lo.exp);
  const std::uint64_t h = hi.num << (e - hi.exp);
  const std::uint64_t l = lo.num << (e - lo.exp);
  return Dyadic::normalized(h - l, e);
}

Dyadic ring_distance(const Dyadic& a, const Dyadic& b) {
  const Dyadic lin = linear_distance(a, b);
  // 1 - lin, computed as (2^e - num) / 2^e.
  if (lin.is_zero()) return lin;
  const Dyadic wrap = Dyadic::normalized((1ULL << lin.exp) - lin.num, lin.exp);
  return (wrap < lin) ? wrap : lin;
}

}  // namespace ssps::core
