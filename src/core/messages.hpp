// Protocol messages of BuildSR (Algorithms 1–4).
//
// Every message models one remote action call ⟨label⟩(⟨parameters⟩).
// wire_size() estimates a compact binary encoding (8-byte node refs,
// labels as len byte + packed bits) and is used for byte accounting only.
#pragma once

#include <memory>
#include <optional>

#include "common/decode.hpp"
#include "common/encode.hpp"
#include "core/label.hpp"
#include "sim/message.hpp"

namespace ssps::core {

/// Flag distinguishing linear (sorted-list) candidates from cyclic
/// (ring-closure) candidates, as in Algorithms 1–2 (LIN / CYC).
enum class IntroFlag : std::uint8_t { kLinear, kCyclic };

/// Canonical encodings of the core value types (common/encode.hpp); the
/// building blocks of every Message::encode override below.
inline void encode_label(common::Encoder& e, const Label& l) {
  e.u64(l.bits());
  e.u8(static_cast<std::uint8_t>(l.length()));
}

inline void encode_ref(common::Encoder& e, const LabeledRef& r) {
  encode_label(e, r.label);
  e.u64(r.node.value);
}

/// Total decoders of the same value types (common/decode.hpp): corrupted
/// bytes return false instead of tripping the Label constructor's
/// invariants, so the wire codec and the snapshot restore stay total.
inline bool decode_label(common::Decoder& d, Label& out) {
  std::uint64_t bits = 0;
  std::uint8_t len = 0;
  if (!d.u64(bits) || !d.u8(len)) return false;
  if (len < 1 || len > Label::kMaxLen) return false;
  if (len < 64 && bits >= (1ULL << len)) return false;
  out = Label(bits, len);
  return true;
}

inline bool decode_ref(common::Decoder& d, LabeledRef& out) {
  std::uint64_t node = 0;
  if (!decode_label(d, out.label) || !d.u64(node)) return false;
  out.node = sim::NodeId{node};
  return true;
}

namespace msg {

constexpr std::size_t kRefBytes = 8;    // one node reference
constexpr std::size_t kLabelBytes = 9;  // length + packed bits
constexpr std::size_t kHeaderBytes = 8;

/// Subscribe(v): v asks the supervisor to integrate it (action (i)).
struct Subscribe final : sim::MsgBase<Subscribe> {
  sim::NodeId who;

  explicit Subscribe(sim::NodeId w) : who(w) {}
  std::string_view name() const override { return "Subscribe"; }
  std::size_t wire_size() const override { return kHeaderBytes + kRefBytes; }
  void collect_refs(std::vector<sim::NodeId>& out) const override { out.push_back(who); }
  bool encode(common::Encoder& e) const override {
    e.u64(who.value);
    return true;
  }
};

/// Unsubscribe(v): v asks to leave (§4.1).
struct Unsubscribe final : sim::MsgBase<Unsubscribe> {
  sim::NodeId who;

  explicit Unsubscribe(sim::NodeId w) : who(w) {}
  std::string_view name() const override { return "Unsubscribe"; }
  std::size_t wire_size() const override { return kHeaderBytes + kRefBytes; }
  void collect_refs(std::vector<sim::NodeId>& out) const override { out.push_back(who); }
  bool encode(common::Encoder& e) const override {
    e.u64(who.value);
    return true;
  }
};

/// GetConfiguration(u): request the supervisor to (re)send u's
/// configuration. Sent by u itself (actions (ii)/(iv)) or on u's behalf by
/// a neighbor (action (iii)).
///
/// `requester` extends Algorithm 3 for the crash case (§3.3): when the
/// supervisor's failure detector reports the subject crashed, the reply
/// goes to the requester as a RemoveConnections(subject) — otherwise a
/// dead neighbor whose stale label looks closer than every live proposal
/// could be referenced forever (messages to it invoke no action). The
/// supervisor remains the only failure detector in the system.
struct GetConfiguration final : sim::MsgBase<GetConfiguration> {
  sim::NodeId subject;
  sim::NodeId requester;

  explicit GetConfiguration(sim::NodeId s, sim::NodeId r = sim::NodeId::null())
      : subject(s), requester(r) {}
  std::string_view name() const override { return "GetConfiguration"; }
  std::size_t wire_size() const override { return kHeaderBytes + 2 * kRefBytes; }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(subject);
    if (requester) out.push_back(requester);
  }
  bool encode(common::Encoder& e) const override {
    e.u64(subject.value);
    e.u64(requester.value);
    return true;
  }
};

/// SetData(pred, label, succ): the supervisor's configuration reply. All
/// fields empty (⊥,⊥,⊥) evicts the receiver (unknown node / unsubscribe
/// permission, Lemma 6).
struct SetData final : sim::MsgBase<SetData> {
  std::optional<LabeledRef> pred;
  std::optional<Label> label;
  std::optional<LabeledRef> succ;

  SetData(std::optional<LabeledRef> p, std::optional<Label> l, std::optional<LabeledRef> s)
      : pred(std::move(p)), label(std::move(l)), succ(std::move(s)) {}
  std::string_view name() const override { return "SetData"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + 2 * (kRefBytes + kLabelBytes) + kLabelBytes;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    if (pred) out.push_back(pred->node);
    if (succ) out.push_back(succ->node);
  }
  bool encode(common::Encoder& e) const override {
    e.optional(pred, encode_ref);
    e.optional(label, encode_label);
    e.optional(succ, encode_ref);
    return true;
  }
};

/// Check(sender, label, flag): sender introduces itself and names the
/// label it believes the receiver has; the receiver replies with a
/// correction when the believed label is stale (extended BuildRing, §2.2).
struct Check final : sim::MsgBase<Check> {
  LabeledRef sender;
  Label believed;
  IntroFlag flag;

  Check(LabeledRef s, Label b, IntroFlag f) : sender(s), believed(b), flag(f) {}
  std::string_view name() const override { return "Check"; }
  std::size_t wire_size() const override {
    return kHeaderBytes + kRefBytes + 2 * kLabelBytes + 1;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(sender.node);
  }
  bool encode(common::Encoder& e) const override {
    encode_ref(e, sender);
    encode_label(e, believed);
    e.u8(static_cast<std::uint8_t>(flag));
    return true;
  }
};

/// Introduce(candidate, flag): hands the receiver a node reference to be
/// linearized (LIN) or routed to the ring extremes (CYC).
struct Introduce final : sim::MsgBase<Introduce> {
  LabeledRef cand;
  IntroFlag flag;

  Introduce(LabeledRef c, IntroFlag f) : cand(c), flag(f) {}
  std::string_view name() const override { return "Introduce"; }
  std::size_t wire_size() const override { return kHeaderBytes + kRefBytes + kLabelBytes + 1; }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(cand.node);
  }
  bool encode(common::Encoder& e) const override {
    encode_ref(e, cand);
    e.u8(static_cast<std::uint8_t>(flag));
    return true;
  }
};

/// RemoveConnections(who): ask the receiver to purge its references to
/// `who` (used by departed/label-less nodes, Lemma 6).
struct RemoveConnections final : sim::MsgBase<RemoveConnections> {
  sim::NodeId who;

  explicit RemoveConnections(sim::NodeId w) : who(w) {}
  std::string_view name() const override { return "RemoveConnections"; }
  std::size_t wire_size() const override { return kHeaderBytes + kRefBytes; }
  void collect_refs(std::vector<sim::NodeId>& out) const override { out.push_back(who); }
  bool encode(common::Encoder& e) const override {
    e.u64(who.value);
    return true;
  }
};

/// IntroduceShortcut(candidate): level-k introduction (§3.2.2): the sender
/// vouches that `cand` is the receiver's neighbor in some ring K_i.
struct IntroduceShortcut final : sim::MsgBase<IntroduceShortcut> {
  LabeledRef cand;

  explicit IntroduceShortcut(LabeledRef c) : cand(c) {}
  std::string_view name() const override { return "IntroduceShortcut"; }
  std::size_t wire_size() const override { return kHeaderBytes + kRefBytes + kLabelBytes; }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(cand.node);
  }
  bool encode(common::Encoder& e) const override {
    encode_ref(e, cand);
    return true;
  }
};

}  // namespace msg

/// Abstraction over "put message m into v.Ch" so that protocol objects can
/// be embedded either directly in a sim::Node (single topic) or behind a
/// topic-multiplexing envelope (multi-topic pub-sub, §4).
///
/// Sinks expose the network's MessagePool so protocol code allocates
/// messages arena-side in one step: sink->emit<msg::Check>(to, ...).
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void send(sim::NodeId to, sim::PooledMsg msg) = 0;
  virtual sim::MessagePool& pool() = 0;

  /// Current round of the underlying clock (0 when the sink has none —
  /// ad-hoc test sinks). Publications are stamped with this at publish
  /// time (pubsub::Publication::born).
  virtual sim::Round round() const { return 0; }

  /// Telemetry callback: a publication first reached this sink's node
  /// `latency` rounds after it was published. Default: discarded (test
  /// sinks); network-backed sinks forward into the simulator's
  /// LatencyTracker with their topic id.
  virtual void publication_delivered(sim::Round latency) { (void)latency; }

  /// Pool-allocates a T and sends it to `to`.
  template <typename T, typename... Args>
  void emit(sim::NodeId to, Args&&... args) {
    send(to, pool().make<T>(std::forward<Args>(args)...));
  }
};

}  // namespace ssps::core
