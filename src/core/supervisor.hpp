// Supervisor half of BuildSR (Algorithm 3; §3.1, §3.3, §4.1).
//
// The supervisor owns the database of (label, subscriber) tuples, hands
// out configurations (pred, label, succ) in a round-robin fashion, repairs
// the four database corruption classes of §3.1, processes subscribe /
// unsubscribe with O(1) messages (Theorem 7), and evicts crashed
// subscribers reported by its eventually-correct failure detector (§3.3).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "sim/failure_detector.hpp"

namespace ssps::core {

/// The per-topic supervisor state machine.
///
/// Independent of sim::Node for the same reason as SubscriberProtocol: a
/// single supervisor process runs one instance per topic (§4).
class SupervisorProtocol {
 public:
  SupervisorProtocol(sim::NodeId self, MessageSink& sink);

  /// Attaches the failure detector (optional; §3.3).
  void set_failure_detector(const sim::FailureDetector* fd) { fd_ = fd; }

  /// Algorithm 3 Timeout: repair the database, then send one configuration
  /// round-robin.
  void timeout();

  /// Dispatches one incoming message; false if not a supervisor message.
  bool handle(const sim::Message& m);

  // ---- Observable state ------------------------------------------------

  sim::NodeId self() const { return self_; }

  /// The database, keyed by label in ring order (ascending r).
  const std::map<Label, sim::NodeId>& database() const { return db_; }

  std::size_t size() const { return db_.size(); }

  /// Monotone counter bumped on every database mutation (inserts, erases,
  /// relabelings, chaos injection). Incremental legitimacy probes use it as
  /// the database epoch: while it is unchanged, every cached fact derived
  /// from the tuple set stays valid. Plain (non-atomic) like
  /// SubscriberProtocol::state_version, and published the same way: probes
  /// read it only at round barriers of the installed scheduler.
  std::uint64_t db_version() const { return db_version_; }

  /// True when the database satisfies none of the corruption conditions
  /// (i)–(iv) of §3.1: values non-null, node-unique, labels = {l(0..n−1)}.
  bool database_consistent() const;

  /// Label currently assigned to `node`, if recorded.
  std::optional<Label> label_of(sim::NodeId node) const;

  void collect_refs(std::vector<sim::NodeId>& out) const;

  /// Serializes every protocol variable (database, round-robin pointer,
  /// repair bookkeeping) in canonical form: the model checker's state
  /// fingerprint, doubling as the supervisor half of the wire-format
  /// draft. Excludes db_version() — determined by the encoded variables.
  void encode_state(common::Encoder& enc) const;

  /// Restores the protocol variables from a snapshot produced by
  /// encode_state — possibly stale, possibly corrupted. Total and
  /// transactional: malformed input returns false with the state
  /// untouched. A successful restore marks the labels dirty: the
  /// snapshot's database describes membership at capture time, not now,
  /// so the next Timeout re-validates every tuple (evicting subscribers
  /// that died while this supervisor was down).
  bool decode_state(common::Decoder& dec);

  // ---- Adversarial injection (tests/benches only) -----------------------

  /// Inserts a raw tuple, bypassing all invariants (may create duplicates
  /// per node, out-of-range or non-canonical labels).
  void chaos_insert(const Label& label, sim::NodeId node);
  /// Inserts a (label, ⊥) tuple (corruption case (i)).
  void chaos_insert_null(const Label& label);
  void chaos_clear();
  void chaos_set_next(std::uint64_t next) { next_ = next; }

 private:
  void on_subscribe(sim::NodeId who);
  void on_unsubscribe(sim::NodeId who);
  void on_get_configuration(sim::NodeId subject,
                            sim::NodeId requester = sim::NodeId::null());

  /// §3.1 cases (i), (iii), (iv) + §3.3 crash eviction. Runs lazily: a
  /// clean database (the steady state) is validated in O(1). Crash
  /// eviction consumes the network's crash log through a cursor — O(1)
  /// amortized per crash — instead of sweeping the whole database per call
  /// (which made every Subscribe during a cold start O(n), turning
  /// bootstrap into O(n²)).
  void check_labels();
  /// Erases every tuple recorded for `dead`; marks the labels dirty when a
  /// hole was punched.
  void evict(sim::NodeId dead);
  /// §3.1 case (ii): drop duplicate tuples for `who`, keeping the lowest
  /// label.
  void check_multiple_copies(sim::NodeId who);
  /// Sends (pred, label, succ) to the node recorded at `it` (one message).
  void send_configuration(std::map<Label, sim::NodeId>::const_iterator it);
  /// Ring-order neighbors of a label within the database.
  std::optional<LabeledRef> pred_of(const Label& label) const;
  std::optional<LabeledRef> succ_of(const Label& label) const;

  void index_add(sim::NodeId node, const Label& label);
  void index_remove(sim::NodeId node, const Label& label);

  sim::NodeId self_;
  MessageSink* sink_;
  const sim::FailureDetector* fd_ = nullptr;

  /// database ⊂ {0,1}* × V. Key order (r, then len) is the ring order for
  /// canonical labels. Values may be null (⊥) in corrupted states.
  std::map<Label, sim::NodeId> db_;
  /// Reverse index node -> labels (multi-valued in corrupted states).
  std::unordered_map<sim::NodeId, std::vector<Label>> index_;
  /// Round-robin pointer (the `next` variable of Algorithm 3).
  std::uint64_t next_ = 0;
  /// Cleared by chaos injection; when set, check_labels() is a no-op.
  bool labels_clean_ = true;
  /// Crash-log entries already consumed by the eviction path. A node that
  /// re-enters the database after its eviction (stale Subscribe, chaos) is
  /// caught by the dirty-path re-sweep, not by the cursor.
  std::size_t crash_cursor_ = 0;
  /// Database epoch (see db_version()).
  std::uint64_t db_version_ = 0;
};

}  // namespace ssps::core
