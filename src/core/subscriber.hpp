// Subscriber half of BuildSR (Algorithms 1, 2 and 4; §2.2, §3.2).
//
// A subscriber maintains
//   - its label (assigned by the supervisor, possibly stale or ⊥),
//   - its direct ring neighbors left/right and the cyclic closure edge
//     `ring` (held by the believed minimum/maximum),
//   - its shortcut table, keyed by the labels derived locally via the
//     mirror chains of §3.2.2,
// and stabilizes them by linearization with label correction (extended
// BuildRing, Lemma 4), supervisor configuration merging (action (iii)),
// probabilistic configuration requests (actions (i), (ii), (iv)) and the
// level-k shortcut introductions (Lemma 12).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "core/shortcuts.hpp"

namespace ssps::core {

/// Lifecycle of a subscriber with respect to the supervisor.
enum class SubscriberPhase : std::uint8_t {
  kActive,    ///< participating (default)
  kLeaving,   ///< unsubscribe requested, waiting for permission
  kDeparted,  ///< permission received; protocol instance is shut down
};

/// The per-topic protocol state machine run by every subscriber.
///
/// This object is deliberately independent of sim::Node so that a node can
/// run many instances (one per subscribed topic, §4). All outgoing traffic
/// goes through the MessageSink; all randomness through the supplied Rng.
class SubscriberProtocol {
 public:
  SubscriberProtocol(sim::NodeId self, sim::NodeId supervisor, MessageSink& sink,
                     ssps::Rng& rng);

  // ---- Actions (the paper's protocol surface) -------------------------

  /// The periodic Timeout action (Algorithm 4 plus Algorithms 1–2 parts).
  void timeout();

  /// Dispatches one incoming message; returns false if the message is not
  /// a BuildSR message (callers may then try other protocol layers).
  bool handle(const sim::Message& m);

  /// User-level unsubscribe: switches to kLeaving and starts asking the
  /// supervisor for permission (§4.1).
  void request_unsubscribe();

  // ---- Observable state (tests, legitimacy checks, pub-sub layer) -----

  sim::NodeId self() const { return self_; }
  sim::NodeId supervisor() const { return supervisor_; }
  SubscriberPhase phase() const { return phase_; }
  bool departed() const { return phase_ == SubscriberPhase::kDeparted; }

  /// Monotone state version: bumped on every observable change to the
  /// protocol variables (phase, label, left/right/ring, shortcut table),
  /// including the chaos/scramble hooks. In a converged system no Timeout
  /// and no steady-state message moves it, so an incremental legitimacy
  /// probe can skip any node whose version it has already checked.
  ///
  /// Threading: a plain counter, deliberately not atomic. Under the
  /// parallel round scheduler all writes happen on the worker that owns
  /// this node's shard, and every probe runs between rounds — after the
  /// scheduler's round barrier, whose mutex hand-off publishes the
  /// worker's writes (sched/parallel.cpp). Reading versions mid-phase
  /// would be a race *and* meaningless (the round is half-applied).
  std::uint64_t state_version() const { return version_; }

  const std::optional<Label>& label() const { return label_; }
  const std::optional<LabeledRef>& left() const { return left_; }
  const std::optional<LabeledRef>& right() const { return right_; }
  const std::optional<LabeledRef>& ring() const { return ring_; }

  /// Shortcut table: expected label -> node reference (null until known).
  const ShortcutTable& shortcuts() const { return shortcuts_; }

  /// Distinct non-null overlay neighbors (ring edges + shortcuts); the
  /// flooding targets of §4.3.
  std::vector<sim::NodeId> overlay_neighbors() const;

  /// Direct ring neighbors only (left/right/ring, non-null, distinct);
  /// the anti-entropy partner pool of Algorithm 5.
  std::vector<sim::NodeId> ring_neighbors() const;

  /// Allocation-free variant: fills `out` with the distinct non-null ring
  /// neighbors in ascending id order and returns the count (<= 3). The
  /// per-Timeout anti-entropy partner pick runs through this.
  std::size_t ring_neighbors_into(std::array<sim::NodeId, 3>& out) const;

  /// Explicit edges for connectivity analyses.
  void collect_refs(std::vector<sim::NodeId>& out) const;

  /// Serializes every protocol variable (phase, label, ring edges,
  /// shortcut table) in canonical form: the model checker's state
  /// fingerprint, doubling as the subscriber half of the wire-format
  /// draft. Excludes state_version() and the derived-label cache — both
  /// are determined by (or pure memoization of) the encoded variables.
  void encode_state(common::Encoder& enc) const;

  /// Restores every protocol variable from a snapshot produced by
  /// encode_state — possibly stale, possibly corrupted. Total and
  /// transactional: malformed input returns false with the state
  /// untouched. A restored state is just an arbitrary initial state as
  /// far as the protocol is concerned; self-stabilization does the rest.
  bool decode_state(common::Decoder& dec);

  // ---- Adversarial state injection (tests/benches only) ---------------
  // Self-stabilization quantifies over *arbitrary* initial states; these
  // setters let the chaos generators produce them. They perform no
  // validation beyond basic type invariants.

  void chaos_set_label(std::optional<Label> l) {
    label_ = std::move(l);
    derived_.valid = false;
    touch();
  }
  void chaos_set_left(std::optional<LabeledRef> v) {
    left_ = std::move(v);
    derived_.valid = false;
    touch();
  }
  void chaos_set_right(std::optional<LabeledRef> v) {
    right_ = std::move(v);
    derived_.valid = false;
    touch();
  }
  void chaos_set_ring(std::optional<LabeledRef> v) {
    ring_ = std::move(v);
    derived_.valid = false;
    touch();
  }
  void chaos_put_shortcut(const Label& l, sim::NodeId n) {
    shortcuts_.put(l, n);
    derived_.valid = false;
    touch();
  }
  void chaos_clear_shortcuts() {
    shortcuts_.clear();
    derived_.valid = false;
    touch();
  }
  void chaos_set_phase(SubscriberPhase p) {
    phase_ = p;
    touch();
  }

 private:
  // -- Candidate processing (linearization core) --
  // `trusted` marks candidates stemming from a supervisor configuration:
  // they win equal-label conflicts (the database is the authority; the
  // displaced reference may be a crashed node that can never answer, §3.3).
  void consider(const LabeledRef& c, IntroFlag flag);
  void consider_linear(const LabeledRef& c, bool trusted = false);
  void consider_cyclic(const LabeledRef& c, bool trusted = false);
  /// Re-homes neighbors that ended up on the wrong side of our label.
  void revalidate_sides();
  /// Handles a reference to a node claiming exactly our own r-position.
  void conflict(const LabeledRef& c);
  /// Removes `who` from all local variables.
  void purge(sim::NodeId who);

  // -- Message handlers --
  void on_check(const msg::Check& m);
  void on_introduce(const msg::Introduce& m);
  void on_set_data(const msg::SetData& m);
  void on_introduce_shortcut(const msg::IntroduceShortcut& m);

  // -- Shortcut maintenance (§3.2.2) --
  /// The label of the direct ring neighbor on one side, looking through
  /// `ring` for the believed min/max.
  std::optional<Label> side_source_label(bool left_side) const;
  std::optional<LabeledRef> side_source_ref(bool left_side) const;
  /// Algorithm 4 line 3: make shortcuts_ contain exactly the expected
  /// labels, re-linearizing evicted references.
  void refresh_shortcuts();
  /// Recomputes the derived-label cache when (label, side sources) moved;
  /// returns true when the cache was (re)filled, false on a hit.
  bool ensure_derived_cache() const;
  /// §3.2.2: introduce the two level-k partners to each other.
  void introduce_level_partners();
  /// Resolves the node reference for a (chain-end) partner label.
  std::optional<LabeledRef> partner_ref(bool left_side) const;

  void send_check(const LabeledRef& to, IntroFlag flag);
  LabeledRef self_ref() const;

  /// Records an observable state change (see state_version()). Every write
  /// to phase/label/left/right/ring/shortcuts must be paired with a touch;
  /// tests/core/probe_differential_test.cpp checks the pairing by running
  /// the incremental probe against the exhaustive one on every round of
  /// scrambled executions.
  void touch() { ++version_; }

  sim::NodeId self_;
  sim::NodeId supervisor_;
  MessageSink* sink_;
  ssps::Rng* rng_;

  SubscriberPhase phase_ = SubscriberPhase::kActive;
  std::uint64_t version_ = 1;
  std::optional<Label> label_;
  std::optional<LabeledRef> left_;
  std::optional<LabeledRef> right_;
  std::optional<LabeledRef> ring_;
  ShortcutTable shortcuts_;

  /// Labels derivable from (label_, side-source labels) — the expected
  /// shortcut set and the two level-k partner labels — memoized because
  /// they are recomputed every Timeout but only change on relabeling.
  /// Invariant: valid ⇒ shortcuts_' key set equals `expected` (every key
  /// mutation outside refresh_shortcuts() invalidates).
  struct DerivedCache {
    bool valid = false;
    /// True only while shortcuts_' key set matches `expected`; cleared on
    /// every cache refill, set again by refresh_shortcuts' rebuild. Keeps
    /// partner_ref (which may refill the cache mid-timeout) from masking a
    /// pending table rebuild.
    bool table_synced = false;
    Label self;
    std::optional<Label> left;
    std::optional<Label> right;
    std::vector<Label> expected;
    std::optional<Label> partner_left;
    std::optional<Label> partner_right;
    /// Sorted positions of the partner labels within `expected` (== the
    /// table's key order while table_synced); -1 when the partner is the
    /// ring neighbor itself or absent.
    std::int32_t partner_index_left = -1;
    std::int32_t partner_index_right = -1;
  };
  mutable DerivedCache derived_;
};

}  // namespace ssps::core
