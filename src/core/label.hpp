// Skip-ring labels and the label mapping l : N0 → {0,1}* of §2.1.
//
// l(x) takes the binary representation (x_d … x_0)_2 of x (d minimal) and
// rotates the leading bit to the units place: l(x) = (x_{d−1} … x_0 x_d).
// Labels are generated in the order 0, 1, 01, 11, 001, 011, 101, 111, …
// and evaluate to r(l(x)) values that uniformly interleave earlier ones,
// which is what makes supervised insertion spread over the ring (§4.1).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "core/dyadic.hpp"
#include "sim/types.hpp"

namespace ssps::core {

/// A bit-string label (first bit is the most significant, i.e. worth 1/2).
///
/// Stored packed: `bits` is the label read as a binary number, `len` its
/// length in bits (>= 1). Two labels are identical only if both bits and
/// len match ("01" != "010"); use r() / r_key() for numeric comparisons.
class Label {
 public:
  /// Maximum supported length; bounded by Dyadic::kMaxExp.
  static constexpr int kMaxLen = Dyadic::kMaxExp;

  Label() : bits_(0), len_(1) {}  // the label "0"
  Label(std::uint64_t bits, int len);

  /// The supervisor's label function l(x).
  static Label from_index(std::uint64_t x);

  /// Parses a string of '0'/'1' characters; empty/overlong returns nullopt.
  static std::optional<Label> parse(const std::string& s);

  /// l⁻¹: defined for canonical labels only (see is_canonical()).
  std::uint64_t to_index() const;

  /// A label is canonical iff it is in the image of l: either "0", or it
  /// ends in bit 1 (the rotated leading bit). Corrupted initial states may
  /// hold non-canonical labels; the supervisor's repair removes them.
  bool is_canonical() const;

  /// r(label): exact position on the unit ring.
  Dyadic r() const { return Dyadic::make(bits_, len_); }

  /// 64-bit key monotone in r(): bits left-aligned. Distinct canonical
  /// labels have distinct keys; non-canonical labels may collide with the
  /// canonical label of equal r (ties broken by len in ROrder).
  std::uint64_t r_key() const { return bits_ << (64 - len_); }

  int length() const { return len_; }
  std::uint64_t bits() const { return bits_; }

  bool operator==(const Label&) const = default;

  /// Structural order: by r, then by length (total order usable in maps).
  std::strong_ordering operator<=>(const Label& o) const {
    if (auto c = r_key() <=> o.r_key(); c != 0) return c;
    return len_ <=> o.len_;
  }

  std::string to_string() const;

 private:
  std::uint64_t bits_;
  int len_;
};

/// A database/neighbor tuple (label_v, v) as used throughout the paper's
/// pseudocode: a node reference together with the label the holder believes
/// that node has. The label may be stale in non-legitimate states; the
/// extended BuildRing protocol repairs it (Lemma 4).
struct LabeledRef {
  Label label;
  sim::NodeId node;

  bool operator==(const LabeledRef&) const = default;
};

}  // namespace ssps::core
