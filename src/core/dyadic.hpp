// Exact dyadic-rational arithmetic on [0, 1).
//
// Every label y ∈ {0,1}* of the paper evaluates to the real value
// r(y) = Σ y_i / 2^i (§2.1). All protocol decisions (ring order, shortcut
// derivation, neighbor distances) compare these values, so we represent
// them exactly as num / 2^exp and never touch floating point.
#pragma once

#include <bit>
#include <compare>
#include <cstdint>

#include "common/assert.hpp"

namespace ssps::core {

/// A dyadic rational in [0, 1): value = num / 2^exp.
///
/// Invariant (normal form): num is odd, or num == 0 and exp == 0. This
/// makes structural equality coincide with numeric equality.
struct Dyadic {
  std::uint64_t num = 0;
  int exp = 0;

  /// Maximum representable exponent. Chosen so that all intermediate
  /// 128-bit cross-multiplications in comparisons stay exact.
  static constexpr int kMaxExp = 60;

  /// The value 0.
  static constexpr Dyadic zero() { return Dyadic{}; }

  /// num / 2^exp brought to normal form (trailing zeros stripped). The
  /// hot path of every Label::r() call, hence branch-light and inline.
  static constexpr Dyadic normalized(std::uint64_t num, int exp) {
    if (num == 0) return Dyadic{0, 0};
    const int tz = std::countr_zero(num);
    return Dyadic{num >> tz, exp - tz};
  }

  /// Builds num / 2^exp and normalizes. Requires num < 2^exp (value < 1)
  /// and exp <= kMaxExp.
  static Dyadic make(std::uint64_t num, int exp) {
    SSPS_ASSERT(exp >= 0 && exp <= kMaxExp);
    SSPS_ASSERT_MSG(num < (1ULL << exp) || num == 0, "Dyadic::make: value must be < 1");
    return normalized(num, exp);
  }

  bool operator==(const Dyadic&) const = default;

  /// Numeric order (exact).
  std::strong_ordering operator<=>(const Dyadic& o) const {
    const unsigned __int128 a = static_cast<unsigned __int128>(num) << o.exp;
    const unsigned __int128 b = static_cast<unsigned __int128>(o.num) << exp;
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  bool is_zero() const { return num == 0; }

  /// Lossy conversion for reporting only (never used in protocol logic).
  double to_double() const {
    return static_cast<double>(num) / static_cast<double>(1ULL << exp);
  }
};

/// (2·w − v) mod 1 — the shortcut mirror step of §3.2.2: reflecting the
/// previously inserted neighbor w across v yields the next-coarser ring
/// neighbor of v.
Dyadic mirror_mod1(const Dyadic& w, const Dyadic& v);

/// |a − b| on the line (not around the ring) — the distance used by the
/// configuration-merge rule (action (iii) of §3.2.1).
Dyadic linear_distance(const Dyadic& a, const Dyadic& b);

/// min(|a−b|, 1−|a−b|): distance around the unit ring.
Dyadic ring_distance(const Dyadic& a, const Dyadic& b);

}  // namespace ssps::core
