// Ground-truth topology of the skip ring SR(n) (Definition 2).
//
// Used as the oracle for legitimacy checking (convergence/closure tests),
// for Lemma 3 degree analytics, and for diameter measurements. The spec is
// purely combinatorial — it assigns structure to *labels*; concrete node
// ids attach via the supervisor's database.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/label.hpp"

namespace ssps::core {

/// Expected local state of the subscriber holding one label.
struct NodeSpec {
  /// Direct ring predecessor (E_R), absent for the minimum-label node
  /// (which keeps its predecessor — the maximum — in `ring`).
  std::optional<Label> left;
  /// Direct ring successor (E_R), absent for the maximum-label node.
  std::optional<Label> right;
  /// The cyclic closure edge: min stores max, max stores min.
  std::optional<Label> ring;
  /// All shortcut labels (E_S neighbors), sorted by r.
  std::vector<Label> shortcuts;
};

/// The ideal skip ring over labels l(0) … l(n−1).
class SkipRingSpec {
 public:
  explicit SkipRingSpec(std::size_t n);

  std::size_t n() const { return n_; }

  /// ⌈log2 n⌉ — the level of the ring edges; levels 1 … top−1 carry
  /// shortcuts.
  int top_level() const { return top_; }

  /// Labels in ring order (ascending r), starting at label "0".
  const std::vector<Label>& ring_order() const { return order_; }

  /// Expected neighbors of one label. Aborts if the label is not part of
  /// SR(n).
  const NodeSpec& expected(const Label& label) const;

  /// Degree of a label's node counting distinct neighbors (Lemma 3 uses
  /// edge slots; distinct-neighbor degree is what a peer table stores).
  std::size_t degree(const Label& label) const;

  /// Total number of directed edge slots 2·|E_R ∪ E_S| … we report the
  /// undirected edge count |E_R ∪ E_S| as the paper counts it (= 4n − 4
  /// for n a power of two, Lemma 3).
  std::size_t edge_count() const;

  /// Hop distances from `from` to every label over E_R ∪ E_S (BFS).
  std::unordered_map<std::uint64_t, int> hops_from(const Label& from) const;

  /// Exact diameter (max over BFS from every node); O(n·(n+m)) — intended
  /// for n up to a few thousand.
  int diameter() const;

  /// The level of edge (a, b) per Definition 2: max(|a|, |b|).
  static int edge_level(const Label& a, const Label& b);

  /// Greedy routing from `from` to `to`: hop to the neighbor minimizing
  /// the remaining ring distance. Returns the hop count; if `load` is
  /// non-null (indexed by ring-order position), increments it for every
  /// intermediate node. Used by the congestion experiment (E9).
  int route(const Label& from, const Label& to,
            std::vector<std::uint64_t>* load) const;

  /// Ring-order position of a label (the index into ring_order()).
  std::size_t position(const Label& label) const { return index_of(label); }

 private:
  std::size_t index_of(const Label& label) const;

  std::size_t n_;
  int top_;
  std::vector<Label> order_;                    // ring order
  std::vector<NodeSpec> spec_;                  // by ring-order index
  std::unordered_map<std::uint64_t, std::size_t> by_key_;  // r_key -> index
};

}  // namespace ssps::core
