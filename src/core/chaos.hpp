// Adversarial initial-state generators.
//
// Self-stabilization (Definition 1) quantifies over arbitrary initial
// states: node variables may hold any values and channels any finite
// number of corrupted messages (only node references must denote existing
// nodes — §1.1 assumes no corrupted IDs). These generators produce the
// state classes used by the convergence experiments (E4) and tests.
#pragma once

#include <cstdint>

#include "core/system.hpp"

namespace ssps::core {

/// Knobs for one corrupted-state instantiation.
struct ChaosOptions {
  std::uint64_t seed = 7;

  // -- subscriber-state corruption --
  /// Fraction (0..1 as percent) of subscribers whose label is cleared (⊥).
  int clear_label_pct = 20;
  /// Percent of subscribers that get a random (possibly non-canonical,
  /// possibly duplicate) label.
  int random_label_pct = 40;
  /// Percent of neighbor slots filled with uniformly random peers.
  int scramble_edges_pct = 60;
  /// Percent of subscribers receiving bogus shortcut entries.
  int bogus_shortcut_pct = 30;

  // -- supervisor-database corruption (§3.1 cases) --
  bool corrupt_database = true;
  /// case (i): insert this many (label, ⊥) tuples.
  int null_tuples = 2;
  /// case (ii): duplicate this many nodes under extra labels.
  int duplicate_nodes = 2;
  /// case (iii): delete this many tuples (creating label holes).
  int missing_labels = 2;
  /// case (iv): relabel this many tuples to indices >= n.
  int out_of_range_labels = 2;
  /// Drop every database tuple entirely (empty-database cold start).
  bool wipe_database = false;

  // -- channel corruption --
  /// Number of garbage messages injected into random channels.
  int junk_messages = 32;
};

/// Builds a system of `n` subscribers that has fully converged, then
/// applies the corruption described by `options`. The result is the
/// adversarial initial state handed to convergence runs.
///
/// Every injected reference denotes an existing node, per the model.
void corrupt_system(SkipRingSystem& system, const ChaosOptions& options);

/// Partition scenario: assigns the subscribers labels as if they formed
/// two independent rings built by two different supervisors (each half
/// internally consistent), while the real supervisor's database knows only
/// the first half. Models the "merge two overlays" recovery case.
void split_brain(SkipRingSystem& system, std::uint64_t seed);

}  // namespace ssps::core
