#include "core/system.hpp"

#include <sstream>

#include "core/skip_ring_spec.hpp"
#include "sim/trace.hpp"

namespace ssps::core {

SkipRingSystem::SkipRingSystem(const Options& options) : net_(options.seed) {
  supervisor_id_ = net_.spawn<SupervisorNode>();
  fd_ = std::make_unique<sim::FailureDetector>(net_, options.fd_delay);
  supervisor().set_failure_detector(fd_.get());
}

SupervisorProtocol& SkipRingSystem::supervisor() {
  return net_.node_as<SupervisorNode>(supervisor_id_).protocol();
}

const SupervisorProtocol& SkipRingSystem::supervisor() const {
  return const_cast<SkipRingSystem*>(this)->supervisor();
}

sim::NodeId SkipRingSystem::add_subscriber() {
  return net_.spawn<SubscriberNode>(supervisor_id_);
}

std::vector<sim::NodeId> SkipRingSystem::add_subscribers(std::size_t count) {
  std::vector<sim::NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(add_subscriber());
  return ids;
}

SubscriberProtocol& SkipRingSystem::subscriber(sim::NodeId id) {
  return net_.node_as<SubscriberNode>(id).protocol();
}

const SubscriberProtocol& SkipRingSystem::subscriber(sim::NodeId id) const {
  return const_cast<SkipRingSystem*>(this)->subscriber(id);
}

std::vector<sim::NodeId> SkipRingSystem::subscriber_ids() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId id : net_.alive_ids()) {
    if (id != supervisor_id_) out.push_back(id);
  }
  return out;
}

std::vector<sim::NodeId> SkipRingSystem::active_ids() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId id : subscriber_ids()) {
    if (subscriber(id).phase() == SubscriberPhase::kActive) out.push_back(id);
  }
  return out;
}

void SkipRingSystem::request_unsubscribe(sim::NodeId id) {
  subscriber(id).request_unsubscribe();
}

void SkipRingSystem::crash(sim::NodeId id) { net_.crash(id); }

std::optional<std::size_t> SkipRingSystem::run_until_legit(std::size_t max_rounds) {
  return net_.run_until([this] { return topology_legit(); }, max_rounds);
}

bool SkipRingSystem::topology_legit() const { return legitimacy_violation().empty(); }

std::string SkipRingSystem::to_dot() const {
  std::vector<sim::NodeId> nodes = subscriber_ids();
  std::vector<sim::DotEdge> edges;
  for (sim::NodeId id : nodes) {
    const SubscriberProtocol& sub = subscriber(id);
    auto add = [&](const std::optional<LabeledRef>& slot, const char* kind) {
      if (slot && slot->node) edges.push_back(sim::DotEdge{id, slot->node, kind});
    };
    add(sub.left(), "ring");
    add(sub.right(), "ring");
    add(sub.ring(), "cyc");
    for (const auto& [label, node] : sub.shortcuts()) {
      if (node) edges.push_back(sim::DotEdge{id, node, "shortcut"});
    }
  }
  return sim::to_dot(nodes, edges, [this](sim::NodeId id) {
    const auto& label = subscriber(id).label();
    return std::to_string(id.value) + "\n" + (label ? label->to_string() : "⊥");
  });
}

std::string SkipRingSystem::legitimacy_violation() const {
  std::ostringstream why;
  const auto active = active_ids();
  const std::size_t n = active.size();
  const auto& db = supervisor().database();

  // 1. Database: consistent and covering exactly the active subscribers.
  if (!supervisor().database_consistent()) return "database corrupted";
  if (db.size() != n) {
    why << "database size " << db.size() << " != active " << n;
    return why.str();
  }
  std::unordered_map<sim::NodeId, Label> assignment;
  for (const auto& [label, node] : db) {
    if (!net_.alive(node) || node == supervisor_id_) {
      why << "database references dead node " << node.value;
      return why.str();
    }
    if (subscriber(node).phase() != SubscriberPhase::kActive) {
      why << "database references non-active node " << node.value;
      return why.str();
    }
    assignment.emplace(node, label);
  }
  if (assignment.size() != n) return "database misses an active subscriber";

  // 2. Every subscriber state matches the SR(n) spec under the database's
  // label assignment.
  const std::size_t spec_n = n == 0 ? 1 : n;
  if (!spec_cache_ || spec_cache_->n() != spec_n) {
    spec_cache_ = std::make_unique<SkipRingSpec>(spec_n);
  }
  const SkipRingSpec& spec = *spec_cache_;
  auto ref_of = [&](const Label& l) -> LabeledRef {
    return LabeledRef{l, db.at(l)};
  };
  auto check_slot = [&](const char* what, sim::NodeId who,
                        const std::optional<LabeledRef>& got,
                        const std::optional<Label>& want) -> bool {
    if (want.has_value() != got.has_value()) {
      why << "node " << who.value << ": " << what << (want ? " missing" : " spurious");
      return false;
    }
    if (want && !(got->label == *want && got->node == ref_of(*want).node)) {
      why << "node " << who.value << ": " << what << " mismatch (have "
          << got->label.to_string() << "@" << got->node.value << ", want "
          << want->to_string() << "@" << ref_of(*want).node.value << ")";
      return false;
    }
    return true;
  };

  for (sim::NodeId id : active) {
    const SubscriberProtocol& sub = subscriber(id);
    auto it = assignment.find(id);
    if (it == assignment.end()) {
      why << "node " << id.value << " not recorded";
      return why.str();
    }
    if (!sub.label() || !(*sub.label() == it->second)) {
      why << "node " << id.value << " label "
          << (sub.label() ? sub.label()->to_string() : "⊥") << " != db "
          << it->second.to_string();
      return why.str();
    }
    const NodeSpec& ns = spec.expected(it->second);
    if (!check_slot("left", id, sub.left(), ns.left)) return why.str();
    if (!check_slot("right", id, sub.right(), ns.right)) return why.str();
    if (!check_slot("ring", id, sub.ring(), ns.ring)) return why.str();

    const auto& sc = sub.shortcuts();
    if (sc.size() != ns.shortcuts.size()) {
      why << "node " << id.value << " has " << sc.size() << " shortcut labels, want "
          << ns.shortcuts.size();
      return why.str();
    }
    for (const Label& l : ns.shortcuts) {
      auto jt = sc.find(l);
      if (jt == sc.end()) {
        why << "node " << id.value << " missing shortcut label " << l.to_string();
        return why.str();
      }
      if (jt->second != ref_of(l).node) {
        why << "node " << id.value << " shortcut " << l.to_string()
            << " points to wrong node";
        return why.str();
      }
    }
  }
  return "";
}

}  // namespace ssps::core
