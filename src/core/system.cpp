#include "core/system.hpp"

#include <sstream>

#include "core/skip_ring_spec.hpp"
#include "sim/trace.hpp"

namespace ssps::core {

SkipRingSystem::SkipRingSystem(const Options& options) : net_(options.seed) {
  supervisor_id_ = net_.spawn<SupervisorNode>();
  fd_ = std::make_unique<sim::FailureDetector>(net_, options.fd_delay);
  supervisor().set_failure_detector(fd_.get());
}

SupervisorProtocol& SkipRingSystem::supervisor() {
  return net_.node_as<SupervisorNode>(supervisor_id_).protocol();
}

const SupervisorProtocol& SkipRingSystem::supervisor() const {
  return const_cast<SkipRingSystem*>(this)->supervisor();
}

sim::NodeId SkipRingSystem::add_subscriber() {
  return net_.spawn<SubscriberNode>(supervisor_id_);
}

std::vector<sim::NodeId> SkipRingSystem::add_subscribers(std::size_t count) {
  std::vector<sim::NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(add_subscriber());
  return ids;
}

SubscriberProtocol& SkipRingSystem::subscriber(sim::NodeId id) {
  return net_.node_as<SubscriberNode>(id).protocol();
}

const SubscriberProtocol& SkipRingSystem::subscriber(sim::NodeId id) const {
  return const_cast<SkipRingSystem*>(this)->subscriber(id);
}

std::vector<sim::NodeId> SkipRingSystem::subscriber_ids() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId id : net_.alive_ids()) {
    if (id != supervisor_id_) out.push_back(id);
  }
  return out;
}

std::vector<sim::NodeId> SkipRingSystem::active_ids() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId id : subscriber_ids()) {
    if (subscriber(id).phase() == SubscriberPhase::kActive) out.push_back(id);
  }
  return out;
}

void SkipRingSystem::request_unsubscribe(sim::NodeId id) {
  subscriber(id).request_unsubscribe();
}

void SkipRingSystem::crash(sim::NodeId id) { net_.crash(id); }

bool SkipRingSystem::recover_subscriber(sim::NodeId id) {
  return net_.recover(id, std::make_unique<SubscriberNode>(supervisor_id_));
}

std::optional<std::size_t> SkipRingSystem::run_until_legit(std::size_t max_rounds) {
  return net_.run_until([this] { return topology_legit(); }, max_rounds);
}

bool SkipRingSystem::topology_legit() const { return probe_legit(); }

std::size_t SkipRingSystem::nonconforming_count() const {
  probe_legit();  // refresh the conformance cache
  if (!probe_.db_ok) {
    // Database-level failure: no per-node attribution exists. Count every
    // alive subscriber (population minus the supervisor).
    const std::size_t alive = net_.alive_count();
    return alive > 0 ? alive - 1 : 0;
  }
  return probe_.nonconforming;
}

std::string SkipRingSystem::to_dot() const {
  std::vector<sim::NodeId> nodes = subscriber_ids();
  std::vector<sim::DotEdge> edges;
  for (sim::NodeId id : nodes) {
    const SubscriberProtocol& sub = subscriber(id);
    auto add = [&](const std::optional<LabeledRef>& slot, const char* kind) {
      if (slot && slot->node) edges.push_back(sim::DotEdge{id, slot->node, kind});
    };
    add(sub.left(), "ring");
    add(sub.right(), "ring");
    add(sub.ring(), "cyc");
    for (const auto& [label, node] : sub.shortcuts()) {
      if (node) edges.push_back(sim::DotEdge{id, node, "shortcut"});
    }
  }
  return sim::to_dot(nodes, edges, [this](sim::NodeId id) {
    const auto& label = subscriber(id).label();
    return std::to_string(id.value) + "\n" + (label ? label->to_string() : "⊥");
  });
}

// ---------------------------------------------------------------------------
// Incremental legitimacy probe
//
// Layered caching, each layer keyed by a cheap monotone epoch:
//   - database layer: consistency, liveness of values, and the flat
//     label-index -> node assignment revalidate only when the supervisor's
//     db_version() or the network topology epoch (slot count, alive count)
//     moved;
//   - node layer: each subscriber's conformance to the cached SkipRingSpec
//     re-verifies only when its state_version() moved (or the database
//     layer was rebuilt under it);
//   - the probe answer itself is the live nonconforming count plus an O(1)
//     size compare, so the steady-state query costs one version sweep.
// The exhaustive reference checker below stays the semantic ground truth;
// tests/core/probe_differential_test.cpp pins the equivalence round by
// round under chaos, scramble and churn.
// ---------------------------------------------------------------------------

bool SkipRingSystem::revalidate_database() const {
  const SupervisorProtocol& sup = supervisor();
  probe_.by_index.clear();
  if (!sup.database_consistent()) return false;
  const auto& db = sup.database();
  const std::size_t n = db.size();
  probe_.by_index.assign(n, sim::NodeId::null());
  for (const auto& [label, node] : db) {
    if (!net_.alive(node) || node == supervisor_id_) return false;
    // Consistency guarantees the labels are exactly {l(0) ... l(n-1)}.
    probe_.by_index[label.to_index()] = node;
  }
  const std::size_t spec_n = n == 0 ? 1 : n;
  if (!spec_cache_ || spec_cache_->n() != spec_n) {
    spec_cache_ = std::make_unique<SkipRingSpec>(spec_n);
  }
  return true;
}

bool SkipRingSystem::node_conforms(sim::NodeId id, const SubscriberProtocol& sub,
                                   std::ostream* why) const {
  const std::optional<Label> assigned = supervisor().label_of(id);
  if (!assigned) {
    if (why) *why << "node " << id.value << " not recorded";
    return false;
  }
  if (!sub.label() || !(*sub.label() == *assigned)) {
    if (why) {
      *why << "node " << id.value << " label "
           << (sub.label() ? sub.label()->to_string() : "⊥") << " != db "
           << assigned->to_string();
    }
    return false;
  }
  // The flat assignment makes every neighbor resolution O(1), so one node
  // re-checks in O(log n) label compares total.
  auto node_of = [&](const Label& l) { return probe_.by_index[l.to_index()]; };
  auto slot_ok = [&](const char* what, const std::optional<LabeledRef>& got,
                     const std::optional<Label>& want) {
    if (want.has_value() != got.has_value()) {
      if (why) {
        *why << "node " << id.value << ": " << what
             << (want ? " missing" : " spurious");
      }
      return false;
    }
    if (want && !(got->label == *want && got->node == node_of(*want))) {
      if (why) {
        *why << "node " << id.value << ": " << what << " mismatch (have "
             << got->label.to_string() << "@" << got->node.value << ", want "
             << want->to_string() << "@" << node_of(*want).value << ")";
      }
      return false;
    }
    return true;
  };
  const NodeSpec& ns = spec_cache_->expected(*assigned);
  if (!slot_ok("left", sub.left(), ns.left)) return false;
  if (!slot_ok("right", sub.right(), ns.right)) return false;
  if (!slot_ok("ring", sub.ring(), ns.ring)) return false;

  const ShortcutTable& sc = sub.shortcuts();
  if (sc.size() != ns.shortcuts.size()) {
    if (why) {
      *why << "node " << id.value << " has " << sc.size()
           << " shortcut labels, want " << ns.shortcuts.size();
    }
    return false;
  }
  // Both sides are sorted by label (the table by construction, the spec's
  // expectation by r — identical orders on canonical labels), so the set
  // comparison is one lockstep walk; any junk key breaks the first compare.
  for (std::size_t i = 0; i < ns.shortcuts.size(); ++i) {
    const auto& [have, node] = sc.entry(i);
    const Label& want = ns.shortcuts[i];
    if (!(have == want)) {
      if (why) {
        *why << "node " << id.value << " missing shortcut label "
             << want.to_string();
      }
      return false;
    }
    if (node != node_of(want)) {
      if (why) {
        *why << "node " << id.value << " shortcut " << want.to_string()
             << " points to wrong node";
      }
      return false;
    }
  }
  return true;
}

bool SkipRingSystem::probe_legit() const {
  const SupervisorProtocol& sup = supervisor();
  const std::uint64_t dbv = sup.db_version();
  const std::size_t slots = net_.slot_count();
  const std::size_t alive = net_.alive_count();
  if (!probe_.db_checked || probe_.db_version != dbv ||
      probe_.slots_seen != slots || probe_.alive_seen != alive) {
    probe_.db_version = dbv;
    probe_.slots_seen = slots;
    probe_.alive_seen = alive;
    probe_.db_ok = revalidate_database();
    probe_.db_checked = true;
    // The assignment every cached conformance was judged against moved.
    probe_.nodes_valid = false;
  }
  if (!probe_.db_ok) return false;

  if (!probe_.nodes_valid) {
    probe_.nodes.assign(slots, ProbeState::Entry{});
    probe_.active_count = 0;
    probe_.nonconforming = 0;
    probe_.nodes_valid = true;
  }
  net_.for_each_alive([&](sim::NodeId id, const sim::Node& node) {
    if (id == supervisor_id_) return;
    SSPS_ASSERT(SubscriberNode::classof(node.kind()));
    const SubscriberProtocol& sub =
        static_cast<const SubscriberNode&>(node).protocol();
    ProbeState::Entry& e = probe_.nodes[static_cast<std::size_t>(id.value - 1)];
    const std::uint64_t version = sub.state_version();
    if (e.version == version) return;  // unchanged since its last check
    if (e.version != 0) {
      probe_.active_count -= e.active ? 1 : 0;
      probe_.nonconforming -= e.conforms ? 0 : 1;
    }
    e.version = version;
    e.active = sub.phase() == SubscriberPhase::kActive;
    // An active node must match its database slot and the spec; a leaving
    // or departed (but alive) node must have left the database.
    e.conforms = e.active ? node_conforms(id, sub, nullptr)
                          : !supervisor().label_of(id).has_value();
    probe_.active_count += e.active ? 1 : 0;
    probe_.nonconforming += e.conforms ? 0 : 1;
  });
  return probe_.nonconforming == 0 && probe_.active_count == sup.size();
}

std::string SkipRingSystem::legitimacy_violation() const {
  return topology_legit() ? std::string() : legitimacy_violation_full();
}

std::string SkipRingSystem::legitimacy_violation_full() const {
  std::ostringstream why;
  const auto active = active_ids();
  const std::size_t n = active.size();
  const auto& db = supervisor().database();

  // 1. Database: consistent and covering exactly the active subscribers.
  if (!supervisor().database_consistent()) return "database corrupted";
  if (db.size() != n) {
    why << "database size " << db.size() << " != active " << n;
    return why.str();
  }
  std::unordered_map<sim::NodeId, Label> assignment;
  for (const auto& [label, node] : db) {
    if (!net_.alive(node) || node == supervisor_id_) {
      why << "database references dead node " << node.value;
      return why.str();
    }
    if (subscriber(node).phase() != SubscriberPhase::kActive) {
      why << "database references non-active node " << node.value;
      return why.str();
    }
    assignment.emplace(node, label);
  }
  if (assignment.size() != n) return "database misses an active subscriber";

  // 2. Every subscriber state matches the SR(n) spec under the database's
  // label assignment.
  const std::size_t spec_n = n == 0 ? 1 : n;
  if (!spec_cache_ || spec_cache_->n() != spec_n) {
    spec_cache_ = std::make_unique<SkipRingSpec>(spec_n);
  }
  const SkipRingSpec& spec = *spec_cache_;
  auto ref_of = [&](const Label& l) -> LabeledRef {
    return LabeledRef{l, db.at(l)};
  };
  auto check_slot = [&](const char* what, sim::NodeId who,
                        const std::optional<LabeledRef>& got,
                        const std::optional<Label>& want) -> bool {
    if (want.has_value() != got.has_value()) {
      why << "node " << who.value << ": " << what << (want ? " missing" : " spurious");
      return false;
    }
    if (want && !(got->label == *want && got->node == ref_of(*want).node)) {
      why << "node " << who.value << ": " << what << " mismatch (have "
          << got->label.to_string() << "@" << got->node.value << ", want "
          << want->to_string() << "@" << ref_of(*want).node.value << ")";
      return false;
    }
    return true;
  };

  for (sim::NodeId id : active) {
    const SubscriberProtocol& sub = subscriber(id);
    auto it = assignment.find(id);
    if (it == assignment.end()) {
      why << "node " << id.value << " not recorded";
      return why.str();
    }
    if (!sub.label() || !(*sub.label() == it->second)) {
      why << "node " << id.value << " label "
          << (sub.label() ? sub.label()->to_string() : "⊥") << " != db "
          << it->second.to_string();
      return why.str();
    }
    const NodeSpec& ns = spec.expected(it->second);
    if (!check_slot("left", id, sub.left(), ns.left)) return why.str();
    if (!check_slot("right", id, sub.right(), ns.right)) return why.str();
    if (!check_slot("ring", id, sub.ring(), ns.ring)) return why.str();

    const auto& sc = sub.shortcuts();
    if (sc.size() != ns.shortcuts.size()) {
      why << "node " << id.value << " has " << sc.size() << " shortcut labels, want "
          << ns.shortcuts.size();
      return why.str();
    }
    for (const Label& l : ns.shortcuts) {
      auto jt = sc.find(l);
      if (jt == sc.end()) {
        why << "node " << id.value << " missing shortcut label " << l.to_string();
        return why.str();
      }
      if (jt->second != ref_of(l).node) {
        why << "node " << id.value << " shortcut " << l.to_string()
            << " points to wrong node";
        return why.str();
      }
    }
  }
  return "";
}

}  // namespace ssps::core
