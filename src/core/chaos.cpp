#include "core/chaos.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ssps::core {

namespace {

Label random_label(ssps::Rng& rng, int max_len = 10) {
  const int len = static_cast<int>(rng.between(1, static_cast<std::uint64_t>(max_len)));
  const std::uint64_t bits = rng.below(1ULL << len);
  return Label(bits, len);
}

sim::NodeId random_peer(ssps::Rng& rng, const std::vector<sim::NodeId>& peers) {
  return peers[rng.pick_index(peers)];
}

sim::PooledMsg random_junk(ssps::Rng& rng, sim::MessagePool& pool,
                           const std::vector<sim::NodeId>& peers) {
  const LabeledRef ref{random_label(rng), random_peer(rng, peers)};
  switch (rng.below(6)) {
    case 0:
      return pool.make<msg::Check>(ref, random_label(rng),
                                   rng.chance(1, 2) ? IntroFlag::kLinear
                                                    : IntroFlag::kCyclic);
    case 1:
      return pool.make<msg::Introduce>(
          ref, rng.chance(1, 2) ? IntroFlag::kLinear : IntroFlag::kCyclic);
    case 2:
      return pool.make<msg::IntroduceShortcut>(ref);
    case 3:
      return pool.make<msg::RemoveConnections>(random_peer(rng, peers));
    case 4: {
      // A stale configuration: exactly the kind of corrupted message an
      // outdated supervisor reply would be.
      const LabeledRef a{random_label(rng), random_peer(rng, peers)};
      const LabeledRef b{random_label(rng), random_peer(rng, peers)};
      return pool.make<msg::SetData>(a, random_label(rng), b);
    }
    default:
      return pool.make<msg::SetData>(std::nullopt, std::nullopt, std::nullopt);
  }
}

}  // namespace

void corrupt_system(SkipRingSystem& system, const ChaosOptions& options) {
  ssps::Rng rng(options.seed);
  const auto subs = system.subscriber_ids();
  if (subs.empty()) return;

  for (sim::NodeId id : subs) {
    SubscriberProtocol& sub = system.subscriber(id);
    if (static_cast<int>(rng.below(100)) < options.clear_label_pct) {
      sub.chaos_set_label(std::nullopt);
    } else if (static_cast<int>(rng.below(100)) < options.random_label_pct) {
      sub.chaos_set_label(random_label(rng));
    }
    if (static_cast<int>(rng.below(100)) < options.scramble_edges_pct) {
      auto scramble = [&]() -> std::optional<LabeledRef> {
        switch (rng.below(3)) {
          case 0:
            return std::nullopt;
          default:
            return LabeledRef{random_label(rng), random_peer(rng, subs)};
        }
      };
      sub.chaos_set_left(scramble());
      sub.chaos_set_right(scramble());
      sub.chaos_set_ring(scramble());
    }
    if (static_cast<int>(rng.below(100)) < options.bogus_shortcut_pct) {
      for (int i = 0; i < 3; ++i) {
        sub.chaos_put_shortcut(random_label(rng), random_peer(rng, subs));
      }
    }
  }

  SupervisorProtocol& sup = system.supervisor();
  if (options.wipe_database) {
    sup.chaos_clear();
  } else if (options.corrupt_database) {
    // (iv) out-of-range labels first (while the original tuples exist).
    const std::size_t n = sup.size();
    for (int i = 0; i < options.out_of_range_labels && sup.size() > 0; ++i) {
      const auto& db = sup.database();
      auto it = db.begin();
      std::advance(it, static_cast<long>(rng.below(db.size())));
      const sim::NodeId node = it->second;
      const Label old = it->first;
      sup.chaos_insert(Label::from_index(n + rng.below(16)), node);
      // Remove the old tuple by overwriting it with ⊥ then letting case (i)
      // handling... no: emulate a raw relabel by re-inserting ⊥ under the
      // old label and letting repair drop it.
      sup.chaos_insert_null(old);
    }
    // (ii) duplicates.
    for (int i = 0; i < options.duplicate_nodes; ++i) {
      sup.chaos_insert(random_label(rng, Label::kMaxLen / 2),
                       random_peer(rng, subs));
    }
    // (iii) holes: drop tuples by overwriting with ⊥ (then case (i) logic
    // removes the tuple and the label goes missing).
    for (int i = 0; i < options.missing_labels && sup.size() > 0; ++i) {
      const auto& db = sup.database();
      auto it = db.begin();
      std::advance(it, static_cast<long>(rng.below(db.size())));
      sup.chaos_insert_null(it->first);
    }
    // (i) plain null tuples.
    for (int i = 0; i < options.null_tuples; ++i) {
      sup.chaos_insert_null(random_label(rng, Label::kMaxLen / 2));
    }
  }

  for (int i = 0; i < options.junk_messages; ++i) {
    system.net().inject(random_peer(rng, subs),
                        random_junk(rng, system.net().pool(), subs));
  }
}

void split_brain(SkipRingSystem& system, std::uint64_t seed) {
  ssps::Rng rng(seed);
  auto subs = system.subscriber_ids();
  rng.shuffle(subs);
  const std::size_t half = subs.size() / 2;
  SupervisorProtocol& sup = system.supervisor();
  sup.chaos_clear();

  auto build_ring = [&](std::size_t begin, std::size_t end, bool recorded) {
    const std::size_t m = end - begin;
    if (m == 0) return;
    // Assign labels l(0..m−1) and wire a consistent standalone ring.
    std::vector<std::pair<Label, sim::NodeId>> members;
    for (std::size_t i = begin; i < end; ++i) {
      members.emplace_back(Label::from_index(i - begin), subs[i]);
    }
    std::sort(members.begin(), members.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < m; ++i) {
      const auto& [label, id] = members[i];
      SubscriberProtocol& sub = system.subscriber(id);
      sub.chaos_set_label(label);
      sub.chaos_set_left(std::nullopt);
      sub.chaos_set_right(std::nullopt);
      sub.chaos_set_ring(std::nullopt);
      sub.chaos_clear_shortcuts();
      if (m == 1) continue;
      const auto& pred = members[(i + m - 1) % m];
      const auto& succ = members[(i + 1) % m];
      const LabeledRef pred_ref{pred.first, pred.second};
      const LabeledRef succ_ref{succ.first, succ.second};
      if (i == 0) {
        sub.chaos_set_ring(pred_ref);
        sub.chaos_set_right(succ_ref);
      } else if (i == m - 1) {
        sub.chaos_set_ring(succ_ref);
        sub.chaos_set_left(pred_ref);
      } else {
        sub.chaos_set_left(pred_ref);
        sub.chaos_set_right(succ_ref);
      }
      if (recorded) sup.chaos_insert(label, id);
    }
    // Single-member recorded half still needs its database entry.
    if (recorded && m == 1) sup.chaos_insert(members[0].first, members[0].second);
  };

  build_ring(0, half, /*recorded=*/true);
  build_ring(half, subs.size(), /*recorded=*/false);
}

}  // namespace ssps::core
