#include "pubsub/bitstring.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace ssps::pubsub {

void BitString::grow_words(std::size_t n) {
  if (n <= kInlineWords) return;  // sbo_ already covers it (zero on construction)
  if (overflow_.empty()) {
    overflow_.reserve(n);
    overflow_.assign(sbo_, sbo_ + kInlineWords);
  }
  overflow_.resize(n, 0);
}

BitString BitString::from_string(const std::string& s) {
  BitString out;
  for (char c : s) {
    SSPS_ASSERT_MSG(c == '0' || c == '1', "BitString::from_string: bad character");
    out.push_back(c == '1');
  }
  return out;
}

BitString BitString::from_bytes(std::span<const std::uint8_t> data, std::size_t bits) {
  SSPS_ASSERT(bits <= data.size() * 8);
  BitString out;
  out.len_ = bits;
  out.grow_words((bits + 63) / 64);
  std::uint64_t* w = out.words();
  for (std::size_t i = 0; i < bits; ++i) {
    const bool b = (data[i / 8] >> (7 - (i % 8))) & 1U;
    if (b) w[i / 64] |= (1ULL << (63 - (i % 64)));
  }
  return out;
}

BitString BitString::from_uint(std::uint64_t value, std::size_t bits) {
  SSPS_ASSERT(bits <= 64);
  BitString out;
  for (std::size_t i = 0; i < bits; ++i) {
    out.push_back((value >> (bits - 1 - i)) & 1ULL);
  }
  return out;
}

bool BitString::bit(std::size_t i) const {
  SSPS_ASSERT(i < len_);
  return (words()[i / 64] >> (63 - (i % 64))) & 1ULL;
}

void BitString::push_back(bool b) {
  if (len_ % 64 == 0) {
    const std::size_t idx = len_ / 64;
    grow_words(idx + 1);
    words()[idx] = 0;
  }
  if (b) words()[len_ / 64] |= (1ULL << (63 - (len_ % 64)));
  ++len_;
}

void BitString::append(const BitString& other) {
  // Simple bit-by-bit append; labels are short, keys at most a few words.
  for (std::size_t i = 0; i < other.len_; ++i) push_back(other.bit(i));
}

BitString BitString::prefix(std::size_t k) const {
  SSPS_ASSERT(k <= len_);
  BitString out;
  out.len_ = k;
  out.grow_words((k + 63) / 64);
  std::uint64_t* w = out.words();
  const std::size_t n = (k + 63) / 64;
  for (std::size_t i = 0; i < n; ++i) w[i] = words()[i];
  // Clear bits past k in the last word.
  const std::size_t rem = k % 64;
  if (rem != 0 && n > 0) w[n - 1] &= ~0ULL << (64 - rem);
  return out;
}

BitString BitString::with_bit(bool b) const {
  BitString out = *this;
  out.push_back(b);
  return out;
}

std::size_t BitString::common_prefix_len(const BitString& other) const {
  const std::size_t limit = len_ < other.len_ ? len_ : other.len_;
  std::size_t i = 0;
  const std::size_t nwords = (limit + 63) / 64;
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t x = a[w] ^ b[w];
    if (x != 0) {
      i = w * 64 + static_cast<std::size_t>(std::countl_zero(x));
      return i < limit ? i : limit;
    }
  }
  return limit;
}

bool BitString::is_prefix_of(const BitString& other) const {
  return len_ <= other.len_ && common_prefix_len(other) == len_;
}

bool BitString::operator==(const BitString& other) const {
  if (len_ != other.len_) return false;
  const std::size_t n = word_count();
  return std::memcmp(words(), other.words(), n * sizeof(std::uint64_t)) == 0;
}

std::strong_ordering BitString::operator<=>(const BitString& other) const {
  const std::size_t cpl = common_prefix_len(other);
  if (cpl == len_ && cpl == other.len_) return std::strong_ordering::equal;
  if (cpl == len_) return std::strong_ordering::less;     // we are a proper prefix
  if (cpl == other.len_) return std::strong_ordering::greater;
  return bit(cpl) ? std::strong_ordering::greater : std::strong_ordering::less;
}

std::string BitString::to_string() const {
  std::string s(len_, '0');
  for (std::size_t i = 0; i < len_; ++i) {
    if (bit(i)) s[i] = '1';
  }
  return s;
}

std::vector<std::uint8_t> BitString::to_bytes() const {
  std::vector<std::uint8_t> out((len_ + 7) / 8, 0);
  for (std::size_t i = 0; i < len_; ++i) {
    if (bit(i)) out[i / 8] |= static_cast<std::uint8_t>(1U << (7 - (i % 8)));
  }
  return out;
}

std::size_t BitString::hash_value() const noexcept {
  // FNV-1a over the words plus the length.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const std::uint64_t* w = words();
  const std::size_t n = word_count();
  for (std::size_t i = 0; i < n; ++i) mix(w[i]);
  mix(len_);
  return static_cast<std::size_t>(h);
}

}  // namespace ssps::pubsub
