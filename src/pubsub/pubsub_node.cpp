#include "pubsub/pubsub_node.hpp"

#include <unordered_set>

namespace ssps::pubsub {

PubSubProtocol::PubSubProtocol(core::SubscriberProtocol& overlay, core::MessageSink& sink,
                               ssps::Rng& rng, const PubSubConfig& config)
    : overlay_(&overlay), sink_(&sink), rng_(&rng), config_(config),
      trie_(config.key_bits) {}

// ---------------------------------------------------------------------------
// PublishTimeout
// ---------------------------------------------------------------------------

void PubSubProtocol::timeout() {
  if (!config_.anti_entropy) return;
  if (trie_.empty()) return;  // nothing to offer; we learn via neighbors
  std::array<sim::NodeId, 3> neighbors;
  const std::size_t count = overlay_->ring_neighbors_into(neighbors);
  if (count == 0) return;
  const sim::NodeId target = neighbors[rng_->below(count)];
  sink_->emit<msg::CheckTrie>(target, overlay_->self(),
                              std::vector<NodeSummary>{*trie_.root()});
}

void PubSubProtocol::publish(std::string payload) {
  Publication p{overlay_->self(), std::move(payload), sink_->round()};
  if (!trie_.insert(p)) return;
  sink_->publication_delivered(0);  // reached the origin by definition
  if (config_.flooding) flood(p, sim::NodeId::null());
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool PubSubProtocol::handle(const sim::Message& m) {
  if (const auto* ct = sim::msg_cast<msg::CheckTrie>(m)) {
    on_check_trie(ct->sender, ct->tuples);
    return true;
  }
  if (const auto* cp = sim::msg_cast<msg::CheckAndPublish>(m)) {
    on_check_and_publish(*cp);
    return true;
  }
  if (const auto* p = sim::msg_cast<msg::Publish>(m)) {
    on_publish(*p);
    return true;
  }
  if (const auto* pn = sim::msg_cast<msg::PublishNew>(m)) {
    on_publish_new(*pn);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Anti-entropy (the three CheckTrie cases of §4.2)
// ---------------------------------------------------------------------------

void PubSubProtocol::check_tuple(sim::NodeId sender, const NodeSummary& tuple) {
  const Locate loc = trie_.locate(tuple.label);
  switch (loc.kind) {
    case Locate::Kind::kExact: {
      if (loc.node.hash == tuple.hash) return;  // subtries identical: silence
      if (!loc.is_leaf) {
        // Case (ii): recurse into our children; the sender compares them.
        sink_->emit<msg::CheckTrie>(sender, overlay_->self(), loc.children);
        return;
      }
      // Equal leaf labels always hash equally (hash = h(label)); reaching
      // this point means the tuple is corrupted. Re-anchor the exchange at
      // our root so the protocol still converges from garbage.
      if (auto r = trie_.root()) {
        sink_->emit<msg::CheckTrie>(sender, overlay_->self(),
                                    std::vector<NodeSummary>{*r});
      }
      return;
    }
    case Locate::Kind::kExtension: {
      // Case (iii)a: we have no node with this exact label but some node c
      // extends it ⇒ everything under label ∘ (1 − b1) is missing here,
      // where b1 is c's bit right after the probe label.
      const bool b1 = loc.node.label.bit(tuple.label.size());
      sink_->emit<msg::CheckAndPublish>(sender, overlay_->self(),
                                        std::vector<NodeSummary>{loc.node},
                                        tuple.label.with_bit(!b1));
      return;
    }
    case Locate::Kind::kMiss: {
      // Case (iii)b: the whole subtrie is missing here — ask for all of it.
      sink_->emit<msg::CheckAndPublish>(sender, overlay_->self(),
                                        std::vector<NodeSummary>{}, tuple.label);
      return;
    }
  }
}

void PubSubProtocol::on_check_trie(sim::NodeId sender,
                                   const std::vector<NodeSummary>& tuples) {
  if (sender == overlay_->self() || !sender) return;
  for (const NodeSummary& t : tuples) check_tuple(sender, t);
}

void PubSubProtocol::on_check_and_publish(const msg::CheckAndPublish& m) {
  if (m.sender == overlay_->self() || !m.sender) return;
  on_check_trie(m.sender, m.tuples);
  auto pubs = trie_.collect_prefix(m.prefix);
  if (!pubs.empty()) {
    sink_->emit<msg::Publish>(m.sender, std::move(pubs));
  }
}

void PubSubProtocol::on_publish(const msg::Publish& m) {
  for (const Publication& p : m.pubs) {
    if (trie_.insert(p)) record_delivery(p);
  }
}

void PubSubProtocol::record_delivery(const Publication& p) {
  // Latency = rounds from publish to this node's first receipt. Clamped:
  // adversarially injected state may carry born stamps from the future.
  const sim::Round now = sink_->round();
  sink_->publication_delivered(now > p.born ? now - p.born : 0);
}

// ---------------------------------------------------------------------------
// Flooding (§4.3)
// ---------------------------------------------------------------------------

void PubSubProtocol::flood(const Publication& p, sim::NodeId except) {
  for (sim::NodeId nbr : overlay_->overlay_neighbors()) {
    if (nbr != except) sink_->emit<msg::PublishNew>(nbr, p);
  }
}

void PubSubProtocol::on_publish_new(const msg::PublishNew& m) {
  if (!trie_.insert(m.pub)) return;  // already known: drop, do not forward
  record_delivery(m.pub);
  if (config_.flooding) flood(m.pub, m.pub.origin);
}

// ---------------------------------------------------------------------------
// PubSubSystem helpers
// ---------------------------------------------------------------------------

bool PubSubSystem::publications_converged() const {
  // All tries pairwise equal ⟺ every trie equals the union (the union is
  // taken over these same tries). Equality is decided by Merkle root
  // digest plus size — O(1) per member — rather than the structural walk
  // plus an O(members · publications) union materialization the probe used
  // to pay on every round of a convergence wait. equal_contents() remains
  // the bit-exact comparator for tests.
  const auto ids = active_ids();
  if (ids.empty()) return true;
  bool have_first = false;
  std::size_t first_size = 0;
  std::optional<NodeSummary> first_root;
  for (sim::NodeId id : ids) {
    const PatriciaTrie& t = pubsub(id).trie();
    const std::optional<NodeSummary> root = t.root();
    if (!have_first) {
      have_first = true;
      first_size = t.size();
      first_root = root;
      continue;
    }
    if (t.size() != first_size || root != first_root) return false;
  }
  return true;
}

std::size_t PubSubSystem::distinct_publications() const {
  std::unordered_set<BitString> keys;
  for (sim::NodeId id : active_ids()) {
    const PatriciaTrie& t = pubsub(id).trie();
    for (const Publication& p : t.all()) keys.insert(t.key_of(p));
  }
  return keys.size();
}

}  // namespace ssps::pubsub
