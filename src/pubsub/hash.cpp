#include "pubsub/hash.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace ssps::pubsub {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int k) { return std::rotr(x, k); }

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
             0x1f83d9ab, 0x5be0cd19},
      buffer_{} {}

void Sha256::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) {
  SSPS_ASSERT(!finished_);
  total_bytes_ += data.size();
  for (std::uint8_t byte : data) {
    buffer_[buffered_++] = byte;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  return *this;
}

Sha256& Sha256::update(std::string_view data) {
  return update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Digest Sha256::finish() {
  SSPS_ASSERT(!finished_);
  finished_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    while (buffered_ < 64) buffer_[buffered_++] = 0;
    process_block(buffer_.data());
    buffered_ = 0;
  }
  while (buffered_ < 56) buffer_[buffered_++] = 0;
  for (int i = 7; i >= 0; --i) {
    buffer_[buffered_++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  process_block(buffer_.data());

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::digest(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest Sha256::digest(std::string_view data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Digest hash_label(const BitString& label) {
  Sha256 h;
  const auto bytes = label.to_bytes();
  const std::uint64_t bits = label.size();
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  h.update(std::span<const std::uint8_t>(len_bytes.data(), len_bytes.size()));
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  return h.finish();
}

Digest hash_children(const Digest& left, const Digest& right) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(left.data(), left.size()));
  h.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return h.finish();
}

BitString publication_key(sim::NodeId origin, std::string_view payload, std::size_t m) {
  SSPS_ASSERT(m >= 1 && m <= 256);
  Sha256 h;
  std::array<std::uint8_t, 8> id_bytes;
  for (int i = 0; i < 8; ++i) {
    id_bytes[i] = static_cast<std::uint8_t>(origin.value >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(id_bytes.data(), id_bytes.size()));
  h.update(payload);
  const Digest d = h.finish();
  return BitString::from_bytes(std::span<const std::uint8_t>(d.data(), d.size()), m);
}

std::string to_hex(const Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xF]);
  }
  return out;
}

}  // namespace ssps::pubsub
