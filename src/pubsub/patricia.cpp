#include "pubsub/patricia.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace ssps::pubsub {

PatriciaTrie::PatriciaTrie(std::size_t key_bits) : key_bits_(key_bits) {
  SSPS_ASSERT(key_bits >= 1 && key_bits <= 256);
}

PatriciaTrie::PatriciaTrie(const PatriciaTrie& other)
    : key_bits_(other.key_bits_), size_(other.size_) {
  if (other.root_) root_ = clone(*other.root_);
}

PatriciaTrie& PatriciaTrie::operator=(const PatriciaTrie& other) {
  if (this == &other) return *this;
  key_bits_ = other.key_bits_;
  size_ = other.size_;
  root_ = other.root_ ? clone(*other.root_) : nullptr;
  return *this;
}

std::unique_ptr<PatriciaTrie::Node> PatriciaTrie::clone(const Node& node) {
  auto out = std::make_unique<Node>();
  out->label = node.label;
  out->hash = node.hash;
  out->pub = node.pub;
  if (node.child0) out->child0 = clone(*node.child0);
  if (node.child1) out->child1 = clone(*node.child1);
  return out;
}

BitString PatriciaTrie::key_of(const Publication& p) const {
  return publication_key(p.origin, p.payload, key_bits_);
}

std::unique_ptr<PatriciaTrie::Node> PatriciaTrie::make_leaf(const BitString& key,
                                                            Publication pub) {
  auto node = std::make_unique<Node>();
  node->label = key;
  node->hash = hash_label(key);
  node->pub = std::move(pub);
  return node;
}

void PatriciaTrie::rehash(Node& node) {
  if (node.is_leaf()) {
    node.hash = hash_label(node.label);
  } else {
    node.hash = hash_children(node.child0->hash, node.child1->hash);
  }
}

bool PatriciaTrie::insert(const Publication& p) {
  const BitString key = key_of(p);
  if (!root_) {
    root_ = make_leaf(key, p);
    size_ = 1;
    return true;
  }
  // Walk down, remembering the path for Merkle re-hashing.
  std::vector<Node*> path;
  Node* cur = root_.get();
  for (;;) {
    const std::size_t cpl = cur->label.common_prefix_len(key);
    if (cpl == cur->label.size() && cpl == key.size()) {
      // Exact key present (leaf; inner labels are shorter than m).
      SSPS_ASSERT(cur->is_leaf());
      return false;
    }
    if (cpl == cur->label.size() && !cur->is_leaf()) {
      // cur's label is a proper prefix of key: descend.
      path.push_back(cur);
      cur = key.bit(cpl) ? cur->child1.get() : cur->child0.get();
      continue;
    }
    // Divergence inside cur's label (or cur is a leaf): split here. A new
    // inner node takes the common prefix; cur and the fresh leaf become
    // its children, ordered by their bit right after the prefix.
    SSPS_ASSERT_MSG(cpl < key.size(), "duplicate key with different length");
    SSPS_ASSERT_MSG(cpl < cur->label.size(),
                    "key collision: distinct publications share one key");
    auto fresh = make_leaf(key, p);
    auto inner = std::make_unique<Node>();
    inner->label = key.prefix(cpl);

    // Detach cur from its parent (or root) so we can re-parent it.
    std::unique_ptr<Node>* slot = &root_;
    if (!path.empty()) {
      Node* parent = path.back();
      slot = (parent->child0.get() == cur) ? &parent->child0 : &parent->child1;
    }
    std::unique_ptr<Node> old = std::move(*slot);
    const bool fresh_bit = key.bit(cpl);
    if (fresh_bit) {
      inner->child0 = std::move(old);
      inner->child1 = std::move(fresh);
    } else {
      inner->child0 = std::move(fresh);
      inner->child1 = std::move(old);
    }
    rehash(*inner);
    *slot = std::move(inner);
    for (auto it = path.rbegin(); it != path.rend(); ++it) rehash(**it);
    ++size_;
    return true;
  }
}

bool PatriciaTrie::contains(const Publication& p) const { return contains_key(key_of(p)); }

bool PatriciaTrie::contains_key(const BitString& key) const {
  const Locate loc = locate(key);
  return loc.kind == Locate::Kind::kExact && loc.is_leaf;
}

std::optional<NodeSummary> PatriciaTrie::root() const {
  if (!root_) return std::nullopt;
  return NodeSummary{root_->label, root_->hash};
}

Locate PatriciaTrie::locate(const BitString& label) const {
  Locate out;
  const Node* cur = root_.get();
  while (cur != nullptr) {
    const std::size_t cpl = cur->label.common_prefix_len(label);
    if (cpl == label.size()) {
      if (cur->label.size() == label.size()) {
        out.kind = Locate::Kind::kExact;
        out.node = NodeSummary{cur->label, cur->hash};
        out.is_leaf = cur->is_leaf();
        if (!cur->is_leaf()) {
          out.children.push_back(NodeSummary{cur->child0->label, cur->child0->hash});
          out.children.push_back(NodeSummary{cur->child1->label, cur->child1->hash});
        }
      } else {
        // cur's label strictly extends the probe: cur is the minimal
        // extension (its ancestors have shorter labels and were passed).
        out.kind = Locate::Kind::kExtension;
        out.node = NodeSummary{cur->label, cur->hash};
        out.is_leaf = cur->is_leaf();
      }
      return out;
    }
    if (cpl < cur->label.size()) {
      // Diverged inside cur's label: nothing under this probe.
      return out;
    }
    // cur's label is a proper prefix of the probe: descend.
    if (cur->is_leaf()) return out;
    cur = label.bit(cpl) ? cur->child1.get() : cur->child0.get();
  }
  return out;
}

const PatriciaTrie::Node* PatriciaTrie::descend(const BitString& label) const {
  const Node* cur = root_.get();
  while (cur != nullptr) {
    const std::size_t cpl = cur->label.common_prefix_len(label);
    if (cpl == label.size()) return cur;  // covers exact and extension
    if (cpl < cur->label.size()) return nullptr;
    if (cur->is_leaf()) return nullptr;
    cur = label.bit(cpl) ? cur->child1.get() : cur->child0.get();
  }
  return nullptr;
}

void PatriciaTrie::collect(const Node* node, std::vector<Publication>& out) const {
  if (node == nullptr) return;
  if (node->is_leaf()) {
    out.push_back(*node->pub);
    return;
  }
  collect(node->child0.get(), out);
  collect(node->child1.get(), out);
}

std::vector<Publication> PatriciaTrie::collect_prefix(const BitString& prefix) const {
  std::vector<Publication> out;
  collect(descend(prefix), out);
  return out;
}

std::vector<Publication> PatriciaTrie::all() const {
  std::vector<Publication> out;
  out.reserve(size_);
  collect(root_.get(), out);
  return out;
}

bool PatriciaTrie::equal_contents(const PatriciaTrie& other) const {
  if (!root_ || !other.root_) return size_ == other.size_;
  return root_->hash == other.root_->hash;
}

bool PatriciaTrie::chaos_corrupt_digest(std::uint64_t seed) {
  if (!root_) return false;
  // Preorder walk to the (seed mod node-count)-th node, then flip one bit
  // of its digest. Deterministic per (trie, seed).
  std::vector<Node*> nodes;
  auto walk = [&](auto&& self, Node& node) -> void {
    nodes.push_back(&node);
    if (node.child0) self(self, *node.child0);
    if (node.child1) self(self, *node.child1);
  };
  walk(walk, *root_);
  Node& victim = *nodes[seed % nodes.size()];
  victim.hash[(seed >> 8) % victim.hash.size()] ^=
      static_cast<std::uint8_t>(1u << ((seed >> 16) % 8));
  return true;
}

std::string PatriciaTrie::check_invariants() const {
  std::ostringstream why;
  std::size_t leaves = 0;
  // Recursive structural walk.
  auto walk = [&](auto&& self, const Node& node) -> bool {
    if (node.is_leaf()) {
      ++leaves;
      if (node.child1) {
        why << "leaf with one child at " << node.label.to_string();
        return false;
      }
      if (node.label.size() != key_bits_) {
        why << "leaf key length " << node.label.size() << " != m";
        return false;
      }
      if (!node.pub) {
        why << "leaf without publication";
        return false;
      }
      if (node.hash != hash_label(node.label)) {
        why << "leaf hash mismatch at " << node.label.to_string();
        return false;
      }
      return true;
    }
    if (!node.child0 || !node.child1) {
      why << "inner node with one child at " << node.label.to_string();
      return false;
    }
    for (const Node* c : {node.child0.get(), node.child1.get()}) {
      if (!node.label.is_prefix_of(c->label) || c->label.size() <= node.label.size()) {
        why << "child label not a proper extension at " << node.label.to_string();
        return false;
      }
    }
    // Children must diverge immediately after the parent label (path
    // compression: the label is the longest common prefix).
    if (node.child0->label.bit(node.label.size()) != false ||
        node.child1->label.bit(node.label.size()) != true) {
      why << "children out of order at " << node.label.to_string();
      return false;
    }
    if (node.hash != hash_children(node.child0->hash, node.child1->hash)) {
      why << "inner hash mismatch at " << node.label.to_string();
      return false;
    }
    return self(self, *node.child0) && self(self, *node.child1);
  };
  if (root_ && !walk(walk, *root_)) return why.str();
  if (root_ && leaves != size_) return "size does not match leaf count";
  if (!root_ && size_ != 0) return "size nonzero with empty root";
  return "";
}

}  // namespace ssps::pubsub
