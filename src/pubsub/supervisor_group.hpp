// Consistent-hashing supervisor group (§1.3).
//
// The paper notes that supervisor load grows linearly with the number of
// topics and proposes sharding topics over multiple supervisors with a
// distributed hash table using consistent hashing: each supervisor owns a
// sub-interval of [0, 1) and serves the topics hashing into it. This is
// the concrete realization of that sketch: supervisors are placed on the
// unit ring via hashed virtual nodes; a topic belongs to the first
// supervisor point at or after its own hash point (successor rule).
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "pubsub/hash.hpp"
#include "sim/types.hpp"

namespace ssps::pubsub {

using TopicId = std::uint32_t;

/// Static assignment of topics to supervisors via consistent hashing.
class SupervisorGroup {
 public:
  /// `virtual_nodes` ring points per supervisor smooth the arc lengths.
  explicit SupervisorGroup(std::vector<sim::NodeId> supervisors,
                           int virtual_nodes = 32);

  /// The supervisor responsible for `topic`. Aborts on an empty group.
  sim::NodeId supervisor_for(TopicId topic) const;

  /// Membership changes move only the arcs adjacent to the affected
  /// supervisor's points — the classic consistent-hashing locality, which
  /// the tests verify.
  void add_supervisor(sim::NodeId id);
  void remove_supervisor(sim::NodeId id);

  std::size_t size() const { return members_; }

  /// Fraction of the [0,1) ring owned by `id` (for balance experiments).
  double arc_share(sim::NodeId id) const;

 private:
  static std::uint64_t point_of_topic(TopicId topic);
  static std::uint64_t point_of_replica(sim::NodeId id, int replica);
  void insert_points(sim::NodeId id);

  int virtual_nodes_;
  std::size_t members_ = 0;
  /// Ring point -> owning supervisor. Sorted flat vector: supervisor_for
  /// is one binary search over contiguous points (hot in every multi-topic
  /// probe and rebalance sweep), arc_share a linear walk.
  FlatMap<std::uint64_t, sim::NodeId> ring_;
};

}  // namespace ssps::pubsub
