// Hierarchical topics (§1.3): "better scalability can be achieved by
// organizing topics in a hierarchical manner".
//
// Topics form a rooted forest ("sports" ⊃ "sports/football" ⊃
// "sports/football/cup"). A client subscribing to an interior topic wants
// everything published under its subtree. Rather than fanning every
// publication out to all ancestor rings (write amplification), the
// hierarchy maps each *subscription* to the set of concrete rings to join:
// subscribing to a topic joins its whole subtree's rings; publications go
// only to their own topic's ring. This keeps the per-ring machinery
// exactly the paper's BuildSR and pushes the hierarchy entirely into a
// client-side resolution layer.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/supervisor_group.hpp"

namespace ssps::pubsub {

/// A registry of hierarchical topic names ("a/b/c") mapped to flat
/// TopicIds. Deterministic: the id of a path is derived from its hash, so
/// all participants agree without coordination.
class TopicHierarchy {
 public:
  /// Registers a path (and implicitly its ancestors). Returns the path's
  /// TopicId. Paths are '/'-separated, non-empty segments.
  TopicId add(const std::string& path);

  /// The TopicId of a known path; nullopt when never registered.
  std::optional<TopicId> id_of(const std::string& path) const;

  /// The path of a known id (inverse of id_of).
  std::optional<std::string> path_of(TopicId id) const;

  /// The ids of `path`'s subtree (itself + all registered descendants) —
  /// the rings a subscriber of `path` joins.
  std::vector<TopicId> subtree(const std::string& path) const;

  /// The ids of `path` and all its ancestors — useful for clients that
  /// want to publish "up the tree" instead (the dual convention).
  std::vector<TopicId> ancestors(const std::string& path) const;

  /// All registered paths, sorted.
  std::vector<std::string> paths() const;

  std::size_t size() const { return by_path_.size(); }

  /// Derives the TopicId for a path without registering it (stable hash).
  static TopicId derive_id(const std::string& path);

 private:
  std::map<std::string, TopicId> by_path_;
  std::map<TopicId, std::string> by_id_;
};

}  // namespace ssps::pubsub
