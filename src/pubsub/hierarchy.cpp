#include "pubsub/hierarchy.hpp"

#include "common/assert.hpp"
#include "pubsub/hash.hpp"

namespace ssps::pubsub {

namespace {

bool valid_path(const std::string& path) {
  if (path.empty() || path.front() == '/' || path.back() == '/') return false;
  bool last_was_slash = false;
  for (char c : path) {
    if (c == '/') {
      if (last_was_slash) return false;  // empty segment
      last_was_slash = true;
    } else {
      last_was_slash = false;
    }
  }
  return true;
}

std::optional<std::string> parent_of(const std::string& path) {
  const auto pos = path.rfind('/');
  if (pos == std::string::npos) return std::nullopt;
  return path.substr(0, pos);
}

}  // namespace

TopicId TopicHierarchy::derive_id(const std::string& path) {
  const Digest d = Sha256::digest(path);
  TopicId id = 0;
  for (int i = 0; i < 4; ++i) id = (id << 8) | d[static_cast<std::size_t>(i)];
  return id;
}

TopicId TopicHierarchy::add(const std::string& path) {
  SSPS_ASSERT_MSG(valid_path(path), "invalid topic path");
  // Register ancestors bottom-up so a subtree query sees the whole chain.
  if (auto parent = parent_of(path)) add(*parent);
  auto it = by_path_.find(path);
  if (it != by_path_.end()) return it->second;
  TopicId id = derive_id(path);
  // Resolve (astronomically unlikely) 32-bit collisions deterministically.
  while (by_id_.contains(id)) ++id;
  by_path_.emplace(path, id);
  by_id_.emplace(id, path);
  return id;
}

std::optional<TopicId> TopicHierarchy::id_of(const std::string& path) const {
  auto it = by_path_.find(path);
  if (it == by_path_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> TopicHierarchy::path_of(TopicId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::vector<TopicId> TopicHierarchy::subtree(const std::string& path) const {
  std::vector<TopicId> out;
  const std::string prefix = path + "/";
  for (auto it = by_path_.lower_bound(path); it != by_path_.end(); ++it) {
    if (it->first == path || it->first.starts_with(prefix)) {
      out.push_back(it->second);
    } else if (!(it->first.starts_with(path))) {
      break;  // past the subtree in sorted order
    }
  }
  return out;
}

std::vector<TopicId> TopicHierarchy::ancestors(const std::string& path) const {
  std::vector<TopicId> out;
  std::string cur = path;
  for (;;) {
    if (auto id = id_of(cur)) out.push_back(*id);
    auto parent = parent_of(cur);
    if (!parent) break;
    cur = *parent;
  }
  return out;
}

std::vector<std::string> TopicHierarchy::paths() const {
  std::vector<std::string> out;
  out.reserve(by_path_.size());
  for (const auto& [path, id] : by_path_) out.push_back(path);
  return out;
}

}  // namespace ssps::pubsub
