// Merkle-hashed Patricia trie over publication keys (§4.2, Figure 2).
//
// Leaves store publications under their m-bit keys h̄_m(origin, payload);
// inner nodes have exactly two children and carry the longest common
// prefix of their subtrie as label. Every node carries a digest:
//   leaf  t: t.hash = h(t.label)
//   inner t: t.hash = h(c1(t).hash ∘ c2(t).hash)      (per Figure 2)
// Equal root digests ⇔ equal publication sets (under collision
// resistance), which is what the CheckTrie anti-entropy exploits.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/hash.hpp"

namespace ssps::pubsub {

/// One publication: originator + opaque payload. The key is derived, not
/// stored with the payload on the wire.
struct Publication {
  sim::NodeId origin;
  std::string payload;
  /// Round the publication was published in — telemetry metadata, not
  /// identity and not wire data: delivery-latency tracking reads
  /// `deliver_round - born` when a copy first reaches a node (the trie
  /// preserves the stamp through replication, so every copy carries the
  /// origin round).
  sim::Round born = 0;

  /// Identity is (origin, payload) only; `born` never distinguishes two
  /// publications.
  bool operator==(const Publication& other) const {
    return origin == other.origin && payload == other.payload;
  }
};

/// A (label, hash) pair as shipped inside CheckTrie messages. Sending a
/// node means sending exactly these two fields (§4.2).
struct NodeSummary {
  BitString label;
  Digest hash;

  bool operator==(const NodeSummary&) const = default;
};

/// Result of locating a label in the trie (the three cases of CheckTrie).
struct Locate {
  enum class Kind {
    kExact,      ///< node with exactly this label exists
    kExtension,  ///< no exact node, but a minimal node whose label extends it
    kMiss,       ///< no key under this label at all
  };
  Kind kind = Kind::kMiss;
  /// For kExact: the node. For kExtension: the minimal extension c.
  NodeSummary node;
  bool is_leaf = false;
  /// For kExact inner nodes: the two child summaries.
  std::vector<NodeSummary> children;
};

/// The per-subscriber publication store v.T.
class PatriciaTrie {
 public:
  /// `key_bits` = m, the fixed key length all publications share.
  explicit PatriciaTrie(std::size_t key_bits = 64);

  PatriciaTrie(const PatriciaTrie& other);
  PatriciaTrie& operator=(const PatriciaTrie& other);
  PatriciaTrie(PatriciaTrie&&) noexcept = default;
  PatriciaTrie& operator=(PatriciaTrie&&) noexcept = default;

  std::size_t key_bits() const { return key_bits_; }

  /// Inserts a publication (key derived via h̄_m). Returns false if it was
  /// already present. Publications are never removed (§4.2 model).
  bool insert(const Publication& p);

  /// Derives the key of `p` under this trie's m.
  BitString key_of(const Publication& p) const;

  bool contains(const Publication& p) const;
  bool contains_key(const BitString& key) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Root summary; nullopt for the empty trie.
  std::optional<NodeSummary> root() const;

  /// The three-way CheckTrie lookup for a received (label, hash) tuple.
  Locate locate(const BitString& label) const;

  /// All publications whose key starts with `prefix`, in key order.
  std::vector<Publication> collect_prefix(const BitString& prefix) const;

  /// All publications, in key order.
  std::vector<Publication> all() const;

  /// Structural equality via root digests (collision-resistant).
  bool equal_contents(const PatriciaTrie& other) const;

  /// Invariant checker (tests): labels are prefixes along edges, inner
  /// nodes binary with correct common-prefix labels and Merkle hashes,
  /// leaves at depth m. Returns "" or a description of the violation.
  std::string check_invariants() const;

  /// Adversarial corruption (tests/oracle only): flips one bit in a
  /// pseudo-randomly chosen node's digest, breaking the Merkle / leaf-hash
  /// condition that check_invariants() reports. Returns false (and does
  /// nothing) on an empty trie.
  bool chaos_corrupt_digest(std::uint64_t seed);

 private:
  struct Node {
    BitString label;
    Digest hash;
    // Inner nodes own both children; leaves own none and carry the
    // publication.
    std::unique_ptr<Node> child0;
    std::unique_ptr<Node> child1;
    std::optional<Publication> pub;

    bool is_leaf() const { return !child0; }
  };

  static std::unique_ptr<Node> make_leaf(const BitString& key, Publication pub);
  static void rehash(Node& node);
  static std::unique_ptr<Node> clone(const Node& node);
  const Node* descend(const BitString& label) const;
  void collect(const Node* node, std::vector<Publication>& out) const;

  std::size_t key_bits_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace ssps::pubsub
