// Hashing for the Merkle-Patricia publication store (§4.2).
//
// The paper requires two collision-resistant functions:
//   h̄_m : N × P* → {0,1}^m   — keys a publication (origin id, payload) to
//                               a fixed m-bit Patricia label, and
//   h   : {0,1}* → {0,1}*     — digests trie labels and combines child
//                               digests into parent digests (Merkle-style;
//                               the paper notes one-wayness is NOT needed,
//                               only collision resistance).
// We implement SHA-256 from scratch (FIPS 180-4) for both, plus FNV-1a for
// non-adversarial internal hashing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "pubsub/bitstring.hpp"
#include "sim/types.hpp"

namespace ssps::pubsub {

/// A SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  /// Finalizes and returns the digest; the object must not be reused.
  Digest finish();

  /// One-shot convenience.
  static Digest digest(std::span<const std::uint8_t> data);
  static Digest digest(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
  bool finished_ = false;
};

/// FNV-1a 64-bit (fast non-cryptographic hash for internal tables).
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
std::uint64_t fnv1a64(std::string_view data);

/// Digest of a trie-node label: h(t.label). The bit-length is folded in so
/// that labels like "0" and "00" hash differently despite equal padding.
Digest hash_label(const BitString& label);

/// Merkle combination: h(c1.hash ∘ c2.hash). Per Figure 2 (the running
/// example), inner nodes combine child *hashes* — see DESIGN.md on the
/// §4.2 text/figure discrepancy.
Digest hash_children(const Digest& left, const Digest& right);

/// h̄_m(v.id, p): the m-bit publication key (m <= 256).
BitString publication_key(sim::NodeId origin, std::string_view payload, std::size_t m);

/// Hex rendering for diagnostics.
std::string to_hex(const Digest& d);

}  // namespace ssps::pubsub
