#include "pubsub/topics.hpp"

namespace ssps::pubsub {

// ---------------------------------------------------------------------------
// MultiTopicNode
// ---------------------------------------------------------------------------

MultiTopicNode::Instance& MultiTopicNode::instance(TopicId topic) {
  auto it = topics_.find(topic);
  SSPS_ASSERT_MSG(it != topics_.end(), "not subscribed to this topic");
  return it->second;
}

const MultiTopicNode::Instance& MultiTopicNode::instance(TopicId topic) const {
  auto it = topics_.find(topic);
  SSPS_ASSERT_MSG(it != topics_.end(), "not subscribed to this topic");
  return it->second;
}

void MultiTopicNode::subscribe(TopicId topic) {
  if (topics_.contains(topic)) return;
  Instance inst;
  inst.sink = std::make_unique<TopicSink>(net(), topic);
  inst.sub = std::make_unique<core::SubscriberProtocol>(id(), resolver_(topic),
                                                        *inst.sink, rng());
  inst.ps = std::make_unique<PubSubProtocol>(*inst.sub, *inst.sink, rng(), config_);
  topics_.emplace(topic, std::move(inst));
}

void MultiTopicNode::unsubscribe(TopicId topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  it->second.sub->request_unsubscribe();
}

void MultiTopicNode::drop_topic(TopicId topic) { topics_.erase(topic); }

void MultiTopicNode::publish(TopicId topic, std::string payload) {
  instance(topic).ps->publish(std::move(payload));
}

std::vector<TopicId> MultiTopicNode::topics() const {
  std::vector<TopicId> out;
  out.reserve(topics_.size());
  for (const auto& [t, inst] : topics_) out.push_back(t);
  return out;
}

std::optional<std::pair<std::uint64_t, std::size_t>> MultiTopicNode::topic_epoch(
    TopicId topic) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return std::nullopt;
  return std::make_pair(it->second.sub->state_version(),
                        it->second.ps->trie().size());
}

core::SubscriberProtocol& MultiTopicNode::overlay(TopicId topic) {
  return *instance(topic).sub;
}
const core::SubscriberProtocol& MultiTopicNode::overlay(TopicId topic) const {
  return *instance(topic).sub;
}
PubSubProtocol& MultiTopicNode::pubsub(TopicId topic) { return *instance(topic).ps; }
const PubSubProtocol& MultiTopicNode::pubsub(TopicId topic) const {
  return *instance(topic).ps;
}

void MultiTopicNode::handle(sim::PooledMsg msg) {
  auto* env = sim::msg_cast<TopicEnvelope>(*msg);
  if (env == nullptr) return;  // not a topic message; nothing to do
  auto it = topics_.find(env->topic);
  if (it == topics_.end()) {
    // Stale traffic for a topic we left: tell every referenced node to
    // drop us in that topic (the departed behavior of Lemma 6).
    std::vector<sim::NodeId> refs;
    env->inner->collect_refs(refs);
    TopicSink sink(net(), env->topic);
    for (sim::NodeId ref : refs) {
      if (ref && ref != id()) {
        sink.emit<core::msg::RemoveConnections>(ref, id());
      }
    }
    return;
  }
  Instance& inst = it->second;
  if (inst.ps->handle(*env->inner)) return;
  inst.sub->handle(*env->inner);
}

void MultiTopicNode::timeout() {
  // Remove instances whose departure completed ("remove the protocol once
  // permission arrives", §4), then run every remaining instance.
  for (auto it = topics_.begin(); it != topics_.end();) {
    if (it->second.sub->departed()) {
      it = topics_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [topic, inst] : topics_) {
    inst.sub->timeout();
    if (!inst.sub->departed()) inst.ps->timeout();
  }
}

void MultiTopicNode::collect_refs(std::vector<sim::NodeId>& out) const {
  for (const auto& [topic, inst] : topics_) inst.sub->collect_refs(out);
}

// ---------------------------------------------------------------------------
// MultiTopicSupervisorNode
// ---------------------------------------------------------------------------

core::SupervisorProtocol& MultiTopicSupervisorNode::topic_supervisor(TopicId topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    Instance inst;
    inst.sink = std::make_unique<TopicSink>(net(), topic);
    inst.proto = std::make_unique<core::SupervisorProtocol>(id(), *inst.sink);
    if (fd_ != nullptr && *fd_ != nullptr) inst.proto->set_failure_detector(*fd_);
    it = topics_.emplace(topic, std::move(inst)).first;
  }
  return *it->second.proto;
}

const core::SupervisorProtocol* MultiTopicSupervisorNode::find_topic(
    TopicId topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.proto.get();
}

void MultiTopicSupervisorNode::handle(sim::PooledMsg msg) {
  auto* env = sim::msg_cast<TopicEnvelope>(*msg);
  if (env == nullptr) return;
  // Only a Subscribe may create a topic instance: it is the one message
  // that legitimately introduces a new topic to its owner. Any other
  // inner type addressed to a topic this node does not host is junk —
  // typically a corrupted envelope whose topic field survived the
  // checksum — and instantiating per-topic state for it would let a
  // hostile byte stream grow this node without bound.
  if (!topics_.contains(env->topic) &&
      sim::msg_cast<core::msg::Subscribe>(*env->inner) == nullptr) {
    net().record_reject(msg->wire_size());
    return;
  }
  topic_supervisor(env->topic).handle(*env->inner);
}

void MultiTopicSupervisorNode::timeout() {
  for (auto& [topic, inst] : topics_) inst.proto->timeout();
}

void MultiTopicSupervisorNode::collect_refs(std::vector<sim::NodeId>& out) const {
  for (const auto& [topic, inst] : topics_) inst.proto->collect_refs(out);
}

}  // namespace ssps::pubsub
