// Topic-based publish-subscribe (§4): one BuildSR + Algorithm 5 instance
// per topic, multiplexed over a single node and a single supervisor
// process by tagging every message with its topic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "common/flat_map.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/supervisor_group.hpp"

namespace ssps::pubsub {

/// Wraps a protocol message with the topic it refers to (§4: "each message
/// contains the topic"). Metrics keep the inner action label so per-action
/// accounting stays meaningful across topics.
struct TopicEnvelope final : sim::MsgBase<TopicEnvelope> {
  TopicId topic;
  sim::PooledMsg inner;

  TopicEnvelope(TopicId t, sim::PooledMsg m) : topic(t), inner(std::move(m)) {
    set_metrics_type(inner->metrics_type());
  }
  std::string_view name() const override { return inner->name(); }
  std::size_t wire_size() const override { return inner->wire_size() + sizeof(TopicId); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    inner->collect_refs(out);
  }
  sim::PooledMsg clone_into(sim::MessagePool& pool) const override {
    // Move-only (the inner handle), so the MsgBase auto-clone can't apply:
    // clone the payload first, then re-wrap it under the same topic.
    sim::PooledMsg inner_copy = inner->clone_into(pool);
    if (!inner_copy) return {};
    return pool.make<TopicEnvelope>(topic, std::move(inner_copy));
  }
  bool encode(common::Encoder& e) const override {
    // Topic first, then the inner payload. The extra u32 keeps an
    // enveloped message's encoding distinct from its bare payload's (they
    // share name()). The wire codec (src/wire/codec.cpp) frames envelopes
    // itself — topic, inner *wire type*, inner payload — because a decoder
    // needs the inner type tag this canonical form omits.
    e.u32(topic);
    return inner->encode(e);
  }
  void adopt_offwire(const sim::Message& original) override {
    if (const auto* o = sim::msg_cast<TopicEnvelope>(original)) {
      inner->adopt_offwire(*o->inner);
    }
  }
};

/// MessageSink that stamps outgoing messages with a fixed topic.
class TopicSink final : public core::MessageSink {
 public:
  TopicSink(sim::Network& net, TopicId topic) : net_(&net), topic_(topic) {}
  void send(sim::NodeId to, sim::PooledMsg msg) override {
    net_->send(to, net_->pool().make<TopicEnvelope>(topic_, std::move(msg)));
  }
  sim::MessagePool& pool() override { return net_->pool(); }
  sim::Round round() const override { return net_->clock_now(); }
  void publication_delivered(sim::Round latency) override {
    // Topic ids start at 1 (the universe is [1, topics]), so the sink's
    // topic never collides with the kNoTopic sentinel.
    net_->record_delivery_latency(topic_, latency);
  }

 private:
  sim::Network* net_;
  TopicId topic_;
};

/// Maps a topic to the supervisor responsible for it. The single-supervisor
/// deployment is a constant function; the scalable deployment hashes
/// through a SupervisorGroup (§1.3).
using SupervisorResolver = std::function<sim::NodeId(TopicId)>;

/// A client node participating in any number of topics.
class MultiTopicNode final : public sim::Node {
 public:
  explicit MultiTopicNode(SupervisorResolver resolver,
                          const PubSubConfig& config = {})
      : sim::Node(sim::NodeKind::kMultiTopicClient),
        resolver_(std::move(resolver)),
        config_(config) {}

  static bool classof(sim::NodeKind k) {
    return k == sim::NodeKind::kMultiTopicClient;
  }

  /// Convenience for the one-supervisor deployment.
  static SupervisorResolver fixed(sim::NodeId supervisor) {
    return [supervisor](TopicId) { return supervisor; };
  }

  void handle(sim::PooledMsg msg) override;
  void timeout() override;
  void collect_refs(std::vector<sim::NodeId>& out) const override;

  /// Starts a BuildSR instance for `topic`; it subscribes on next Timeout.
  void subscribe(TopicId topic);
  /// Requests departure; the instance is deleted once permission arrives
  /// ("the subscriber may remove the respective BuildSR protocol", §4).
  void unsubscribe(TopicId topic);

  /// Forcibly discards the per-topic instance without the departure
  /// handshake. Used when the topic's supervisor crashed (no one can grant
  /// permission) and the topic is being rehomed onto another supervisor;
  /// stale traffic for the dropped topic is answered with RemoveConnections
  /// by the departed-topic path in handle().
  void drop_topic(TopicId topic);
  void publish(TopicId topic, std::string payload);

  bool subscribed(TopicId topic) const { return topics_.contains(topic); }
  std::vector<TopicId> topics() const;

  /// (overlay state version, publication-store size) of the per-topic
  /// instance — the member's contribution to the engine's per-topic
  /// convergence epoch (ScenarioRunner::converged). Two integer reads;
  /// nullopt when not subscribed (instance existence is part of the
  /// epoch). Together these cover every per-member fact the convergence
  /// probe evaluates: the overlay's label (state_version) and the trie
  /// size (read directly).
  std::optional<std::pair<std::uint64_t, std::size_t>> topic_epoch(
      TopicId topic) const;

  /// Accessors abort if the topic is not joined.
  core::SubscriberProtocol& overlay(TopicId topic);
  const core::SubscriberProtocol& overlay(TopicId topic) const;
  PubSubProtocol& pubsub(TopicId topic);
  const PubSubProtocol& pubsub(TopicId topic) const;

 private:
  struct Instance {
    std::unique_ptr<TopicSink> sink;
    std::unique_ptr<core::SubscriberProtocol> sub;
    std::unique_ptr<PubSubProtocol> ps;
  };

  Instance& instance(TopicId topic);
  const Instance& instance(TopicId topic) const;

  SupervisorResolver resolver_;
  PubSubConfig config_;
  /// Sorted flat table (see common/flat_map.hpp): timeout() walks every
  /// instance each round, and envelope dispatch looks one up per message.
  /// The protocol objects live behind unique_ptrs, so entry moves on
  /// insert/erase never invalidate the sink/overlay pointers they share.
  FlatMap<TopicId, Instance> topics_;
};

/// A supervisor process serving any number of topics (one database each).
/// The per-topic maintenance cost is what experiment E13 measures.
class MultiTopicSupervisorNode final : public sim::Node {
 public:
  explicit MultiTopicSupervisorNode(const sim::FailureDetector** fd = nullptr)
      : sim::Node(sim::NodeKind::kMultiTopicSupervisor), fd_(fd) {}

  static bool classof(sim::NodeKind k) {
    return k == sim::NodeKind::kMultiTopicSupervisor;
  }

  void handle(sim::PooledMsg msg) override;
  void timeout() override;
  void collect_refs(std::vector<sim::NodeId>& out) const override;

  /// Instantiates (or returns) the per-topic supervisor protocol.
  core::SupervisorProtocol& topic_supervisor(TopicId topic);
  const core::SupervisorProtocol* find_topic(TopicId topic) const;

  std::size_t topic_count() const { return topics_.size(); }

 private:
  struct Instance {
    std::unique_ptr<TopicSink> sink;
    std::unique_ptr<core::SupervisorProtocol> proto;
  };

  const sim::FailureDetector** fd_;
  FlatMap<TopicId, Instance> topics_;
};

}  // namespace ssps::pubsub
