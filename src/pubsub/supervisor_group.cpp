#include "pubsub/supervisor_group.hpp"

#include "common/assert.hpp"

namespace ssps::pubsub {

namespace {

std::uint64_t digest_to_point(const Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

SupervisorGroup::SupervisorGroup(std::vector<sim::NodeId> supervisors,
                                 int virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  SSPS_ASSERT(virtual_nodes >= 1);
  for (sim::NodeId id : supervisors) add_supervisor(id);
}

std::uint64_t SupervisorGroup::point_of_topic(TopicId topic) {
  std::array<std::uint8_t, 5> buf{static_cast<std::uint8_t>(topic >> 24),
                                  static_cast<std::uint8_t>(topic >> 16),
                                  static_cast<std::uint8_t>(topic >> 8),
                                  static_cast<std::uint8_t>(topic), 'T'};
  return digest_to_point(Sha256::digest(std::span<const std::uint8_t>(buf)));
}

std::uint64_t SupervisorGroup::point_of_replica(sim::NodeId id, int replica) {
  std::array<std::uint8_t, 12> buf;
  for (int i = 0; i < 8; ++i) buf[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(id.value >> (8 * i));
  for (int i = 0; i < 4; ++i) buf[static_cast<std::size_t>(8 + i)] =
      static_cast<std::uint8_t>(static_cast<std::uint32_t>(replica) >> (8 * i));
  return digest_to_point(Sha256::digest(std::span<const std::uint8_t>(buf)));
}

void SupervisorGroup::insert_points(sim::NodeId id) {
  for (int r = 0; r < virtual_nodes_; ++r) {
    ring_.emplace(point_of_replica(id, r), id);
  }
}

void SupervisorGroup::add_supervisor(sim::NodeId id) {
  SSPS_ASSERT(!id.is_null());
  insert_points(id);
  ++members_;
}

void SupervisorGroup::remove_supervisor(sim::NodeId id) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  SSPS_ASSERT(members_ > 0);
  --members_;
}

sim::NodeId SupervisorGroup::supervisor_for(TopicId topic) const {
  SSPS_ASSERT_MSG(!ring_.empty(), "empty supervisor group");
  const std::uint64_t p = point_of_topic(topic);
  auto it = ring_.lower_bound(p);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the unit ring
  return it->second;
}

double SupervisorGroup::arc_share(sim::NodeId id) const {
  if (ring_.empty()) return 0.0;
  // Each point owns the arc ending at it and starting after the previous
  // point (successor rule).
  double owned = 0.0;
  std::uint64_t prev = ring_.back().first;  // wrap: last point precedes first
  bool first_iteration = true;
  for (const auto& [point, owner] : ring_) {
    const std::uint64_t arc =
        first_iteration ? (point + (~prev + 1)) : (point - prev);
    if (owner == id) owned += static_cast<double>(arc);
    prev = point;
    first_iteration = false;
  }
  return owned / 18446744073709551616.0;  // / 2^64
}

}  // namespace ssps::pubsub
