// Arbitrary-length bit strings over Σ = {0,1} — the alphabet of Patricia
// trie labels and publication keys (§4.2).
//
// Stored MSB-first and packed into 64-bit words; prefix operations
// (common-prefix length, prefix tests) are word-parallel.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ssps::pubsub {

/// An immutable-ish bit string (mutation limited to push_back/append).
class BitString {
 public:
  BitString() = default;

  /// Parses '0'/'1' characters; any other character aborts.
  static BitString from_string(const std::string& s);

  /// The first `bits` bits of a byte buffer (MSB of data[0] first).
  static BitString from_bytes(std::span<const std::uint8_t> data, std::size_t bits);

  /// The `bits`-bit big-endian representation of `value`'s low bits.
  static BitString from_uint(std::uint64_t value, std::size_t bits);

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// The i-th bit, 0-indexed from the front (most significant).
  bool bit(std::size_t i) const;

  void push_back(bool b);
  void append(const BitString& other);

  /// The first k bits. Requires k <= size().
  BitString prefix(std::size_t k) const;

  /// `*this` followed by a single bit (the l ∘ (1 − b1) construction of
  /// Algorithm 5).
  BitString with_bit(bool b) const;

  /// True iff *this is a (not necessarily proper) prefix of other.
  bool is_prefix_of(const BitString& other) const;

  /// Length of the longest common prefix.
  std::size_t common_prefix_len(const BitString& other) const;

  bool operator==(const BitString& other) const;

  /// Lexicographic order, shorter-prefix-first on ties.
  std::strong_ordering operator<=>(const BitString& other) const;

  std::string to_string() const;

  /// Packed bytes (final partial byte zero-padded) — hashing input. The
  /// length is hashed separately to keep ("0", "00") distinct.
  std::vector<std::uint8_t> to_bytes() const;

  /// Stable 64-bit hash of content (for hash maps).
  std::size_t hash_value() const noexcept;

 private:
  /// Keys and trie labels are at most a few words (key_bits defaults to
  /// 64), so up to kInlineWords words live inline — copying a BitString
  /// then allocates nothing, which matters because every CheckTrie
  /// exchange copies label summaries.
  static constexpr std::size_t kInlineWords = 2;

  std::size_t word_count() const { return (len_ + 63) / 64; }
  /// Word i holds bits [64i, 64i+63], bit j of the string at bit position
  /// 63 − (j mod 64) of its word; trailing unused bits are zero.
  /// Invariant: overflow_ is empty while word_count() <= kInlineWords
  /// (words in sbo_), else holds all word_count() words.
  const std::uint64_t* words() const {
    return overflow_.empty() ? sbo_ : overflow_.data();
  }
  std::uint64_t* words() { return overflow_.empty() ? sbo_ : overflow_.data(); }
  /// Grows storage to `n` zero-initialized words (never shrinks).
  void grow_words(std::size_t n);

  std::uint64_t sbo_[kInlineWords] = {0, 0};
  std::vector<std::uint64_t> overflow_;
  std::size_t len_ = 0;
};

}  // namespace ssps::pubsub

template <>
struct std::hash<ssps::pubsub::BitString> {
  std::size_t operator()(const ssps::pubsub::BitString& b) const noexcept {
    return b.hash_value();
  }
};
