// Self-stabilizing publication dissemination (Algorithm 5; §4.2–4.3).
//
// Each subscriber keeps its publications in a Merkle-hashed Patricia trie
// and periodically anti-entropies with a random direct ring neighbor via
// CheckTrie / CheckAndPublish / Publish. New publications are additionally
// flooded over all overlay edges (PublishNew), exploiting the skip ring's
// O(log n) diameter; the trie sync repairs anything flooding missed
// (Theorem 17) and goes silent once all tries agree (Theorem 23).
#pragma once

#include <memory>
#include <optional>

#include "core/subscriber.hpp"
#include "core/system.hpp"
#include "pubsub/patricia.hpp"

namespace ssps::pubsub {

namespace msg {

using core::msg::kHeaderBytes;
using core::msg::kRefBytes;

inline std::size_t summary_bytes(const NodeSummary& s) {
  return s.label.size() / 8 + 1 + sizeof(Digest);
}

inline std::size_t publication_bytes(const Publication& p) {
  return kRefBytes + p.payload.size();
}

/// Canonical encodings (common/encode.hpp) of the publication-layer value
/// types, mirroring core::encode_label / encode_ref.
inline void encode_bits(common::Encoder& e, const BitString& b) {
  const std::vector<std::uint8_t> packed = b.to_bytes();
  e.u64(b.size());  // bit length: keeps "0" and "00" distinct
  e.raw(packed.data(), packed.size());
}

inline void encode_summary(common::Encoder& e, const NodeSummary& s) {
  encode_bits(e, s.label);
  e.raw(s.hash.data(), s.hash.size());
}

inline void encode_publication(common::Encoder& e, const Publication& p) {
  e.u64(p.origin.value);
  e.string(p.payload);  // `born` excluded: telemetry stamp, not identity
}

/// CheckTrie(sender, tuples): compare these (label, hash) node summaries
/// against the receiver's trie.
struct CheckTrie final : sim::MsgBase<CheckTrie> {
  sim::NodeId sender;
  std::vector<NodeSummary> tuples;

  CheckTrie(sim::NodeId s, std::vector<NodeSummary> t)
      : sender(s), tuples(std::move(t)) {}
  std::string_view name() const override { return "CheckTrie"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes + kRefBytes;
    for (const auto& t : tuples) sz += summary_bytes(t);
    return sz;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(sender);
  }
  bool encode(common::Encoder& e) const override {
    e.u64(sender.value);
    e.u64(tuples.size());
    for (const auto& t : tuples) encode_summary(e, t);
    return true;
  }
};

/// CheckAndPublish(sender, tuples, prefix): continue checking `tuples` AND
/// send every publication with key prefix `prefix` back to `sender`.
struct CheckAndPublish final : sim::MsgBase<CheckAndPublish> {
  sim::NodeId sender;
  std::vector<NodeSummary> tuples;
  BitString prefix;

  CheckAndPublish(sim::NodeId s, std::vector<NodeSummary> t, BitString p)
      : sender(s), tuples(std::move(t)), prefix(std::move(p)) {}
  std::string_view name() const override { return "CheckAndPublish"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes + kRefBytes + prefix.size() / 8 + 1;
    for (const auto& t : tuples) sz += summary_bytes(t);
    return sz;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(sender);
  }
  bool encode(common::Encoder& e) const override {
    e.u64(sender.value);
    e.u64(tuples.size());
    for (const auto& t : tuples) encode_summary(e, t);
    encode_bits(e, prefix);
    return true;
  }
};

/// Publish(P): deliver a batch of publications.
struct Publish final : sim::MsgBase<Publish> {
  std::vector<Publication> pubs;

  explicit Publish(std::vector<Publication> p) : pubs(std::move(p)) {}
  std::string_view name() const override { return "Publish"; }
  std::size_t wire_size() const override {
    std::size_t sz = kHeaderBytes;
    for (const auto& p : pubs) sz += publication_bytes(p);
    return sz;
  }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    for (const auto& p : pubs) out.push_back(p.origin);
  }
  bool encode(common::Encoder& e) const override {
    e.u64(pubs.size());
    for (const auto& p : pubs) encode_publication(e, p);
    return true;
  }
  void adopt_offwire(const sim::Message& original) override {
    const auto* o = sim::msg_cast<Publish>(original);
    if (o == nullptr || o->pubs.size() != pubs.size()) return;
    for (std::size_t i = 0; i < pubs.size(); ++i) pubs[i].born = o->pubs[i].born;
  }
};

/// PublishNew(p): flooding of a fresh publication (§4.3).
struct PublishNew final : sim::MsgBase<PublishNew> {
  Publication pub;

  explicit PublishNew(Publication p) : pub(std::move(p)) {}
  std::string_view name() const override { return "PublishNew"; }
  std::size_t wire_size() const override { return kHeaderBytes + publication_bytes(pub); }
  void collect_refs(std::vector<sim::NodeId>& out) const override {
    out.push_back(pub.origin);
  }
  bool encode(common::Encoder& e) const override {
    encode_publication(e, pub);
    return true;
  }
  void adopt_offwire(const sim::Message& original) override {
    if (const auto* o = sim::msg_cast<PublishNew>(original)) pub.born = o->pub.born;
  }
};

}  // namespace msg

/// Tuning of the publication layer.
struct PubSubConfig {
  /// m: publication key length in bits.
  std::size_t key_bits = 64;
  /// Disable flooding to measure the pure anti-entropy path (ablation E6).
  bool flooding = true;
  /// Disable anti-entropy to measure pure flooding (ablation; not
  /// self-stabilizing on its own!).
  bool anti_entropy = true;
};

/// The Algorithm 5 state machine; one instance per (subscriber, topic).
class PubSubProtocol {
 public:
  PubSubProtocol(core::SubscriberProtocol& overlay, core::MessageSink& sink,
                 ssps::Rng& rng, const PubSubConfig& config = {});

  /// PublishTimeout: anti-entropy with one random direct ring neighbor.
  void timeout();

  /// Dispatches one incoming message; false if not a publication message.
  bool handle(const sim::Message& m);

  /// User-level publish: insert into the own trie and flood (§4.3).
  void publish(std::string payload);

  /// Inserts without flooding (used to model pre-existing/corrupted state
  /// distributions in experiments).
  void add_local(const Publication& p) { trie_.insert(p); }

  const PatriciaTrie& trie() const { return trie_; }
  PatriciaTrie& chaos_trie() { return trie_; }

  const PubSubConfig& config() const { return config_; }

 private:
  void on_check_trie(sim::NodeId sender, const std::vector<NodeSummary>& tuples);
  void on_check_and_publish(const msg::CheckAndPublish& m);
  void on_publish(const msg::Publish& m);
  void on_publish_new(const msg::PublishNew& m);
  /// Processes one received (label, hash) tuple; the three cases of §4.2.
  void check_tuple(sim::NodeId sender, const NodeSummary& tuple);
  void flood(const Publication& p, sim::NodeId except);
  /// Reports `p`'s first receipt here to the sink's latency telemetry.
  /// Only called right after a successful publish-path trie insert;
  /// add_local (pre-existing/corrupted state) never reports.
  void record_delivery(const Publication& p);

  core::SubscriberProtocol* overlay_;
  core::MessageSink* sink_;
  ssps::Rng* rng_;
  PubSubConfig config_;
  PatriciaTrie trie_;
};

/// A network node running the full stack: BuildSR overlay + Algorithm 5.
class PubSubNode final : public core::SubscriberNode {
 public:
  explicit PubSubNode(sim::NodeId supervisor, const PubSubConfig& config = {})
      : core::SubscriberNode(supervisor, sim::NodeKind::kPubSub), config_(config) {}

  static bool classof(sim::NodeKind k) { return k == sim::NodeKind::kPubSub; }

  void on_register() override {
    core::SubscriberNode::on_register();
    sink_.emplace(net());
    pubsub_.emplace(protocol(), *sink_, rng(), config_);
  }
  void handle(sim::PooledMsg msg) override {
    // Overlay maintenance traffic (Check/IntroduceShortcut) dominates, so
    // try the BuildSR layer first; each layer matches by exact type tag.
    if (protocol().handle(*msg)) return;
    pubsub_->handle(*msg);
  }
  void timeout() override {
    core::SubscriberNode::timeout();
    if (!protocol().departed()) pubsub_->timeout();
  }
  bool snapshot_state(common::Encoder& enc) const override {
    // Overlay first, then the publication store: origin, payload, born
    // (the born stamp survives recovery so latency telemetry stays
    // meaningful for replicated copies).
    core::SubscriberNode::snapshot_state(enc);
    const std::vector<Publication> pubs = pubsub_->trie().all();
    enc.u64(pubs.size());
    for (const Publication& p : pubs) {
      enc.u64(p.origin.value);
      enc.string(p.payload);
      enc.u64(p.born);
    }
    return true;
  }
  bool restore_state(common::Decoder& dec) override {
    if (!protocol().decode_state(dec)) return false;
    std::uint64_t count = 0;
    if (!dec.u64(count)) return false;
    // origin (8) + payload length (8) + born (8) minimum per entry.
    if (count > dec.remaining() / 24) return false;
    for (std::uint64_t i = 0; i < count; ++i) {
      Publication p;
      std::uint64_t origin = 0, born = 0;
      if (!dec.u64(origin) || !dec.string(p.payload) || !dec.u64(born)) {
        return false;
      }
      p.origin = sim::NodeId{origin};
      p.born = born;
      // add_local, not publish: restored publications are pre-existing
      // state, neither re-flooded nor re-counted as deliveries.
      pubsub_->add_local(p);
    }
    return dec.done();
  }

  PubSubProtocol& pubsub() { return *pubsub_; }
  const PubSubProtocol& pubsub() const { return *pubsub_; }

 private:
  PubSubConfig config_;
  std::optional<core::DirectSink> sink_;
  std::optional<PubSubProtocol> pubsub_;
};

/// SkipRingSystem plus publication-layer helpers.
class PubSubSystem : public core::SkipRingSystem {
 public:
  explicit PubSubSystem(const Options& options = Options{},
                        const PubSubConfig& config = PubSubConfig{})
      : core::SkipRingSystem(options), config_(config) {}

  sim::NodeId add_pubsub_subscriber() {
    return net().spawn<PubSubNode>(supervisor_id(), config_);
  }

  std::vector<sim::NodeId> add_pubsub_subscribers(std::size_t count) {
    std::vector<sim::NodeId> ids;
    ids.reserve(count);
    for (std::size_t i = 0; i < count; ++i) ids.push_back(add_pubsub_subscriber());
    return ids;
  }

  /// Restarts a crashed pub-sub subscriber from its last snapshot (see
  /// SkipRingSystem::recover_subscriber; this variant restores the
  /// publication store too).
  bool recover_pubsub_subscriber(sim::NodeId id) {
    return net().recover(id,
                         std::make_unique<PubSubNode>(supervisor_id(), config_));
  }

  PubSubProtocol& pubsub(sim::NodeId id) {
    return net().node_as<PubSubNode>(id).pubsub();
  }
  const PubSubProtocol& pubsub(sim::NodeId id) const {
    return const_cast<PubSubSystem*>(this)->pubsub(id);
  }

  /// Theorem 17's goal state: every active subscriber's trie holds the
  /// union of all publications (checked via root digests + sizes).
  bool publications_converged() const;

  /// Total publications across all subscribers (distinct by key).
  std::size_t distinct_publications() const;

 private:
  PubSubConfig config_;
};

}  // namespace ssps::pubsub
